package repro_test

import (
	"math/rand"
	"testing"

	"repro"
)

// TestSoakLargeTransfers pushes each protocol through a large transfer
// (64 KiB of payload bits) under mixed adversarial conditions; skipped
// under -short. This is the scale check behind the "library a downstream
// user would adopt" claim: hundreds of thousands of events per run, full
// good(A) validation at the end.
func TestSoakLargeTransfers(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	p := repro.Params{C1: 2, C2: 3, D: 12}
	rng := rand.New(rand.NewSource(20260705))
	payload := repro.RandomBits(64*1024, rng.Uint64)

	mk := map[string]func() (repro.Solution, error){
		"beta-k16":  func() (repro.Solution, error) { return repro.Beta(p, 16) },
		"beta-k64":  func() (repro.Solution, error) { return repro.Beta(p, 64) },
		"gamma-k16": func() (repro.Solution, error) { return repro.Gamma(p, 16) },
	}
	for name, build := range mk {
		t.Run(name, func(t *testing.T) {
			s, err := build()
			if err != nil {
				t.Fatal(err)
			}
			x, _ := repro.PadToBlock(payload, s.BlockBits)
			run, err := s.Run(x, repro.RunOptions{
				TPolicy:   repro.RandomSchedule(p.C1, p.C2, rng.Int63n),
				RPolicy:   repro.RandomSchedule(p.C1, p.C2, rng.Int63n),
				Delay:     repro.RandomDelay(p.D, rng),
				MaxTicks:  500_000_000,
				MaxEvents: 50_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if repro.BitsToString(run.Writes()) != repro.BitsToString(x) {
				t.Fatal("large transfer corrupted")
			}
			if v := s.Verify(run, x); len(v) != 0 {
				t.Fatalf("not good: %v", v[0])
			}
			eff, _ := run.LastSendTime()
			t.Logf("%s: %d bits in %d events, effort %.3f ticks/bit",
				name, len(x), len(run.Trace), float64(eff)/float64(len(x)))
		})
	}
}
