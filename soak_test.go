package repro_test

import (
	"math/rand"
	"testing"

	"repro"
)

// TestSoakLargeTransfers pushes each protocol through a large transfer
// (64 KiB of payload bits) under mixed adversarial conditions; skipped
// under -short. This is the scale check behind the "library a downstream
// user would adopt" claim: hundreds of thousands of events per run, full
// good(A) validation at the end.
func TestSoakLargeTransfers(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	p := repro.Params{C1: 2, C2: 3, D: 12}
	rng := rand.New(rand.NewSource(20260705))
	payload := repro.RandomBits(64*1024, rng.Uint64)

	mk := map[string]func() (repro.Solution, error){
		"beta-k16":  func() (repro.Solution, error) { return repro.Beta(p, 16) },
		"beta-k64":  func() (repro.Solution, error) { return repro.Beta(p, 64) },
		"gamma-k16": func() (repro.Solution, error) { return repro.Gamma(p, 16) },
	}
	for name, build := range mk {
		t.Run(name, func(t *testing.T) {
			s, err := build()
			if err != nil {
				t.Fatal(err)
			}
			x, _ := repro.PadToBlock(payload, s.BlockBits)
			run, err := s.Run(x, repro.RunOptions{
				TPolicy:   repro.RandomSchedule(p.C1, p.C2, rng.Int63n),
				RPolicy:   repro.RandomSchedule(p.C1, p.C2, rng.Int63n),
				Delay:     repro.RandomDelay(p.D, rng),
				MaxTicks:  500_000_000,
				MaxEvents: 50_000_000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if repro.BitsToString(run.Writes()) != repro.BitsToString(x) {
				t.Fatal("large transfer corrupted")
			}
			if v := s.Verify(run, x); len(v) != 0 {
				t.Fatalf("not good: %v", v[0])
			}
			eff, _ := run.LastSendTime()
			t.Logf("%s: %d bits in %d events, effort %.3f ticks/bit",
				name, len(x), len(run.Trace), float64(eff)/float64(len(x)))
		})
	}
}

// TestSoakChaosHardened pushes 64 KiB through the hardened burst protocol
// while a seeded fault plan drops, duplicates, corrupts and blacks out
// the channel for the first stretch of the run. Every fault window
// closes, so the guarantee split collapses to the strong form: zero
// prefix violations AND a complete, byte-identical transfer. Skipped
// under -short.
func TestSoakChaosHardened(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	p := repro.Params{C1: 2, C2: 3, D: 12}
	rng := rand.New(rand.NewSource(20260805))
	payload := repro.RandomBits(64*1024, rng.Uint64)

	s, err := repro.Beta(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	hs := repro.Harden(s, repro.HardenOptions{})
	x, _ := repro.PadToBlock(payload, s.BlockBits)

	plan := repro.NewFaultPlan(99, repro.MaxDelay(p.D),
		repro.Fault{From: 0, To: 30_000, Drop: 0.2, Dup: 0.2},
		repro.Fault{From: 30_000, To: 60_000, Corrupt: 0.3},
		repro.Fault{From: 70_000, To: 78_000, Blackout: true},
		repro.Fault{From: 78_000, To: 90_000, ExtraDelay: 3 * p.D},
	)
	run, err := hs.Run(x, repro.RunOptions{
		Delay:     plan,
		MaxTicks:  500_000_000,
		MaxEvents: 50_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := hs.VerifySafety(run, x); len(v) != 0 {
		t.Fatalf("safety violated under chaos: %v", v[0])
	}
	if repro.BitsToString(run.Writes()) != repro.BitsToString(x) {
		t.Fatal("hardened transfer did not recover to Y = X")
	}
	if run.Degradation == nil || run.Degradation.ModelHolds() {
		t.Fatalf("fault plan injected nothing the watchdog saw: %v", run.Degradation)
	}
	last, _ := run.LastWriteTime()
	t.Logf("hardened beta-k16: %d bits, %d events, %s; last write t=%d (heal t=%d)",
		len(x), len(run.Trace), run.Degradation, last, plan.End())
}

// TestSoakCrashChaos is the crash-era counterpart of TestSoakChaosHardened:
// 16 KiB through the fully stacked protocol — stabilizing layer over the
// hardened layer over beta — while the channel drops, duplicates and
// corrupts AND both processes crash, restart with a corrupted checkpoint,
// and suffer live state corruption mid-run. All fault windows close, so
// the run must end with zero prefix violations, Y = X, and a Stabilization
// report confirming convergence after the heal. Skipped under -short.
func TestSoakCrashChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	p := repro.Params{C1: 2, C2: 3, D: 12}
	rng := rand.New(rand.NewSource(20260806))
	payload := repro.RandomBits(16*1024, rng.Uint64)

	s, err := repro.Beta(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	stack := repro.StabilizeHardened(repro.Harden(s, repro.HardenOptions{}), repro.StabilizeOptions{})
	x, _ := repro.PadToBlock(payload, s.BlockBits)

	chanPlan := repro.NewFaultPlan(107, repro.MaxDelay(p.D),
		repro.Fault{From: 0, To: 8_000, Drop: 0.2, Dup: 0.2},
		repro.Fault{From: 8_000, To: 16_000, Corrupt: 0.3},
		repro.Fault{From: 40_000, To: 44_000, Blackout: true},
	)
	procPlan := repro.NewProcPlan(108,
		repro.ProcFault{Proc: repro.ProcTransmitter, From: 2_000, To: 6_000, Crash: true},
		repro.ProcFault{Proc: repro.ProcReceiver, From: 12_000, To: 18_000, Crash: true, Corrupt: true},
		repro.ProcFault{Proc: repro.ProcTransmitter, From: 24_000, Corrupt: true},
		repro.ProcFault{Proc: repro.ProcReceiver, From: 30_000, To: 36_000, Crash: true},
	)
	run, err := stack.Run(x, repro.RunOptions{
		Delay:      chanPlan,
		ProcFaults: procPlan,
		MaxTicks:   500_000_000,
		MaxEvents:  50_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := stack.VerifySafety(run, x); len(v) != 0 {
		t.Fatalf("safety violated under crash chaos: %v", v[0])
	}
	if repro.BitsToString(run.Writes()) != repro.BitsToString(x) {
		t.Fatal("stacked transfer did not recover to Y = X")
	}
	st := run.Stabilization
	if st == nil || !st.Measured || !st.Stabilized {
		t.Fatalf("run did not stabilize: %s", st)
	}
	if st.Crashes != 3 || st.Restarts != 3 || st.Corruptions != 2 {
		t.Fatalf("fault plan executed unexpectedly: %s", st)
	}
	last, _ := run.LastWriteTime()
	t.Logf("stabilized(hardened(beta-k16)): %d bits, %d events; %s; last write t=%d",
		len(x), len(run.Trace), st, last)
}
