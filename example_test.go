package repro_test

import (
	"fmt"

	"repro"
)

// Example transmits a short sequence with the r-passive burst protocol
// A^β(4) over the worst-case legal channel and verifies it.
func Example() {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	s, err := repro.Beta(p, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	x, _ := repro.ParseBits("101100111000")
	run, err := s.Run(x, repro.RunOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(repro.BitsToString(run.Writes()))
	fmt.Println("good:", len(s.Verify(run, x)) == 0)
	// Output:
	// 101100111000
	// good: true
}

// ExampleAlphaEffort prints the simple protocol's closed-form effort.
func ExampleAlphaEffort() {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	fmt.Printf("%.0f ticks/message\n", repro.AlphaEffort(p))
	// Output: 18 ticks/message
}

// ExamplePassiveLowerBound shows Theorem 5.3's floor falling with k.
func ExamplePassiveLowerBound() {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	for _, k := range []int{2, 16} {
		fmt.Printf("k=%-2d lower=%.3f upper=%.3f\n",
			k, repro.PassiveLowerBound(p, k), repro.BetaUpperBound(p, k))
	}
	// Output:
	// k=2  lower=3.786 upper=18.000
	// k=16 lower=1.112 upper=2.400
}

// ExampleFrameMessages sends byte payloads over the bit protocol using
// the framing layer, tolerating block padding.
func ExampleFrameMessages() {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	s, _ := repro.Beta(p, 4)

	bits, _ := repro.FrameMessages([][]byte{[]byte("hi"), []byte("rstp")})
	x, _ := repro.PadToBlock(bits, s.BlockBits)

	run, _ := s.Run(x, repro.RunOptions{})
	msgs, _ := repro.UnframeMessages(run.Writes())
	for _, m := range msgs {
		fmt.Printf("%s\n", m)
	}
	// Output:
	// hi
	// rstp
}

// ExampleGenBeta shows the Section 7 delivery-window extension: a
// deterministic-delay link needs no inter-burst wait at all.
func ExampleGenBeta() {
	p := repro.GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 12, D2: 12}
	s, err := repro.GenBeta(p, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("slack:", p.Slack(), "wait steps:", p.WaitSteps())
	x, _ := repro.ParseBits("110010")
	x, _ = repro.PadToBlock(x, s.BlockBits)
	run, err := s.Run(x, repro.GenRunOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("delivered:", repro.BitsToString(run.Writes()) == repro.BitsToString(x))
	// Output:
	// slack: 0 wait steps: 0
	// delivered: true
}

// ExampleSolution_MeasureEffort measures worst-case effort against the
// analytic ceiling.
func ExampleSolution_MeasureEffort() {
	p := repro.Params{C1: 1, C2: 1, D: 8}
	s, _ := repro.Beta(p, 8)
	x := make([]repro.Bit, 100*s.BlockBits)
	eff, err := s.MeasureEffort(x, repro.RunOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("within bound:", eff.PerMessage <= repro.BetaUpperBound(p, 8))
	// Output: within bound: true
}
