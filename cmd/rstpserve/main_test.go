package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
)

// summaryFrom extracts the trailing JSON summary from a run's output,
// skipping any "metrics listening" / "obs:" lines printed before it.
func summaryFrom(t *testing.T, out string) summary {
	t.Helper()
	i := strings.Index(out, "{")
	if i < 0 {
		t.Fatalf("no JSON summary in output:\n%s", out)
	}
	var sum summary
	if err := json.Unmarshal([]byte(strings.TrimSpace(out[i:])), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, out)
	}
	return sum
}

// scrape GETs one path off the in-process metrics endpoint.
func scrape(t *testing.T, addr, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	return string(body)
}

func TestServeBetaSmallRun(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-sessions", "8", "-proto", "beta", "-tick", "50us"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, out.String())
	}
	if sum.Completed != 8 || sum.Violations != 0 {
		t.Fatalf("expected 8 completed, 0 violations: %+v", sum)
	}
	if sum.Writes != 8*sum.BitsPerSession {
		t.Errorf("writes = %d, want %d", sum.Writes, 8*sum.BitsPerSession)
	}
	if sum.EffortBound <= 0 {
		t.Errorf("effort bound missing from summary: %+v", sum)
	}
}

func TestServeAlphaAndGamma(t *testing.T) {
	for _, proto := range []string{"alpha", "gamma"} {
		var out strings.Builder
		err := run([]string{"-sessions", "4", "-proto", proto, "-n", "2", "-tick", "50us"}, &out)
		if err != nil {
			t.Fatalf("%s: %v\n%s", proto, err, out.String())
		}
	}
}

func TestServeHardenedUnderFaults(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-sessions", "6", "-proto", "beta", "-harden",
		"-loss", "0.2", "-corrupt", "0.1", "-fwindow", "0:2000",
		"-tick", "50us",
	}, &out)
	if err != nil {
		t.Fatalf("hardened faulted run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), `"faults"`) {
		t.Errorf("summary should record the fault plan:\n%s", out.String())
	}
}

func TestServeBenchWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out strings.Builder
	err := run([]string{"-sessions", "6", "-bench", "-benchout", path, "-tick", "50us"}, &out)
	if err != nil {
		t.Fatalf("bench run: %v\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bench file not written: %v", err)
	}
	var sum summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("bench file is not valid JSON: %v", err)
	}
	if sum.Schema != "rstp-bench-serve/v1" {
		t.Errorf("schema = %q", sum.Schema)
	}
	if sum.SessionsPerSec <= 0 {
		t.Errorf("sessions_per_sec missing: %+v", sum)
	}
}

func TestServeChaosOverUDP(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-sessions", "8", "-proto", "beta", "-harden",
		"-transport", "udp", "-chaos", "-resilient",
		"-loss", "0.15", "-dup", "0.05", "-corrupt", "0.05", "-fwindow", "0:4000",
		"-tick", "50us",
	}, &out)
	if err != nil {
		t.Fatalf("chaos-over-udp run: %v\n%s", err, out.String())
	}
	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, out.String())
	}
	if sum.Completed != 8 || sum.Violations != 0 {
		t.Fatalf("expected 8 completed, 0 violations: %+v", sum)
	}
	if !strings.HasPrefix(sum.Faults, "chaos:") {
		t.Errorf("faults key should name the chaos middleware plan: %q", sum.Faults)
	}
	if sum.ChaosDropped == 0 {
		t.Errorf("chaos injected no drops at 15%% over the whole run: %+v", sum)
	}
	if sum.UDPMalformed != 0 {
		t.Errorf("symbol corruption must stay parseable, got %d malformed datagrams", sum.UDPMalformed)
	}
}

func TestServeWatchdogReportsWedged(t *testing.T) {
	// A blackout that starts after session establishment and never heals:
	// every session wedges, the watchdog retires them all, and the run
	// itself fails because the transfers really are incomplete.
	var out strings.Builder
	err := run([]string{
		"-sessions", "3", "-harden", "-chaos", "-watchdog", "4",
		"-blackout", "400:999999999", "-timeout", "20s",
		"-tick", "50us",
	}, &out)
	if err == nil {
		t.Fatalf("wedged run should report incomplete sessions:\n%s", out.String())
	}
	var sum summary
	if uerr := json.Unmarshal([]byte(out.String()), &sum); uerr != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", uerr, out.String())
	}
	if sum.Wedged != 3 {
		t.Fatalf("wedged = %d, want all 3 sessions: %+v", sum.Wedged, sum)
	}
	if sum.Violations != 0 {
		t.Fatalf("force-retire must never corrupt a tape: %+v", sum)
	}
}

func TestServeShedEvictOldestIdle(t *testing.T) {
	// The load generator paces itself at -conc, so on a healthy run the
	// server never actually sheds; this pins that the flag parses, the
	// run stays green with the policy armed, and the counter stays zero
	// (shedding under real overload is exercised in internal/session).
	var out strings.Builder
	err := run([]string{
		"-sessions", "8", "-conc", "2", "-shed", "evict-oldest-idle",
		"-tick", "50us",
	}, &out)
	if err != nil {
		t.Fatalf("shed run: %v\n%s", err, out.String())
	}
	var sum summary
	if uerr := json.Unmarshal([]byte(out.String()), &sum); uerr != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", uerr, out.String())
	}
	if sum.Completed != 8 || sum.Shed != 0 {
		t.Fatalf("healthy generator-paced run: %+v", sum)
	}
}

// TestServeMetricsEndpoint runs a transfer with the introspection
// endpoint up and scrapes it mid-flight: the Prometheus exposition, the
// JSON snapshot with its live session table, and the trace rings must all
// serve while sessions are moving.
func TestServeMetricsEndpoint(t *testing.T) {
	ready := make(chan string, 1)
	metricsReady = func(addr string) { ready <- addr }
	defer func() { metricsReady = nil }()

	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-sessions", "4", "-n", "64", "-tick", "200us",
			"-metrics-addr", "127.0.0.1:0", "-trace",
			"-timeout", "60s",
		}, &out)
	}()
	addr := <-ready

	// Wait until at least one output write is on the board, then scrape.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if strings.Contains(scrape(t, addr, "/metrics"), "rstp_session_writes_total") &&
			!strings.Contains(scrape(t, addr, "/metrics"), "rstp_session_writes_total 0\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no writes observed on /metrics within 20s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	expo := scrape(t, addr, "/metrics")
	for _, want := range []string{
		"rstp_server_sessions_active",
		"rstp_deadline_ticks 18",
		"rstp_effort_bound_ticks",
		"rstp_interwrite_ticks_bucket",
		"rstp_deadline_margin_ticks_bucket",
		"rstp_effort_gap_ticks_bucket",
		"rstp_mem_sends_total",
		"rstp_transport_delivery_ticks_bucket",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Live     map[string]any   `json:"live"`
	}
	if err := json.Unmarshal([]byte(scrape(t, addr, "/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}
	if snap.Counters["rstp_session_sends_total"] == 0 {
		t.Error("/metrics.json shows no sends mid-transfer")
	}
	if _, ok := snap.Live["server_sessions"]; !ok {
		t.Error("/metrics.json missing the live session table")
	}
	if body := scrape(t, addr, "/trace"); !strings.Contains(body, `"kind"`) && body != "[]\n" && body != "null\n" {
		t.Errorf("/trace returned neither events nor an empty ring:\n%.200s", body)
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	sum := summaryFrom(t, out.String())
	if sum.MetricsAddr != addr {
		t.Errorf("summary metrics_addr = %q, want %q", sum.MetricsAddr, addr)
	}
	if sum.EffortLowerBound <= 0 {
		t.Errorf("summary missing the effort lower bound: %+v", sum)
	}
	if sum.EffortGapMean == 0 {
		t.Errorf("summary missing the effort-gap mean: %+v", sum)
	}
}

// TestServeSigintFlushesSummary pins the shutdown path: a SIGINT mid-run
// must cancel the transfers, still flush the JSON summary (marked
// interrupted), and exit cleanly rather than reporting failure.
func TestServeSigintFlushesSummary(t *testing.T) {
	ready := make(chan string, 1)
	metricsReady = func(addr string) { ready <- addr }
	defer func() { metricsReady = nil }()

	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			// A long, slow run: 200 blocks per session at 500us/tick keeps
			// the transfers in flight for seconds — the signal lands first.
			"-sessions", "4", "-n", "200", "-tick", "500us",
			"-metrics-addr", "127.0.0.1:0",
			"-timeout", "5m",
		}, &out)
	}()
	addr := <-ready // signal handler is installed before metricsReady fires

	// Let the sessions establish and write a little before interrupting.
	deadline := time.Now().Add(20 * time.Second)
	for !strings.Contains(scrape(t, addr, "/metrics.json"), `"rstp_session_writes_total": `) ||
		strings.Contains(scrape(t, addr, "/metrics.json"), `"rstp_session_writes_total": 0`) {
		if time.Now().After(deadline) {
			t.Fatal("no writes before the interrupt within 20s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted run should flush and exit clean: %v\n%s", err, out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return within 30s of SIGINT")
	}
	sum := summaryFrom(t, out.String())
	if !sum.Interrupted {
		t.Errorf("summary not marked interrupted: %+v", sum)
	}
	if sum.Completed == 4 {
		t.Errorf("all sessions completed — the signal landed too late to test anything: %+v", sum)
	}
	if sum.Violations != 0 {
		t.Errorf("interrupt must never corrupt a tape: %+v", sum)
	}
	if sum.Writes == 0 {
		t.Errorf("summary should carry the partial progress: %+v", sum)
	}
}

func TestServeRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-proto", "delta"},
		{"-transport", "carrier-pigeon"},
		{"-fwindow", "backwards", "-loss", "0.5"},
		{"-transport", "udp", "-loss", "0.5"},
		{"-chaos"},                      // chaos with no fault clauses
		{"-shed", "evict-newest"},       // unknown shed policy
		{"-watchdog", "-1"},             // negative watchdog multiplier
		{"-transport", "udp", "-chaos"}, // still needs clauses over udp
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should have failed", args)
		}
	}
}

// TestServeStoreHelperProcess is not a test: it is the child body for
// TestServeKillRestart, re-executing the test binary as an rstpserve
// process that can be SIGKILLed for real.
func TestServeStoreHelperProcess(t *testing.T) {
	if os.Getenv("RSTPSERVE_HELPER") != "1" {
		t.Skip("helper process for TestServeKillRestart")
	}
	if err := run(strings.Fields(os.Getenv("RSTPSERVE_ARGS")), os.Stdout); err != nil {
		os.Exit(1)
	}
	os.Exit(0)
}

// TestServeKillRestart is the crash-restart smoke over a real process
// boundary: a child rstpserve serving into -store-dir is SIGKILLed once
// its journal shows durable progress, then the same run is repeated
// in-process against the same directory. The restart must replay the
// journal, resume at least one session's tape, and complete every
// transfer with zero prefix violations.
func TestServeKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill-and-restart smoke")
	}
	dir := t.TempDir()
	args := []string{
		"-sessions", "4", "-n", "200", "-tick", "500us",
		"-store-dir", dir, "-seed", "9", "-timeout", "5m",
	}
	child := exec.Command(os.Args[0], "-test.run=^TestServeStoreHelperProcess$")
	child.Env = append(os.Environ(),
		"RSTPSERVE_HELPER=1",
		"RSTPSERVE_ARGS="+strings.Join(args, " "))
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	defer child.Process.Kill()

	// Wait for durable progress — the journal carries checkpoints and
	// tape records once sessions are established and writing.
	logPath := filepath.Join(dir, "journal.log")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if fi, err := os.Stat(logPath); err == nil && fi.Size() > 4096 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal showed no progress within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil { // SIGKILL: no flush, no handler
		t.Fatal(err)
	}
	child.Wait()

	// Same directory, same seed, faster clock: the second incarnation
	// must pick the sessions up where the journal says they were.
	restart := []string{
		"-sessions", "4", "-n", "200", "-tick", "50us",
		"-store-dir", dir, "-seed", "9", "-timeout", "2m",
	}
	var out strings.Builder
	if err := run(restart, &out); err != nil {
		t.Fatalf("restarted run: %v\n%s", err, out.String())
	}
	sum := summaryFrom(t, out.String())
	if sum.Completed != 4 || sum.Violations != 0 {
		t.Fatalf("restart must complete all sessions violation-free: %+v", sum)
	}
	if sum.JournalReplayed == 0 {
		t.Errorf("restart replayed no journal records: %+v", sum)
	}
	if sum.Resumed == 0 {
		t.Errorf("restart resumed no session tapes: %+v", sum)
	}
}

// TestServeStoreDirFreshRun pins the first-boot path: -store-dir against
// an empty directory serves normally (recover mode with nothing to
// recover) and reports the journal keys in the summary.
func TestServeStoreDirFreshRun(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-sessions", "4", "-n", "2", "-tick", "50us", "-store-dir", dir}, &out)
	if err != nil {
		t.Fatalf("fresh -store-dir run: %v\n%s", err, out.String())
	}
	sum := summaryFrom(t, out.String())
	if sum.Completed != 4 || sum.Violations != 0 {
		t.Fatalf("fresh durable run: %+v", sum)
	}
	if sum.JournalSaves == 0 || sum.JournalKeys < 12 {
		t.Errorf("journal shows no activity (want >= 3 keys per session): %+v", sum)
	}
	if sum.Resumed != 0 {
		t.Errorf("nothing to resume on a fresh directory: %+v", sum)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal.log")); err != nil {
		t.Errorf("journal file missing after durable run: %v", err)
	}
}

// TestServeAdaptiveSmoke is the PR-time -adaptive smoke: a hardened
// resilient run under the control plane must complete cleanly, report
// the control_* summary keys, and serve the controller's state at
// /control and its rstp_control_* series at /metrics.
func TestServeAdaptiveSmoke(t *testing.T) {
	ready := make(chan string, 1)
	metricsReady = func(addr string) { ready <- addr }
	defer func() { metricsReady = nil }()

	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-sessions", "24", "-conc", "8", "-n", "16",
			"-adaptive", "-resilient", "-harden", "-tick", "50us",
			"-metrics-addr", "127.0.0.1:0",
			"-timeout", "60s",
		}, &out)
	}()
	addr := <-ready

	deadline := time.Now().Add(20 * time.Second)
	for {
		if strings.Contains(scrape(t, addr, "/metrics"), "rstp_control_ticks_total") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no rstp_control_* series on /metrics within 20s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	expo := scrape(t, addr, "/metrics")
	for _, want := range []string{
		"rstp_control_level",
		"rstp_control_pressure",
		"rstp_control_k",
		"rstp_control_rto_ticks",
		"rstp_control_paced_total",
		"rstp_control_gated_total",
		"rstp_control_dwell_normal_ticks_total",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	var live struct {
		Level string `json:"level"`
		K     int    `json:"k"`
	}
	if err := json.Unmarshal([]byte(scrape(t, addr, "/control")), &live); err != nil {
		t.Fatalf("/control is not valid JSON: %v", err)
	}
	if live.Level == "" || live.K == 0 {
		t.Errorf("/control state incomplete: %+v", live)
	}

	if err := <-done; err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	sum := summaryFrom(t, out.String())
	if sum.Completed != 24 || sum.Violations != 0 {
		t.Fatalf("expected 24 completed, 0 violations: %+v", sum)
	}
	if sum.ControlLevel == "" {
		t.Errorf("summary missing control_level: %+v", sum)
	}
	if sum.ControlDwell == nil {
		t.Errorf("summary missing control_level_dwell_ticks: %+v", sum)
	}
	if len(sum.ControlKHist) == 0 {
		t.Errorf("summary missing control_k_histogram (k-selection never recorded an admission): %+v", sum)
	}
}

// TestServeAdaptiveStoreDirRestart is the regression test for the
// durable k-selection gap: -adaptive no longer collapses its candidate
// set under -store-dir. The first run journals each session's chosen k
// ("s<id>/k"); the restart against the same directory admits every
// resumed session under the recorded k and completes violation-free.
func TestServeAdaptiveStoreDirRestart(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-sessions", "4", "-n", "8", "-tick", "50us",
		"-adaptive", "-store-dir", dir, "-seed", "11", "-timeout", "2m",
	}
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("first adaptive durable run: %v\n%s", err, out.String())
	}
	sum := summaryFrom(t, out.String())
	if sum.Completed != 4 || sum.Violations != 0 {
		t.Fatalf("first run: %+v", sum)
	}
	if sum.ControlKHist["4"] != 4 {
		t.Fatalf("first run k histogram = %v, want 4 admissions at k=4", sum.ControlKHist)
	}

	// The chosen k must be durable, under the session's own key family.
	st, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		if raw, ok := st.Load(fmt.Sprintf("s%d/k", id)); !ok || string(raw) != "4" {
			t.Errorf("journal records %q (ok=%v) for session %d's k, want \"4\"", raw, ok, id)
		}
	}
	st.Close()

	// Restart: same directory, same seed. Every session resumes under
	// its recorded k (the histogram proves the store was consulted).
	out.Reset()
	if err := run(args, &out); err != nil {
		t.Fatalf("restarted adaptive durable run: %v\n%s", err, out.String())
	}
	sum = summaryFrom(t, out.String())
	if sum.Completed != 4 || sum.Violations != 0 {
		t.Fatalf("restart: %+v", sum)
	}
	if sum.ControlKHist["4"] != 4 {
		t.Errorf("restart k histogram = %v, want the 4 recorded k=4 admissions", sum.ControlKHist)
	}
	if sum.JournalReplayed == 0 {
		t.Errorf("restart replayed no journal records: %+v", sum)
	}
}
