package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestServeBetaSmallRun(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-sessions", "8", "-proto", "beta", "-tick", "50us"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, out.String())
	}
	if sum.Completed != 8 || sum.Violations != 0 {
		t.Fatalf("expected 8 completed, 0 violations: %+v", sum)
	}
	if sum.Writes != 8*sum.BitsPerSession {
		t.Errorf("writes = %d, want %d", sum.Writes, 8*sum.BitsPerSession)
	}
	if sum.EffortBound <= 0 {
		t.Errorf("effort bound missing from summary: %+v", sum)
	}
}

func TestServeAlphaAndGamma(t *testing.T) {
	for _, proto := range []string{"alpha", "gamma"} {
		var out strings.Builder
		err := run([]string{"-sessions", "4", "-proto", proto, "-n", "2", "-tick", "50us"}, &out)
		if err != nil {
			t.Fatalf("%s: %v\n%s", proto, err, out.String())
		}
	}
}

func TestServeHardenedUnderFaults(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-sessions", "6", "-proto", "beta", "-harden",
		"-loss", "0.2", "-corrupt", "0.1", "-fwindow", "0:2000",
		"-tick", "50us",
	}, &out)
	if err != nil {
		t.Fatalf("hardened faulted run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), `"faults"`) {
		t.Errorf("summary should record the fault plan:\n%s", out.String())
	}
}

func TestServeBenchWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var out strings.Builder
	err := run([]string{"-sessions", "6", "-bench", "-benchout", path, "-tick", "50us"}, &out)
	if err != nil {
		t.Fatalf("bench run: %v\n%s", err, out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bench file not written: %v", err)
	}
	var sum summary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("bench file is not valid JSON: %v", err)
	}
	if sum.Schema != "rstp-bench-serve/v1" {
		t.Errorf("schema = %q", sum.Schema)
	}
	if sum.SessionsPerSec <= 0 {
		t.Errorf("sessions_per_sec missing: %+v", sum)
	}
}

func TestServeChaosOverUDP(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-sessions", "8", "-proto", "beta", "-harden",
		"-transport", "udp", "-chaos", "-resilient",
		"-loss", "0.15", "-dup", "0.05", "-corrupt", "0.05", "-fwindow", "0:4000",
		"-tick", "50us",
	}, &out)
	if err != nil {
		t.Fatalf("chaos-over-udp run: %v\n%s", err, out.String())
	}
	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, out.String())
	}
	if sum.Completed != 8 || sum.Violations != 0 {
		t.Fatalf("expected 8 completed, 0 violations: %+v", sum)
	}
	if !strings.HasPrefix(sum.Faults, "chaos:") {
		t.Errorf("faults key should name the chaos middleware plan: %q", sum.Faults)
	}
	if sum.ChaosDropped == 0 {
		t.Errorf("chaos injected no drops at 15%% over the whole run: %+v", sum)
	}
	if sum.UDPMalformed != 0 {
		t.Errorf("symbol corruption must stay parseable, got %d malformed datagrams", sum.UDPMalformed)
	}
}

func TestServeWatchdogReportsWedged(t *testing.T) {
	// A blackout that starts after session establishment and never heals:
	// every session wedges, the watchdog retires them all, and the run
	// itself fails because the transfers really are incomplete.
	var out strings.Builder
	err := run([]string{
		"-sessions", "3", "-harden", "-chaos", "-watchdog", "4",
		"-blackout", "400:999999999", "-timeout", "20s",
		"-tick", "50us",
	}, &out)
	if err == nil {
		t.Fatalf("wedged run should report incomplete sessions:\n%s", out.String())
	}
	var sum summary
	if uerr := json.Unmarshal([]byte(out.String()), &sum); uerr != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", uerr, out.String())
	}
	if sum.Wedged != 3 {
		t.Fatalf("wedged = %d, want all 3 sessions: %+v", sum.Wedged, sum)
	}
	if sum.Violations != 0 {
		t.Fatalf("force-retire must never corrupt a tape: %+v", sum)
	}
}

func TestServeShedEvictOldestIdle(t *testing.T) {
	// The load generator paces itself at -conc, so on a healthy run the
	// server never actually sheds; this pins that the flag parses, the
	// run stays green with the policy armed, and the counter stays zero
	// (shedding under real overload is exercised in internal/session).
	var out strings.Builder
	err := run([]string{
		"-sessions", "8", "-conc", "2", "-shed", "evict-oldest-idle",
		"-tick", "50us",
	}, &out)
	if err != nil {
		t.Fatalf("shed run: %v\n%s", err, out.String())
	}
	var sum summary
	if uerr := json.Unmarshal([]byte(out.String()), &sum); uerr != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", uerr, out.String())
	}
	if sum.Completed != 8 || sum.Shed != 0 {
		t.Fatalf("healthy generator-paced run: %+v", sum)
	}
}

func TestServeRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-proto", "delta"},
		{"-transport", "carrier-pigeon"},
		{"-fwindow", "backwards", "-loss", "0.5"},
		{"-transport", "udp", "-loss", "0.5"},
		{"-chaos"},                      // chaos with no fault clauses
		{"-shed", "evict-newest"},       // unknown shed policy
		{"-watchdog", "-1"},             // negative watchdog multiplier
		{"-transport", "udp", "-chaos"}, // still needs clauses over udp
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) should have failed", args)
		}
	}
}
