// Command rstpserve runs the concurrent session-serving subsystem: a
// receiver-side server and a transmitter-side load generator in one
// process, connected by an in-memory or UDP-loopback transport, running
// many RSTP sessions at once off a shared real-time clock.
//
// Usage:
//
//	rstpserve -sessions 256 -proto beta -k 4      # 256 concurrent sessions
//	rstpserve -transport udp -sessions 64         # over a UDP loopback pair
//	rstpserve -sessions 128 -loss 0.2 -fwindow 0:2000 -harden
//	rstpserve -transport udp -chaos -loss 0.12 -dup 0.05 -corrupt 0.03 -harden
//	rstpserve -shed evict-oldest-idle -watchdog 4 # overload + wedge defense
//	rstpserve -adaptive -resilient -sessions 128  # closed-loop overload control
//	rstpserve -bench -sessions 200                # emit BENCH_serve.json
//	rstpserve -store-dir /tmp/rstp -sessions 64   # durable crash-restart serving
//
// Every session's output tape is verified against its input: Y must be a
// prefix of X throughout and equal to X at completion. The tool prints a
// machine-readable JSON summary and exits nonzero if any session
// violates the prefix invariant or fails to complete — the same
// convention as rstpchaos.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/benchmatrix"
	"repro/internal/chanmodel"
	"repro/internal/control"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/rateless"
	"repro/internal/rstp"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/wire"
)

// metricsReady, when non-nil, is called with the bound metrics address
// once the -metrics-addr listener is up. Tests hook it to scrape the
// endpoint of an in-process run without racing the listener.
var metricsReady func(addr string)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstpserve:", err)
		os.Exit(1)
	}
}

// summary is the machine-readable report printed after a run (and, in
// -bench mode, written to the BENCH_*.json file). See EXPERIMENTS.md for
// the schema note.
type summary struct {
	Schema string `json:"schema"`
	// Meta stamps the artifact with provenance (commit, Go version,
	// GOMAXPROCS, wall clock) shared with every BENCH_*.json emitter.
	Meta           benchmatrix.Meta `json:"meta"`
	Proto          string           `json:"proto"`
	Transport      string           `json:"transport"`
	Sessions       int              `json:"sessions"`
	Completed      int              `json:"completed"`
	Violations     int              `json:"violations"`
	Incomplete     int              `json:"incomplete"`
	Errors         int              `json:"errors"`
	BitsPerSession int              `json:"bits_per_session"`
	TickMicros     float64          `json:"tick_us"`
	WallMS         float64          `json:"wall_ms"`
	SessionsPerSec float64          `json:"sessions_per_sec"`
	GoodputMsgSec  float64          `json:"goodput_msgs_per_sec"`
	EffortMean     float64          `json:"effort_mean_ticks_per_msg"`
	EffortMax      float64          `json:"effort_max_ticks_per_msg"`
	EffortBound    float64          `json:"effort_bound_ticks_per_msg"`
	Sends          int              `json:"sends"`
	SendErrors     int              `json:"send_errors"`
	Deliveries     int              `json:"deliveries"`
	Writes         int              `json:"writes"`
	Refused        int              `json:"refused"`
	Late           int              `json:"late"`
	Overflow       int              `json:"overflow"`
	Stray          int              `json:"stray"`
	Faults         string           `json:"faults,omitempty"`
	// Resilience-layer counters (PR 4; see EXPERIMENTS.md E20).
	Wedged       int   `json:"wedged"`
	Shed         int   `json:"shed"`
	Resyncs      int   `json:"resyncs"`
	BreakerOpens int64 `json:"breaker_opens"`
	Retransmits  int64 `json:"retransmits"`
	UDPMalformed int64 `json:"udp_malformed"`
	UDPDropped   int64 `json:"udp_dropped"`
	// Chaos middleware injection counters, when -chaos is set.
	ChaosDropped    int `json:"chaos_dropped,omitempty"`
	ChaosDuplicated int `json:"chaos_duplicated,omitempty"`
	ChaosCorrupted  int `json:"chaos_corrupted,omitempty"`
	ChaosDelayed    int `json:"chaos_delayed,omitempty"`
	// Observability keys (PR 5; see EXPERIMENTS.md E21). EffortLowerBound
	// is the paper's per-protocol lower bound (Thm 5.3 r-passive, Thm 5.6
	// active); EffortGapMeanTicks is the mean of the live effort-gap
	// histogram (measured inter-write gap minus that bound). Interrupted
	// marks a summary flushed on SIGINT/SIGTERM rather than at completion.
	EffortLowerBound  float64 `json:"effort_lower_bound_ticks_per_msg"`
	EffortGapMean     float64 `json:"effort_gap_mean_ticks,omitempty"`
	DeadlineMarginP99 int64   `json:"deadline_margin_p99_ticks,omitempty"`
	Interrupted       bool    `json:"interrupted,omitempty"`
	MetricsAddr       string  `json:"metrics_addr,omitempty"`
	TraceDropped      int64   `json:"trace_dropped,omitempty"`
	// Durable-store keys (PR 6; see EXPERIMENTS.md E22), present only with
	// -store-dir. Resumed counts sessions that restarted with a persisted
	// output tape; the Journal* keys snapshot the checkpoint journal.
	// Adaptive-control keys (PR 7; see EXPERIMENTS.md E23), present only
	// with -adaptive: the controller's final ladder level, intervention
	// counters, the per-k admission histogram and the per-level dwell
	// times in ticks.
	ControlLevel       string           `json:"control_level,omitempty"`
	ControlPaced       int64            `json:"control_paced,omitempty"`
	ControlPaceTicks   int64            `json:"control_pace_ticks,omitempty"`
	ControlGated       int64            `json:"control_gated,omitempty"`
	ControlRefused     int64            `json:"control_refused,omitempty"`
	ControlRTOChanges  int64            `json:"control_rto_changes,omitempty"`
	ControlEvictions   int64            `json:"control_evictions,omitempty"`
	ControlRetires     int64            `json:"control_retires,omitempty"`
	ControlKHist       map[string]int64 `json:"control_k_histogram,omitempty"`
	ControlDwell       map[string]int64 `json:"control_level_dwell_ticks,omitempty"`
	// Cross-family selection (this PR): the candidate the controller is
	// currently admitting under ("" = the native family) and how many
	// times it crossed a family boundary.
	ControlSelected    string `json:"control_selected,omitempty"`
	ControlFamSwitches int64  `json:"control_family_switches,omitempty"`
	StoreDir           string           `json:"store_dir,omitempty"`
	Resumed            int64            `json:"resumed,omitempty"`
	JournalSaves       int64            `json:"journal_saves,omitempty"`
	JournalSaveErrors  int64            `json:"journal_save_errors,omitempty"`
	JournalReplayed    int64            `json:"journal_replayed,omitempty"`
	JournalTruncations int64            `json:"journal_truncations,omitempty"`
	JournalCompactions int64            `json:"journal_compactions,omitempty"`
	JournalSizeBytes   int64            `json:"journal_size_bytes,omitempty"`
	JournalKeys        int64            `json:"journal_keys,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstpserve", flag.ContinueOnError)
	var (
		sessions    = fs.Int("sessions", 32, "number of sessions to transfer")
		conc        = fs.Int("conc", 0, "max concurrent sessions (default min(sessions, 512))")
		proto       = fs.String("proto", "beta", "protocol: alpha, beta, gamma or rateless")
		k           = fs.Int("k", 4, "packet alphabet size (beta/gamma/rateless)")
		rateless_   = fs.Bool("rateless", false, "serve the fountain-coded rateless burst protocol (shorthand for -proto rateless); natively loss-tolerant, so -harden/-stabilize do not apply")
		c1          = fs.Int64("c1", 2, "minimum step gap c1")
		c2          = fs.Int64("c2", 3, "maximum step gap c2")
		d           = fs.Int64("d", 12, "channel delay bound d")
		n           = fs.Int("n", 4, "input length per session, in blocks")
		tick        = fs.Duration("tick", transport.DefaultTick, "wall-clock length of one model tick")
		transName   = fs.String("transport", "mem", "transport: mem or udp")
		seed        = fs.Int64("seed", 1, "seed for inputs, delays and fault plans")
		harden      = fs.Bool("harden", false, "wrap sessions in the hardened reliability layer")
		stabilize   = fs.Bool("stabilize", false, "wrap sessions in the stabilizing recovery layer")
		storeDir    = fs.String("store-dir", "", "persist session checkpoints and output tapes into a journal in this directory (implies -stabilize; restarting against the same directory with the same -seed resumes interrupted sessions)")
		idle        = fs.Int64("idle", -1, "server idle-eviction threshold in ticks (-1 = off; the load generator evicts each session explicitly)")
		loss        = fs.Float64("loss", 0, "drop probability inside -fwindow (mem transport)")
		dup         = fs.Float64("dup", 0, "duplication probability inside -fwindow")
		corrupt     = fs.Float64("corrupt", 0, "corruption probability inside -fwindow")
		fwindow     = fs.String("fwindow", "0:2000", "send-time window from:to for -loss/-dup/-corrupt")
		blackout    = fs.String("blackout", "", "blackout window from:to (empty = none)")
		excess      = fs.Int64("excess", 0, "extra delay beyond d inside -fwindow")
		chaos       = fs.Bool("chaos", false, "inject the fault flags through the transport.Chaos middleware (works over any transport, including udp)")
		resilient   = fs.Bool("resilient", false, "wrap the transport in the transport.Resilient retransmission/breaker layer")
		shed        = fs.String("shed", "refuse", "overload policy at the -conc cap: refuse or evict-oldest-idle")
		adaptive    = fs.Bool("adaptive", false, "run the closed-loop control plane: occupancy-gated/paced admission, per-session k-selection from the paper's bound tables (beta/gamma; with -store-dir the chosen k is journaled and restarts resume under it), RTO adaptation (needs -resilient) and the shed-escalation ladder")
		watchdog    = fs.Int("watchdog", 0, "progress watchdog multiplier k: wedge a session after k*delta1*c2 ticks without output growth (0 = off)")
		bench       = fs.Bool("bench", false, "benchmark mode: also write the summary to -benchout")
		benchout    = fs.String("benchout", "BENCH_serve.json", "bench output file for -bench")
		verbose     = fs.Bool("v", false, "print one line per session")
		timeout     = fs.Duration("timeout", 2*time.Minute, "overall run deadline")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics (Prometheus text), /metrics.json (snapshot with live session table) and /debug/pprof on this address (empty = off)")
		trace       = fs.Bool("trace", false, "record per-session protocol event traces into bounded ring buffers (visible in the JSON snapshot)")
		flush       = fs.Duration("flush", 0, "print a one-line observability summary at this interval while the run is in flight (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rateless_ {
		*proto = "rateless"
	}

	// The registry always exists — with no -metrics-addr/-trace it costs a
	// handful of atomics on the hot path and nothing is ever scraped.
	reg := obs.NewRegistry()
	if *trace {
		reg.Tracer().Enable(512, 1024)
	}

	p := rstp.Params{C1: *c1, C2: *c2, D: *d}
	var store *journal.Store
	if *storeDir != "" {
		// Durable serving rides on the stabilized recovery layer: the
		// journal holds its checkpoints and the sessions' output tapes, and
		// Recover mode makes every (re)start load whatever the directory
		// already holds — empty on a first run, a mid-transfer snapshot
		// after a crash.
		*stabilize = true
		var jerr error
		store, jerr = journal.Open(*storeDir, journal.Options{Obs: reg})
		if jerr != nil {
			return fmt.Errorf("-store-dir: %w", jerr)
		}
		defer store.Close()
	}
	sol, blockBits, bound, lower, err := buildSolution(*proto, p, *k, *harden, *stabilize, storeOrNil(store), rstp.ObsObserver(reg), *seed, reg)
	if err != nil {
		return err
	}

	clauses, err := faultClauses(*loss, *dup, *corrupt, *excess, *fwindow, *blackout)
	if err != nil {
		return err
	}

	shedPolicy, err := parseShed(*shed)
	if err != nil {
		return err
	}
	if *watchdog < 0 {
		return fmt.Errorf("-watchdog %d: the multiplier must be >= 0 (0 disables the watchdog)", *watchdog)
	}

	clock := transport.NewClock(*tick)
	var (
		trans      transport.Transport
		udpT       *transport.UDP
		chaosT     *transport.Chaos
		resT       *transport.Resilient
		faultsDesc string
	)
	switch *transName {
	case "mem":
		var delay chanmodel.DelayPolicy = &chanmodel.UniformRandom{D: p.D, Rand: rand.New(rand.NewSource(*seed))}
		if len(clauses) > 0 && !*chaos {
			plan := faults.NewPlan(*seed, delay, clauses...)
			faultsDesc = plan.Name()
			delay = plan
		}
		trans = transport.NewMem(clock, transport.MemOptions{D: p.D, Delay: delay, Buffer: 1 << 15})
	case "udp":
		if len(clauses) > 0 && !*chaos {
			return fmt.Errorf("fault injection over udp needs -chaos (the middleware injects in front of the socket; bare UDP faults are the kernel's business)")
		}
		u, err := transport.NewUDPLoopback(1 << 14)
		if err != nil {
			return err
		}
		udpT = u
		trans = u
	default:
		return fmt.Errorf("unknown transport %q (mem, udp)", *transName)
	}
	if *chaos {
		if len(clauses) == 0 {
			return fmt.Errorf("-chaos without fault flags injects nothing: set -loss/-dup/-corrupt/-excess/-blackout")
		}
		// The plan wraps the zero delay policy: the middleware adds only
		// the *extra* chaos on top of whatever latency the inner transport
		// already has, instead of double-counting a base delay.
		plan := faults.NewPlan(*seed, chanmodel.Zero{}, clauses...)
		faultsDesc = "chaos:" + plan.Name()
		chaosT = transport.NewChaos(trans, clock, plan)
		trans = chaosT
	}
	if *resilient {
		resT = transport.NewResilient(trans, clock, transport.ResilientOptions{D: p.D, C1: p.C1, Seed: *seed})
		trans = resT
	}
	// Instrument the assembled stack outside-in: every layer (resilient,
	// chaos, mem/udp) registers its counters, and Mem starts feeding the
	// delivery-latency histogram.
	transport.Instrument(reg, trans)

	maxConc := *conc
	if maxConc <= 0 {
		maxConc = *sessions
		if maxConc > 512 {
			maxConc = 512
		}
	}
	// The adaptive control plane: built before the mux (it is the mux's
	// Admission hook), bound to its actuators after (the Server and the
	// resilient transport provide them).
	var ctrl *control.Controller
	kBlock := blockBits
	if *adaptive {
		if *proto == "rateless" {
			trans.Close()
			return fmt.Errorf("-adaptive needs a retransmission family as the native protocol (alpha, beta, gamma); rateless rides in its candidate set instead")
		}
		builders, block := adaptiveBuilders(*proto, p, *k, *harden, *stabilize, storeOrNil(store), rstp.ObsObserver(reg), sol, blockBits, *seed, reg)
		cands, block2 := adaptiveCandidates(*proto, p, *k, *harden, *stabilize, storeOrNil(store), rstp.ObsObserver(reg), *seed, reg)
		kBlock = lcmInt(block, block2)
		ctrl, err = control.New(control.Config{
			Registry: reg, Clock: clock, Params: p, Proto: *proto,
			Builders: builders, DefaultK: *k,
			Candidates:     cands,
			Store:          storeOrNil(store),
			Seed:           *seed,
			TargetSessions: maxConc,
		})
		if err != nil {
			trans.Close()
			return err
		}
	}

	pipeCfg := session.Config{
		Solution:         sol,
		Params:           p,
		Transport:        trans,
		Clock:            clock,
		MaxSessions:      maxConc,
		IdleTicks:        *idle,
		Shed:             shedPolicy,
		WatchdogK:        *watchdog,
		WatchdogResync:   *stabilize,
		Obs:              reg,
		EffortLowerBound: lower,
		Store:            storeOrNil(store),
	}
	if ctrl != nil {
		pipeCfg.Admission = ctrl
	}
	pipe, err := session.NewPipe(pipeCfg)
	if err != nil {
		trans.Close()
		return err
	}
	defer pipe.Close()

	if ctrl != nil {
		acts := control.Actuators{
			Active:        func() int64 { return int64(pipe.Server.ActiveCount()) },
			EvictOldest:   pipe.Server.ShedOldest,
			RetireStalled: pipe.Server.RetireStalled,
		}
		if resT != nil {
			acts.SetRTO = resT.SetRTO
		}
		ctrl.Bind(acts)
		ctrl.Start()
		defer ctrl.Stop()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	// SIGINT/SIGTERM cancel the in-flight transfers; the summary below is
	// still computed and flushed, marked "interrupted": true. Installed
	// before metricsReady fires so a test may signal as soon as it is told
	// the run is up.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	var boundAddr string
	if *metricsAddr != "" {
		msrv, err := reg.Serve(*metricsAddr)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		defer msrv.Close()
		boundAddr = msrv.Addr()
		fmt.Fprintf(out, "metrics listening on http://%s/metrics\n", boundAddr)
		if metricsReady != nil {
			metricsReady(boundAddr)
		}
	}

	stopFlush := make(chan struct{})
	flushDone := make(chan struct{})
	if *flush > 0 {
		go flushLoop(ctx, stopFlush, reg, out, *flush, flushDone)
	} else {
		close(flushDone)
	}

	// With k-selection on, the input length is a block multiple of every
	// candidate alphabet, so a retuned admission never rejects its input.
	bits := *n * kBlock
	rng := rand.New(rand.NewSource(*seed))
	inputs := make([][]wire.Bit, *sessions)
	for i := range inputs {
		inputs[i] = wire.RandomBits(bits, rng.Uint64)
	}

	type outcome struct {
		res session.TransferResult
		err error
	}
	start := time.Now()
	effortN := 0
	results := make([]outcome, *sessions)
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var (
				res session.TransferResult
				err error
			)
			if store != nil {
				// Durable runs pin session IDs to input indices: a restart
				// against the same directory and -seed re-runs session i+1
				// with the same input, so its persisted state is resumed
				// instead of orphaned under a fresh ID.
				res, err = pipe.TransferID(ctx, uint32(i+1), inputs[i])
			} else {
				res, err = pipe.Transfer(ctx, inputs[i])
			}
			results[i] = outcome{res: res, err: err}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	// Quiesce the flusher before anything else writes to out: the summary
	// must not interleave with a flush line.
	close(stopFlush)
	<-flushDone
	interrupted := ctx.Err() == context.Canceled // signal, not the -timeout deadline

	sum := summary{
		Schema:         "rstp-bench-serve/v1",
		Meta:           benchmatrix.NewMeta("rstp-bench-serve/v1", time.Now().UTC().Format(time.RFC3339)),
		Proto:          sol.String(),
		Transport:      trans.Name(),
		Sessions:       *sessions,
		BitsPerSession: bits,
		TickMicros:     float64(clock.Tick()) / float64(time.Microsecond),
		WallMS:         float64(wall) / float64(time.Millisecond),
		EffortBound:    bound,
		Faults:         faultsDesc,
	}
	for i, o := range results {
		res := o.res
		if o.err != nil {
			sum.Errors++
		}
		if res.Violation != "" {
			sum.Violations++
		}
		if res.Completed {
			sum.Completed++
		} else {
			sum.Incomplete++
		}
		sum.Sends += res.TX.Sends + res.RX.Sends
		sum.Deliveries += res.TX.Deliveries + res.RX.Deliveries
		sum.Writes += res.RX.Writes
		sum.Overflow += res.TX.Overflow + res.RX.Overflow
		sum.SendErrors += res.TX.SendErrors + res.RX.SendErrors
		// Effort statistics are over completed sessions only (the schema's
		// documented population): an incomplete session's last send tick
		// says nothing about the per-message cost the bound quantifies.
		if e := res.Effort(); e > 0 && res.Completed {
			sum.EffortMean += e
			effortN++
			if e > sum.EffortMax {
				sum.EffortMax = e
			}
		}
		if *verbose {
			fmt.Fprintf(out, "session %d: completed=%v writes=%d/%d effort=%.2f err=%v violation=%q\n",
				res.ID, res.Completed, res.RX.Writes, len(inputs[i]), res.Effort(), o.err, res.Violation)
		}
	}
	if effortN > 0 {
		sum.EffortMean /= float64(effortN)
	}
	if secs := wall.Seconds(); secs > 0 {
		sum.SessionsPerSec = float64(sum.Completed) / secs
		sum.GoodputMsgSec = float64(sum.Writes) / secs
	}
	sum.Refused = pipe.Server.Refused()
	sum.Late = pipe.Server.Late()
	sum.Stray = pipe.Dialer.Stray()
	srvAgg := pipe.Server.Aggregate()
	sum.Wedged = srvAgg.Wedged
	sum.Shed = pipe.Server.Shed()
	sum.Resyncs = srvAgg.Resyncs
	if udpT != nil {
		sum.UDPMalformed = udpT.Malformed()
		sum.UDPDropped = udpT.Dropped()
	}
	if chaosT != nil {
		_, dropped, duplicated, corrupted, delayed := chaosT.Stats()
		sum.ChaosDropped = dropped
		sum.ChaosDuplicated = duplicated
		sum.ChaosCorrupted = corrupted
		sum.ChaosDelayed = delayed
	}
	if resT != nil {
		sum.BreakerOpens = resT.BreakerOpens()
		sum.Retransmits = resT.Retransmits()
	}
	if ctrl != nil {
		cs := ctrl.State()
		sum.ControlLevel = cs.Level
		sum.ControlPaced = cs.Paced
		sum.ControlPaceTicks = cs.PaceTicks
		sum.ControlGated = cs.Gated
		sum.ControlRefused = cs.DialRefused + cs.ServerRefused
		sum.ControlRTOChanges = cs.RTOChanges
		sum.ControlEvictions = cs.Evictions
		sum.ControlRetires = cs.Retires
		sum.ControlKHist = cs.KHistogram
		sum.ControlDwell = cs.LevelDwellTicks
		sum.ControlSelected = cs.Selected
		sum.ControlFamSwitches = cs.FamilySwitches
	}
	sum.EffortLowerBound = lower
	sum.Interrupted = interrupted
	sum.MetricsAddr = boundAddr
	snap := reg.Snapshot()
	if h, ok := snap.Histograms["rstp_effort_gap_ticks"]; ok && h.Count > 0 {
		sum.EffortGapMean = h.Mean
	}
	if h, ok := snap.Histograms["rstp_deadline_margin_ticks"]; ok {
		sum.DeadlineMarginP99 = obs.BucketQuantile(h, 0.99)
	}
	if *trace {
		sum.TraceDropped = reg.Tracer().Dropped()
	}
	if store != nil {
		st := store.Stats()
		sum.StoreDir = *storeDir
		sum.Resumed = snap.Counters["rstp_sessions_resumed_total"]
		sum.JournalSaves = st.Saves
		sum.JournalSaveErrors = st.SaveErrors
		sum.JournalReplayed = st.Replayed
		sum.JournalTruncations = st.Truncations
		sum.JournalCompactions = st.Compactions
		sum.JournalSizeBytes = st.Size
		sum.JournalKeys = st.Keys
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		return err
	}
	if *bench {
		f, err := os.Create(*benchout)
		if err != nil {
			return err
		}
		benc := json.NewEncoder(f)
		benc.SetIndent("", "  ")
		err = benc.Encode(sum)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *benchout)
	}
	if sum.Violations > 0 {
		return fmt.Errorf("%d of %d sessions violated the prefix invariant", sum.Violations, *sessions)
	}
	if sum.Completed != *sessions {
		if interrupted {
			// Operator-initiated shutdown: the summary above is the flush;
			// incomplete sessions are expected, not a failure.
			return nil
		}
		return fmt.Errorf("%d of %d sessions did not complete (errors: %d)", sum.Incomplete, *sessions, sum.Errors)
	}
	return nil
}

// flushLoop prints a compact observability line every interval until the
// run finishes (stop) or is cancelled, then signals done. It is the only
// goroutine writing to out while transfers are in flight.
func flushLoop(ctx context.Context, stop <-chan struct{}, reg *obs.Registry, out io.Writer, interval time.Duration, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		case <-t.C:
			s := reg.Snapshot()
			fmt.Fprintf(out, "obs: active=%d writes=%d sends=%d deliveries=%d retransmits=%d shed=%d wedged=%d\n",
				s.Gauges["rstp_server_sessions_active"],
				s.Counters["rstp_session_writes_total"],
				s.Counters["rstp_session_sends_total"],
				s.Counters["rstp_session_deliveries_total"],
				s.Counters["rstp_resilient_retransmits_total"],
				s.Counters["rstp_sessions_shed_total"],
				s.Counters["rstp_sessions_wedged_total"])
		}
	}
}

// storeOrNil converts a possibly-nil *journal.Store into an interface
// value that is truly nil when the store is absent (a typed nil inside a
// non-nil interface would defeat every `!= nil` gate downstream).
func storeOrNil(s *journal.Store) rstp.StateStore {
	if s == nil {
		return nil
	}
	return s
}

// buildSolution assembles the protocol stack and reports its block size,
// the paper's effort upper bound for the bare protocol, and the matching
// effort lower bound (Theorem 5.3 for the r-passive alpha/beta, Theorem
// 5.6 for the active gamma and the rateless pair) that the live
// effort-gap metric is measured against. lo is shared by every session
// endpoint the wrappers build; store, when non-nil, makes the stabilized
// layer checkpoint into it and recover from it on construction. seed and
// reg only matter to the rateless family: the seed pins its per-block
// coded streams, the registry receives its rstp_rateless_* instruments.
func buildSolution(proto string, p rstp.Params, k int, harden, stabilize bool, store rstp.StateStore, lo rstp.LayerObserver, seed int64, reg *obs.Registry) (session.PairBuilder, int, float64, float64, error) {
	if proto == "rateless" {
		// The rateless pair is its own loss tolerance: the hardened and
		// stabilized wrappers speak the retransmission families' burst
		// framing and have nothing to add to a fountain-coded stream.
		if harden || stabilize {
			return nil, 0, 0, 0, fmt.Errorf("-proto rateless does not compose with -harden/-stabilize/-store-dir: loss tolerance is native to the code")
		}
		b, err := rateless.NewBuilder(rateless.Options{Params: p, K: k, Seed: seed, Obs: reg})
		if err != nil {
			return nil, 0, 0, 0, err
		}
		lower := rateless.LowerBound(p, k)
		if math.IsInf(lower, 1) || math.IsNaN(lower) {
			lower = 0
		}
		return b, b.BlockBits(), rateless.UpperBound(p, k), lower, nil
	}
	var (
		s     rstp.Solution
		bound float64
		lower float64
		err   error
	)
	switch proto {
	case "alpha":
		s, err = rstp.Alpha(p)
		if err == nil {
			bound = rstp.AlphaEffort(p)
			// Alpha's transmitter alphabet is binary: one bit per packet.
			lower = rstp.PassiveLowerBound(p, 2)
		}
	case "beta":
		s, err = rstp.Beta(p, k)
		if err == nil {
			bound = rstp.BetaUpperBound(p, k)
			lower = rstp.PassiveLowerBound(p, k)
		}
	case "gamma":
		s, err = rstp.Gamma(p, k)
		if err == nil {
			bound = rstp.GammaUpperBound(p, k)
			lower = rstp.ActiveLowerBound(p, k)
		}
	default:
		return nil, 0, 0, 0, fmt.Errorf("unknown protocol %q (alpha, beta, gamma, rateless)", proto)
	}
	if err != nil {
		return nil, 0, 0, 0, err
	}
	if math.IsInf(lower, 1) || math.IsNaN(lower) {
		lower = 0 // degenerate alphabet: disable the gap metric
	}
	sopts := rstp.StabilizeOptions{Observer: lo}
	if store != nil {
		sopts.Store = store
		sopts.Recover = true
	}
	var sol session.PairBuilder = s
	if harden && stabilize {
		sol = rstp.StabilizeHardened(rstp.Harden(s, rstp.HardenOptions{Observer: lo}), sopts)
	} else if harden {
		sol = rstp.Harden(s, rstp.HardenOptions{Observer: lo})
	} else if stabilize {
		sol = rstp.Stabilize(s, sopts)
	}
	return sol, s.BlockBits, bound, lower, nil
}

// adaptiveBuilders assembles the k-selection candidate set for
// -adaptive: the configured k plus its doubling (effort falls with
// log k, so one doubling is the meaningful escape hatch under
// slowdown), each wrapped exactly like the base solution. It also
// reports the lcm of the candidates' block sizes, which the input
// length must be a multiple of. Selection is off — the map stays
// single-entry — only for alpha (a binary alphabet has no k to
// select); durable runs keep the full set because the controller
// records each session's chosen k in the store ("s<id>/k") and resumes
// under it after a restart.
func adaptiveBuilders(proto string, p rstp.Params, baseK int, harden, stabilize bool, store rstp.StateStore, lo rstp.LayerObserver, baseSol session.PairBuilder, baseBlock int, seed int64, reg *obs.Registry) (map[int]session.PairBuilder, int) {
	builders := map[int]session.PairBuilder{baseK: baseSol}
	if proto == "alpha" {
		return builders, baseBlock
	}
	block := baseBlock
	if sol, bb, _, _, err := buildSolution(proto, p, 2*baseK, harden, stabilize, store, lo, seed, reg); err == nil {
		builders[2*baseK] = sol
		block = lcmInt(block, bb)
	}
	return builders, block
}

// adaptiveCandidates assembles the cross-family escape hatches for
// -adaptive: families whose effort upper bound the native one cannot
// reach under slowdown. Serving beta, the active gamma (a full round
// trip per burst but a tighter bound) and the rateless pair (no
// inter-burst wait at all) both ride along; serving gamma, only
// rateless is left above it. Each candidate is wrapped exactly like the
// base solution — except rateless, which is always bare. A candidate
// whose construction fails is simply absent: the controller then holds
// the native family, which is the safe default. The second result is
// the lcm of the candidates' block sizes (1 when there are none).
func adaptiveCandidates(proto string, p rstp.Params, baseK int, harden, stabilize bool, store rstp.StateStore, lo rstp.LayerObserver, seed int64, reg *obs.Registry) ([]control.Candidate, int) {
	var cands []control.Candidate
	block := 1
	add := func(family string) {
		h, st := harden, stabilize
		if family == "rateless" {
			h, st = false, false // natively loss-tolerant; restarts recover through the cumulative ack
		}
		sol, bb, upper, lower, err := buildSolution(family, p, baseK, h, st, store, lo, seed, reg)
		if err != nil || math.IsInf(upper, 1) || math.IsNaN(upper) {
			return
		}
		cands = append(cands, control.Candidate{Proto: family, K: baseK, Builder: sol, Lower: lower, Upper: upper})
		block = lcmInt(block, bb)
	}
	switch proto {
	case "beta":
		add("gamma")
		add("rateless")
	case "gamma":
		add("rateless")
	}
	return cands, block
}

func lcmInt(a, b int) int {
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}

// faultClauses assembles the -loss/-dup/-corrupt/-excess/-blackout flags
// into fault plan clauses, rstpchaos-style.
func faultClauses(loss, dup, corrupt float64, excess int64, fwindow, blackout string) ([]faults.Fault, error) {
	var clauses []faults.Fault
	if loss > 0 || dup > 0 || corrupt > 0 || excess > 0 {
		from, to, err := parseWindow(fwindow)
		if err != nil {
			return nil, fmt.Errorf("-fwindow: %w", err)
		}
		clauses = append(clauses, faults.Fault{
			From: from, To: to,
			Drop: loss, Dup: dup, Corrupt: corrupt, ExtraDelay: excess,
		})
	}
	if blackout != "" {
		from, to, err := parseWindow(blackout)
		if err != nil {
			return nil, fmt.Errorf("-blackout: %w", err)
		}
		clauses = append(clauses, faults.Fault{From: from, To: to, Blackout: true})
	}
	return clauses, nil
}

// parseShed maps the -shed flag onto a session.ShedPolicy.
func parseShed(s string) (session.ShedPolicy, error) {
	switch s {
	case "refuse", "":
		return session.ShedRefuse, nil
	case "evict-oldest-idle":
		return session.ShedEvictOldestIdle, nil
	default:
		return 0, fmt.Errorf("unknown -shed policy %q (refuse, evict-oldest-idle)", s)
	}
}

func parseWindow(s string) (int64, int64, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("window %q not in from:to form", s)
	}
	from, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	to, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	if to < from {
		return 0, 0, fmt.Errorf("window %q ends before it starts", s)
	}
	return from, to, nil
}
