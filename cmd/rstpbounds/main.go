// Command rstpbounds prints the paper's effort bounds (Theorems 5.3 and
// 5.6, Lemma 6.1, Section 6.2) for a chosen parameter point across a sweep
// of packet-alphabet sizes.
//
// Usage:
//
//	rstpbounds -c1 2 -c2 3 -d 12 -kmax 64
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/multiset"
	"repro/internal/rstp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstpbounds:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstpbounds", flag.ContinueOnError)
	var (
		c1   = fs.Int64("c1", 2, "minimum inter-step time c1 (ticks)")
		c2   = fs.Int64("c2", 3, "maximum inter-step time c2 (ticks)")
		d    = fs.Int64("d", 12, "channel delay bound d (ticks)")
		kmax = fs.Int("kmax", 64, "largest packet alphabet size (sweep doubles from 2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := rstp.Params{C1: *c1, C2: *c2, D: *d}
	if err := p.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(out, "RSTP effort bounds for %s, ⌈d/c1⌉ = %d\n", p, p.CeilSteps1())
	fmt.Fprintf(out, "eff(A^α) = %.2f ticks/message\n\n", rstp.AlphaEffort(p))
	fmt.Fprintf(out, "%4s  %12s  %12s  %12s  %12s  %12s  %12s\n",
		"k", "log2μ_k(δ1)", "passive LB", "A^β(k) UB", "log2μ_k(δ2)", "active LB", "A^γ(k) UB")
	for k := 2; k <= *kmax; k *= 2 {
		fmt.Fprintf(out, "%4d  %12.2f  %12.3f  %12.3f  %12.2f  %12.3f  %12.3f\n",
			k,
			multiset.Log2Mu(k, p.Delta1()),
			rstp.PassiveLowerBound(p, k),
			rstp.BetaUpperBound(p, k),
			multiset.Log2Mu(k, p.Delta2()),
			rstp.ActiveLowerBound(p, k),
			rstp.GammaUpperBound(p, k),
		)
	}
	return nil
}
