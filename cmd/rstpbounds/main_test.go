package main

import (
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"eff(A^α) = 18.00", "passive LB", "active LB", "64"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCustomParams(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-c1", "1", "-c2", "1", "-d", "8", "-kmax", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "eff(A^α) = 8.00") {
		t.Errorf("output missing alpha effort: %s", out)
	}
	if strings.Contains(out, "\n  64 ") {
		t.Error("kmax=4 should not include k=64")
	}
}

func TestRunInvalidParams(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-c1", "0"}, &sb); err == nil {
		t.Fatal("c1=0 should fail validation")
	}
	if err := run([]string{"-d", "1"}, &sb); err == nil {
		t.Fatal("d <= c2 should fail validation")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Fatal("bad flag should fail")
	}
}
