// Command rstpbench regenerates the paper's results tables (experiments
// E1..E16 of DESIGN.md).
//
// Usage:
//
//	rstpbench                   # all experiments, full workloads
//	rstpbench -e e4,e5          # selected experiments
//	rstpbench -quick -seed 7    # smaller workloads, chosen seed
//	rstpbench -parallel         # run all experiments concurrently
//	rstpbench -format csv       # machine-readable output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstpbench", flag.ContinueOnError)
	var (
		list     = fs.String("e", "all", "comma-separated experiment ids (e1..e16) or \"all\"")
		seed     = fs.Int64("seed", 1, "random seed for workloads")
		quick    = fs.Bool("quick", false, "smaller workloads (faster, looser asymptotics)")
		format   = fs.String("format", "table", "output format: table or csv")
		parallel = fs.Bool("parallel", false, "run all experiments concurrently (with -e all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick}

	if *list == "all" && *parallel {
		tables, err := experiments.AllParallel(cfg, 0)
		if err != nil {
			return err
		}
		for _, table := range tables {
			if err := render(out, table, *format); err != nil {
				return err
			}
		}
		return nil
	}

	ids := experiments.IDs()
	if *list != "all" {
		ids = nil
		for _, id := range strings.Split(*list, ",") {
			ids = append(ids, strings.ToLower(strings.TrimSpace(id)))
		}
	}
	reg := experiments.Registry()
	for _, id := range ids {
		gen, ok := reg[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(experiments.IDs(), ", "))
		}
		table, err := gen(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := render(out, table, *format); err != nil {
			return err
		}
	}
	return nil
}

func render(out io.Writer, table experiments.Table, format string) error {
	if format == "csv" {
		if _, err := fmt.Fprintf(out, "# %s — %s\n", table.ID, table.Title); err != nil {
			return err
		}
		if err := table.RenderCSV(out); err != nil {
			return err
		}
		_, err := fmt.Fprintln(out)
		return err
	}
	return table.Render(out)
}
