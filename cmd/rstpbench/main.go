// Command rstpbench regenerates the paper's results tables (experiments
// E1..E16 of DESIGN.md) and, with -matrix, runs the serving-stack
// benchmark matrix (internal/benchmatrix): {protocol × transport ×
// chaos plan × session count} cells reduced to one BENCH_matrix.json
// record each, optionally gated against a committed baseline.
//
// Usage:
//
//	rstpbench                   # all experiments, full workloads
//	rstpbench -e e4,e5          # selected experiments
//	rstpbench -quick -seed 7    # smaller workloads, chosen seed
//	rstpbench -parallel         # run all experiments concurrently
//	rstpbench -format csv       # machine-readable output
//	rstpbench -matrix -quick    # per-PR benchmark matrix tier
//	rstpbench -matrix -quick -baseline BENCH_matrix.json   # CI gate
//	rstpbench -matrix -cells beta4/mem -out /tmp/m.json    # one slice
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/benchmatrix"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstpbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstpbench", flag.ContinueOnError)
	var (
		list     = fs.String("e", "all", "comma-separated experiment ids (e1..e16) or \"all\"")
		seed     = fs.Int64("seed", 1, "random seed for workloads")
		quick    = fs.Bool("quick", false, "smaller workloads (faster, looser asymptotics); with -matrix, the per-PR quick tier")
		format   = fs.String("format", "table", "output format: table or csv")
		parallel = fs.Bool("parallel", false, "run all experiments concurrently (with -e all)")

		matrix    = fs.Bool("matrix", false, "run the serving-stack benchmark matrix instead of the paper experiments")
		cells     = fs.String("cells", "", "with -matrix: comma-separated substrings selecting cells by name (e.g. beta4/mem,udp)")
		outFile   = fs.String("out", "BENCH_matrix.json", "with -matrix: artifact output file")
		baseline  = fs.String("baseline", "", "with -matrix: committed BENCH_matrix.json to gate against (exit nonzero on regression)")
		threshold = fs.Float64("threshold", 0.10, "with -matrix -baseline: relative goodput drop that fails the gate")
		tick      = fs.Duration("tick", 50*time.Microsecond, "with -matrix: wall-clock length of one model tick")
		attempts  = fs.Int("attempts", 3, "with -matrix: runs per throughput-gated cell, best kept (scheduler-noise rejection)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *matrix {
		return runMatrix(out, *quick, *cells, *outFile, *baseline, *threshold, *seed, *tick, *attempts)
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q", *format)
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick}

	if *list == "all" && *parallel {
		tables, err := experiments.AllParallel(cfg, 0)
		if err != nil {
			return err
		}
		for _, table := range tables {
			if err := render(out, table, *format); err != nil {
				return err
			}
		}
		return nil
	}

	ids := experiments.IDs()
	if *list != "all" {
		ids = nil
		for _, id := range strings.Split(*list, ",") {
			ids = append(ids, strings.ToLower(strings.TrimSpace(id)))
		}
	}
	reg := experiments.Registry()
	for _, id := range ids {
		gen, ok := reg[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(experiments.IDs(), ", "))
		}
		table, err := gen(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := render(out, table, *format); err != nil {
			return err
		}
	}
	return nil
}

// runMatrix is the -matrix entry point: enumerate the tier, apply the
// -cells filter, run every cell, write the artifact, and — when a
// -baseline is given — gate the run against it, printing the top
// regressed cells and failing on any regression.
func runMatrix(out io.Writer, quick bool, cellsExpr, outFile, baseline string, threshold float64, seed int64, tick time.Duration, attempts int) error {
	tier := benchmatrix.TierFull
	if quick {
		tier = benchmatrix.TierQuick
	}
	cells, err := benchmatrix.Filter(benchmatrix.Enumerate(tier), cellsExpr)
	if err != nil {
		return err
	}
	// Load the baseline before spending minutes running cells: a stale
	// or malformed baseline should fail immediately.
	var base *benchmatrix.File
	if baseline != "" {
		base, err = benchmatrix.Load(baseline)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "benchmark matrix: tier=%s cells=%d seed=%d tick=%s\n", tier, len(cells), seed, tick)
	f, err := benchmatrix.Run(context.Background(), cells, benchmatrix.RunConfig{
		Seed:     seed,
		Tick:     tick,
		Attempts: attempts,
		Wall:     time.Now().UTC().Format(time.RFC3339),
		Logf:     func(format string, args ...any) { fmt.Fprintf(out, format+"\n", args...) },
	})
	if err != nil {
		return err
	}
	f.Tier = tier.String()
	if err := f.Write(outFile); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d cells, commit %s)\n", outFile, len(f.Cells), f.Meta.Commit)
	if base == nil {
		return nil
	}
	cmp := benchmatrix.Compare(base, f, benchmatrix.CompareOptions{Threshold: threshold})
	cmp.Render(out, 10)
	if n := len(cmp.Regressions); n > 0 {
		return fmt.Errorf("%d cell(s) regressed against %s", n, baseline)
	}
	return nil
}

func render(out io.Writer, table experiments.Table, format string) error {
	if format == "csv" {
		if _, err := fmt.Fprintf(out, "# %s — %s\n", table.ID, table.Title); err != nil {
			return err
		}
		if err := table.RenderCSV(out); err != nil {
			return err
		}
		_, err := fmt.Fprintln(out)
		return err
	}
	return table.Render(out)
}
