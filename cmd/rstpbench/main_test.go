package main

import (
	"strings"
	"testing"
)

func TestRunSelectedExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-e", "e2,e3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E2", "Theorem 5.3", "E3", "Theorem 5.6"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "E4") {
		t.Error("unselected experiment in output")
	}
}

func TestRunParallelAll(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-parallel"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E1 —", "E8 —", "E16 —"} {
		if !strings.Contains(out, want) {
			t.Errorf("parallel output missing %q", want)
		}
	}
	// ID order preserved.
	if strings.Index(out, "E1 —") > strings.Index(out, "E2 —") {
		t.Error("tables out of order")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-e", "e2", "-format", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# E2") {
		t.Errorf("csv missing comment header:\n%s", out)
	}
	if !strings.Contains(out, "c1,c2,d,") {
		t.Errorf("csv missing column header:\n%s", out)
	}
	if err := run([]string{"-format", "nope"}, &sb); err == nil {
		t.Error("bad format should fail")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-e", "e99"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown experiment", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("all experiments take a few seconds")
	}
	var sb strings.Builder
	if err := run([]string{"-quick", "-seed", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		id := "E" + string(rune('0'+i%10))
		_ = id // ids E1..E12; check a few explicitly below
	}
	for _, want := range []string{"E1 —", "E7 —", "E12 —"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}
