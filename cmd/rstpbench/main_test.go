package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchmatrix"
)

func TestRunSelectedExperiments(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-e", "e2,e3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E2", "Theorem 5.3", "E3", "Theorem 5.6"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "E4") {
		t.Error("unselected experiment in output")
	}
}

func TestRunParallelAll(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-parallel"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E1 —", "E8 —", "E16 —"} {
		if !strings.Contains(out, want) {
			t.Errorf("parallel output missing %q", want)
		}
	}
	// ID order preserved.
	if strings.Index(out, "E1 —") > strings.Index(out, "E2 —") {
		t.Error("tables out of order")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-e", "e2", "-format", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# E2") {
		t.Errorf("csv missing comment header:\n%s", out)
	}
	if !strings.Contains(out, "c1,c2,d,") {
		t.Errorf("csv missing column header:\n%s", out)
	}
	if err := run([]string{"-format", "nope"}, &sb); err == nil {
		t.Error("bad format should fail")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-e", "e99"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown experiment", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Fatal("bad flag should fail")
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("all experiments take a few seconds")
	}
	var sb strings.Builder
	if err := run([]string{"-quick", "-seed", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		id := "E" + string(rune('0'+i%10))
		_ = id // ids E1..E12; check a few explicitly below
	}
	for _, want := range []string{"E1 —", "E7 —", "E12 —"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestRunMatrixSlice drives the -matrix path end to end on one small
// cell slice: artifact written with meta and measurements, then a gate
// pass against its own output and a gate failure against a doctored
// faster baseline.
func TestRunMatrixSlice(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "m.json")
	var sb strings.Builder
	if err := run([]string{"-matrix", "-quick", "-cells", "beta4/mem/none/s1", "-out", out, "-tick", "20us"}, &sb); err != nil {
		t.Fatalf("matrix run: %v\n%s", err, sb.String())
	}
	f, err := benchmatrix.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cells) != 1 || f.Cells[0].Violations != 0 || f.Cells[0].GoodputMsgSec <= 0 {
		t.Fatalf("artifact cells = %+v", f.Cells)
	}
	if f.Meta.Schema != benchmatrix.Schema || f.Meta.GoVersion == "" {
		t.Fatalf("artifact meta = %+v", f.Meta)
	}
	if f.Tier != "quick" {
		t.Errorf("tier = %q, want quick", f.Tier)
	}

	// Gating a run against its own output passes. Two back-to-back
	// wall-clock measurements of one tiny cell can swing past the default
	// 10% on a loaded machine, so this plumbing check uses the same
	// loosened threshold CI grants hosted runners; the doctored baseline
	// below is 100x, far past either threshold.
	sb.Reset()
	out2 := filepath.Join(dir, "m2.json")
	if err := run([]string{"-matrix", "-quick", "-cells", "beta4/mem/none/s1", "-out", out2, "-tick", "20us", "-threshold", "0.6", "-baseline", out}, &sb); err != nil {
		t.Fatalf("self-gate: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "no regressions") {
		t.Errorf("gate output missing verdict:\n%s", sb.String())
	}

	// A baseline claiming 100x the goodput fails the gate and names the
	// regressed cell.
	doctored := *f
	doctored.Cells = append([]benchmatrix.Record(nil), f.Cells...)
	doctored.Cells[0].GoodputMsgSec *= 100
	base := filepath.Join(dir, "fast.json")
	if err := doctored.Write(base); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	err = run([]string{"-matrix", "-quick", "-cells", "beta4/mem/none/s1", "-out", out2, "-tick", "20us", "-threshold", "0.6", "-baseline", base}, &sb)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("doctored gate err = %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "beta4/mem/none/s1") || !strings.Contains(sb.String(), "goodput dropped") {
		t.Errorf("gate output does not name the regressed cell:\n%s", sb.String())
	}
}

// TestRunMatrixBadBaseline: a stale or foreign baseline fails before
// any cell runs.
func TestRunMatrixBadBaseline(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "stale.json")
	if err := os.WriteFile(stale, []byte(`{"meta":{"schema":"rstp-bench-matrix/v0"},"cells":[{"proto":"beta"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-matrix", "-baseline", stale}, &sb)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("stale baseline err = %v", err)
	}
	if err := run([]string{"-matrix", "-cells", "nosuchcell"}, &sb); err == nil {
		t.Fatal("empty -cells selection should fail")
	}
}
