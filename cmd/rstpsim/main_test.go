package main

import (
	"strings"
	"testing"
)

func TestRunEachProtocol(t *testing.T) {
	for _, proto := range []string{"alpha", "beta", "gamma"} {
		t.Run(proto, func(t *testing.T) {
			var sb strings.Builder
			if err := run([]string{"-proto", proto, "-n", "16", "-k", "4"}, &sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			for _, want := range []string{"Y == X      true", "good(A)     yes", "effort"} {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestRunExplicitInputWithPadding(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-proto", "beta", "-k", "4", "-input", "101"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(3 padding)") {
		t.Errorf("expected 3 padding bits:\n%s", sb.String())
	}
}

func TestRunSchedulesAndDelays(t *testing.T) {
	for _, sched := range []string{"slow", "fast", "alternating", "random"} {
		for _, delay := range []string{"max", "zero", "random", "reverse", "batch"} {
			var sb strings.Builder
			args := []string{"-proto", "beta", "-k", "4", "-n", "24", "-sched", sched, "-delay", delay}
			if err := run(args, &sb); err != nil {
				t.Fatalf("sched=%s delay=%s: %v", sched, delay, err)
			}
		}
	}
}

func TestRunGammaReverse(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-proto", "gamma", "-k", "4", "-n", "16", "-delay", "reverse"}, &sb); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-proto", "alpha", "-input", "10", "-trace"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"t=0 t: send", "write(1)", "wait_t"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestRunTimelineOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-proto", "beta", "-k", "4", "-input", "101101", "-timeline"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tick", "──▶", "(recv)"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
}

func TestRunStatsOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-proto", "gamma", "-k", "4", "-n", "20", "-stats"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"peak in flight", "delay", "steps"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q", want)
		}
	}
}

func TestRunGenBetaWindow(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-proto", "genbeta", "-d1", "8", "-n", "24"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"genbeta", "slack=4", "Y == X      true", "window form"} {
		if !strings.Contains(out, want) {
			t.Errorf("genbeta output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"-proto", "genbeta", "-d1", "99"}, &sb); err == nil {
		t.Error("d1 > d2 should fail")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	cases := [][]string{
		{"-proto", "nope"},
		{"-sched", "nope"},
		{"-delay", "nope"},
		{"-input", "10x"},
		{"-proto", "beta", "-k", "1"},
		{"-c1", "0"},
		{"-zzz"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
