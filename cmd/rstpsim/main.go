// Command rstpsim runs one RSTP protocol on one input under chosen
// schedules and prints the outcome (optionally the full timed trace).
//
// Usage:
//
//	rstpsim -proto beta -k 4 -c1 2 -c2 3 -d 12 -n 64
//	rstpsim -proto alpha -input 101100 -trace
//	rstpsim -proto gamma -k 8 -sched random -delay random -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/chanmodel"
	"repro/internal/rstp"
	"repro/internal/rstpx"
	"repro/internal/sim"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstpsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstpsim", flag.ContinueOnError)
	var (
		proto    = fs.String("proto", "beta", "protocol: alpha, beta, gamma or genbeta (§7 window model)")
		k        = fs.Int("k", 4, "packet alphabet size (beta/gamma/genbeta)")
		c1       = fs.Int64("c1", 2, "minimum inter-step time (ticks)")
		c2       = fs.Int64("c2", 3, "maximum inter-step time (ticks)")
		d        = fs.Int64("d", 12, "channel delay bound (ticks); genbeta: the window's d2")
		d1       = fs.Int64("d1", 0, "genbeta: the delivery window's lower bound d1")
		input    = fs.String("input", "", "explicit 0/1 input (padded to a block multiple)")
		n        = fs.Int("n", 64, "random input length in bits when -input is empty")
		sched    = fs.String("sched", "slow", "step schedule: slow, fast, alternating or random")
		delay    = fs.String("delay", "max", "channel adversary: max, zero, random, reverse or batch")
		seed     = fs.Int64("seed", 1, "random seed")
		trace    = fs.Bool("trace", false, "print the full timed trace")
		stats    = fs.Bool("stats", false, "print run statistics")
		timeline = fs.Bool("timeline", false, "print a space-time diagram (first 60 events)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *proto == "genbeta" {
		return runGenBeta(out, *c1, *c2, *d1, *d, *k, *input, *n, *seed)
	}

	p := rstp.Params{C1: *c1, C2: *c2, D: *d}
	var (
		s   rstp.Solution
		err error
	)
	switch *proto {
	case "alpha":
		s, err = rstp.Alpha(p)
	case "beta":
		s, err = rstp.Beta(p, *k)
	case "gamma":
		s, err = rstp.Gamma(p, *k)
	default:
		return fmt.Errorf("unknown protocol %q", *proto)
	}
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var x []wire.Bit
	if *input != "" {
		x, err = wire.ParseBits(*input)
		if err != nil {
			return err
		}
	} else {
		x = wire.RandomBits(*n, rng.Uint64)
	}
	var pad int
	x, pad = rstp.PadToBlock(x, s.BlockBits)

	var policy sim.StepPolicy
	switch *sched {
	case "slow":
		policy = sim.FixedGap{C: p.C2}
	case "fast":
		policy = sim.FixedGap{C: p.C1}
	case "alternating":
		policy = sim.AlternatingGap{C1: p.C1, C2: p.C2}
	case "random":
		policy = sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: rng.Int63n}
	default:
		return fmt.Errorf("unknown schedule %q", *sched)
	}

	var dp chanmodel.DelayPolicy
	switch *delay {
	case "max":
		dp = chanmodel.MaxDelay{D: p.D}
	case "zero":
		dp = chanmodel.Zero{}
	case "random":
		dp = &chanmodel.UniformRandom{D: p.D, Rand: rng}
	case "reverse":
		burst := p.Delta1()
		if s.Kind == rstp.KindGamma {
			burst = p.Delta2()
		}
		dp = chanmodel.ReverseBurst{D: p.D, Burst: burst, StepGap: p.C1}
	case "batch":
		dp = chanmodel.IntervalBatch{D: p.D}
	default:
		return fmt.Errorf("unknown delay policy %q", *delay)
	}

	runResult, err := s.Run(x, rstp.RunOptions{TPolicy: policy, RPolicy: policy, Delay: dp})
	if err != nil {
		return err
	}

	if *trace {
		for _, e := range runResult.Trace {
			fmt.Fprintln(out, e)
		}
		fmt.Fprintln(out)
	}
	if *stats {
		fmt.Fprintln(out, sim.Collect(runResult, rstp.TransmitterName, rstp.ReceiverName))
		fmt.Fprintln(out)
	}
	if *timeline {
		if err := sim.Timeline(out, runResult, rstp.TransmitterName, rstp.ReceiverName, 60); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	fmt.Fprintf(out, "protocol    %s  (%s)\n", s, p)
	fmt.Fprintf(out, "schedule    %s   channel %s\n", policy.Name(), dp.Name())
	fmt.Fprintf(out, "input       %d bits (%d padding)\n", len(x), pad)
	fmt.Fprintf(out, "events      %d  (sends %d, writes %d)\n", len(runResult.Trace), runResult.SendCount, runResult.WriteCount)
	if last, ok := runResult.LastSendTime(); ok {
		fmt.Fprintf(out, "last send   t=%d  -> effort %.3f ticks/message\n", last, float64(last)/float64(len(x)))
	}
	if last, ok := runResult.LastWriteTime(); ok {
		fmt.Fprintf(out, "last write  t=%d\n", last)
	}
	match := wire.BitsToString(runResult.Writes()) == wire.BitsToString(x)
	fmt.Fprintf(out, "Y == X      %v\n", match)
	if v := s.Verify(runResult, x); len(v) == 0 {
		fmt.Fprintln(out, "good(A)     yes")
	} else {
		fmt.Fprintf(out, "good(A)     NO — %d violations, first: %v\n", len(v), v[0])
	}
	if !match {
		return fmt.Errorf("output mismatch")
	}
	return nil
}

// runGenBeta drives the Section 7 generalised burst protocol on a
// delivery window [d1, d2] under its worst-case conditions.
func runGenBeta(out io.Writer, c1, c2, d1, d2 int64, k int, input string, n int, seed int64) error {
	p := rstpx.GenParams{TC1: c1, TC2: c2, RC1: c1, RC2: c2, D1: d1, D2: d2}
	s, err := rstpx.NewGenBeta(p, k)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	var x []wire.Bit
	if input != "" {
		if x, err = wire.ParseBits(input); err != nil {
			return err
		}
	} else {
		x = wire.RandomBits(n, rng.Uint64)
	}
	var pad int
	x, pad = rstp.PadToBlock(x, s.BlockBits)
	run, err := s.Run(x, rstpx.GenRunOptions{
		Delay: &chanmodel.UniformWindow{D1: d1, D2: d2, Rand: rng},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "protocol    %s  (%s)\n", s, p)
	fmt.Fprintf(out, "input       %d bits (%d padding)\n", len(x), pad)
	if last, ok := run.LastSendTime(); ok {
		fmt.Fprintf(out, "last send   t=%d  -> effort %.3f ticks/message (gen upper %.3f, gen lower %.3f)\n",
			last, float64(last)/float64(len(x)),
			rstpx.GenBetaUpperBound(p, k, s.Burst), rstpx.GenPassiveLowerBound(p, k))
	}
	match := wire.BitsToString(run.Writes()) == wire.BitsToString(x)
	fmt.Fprintf(out, "Y == X      %v\n", match)
	if v := s.Verify(run, x); len(v) == 0 {
		fmt.Fprintln(out, "good(A)     yes (window form)")
	} else {
		fmt.Fprintf(out, "good(A)     NO — %d violations, first: %v\n", len(v), v[0])
	}
	if !match {
		return fmt.Errorf("output mismatch")
	}
	return nil
}
