// Command rstpchaos chaos-tests the RSTP protocols: it runs a solution —
// bare or hardened — under a seeded, time-windowed fault plan and reports
// the channel watchdog's degradation verdict, the safety/liveness
// outcome, and the recovery time after the faults heal.
//
// Usage:
//
//	rstpchaos -sweep                       # the E17 fault-sweep table
//	rstpchaos -proto beta -loss 0.3        # one chaos run, hardened
//	rstpchaos -proto gamma -blackout 100:400 -unhardened
//	rstpchaos -proto alpha -corrupt 0.5 -fwindow 0:600 -seed 7
//
// Fault flags compose into a single plan: -loss/-dup/-corrupt apply over
// the -fwindow send-time window, -blackout and -excess carve their own
// windows. All randomness is seeded, so a given flag set reproduces the
// same run byte for byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/chanmodel"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstpchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstpchaos", flag.ContinueOnError)
	var (
		sweep      = fs.Bool("sweep", false, "print the E17 fault-sweep table and exit")
		quick      = fs.Bool("quick", false, "smaller sweep workload")
		proto      = fs.String("proto", "beta", "protocol: alpha, beta or gamma")
		k          = fs.Int("k", 4, "packet alphabet size (beta/gamma)")
		c1         = fs.Int64("c1", 2, "minimum step gap c1")
		c2         = fs.Int64("c2", 3, "maximum step gap c2")
		d          = fs.Int64("d", 12, "channel delay bound d")
		n          = fs.Int("n", 12, "input length in blocks")
		seed       = fs.Int64("seed", 1, "seed for the fault plan and input")
		unhardened = fs.Bool("unhardened", false, "run the bare protocol instead of the hardened wrapper")
		loss       = fs.Float64("loss", 0, "drop probability inside -fwindow")
		dup        = fs.Float64("dup", 0, "duplication probability inside -fwindow")
		corrupt    = fs.Float64("corrupt", 0, "corruption probability inside -fwindow")
		fwindow    = fs.String("fwindow", "0:600", "send-time window from:to for -loss/-dup/-corrupt")
		blackout   = fs.String("blackout", "", "blackout window from:to (empty = none)")
		excess     = fs.Int64("excess", 0, "extra delay beyond d applied inside -fwindow")
		maxTicks   = fs.Int64("maxticks", 1_000_000, "simulation tick cap")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *sweep {
		table, err := experiments.E17FaultSweep(experiments.Config{Seed: *seed, Quick: *quick})
		if err != nil {
			return err
		}
		return table.Render(out)
	}

	p := rstp.Params{C1: *c1, C2: *c2, D: *d}
	var (
		s   rstp.Solution
		err error
	)
	switch *proto {
	case "alpha":
		s, err = rstp.Alpha(p)
	case "beta":
		s, err = rstp.Beta(p, *k)
	case "gamma":
		s, err = rstp.Gamma(p, *k)
	default:
		return fmt.Errorf("unknown protocol %q (alpha, beta, gamma)", *proto)
	}
	if err != nil {
		return err
	}

	var clauses []faults.Fault
	if *loss > 0 || *dup > 0 || *corrupt > 0 || *excess > 0 {
		from, to, err := parseWindow(*fwindow)
		if err != nil {
			return fmt.Errorf("-fwindow: %w", err)
		}
		clauses = append(clauses, faults.Fault{
			From: from, To: to,
			Drop: *loss, Dup: *dup, Corrupt: *corrupt, ExtraDelay: *excess,
		})
	}
	if *blackout != "" {
		from, to, err := parseWindow(*blackout)
		if err != nil {
			return fmt.Errorf("-blackout: %w", err)
		}
		clauses = append(clauses, faults.Fault{From: from, To: to, Blackout: true})
	}
	plan := faults.NewPlan(*seed, chanmodel.MaxDelay{D: p.D}, clauses...)

	x := patternBits(*n * s.BlockBits)
	opt := rstp.RunOptions{Delay: plan, MaxTicks: *maxTicks}

	name := s.String()
	hs := rstp.Harden(s, rstp.HardenOptions{})
	var (
		r      *sim.Run
		runErr error
	)
	if *unhardened {
		r, runErr = s.Run(x, opt)
	} else {
		name = hs.String()
		r, runErr = hs.Run(x, opt)
	}
	if r == nil {
		return runErr
	}

	fmt.Fprintf(out, "protocol:  %s\n", name)
	fmt.Fprintf(out, "params:    c1=%d c2=%d d=%d, |X|=%d bits\n", p.C1, p.C2, p.D, len(x))
	fmt.Fprintf(out, "plan:      %s\n", plan.Name())
	affected, dropped, duplicated, corrupted, delayed := plan.Stats()
	fmt.Fprintf(out, "injected:  %d affected, %d dropped, %d duplicated, %d corrupted, %d delayed\n",
		affected, dropped, duplicated, corrupted, delayed)
	if r.Degradation != nil {
		fmt.Fprintf(out, "watchdog:  %s\n", r.Degradation)
	}

	safety := timed.PrefixInvariant(r.Trace, x, false)
	complete := runErr == nil && len(timed.PrefixInvariant(r.Trace, x, true)) == 0
	fmt.Fprintf(out, "safety:    %d prefix violations\n", len(safety))
	fmt.Fprintf(out, "delivered: %d/%d bits (Y=X: %v)\n", r.WriteCount, len(x), complete)
	if last, ok := r.LastWriteTime(); ok {
		fmt.Fprintf(out, "last write: t=%d\n", last)
		if complete && plan.End() > 0 && last > plan.End() {
			fmt.Fprintf(out, "recovery:  %d ticks after the heal at t=%d\n", last-plan.End(), plan.End())
		}
	}
	if runErr != nil {
		fmt.Fprintf(out, "run ended early: %v\n", runErr)
	}
	if len(safety) > 0 {
		return fmt.Errorf("output tape corrupted: %v", safety[0])
	}
	return nil
}

// parseWindow parses "from:to".
func parseWindow(s string) (from, to int64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want from:to, got %q", s)
	}
	if from, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return 0, 0, err
	}
	if to, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return 0, 0, err
	}
	if to <= from {
		return 0, 0, fmt.Errorf("empty window %q", s)
	}
	return from, to, nil
}

// patternBits builds a fixed non-trivial bit pattern.
func patternBits(n int) []wire.Bit {
	x := make([]wire.Bit, n)
	for i := range x {
		if i%3 == 0 || i%7 == 2 {
			x[i] = wire.One
		}
	}
	return x
}
