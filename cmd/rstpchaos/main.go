// Command rstpchaos chaos-tests the RSTP protocols: it runs a solution —
// bare, hardened, and/or stabilized — under seeded, time-windowed channel
// and process fault plans and reports the channel watchdog's degradation
// verdict, the safety/liveness outcome, the per-run stabilization report,
// and the recovery time after the faults heal.
//
// Usage:
//
//	rstpchaos -sweep                       # the E17 channel fault-sweep table
//	rstpchaos -crashsweep                  # the E18 process crash-sweep table
//	rstpchaos -proto beta -loss 0.3        # one chaos run, hardened
//	rstpchaos -proto gamma -blackout 100:400 -unhardened
//	rstpchaos -proto alpha -corrupt 0.5 -fwindow 0:600 -seed 7
//	rstpchaos -proto beta -stabilize -procfaults t:crash:60:240,r:corrupt:150
//	rstpchaos -proto beta -stabilize -loss 0.3 -procfaults r:crashcorrupt:80:240
//
// Fault flags compose into a single plan: -loss/-dup/-corrupt apply over
// the -fwindow send-time window, -blackout and -excess carve their own
// windows. -procfaults adds process faults (crash, crash+checkpoint
// corruption, live corruption, step-rate stretch); -stabilize wraps the
// stack in the self-stabilizing recovery layer that absorbs them. All
// randomness is seeded, so a given flag set reproduces the same run byte
// for byte. The tool exits nonzero whenever the output tape violates the
// prefix invariant.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/chanmodel"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstpchaos:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstpchaos", flag.ContinueOnError)
	var (
		sweep      = fs.Bool("sweep", false, "print the E17 fault-sweep table and exit")
		crashSweep = fs.Bool("crashsweep", false, "print the E18 crash-sweep table and exit")
		quick      = fs.Bool("quick", false, "smaller sweep workload")
		proto      = fs.String("proto", "beta", "protocol: alpha, beta or gamma")
		k          = fs.Int("k", 4, "packet alphabet size (beta/gamma)")
		c1         = fs.Int64("c1", 2, "minimum step gap c1")
		c2         = fs.Int64("c2", 3, "maximum step gap c2")
		d          = fs.Int64("d", 12, "channel delay bound d")
		n          = fs.Int("n", 12, "input length in blocks")
		seed       = fs.Int64("seed", 1, "seed for the fault plan and input")
		unhardened = fs.Bool("unhardened", false, "run the bare protocol instead of the hardened wrapper")
		loss       = fs.Float64("loss", 0, "drop probability inside -fwindow")
		dup        = fs.Float64("dup", 0, "duplication probability inside -fwindow")
		corrupt    = fs.Float64("corrupt", 0, "corruption probability inside -fwindow")
		fwindow    = fs.String("fwindow", "0:600", "send-time window from:to for -loss/-dup/-corrupt")
		blackout   = fs.String("blackout", "", "blackout window from:to (empty = none)")
		excess     = fs.Int64("excess", 0, "extra delay beyond d applied inside -fwindow")
		procFaults = fs.String("procfaults", "", "process fault clauses proc:kind:from[:to], comma-separated (kinds: crash, crashcorrupt, corrupt, rateN)")
		stabilize  = fs.Bool("stabilize", false, "wrap the stack in the stabilizing recovery layer")
		maxTicks   = fs.Int64("maxticks", 1_000_000, "simulation tick cap")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *sweep {
		table, err := experiments.E17FaultSweep(experiments.Config{Seed: *seed, Quick: *quick})
		if err != nil {
			return err
		}
		return table.Render(out)
	}
	if *crashSweep {
		table, err := experiments.E18CrashSweep(experiments.Config{Seed: *seed, Quick: *quick})
		if err != nil {
			return err
		}
		return table.Render(out)
	}

	p := rstp.Params{C1: *c1, C2: *c2, D: *d}
	var (
		s   rstp.Solution
		err error
	)
	switch *proto {
	case "alpha":
		s, err = rstp.Alpha(p)
	case "beta":
		s, err = rstp.Beta(p, *k)
	case "gamma":
		s, err = rstp.Gamma(p, *k)
	default:
		return fmt.Errorf("unknown protocol %q (alpha, beta, gamma)", *proto)
	}
	if err != nil {
		return err
	}

	var clauses []faults.Fault
	if *loss > 0 || *dup > 0 || *corrupt > 0 || *excess > 0 {
		from, to, err := parseWindow(*fwindow)
		if err != nil {
			return fmt.Errorf("-fwindow: %w", err)
		}
		clauses = append(clauses, faults.Fault{
			From: from, To: to,
			Drop: *loss, Dup: *dup, Corrupt: *corrupt, ExtraDelay: *excess,
		})
	}
	if *blackout != "" {
		from, to, err := parseWindow(*blackout)
		if err != nil {
			return fmt.Errorf("-blackout: %w", err)
		}
		clauses = append(clauses, faults.Fault{From: from, To: to, Blackout: true})
	}
	plan := faults.NewPlan(*seed, chanmodel.MaxDelay{D: p.D}, clauses...)

	var procPlan *faults.ProcPlan
	if *procFaults != "" {
		pcs, err := parseProcFaults(*procFaults)
		if err != nil {
			return fmt.Errorf("-procfaults: %w", err)
		}
		procPlan = faults.NewProcPlan(*seed, pcs...)
	}

	x := patternBits(*n * s.BlockBits)
	opt := rstp.RunOptions{Delay: plan, MaxTicks: *maxTicks}
	if procPlan != nil {
		opt.ProcFaults = procPlan
	}

	name := s.String()
	hs := rstp.Harden(s, rstp.HardenOptions{})
	var (
		r      *sim.Run
		runErr error
	)
	switch {
	case *stabilize && *unhardened:
		ss := rstp.Stabilize(s, rstp.StabilizeOptions{})
		name = ss.String()
		r, runErr = ss.Run(x, opt)
	case *stabilize:
		ss := rstp.StabilizeHardened(hs, rstp.StabilizeOptions{})
		name = ss.String()
		r, runErr = ss.Run(x, opt)
	case *unhardened:
		r, runErr = s.Run(x, opt)
	default:
		name = hs.String()
		r, runErr = hs.Run(x, opt)
	}
	if r == nil {
		return runErr
	}

	fmt.Fprintf(out, "protocol:  %s\n", name)
	fmt.Fprintf(out, "params:    c1=%d c2=%d d=%d, |X|=%d bits\n", p.C1, p.C2, p.D, len(x))
	fmt.Fprintf(out, "plan:      %s\n", plan.Name())
	affected, dropped, duplicated, corrupted, delayed := plan.Stats()
	fmt.Fprintf(out, "injected:  %d affected, %d dropped, %d duplicated, %d corrupted, %d delayed\n",
		affected, dropped, duplicated, corrupted, delayed)
	if r.Degradation != nil {
		fmt.Fprintf(out, "watchdog:  %s\n", r.Degradation)
	}
	if r.Stabilization != nil {
		fmt.Fprintf(out, "processes: %s\n", r.Stabilization)
	}

	safety := timed.PrefixInvariant(r.Trace, x, false)
	complete := runErr == nil && len(timed.PrefixInvariant(r.Trace, x, true)) == 0
	fmt.Fprintf(out, "safety:    %d prefix violations\n", len(safety))
	fmt.Fprintf(out, "delivered: %d/%d bits (Y=X: %v)\n", r.WriteCount, len(x), complete)
	if last, ok := r.LastWriteTime(); ok {
		fmt.Fprintf(out, "last write: t=%d\n", last)
		if complete && plan.End() > 0 && last > plan.End() {
			fmt.Fprintf(out, "recovery:  %d ticks after the heal at t=%d\n", last-plan.End(), plan.End())
		}
	}
	if runErr != nil {
		fmt.Fprintf(out, "run ended early: %v\n", runErr)
	}
	if len(safety) > 0 {
		return fmt.Errorf("output tape corrupted: %v", safety[0])
	}
	return nil
}

// parseProcFaults parses the -procfaults grammar: comma-separated clauses
// of the form proc:kind:from[:to] with proc ∈ {t, r} and kind one of
// crash (restarts at to; omitted to = crash forever), crashcorrupt (crash
// whose checkpoint is corrupted just before the restart), corrupt (live
// state corruption at from), or rateN (step gaps stretched ×N over
// [from,to)).
func parseProcFaults(spec string) ([]faults.ProcFault, error) {
	var out []faults.ProcFault
	for _, clause := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(clause), ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("clause %q: want proc:kind:from[:to]", clause)
		}
		var f faults.ProcFault
		switch parts[0] {
		case "t":
			f.Proc = sim.ProcTransmitter
		case "r":
			f.Proc = sim.ProcReceiver
		default:
			return nil, fmt.Errorf("clause %q: process %q (want t or r)", clause, parts[0])
		}
		from, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("clause %q: from: %w", clause, err)
		}
		f.From = from
		if len(parts) > 3 {
			to, err := strconv.ParseInt(parts[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("clause %q: to: %w", clause, err)
			}
			if to <= from {
				return nil, fmt.Errorf("clause %q: empty window", clause)
			}
			f.To = to
		}
		kind := parts[1]
		switch {
		case kind == "crash":
			f.Crash = true
		case kind == "crashcorrupt":
			f.Crash, f.Corrupt = true, true
			if f.To == 0 {
				return nil, fmt.Errorf("clause %q: crashcorrupt needs a restart time (the corruption hits the checkpoint before the restart)", clause)
			}
		case kind == "corrupt":
			f.Corrupt = true
		case strings.HasPrefix(kind, "rate"):
			n, err := strconv.ParseInt(kind[len("rate"):], 10, 64)
			if err != nil || n < 2 {
				return nil, fmt.Errorf("clause %q: rate factor %q (want rateN with N ≥ 2)", clause, kind)
			}
			if f.To == 0 {
				return nil, fmt.Errorf("clause %q: rate window needs from:to", clause)
			}
			f.RateFactor = n
		default:
			return nil, fmt.Errorf("clause %q: kind %q (crash, crashcorrupt, corrupt, rateN)", clause, kind)
		}
		out = append(out, f)
	}
	return out, nil
}

// parseWindow parses "from:to".
func parseWindow(s string) (from, to int64, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want from:to, got %q", s)
	}
	if from, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
		return 0, 0, err
	}
	if to, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return 0, 0, err
	}
	if to <= from {
		return 0, 0, fmt.Errorf("empty window %q", s)
	}
	return from, to, nil
}

// patternBits builds a fixed non-trivial bit pattern.
func patternBits(n int) []wire.Bit {
	x := make([]wire.Bit, n)
	for i := range x {
		if i%3 == 0 || i%7 == 2 {
			x[i] = wire.One
		}
	}
	return x
}
