package main

import (
	"strings"
	"testing"
)

func TestRunSweepDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-sweep", "-quick", "-seed", "3"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", "-quick", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("sweep output not deterministic for a fixed seed")
	}
	for _, want := range []string{"E17", "hardened(beta(k=4))", "blackout", "outcome"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
}

func TestRunHardenedSingle(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-proto", "beta", "-loss", "0.3", "-dup", "0.2", "-seed", "5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"hardened(beta(k=4))", "0 prefix violations", "Y=X: true", "DEGRADED"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestRunUnhardenedBlackoutCorrupts(t *testing.T) {
	// Losing the middle bursts misaligns the decoder: the bare protocol
	// both stalls and corrupts its tape, and the tool exits nonzero on
	// the corruption.
	var sb strings.Builder
	err := run([]string{"-proto", "beta", "-unhardened", "-blackout", "60:240", "-maxticks", "20000"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("expected a corrupted-output error, got %v", err)
	}
	out := sb.String()
	for _, want := range []string{"beta(k=4)", "Y=X: false", "run ended early"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "hardened") {
		t.Error("-unhardened run labelled hardened")
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-proto", "delta"},
		{"-fwindow", "nope", "-loss", "0.5"},
		{"-blackout", "9:3"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

func TestRunCrashSweepDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-crashsweep", "-quick", "-seed", "3"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-crashsweep", "-quick", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("crash-sweep output not deterministic for a fixed seed")
	}
	for _, want := range []string{"E18", "stabilized(beta(k=4))", "crash", "outcome"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("crash-sweep output missing %q", want)
		}
	}
}

func TestRunStabilizedProcFaults(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-proto", "beta", "-stabilize",
		"-procfaults", "t:crash:60:240,r:crashcorrupt:260:420", "-seed", "5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"stabilized(hardened(beta(k=4)))", "STABILIZED",
		"0 prefix violations", "Y=X: true", "2 crashes", "1 corruptions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestRunStabilizedUnhardenedBare(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-proto", "beta", "-stabilize", "-unhardened",
		"-procfaults", "r:corrupt:150", "-seed", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "stabilized(beta(k=4))") || strings.Contains(out, "hardened") {
		t.Errorf("wrapping labels wrong in:\n%s", out)
	}
}

func TestRunUnwrappedCrashCorrupts(t *testing.T) {
	// A receiver crash loses mid-burst packets: the bare decoder misaligns,
	// writes wrong bits, and the tool exits nonzero on the corruption.
	var sb strings.Builder
	err := run([]string{"-proto", "beta", "-unhardened",
		"-procfaults", "r:crash:60:240", "-maxticks", "20000"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("expected a corrupted-output error, got %v", err)
	}
	if !strings.Contains(sb.String(), "NOT stabilized") {
		t.Errorf("output missing the stabilization verdict:\n%s", sb.String())
	}
}

func TestParseProcFaultsErrors(t *testing.T) {
	for _, spec := range []string{
		"x:crash:10:20",     // unknown process
		"t:crash",           // missing times
		"t:boom:10:20",      // unknown kind
		"t:rate1:10:20",     // factor below 2
		"t:rate4:10",        // rate without a window
		"t:crash:30:20",     // empty window
		"r:crashcorrupt:10", // checkpoint corruption needs a restart
	} {
		if _, err := parseProcFaults(spec); err == nil {
			t.Errorf("spec %q: expected an error", spec)
		}
	}
	got, err := parseProcFaults("t:crash:60:240, r:rate3:10:50, r:crash:300")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !got[0].Crash || got[1].RateFactor != 3 || got[2].To != 0 {
		t.Fatalf("parsed %+v", got)
	}
}
