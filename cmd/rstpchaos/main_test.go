package main

import (
	"strings"
	"testing"
)

func TestRunSweepDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-sweep", "-quick", "-seed", "3"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-sweep", "-quick", "-seed", "3"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("sweep output not deterministic for a fixed seed")
	}
	for _, want := range []string{"E17", "hardened(beta(k=4))", "blackout", "outcome"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
}

func TestRunHardenedSingle(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-proto", "beta", "-loss", "0.3", "-dup", "0.2", "-seed", "5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"hardened(beta(k=4))", "0 prefix violations", "Y=X: true", "DEGRADED"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}

func TestRunUnhardenedBlackoutCorrupts(t *testing.T) {
	// Losing the middle bursts misaligns the decoder: the bare protocol
	// both stalls and corrupts its tape, and the tool exits nonzero on
	// the corruption.
	var sb strings.Builder
	err := run([]string{"-proto", "beta", "-unhardened", "-blackout", "60:240", "-maxticks", "20000"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("expected a corrupted-output error, got %v", err)
	}
	out := sb.String()
	for _, want := range []string{"beta(k=4)", "Y=X: false", "run ended early"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "hardened") {
		t.Error("-unhardened run labelled hardened")
	}
}

func TestRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-proto", "delta"},
		{"-fwindow", "nope", "-loss", "0.5"},
		{"-blackout", "9:3"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
