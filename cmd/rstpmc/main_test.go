package main

import (
	"strings"
	"testing"
)

func TestTimedBetaSafe(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "timed", "-proto", "beta", "-k", "2", "-c1", "1", "-c2", "1", "-d", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "safe:") {
		t.Errorf("expected safe verdict:\n%s", out)
	}
	if !strings.Contains(out, "completion reachable true") {
		t.Errorf("expected completion reachability:\n%s", out)
	}
}

func TestTimedAlphaSafe(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "timed", "-proto", "alpha", "-c1", "1", "-c2", "2", "-d", "3", "-input", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "safe:") {
		t.Errorf("expected safe verdict:\n%s", sb.String())
	}
}

func TestUntimedGammaSafe(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "untimed", "-proto", "gamma", "-k", "2", "-c1", "1", "-c2", "2", "-d", "5", "-input", "101"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "safe:") {
		t.Errorf("expected safe verdict:\n%s", sb.String())
	}
}

func TestUntimedGammaDupCounterexample(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-mode", "untimed", "-proto", "gamma", "-k", "2", "-c1", "1", "-c2", "2", "-d", "5", "-input", "101", "-dup"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "VIOLATION") {
		t.Errorf("expected a duplication counterexample:\n%s", sb.String())
	}
}

func TestModeProtoValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "untimed", "-proto", "beta"},
		{"-mode", "timed", "-proto", "gamma"},
		{"-mode", "nope"},
		{"-c1", "0"},
		{"-input", "10x"},
		{"-zzz"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestStateCapTrips(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-mode", "timed", "-proto", "beta", "-maxstates", "3"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("tiny cap should trip: %v", err)
	}
}
