// Command rstpmc model-checks the protocols exhaustively on small
// instances: every interleaving (untimed, A^γ) or every legal timed
// behaviour (timed, A^α/A^β), checking prefix safety in all reachable
// states.
//
// Usage:
//
//	rstpmc -mode untimed -proto gamma -k 2 -c1 1 -c2 2 -d 5 -input 101
//	rstpmc -mode untimed -proto gamma -dup            # finds the dup counterexample
//	rstpmc -mode timed   -proto beta  -k 2 -c1 1 -c2 1 -d 3 -input 1001
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/mc"
	"repro/internal/rstp"
	"repro/internal/tmc"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rstpmc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rstpmc", flag.ContinueOnError)
	var (
		mode  = fs.String("mode", "timed", "checker: timed (alpha/beta) or untimed (gamma)")
		proto = fs.String("proto", "beta", "protocol: alpha, beta or gamma")
		k     = fs.Int("k", 2, "packet alphabet size")
		c1    = fs.Int64("c1", 1, "minimum inter-step time")
		c2    = fs.Int64("c2", 1, "maximum inter-step time")
		d     = fs.Int64("d", 3, "channel delay bound")
		input = fs.String("input", "", "0/1 input (padded to a block multiple; default: one alternating block per protocol)")
		dup   = fs.Bool("dup", false, "untimed mode: also explore duplicate deliveries (expects a counterexample)")
		max   = fs.Int("maxstates", 0, "state cap (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := rstp.Params{C1: *c1, C2: *c2, D: *d}
	if err := p.Validate(); err != nil {
		return err
	}

	var x []wire.Bit
	if *input != "" {
		var err error
		x, err = wire.ParseBits(*input)
		if err != nil {
			return err
		}
	}

	switch *mode {
	case "untimed":
		if *proto != "gamma" {
			return fmt.Errorf("untimed checking is only sound for the ack-clocked gamma (alpha/beta need -mode timed)")
		}
		return runUntimed(out, p, *k, x, *dup, *max)
	case "timed":
		return runTimed(out, p, *proto, *k, x, *max)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func defaultInput(blockBits, blocks int) []wire.Bit {
	x := make([]wire.Bit, blockBits*blocks)
	for i := range x {
		x[i] = wire.Bit(i % 2)
	}
	return x
}

func runUntimed(out io.Writer, p rstp.Params, k int, x []wire.Bit, dup bool, maxStates int) error {
	if x == nil {
		x = defaultInput(rstp.GammaBlockBits(p, k), 2)
	}
	x, _ = rstp.PadToBlock(x, rstp.GammaBlockBits(p, k))
	tr, err := rstp.NewGammaTransmitter(p, k, x)
	if err != nil {
		return err
	}
	rc, err := rstp.NewGammaReceiver(p, k)
	if err != nil {
		return err
	}
	res, err := mc.Check(mc.System{
		X: x, T: tr, R: rc,
		ForkT:         func(n mc.Node) (mc.Node, error) { return n.(*rstp.GammaTransmitter).Fork() },
		ForkR:         func(n mc.Node) (mc.Node, error) { return n.(*rstp.GammaReceiver).Fork() },
		Written:       func(n mc.Node) []wire.Bit { return n.(*rstp.GammaReceiver).WrittenBits() },
		DupDeliveries: dup,
		MaxStates:     maxStates,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "untimed check of gamma(k=%d) on X=%s (dup=%v)\n", k, wire.BitsToString(x), dup)
	fmt.Fprintf(out, "states %d, transitions %d, terminals %d\n", res.States, res.Transitions, res.Terminals)
	if res.Violation != nil {
		fmt.Fprintf(out, "VIOLATION: %s\n", res.Violation.Msg)
		for i, step := range res.Violation.Path {
			fmt.Fprintf(out, "  %2d. %s\n", i+1, step)
		}
		return nil
	}
	fmt.Fprintln(out, "safe: Y is a prefix of X in every reachable state")
	return nil
}

func runTimed(out io.Writer, p rstp.Params, proto string, k int, x []wire.Bit, maxStates int) error {
	var sys tmc.System
	switch proto {
	case "alpha":
		if x == nil {
			x = defaultInput(1, 2)
		}
		tr, err := rstp.NewAlphaTransmitter(p, x)
		if err != nil {
			return err
		}
		rc, err := rstp.NewAlphaReceiver(p)
		if err != nil {
			return err
		}
		sys = tmc.System{
			X: x, T: tr, R: rc,
			ForkT:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.AlphaTransmitter).Fork() },
			ForkR:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.AlphaReceiver).Fork() },
			Written: func(n tmc.Node) []wire.Bit { return n.(*rstp.AlphaReceiver).WrittenBits() },
		}
	case "beta":
		if x == nil {
			x = defaultInput(rstp.BetaBlockBits(p, k), 2)
		}
		x, _ = rstp.PadToBlock(x, rstp.BetaBlockBits(p, k))
		tr, err := rstp.NewBetaTransmitter(p, k, x)
		if err != nil {
			return err
		}
		rc, err := rstp.NewBetaReceiver(p, k)
		if err != nil {
			return err
		}
		sys = tmc.System{
			X: x, T: tr, R: rc,
			ForkT:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.BetaTransmitter).Fork() },
			ForkR:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.BetaReceiver).Fork() },
			Written: func(n tmc.Node) []wire.Bit { return n.(*rstp.BetaReceiver).WrittenBits() },
		}
	default:
		return fmt.Errorf("timed checking supports alpha and beta (gamma is verified untimed, which is stronger)")
	}
	sys.C1, sys.C2, sys.D1, sys.D2 = p.C1, p.C2, 0, p.D
	sys.MaxStates = maxStates
	res, err := tmc.Check(sys)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "timed check of %s on X=%s under %s, delivery window [0, %d]\n", proto, wire.BitsToString(sys.X), p, p.D)
	fmt.Fprintf(out, "states %d, transitions %d, completion reachable %v\n", res.States, res.Transitions, res.CompletionReachable)
	if res.Violation != nil {
		fmt.Fprintf(out, "VIOLATION: %s\n", res.Violation.Msg)
		for i, step := range res.Violation.Path {
			fmt.Fprintf(out, "  %2d. %s\n", i+1, step)
		}
		return nil
	}
	fmt.Fprintln(out, "safe: Y is a prefix of X in every reachable timed state")
	return nil
}
