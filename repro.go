// Package repro is the public API of the RSTP reproduction: the real-time
// sequence transmission protocols and effort bounds of Wang & Zuck,
// "Real-Time Sequence Transmission Problem" (Yale TR-856, 1991).
//
// The model: a transmitter must reliably communicate a binary sequence X
// to a receiver over a channel that may reorder packets but delivers each
// within d ticks, while both processes take local steps every c1..c2
// ticks. The effort of a solution is the worst-case average time per
// transmitted message.
//
// Three solutions are provided:
//
//   - Alpha: the simple r-passive protocol (one message per d-spaced
//     packet), effort ⌈d/c1⌉·c2;
//   - Beta(k): the r-passive burst protocol — blocks of ⌊log2 μ_k(δ1)⌋
//     bits ride as *multisets* of δ1 k-ary packets, immune to in-burst
//     reordering; effort ≤ 2δ1c2/⌊log2 μ_k(δ1)⌋, matching the Theorem 5.3
//     lower bound up to a constant;
//   - Gamma(k): the active (acknowledged) protocol; effort
//     ≤ (3d+c2)/⌊log2 μ_k(δ2)⌋, matching Theorem 5.6 up to a constant.
//
// Quickstart:
//
//	p := repro.Params{C1: 2, C2: 3, D: 12}
//	s, err := repro.Beta(p, 4)             // k = 4 packet symbols
//	x, _ := repro.ParseBits("101100111000")
//	x, _ = repro.PadToBlock(x, s.BlockBits)
//	run, err := s.Run(x, repro.RunOptions{}) // worst-case schedules
//	fmt.Println(repro.BitsToString(run.Writes())) // == input
//
// The implementation subsystems live under internal/: the timed I/O
// automata model (ioa, timed), the discrete-event engine (sim), the
// channel adversaries (chanmodel), the Section 3 multiset codec
// (multiset), the Section 5 lower-bound machinery (adversary), the
// classical baseline (stp), and the table generators reproducing the
// paper's results (experiments).
package repro

import (
	"time"

	"repro/internal/chanmodel"
	"repro/internal/control"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/rateless"
	"repro/internal/rstp"
	"repro/internal/rstpx"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Core model types, re-exported from the internal implementation. The
// aliases make the internal types usable by downstream importers.
type (
	// Params carries the RSTP timing constants c1 <= c2 < d, in ticks.
	Params = rstp.Params
	// Solution is one of the paper's protocol pairs At ∘ Ar.
	Solution = rstp.Solution
	// RunOptions selects the step schedules and channel adversary of a run.
	RunOptions = rstp.RunOptions
	// Effort is a measured effort data point (ticks per message).
	Effort = rstp.Effort
	// Run is one recorded timed execution.
	Run = sim.Run
	// Bit is a message from the binary domain M = {0, 1}.
	Bit = wire.Bit
	// Violation is one failed good(A) condition found by Verify.
	Violation = timed.Violation
	// StepPolicy schedules one process's local steps.
	StepPolicy = sim.StepPolicy
	// DelayPolicy is the channel's delivery adversary.
	DelayPolicy = chanmodel.DelayPolicy
)

// Alpha returns the simple r-passive solution A^α (Figure 1).
func Alpha(p Params) (Solution, error) { return rstp.Alpha(p) }

// Beta returns the r-passive burst solution A^β(k) (Figure 3).
func Beta(p Params, k int) (Solution, error) { return rstp.Beta(p, k) }

// Gamma returns the active solution A^γ(k) (Figure 4).
func Gamma(p Params, k int) (Solution, error) { return rstp.Gamma(p, k) }

// PadToBlock pads x with trailing zeros to a multiple of blockBits,
// returning the padded sequence and the number of bits added.
func PadToBlock(x []Bit, blockBits int) ([]Bit, int) { return rstp.PadToBlock(x, blockBits) }

// ParseBits parses a 0/1 string.
func ParseBits(s string) ([]Bit, error) { return wire.ParseBits(s) }

// BitsToString renders bits as a 0/1 string.
func BitsToString(bits []Bit) string { return wire.BitsToString(bits) }

// RandomBits returns n random bits drawn from next (e.g. rand.Uint64).
func RandomBits(n int, next func() uint64) []Bit { return wire.RandomBits(n, next) }

// Bound formulas (Sections 5 and 6), in ticks per message.

// AlphaEffort returns eff(A^α) = ⌈d/c1⌉·c2.
func AlphaEffort(p Params) float64 { return rstp.AlphaEffort(p) }

// PassiveLowerBound returns Theorem 5.3's floor for r-passive solutions.
func PassiveLowerBound(p Params, k int) float64 { return rstp.PassiveLowerBound(p, k) }

// ActiveLowerBound returns Theorem 5.6's floor for active solutions.
func ActiveLowerBound(p Params, k int) float64 { return rstp.ActiveLowerBound(p, k) }

// BetaUpperBound returns Lemma 6.1's ceiling for A^β(k).
func BetaUpperBound(p Params, k int) float64 { return rstp.BetaUpperBound(p, k) }

// GammaUpperBound returns Section 6.2's ceiling for A^γ(k).
func GammaUpperBound(p Params, k int) float64 { return rstp.GammaUpperBound(p, k) }

// Step schedules for RunOptions.

// FixedSchedule steps every c ticks.
func FixedSchedule(c int64) StepPolicy { return sim.FixedGap{C: c} }

// AlternatingSchedule alternates between the two gaps.
func AlternatingSchedule(c1, c2 int64) StepPolicy { return sim.AlternatingGap{C1: c1, C2: c2} }

// RandomSchedule draws each gap uniformly from [c1, c2] via int63n
// (typically (*rand.Rand).Int63n).
func RandomSchedule(c1, c2 int64, int63n func(int64) int64) StepPolicy {
	return sim.RandomGap{C1: c1, C2: c2, Int63n: int63n}
}

// Channel adversaries for RunOptions.

// ZeroDelay delivers instantly.
func ZeroDelay() DelayPolicy { return chanmodel.Zero{} }

// MaxDelay delays every packet by exactly d.
func MaxDelay(d int64) DelayPolicy { return chanmodel.MaxDelay{D: d} }

// RandomDelay delays each packet uniformly in [0, d].
func RandomDelay(d int64, rnd interface{ Int63n(int64) int64 }) DelayPolicy {
	return &randomDelay{d: d, rnd: rnd}
}

type randomDelay struct {
	d   int64
	rnd interface{ Int63n(int64) int64 }
}

func (r *randomDelay) Name() string { return "uniform-random(public)" }

func (r *randomDelay) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	return []int64{sendTime + r.rnd.Int63n(r.d+1)}
}

// ReverseBurstDelay reverses each burst's arrival order while respecting
// the d bound — the adversary the multiset encoding is built to survive.
func ReverseBurstDelay(d int64, burst int, stepGap int64) DelayPolicy {
	return chanmodel.ReverseBurst{D: d, Burst: burst, StepGap: stepGap}
}

// IntervalBatchDelay is the Figure 2 adversary: all packets sent in one
// (d-1)-tick interval are delivered together at the next boundary.
func IntervalBatchDelay(d int64) DelayPolicy { return chanmodel.IntervalBatch{D: d} }

// Application framing: self-delimiting byte messages over the bit
// protocols, tolerant of block padding (see internal/frame).

// FrameDecoder incrementally parses a framed bit stream back into byte
// payloads.
type FrameDecoder = frame.Decoder

// FrameMessages frames byte payloads into one bit stream; pad the result
// with PadToBlock and transmit it with any solution.
func FrameMessages(payloads [][]byte) ([]Bit, error) { return frame.EncodeStream(payloads) }

// UnframeMessages parses a complete framed bit stream (trailing padding
// tolerated) back into payloads.
func UnframeMessages(bits []Bit) ([][]byte, error) { return frame.DecodeStream(bits) }

// Robustness outside the model: seeded fault injection, the runtime
// degradation watchdog, and the hardened protocol wrapper (safety under
// any fault plan, liveness once the faults heal — see internal/rstp's
// hardened layer and internal/faults).
type (
	// Fault is one time-windowed fault clause: blackout, drop,
	// duplication, corruption or excess delay over [From, To) send ticks.
	Fault = faults.Fault
	// FaultPlan is a seeded, reproducible fault schedule wrapped around
	// any DelayPolicy; pass it as RunOptions.Delay.
	FaultPlan = faults.Plan
	// HardenedSolution is a Solution wrapped in the reliability layer
	// (sequence numbers, checksum, cumulative acks, retransmission).
	HardenedSolution = rstp.HardenedSolution
	// HardenOptions tune the reliability layer (zero values take
	// parameter-derived defaults).
	HardenOptions = rstp.HardenOptions
	// Degradation is a run's channel-health report, populated on
	// Run.Degradation whenever the run has a delay bound d.
	Degradation = sim.Degradation
)

// NewFaultPlan wraps a delay policy with seeded, time-windowed faults.
func NewFaultPlan(seed int64, inner DelayPolicy, fs ...Fault) *FaultPlan {
	return faults.NewPlan(seed, inner, fs...)
}

// Harden wraps a solution in the reliability layer: Y stays a prefix of X
// under any fault plan, and Y = X once every fault window closes.
func Harden(s Solution, opts HardenOptions) HardenedSolution { return rstp.Harden(s, opts) }

// Process fault tolerance: crash/restart injection, state corruption, and
// the self-stabilizing recovery layer (see internal/sim's process-fault
// engine, internal/faults' ProcPlan and internal/rstp's stabilized layer).
type (
	// ProcFault is one process-fault clause: crash (with or without a
	// restart), checkpoint or live state corruption, or a step-rate
	// violation window.
	ProcFault = faults.ProcFault
	// ProcPlan is a seeded, reproducible process-fault schedule; pass it
	// as RunOptions.ProcFaults.
	ProcPlan = faults.ProcPlan
	// ProcID targets a fault clause at the transmitter or the receiver.
	ProcID = sim.ProcID
	// Stabilization is a run's process-fault report — what the plan did
	// and how quickly the system converged after the last fault healed —
	// populated on Run.Stabilization whenever a ProcPlan is scheduled.
	Stabilization = sim.Stabilization
	// StabilizedSolution is a protocol stack wrapped in the stabilizing
	// recovery layer at both endpoints (epoch-tagged sessions, checksummed
	// checkpoints, resynchronization handshake).
	StabilizedSolution = rstp.StabilizedSolution
	// StabilizeOptions tune the stabilizing layer (zero values take
	// parameter-derived defaults).
	StabilizeOptions = rstp.StabilizeOptions
	// StateStore persists wrapper checkpoints across process crashes.
	StateStore = rstp.StateStore
	// MemStore is the canonical in-memory StateStore.
	MemStore = rstp.MemStore
)

// The two fault-targetable processes.
const (
	ProcTransmitter = sim.ProcTransmitter
	ProcReceiver    = sim.ProcReceiver
)

// NewProcPlan builds a seeded process-fault schedule from clauses; pass
// it as RunOptions.ProcFaults.
func NewProcPlan(seed int64, clauses ...ProcFault) *ProcPlan {
	return faults.NewProcPlan(seed, clauses...)
}

// NewMemStore returns an empty in-memory StateStore (the simulated stable
// storage that survives a process crash).
func NewMemStore() *MemStore { return rstp.NewMemStore() }

// Stabilize wraps a bare solution in the self-stabilizing recovery layer:
// Y stays a prefix of X across any crash/corruption schedule, and Y = X
// once the faults stop (on a channel that honours the model).
func Stabilize(s Solution, opts StabilizeOptions) StabilizedSolution {
	return rstp.Stabilize(s, opts)
}

// StabilizeHardened stacks both robustness layers — the hardened layer
// restores the channel's promises, the stabilizing layer the processes' —
// the configuration that survives the full chaos matrix.
func StabilizeHardened(hs HardenedSolution, opts StabilizeOptions) StabilizedSolution {
	return rstp.StabilizeHardened(hs, opts)
}

type (
	// Journal is the durable file-backed StateStore: an append-only,
	// fsync'd, CRC-checksummed record log with replay-on-open (torn or
	// corrupt tails truncate — damaged state reads as missing, never
	// lies) and atomic rename-based compaction. Wire it into
	// StabilizeOptions.Store and ServeConfig.Store for serving that
	// survives a real process kill.
	Journal = journal.Store
	// JournalOptions tune a Journal (zero values take defaults).
	JournalOptions = journal.Options
	// JournalFS is the filesystem surface a Journal writes through;
	// JournalFaults plans seeded filesystem fault injection (short
	// writes, fsync errors, bit flips, crash-at-offset) over any
	// JournalFS for crash testing.
	JournalFS     = journal.FS
	JournalFaults = journal.Plan
)

// OpenJournal opens (creating or replaying) the checkpoint journal in
// dir. The returned store satisfies StateStore and is safe for
// concurrent sessions.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	return journal.Open(dir, opts)
}

// NewJournalFaultFS wraps a JournalFS in the seeded fault injector — the
// crash-restart test harness's filesystem.
func NewJournalFaultFS(inner JournalFS, plan JournalFaults) JournalFS {
	return journal.NewFaultFS(inner, plan)
}

// Section 7 extensions: the delivery-window model with per-process clocks
// (see internal/rstpx for the full story).
type (
	// GenParams carries the generalised timing constants: per-process step
	// bounds and a delivery window [d1, d2].
	GenParams = rstpx.GenParams
	// GenSolution is the generalised r-passive burst solution.
	GenSolution = rstpx.GenSolution
	// GenRunOptions selects the schedules of a generalised run.
	GenRunOptions = rstpx.GenRunOptions
)

// BaseGenParams lifts classic parameters into the generalised model.
func BaseGenParams(c1, c2, d int64) GenParams { return rstpx.Base(c1, c2, d) }

// GenBeta returns the generalised r-passive burst solution with the
// paper-analogous default burst.
func GenBeta(p GenParams, k int) (GenSolution, error) { return rstpx.NewGenBeta(p, k) }

// GenBetaBurst returns the generalised solution with an explicit burst.
func GenBetaBurst(p GenParams, k, burst int) (GenSolution, error) {
	return rstpx.NewGenBetaBurst(p, k, burst)
}

// GenPassiveLowerBound is the generalised Theorem 5.3 floor: the channel
// can only scramble windows of the slack d2 - d1.
func GenPassiveLowerBound(p GenParams, k int) float64 { return rstpx.GenPassiveLowerBound(p, k) }

// GenBetaUpperBound is the generalised Lemma 6.1 ceiling.
func GenBetaUpperBound(p GenParams, k, burst int) float64 {
	return rstpx.GenBetaUpperBound(p, k, burst)
}

// WindowDelay delays each packet uniformly within [d1, d2].
func WindowDelay(d1, d2 int64, rnd interface{ Int63n(int64) int64 }) DelayPolicy {
	return &windowDelay{d1: d1, d2: d2, rnd: rnd}
}

type windowDelay struct {
	d1, d2 int64
	rnd    interface{ Int63n(int64) int64 }
}

func (w *windowDelay) Name() string { return "uniform-window(public)" }

func (w *windowDelay) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	if w.d2 <= w.d1 {
		return []int64{sendTime + w.d1}
	}
	return []int64{sendTime + w.d1 + w.rnd.Int63n(w.d2-w.d1+1)}
}

// Serving mode: real-time, multi-session transfers over concurrent
// transports. See cmd/rstpserve for the CLI harness and DESIGN.md
// ("Serving subsystem") for the mapping from each Transport to the
// paper's channel axioms.
type (
	// Transport moves session-framed packets between a transmitter side
	// and a receiver side in real time.
	Transport = transport.Transport
	// Clock maps model ticks onto wall time for real-time runs.
	Clock = transport.Clock
	// MemOptions configures the in-memory transport (delay policy, fault
	// plan reuse, channel buffering).
	MemOptions = transport.MemOptions
	// ServeConfig configures a Server, Dialer or Pipe.
	ServeConfig = session.Config
	// Server is the receiver-side session multiplexer.
	Server = session.Server
	// Dialer is the transmitter-side session initiator.
	Dialer = session.Dialer
	// SessionConn is one live transmitter-side session.
	SessionConn = session.Conn
	// Pipe bundles a Server and Dialer over one transport in-process.
	Pipe = session.Pipe
	// SessionReport is one endpoint's final accounting.
	SessionReport = session.Report
	// TransferResult reports one end-to-end served session.
	TransferResult = session.TransferResult
	// ServeAggregate is a server- or dialer-wide counter roll-up.
	ServeAggregate = session.Aggregate
)

// Resilience layer for the serving stack (PR 4): fault-injecting chaos
// middleware, deadline-aware retransmission with a circuit breaker, and
// the server-side overload/watchdog knobs on ServeConfig (Shed,
// WatchdogK, WatchdogResync). See DESIGN.md ("Surviving a bad network").
type (
	// ChaosTransport applies a seeded fault plan to any inner Transport —
	// the chaos matrix over a real network path.
	ChaosTransport = transport.Chaos
	// ResilientTransport adds bounded retransmission, a circuit breaker
	// and jittered reconnect on top of any inner Transport.
	ResilientTransport = transport.Resilient
	// ResilientOptions tune the resilient wrapper (zero values take
	// deadline-derived defaults).
	ResilientOptions = transport.ResilientOptions
	// ShedPolicy selects the server's overload behavior at the
	// MaxSessions high-water mark.
	ShedPolicy = session.ShedPolicy
)

// The server overload policies.
const (
	// ShedRefuse drops frames of new sessions at the cap (default).
	ShedRefuse = session.ShedRefuse
	// ShedEvictOldestIdle force-retires the longest-quiet session to
	// admit the newcomer.
	ShedEvictOldestIdle = session.ShedEvictOldestIdle
)

// ErrBreakerOpen is returned by a ResilientTransport's Send while its
// circuit breaker is open (a transient shed, not a closed transport).
var ErrBreakerOpen = transport.ErrBreakerOpen

// NewChaosTransport wraps inner with a seeded fault plan applied at the
// transport layer: drop, duplication, corruption, excess delay and
// blackouts hit every frame before inner sees it. The plan's delays are
// *extra* — they ride on top of the inner transport's own latency.
func NewChaosTransport(inner Transport, clock *Clock, seed int64, fs ...Fault) *ChaosTransport {
	return transport.NewChaos(inner, clock, faults.NewPlan(seed, chanmodel.Zero{}, fs...))
}

// NewResilientTransport wraps inner with bounded retransmission (budget
// δ1 = ⌊d/c1⌋, backoff capped at d ticks), a circuit breaker and
// jittered reconnect.
func NewResilientTransport(inner Transport, clock *Clock, opts ResilientOptions) *ResilientTransport {
	return transport.NewResilient(inner, clock, opts)
}

// NewClock starts a real-time clock with the given tick length (use
// transport.DefaultTick via NewClock(0)).
func NewClock(tick time.Duration) *Clock { return transport.NewClock(tick) }

// NewMemTransport returns the in-memory transport: the only Transport
// that *enforces* the paper's channel axioms (delay ≤ d, no spurious
// packets, loss/duplication only under an explicit fault plan).
func NewMemTransport(clock *Clock, opts MemOptions) Transport {
	return transport.NewMem(clock, opts)
}

// NewUDPLoopback returns a UDP loopback transport pair on 127.0.0.1.
func NewUDPLoopback(buffer int) (Transport, error) { return transport.NewUDPLoopback(buffer) }

// Observability (PR 5): a dependency-free metrics registry, bounded
// per-session protocol event tracing, and live introspection over an
// opt-in HTTP endpoint. The hot paths cost atomics only; nothing is
// recorded unless a registry is configured. See DESIGN.md
// ("Observability") and cmd/rstpserve's -metrics-addr/-trace flags.
type (
	// Metrics is the atomic counter/gauge/histogram registry. Set it as
	// ServeConfig.Obs to instrument the session layer, and hand it to
	// InstrumentTransport / NewLayerObserver for the other layers.
	Metrics = obs.Registry
	// MetricsSnapshot is the JSON view of a registry at one instant,
	// including the live per-session table.
	MetricsSnapshot = obs.Snapshot
	// MetricsServer is a running HTTP introspection endpoint serving
	// /metrics (Prometheus text), /metrics.json, /trace and /debug/pprof.
	MetricsServer = obs.Server
	// TraceEvent is one recorded protocol transition in a session's ring.
	TraceEvent = obs.TraceEvent
	// LayerObserver receives protocol events from the hardened and
	// stabilizing wrappers (HardenOptions.Observer,
	// StabilizeOptions.Observer).
	LayerObserver = rstp.LayerObserver
	// LiveSession is one row of a Server's live session table — per-session
	// effort and effort-gap against the paper's lower bound.
	LiveSession = session.LiveSession
)

// NewMetrics returns an empty observability registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// InstrumentTransport walks a (possibly wrapped) transport stack and
// registers every layer's metrics — resilient breaker and retransmission
// counters, chaos injection counters, mem/udp delivery counters and the
// delivery-latency histogram.
func InstrumentTransport(reg *Metrics, t Transport) { transport.Instrument(reg, t) }

// NewLayerObserver returns a LayerObserver that counts hardened- and
// stabilizing-layer protocol events (retransmits, checksum rejects, epoch
// rewinds, ...) into reg under the rstp_layer_* names. One observer may
// be shared by every endpoint a server runs.
func NewLayerObserver(reg *Metrics) LayerObserver { return rstp.ObsObserver(reg) }

// Serve starts a receiver-side session server on cfg.Transport.
func Serve(cfg ServeConfig) (*Server, error) { return session.NewServer(cfg) }

// Dial starts a transmitter-side session dialer on cfg.Transport.
func Dial(cfg ServeConfig) (*Dialer, error) { return session.NewDialer(cfg) }

// NewPipe starts a Server and a Dialer sharing one transport — the
// in-process serving harness used by cmd/rstpserve.
func NewPipe(cfg ServeConfig) (*Pipe, error) { return session.NewPipe(cfg) }

// Adaptive control plane (PR 7): a seeded, deterministic control loop
// that senses the shared metrics registry and drives admission
// pacing/refusal, per-session k-selection from the paper's bound
// tables, RTO adaptation and the shed-escalation ladder. Wire a
// Controller as ServeConfig.Admission on both mux sides, Bind its
// actuators, then Start. See DESIGN.md ("Closing the loop").
type (
	// AdmissionController is the control plane's hook into the session
	// mux: pacing/refusal of new sessions and per-session builder
	// substitution.
	AdmissionController = session.AdmissionController
	// PairBuilder constructs the automaton pair for one session — what
	// ServeConfig.Solution and ControlConfig.Builders hold (every
	// Solution, HardenedSolution and StabilizedSolution is one).
	PairBuilder = session.PairBuilder
	// ControlConfig configures the adaptive controller.
	ControlConfig = control.Config
	// ControlActuators are the mux- and transport-side hooks the
	// controller drives (late-bound via Controller.Bind).
	ControlActuators = control.Actuators
	// Controller is the adaptive overload controller.
	Controller = control.Controller
	// ControlState is the controller's introspection snapshot (the
	// /control endpoint's payload).
	ControlState = control.State
)

// ErrAdmissionRefused is returned by Dialer.Start when the control
// plane refuses a new session at the ladder's refuse rung or above.
var ErrAdmissionRefused = session.ErrAdmissionRefused

// NewController builds the adaptive controller against a shared
// registry and clock. The controller is inert until Start.
func NewController(cfg ControlConfig) (*Controller, error) { return control.New(cfg) }

// Rateless coded burst subsystem (PR 9): an LT-style fountain code over
// each block's packet multiset replaces exact-packet retransmission.
// The transmitter streams deterministic, per-block-seeded coded symbols
// until the receiver's cumulative decode ack cuts the stream; loss
// costs a few extra symbols per block instead of a round trip. The
// builder satisfies PairBuilder, so the subsystem is selectable
// anywhere the hardened β/γ stacks are — ServeConfig.Solution,
// ControlConfig.Candidates, the benchmark matrix. See DESIGN.md
// ("Coding vs. retransmission").
type (
	// RatelessOptions configures a rateless pair or builder: the timing
	// Params, the packet alphabet size K, the session's base Seed (block
	// b's symbol stream is a pure function of it on both ends, so
	// replays are byte-identical) and an optional metrics registry.
	RatelessOptions = rateless.Options
	// RatelessBuilder constructs rateless transmitter/receiver pairs; it
	// is a PairBuilder.
	RatelessBuilder = rateless.Builder
	// RatelessTransmitter is the coded-symbol streaming automaton.
	RatelessTransmitter = rateless.Transmitter
	// RatelessReceiver is the peeling-decoder automaton; it implements
	// the session layer's tape-resume hook, so a durable restart skips
	// the bits already written.
	RatelessReceiver = rateless.Receiver
	// ControlCandidate is one cross-family escape hatch in
	// ControlConfig.Candidates — e.g. the rateless pair behind a native
	// β table (see cmd/rstpserve's -adaptive wiring).
	ControlCandidate = control.Candidate
)

// NewRatelessBuilder validates the options and returns the pair builder.
func NewRatelessBuilder(o RatelessOptions) (*RatelessBuilder, error) { return rateless.NewBuilder(o) }

// NewRatelessTransmitter builds a standalone rateless transmitter for
// input x, whose length must be a multiple of the builder's BlockBits.
func NewRatelessTransmitter(o RatelessOptions, x []Bit) (*RatelessTransmitter, error) {
	return rateless.NewTransmitter(o, x)
}

// NewRatelessReceiver builds a standalone rateless receiver.
func NewRatelessReceiver(o RatelessOptions) (*RatelessReceiver, error) {
	return rateless.NewReceiver(o)
}

// RatelessUpperBound returns the subsystem's loss-free effort ceiling:
// δ1·c2/⌊log₂ μ_k(δ1)⌋ ticks per message — below BetaUpperBound, whose
// extra ⌈d/c1⌉·c2 term pays for burst-delimiting idle steps the coded
// stream does not need.
func RatelessUpperBound(p Params, k int) float64 { return rateless.UpperBound(p, k) }

// RatelessLowerBound returns the matching Theorem 5.6 floor (the decode
// ack makes the protocol active in the paper's taxonomy).
func RatelessLowerBound(p Params, k int) float64 { return rateless.LowerBound(p, k) }
