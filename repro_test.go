package repro_test

import (
	"math/rand"
	"testing"

	"repro"
)

// TestPublicAPIRoundTrip exercises the documented quickstart flow through
// the public facade only.
func TestPublicAPIRoundTrip(t *testing.T) {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	for name, mk := range map[string]func() (repro.Solution, error){
		"alpha": func() (repro.Solution, error) { return repro.Alpha(p) },
		"beta":  func() (repro.Solution, error) { return repro.Beta(p, 4) },
		"gamma": func() (repro.Solution, error) { return repro.Gamma(p, 4) },
	} {
		t.Run(name, func(t *testing.T) {
			s, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			x, err := repro.ParseBits("10110011")
			if err != nil {
				t.Fatal(err)
			}
			x, pad := repro.PadToBlock(x, s.BlockBits)
			if len(x)%s.BlockBits != 0 {
				t.Fatalf("padding failed: %d bits, block %d (pad %d)", len(x), s.BlockBits, pad)
			}
			run, err := s.Run(x, repro.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if repro.BitsToString(run.Writes()) != repro.BitsToString(x) {
				t.Fatalf("Y != X")
			}
			if v := s.Verify(run, x); len(v) != 0 {
				t.Fatalf("not good: %v", v[0])
			}
		})
	}
}

// TestPublicBoundsOrdering: lower bounds sit below upper bounds for every
// exported formula, and the alpha effort is the worst of the passive ones.
func TestPublicBoundsOrdering(t *testing.T) {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	for _, k := range []int{2, 4, 16, 64} {
		plb, pub := repro.PassiveLowerBound(p, k), repro.BetaUpperBound(p, k)
		if plb > pub {
			t.Errorf("k=%d: passive LB %.3f > beta UB %.3f", k, plb, pub)
		}
		alb, aub := repro.ActiveLowerBound(p, k), repro.GammaUpperBound(p, k)
		if alb > aub {
			t.Errorf("k=%d: active LB %.3f > gamma UB %.3f", k, alb, aub)
		}
		if pub > repro.AlphaEffort(p)+1e-9 {
			t.Errorf("k=%d: beta UB %.3f exceeds alpha effort %.3f", k, pub, repro.AlphaEffort(p))
		}
	}
}

// TestPublicGenAPI covers the Section 7 facade: explicit bursts, window
// delays, and the bound degenerations.
func TestPublicGenAPI(t *testing.T) {
	base := repro.BaseGenParams(2, 3, 12)
	classic := repro.Params{C1: 2, C2: 3, D: 12}
	if got, want := repro.GenPassiveLowerBound(base, 4), repro.PassiveLowerBound(classic, 4); got != want {
		t.Errorf("gen LB at base params = %g, classic = %g", got, want)
	}
	s, err := repro.GenBetaBurst(base, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if s.BlockBits != 6 {
		t.Errorf("block bits = %d, want 6", s.BlockBits)
	}
	if ub := repro.GenBetaUpperBound(base, 4, 6); ub != repro.BetaUpperBound(classic, 4) {
		t.Errorf("gen UB %g != classic %g", ub, repro.BetaUpperBound(classic, 4))
	}
	rng := rand.New(rand.NewSource(9))
	win := repro.GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 6, D2: 12}
	ws, err := repro.GenBeta(win, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := repro.RandomBits(10*ws.BlockBits, rng.Uint64)
	run, err := ws.Run(x, repro.GenRunOptions{Delay: repro.WindowDelay(win.D1, win.D2, rng)})
	if err != nil {
		t.Fatal(err)
	}
	if repro.BitsToString(run.Writes()) != repro.BitsToString(x) {
		t.Fatal("gen run corrupted the stream")
	}
	if v := ws.Verify(run, x); len(v) != 0 {
		t.Fatalf("gen run not good: %v", v[0])
	}
	// Degenerate window delay (d1 == d2) must still deliver.
	run2, err := ws.Run(x, repro.GenRunOptions{Delay: repro.WindowDelay(12, 12, rng)})
	if err != nil {
		t.Fatal(err)
	}
	if repro.BitsToString(run2.Writes()) != repro.BitsToString(x) {
		t.Fatal("degenerate window corrupted the stream")
	}
}

// TestPublicStabilizeAPI exercises the process-fault facade: NewProcPlan,
// Stabilize / StabilizeHardened, NewMemStore, and the per-run
// Stabilization report, all through the public surface only.
func TestPublicStabilizeAPI(t *testing.T) {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	s, err := repro.Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := repro.PadToBlock(repro.RandomBits(12*s.BlockBits, rand.New(rand.NewSource(3)).Uint64), s.BlockBits)

	plan := repro.NewProcPlan(77,
		repro.ProcFault{Proc: repro.ProcTransmitter, From: 60, To: 240, Crash: true},
		repro.ProcFault{Proc: repro.ProcReceiver, From: 300, To: 460, Crash: true, Corrupt: true},
	)
	if plan.End() != 460 {
		t.Fatalf("plan heals at %d, want 460", plan.End())
	}

	ss := repro.Stabilize(s, repro.StabilizeOptions{Store: repro.NewMemStore()})
	run, err := ss.Run(x, repro.RunOptions{ProcFaults: plan, MaxTicks: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if v := ss.VerifySafety(run, x); len(v) != 0 {
		t.Fatalf("safety violated: %v", v[0])
	}
	if v := ss.VerifyComplete(run, x); len(v) != 0 {
		t.Fatalf("incomplete: %v", v[0])
	}
	st := run.Stabilization
	if st == nil || !st.Measured {
		t.Fatalf("no stabilization report: %+v", st)
	}
	if !st.Stabilized {
		t.Fatalf("did not stabilize: %s", st)
	}
	if st.Crashes != 2 || st.Corruptions != 1 {
		t.Fatalf("report counts wrong: %s", st)
	}

	// The stacked form absorbs channel faults and process faults at once.
	hs := repro.Harden(s, repro.HardenOptions{})
	shs := repro.StabilizeHardened(hs, repro.StabilizeOptions{})
	cplan := repro.NewFaultPlan(78, repro.MaxDelay(p.D),
		repro.Fault{From: 0, To: 400, Drop: 0.2, Corrupt: 0.2})
	run2, err := shs.Run(x, repro.RunOptions{Delay: cplan, ProcFaults: plan, MaxTicks: 400_000})
	if err != nil {
		t.Fatal(err)
	}
	if v := shs.VerifySafety(run2, x); len(v) != 0 {
		t.Fatalf("stacked safety violated: %v", v[0])
	}
	if v := shs.VerifyComplete(run2, x); len(v) != 0 {
		t.Fatalf("stacked run incomplete: %v", v[0])
	}
	if run2.Stabilization == nil || !run2.Stabilization.Stabilized {
		t.Fatalf("stacked run did not stabilize: %s", run2.Stabilization)
	}
}

// TestPublicSchedulesAndDelays drives the exported schedule/adversary
// constructors through a run.
func TestPublicSchedulesAndDelays(t *testing.T) {
	p := repro.Params{C1: 2, C2: 4, D: 12}
	s, err := repro.Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := repro.RandomBits(8*s.BlockBits, rng.Uint64)
	schedules := []repro.StepPolicy{
		repro.FixedSchedule(p.C1),
		repro.AlternatingSchedule(p.C1, p.C2),
		repro.RandomSchedule(p.C1, p.C2, rng.Int63n),
	}
	delays := []repro.DelayPolicy{
		repro.ZeroDelay(),
		repro.MaxDelay(p.D),
		repro.RandomDelay(p.D, rng),
		repro.ReverseBurstDelay(p.D, 3, p.C1), // δ1 = 6; partial reversal is legal too
		repro.IntervalBatchDelay(p.D),
	}
	for _, sched := range schedules {
		for _, delay := range delays {
			run, err := s.Run(x, repro.RunOptions{TPolicy: sched, RPolicy: sched, Delay: delay})
			if err != nil {
				t.Fatalf("%s/%s: %v", sched.Name(), delay.Name(), err)
			}
			if repro.BitsToString(run.Writes()) != repro.BitsToString(x) {
				t.Fatalf("%s/%s: Y != X", sched.Name(), delay.Name())
			}
			if v := s.Verify(run, x); len(v) != 0 {
				t.Fatalf("%s/%s: %v", sched.Name(), delay.Name(), v[0])
			}
		}
	}
}
