// Adaptive: the serving stack under closed-loop overload control. A
// session flood three times the server's capacity runs through a pipe
// whose admission is owned by the adaptive controller: dials queue at
// the occupancy gate until a receiver slot frees (instead of burning
// their deadline against a full server), pacing and refusal engage if
// the measured deadline-miss rate or refusal rate worsens, and every
// admission picks its packet-alphabet size k from the paper's effort
// bound tables against the live slowdown.
//
// The run prints the goodput and the controller's own accounting — the
// ladder level it ended at, how many admissions it gated or paced, and
// the per-k admission histogram.
//
//	go run ./examples/adaptive
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

func main() {
	if err := run(48); err != nil {
		log.Fatal(err)
	}
}

func run(sessions int) error {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	const slots = 8 // receiver capacity the flood will exceed 3×

	// Two candidate alphabets for k-selection, both hardened and sharing
	// one layer observer. The input length below (a multiple of both
	// block sizes) guarantees a mid-run retune never hands a session an
	// input its builder rejects.
	reg := repro.NewMetrics()
	lo := repro.NewLayerObserver(reg)
	builders := make(map[int]repro.PairBuilder)
	blockBits := 1
	for _, k := range []int{4, 8} {
		s, err := repro.Beta(p, k)
		if err != nil {
			return err
		}
		builders[k] = repro.Harden(s, repro.HardenOptions{Observer: lo})
		blockBits = lcm(blockBits, s.BlockBits)
	}

	clock := repro.NewClock(50 * time.Microsecond)
	rnd := rand.New(rand.NewSource(7))
	mem := repro.NewMemTransport(clock, repro.MemOptions{D: p.D, Delay: repro.RandomDelay(p.D, rnd), Buffer: 1 << 14})
	res := repro.NewResilientTransport(mem, clock, repro.ResilientOptions{D: p.D, C1: p.C1, Seed: 7})
	defer res.Close()
	repro.InstrumentTransport(reg, res)

	// The controller is built first (it is the mux's admission hook),
	// wired as Admission on the shared ServeConfig, then bound to its
	// actuators once the pipe exists and started.
	ctrl, err := repro.NewController(repro.ControlConfig{
		Registry: reg, Clock: clock, Params: p, Proto: "beta",
		Builders: builders, DefaultK: 4,
		Seed:           7,
		TargetSessions: slots,
	})
	if err != nil {
		return err
	}

	pipe, err := repro.NewPipe(repro.ServeConfig{
		Solution:    builders[4],
		Params:      p,
		Transport:   res,
		Clock:       clock,
		MaxSessions: slots,
		IdleTicks:   -1, // slots are reclaimed per transfer; the controller owns eviction
		Obs:         reg,
		Admission:   ctrl,
	})
	if err != nil {
		return err
	}
	defer pipe.Close()

	ctrl.Bind(repro.ControlActuators{
		Active:        func() int64 { return int64(pipe.Server.ActiveCount()) },
		SetRTO:        res.SetRTO,
		EvictOldest:   pipe.Server.ShedOldest,
		RetireStalled: pipe.Server.RetireStalled,
	})
	ctrl.Start()
	defer ctrl.Stop()

	// The flood: 3× capacity in concurrent transfer workers. Refused
	// dials (the ladder's refuse rung) count separately from failures.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var completed, failed, refused atomic.Int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, 3*slots)
	inrnd := rand.New(rand.NewSource(11))
	for i := 0; i < sessions; i++ {
		x := repro.RandomBits(8*blockBits, inrnd.Uint64)
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r, err := pipe.Transfer(ctx, x)
			switch {
			case errors.Is(err, repro.ErrAdmissionRefused):
				refused.Add(1)
			case err != nil || !r.Completed:
				failed.Add(1)
			default:
				completed.Add(1)
			}
			if r.Violation != "" {
				log.Fatalf("prefix violation: %s", r.Violation)
			}
		}()
	}
	wg.Wait()

	st := ctrl.State()
	fmt.Printf("flood: %d sessions over %d receiver slots\n", sessions, slots)
	fmt.Printf("goodput: %d completed, %d failed, %d refused\n",
		completed.Load(), failed.Load(), refused.Load())
	fmt.Printf("controller: level=%s gated=%d paced=%d rto_changes=%d k_histogram=%v\n",
		st.Level, st.Gated, st.Paced, st.RTOChanges, st.KHistogram)
	fmt.Printf("dwell ticks per level: %v\n", st.LevelDwellTicks)
	if completed.Load() == 0 {
		return fmt.Errorf("no session completed under control")
	}
	return nil
}

func lcm(a, b int) int {
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}
