package main

import "testing"

// TestRun smoke-tests the adaptive overload-control example end to end.
func TestRun(t *testing.T) {
	if err := run(16); err != nil {
		t.Fatal(err)
	}
}
