// Modelcheck: exhaustive verification instead of schedule sampling. Small
// protocol instances are checked over EVERY behaviour the model permits:
//
//  1. A^β over the full timed semantics — every step schedule in [c1,c2],
//     every per-packet delivery time within d, every same-tick ordering;
//  2. A^γ over every untimed interleaving (its safety is ack-clocked);
//  3. the checkers' teeth: A^γ against a duplicating channel, and a
//     zero-wait burst protocol against a jittery window, both of which
//     yield concrete counterexample traces.
//
// This example reaches into internal/mc and internal/tmc deliberately:
// the checkers are research tooling, not part of the stable API.
//
//	go run ./examples/modelcheck
package main

import (
	"fmt"
	"log"

	"repro/internal/mc"
	"repro/internal/rstp"
	"repro/internal/rstpx"
	"repro/internal/tmc"
	"repro/internal/wire"
)

func main() {
	if err := betaTimed(); err != nil {
		log.Fatal(err)
	}
	if err := gammaUntimed(); err != nil {
		log.Fatal(err)
	}
	if err := gammaDupCounterexample(); err != nil {
		log.Fatal(err)
	}
	if err := zeroWaitCounterexample(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexhaustive checks done: the protocols hold exactly where the paper says they do.")
}

func betaTimed() error {
	p := rstp.Params{C1: 1, C2: 2, D: 3} // δ1 = 3, 2 bits per burst
	x, _ := wire.ParseBits("1001")
	tr, err := rstp.NewBetaTransmitter(p, 2, x)
	if err != nil {
		return err
	}
	rc, err := rstp.NewBetaReceiver(p, 2)
	if err != nil {
		return err
	}
	res, err := tmc.Check(tmc.System{
		X: x, T: tr, R: rc,
		ForkT:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.BetaTransmitter).Fork() },
		ForkR:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.BetaReceiver).Fork() },
		Written: func(n tmc.Node) []wire.Bit { return n.(*rstp.BetaReceiver).WrittenBits() },
		C1:      p.C1, C2: p.C2, D1: 0, D2: p.D,
	})
	if err != nil {
		return err
	}
	if res.Violation != nil {
		return fmt.Errorf("unexpected: %v", res.Violation)
	}
	fmt.Printf("A^β(2) on X=%s, %v: %d timed states explored, safe everywhere, completion reachable=%v\n",
		wire.BitsToString(x), p, res.States, res.CompletionReachable)
	return nil
}

func gammaSys(p rstp.Params, k int, x []wire.Bit, dup bool) (mc.System, error) {
	tr, err := rstp.NewGammaTransmitter(p, k, x)
	if err != nil {
		return mc.System{}, err
	}
	rc, err := rstp.NewGammaReceiver(p, k)
	if err != nil {
		return mc.System{}, err
	}
	return mc.System{
		X: x, T: tr, R: rc,
		ForkT:         func(n mc.Node) (mc.Node, error) { return n.(*rstp.GammaTransmitter).Fork() },
		ForkR:         func(n mc.Node) (mc.Node, error) { return n.(*rstp.GammaReceiver).Fork() },
		Written:       func(n mc.Node) []wire.Bit { return n.(*rstp.GammaReceiver).WrittenBits() },
		DupDeliveries: dup,
	}, nil
}

func gammaUntimed() error {
	p := rstp.Params{C1: 1, C2: 1, D: 3}
	x, _ := wire.ParseBits("1001")
	sys, err := gammaSys(p, 2, x, false)
	if err != nil {
		return err
	}
	res, err := mc.Check(sys)
	if err != nil {
		return err
	}
	if res.Violation != nil {
		return fmt.Errorf("unexpected: %v", res.Violation)
	}
	fmt.Printf("A^γ(2) on X=%s: %d untimed states (every interleaving), safe — no clock needed for safety\n",
		wire.BitsToString(x), res.States)
	return nil
}

func gammaDupCounterexample() error {
	p := rstp.Params{C1: 1, C2: 2, D: 5}
	x, _ := wire.ParseBits("101")
	sys, err := gammaSys(p, 2, x, true)
	if err != nil {
		return err
	}
	res, err := mc.Check(sys)
	if err != nil {
		return err
	}
	if res.Violation == nil {
		return fmt.Errorf("expected a duplication counterexample")
	}
	fmt.Printf("\nA^γ vs a DUPLICATING channel (outside the paper's model): broken in %d steps:\n", len(res.Violation.Path))
	for i, step := range res.Violation.Path {
		fmt.Printf("  %d. %s\n", i+1, step)
	}
	return nil
}

func zeroWaitCounterexample() error {
	lie := rstpx.GenParams{TC1: 1, TC2: 1, RC1: 1, RC2: 1, D1: 2, D2: 2}
	k, burst := 2, 2
	bits := rstpx.GenBetaBlockBits(k, burst)
	x := make([]wire.Bit, 2*bits)
	x[1] = wire.One
	tr, err := rstpx.NewGenBetaTransmitter(lie, k, burst, x)
	if err != nil {
		return err
	}
	rc, err := rstpx.NewGenBetaReceiver(lie, k, burst)
	if err != nil {
		return err
	}
	res, err := tmc.Check(tmc.System{
		X: x, T: tr, R: rc,
		ForkT:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstpx.GenBetaTransmitter).Fork() },
		ForkR:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstpx.GenBetaReceiver).Fork() },
		Written: func(n tmc.Node) []wire.Bit { return n.(*rstpx.GenBetaReceiver).WrittenBits() },
		C1:      1, C2: 1, D1: 0, D2: 2, // the real window, not the assumed one
	})
	if err != nil {
		return err
	}
	if res.Violation == nil {
		return fmt.Errorf("expected the zero-wait protocol to fail")
	}
	fmt.Printf("\nzero-wait bursts (built for a deterministic link) vs a jittery window: broken in %d steps:\n",
		len(res.Violation.Path))
	for i, step := range res.Violation.Path {
		fmt.Printf("  %d. %s\n", i+1, step)
	}
	return nil
}
