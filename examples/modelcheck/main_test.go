package main

import "testing"

// TestChecks smoke-tests every stage of the exhaustive-verification demo:
// the two positive checks must still pass and the two deliberately broken
// setups must still produce counterexamples.
func TestChecks(t *testing.T) {
	for name, f := range map[string]func() error{
		"betaTimed":              betaTimed,
		"gammaUntimed":           gammaUntimed,
		"gammaDupCounterexample": gammaDupCounterexample,
		"zeroWaitCounterexample": zeroWaitCounterexample,
	} {
		t.Run(name, func(t *testing.T) {
			if err := f(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
