package main

import "testing"

// TestRun smoke-tests the load-test demo end to end with a smaller
// session count, so `go test ./...` stays fast while still exercising
// the full serving path (mux, backpressure, fault plan, verification).
func TestRun(t *testing.T) {
	if err := run(64); err != nil {
		t.Fatal(err)
	}
}
