// Loadtest: a thousand concurrent RSTP sessions through the in-process
// serving subsystem, with a lossy fault window active for the first part
// of the run. Each session transfers its own random input over the
// hardened β(k=4) protocol; the in-memory transport enforces the paper's
// channel axioms (delay ≤ d, arbitrary reorder) while the chaos
// middleware drops and corrupts packets on top. Every session's output
// tape must
// come back equal to its input — loss and corruption may cost effort,
// never correctness.
//
//	go run ./examples/loadtest
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro"
)

func main() {
	if err := run(1000); err != nil {
		log.Fatal(err)
	}
}

func run(sessions int) error {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	base, err := repro.Beta(p, 4)
	if err != nil {
		return err
	}
	// Hardened β: checksums + retransmission, so the fault plan below
	// cannot break completion, only slow it down.
	sol := repro.Harden(base, repro.HardenOptions{})

	// Channel: a pure in-memory transport enforcing the axioms (uniform
	// random delay within d), with the chaos middleware stacked on top —
	// the same composition rstpserve uses — dropping 15% and corrupting
	// 5% of packets over the first 4000 ticks.
	rnd := rand.New(rand.NewSource(7))
	clock := repro.NewClock(100 * time.Microsecond)
	mem := repro.NewMemTransport(clock, repro.MemOptions{D: p.D, Delay: repro.RandomDelay(p.D, rnd), Buffer: 1 << 15})
	chaos := repro.NewChaosTransport(mem, clock, 7,
		repro.Fault{From: 0, To: 4000, Drop: 0.15, Corrupt: 0.05})
	pipe, err := repro.NewPipe(repro.ServeConfig{
		Solution:    sol,
		Params:      p,
		Transport:   chaos,
		Clock:       clock,
		MaxSessions: 256, // backpressure: at most 256 sessions in flight
		IdleTicks:   -1,  // transfers are evicted explicitly below
	})
	if err != nil {
		return err
	}
	defer pipe.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	rng := rand.New(rand.NewSource(42))
	inputs := make([][]repro.Bit, sessions)
	for i := range inputs {
		inputs[i] = repro.RandomBits(4*base.BlockBits, rng.Uint64)
	}

	start := time.Now()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		completed int
		failures  []string
	)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := pipe.Transfer(ctx, inputs[i])
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				failures = append(failures, fmt.Sprintf("session %d: %v", res.ID, err))
			case res.Violation != "":
				failures = append(failures, fmt.Sprintf("session %d: %s", res.ID, res.Violation))
			case !res.Completed:
				failures = append(failures, fmt.Sprintf("session %d: only %d/%d messages written",
					res.ID, res.RX.Writes, len(inputs[i])))
			default:
				completed++
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	agg := pipe.Server.Aggregate()
	affected, dropped, _, corrupted, _ := chaos.Stats()
	fmt.Printf("loadtest: %d sessions of %d bits over %s via %s\n",
		sessions, 4*base.BlockBits, sol, agg.Transport)
	fmt.Printf("chaos: %d packets affected, %d dropped, %d corrupted\n",
		affected, dropped, corrupted)
	fmt.Printf("completed %d/%d in %v (%.0f sessions/sec), server writes=%d refused=%d\n",
		completed, sessions, wall.Round(time.Millisecond),
		float64(completed)/wall.Seconds(), agg.Writes, agg.Refused)

	if len(failures) > 0 {
		for i, f := range failures {
			if i == 5 {
				fmt.Printf("... and %d more\n", len(failures)-5)
				break
			}
			fmt.Println(f)
		}
		return fmt.Errorf("%d of %d sessions failed", len(failures), sessions)
	}
	fmt.Println("every session's output equals its input: faults cost effort, not correctness")
	return nil
}
