package main

import "testing"

// TestRun smoke-tests the lower-bound construction demo end to end: it
// must still find the colliding inputs and the β protocol must still
// survive the same adversary.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
