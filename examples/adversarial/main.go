// Adversarial: the Lemma 5.1 lower-bound construction, live. A strawman
// protocol that streams bits with no inter-send spacing reveals only the
// per-window *multiset* of its packets to any receiver; we find two
// distinct inputs with identical window profiles, build the two fast
// executions in which the channel delivers them identically, and watch the
// receiver write the same (hence wrong) output. The paper's A^β(k), run
// under the same adversary, is untouched — its windows are the code.
//
// This example reaches into internal/adversary deliberately: the
// lower-bound machinery is research tooling, not part of the stable API.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/adversary"
	"repro/internal/ioa"
	"repro/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p := repro.Params{C1: 1, C2: 1, D: 4}
	window := p.Delta1() // δ1 = 4

	// 1. Find a profile collision for the naive streamer.
	factory := func(x []wire.Bit) (ioa.Automaton, error) { return adversary.NewNaiveTransmitter(x) }
	col, distinct, err := adversary.FindCollision(factory, 2, window, window, 10_000)
	if err != nil {
		return err
	}
	if col == nil {
		return fmt.Errorf("no collision found — unexpected for the naive protocol")
	}
	fmt.Printf("naive streamer over %d-bit inputs: only %d distinct profiles (of %d inputs)\n",
		window, distinct, 1<<uint(window))
	fmt.Printf("collision: X1=%s and X2=%s share profile %s\n",
		wire.BitsToString(col.X1), wire.BitsToString(col.X2), col.Profile.Key())

	// 2. Execute the Lemma 5.1 adversary: identical deliveries.
	out, err := adversary.DemonstrateIndistinguishability(*col,
		func() (ioa.Automaton, error) { return adversary.NewNaiveReceiver() }, window)
	if err != nil {
		return err
	}
	fmt.Printf("adversary delivers both runs identically -> Y1=%s Y2=%s (identical=%v)\n",
		wire.BitsToString(out.Y1), wire.BitsToString(out.Y2), out.Identical)
	fmt.Printf("at least one run violates Y = X: broken=%v\n\n", out.Broken)
	if !out.Broken || !out.Identical {
		return fmt.Errorf("the construction should have broken the naive protocol")
	}

	// 3. The real protocol under the same pressure: A^β(2) under the
	// Figure 2 interval-batch adversary AND the burst-reversal adversary.
	s, err := repro.Beta(p, 2)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(3))
	x := repro.RandomBits(24*s.BlockBits, rng.Uint64)
	for _, delay := range []repro.DelayPolicy{
		repro.IntervalBatchDelay(p.D),
		repro.ReverseBurstDelay(p.D, p.Delta1(), p.C1),
	} {
		runRes, err := s.Run(x, repro.RunOptions{
			TPolicy: repro.FixedSchedule(p.C1),
			RPolicy: repro.FixedSchedule(p.C1),
			Delay:   delay,
		})
		if err != nil {
			return err
		}
		ok := repro.BitsToString(runRes.Writes()) == repro.BitsToString(x)
		fmt.Printf("A^β(2) vs %s: Y == X is %v, good(A) is %v\n",
			delay.Name(), ok, len(s.Verify(runRes, x)) == 0)
		if !ok {
			return fmt.Errorf("A^β should survive every legal adversary")
		}
	}
	fmt.Println("\nthe multiset encoding is exactly the information the adversary cannot destroy.")
	return nil
}
