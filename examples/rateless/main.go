// Rateless: fountain-coded sessions through a lossy window, against the
// retransmission stack the code replaces. Each session's input rides as
// per-block LT-coded symbols — the transmitter streams deterministic
// seeded combinations of a block's packet multiset until the receiver's
// decode ack cuts the stream — so a dropped packet costs one extra coded
// symbol, not a retransmission round trip. The chaos middleware drops
// 15% of everything for the first part of the run; every output tape
// must still come back equal to its input, and the symbols-per-block
// histogram shows the coding overhead loss actually cost.
//
//	go run ./examples/rateless
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro"
)

func main() {
	if err := run(256); err != nil {
		log.Fatal(err)
	}
}

func run(sessions int) error {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	reg := repro.NewMetrics()
	sol, err := repro.NewRatelessBuilder(repro.RatelessOptions{Params: p, K: 4, Seed: 11, Obs: reg})
	if err != nil {
		return err
	}

	// Channel: the axiom-enforcing in-memory transport with the chaos
	// middleware stacked on top, dropping 15% of packets — coded symbols
	// and decode acks alike — over the first 6000 ticks. No hardened
	// wrapper anywhere: loss tolerance is the code's own property.
	rnd := rand.New(rand.NewSource(11))
	clock := repro.NewClock(100 * time.Microsecond)
	mem := repro.NewMemTransport(clock, repro.MemOptions{D: p.D, Delay: repro.RandomDelay(p.D, rnd), Buffer: 1 << 15})
	chaos := repro.NewChaosTransport(mem, clock, 11,
		repro.Fault{From: 0, To: 6000, Drop: 0.15})
	pipe, err := repro.NewPipe(repro.ServeConfig{
		Solution:         sol,
		Params:           p,
		Transport:        chaos,
		Clock:            clock,
		MaxSessions:      128,
		IdleTicks:        -1,
		Obs:              reg,
		EffortLowerBound: repro.RatelessLowerBound(p, 4),
	})
	if err != nil {
		return err
	}
	defer pipe.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	rng := rand.New(rand.NewSource(42))
	inputs := make([][]repro.Bit, sessions)
	for i := range inputs {
		inputs[i] = repro.RandomBits(4*sol.BlockBits(), rng.Uint64)
	}

	start := time.Now()
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		completed int
		failures  []string
	)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := pipe.Transfer(ctx, inputs[i])
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				failures = append(failures, fmt.Sprintf("session %d: %v", res.ID, err))
			case res.Violation != "":
				failures = append(failures, fmt.Sprintf("session %d: %s", res.ID, res.Violation))
			case !res.Completed:
				failures = append(failures, fmt.Sprintf("session %d: only %d/%d messages written",
					res.ID, res.RX.Writes, len(inputs[i])))
			default:
				completed++
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	affected, dropped, _, _, _ := chaos.Stats()
	snap := reg.Snapshot()
	sent := snap.Counters["rstp_rateless_symbols_sent_total"]
	decoded := snap.Counters["rstp_rateless_blocks_decoded_total"]
	fmt.Printf("rateless: %d sessions of %d bits over %s (bound %.2f vs beta's %.2f ticks/msg)\n",
		sessions, 4*sol.BlockBits(), sol, repro.RatelessUpperBound(p, 4), repro.BetaUpperBound(p, 4))
	fmt.Printf("chaos: %d packets affected, %d dropped\n", affected, dropped)
	if h, ok := snap.Histograms["rstp_rateless_symbols_per_block"]; ok && decoded > 0 {
		// n = δ1 source symbols per block: the histogram's distance from n
		// is what loss cost — extra coded symbols, not round trips.
		fmt.Printf("decoded %d blocks from %d coded symbols (%.2f symbols/block vs n=%d source symbols)\n",
			decoded, sent, h.Mean, p.Delta1())
	}
	fmt.Printf("completed %d/%d in %v (%.0f sessions/sec)\n",
		completed, sessions, wall.Round(time.Millisecond), float64(completed)/wall.Seconds())

	if len(failures) > 0 {
		for i, f := range failures {
			if i == 5 {
				fmt.Printf("... and %d more\n", len(failures)-5)
				break
			}
			fmt.Println(f)
		}
		return fmt.Errorf("%d of %d sessions failed", len(failures), sessions)
	}
	fmt.Println("every session's output equals its input: loss cost coded symbols, never correctness")
	return nil
}
