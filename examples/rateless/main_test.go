package main

import "testing"

// TestRun smoke-tests the rateless demo end to end with a smaller
// session count, so `go test ./...` stays fast while still exercising
// the full coded path (builder, serving mux, chaos loss window, decode
// acks, verification).
func TestRun(t *testing.T) {
	if err := run(32); err != nil {
		t.Fatal(err)
	}
}
