// Firmware: bulk transfer with a return path — choosing between the
// r-passive A^β(k) and the active A^γ(k). The paper's conclusion in one
// demo: A^β pays δ1·c2 = d·(c2/c1) per burst window while A^γ pays O(d),
// so as the timing uncertainty c2/c1 grows, acknowledgements start to win.
//
//	go run ./examples/firmware
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const k = 8
	rng := rand.New(rand.NewSource(7))
	image := repro.RandomBits(4*1024, rng.Uint64) // a 512-byte "firmware image"

	fmt.Printf("firmware transfer: %d bits, k = %d, d = 24, c1 = 1, sweeping c2\n\n", len(image), k)
	fmt.Printf("%6s  %14s  %14s  %8s\n", "c2/c1", "A^β(k) effort", "A^γ(k) effort", "winner")

	var crossed bool
	for _, c2 := range []int64{1, 2, 3, 4, 6, 8} {
		p := repro.Params{C1: 1, C2: c2, D: 24}

		beta, err := repro.Beta(p, k)
		if err != nil {
			return err
		}
		gamma, err := repro.Gamma(p, k)
		if err != nil {
			return err
		}

		bx, _ := repro.PadToBlock(image, beta.BlockBits)
		gx, _ := repro.PadToBlock(image, gamma.BlockBits)

		// Worst-case conditions for both: slowest schedules, max delay.
		be, err := beta.MeasureEffort(bx, repro.RunOptions{})
		if err != nil {
			return err
		}
		ge, err := gamma.MeasureEffort(gx, repro.RunOptions{})
		if err != nil {
			return err
		}

		winner := "passive (A^β)"
		if ge.PerMessage < be.PerMessage {
			winner = "active (A^γ)"
			crossed = true
		}
		fmt.Printf("%6d  %14.3f  %14.3f  %s\n", c2, be.PerMessage, ge.PerMessage, winner)
	}
	if !crossed {
		return fmt.Errorf("expected the active protocol to win at high c2/c1")
	}
	fmt.Println("\ntakeaway: with tight clocks keep the receiver silent; with loose clocks, ack.")
	return nil
}
