package main

import "testing"

// TestRun smoke-tests the example end to end; the β-vs-γ crossover demo
// must keep compiling and completing as the library evolves.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
