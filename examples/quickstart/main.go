// Quickstart: transmit a short message with the r-passive burst protocol
// A^β(k) over the worst-case legal channel and verify the receiver's tape.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Timing constants: steps every 2..3 ticks, delivery within 12 ticks.
	p := repro.Params{C1: 2, C2: 3, D: 12}

	// A^β with a 4-symbol packet alphabet: each burst of δ1 = 6 packets
	// carries ⌊log2 μ_4(6)⌋ = 6 input bits.
	s, err := repro.Beta(p, 4)
	if err != nil {
		return err
	}
	fmt.Printf("protocol %s: %d bits per %d-packet burst\n", s, s.BlockBits, p.Delta1())

	// The payload: "hi!" as bits, padded to a block multiple (the paper
	// assumes |X| ≡ 0 mod the block size; real applications frame above).
	var x []repro.Bit
	for _, b := range []byte("hi!") {
		for i := 7; i >= 0; i-- {
			x = append(x, repro.Bit((b>>uint(i))&1))
		}
	}
	x, pad := repro.PadToBlock(x, s.BlockBits)
	fmt.Printf("input: %s (%d bits, %d padding)\n", repro.BitsToString(x), len(x), pad)

	// Run on the worst case: slowest schedules, maximum delay.
	run, err := s.Run(x, repro.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("output: %s\n", repro.BitsToString(run.Writes()))

	if v := s.Verify(run, x); len(v) > 0 {
		return fmt.Errorf("execution not good: %v", v[0])
	}
	last, _ := run.LastSendTime()
	fmt.Printf("delivered and verified: effort %.2f ticks/message (upper bound %.2f, lower bound %.2f)\n",
		float64(last)/float64(len(x)),
		repro.BetaUpperBound(p, 4),
		repro.PassiveLowerBound(p, 4))
	return nil
}
