package main

import "testing"

// TestRun smoke-tests the example end to end: the demo must keep working
// as the library evolves, since README points newcomers at it first.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
