// Observability: the serving stack under full instrumentation. A lossy
// hardened-β load runs through an instrumented pipe while the metrics
// endpoint is live; we scrape our own /metrics and /metrics.json the way
// a Prometheus collector would, watch the live session table mid-flight,
// and read one session's protocol trace ring afterwards.
//
// The interesting metric is rstp_effort_gap_ticks: the measured gap
// between consecutive output writes minus the paper's Theorem 5.3 lower
// bound δ1·c2/log2 ζ_k(δ1) — how far the running system sits above the
// information-theoretic floor, live.
//
//	go run ./examples/observability
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro"
)

func main() {
	if err := run(64); err != nil {
		log.Fatal(err)
	}
}

func run(sessions int) error {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	base, err := repro.Beta(p, 4)
	if err != nil {
		return err
	}

	// One registry instruments every layer: the session endpoints (via
	// ServeConfig.Obs), the hardened wrapper (via the layer observer) and
	// the transport stack (via InstrumentTransport). Tracing is bounded:
	// 256 events per session, 64 sessions.
	reg := repro.NewMetrics()
	reg.Tracer().Enable(256, 64)
	sol := repro.Harden(base, repro.HardenOptions{Observer: repro.NewLayerObserver(reg)})

	rnd := rand.New(rand.NewSource(3))
	clock := repro.NewClock(100 * time.Microsecond)
	mem := repro.NewMemTransport(clock, repro.MemOptions{D: p.D, Delay: repro.RandomDelay(p.D, rnd), Buffer: 1 << 15})
	chaos := repro.NewChaosTransport(mem, clock, 3,
		repro.Fault{From: 0, To: 3000, Drop: 0.15})
	repro.InstrumentTransport(reg, chaos)

	pipe, err := repro.NewPipe(repro.ServeConfig{
		Solution:         sol,
		Params:           p,
		Transport:        chaos,
		Clock:            clock,
		MaxSessions:      64,
		IdleTicks:        -1,
		Obs:              reg,
		EffortLowerBound: repro.PassiveLowerBound(p, 4),
	})
	if err != nil {
		return err
	}
	defer pipe.Close()

	// The introspection endpoint: /metrics, /metrics.json, /trace, pprof.
	msrv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer msrv.Close()
	fmt.Printf("scraping ourselves at http://%s/metrics\n\n", msrv.Addr())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rng := rand.New(rand.NewSource(17))
	inputs := make([][]repro.Bit, sessions)
	for i := range inputs {
		inputs[i] = repro.RandomBits(8*base.BlockBits, rng.Uint64)
	}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(x []repro.Bit) {
			defer wg.Done()
			res, err := pipe.Transfer(ctx, x)
			if err != nil {
				errs <- err
			} else if !res.Completed || res.Violation != "" {
				errs <- fmt.Errorf("session %d: completed=%v violation=%q", res.ID, res.Completed, res.Violation)
			}
		}(inputs[i])
	}

	// Mid-flight: the live session table, straight off the server.
	time.Sleep(50 * time.Millisecond)
	live := pipe.Server.LiveSessions()
	fmt.Printf("live mid-run: %d receiver sessions in flight", len(live))
	if len(live) > 0 {
		ls := live[0]
		fmt.Printf("; session %d: writes=%d effort=%.1f ticks/msg gap=+%.1f over the Thm 5.3 floor",
			ls.ID, ls.Writes, ls.EffortTicks, ls.EffortGapTicks)
	}
	fmt.Println()

	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}

	// Final scrape, exactly as a collector would see it.
	expo, err := scrape("http://" + msrv.Addr() + "/metrics")
	if err != nil {
		return err
	}
	fmt.Println("\nselected series from /metrics:")
	for _, line := range strings.Split(expo, "\n") {
		for _, prefix := range []string{
			"rstp_session_writes_total", "rstp_session_sends_total",
			"rstp_layer_retransmits_total", "rstp_chaos_dropped_total",
			"rstp_deadline_ticks", "rstp_effort_bound_ticks",
			"rstp_interwrite_ticks_count", "rstp_effort_gap_ticks_sum",
			"rstp_transport_delivery_ticks_count",
		} {
			if strings.HasPrefix(line, prefix) {
				fmt.Println("  " + line)
			}
		}
	}

	// One session's protocol trace ring: the transitions behind the sums.
	traces := reg.Tracer().Snapshot()
	if len(traces) > 0 {
		tr := traces[0]
		n := len(tr.Events)
		fmt.Printf("\ntrace ring for session %d: %d events recorded, last 5:\n", tr.Session, tr.Total)
		for _, ev := range tr.Events[max(0, n-5):] {
			fmt.Printf("  tick %6d  %-6s arg=%d\n", ev.Tick, ev.KindName, ev.Arg)
		}
	}
	fmt.Println("\nevery session completed while being watched: observation cost atomics, not correctness")
	return nil
}

// scrape GETs one URL and returns the body.
func scrape(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}
