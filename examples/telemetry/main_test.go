package main

import "testing"

// TestRun smoke-tests the telemetry example end to end.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
