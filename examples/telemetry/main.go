// Telemetry: a one-way sensor link — the workload the r-passive protocols
// exist for. The sensor (transmitter) streams readings to a logger
// (receiver) that cannot send anything back (r-passive: P^rt = ∅), over a
// jittery but bounded-delay channel. We sweep the packet alphabet k and
// watch the effort fall like 1/log k, then stress the link with the
// in-burst reversal adversary to show the multiset encoding shrugging off
// reordering.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p := repro.Params{C1: 2, C2: 4, D: 24}
	rng := rand.New(rand.NewSource(42))

	// 1 KiB of "sensor readings".
	readings := repro.RandomBits(8*1024, rng.Uint64)

	fmt.Printf("telemetry link: %v — streaming %d bits, r-passive\n\n", p, len(readings))
	fmt.Printf("%4s  %10s  %14s  %14s  %14s\n", "k", "bits/burst", "effort (meas)", "upper bound", "lower bound")
	for _, k := range []int{2, 4, 8, 16, 32} {
		s, err := repro.Beta(p, k)
		if err != nil {
			return err
		}
		x, _ := repro.PadToBlock(readings, s.BlockBits)

		// Realistic conditions: random schedules within [c1, c2], random
		// delays within [0, d].
		eff, err := s.MeasureEffort(x, repro.RunOptions{
			TPolicy: repro.RandomSchedule(p.C1, p.C2, rng.Int63n),
			RPolicy: repro.RandomSchedule(p.C1, p.C2, rng.Int63n),
			Delay:   repro.RandomDelay(p.D, rng),
		})
		if err != nil {
			return err
		}
		fmt.Printf("%4d  %10d  %14.3f  %14.3f  %14.3f\n",
			k, s.BlockBits, eff.PerMessage, repro.BetaUpperBound(p, k), repro.PassiveLowerBound(p, k))
	}

	// Stress: reverse every burst's arrival order. Decoding is
	// multiset-based, so the logger still reconstructs the stream.
	k := 8
	s, err := repro.Beta(p, k)
	if err != nil {
		return err
	}
	x, _ := repro.PadToBlock(readings, s.BlockBits)
	runRes, err := s.Run(x, repro.RunOptions{
		TPolicy: repro.FixedSchedule(p.C1),
		RPolicy: repro.FixedSchedule(p.C1),
		Delay:   repro.ReverseBurstDelay(p.D, p.Delta1(), p.C1),
	})
	if err != nil {
		return err
	}
	ok := repro.BitsToString(runRes.Writes()) == repro.BitsToString(x)
	good := len(s.Verify(runRes, x)) == 0
	fmt.Printf("\nreversal adversary on k=%d: stream intact=%v, execution good=%v\n", k, ok, good)
	if !ok || !good {
		return fmt.Errorf("telemetry stream corrupted under reversal")
	}
	return nil
}
