// Window: the Section 7 extension in action. A data-center-style link has
// high but *predictable* latency — delivery in [d1, d2] with small slack —
// while a WAN-style link has the same worst case d2 but no lower bound.
// The channel's power to scramble is the slack d2 - d1, so the predictable
// link transmits several times faster with the very same protocol family.
//
//	go run ./examples/window
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const k = 4
	rng := rand.New(rand.NewSource(99))
	payload := repro.RandomBits(2*1024, rng.Uint64)

	fmt.Println("same worst-case latency d2 = 12, different predictability:")
	fmt.Printf("%22s  %6s  %6s  %10s  %12s  %12s\n",
		"link", "slack", "wait", "effort", "gen upper", "gen lower")

	var efforts []float64
	for _, link := range []struct {
		name   string
		d1, d2 int64
	}{
		{name: "WAN (d in [0,12])", d1: 0, d2: 12},
		{name: "metro (d in [6,12])", d1: 6, d2: 12},
		{name: "datacenter [10,12]", d1: 10, d2: 12},
		{name: "synchronous [12,12]", d1: 12, d2: 12},
	} {
		p := repro.GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: link.d1, D2: link.d2}
		s, err := repro.GenBeta(p, k)
		if err != nil {
			return err
		}
		x, _ := repro.PadToBlock(payload, s.BlockBits)

		// Worst legal behavior for this link: the adversary uses the whole
		// window.
		eff, err := s.MeasureEffort(x, repro.GenRunOptions{
			Delay: repro.WindowDelay(link.d1, link.d2, rng),
		})
		if err != nil {
			return fmt.Errorf("%s: %w", link.name, err)
		}
		fmt.Printf("%22s  %6d  %6d  %10.3f  %12.3f  %12.3f\n",
			link.name, p.Slack(), p.WaitSteps(), eff,
			repro.GenBetaUpperBound(p, k, s.Burst), repro.GenPassiveLowerBound(p, k))
		efforts = append(efforts, eff)
	}
	if efforts[len(efforts)-1] >= efforts[0] {
		return fmt.Errorf("predictable link should beat the WAN")
	}
	fmt.Println("\nlatency you can predict is latency you don't pay for (twice).")
	return nil
}
