package main

import "testing"

// TestRun smoke-tests the window-delay example end to end.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
