package main

import "testing"

// TestRun smoke-tests the crash-recovery example end to end.
func TestRun(t *testing.T) {
	if err := run(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}
