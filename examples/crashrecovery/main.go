// Crash recovery: durable serving that survives a process kill. A
// stabilized-β fleet checkpoints every session into a file-backed
// journal; mid-transfer the whole serving stack is abandoned without any
// shutdown — endpoints, half-written tapes and all, the in-process
// stand-in for SIGKILL. A second incarnation then opens the same
// directory: the journal replays, each receiver resumes its durable
// output tape, and the RESYNC/REWIND handshake rewinds each transmitter
// to the right block boundary instead of resending what already landed.
//
// The invariant to watch: across the kill, every session's output tape Y
// only ever grows — the resumed prefix is never rewritten — and ends
// equal to X.
//
//	go run ./examples/crashrecovery
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro"
)

const sessions = 4

func main() {
	dir, err := os.MkdirTemp("", "rstp-journal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := run(dir); err != nil {
		log.Fatal(err)
	}
}

// buildPipe assembles one incarnation of the durable serving stack: a
// stabilized β in Recover mode checkpointing into store, sessions
// persisting their tapes through ServeConfig.Store.
func buildPipe(store *repro.Journal) (*repro.Pipe, repro.Solution, error) {
	p := repro.Params{C1: 2, C2: 3, D: 12}
	base, err := repro.Beta(p, 4)
	if err != nil {
		return nil, base, err
	}
	sol := repro.Stabilize(base, repro.StabilizeOptions{Store: store, Recover: true})
	clock := repro.NewClock(50 * time.Microsecond)
	mem := repro.NewMemTransport(clock, repro.MemOptions{D: p.D, Buffer: 1 << 14})
	pipe, err := repro.NewPipe(repro.ServeConfig{
		Solution:  sol,
		Params:    p,
		Transport: mem,
		Clock:     clock,
		Store:     store,
	})
	return pipe, base, err
}

func run(dir string) error {
	// Deterministic inputs: the second incarnation regenerates the same
	// fleet from the same seed, exactly like a restarted load generator.
	inputs := func(blockBits int) [][]repro.Bit {
		rng := rand.New(rand.NewSource(11))
		xs := make([][]repro.Bit, sessions)
		for i := range xs {
			xs[i] = repro.RandomBits(8*blockBits, rng.Uint64)
		}
		return xs
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Incarnation one: start every session, let each write about half its
	// tape, then walk away mid-transfer — no eviction, no drain.
	store, err := repro.OpenJournal(dir, repro.JournalOptions{})
	if err != nil {
		return err
	}
	pipe, base, err := buildPipe(store)
	if err != nil {
		return err
	}
	xs := inputs(base.BlockBits)
	for i, x := range xs {
		if _, err := pipe.Dialer.StartID(ctx, uint32(i+1), x); err != nil {
			return err
		}
	}
	for i, x := range xs {
		if _, err := pipe.Server.WaitWrites(ctx, uint32(i+1), len(x)/2); err != nil {
			return err
		}
	}
	pipe.Close()
	store.Close()
	st := store.Stats()
	fmt.Printf("killed mid-transfer: %d sessions, %d journal saves, %d bytes durable in %s\n",
		sessions, st.Saves, st.Size, dir)

	// Incarnation two: same directory, fresh everything else.
	store2, err := repro.OpenJournal(dir, repro.JournalOptions{})
	if err != nil {
		return err
	}
	defer store2.Close()
	st2 := store2.Stats()
	fmt.Printf("restarted: replayed %d records (%d truncated) into %d keys\n",
		st2.Replayed, st2.Truncations, st2.Keys)

	pipe2, _, err := buildPipe(store2)
	if err != nil {
		return err
	}
	defer pipe2.Close()
	for i, x := range xs {
		res, err := pipe2.TransferID(ctx, uint32(i+1), x)
		if err != nil {
			return err
		}
		if res.Violation != "" {
			return fmt.Errorf("session %d violated the prefix invariant: %s", res.ID, res.Violation)
		}
		if !res.Completed {
			return fmt.Errorf("session %d incomplete after restart: %d of %d writes",
				res.ID, res.RX.Writes, len(x))
		}
		fmt.Printf("session %d: resumed %d durable messages, wrote the remaining %d, Y = X\n",
			res.ID, res.RX.Resumed, res.RX.Writes-res.RX.Resumed)
	}
	return nil
}
