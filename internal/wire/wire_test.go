package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitValid(t *testing.T) {
	if !Zero.Valid() || !One.Valid() {
		t.Error("0 and 1 must be valid")
	}
	if Bit(2).Valid() {
		t.Error("2 must be invalid")
	}
}

func TestBitString(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" {
		t.Errorf("bit strings: %q %q", Zero, One)
	}
}

func TestDirString(t *testing.T) {
	tests := []struct {
		d    Dir
		want string
	}{
		{d: TtoR, want: "t->r"},
		{d: RtoT, want: "r->t"},
		{d: Dir(9), want: "dir(9)"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Dir(%d).String() = %q, want %q", int(tt.d), got, tt.want)
		}
	}
}

func TestPacketString(t *testing.T) {
	tests := []struct {
		p    Packet
		want string
	}{
		{p: DataPacket(3), want: "data(3)"},
		{p: AckPacket(), want: "ack"},
		{p: Packet{Kind: Data, Symbol: 1, Tag: 1}, want: "data(1,tag=1)"},
		{p: Packet{Kind: Ack, Tag: 1}, want: "ack(tag=1)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("%#v.String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestActionKindsAndStrings(t *testing.T) {
	send := Send{Dir: TtoR, P: DataPacket(2)}
	if send.Kind() != KindSend || send.String() != "send[t->r](data(2))" {
		t.Errorf("send: kind=%q str=%q", send.Kind(), send.String())
	}
	recv := Recv{Dir: RtoT, P: AckPacket()}
	if recv.Kind() != KindRecv || recv.String() != "recv[r->t](ack)" {
		t.Errorf("recv: kind=%q str=%q", recv.Kind(), recv.String())
	}
	w := Write{M: One}
	if w.Kind() != KindWrite || w.String() != "write(1)" {
		t.Errorf("write: kind=%q str=%q", w.Kind(), w.String())
	}
	in := Internal{Name: "wait_t"}
	if in.Kind() != "wait_t" || in.String() != "wait_t" {
		t.Errorf("internal: kind=%q str=%q", in.Kind(), in.String())
	}
}

func TestParseBitsRoundTrip(t *testing.T) {
	bits, err := ParseBits("0110")
	if err != nil {
		t.Fatal(err)
	}
	if BitsToString(bits) != "0110" {
		t.Errorf("round trip = %q", BitsToString(bits))
	}
	if _, err := ParseBits("01x0"); err == nil {
		t.Error("invalid char should fail")
	}
	empty, err := ParseBits("")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty parse: %v, %v", empty, err)
	}
}

func TestParseFormatQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		n := rng.Intn(100)
		bits := RandomBits(n, rng.Uint64)
		parsed, err := ParseBits(BitsToString(bits))
		if err != nil || len(parsed) != n {
			return false
		}
		for i := range bits {
			if parsed[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRandomBitsLengthAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		bits := RandomBits(n, rng.Uint64)
		if len(bits) != n {
			t.Fatalf("len = %d, want %d", len(bits), n)
		}
		for i, b := range bits {
			if !b.Valid() {
				t.Fatalf("invalid bit %d at %d", b, i)
			}
		}
	}
}

func TestRandomBitsUsesAllWordBits(t *testing.T) {
	// A constant source with a pattern ensures bits beyond the first are
	// consumed from the same word.
	calls := 0
	next := func() uint64 { calls++; return 0xAAAAAAAAAAAAAAAA } // 1010...
	bits := RandomBits(64, next)
	if calls != 1 {
		t.Fatalf("expected 1 word for 64 bits, got %d", calls)
	}
	if bits[0] != Zero || bits[1] != One {
		t.Errorf("LSB-first extraction broken: %v %v", bits[0], bits[1])
	}
}
