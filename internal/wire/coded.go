package wire

import (
	"encoding/binary"
	"fmt"
)

// Coded-symbol and decode-ack payload records — the wire vocabulary of
// the rateless burst subsystem (internal/rateless).
//
// A Coded frame carries one fountain-coded symbol of one block. The
// authoritative fields ride in the frame payload, checksummed, because
// the frame header's Packet fields are what the chaos middleware (and a
// hostile channel) corrupts: the receiver cross-checks Packet.Symbol
// against the payload's Value and drops mismatches as loss. A DecodeAck
// frame carries the receiver's cut-the-stream signal: the index of the
// next block it needs.
//
// Both records are fixed-length and strictly validated: wrong length,
// wrong magic/version or a failed checksum is a CodedError, never a
// panic, mirroring ParseFrame's discipline for untrusted input.

// CodedSymbol is one fountain-coded symbol on the wire: coded symbol
// Index of block Block, with coded value Value. The (Block, Index) pair
// determines the symbol's source-neighbor set on both sides via the
// shared per-block seed, so the record never carries the neighbor list.
type CodedSymbol struct {
	// Block is the zero-based block index within the session's input.
	Block uint32
	// Index is the coded-symbol index within the block's endless stream;
	// indexes below the block length are systematic (value = source
	// symbol verbatim).
	Index uint32
	// Value is the coded symbol: the sum of the neighbor source symbols
	// modulo the packet alphabet size k.
	Value Symbol
}

// DecodeAckMsg is the rateless decode acknowledgement: the receiver has
// decoded every block below Next and cuts the symbol stream for them.
type DecodeAckMsg struct {
	// Next is the index of the first block the receiver still needs.
	Next uint32
}

// Coded payload wire format (big-endian):
//
//	offset  size  field
//	0       1     magic 'C'
//	1       1     version (1)
//	2       4     block
//	6       4     index
//	10      8     value
//	18      4     FNV-32a over bytes [0, 18)
//
// DecodeAck payload wire format (big-endian):
//
//	offset  size  field
//	0       1     magic 'K'
//	1       1     version (1)
//	2       4     next block
//	6       4     FNV-32a over bytes [0, 6)
const (
	codedMagic   = 'C'
	ackMagic     = 'K'
	codedVersion = 1
	// CodedSymbolLen is the exact coded-symbol payload length in bytes.
	CodedSymbolLen = 22
	// DecodeAckLen is the exact decode-ack payload length in bytes.
	DecodeAckLen = 10
)

// CodedError describes a malformed coded-symbol or decode-ack payload.
type CodedError struct {
	// Reason explains the defect.
	Reason string
}

// Error renders the coded payload error.
func (e *CodedError) Error() string { return "wire: bad coded payload: " + e.Reason }

func codedErrf(format string, args ...any) error {
	return &CodedError{Reason: fmt.Sprintf(format, args...)}
}

// fnv32 is FNV-32a — the same dependency-free hash family the stabilized
// layer's checkpoints use, at the width a 22-byte record can afford.
func fnv32(data []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range data {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// AppendCodedSymbol appends the encoded coded-symbol record to dst.
func AppendCodedSymbol(dst []byte, cs CodedSymbol) []byte {
	var buf [CodedSymbolLen]byte
	buf[0] = codedMagic
	buf[1] = codedVersion
	binary.BigEndian.PutUint32(buf[2:6], cs.Block)
	binary.BigEndian.PutUint32(buf[6:10], cs.Index)
	binary.BigEndian.PutUint64(buf[10:18], uint64(int64(cs.Value)))
	binary.BigEndian.PutUint32(buf[18:22], fnv32(buf[:18]))
	return append(dst, buf[:]...)
}

// ParseCodedSymbol decodes one coded-symbol record occupying the whole
// buffer. Every defect — wrong length, magic, version or checksum — is a
// CodedError; untrusted input cannot panic the receiver.
func ParseCodedSymbol(buf []byte) (CodedSymbol, error) {
	if len(buf) != CodedSymbolLen {
		return CodedSymbol{}, codedErrf("coded symbol is %d bytes, want exactly %d", len(buf), CodedSymbolLen)
	}
	if buf[0] != codedMagic {
		return CodedSymbol{}, codedErrf("magic 0x%02x, want 0x%02x", buf[0], codedMagic)
	}
	if buf[1] != codedVersion {
		return CodedSymbol{}, codedErrf("version %d, want %d", buf[1], codedVersion)
	}
	if got, want := binary.BigEndian.Uint32(buf[18:22]), fnv32(buf[:18]); got != want {
		return CodedSymbol{}, codedErrf("checksum %08x, want %08x", got, want)
	}
	return CodedSymbol{
		Block: binary.BigEndian.Uint32(buf[2:6]),
		Index: binary.BigEndian.Uint32(buf[6:10]),
		Value: Symbol(int64(binary.BigEndian.Uint64(buf[10:18]))),
	}, nil
}

// AppendDecodeAck appends the encoded decode-ack record to dst.
func AppendDecodeAck(dst []byte, a DecodeAckMsg) []byte {
	var buf [DecodeAckLen]byte
	buf[0] = ackMagic
	buf[1] = codedVersion
	binary.BigEndian.PutUint32(buf[2:6], a.Next)
	binary.BigEndian.PutUint32(buf[6:10], fnv32(buf[:6]))
	return append(dst, buf[:]...)
}

// ParseDecodeAck decodes one decode-ack record occupying the whole
// buffer, with the same strict validation as ParseCodedSymbol.
func ParseDecodeAck(buf []byte) (DecodeAckMsg, error) {
	if len(buf) != DecodeAckLen {
		return DecodeAckMsg{}, codedErrf("decode ack is %d bytes, want exactly %d", len(buf), DecodeAckLen)
	}
	if buf[0] != ackMagic {
		return DecodeAckMsg{}, codedErrf("magic 0x%02x, want 0x%02x", buf[0], ackMagic)
	}
	if buf[1] != codedVersion {
		return DecodeAckMsg{}, codedErrf("version %d, want %d", buf[1], codedVersion)
	}
	if got, want := binary.BigEndian.Uint32(buf[6:10]), fnv32(buf[:6]); got != want {
		return DecodeAckMsg{}, codedErrf("checksum %08x, want %08x", got, want)
	}
	return DecodeAckMsg{Next: binary.BigEndian.Uint32(buf[2:6])}, nil
}

// CodedPacket returns the header packet paired with a coded-symbol
// payload: the coded value rides in Symbol (so chaos-style symbol
// corruption is detectable against the checksummed payload) and the
// block index in Tag.
func CodedPacket(cs CodedSymbol) Packet {
	return Packet{Kind: Coded, Symbol: cs.Value, Tag: int(cs.Block)}
}

// DecodeAckPacket returns the header packet paired with a decode-ack
// payload; Symbol mirrors the next-block index for the same cross-check.
func DecodeAckPacket(a DecodeAckMsg) Packet {
	return Packet{Kind: DecodeAck, Symbol: Symbol(a.Next)}
}
