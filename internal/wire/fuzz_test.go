package wire

import (
	"encoding/binary"
	"testing"
)

// FuzzParseBits: ParseBits either errors or produces bits that format
// back to the input.
func FuzzParseBits(f *testing.F) {
	f.Add("")
	f.Add("0101")
	f.Add("2")
	f.Add("01x")
	f.Fuzz(func(t *testing.T, s string) {
		bits, err := ParseBits(s)
		if err != nil {
			return
		}
		if got := BitsToString(bits); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
		for _, b := range bits {
			if !b.Valid() {
				t.Fatalf("parsed invalid bit %d", b)
			}
		}
	})
}

// FuzzParseFrame: ParseFrame must never panic on arbitrary bytes, and
// every accepted frame must re-encode to exactly the input buffer.
func FuzzParseFrame(f *testing.F) {
	// Valid frames.
	for _, fr := range []Frame{
		{Session: 1, Dir: TtoR, Seq: 1, P: DataPacket(3)},
		{Session: 9, Dir: RtoT, Seq: 7, P: AckPacket()},
		{Session: 2, Dir: TtoR, Seq: 2, P: DataPacket(0), Payload: []byte("xy")},
	} {
		buf, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// Regression seed: declared payload length exceeds the buffered bytes.
	// Before length validation this class of input hit a slice-bounds
	// panic; it must now be rejected as a parse error.
	over, err := EncodeFrame(Frame{Session: 1, Dir: TtoR, Seq: 1, P: DataPacket(2), Payload: []byte{1, 2, 3}})
	if err != nil {
		f.Fatal(err)
	}
	binary.BigEndian.PutUint16(over[32:34], 60000)
	f.Add(over)
	// Truncated header and junk.
	f.Add([]byte{})
	f.Add([]byte{'R', 1, 0, 0})
	f.Add([]byte("not a frame at all, just bytes"))
	// Chaos-style datagram corruption: a well-formed frame with one byte
	// flipped at every offset. The faults layer corrupts symbols *before*
	// encoding (those frames stay parseable — see the checked-in
	// chaos-corrupted-* corpus under testdata), but a hostile channel can
	// flip any wire byte; every such mutation must parse or error, never
	// panic. Flips in magic, version, dir, kind, or the length field land
	// in the malformed bucket.
	base, err := EncodeFrame(Frame{Session: 9, Dir: TtoR, Seq: 4, P: DataPacket(2), Payload: []byte("chaos payload")})
	if err != nil {
		f.Fatal(err)
	}
	for i := range base {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x41
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		fr, err := ParseFrame(buf)
		if err != nil {
			return
		}
		out, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame %v failed to re-encode: %v", fr, err)
		}
		if string(out) != string(buf) {
			t.Fatalf("round trip mismatch:\n in %x\nout %x", buf, out)
		}
	})
}
