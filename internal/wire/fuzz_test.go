package wire

import (
	"testing"
)

// FuzzParseBits: ParseBits either errors or produces bits that format
// back to the input.
func FuzzParseBits(f *testing.F) {
	f.Add("")
	f.Add("0101")
	f.Add("2")
	f.Add("01x")
	f.Fuzz(func(t *testing.T, s string) {
		bits, err := ParseBits(s)
		if err != nil {
			return
		}
		if got := BitsToString(bits); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
		for _, b := range bits {
			if !b.Valid() {
				t.Fatalf("parsed invalid bit %d", b)
			}
		}
	})
}
