package wire

import (
	"errors"
	"testing"
)

func TestCodedSymbolRoundTrip(t *testing.T) {
	cases := []CodedSymbol{
		{},
		{Block: 0, Index: 0, Value: 0},
		{Block: 7, Index: 42, Value: 3},
		{Block: 1<<32 - 1, Index: 1<<32 - 1, Value: -1},
	}
	for _, cs := range cases {
		buf := AppendCodedSymbol(nil, cs)
		if len(buf) != CodedSymbolLen {
			t.Fatalf("encoded %v to %d bytes, want %d", cs, len(buf), CodedSymbolLen)
		}
		got, err := ParseCodedSymbol(buf)
		if err != nil {
			t.Fatalf("ParseCodedSymbol(%v): %v", cs, err)
		}
		if got != cs {
			t.Fatalf("round trip %v -> %v", cs, got)
		}
	}
}

func TestDecodeAckRoundTrip(t *testing.T) {
	for _, a := range []DecodeAckMsg{{}, {Next: 1}, {Next: 1<<32 - 1}} {
		buf := AppendDecodeAck(nil, a)
		if len(buf) != DecodeAckLen {
			t.Fatalf("encoded %v to %d bytes, want %d", a, len(buf), DecodeAckLen)
		}
		got, err := ParseDecodeAck(buf)
		if err != nil {
			t.Fatalf("ParseDecodeAck(%v): %v", a, err)
		}
		if got != a {
			t.Fatalf("round trip %v -> %v", a, got)
		}
	}
}

func TestParseCodedSymbolRejects(t *testing.T) {
	valid := AppendCodedSymbol(nil, CodedSymbol{Block: 3, Index: 9, Value: 2})

	check := func(name string, buf []byte) {
		t.Helper()
		_, err := ParseCodedSymbol(buf)
		if err == nil {
			t.Fatalf("%s: accepted malformed payload", name)
		}
		var ce *CodedError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: error %T, want *CodedError", name, err)
		}
	}

	check("empty", nil)
	check("truncated", valid[:CodedSymbolLen-1])
	check("oversized", append(append([]byte(nil), valid...), 0))

	// Any single flipped byte must fail magic, version or checksum.
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x41
		check("bitflip", mut)
	}
}

func TestParseDecodeAckRejects(t *testing.T) {
	valid := AppendDecodeAck(nil, DecodeAckMsg{Next: 5})

	check := func(name string, buf []byte) {
		t.Helper()
		if _, err := ParseDecodeAck(buf); err == nil {
			t.Fatalf("%s: accepted malformed payload", name)
		}
	}

	check("empty", nil)
	check("truncated", valid[:DecodeAckLen-1])
	check("oversized", append(append([]byte(nil), valid...), 0))
	// A coded-symbol record must not parse as an ack (wrong magic).
	check("cross-kind", AppendCodedSymbol(nil, CodedSymbol{})[:DecodeAckLen])
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x41
		check("bitflip", mut)
	}
}

func TestCodedPacketMirrors(t *testing.T) {
	cs := CodedSymbol{Block: 4, Index: 11, Value: 3}
	p := CodedPacket(cs)
	if p.Kind != Coded || p.Symbol != cs.Value || p.Tag != int(cs.Block) {
		t.Fatalf("CodedPacket(%v) = %v", cs, p)
	}
	a := DecodeAckPacket(DecodeAckMsg{Next: 9})
	if a.Kind != DecodeAck || a.Symbol != 9 {
		t.Fatalf("DecodeAckPacket = %v", a)
	}
}

func TestFrameCarriesCodedKinds(t *testing.T) {
	payload := AppendCodedSymbol(nil, CodedSymbol{Block: 1, Index: 2, Value: 3})
	f := Frame{Session: 8, Dir: TtoR, Seq: 17, P: CodedPacket(CodedSymbol{Block: 1, Index: 2, Value: 3}), Payload: payload}
	buf, err := EncodeFrame(f)
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	got, err := ParseFrame(buf)
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	if got.P.Kind != Coded {
		t.Fatalf("kind %v, want %v", got.P.Kind, Coded)
	}
	cs, err := ParseCodedSymbol(got.Payload)
	if err != nil {
		t.Fatalf("ParseCodedSymbol of frame payload: %v", err)
	}
	if cs != (CodedSymbol{Block: 1, Index: 2, Value: 3}) {
		t.Fatalf("payload round trip: %v", cs)
	}
}
