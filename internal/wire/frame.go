package wire

import (
	"encoding/binary"
	"fmt"
)

// Frame is one datagram of the session-serving subsystem: a Packet tagged
// with the session it belongs to, its direction of travel, and a per-link
// sequence number that pairs each delivery with its send (the serving
// layer's analogue of the simulator's PacketSeq).
//
// Frames are what internal/transport moves and internal/session routes.
// They are distinct from the bit-level application framing in
// internal/frame, which delimits byte payloads *inside* the transmitted
// sequence X; a Frame wraps a single protocol packet *on the channel*.
//
// Payload is an opaque extension area (unused by the RSTP protocols;
// reserved for wrappers that piggyback data on packets). Its length is
// declared on the wire and strictly validated on parse.
type Frame struct {
	// Session identifies the RSTP session the packet belongs to.
	Session uint32
	// Dir is the direction of travel (TtoR or RtoT).
	Dir Dir
	// Seq is the sender-assigned packet instance number (> 0), used to
	// pair recv events with their send in merged traces. Zero means
	// "unassigned".
	Seq int64
	// P is the protocol packet the frame carries.
	P Packet
	// Payload is opaque extension data riding along with the packet.
	Payload []byte
}

// Frame wire format (big-endian):
//
//	offset  size  field
//	0       1     magic 'R'
//	1       1     version (1)
//	2       4     session
//	6       1     dir
//	7       1     packet kind
//	8       8     packet symbol
//	16      8     packet tag
//	24      8     seq
//	32      2     payload length L
//	34      L     payload
const (
	frameMagic   = 'R'
	frameVersion = 1
	// FrameHeaderLen is the fixed frame header size in bytes.
	FrameHeaderLen = 34
	// MaxFramePayload is the largest declarable payload length.
	MaxFramePayload = 1<<16 - 1
)

// FrameError describes a malformed frame buffer.
type FrameError struct {
	// Reason explains the defect.
	Reason string
}

// Error renders the frame error.
func (e *FrameError) Error() string { return "wire: bad frame: " + e.Reason }

func frameErrf(format string, args ...any) error {
	return &FrameError{Reason: fmt.Sprintf(format, args...)}
}

// AppendFrame appends the encoded frame to dst and returns the extended
// buffer. It fails if the payload exceeds MaxFramePayload.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxFramePayload {
		return dst, frameErrf("payload %d bytes exceeds max %d", len(f.Payload), MaxFramePayload)
	}
	var hdr [FrameHeaderLen]byte
	hdr[0] = frameMagic
	hdr[1] = frameVersion
	binary.BigEndian.PutUint32(hdr[2:6], f.Session)
	hdr[6] = byte(f.Dir)
	hdr[7] = byte(f.P.Kind)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(int64(f.P.Symbol)))
	binary.BigEndian.PutUint64(hdr[16:24], uint64(int64(f.P.Tag)))
	binary.BigEndian.PutUint64(hdr[24:32], uint64(f.Seq))
	binary.BigEndian.PutUint16(hdr[32:34], uint16(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, f.Payload...)
	return dst, nil
}

// EncodeFrame encodes the frame into a fresh buffer.
func EncodeFrame(f Frame) ([]byte, error) { return AppendFrame(nil, f) }

// ParseFrame decodes one frame occupying the whole buffer — the datagram
// transports' one-frame-per-datagram discipline.
//
// Every length is validated before any slice is taken: a frame whose
// declared payload length exceeds the bytes actually present is rejected
// with a FrameError rather than left to a slice-bounds panic, and so are
// truncated headers, trailing garbage, bad magic/version, and out-of-range
// direction or packet kind. Untrusted network input therefore cannot
// crash the demux loop.
func ParseFrame(buf []byte) (Frame, error) {
	if len(buf) < FrameHeaderLen {
		return Frame{}, frameErrf("%d bytes, need at least the %d-byte header", len(buf), FrameHeaderLen)
	}
	if buf[0] != frameMagic {
		return Frame{}, frameErrf("magic 0x%02x, want 0x%02x", buf[0], frameMagic)
	}
	if buf[1] != frameVersion {
		return Frame{}, frameErrf("version %d, want %d", buf[1], frameVersion)
	}
	dir := Dir(buf[6])
	if dir != TtoR && dir != RtoT {
		return Frame{}, frameErrf("direction %d out of range", buf[6])
	}
	kind := PacketKind(buf[7])
	if kind != Data && kind != Ack && kind != Coded && kind != DecodeAck {
		return Frame{}, frameErrf("packet kind %d out of range", buf[7])
	}
	declared := int(binary.BigEndian.Uint16(buf[32:34]))
	if got := len(buf) - FrameHeaderLen; declared > got {
		return Frame{}, frameErrf("declared payload length %d exceeds %d buffered bytes", declared, got)
	} else if declared < got {
		return Frame{}, frameErrf("%d trailing bytes after declared payload length %d", got-declared, declared)
	}
	f := Frame{
		Session: binary.BigEndian.Uint32(buf[2:6]),
		Dir:     dir,
		Seq:     int64(binary.BigEndian.Uint64(buf[24:32])),
		P: Packet{
			Kind:   kind,
			Symbol: Symbol(int64(binary.BigEndian.Uint64(buf[8:16]))),
			Tag:    int(int64(binary.BigEndian.Uint64(buf[16:24]))),
		},
	}
	if declared > 0 {
		f.Payload = append([]byte(nil), buf[FrameHeaderLen:FrameHeaderLen+declared]...)
	}
	return f, nil
}

// String renders the frame, e.g. "frame[s=3 t->r #7 data(2)]".
func (f Frame) String() string {
	s := fmt.Sprintf("frame[s=%d %v #%d %v", f.Session, f.Dir, f.Seq, f.P)
	if len(f.Payload) > 0 {
		s += fmt.Sprintf(" +%dB", len(f.Payload))
	}
	return s + "]"
}
