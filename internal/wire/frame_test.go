package wire

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Session: 0, Dir: TtoR, Seq: 1, P: DataPacket(0)},
		{Session: 7, Dir: TtoR, Seq: 42, P: DataPacket(3)},
		{Session: 1 << 30, Dir: RtoT, Seq: 9, P: AckPacket()},
		{Session: 5, Dir: RtoT, Seq: 2, P: Packet{Kind: Data, Symbol: -4, Tag: 11}},
		{Session: 6, Dir: TtoR, Seq: 3, P: DataPacket(1), Payload: []byte("hello")},
	}
	for _, f := range frames {
		buf, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %v: %v", f, err)
		}
		got, err := ParseFrame(buf)
		if err != nil {
			t.Fatalf("parse %v: %v", f, err)
		}
		if got.Session != f.Session || got.Dir != f.Dir || got.Seq != f.Seq || got.P != f.P {
			t.Errorf("round trip %v -> %v", f, got)
		}
		if string(got.Payload) != string(f.Payload) {
			t.Errorf("payload round trip %q -> %q", f.Payload, got.Payload)
		}
	}
}

// TestFrameRejectsOverDeclaredLength is the regression case for the
// length-validation fix: a frame declaring more payload than the buffer
// holds must produce an error, never a slice-bounds panic.
func TestFrameRejectsOverDeclaredLength(t *testing.T) {
	buf, err := EncodeFrame(Frame{Session: 1, Dir: TtoR, Seq: 1, P: DataPacket(2), Payload: []byte{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// Declare 300 payload bytes while only 3 are present.
	binary.BigEndian.PutUint16(buf[32:34], 300)
	_, err = ParseFrame(buf)
	if err == nil {
		t.Fatal("over-declared payload length accepted")
	}
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FrameError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("error should name the over-declared length: %v", err)
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	good, err := EncodeFrame(Frame{Session: 2, Dir: RtoT, Seq: 5, P: AckPacket()})
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}
	cases := map[string][]byte{
		"empty":            nil,
		"short header":     good[:FrameHeaderLen-1],
		"bad magic":        mut(func(b []byte) { b[0] = 'X' }),
		"bad version":      mut(func(b []byte) { b[1] = 9 }),
		"bad dir":          mut(func(b []byte) { b[6] = 7 }),
		"bad kind":         mut(func(b []byte) { b[7] = 0 }),
		"trailing garbage": append(append([]byte(nil), good...), 0xff),
	}
	for name, buf := range cases {
		if _, err := ParseFrame(buf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAppendFrameRejectsOversizePayload(t *testing.T) {
	_, err := EncodeFrame(Frame{Dir: TtoR, P: DataPacket(1), Payload: make([]byte, MaxFramePayload+1)})
	if err == nil {
		t.Fatal("oversize payload accepted")
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{Session: 3, Dir: TtoR, Seq: 7, P: DataPacket(2)}
	if got := f.String(); got != "frame[s=3 t->r #7 data(2)]" {
		t.Errorf("String() = %q", got)
	}
	f.Payload = []byte{1, 2}
	if got := f.String(); !strings.Contains(got, "+2B") {
		t.Errorf("String() with payload = %q", got)
	}
}
