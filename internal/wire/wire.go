// Package wire defines the packet and message vocabulary shared by the
// channel model and the RSTP protocol automata, together with the external
// actions of the paper's interface: send(p), recv(p) and write(m).
//
// The paper (Section 4) fixes the message domain M = {0,1} and lets the
// transmitter and receiver exchange packets from disjoint alphabets P^tr and
// P^rt through a single channel C(P^tr ∪ P^rt). We encode the direction of
// travel explicitly in the actions, which keeps the two alphabets disjoint
// without string games.
package wire

import (
	"fmt"
	"strconv"
)

// Bit is a single message from the paper's binary domain M = {0,1}.
type Bit byte

const (
	// Zero is the message 0.
	Zero Bit = 0
	// One is the message 1.
	One Bit = 1
)

// Valid reports whether b is one of the two legal messages.
func (b Bit) Valid() bool { return b == Zero || b == One }

// String renders the bit as "0" or "1".
func (b Bit) String() string { return strconv.Itoa(int(b)) }

// Symbol is a packet symbol drawn from the transmitter's k-ary packet
// alphabet {0, ..., k-1}.
type Symbol int

// Dir identifies the direction a packet travels on the channel.
type Dir int

const (
	// TtoR marks packets from the transmitter to the receiver (alphabet P^tr).
	TtoR Dir = iota + 1
	// RtoT marks packets from the receiver to the transmitter (alphabet P^rt).
	RtoT
)

// String renders the direction as "t->r" or "r->t".
func (d Dir) String() string {
	switch d {
	case TtoR:
		return "t->r"
	case RtoT:
		return "r->t"
	default:
		return fmt.Sprintf("dir(%d)", int(d))
	}
}

// PacketKind distinguishes payload-carrying packets from acknowledgements.
type PacketKind int

const (
	// Data packets carry a k-ary symbol from the transmitter's alphabet.
	Data PacketKind = iota + 1
	// Ack packets are the receiver's single acknowledgement packet used by
	// the active protocol A^γ(k); they carry no symbol.
	Ack
	// Coded packets carry one fountain-coded symbol of the rateless burst
	// subsystem (internal/rateless): Symbol holds the coded value and the
	// frame payload the full coded-symbol record (block, index, value,
	// checksum — see AppendCodedSymbol).
	Coded
	// DecodeAck packets are the rateless receiver's decode acknowledgement:
	// Symbol holds the next block it needs and the frame payload the
	// checksummed record (see AppendDecodeAck).
	DecodeAck
)

// String renders the packet kind.
func (k PacketKind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	case Coded:
		return "coded"
	case DecodeAck:
		return "decode-ack"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Packet is one element of a packet alphabet.
//
// For Data packets, Symbol holds the k-ary symbol. Tag is a small protocol
// tag (unused by the RSTP protocols; the alternating-bit baseline in
// internal/stp uses it for its one-bit sequence number).
type Packet struct {
	Kind   PacketKind
	Symbol Symbol
	Tag    int
}

// DataPacket returns the data packet carrying symbol s.
func DataPacket(s Symbol) Packet { return Packet{Kind: Data, Symbol: s} }

// AckPacket returns the receiver's acknowledgement packet.
func AckPacket() Packet { return Packet{Kind: Ack} }

// String renders the packet, e.g. "data(3)" or "ack".
func (p Packet) String() string {
	switch p.Kind {
	case Data:
		if p.Tag != 0 {
			return fmt.Sprintf("data(%d,tag=%d)", int(p.Symbol), p.Tag)
		}
		return fmt.Sprintf("data(%d)", int(p.Symbol))
	case Ack:
		if p.Tag != 0 {
			return fmt.Sprintf("ack(tag=%d)", p.Tag)
		}
		return "ack"
	default:
		return fmt.Sprintf("packet(%v)", p.Kind)
	}
}

// Action kind names used across the repository. Every action in the RSTP
// composition is one of these kinds (plus protocol-internal actions, which
// use their own names such as "wait_t" and "idle_r").
const (
	KindSend  = "send"
	KindRecv  = "recv"
	KindWrite = "write"
)

// Send is the action send(p): an output of the sending process and an input
// of the channel.
//
// Payload is opaque extension data the serving layer copies into the
// outgoing Frame.Payload (and back out on Recv) — the rateless subsystem
// rides its coded-symbol records on it. It is a string rather than a
// []byte so actions stay comparable (the channel model pairs sends with
// recvs by value); the RSTP protocols leave it empty.
type Send struct {
	Dir     Dir
	P       Packet
	Payload string
}

// Kind returns "send".
func (Send) Kind() string { return KindSend }

// String renders the action, e.g. "send[t->r](data(3))".
func (s Send) String() string { return fmt.Sprintf("send[%v](%v)", s.Dir, s.P) }

// Recv is the action recv(p): an output of the channel and an input of the
// destination process. Payload mirrors Send.Payload (see there).
type Recv struct {
	Dir     Dir
	P       Packet
	Payload string
}

// Kind returns "recv".
func (Recv) Kind() string { return KindRecv }

// String renders the action, e.g. "recv[t->r](data(3))".
func (r Recv) String() string { return fmt.Sprintf("recv[%v](%v)", r.Dir, r.P) }

// Write is the action write(m): the receiver appending message m to its
// output tape Y.
type Write struct {
	M Bit
}

// Kind returns "write".
func (Write) Kind() string { return KindWrite }

// String renders the action, e.g. "write(1)".
func (w Write) String() string { return fmt.Sprintf("write(%v)", w.M) }

// Internal is a protocol-internal action such as the paper's wait_t or
// idle_r. Name doubles as the action kind.
type Internal struct {
	Name string
}

// Kind returns the internal action's name.
func (i Internal) Kind() string { return i.Name }

// String renders the internal action name.
func (i Internal) String() string { return i.Name }

// BitsToString renders a bit sequence as a compact 0/1 string.
func BitsToString(bits []Bit) string {
	buf := make([]byte, len(bits))
	for i, b := range bits {
		buf[i] = '0' + byte(b)
	}
	return string(buf)
}

// ParseBits parses a 0/1 string into a bit sequence.
func ParseBits(s string) ([]Bit, error) {
	bits := make([]Bit, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			bits[i] = Zero
		case '1':
			bits[i] = One
		default:
			return nil, fmt.Errorf("wire: invalid bit character %q at index %d", s[i], i)
		}
	}
	return bits, nil
}

// RandomBits returns n bits drawn from the given step function; the caller
// supplies the randomness source as a func returning uniformly random
// uint64s (typically rand.Uint64), keeping this package free of global
// random state.
func RandomBits(n int, next func() uint64) []Bit {
	bits := make([]Bit, n)
	var (
		word uint64
		left int
	)
	for i := range bits {
		if left == 0 {
			word = next()
			left = 64
		}
		bits[i] = Bit(word & 1)
		word >>= 1
		left--
	}
	return bits
}
