package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("rstp_sends_total", "sends").Add(11)
	r.Histogram("rstp_margin_ticks", "deadline margin", MarginBuckets(4)).Observe(-2)
	r.Live("sessions", func() any { return []int{1, 2, 3} })
	r.Tracer().Enable(8, 8)
	r.Tracer().Record(3, 42, EvShed, 0)
	return r
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestHandlerMetricsText(t *testing.T) {
	h := testRegistry().Handler()
	code, body := get(t, h, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(body, "rstp_sends_total 11") {
		t.Errorf("missing counter:\n%s", body)
	}
	if !strings.Contains(body, `rstp_margin_ticks_bucket{le="-2"} 1`) {
		t.Errorf("missing negative margin bucket:\n%s", body)
	}
}

func TestHandlerMetricsJSON(t *testing.T) {
	h := testRegistry().Handler()
	code, body := get(t, h, "/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if snap.Counters["rstp_sends_total"] != 11 {
		t.Errorf("snapshot counters = %+v", snap.Counters)
	}
	if snap.Live == nil {
		t.Errorf("live section missing:\n%s", body)
	}
}

func TestHandlerTrace(t *testing.T) {
	h := testRegistry().Handler()
	code, body := get(t, h, "/trace")
	if code != 200 || !strings.Contains(body, `"shed"`) {
		t.Fatalf("/trace = %d:\n%s", code, body)
	}
	code, body = get(t, h, "/trace?session=42")
	if code != 200 || !strings.Contains(body, `"shed"`) {
		t.Fatalf("/trace?session=42 = %d:\n%s", code, body)
	}
	code, _ = get(t, h, "/trace?session=not-a-number")
	if code != http.StatusBadRequest {
		t.Errorf("bad session id should 400, got %d", code)
	}
}

func TestHandlerPprofWired(t *testing.T) {
	h := testRegistry().Handler()
	code, body := get(t, h, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%.200s", code, body)
	}
}

func TestServeOverRealSocket(t *testing.T) {
	srv, err := testRegistry().Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "rstp_sends_total 11") {
		t.Errorf("scrape over the socket lost metrics:\n%s", raw)
	}
}
