package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram over int64 samples (tick units
// throughout the serving stack). Buckets are cumulative at export time —
// the Prometheus `le` convention — but stored as disjoint atomic cells so
// Observe is wait-free and allocation-free.
type Histogram struct {
	bounds  []int64        // ascending upper bounds; an implicit +Inf follows
	buckets []atomic.Int64 // len(bounds)+1 disjoint cells
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average sample, 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// HistogramBucket is one cumulative bucket of a snapshot.
type HistogramBucket struct {
	// LE is the bucket's inclusive upper bound; the final bucket's bound
	// is +Inf and is rendered as such.
	LE int64 `json:"le"`
	// Inf marks the +Inf bucket (LE is meaningless there).
	Inf bool `json:"inf,omitempty"`
	// Count is the cumulative sample count at or below LE.
	Count int64 `json:"count"`
}

// snapshotBuckets renders the cumulative bucket view.
func (h *Histogram) snapshotBuckets() []HistogramBucket {
	out := make([]HistogramBucket, 0, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		b := HistogramBucket{Count: cum}
		if i < len(h.bounds) {
			b.LE = h.bounds[i]
		} else {
			b.Inf = true
		}
		out = append(out, b)
	}
	return out
}

// Snapshot captures the histogram's cumulative buckets, sum and count at
// one instant — the same view the exporters render, exported so consumers
// (e.g. the control plane) can window two snapshots with DeltaSnapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: h.snapshotBuckets(),
		Sum:     h.Sum(),
		Count:   h.Count(),
		Mean:    h.Mean(),
	}
	s.P50 = BucketQuantile(s, 0.50)
	s.P99 = BucketQuantile(s, 0.99)
	return s
}

// DeltaSnapshot subtracts an earlier snapshot of the same histogram from
// a later one, yielding the distribution of only the samples observed in
// between — the windowed view a control loop needs, since a lifetime-
// cumulative histogram responds ever more sluggishly as it fills. The
// snapshots must come from one histogram (same bucket layout); prev may
// be the zero value (an empty window start). Counts are clamped at zero
// so a racy read pair degrades to an empty window, never a negative one.
func DeltaSnapshot(prev, cur HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Buckets: make([]HistogramBucket, len(cur.Buckets)),
		Sum:     cur.Sum - prev.Sum,
		Count:   cur.Count - prev.Count,
	}
	if d.Count < 0 {
		d.Count = 0
	}
	for i, b := range cur.Buckets {
		if i < len(prev.Buckets) {
			b.Count -= prev.Buckets[i].Count
		}
		if b.Count < 0 {
			b.Count = 0
		}
		d.Buckets[i] = b
	}
	if d.Count > 0 {
		d.Mean = float64(d.Sum) / float64(d.Count)
	}
	d.P50 = BucketQuantile(d, 0.50)
	d.P99 = BucketQuantile(d, 0.99)
	return d
}

// Quantile returns the smallest finite bucket bound covering fraction q
// of the histogram's observations, or 0 when the histogram is empty or
// the quantile lands in the +Inf bucket. It is a bucket-resolution upper
// bound, not an interpolated estimate — good enough for dashboards, and
// honest about what a fixed-bucket histogram actually knows.
func (h *Histogram) Quantile(q float64) int64 {
	return BucketQuantile(HistogramSnapshot{Buckets: h.snapshotBuckets(), Count: h.Count()}, q)
}

// BucketQuantile is Quantile over an exported snapshot, for consumers
// that only hold the JSON view (bench summaries, dashboards).
func BucketQuantile(h HistogramSnapshot, q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	need := int64(math.Ceil(q * float64(h.Count)))
	for _, b := range h.Buckets {
		if !b.Inf && b.Count >= need {
			return b.LE
		}
	}
	return 0
}

// TickBuckets returns the default latency bucket bounds in ticks:
// exponential 1, 2, 4, ... up to 2^(n-1). Channel latencies live in
// [0, d] and effort per message in a small multiple of d, so a dozen
// doublings cover every regime the serving stack runs at.
func TickBuckets(n int) []int64 {
	if n <= 0 {
		n = 12
	}
	out := make([]int64, n)
	v := int64(1)
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// MarginBuckets returns deadline-margin bucket bounds in ticks: negative
// doublings (missed deadlines) through zero into positive doublings
// (slack). A sample is "margin = deadline - observed", so negative
// buckets count deadline misses by severity.
func MarginBuckets(n int) []int64 {
	if n <= 0 {
		n = 6
	}
	out := make([]int64, 0, 2*n+1)
	for i := n - 1; i >= 0; i-- {
		out = append(out, -(int64(1) << i))
	}
	out = append(out, 0)
	for i := 0; i < n; i++ {
		out = append(out, int64(1)<<i)
	}
	return out
}
