// Package obs is the serving stack's observability subsystem: a
// dependency-free, lock-light registry of atomic counters, gauges and
// pre-bucketed histograms, a bounded per-session ring-buffer tracer for
// protocol transitions, and exporters (Prometheus text exposition, JSON
// snapshot, an opt-in HTTP endpoint with pprof wiring).
//
// Design constraints, in priority order:
//
//  1. Near-zero hot-path overhead. Incrementing a Counter, moving a
//     Gauge or observing into a Histogram is a handful of atomic ops and
//     never allocates; recording a trace event with tracing disabled is
//     one atomic load. BenchmarkObsHotPath pins 0 allocs/op — every
//     later performance PR measures through this seam, so the seam
//     itself must be invisible.
//  2. Scrape-time evaluation for everything that already has a home.
//     The transports and the session mux keep their own atomic counters;
//     the registry reads them through CounterFunc/GaugeFunc closures at
//     export time instead of double-counting on the hot path.
//  3. No dependencies. The exposition format is the stable subset of the
//     Prometheus text format, written by hand; the HTTP endpoint uses
//     only net/http and net/http/pprof.
//
// Metric names follow Prometheus conventions: `rstp_<subsystem>_<what>`
// with `_total` suffixes on monotonic counters and explicit units
// (`_ticks`) on histograms — the model tick is the unit every bound in
// the paper is stated in, so histograms bucket ticks, not wall time.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (callers keep deltas >= 0).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic float64 gauge (stored as IEEE-754 bits), for
// values like live effort in ticks per message.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates the registry's entries for export.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindFloat
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
	kindFloatFunc
)

// entry is one registered metric.
type entry struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	float   *FloatGauge
	hist    *Histogram
	intFn   func() int64
	floatFn func() float64
}

// Registry holds every metric of one serving process. Metric handles are
// resolved once at wiring time and then touched lock-free; the registry's
// own mutex guards only registration and export.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	live    map[string]func() any
	tracer  *Tracer
}

// NewRegistry returns an empty registry with a disabled tracer.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		live:    make(map[string]func() any),
		tracer:  newTracer(),
	}
}

// Tracer returns the registry's event tracer (disabled until
// Tracer.Enable is called).
func (r *Registry) Tracer() *Tracer { return r.tracer }

// register inserts or returns the existing entry under name, panicking on
// a kind clash — two subsystems claiming one name with different types is
// a wiring bug worth failing loudly on.
func (r *Registry) register(name, help string, kind metricKind, build func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return e
	}
	e := build()
	e.name, e.help, e.kind = name, help, kind
	r.entries[name] = e
	return e
}

// Counter returns the counter registered under name, creating it on
// first use. Repeated calls with the same name share one counter.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.register(name, help, kindCounter, func() *entry { return &entry{counter: &Counter{}} })
	return e.counter
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.register(name, help, kindGauge, func() *entry { return &entry{gauge: &Gauge{}} })
	return e.gauge
}

// Float returns the float gauge registered under name, creating it on
// first use.
func (r *Registry) Float(name, help string) *FloatGauge {
	e := r.register(name, help, kindFloat, func() *entry { return &entry{float: &FloatGauge{}} })
	return e.float
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (see TickBuckets and
// MarginBuckets for the serving defaults).
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	e := r.register(name, help, kindHistogram, func() *entry { return &entry{hist: newHistogram(bounds)} })
	return e.hist
}

// CounterFunc registers a scrape-time counter read from fn — the zero-
// overhead path for subsystems that already keep an atomic counter of
// their own. Re-registering a name replaces the function (a reconnected
// transport re-instruments itself).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.registerFunc(name, help, kindCounterFunc, fn, nil)
}

// GaugeFunc registers a scrape-time gauge read from fn.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.registerFunc(name, help, kindGaugeFunc, fn, nil)
}

// FloatFunc registers a scrape-time float gauge read from fn.
func (r *Registry) FloatFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, kindFloatFunc, nil, fn)
}

func (r *Registry) registerFunc(name, help string, kind metricKind, intFn func() int64, floatFn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok && e.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
	}
	r.entries[name] = &entry{name: name, help: help, kind: kind, intFn: intFn, floatFn: floatFn}
}

// Live registers a scrape-time hook whose value is embedded verbatim in
// the JSON snapshot's "live" section — the per-session introspection
// channel (e.g. the session mux's live effort-gap table). Live hooks do
// not appear in the Prometheus exposition: their cardinality is
// per-session, which a time-series store should not ingest.
func (r *Registry) Live(name string, fn func() any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.live[name] = fn
}

// sorted returns the entries in name order, for deterministic export.
func (r *Registry) sorted() []*entry {
	r.mu.RLock()
	out := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
