package obs

import "testing"

func TestTracerDisabledRecordsNothing(t *testing.T) {
	tr := newTracer()
	tr.Record(1, 1, EvSend, 1)
	if got := tr.Events(1); len(got) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(got))
	}
	if tr.Enabled() {
		t.Fatalf("tracer must start disabled")
	}
}

func TestTracerRingBounds(t *testing.T) {
	tr := newTracer()
	tr.Enable(4, 2)
	for i := int64(0); i < 10; i++ {
		tr.Record(i, 1, EvSend, i)
	}
	got := tr.Events(1)
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want the capped 4", len(got))
	}
	// The most recent 4 survive, oldest first.
	for i, e := range got {
		if want := int64(6 + i); e.Arg != want {
			t.Errorf("event[%d].Arg = %d, want %d", i, e.Arg, want)
		}
	}
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Total != 10 {
		t.Errorf("snapshot total = %+v, want 10 recorded for session 1", snap)
	}
}

func TestTracerSessionCap(t *testing.T) {
	tr := newTracer()
	tr.Enable(4, 2)
	tr.Record(1, 1, EvSend, 0)
	tr.Record(1, 2, EvSend, 0)
	tr.Record(1, 3, EvSend, 0) // over the 2-session cap: dropped
	if got := tr.Dropped(); got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	if got := len(tr.Snapshot()); got != 2 {
		t.Errorf("sessions tracked = %d, want 2", got)
	}
}

func TestEventKindNames(t *testing.T) {
	kinds := []EventKind{
		EvSend, EvRecv, EvWrite, EvRetransmit, EvResync, EvEvict, EvShed,
		EvWedge, EvRefuse, EvLate, EvBreakerOpen, EvBreakerHalfOpen, EvBreakerClose,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		name := k.String()
		if name == "unknown" || name == "" {
			t.Errorf("kind %d has no name", k)
		}
		if seen[name] {
			t.Errorf("kind name %q is duplicated", name)
		}
		seen[name] = true
	}
	if EventKind(200).String() != "unknown" {
		t.Errorf("out-of-range kind must render as unknown")
	}
}

func TestTracerEventsOrderBeforeWrap(t *testing.T) {
	tr := newTracer()
	tr.Enable(8, 0)
	tr.Record(5, 7, EvWrite, 1)
	tr.Record(6, 7, EvWrite, 2)
	got := tr.Events(7)
	if len(got) != 2 || got[0].Arg != 1 || got[1].Arg != 2 {
		t.Fatalf("events = %+v", got)
	}
	if got[0].KindName != "write" {
		t.Errorf("KindName = %q, want write", got[0].KindName)
	}
}
