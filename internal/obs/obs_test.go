package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeFloat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rstp_test_total", "a counter")
	g := r.Gauge("rstp_test_active", "a gauge")
	f := r.Float("rstp_test_ratio", "a float gauge")

	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	f.Set(1.5)

	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	if got := f.Value(); got != 1.5 {
		t.Errorf("float = %v, want 1.5", got)
	}
	// Same name returns the same metric.
	if r.Counter("rstp_test_total", "again") != c {
		t.Errorf("re-registration must return the shared counter")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("rstp_clash", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("registering one name as two kinds must panic")
		}
	}()
	r.Gauge("rstp_clash", "")
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rstp_lat_ticks", "latency", []int64{1, 2, 4})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	if h.Sum() != 115 {
		t.Fatalf("sum = %d, want 115", h.Sum())
	}
	b := h.snapshotBuckets()
	// cumulative: le=1 -> {0,1}, le=2 -> +{2}, le=4 -> +{3,4}, +Inf -> +{5,100}
	wantCum := []int64{2, 3, 5, 7}
	for i, want := range wantCum {
		if b[i].Count != want {
			t.Errorf("bucket[%d] = %d, want %d", i, b[i].Count, want)
		}
	}
	if !b[len(b)-1].Inf {
		t.Errorf("last bucket must be +Inf")
	}
}

func TestBucketHelpers(t *testing.T) {
	tb := TickBuckets(4)
	if len(tb) != 4 || tb[0] != 1 || tb[3] != 8 {
		t.Errorf("TickBuckets(4) = %v", tb)
	}
	mb := MarginBuckets(3)
	want := []int64{-4, -2, -1, 0, 1, 2, 4}
	if len(mb) != len(want) {
		t.Fatalf("MarginBuckets(3) = %v", mb)
	}
	for i := range want {
		if mb[i] != want[i] {
			t.Fatalf("MarginBuckets(3) = %v, want %v", mb, want)
		}
	}
}

func TestBucketQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rstp_q_ticks", "", []int64{1, 2, 4, 8})
	// 100 samples: 50 at 1, 40 at 3 (le=4), 9 at 8, 1 at 100 (+Inf).
	for i := 0; i < 50; i++ {
		h.Observe(1)
	}
	for i := 0; i < 40; i++ {
		h.Observe(3)
	}
	for i := 0; i < 9; i++ {
		h.Observe(8)
	}
	h.Observe(100)
	if got := h.Quantile(0.50); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := h.Quantile(0.90); got != 4 {
		t.Errorf("p90 = %d, want 4", got)
	}
	if got := h.Quantile(0.99); got != 8 {
		t.Errorf("p99 = %d, want 8", got)
	}
	// The top percentile lands in +Inf: reported as 0, not a made-up bound.
	if got := h.Quantile(1.0); got != 0 {
		t.Errorf("p100 = %d, want 0 (+Inf bucket)", got)
	}
	// Empty histogram.
	e := r.Histogram("rstp_q_empty_ticks", "", TickBuckets(3))
	if got := e.Quantile(0.99); got != 0 {
		t.Errorf("empty p99 = %d, want 0", got)
	}
	// Snapshot view agrees with the live histogram.
	hs := r.Snapshot().Histograms["rstp_q_ticks"]
	if hs.P50 != 1 || hs.P99 != 8 {
		t.Errorf("snapshot P50/P99 = %d/%d, want 1/8", hs.P50, hs.P99)
	}
	if got := BucketQuantile(hs, 0.90); got != 4 {
		t.Errorf("BucketQuantile(snapshot, 0.90) = %d, want 4", got)
	}
}

// TestQuantileGaugesExported checks both exporters carry the
// precomputed _p50/_p99 series, so dashboards and JSON consumers agree.
func TestQuantileGaugesExported(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rstp_qx_ticks", "", []int64{1, 2, 4})
	for i := 0; i < 9; i++ {
		h.Observe(1)
	}
	h.Observe(4)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE rstp_qx_ticks_p50 gauge",
		"rstp_qx_ticks_p50 1",
		"# TYPE rstp_qx_ticks_p99 gauge",
		"rstp_qx_ticks_p99 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if hs := back.Histograms["rstp_qx_ticks"]; hs.P50 != 1 || hs.P99 != 4 {
		t.Errorf("JSON snapshot P50/P99 = %d/%d, want 1/4", hs.P50, hs.P99)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("rstp_sends_total", "frames sent").Add(3)
	r.Gauge("rstp_active", "live sessions").Set(2)
	r.Float("rstp_effort", "ticks per message").Set(12.5)
	r.CounterFunc("rstp_fn_total", "scrape-time counter", func() int64 { return 9 })
	r.FloatFunc("rstp_fn_ratio", "scrape-time float", func() float64 { return 0.25 })
	r.Histogram("rstp_lat_ticks", "latency", []int64{1, 4}).Observe(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE rstp_sends_total counter",
		"rstp_sends_total 3",
		"# TYPE rstp_active gauge",
		"rstp_active 2",
		"rstp_effort 12.5",
		"rstp_fn_total 9",
		"rstp_fn_ratio 0.25",
		"# TYPE rstp_lat_ticks histogram",
		`rstp_lat_ticks_bucket{le="1"} 0`,
		`rstp_lat_ticks_bucket{le="4"} 1`,
		`rstp_lat_ticks_bucket{le="+Inf"} 1`,
		"rstp_lat_ticks_sum 2",
		"rstp_lat_ticks_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two writes render identically.
	var sb2 strings.Builder
	r.WritePrometheus(&sb2)
	if sb2.String() != out {
		t.Errorf("exposition is not deterministic")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rstp_a_total", "").Add(1)
	r.Gauge("rstp_b", "").Set(-4)
	r.Histogram("rstp_h_ticks", "", TickBuckets(3)).Observe(2)
	r.Live("sessions", func() any {
		return []map[string]any{{"id": 1, "effort": 12.0}}
	})

	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot does not round-trip: %v\n%s", err, raw)
	}
	if back.Counters["rstp_a_total"] != 1 || back.Gauges["rstp_b"] != -4 {
		t.Errorf("snapshot lost values: %+v", back)
	}
	if back.Histograms["rstp_h_ticks"].Count != 1 {
		t.Errorf("snapshot lost histogram: %+v", back)
	}
	if back.Live == nil {
		t.Errorf("snapshot lost live section: %s", raw)
	}
}

func TestFuncReRegistrationReplaces(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("rstp_g", "", func() int64 { return 1 })
	r.GaugeFunc("rstp_g", "", func() int64 { return 2 })
	if got := r.Snapshot().Gauges["rstp_g"]; got != 2 {
		t.Errorf("gauge func = %d, want the replacement's 2", got)
	}
}

func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rstp_c_total", "")
	h := r.Histogram("rstp_h_ticks", "", TickBuckets(8))
	tr := r.Tracer()
	tr.Enable(16, 64)

	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i % 50))
				tr.Record(int64(i), uint32(w), EvSend, int64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent scrapes must never race the writers
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			r.WritePrometheus(&sb)
			r.Snapshot()
			tr.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}
