package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4 — the stable subset every scraper
// accepts): # HELP / # TYPE headers, cumulative histogram buckets with
// `le` labels, counters with their monotonic semantics. Funcs are
// evaluated at write time.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.sorted() {
		if e.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", e.name, sanitizeHelp(e.help))
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.counter.Value())
		case kindCounterFunc:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.intFn())
		case kindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.intFn())
		case kindFloat:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", e.name, e.name, formatFloat(e.float.Value()))
		case kindFloatFunc:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", e.name, e.name, formatFloat(e.floatFn()))
		case kindHistogram:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", e.name)
			for _, b := range e.hist.snapshotBuckets() {
				le := "+Inf"
				if !b.Inf {
					le = strconv.FormatInt(b.LE, 10)
				}
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", e.name, le, b.Count)
			}
			fmt.Fprintf(bw, "%s_sum %d\n", e.name, e.hist.Sum())
			fmt.Fprintf(bw, "%s_count %d\n", e.name, e.hist.Count())
			// Precomputed quantile gauges, so dashboards stop recomputing
			// them scrape-side. Separate series (not labels) because they
			// are gauges derived from the histogram, not members of it.
			fmt.Fprintf(bw, "# TYPE %s_p50 gauge\n%s_p50 %d\n", e.name, e.name, e.hist.Quantile(0.50))
			fmt.Fprintf(bw, "# TYPE %s_p99 gauge\n%s_p99 %d\n", e.name, e.name, e.hist.Quantile(0.99))
		}
	}
	return bw.Flush()
}

// sanitizeHelp keeps HELP lines single-line.
func sanitizeHelp(s string) string {
	return strings.NewReplacer("\n", " ", "\\", `\\`).Replace(s)
}

// formatFloat renders a float the way Prometheus clients do.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramSnapshot is one histogram in a JSON snapshot.
type HistogramSnapshot struct {
	Buckets []HistogramBucket `json:"buckets"`
	Sum     int64             `json:"sum"`
	Count   int64             `json:"count"`
	Mean    float64           `json:"mean"`
	// P50 and P99 are bucket-resolution quantile bounds (BucketQuantile),
	// precomputed so JSON consumers match the Prometheus _p50/_p99 series.
	P50 int64 `json:"p50"`
	P99 int64 `json:"p99"`
}

// Snapshot is the JSON view of a registry at one instant: flat metric
// maps plus the live per-session introspection section.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Floats     map[string]float64           `json:"floats"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Live holds the per-session hooks (session tables, effort gaps) —
	// data too high-cardinality for the Prometheus exposition.
	Live map[string]any `json:"live,omitempty"`
}

// Snapshot evaluates every metric and live hook now.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Floats:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, e := range r.sorted() {
		switch e.kind {
		case kindCounter:
			s.Counters[e.name] = e.counter.Value()
		case kindCounterFunc:
			s.Counters[e.name] = e.intFn()
		case kindGauge:
			s.Gauges[e.name] = e.gauge.Value()
		case kindGaugeFunc:
			s.Gauges[e.name] = e.intFn()
		case kindFloat:
			s.Floats[e.name] = e.float.Value()
		case kindFloatFunc:
			s.Floats[e.name] = e.floatFn()
		case kindHistogram:
			hs := HistogramSnapshot{
				Buckets: e.hist.snapshotBuckets(),
				Sum:     e.hist.Sum(),
				Count:   e.hist.Count(),
				Mean:    e.hist.Mean(),
			}
			hs.P50 = BucketQuantile(hs, 0.50)
			hs.P99 = BucketQuantile(hs, 0.99)
			s.Histograms[e.name] = hs
		}
	}
	r.mu.RLock()
	hooks := make(map[string]func() any, len(r.live))
	for name, fn := range r.live {
		hooks[name] = fn
	}
	r.mu.RUnlock()
	if len(hooks) > 0 {
		s.Live = make(map[string]any, len(hooks))
		for name, fn := range hooks {
			s.Live[name] = fn()
		}
	}
	return s
}
