// The obs benchmarks live in an external test package so the guard can
// stamp its artifact with benchmatrix.Meta — benchmatrix imports obs,
// so an in-package test importing it back would be an import cycle.
package obs_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/benchmatrix"
	"repro/internal/obs"
)

// BenchmarkObsHotPath is the CI allocation guard: one iteration is the
// full per-event instrumentation cost of the serving hot path — a
// counter bump, a gauge move, a histogram observation, and a trace
// Record with tracing disabled. It must run at 0 allocs/op; a regression
// here taxes every send of every session.
func BenchmarkObsHotPath(b *testing.B) {
	r := obs.NewRegistry()
	c := r.Counter("rstp_bench_sends_total", "")
	g := r.Gauge("rstp_bench_active", "")
	h := r.Histogram("rstp_bench_lat_ticks", "", obs.TickBuckets(12))
	tr := r.Tracer() // disabled: the default serving configuration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i))
		h.Observe(int64(i & 1023))
		tr.Record(int64(i), uint32(i), obs.EvSend, int64(i))
	}
}

// TestObsHotPathNoAlloc enforces the benchmark's contract in the regular
// test suite, so `go test ./internal/obs` fails fast on an allocating
// regression without anyone reading benchmark output.
func TestObsHotPathNoAlloc(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("rstp_guard_total", "")
	g := r.Gauge("rstp_guard_active", "")
	h := r.Histogram("rstp_guard_lat_ticks", "", obs.TickBuckets(12))
	tr := r.Tracer()
	i := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(i)
		h.Observe(i & 1023)
		tr.Record(i, uint32(i), obs.EvSend, i)
		i++
	})
	if allocs != 0 {
		t.Fatalf("disabled-tracing hot path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestObsBenchGuard runs the hot-path benchmark programmatically, fails
// on any allocation, and — when BENCH_OBS_OUT names a file — writes the
// BENCH_obs.json artifact CI archives alongside BENCH_serve.json.
func TestObsBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard runs in the full suite and the dedicated CI step")
	}
	res := testing.Benchmark(BenchmarkObsHotPath)
	if res.N == 0 {
		t.Skip("benchmarks disabled in this run")
	}
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("BenchmarkObsHotPath allocates %d allocs/op, want 0", allocs)
	}
	out := os.Getenv("BENCH_OBS_OUT")
	if out == "" {
		return
	}
	payload := map[string]any{
		"schema":        "rstp-bench-obs/v1",
		"meta":          benchmatrix.NewMeta("rstp-bench-obs/v1", time.Now().UTC().Format(time.RFC3339)),
		"benchmark":     "BenchmarkObsHotPath",
		"iterations":    res.N,
		"ns_per_op":     res.NsPerOp(),
		"allocs_per_op": res.AllocsPerOp(),
		"bytes_per_op":  res.AllocedBytesPerOp(),
	}
	raw, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	t.Logf("wrote %s: %s", out, raw)
}
