package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler returns the registry's introspection endpoint:
//
//	GET /metrics       Prometheus text exposition
//	GET /metrics.json  JSON snapshot (counters, gauges, histograms, live)
//	GET /trace         recorded per-session trace rings (JSON)
//	GET /trace?session=N  one session's ring
//	GET /control       the adaptive control plane's live state (JSON;
//	                   404 unless a controller registered the "control"
//	                   live hook)
//	/debug/pprof/...   the standard pprof handlers
//
// The handler is safe for concurrent use with live traffic — every
// export path reads through atomics or short registry locks.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if q := req.URL.Query().Get("session"); q != "" {
			id, err := strconv.ParseUint(q, 10, 32)
			if err != nil {
				http.Error(w, "bad session id", http.StatusBadRequest)
				return
			}
			enc.Encode(r.Tracer().Events(uint32(id)))
			return
		}
		enc.Encode(r.Tracer().Snapshot())
	})
	mux.HandleFunc("/control", func(w http.ResponseWriter, _ *http.Request) {
		r.mu.RLock()
		fn := r.live["control"]
		r.mu.RUnlock()
		if fn == nil {
			http.Error(w, "no control plane registered", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fn())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0" listens).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr and serves the registry's Handler on it in a
// background goroutine. The endpoint is opt-in: nothing listens unless a
// caller asks (rstpserve's -metrics-addr flag is the canonical caller).
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: r.Handler()}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}
