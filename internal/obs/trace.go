package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// EventKind names one protocol transition in the trace ring. The set
// covers the serving stack's lifecycle: frame movement (send/recv/write),
// the resilience layer's defenses (retransmit, breaker transitions), and
// the mux's session verdicts (evict/shed/wedge/resync/refuse/late).
type EventKind uint8

const (
	// EvSend is a transport send committed by an endpoint (arg: packet seq).
	EvSend EventKind = iota + 1
	// EvRecv is a frame delivered into an endpoint (arg: packet seq).
	EvRecv
	// EvWrite is one message written to the output tape (arg: tape length).
	EvWrite
	// EvRetransmit is a reliability-layer retransmission (arg: attempt or seq).
	EvRetransmit
	// EvResync is a stabilizing-layer resynchronization (arg: epoch if known).
	EvResync
	// EvEvict is an idle eviction of a session.
	EvEvict
	// EvShed is an overload-policy force-retire.
	EvShed
	// EvWedge is a watchdog force-retire (no output growth in the window).
	EvWedge
	// EvRefuse is a new session refused at the MaxSessions cap.
	EvRefuse
	// EvLate is an in-flight frame of a finished session dropped at the
	// tombstone.
	EvLate
	// EvBreakerOpen, EvBreakerHalfOpen and EvBreakerClose are circuit
	// breaker transitions of the resilient transport (session 0: the
	// breaker is per-transport, not per-session).
	EvBreakerOpen
	EvBreakerHalfOpen
	EvBreakerClose
)

var eventKindNames = [...]string{
	EvSend:            "send",
	EvRecv:            "recv",
	EvWrite:           "write",
	EvRetransmit:      "retransmit",
	EvResync:          "resync",
	EvEvict:           "evict",
	EvShed:            "shed",
	EvWedge:           "wedge",
	EvRefuse:          "refuse",
	EvLate:            "late",
	EvBreakerOpen:     "breaker-open",
	EvBreakerHalfOpen: "breaker-half-open",
	EvBreakerClose:    "breaker-close",
}

// String names the kind for exports.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return "unknown"
}

// TraceEvent is one recorded protocol transition. All fields are scalar
// so recording never allocates per event.
type TraceEvent struct {
	// Tick is the shared clock's tick at the event.
	Tick int64 `json:"tick"`
	// Session is the session ID (0 for transport-scoped events).
	Session uint32 `json:"session"`
	// Kind is the transition.
	Kind EventKind `json:"-"`
	// KindName renders Kind in JSON exports.
	KindName string `json:"kind"`
	// Arg is the kind-specific detail (packet seq, tape length, epoch).
	Arg int64 `json:"arg"`
}

// ring is one session's bounded event buffer: the most recent cap events
// are kept, older ones overwritten.
type ring struct {
	buf     []TraceEvent
	next    int
	wrapped bool
	total   int64 // events ever recorded for the session
}

func (rg *ring) push(e TraceEvent) {
	rg.buf[rg.next] = e
	rg.next++
	rg.total++
	if rg.next == len(rg.buf) {
		rg.next = 0
		rg.wrapped = true
	}
}

// events returns the ring's contents in record order.
func (rg *ring) events() []TraceEvent {
	if !rg.wrapped {
		return append([]TraceEvent(nil), rg.buf[:rg.next]...)
	}
	out := make([]TraceEvent, 0, len(rg.buf))
	out = append(out, rg.buf[rg.next:]...)
	out = append(out, rg.buf[:rg.next]...)
	return out
}

// Tracer records protocol transitions into bounded per-session rings.
// Disabled (the default) it costs one atomic load per call and never
// allocates; enabled it takes one mutex per event — tracing is an
// explicitly opt-in debugging channel, not a hot-path metric.
type Tracer struct {
	enabled atomic.Bool

	mu          sync.Mutex
	perSession  int
	maxSessions int
	rings       map[uint32]*ring
	dropped     int64 // events dropped at the session-count cap
}

// Default tracer capacity: events kept per session, and distinct
// sessions tracked before further sessions' events are dropped (counted,
// never recorded — the bound is what keeps a million-session process
// from trading its heap for a trace).
const (
	DefaultTraceEvents   = 256
	DefaultTraceSessions = 4096
)

func newTracer() *Tracer {
	return &Tracer{
		perSession:  DefaultTraceEvents,
		maxSessions: DefaultTraceSessions,
		rings:       make(map[uint32]*ring),
	}
}

// Enable turns tracing on with the given per-session ring capacity and
// session cap (non-positive values take the defaults). It may be called
// before or during traffic.
func (t *Tracer) Enable(perSession, maxSessions int) {
	t.mu.Lock()
	if perSession > 0 {
		t.perSession = perSession
	}
	if maxSessions > 0 {
		t.maxSessions = maxSessions
	}
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable turns tracing off; recorded rings are kept for inspection.
func (t *Tracer) Disable() { t.enabled.Store(false) }

// Enabled reports whether Record currently records.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Record appends one event to the session's ring. With tracing disabled
// this is a single atomic load — the callers in the session and
// transport hot paths rely on that.
func (t *Tracer) Record(tick int64, session uint32, kind EventKind, arg int64) {
	if !t.enabled.Load() {
		return
	}
	t.mu.Lock()
	rg := t.rings[session]
	if rg == nil {
		if len(t.rings) >= t.maxSessions {
			t.dropped++
			t.mu.Unlock()
			return
		}
		rg = &ring{buf: make([]TraceEvent, t.perSession)}
		t.rings[session] = rg
	}
	rg.push(TraceEvent{Tick: tick, Session: session, Kind: kind, Arg: arg})
	t.mu.Unlock()
}

// Events returns the recorded ring for one session, oldest first, with
// KindName filled for rendering.
func (t *Tracer) Events(session uint32) []TraceEvent {
	t.mu.Lock()
	rg := t.rings[session]
	var out []TraceEvent
	if rg != nil {
		out = rg.events()
	}
	t.mu.Unlock()
	for i := range out {
		out[i].KindName = out[i].Kind.String()
	}
	return out
}

// SessionTrace is one session's trace in a snapshot.
type SessionTrace struct {
	// Session is the session ID.
	Session uint32 `json:"session"`
	// Total counts events ever recorded (>= len(Events) once the ring
	// wraps).
	Total int64 `json:"total"`
	// Events is the ring's current contents, oldest first.
	Events []TraceEvent `json:"events"`
}

// Snapshot returns every session's ring, session IDs ascending.
func (t *Tracer) Snapshot() []SessionTrace {
	t.mu.Lock()
	out := make([]SessionTrace, 0, len(t.rings))
	for id, rg := range t.rings {
		out = append(out, SessionTrace{Session: id, Total: rg.total, Events: rg.events()})
	}
	t.mu.Unlock()
	for i := range out {
		for j := range out[i].Events {
			out[i].Events[j].KindName = out[i].Events[j].Kind.String()
		}
	}
	// Deterministic order for exports and tests.
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	return out
}

// Dropped counts events dropped because the session cap was reached.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
