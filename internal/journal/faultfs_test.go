package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestFaultFSDeterministic: two FaultFS with the same plan over the
// same operation sequence make identical decisions — the property every
// sweep's reproducibility rests on.
func TestFaultFSDeterministic(t *testing.T) {
	run := func() (faults int64, contents []byte) {
		dir := t.TempDir()
		ffs := NewFaultFS(DiskFS{NoSync: true}, Plan{Seed: 42, ShortWrite: 0.4, BitFlip: 0.2, CrashAtByte: NeverCrash})
		f, err := ffs.OpenAppend(filepath.Join(dir, "f"))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			f.Write([]byte("the quick brown fox"))
		}
		f.Close()
		data, err := os.ReadFile(filepath.Join(dir, "f"))
		if err != nil {
			t.Fatal(err)
		}
		return ffs.Faults(), data
	}
	f1, c1 := run()
	f2, c2 := run()
	if f1 != f2 || !bytes.Equal(c1, c2) {
		t.Fatalf("same plan diverged: %d/%d faults, %d/%d bytes", f1, f2, len(c1), len(c2))
	}
	if f1 == 0 {
		t.Fatal("plan injected nothing")
	}
}

// TestFaultFSCrashTearsWrite: the crash point persists exactly the
// prefix up to CrashAtByte and kills every later operation.
func TestFaultFSCrashTearsWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(DiskFS{NoSync: true}, Plan{CrashAtByte: 10})
	path := filepath.Join(dir, "f")
	f, err := ffs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("pre-crash write: %d, %v", n, err)
	}
	n, err := f.Write([]byte("abcdefgh")) // crosses byte 10: 2 bytes land
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write: err = %v, want ErrCrashed", err)
	}
	if n != 2 {
		t.Fatalf("crossing write persisted %d bytes, want 2", n)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() false after crash")
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if _, err := ffs.OpenRead(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: %v", err)
	}
	if err := ffs.Rename(path, path+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "12345678ab" {
		t.Fatalf("disk holds %q, want the exact 10-byte prefix", data)
	}
}

// TestFaultFSBitFlip: a flipped write reports success but the disk
// differs from the buffer in exactly one bit.
func TestFaultFSBitFlip(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(DiskFS{NoSync: true}, Plan{Seed: 7, BitFlip: 1.0, CrashAtByte: NeverCrash})
	path := filepath.Join(dir, "f")
	f, err := ffs.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("silent corruption test")
	if n, err := f.Write(buf); n != len(buf) || err != nil {
		t.Fatalf("flipped write must report success: %d, %v", n, err)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range buf {
		x := buf[i] ^ data[i]
		for x != 0 {
			diff++
			x &= x - 1
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits differ, want exactly 1", diff)
	}
}

// TestFaultFSShortWrite: a short write persists a strict prefix and
// returns ErrShortWrite with the persisted count.
func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(DiskFS{NoSync: true}, Plan{Seed: 5, ShortWrite: 1.0, CrashAtByte: NeverCrash})
	f, err := ffs.OpenAppend(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("will be cut short")
	n, werr := f.Write(buf)
	if !errors.Is(werr, ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", werr)
	}
	if n >= len(buf) || n < 0 {
		t.Fatalf("short write persisted %d of %d bytes — not a strict prefix", n, len(buf))
	}
	f.Close()
	data, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, buf[:n]) {
		t.Fatalf("disk holds %q, want the reported prefix %q", data, buf[:n])
	}
}

// TestFaultFSSyncErr: Sync fails with ErrSyncFailed when planned.
func TestFaultFSSyncErr(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(DiskFS{NoSync: true}, Plan{Seed: 1, SyncErr: 1.0, CrashAtByte: NeverCrash})
	f, err := ffs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, ErrSyncFailed) {
		t.Fatalf("Sync: %v, want ErrSyncFailed", err)
	}
	if ffs.Faults() != 1 {
		t.Fatalf("Faults = %d, want 1", ffs.Faults())
	}
}
