package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/rstp"
)

// The journal is only useful if the stabilized layer can hold it.
var _ rstp.StateStore = (*Store)(nil)

// testOpts opens stores on the real filesystem without O_SYNC: the
// tests' fault surface is FaultFS and hand-corrupted files, and paying
// a disk flush per append would dominate the suite's runtime.
func testOpts() Options { return Options{FS: DiskFS{NoSync: true}} }

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func journalBytes(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatalf("reading journal: %v", err)
	}
	return data
}

func TestJournalSaveLoadReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	s.Save("s1/t", []byte("alpha"))
	s.Save("s1/r", []byte("beta"))
	s.Save("s1/t", []byte("gamma")) // overwrite: latest must win
	if v, ok := s.Load("s1/t"); !ok || string(v) != "gamma" {
		t.Fatalf("Load(s1/t) = %q, %v; want gamma", v, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if v, ok := s2.Load("s1/t"); !ok || string(v) != "gamma" {
		t.Fatalf("after reopen Load(s1/t) = %q, %v; want gamma", v, ok)
	}
	if v, ok := s2.Load("s1/r"); !ok || string(v) != "beta" {
		t.Fatalf("after reopen Load(s1/r) = %q, %v; want beta", v, ok)
	}
	if _, ok := s2.Load("nope"); ok {
		t.Fatal("Load of unsaved key reported ok")
	}
	st := s2.Stats()
	if st.Replayed != 3 {
		t.Fatalf("Replayed = %d, want 3", st.Replayed)
	}
	if st.Keys != 2 {
		t.Fatalf("Keys = %d, want 2", st.Keys)
	}
	if st.Truncations != 0 {
		t.Fatalf("Truncations = %d on a clean journal, want 0", st.Truncations)
	}
}

func TestJournalEmptyValueAndBinaryData(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	blob := make([]byte, 1024)
	for i := range blob {
		blob[i] = byte(i * 31)
	}
	s.Save("empty", nil)
	s.Save("blob", blob)
	s.Close()

	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if v, ok := s2.Load("empty"); !ok || len(v) != 0 {
		t.Fatalf("Load(empty) = %v, %v; want empty value present", v, ok)
	}
	if v, ok := s2.Load("blob"); !ok || !bytes.Equal(v, blob) {
		t.Fatalf("binary blob did not round-trip")
	}
}

func TestJournalLoadReturnsCopy(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	defer s.Close()
	s.Save("k", []byte("abc"))
	v, _ := s.Load("k")
	v[0] = 'X'
	if w, _ := s.Load("k"); string(w) != "abc" {
		t.Fatalf("mutating a Load result changed the store: %q", w)
	}
}

// TestJournalTornTailTruncated cuts the journal mid-record and checks
// replay keeps the good prefix, drops the torn record, and shrinks the
// file so the damage cannot confuse a later open.
func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	s.Save("a", []byte("first"))
	goodLen := int64(len(journalBytes(t, dir)))
	s.Save("b", []byte("second"))
	s.Close()

	// Tear the second record: keep its header and half its payload.
	full := journalBytes(t, dir)
	torn := full[:goodLen+recHeader+3]
	if err := os.WriteFile(filepath.Join(dir, journalName), torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if v, ok := s2.Load("a"); !ok || string(v) != "first" {
		t.Fatalf("good prefix lost: Load(a) = %q, %v", v, ok)
	}
	if _, ok := s2.Load("b"); ok {
		t.Fatal("torn record surfaced as present — damage must read as missing")
	}
	st := s2.Stats()
	if st.Truncations != 1 || st.TruncatedBytes != int64(len(torn))-goodLen {
		t.Fatalf("Truncations=%d TruncatedBytes=%d, want 1 and %d", st.Truncations, st.TruncatedBytes, int64(len(torn))-goodLen)
	}
	if got := int64(len(journalBytes(t, dir))); got != goodLen {
		t.Fatalf("journal not cut back: %d bytes, want %d", got, goodLen)
	}
}

// TestJournalBitFlipTruncates flips a single bit in each byte position
// of a record and checks replay never surfaces the damaged record.
func TestJournalBitFlipTruncates(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	s.Save("a", []byte("first"))
	firstLen := len(journalBytes(t, dir))
	s.Save("b", []byte("second"))
	s.Close()
	full := journalBytes(t, dir)

	for pos := firstLen; pos < len(full); pos++ {
		flipped := append([]byte(nil), full...)
		flipped[pos] ^= 0x10
		if err := os.WriteFile(filepath.Join(dir, journalName), flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := mustOpen(t, dir, testOpts())
		if v, ok := s2.Load("a"); !ok || string(v) != "first" {
			t.Fatalf("pos %d: good prefix lost", pos)
		}
		if v, ok := s2.Load("b"); ok && string(v) != "second" {
			t.Fatalf("pos %d: CRC missed a flipped bit: Load(b) = %q", pos, v)
		}
		if _, ok := s2.Load("b"); ok {
			t.Fatalf("pos %d: damaged record surfaced as valid", pos)
		}
		s2.Close()
	}
}

// TestJournalCompaction drives enough overwrites to trip the threshold
// and checks the journal collapses to the live set without losing state.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.CompactBytes = 512
	s := mustOpen(t, dir, opts)
	for i := 0; i < 200; i++ {
		s.Save(fmt.Sprintf("k%d", i%4), []byte(fmt.Sprintf("value-%d", i)))
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 200 saves with CompactBytes=512 (size=%d live=%d)", st.Size, st.Live)
	}
	if st.Size > 2*st.Live+512 {
		t.Fatalf("journal did not collapse: size=%d live=%d", st.Size, st.Live)
	}
	want := s.Dump()
	s.Close()

	s2 := mustOpen(t, dir, opts)
	defer s2.Close()
	got := s2.Dump()
	if len(got) != len(want) {
		t.Fatalf("reopen after compaction: %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if g, ok := got[k]; !ok || !bytes.Equal(g, v) {
			t.Fatalf("reopen after compaction: key %s = %q, want %q", k, g, v)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(err) {
		t.Fatalf("compaction temporary left behind: %v", err)
	}
}

// TestJournalStaleTmpRemoved plants a leftover compaction temporary (a
// crash artifact) and checks Open discards it and trusts the journal.
func TestJournalStaleTmpRemoved(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	s.Save("k", []byte("real"))
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if v, ok := s2.Load("k"); !ok || string(v) != "real" {
		t.Fatalf("Load(k) = %q, %v", v, ok)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpName)); !os.IsNotExist(err) {
		t.Fatal("stale compaction temporary survived Open")
	}
}

// saveSeq is the deterministic save sequence the crash sweeps replay:
// interleaved overwrites across a few keys, values that encode their
// position so a stale value is distinguishable from a fresh one.
func saveSeq(n int) []record {
	seq := make([]record, n)
	for i := range seq {
		seq[i] = record{
			key: fmt.Sprintf("s%d/ckpt", i%3),
			val: []byte(fmt.Sprintf("state-%04d-%s", i, strings.Repeat("x", i%7))),
		}
	}
	return seq
}

// stateAfter folds the first n saves of seq into the map a correct
// recovery should produce.
func stateAfter(seq []record, n int) map[string]string {
	m := make(map[string]string)
	for _, r := range seq[:n] {
		m[r.key] = string(r.val)
	}
	return m
}

// matchesSomePrefix reports whether got equals stateAfter(seq, n) for
// some 0 <= n <= len(seq).
func matchesSomePrefix(got map[string][]byte, seq []record) (int, bool) {
	for n := len(seq); n >= 0; n-- {
		want := stateAfter(seq, n)
		if len(got) != len(want) {
			continue
		}
		ok := true
		for k, v := range want {
			if g, has := got[k]; !has || string(g) != v {
				ok = false
				break
			}
		}
		if ok {
			return n, true
		}
	}
	return -1, false
}

// TestJournalCrashAtEveryOffset is the core durability sweep: run a
// fixed save sequence with the crash point at EVERY byte offset of the
// write stream, reopen the directory with a clean filesystem, and
// require the recovered state to equal the state after some prefix of
// the sequence. Anything else — a torn record surfacing, a later save
// visible while an earlier one is lost — is a lie the stabilized layer
// cannot absorb.
func TestJournalCrashAtEveryOffset(t *testing.T) {
	const nSaves = 12
	seq := saveSeq(nSaves)

	// First, measure the fault-free write stream length.
	probe := NewFaultFS(DiskFS{NoSync: true}, Plan{CrashAtByte: NeverCrash})
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{FS: probe})
	for _, r := range seq {
		s.Save(r.key, r.val)
	}
	s.Close()
	total := probe.Written()
	if total == 0 {
		t.Fatal("probe wrote nothing")
	}

	step := int64(1)
	if testing.Short() {
		step = 17
	}
	for crash := int64(0); crash <= total; crash += step {
		dir := t.TempDir()
		ffs := NewFaultFS(DiskFS{NoSync: true}, Plan{CrashAtByte: crash})
		s, err := Open(dir, Options{FS: ffs})
		if err != nil {
			t.Fatalf("crash@%d: Open: %v", crash, err)
		}
		for _, r := range seq {
			s.Save(r.key, r.val)
		}
		s.Close()

		// "Restart": a clean filesystem over the same directory.
		s2 := mustOpen(t, dir, testOpts())
		n, ok := matchesSomePrefix(s2.Dump(), seq)
		if !ok {
			t.Fatalf("crash@%d: recovered state matches no save prefix: %v", crash, dumpKeys(s2.Dump()))
		}
		s2.Close()
		_ = n
	}
}

// TestJournalCrashDuringCompaction crashes at every offset of a write
// stream that includes a compaction; since compaction only rewrites
// already-durable state behind an atomic rename, recovery must still
// match a save prefix — the compaction itself must be invisible.
func TestJournalCrashDuringCompaction(t *testing.T) {
	const nSaves = 30
	seq := saveSeq(nSaves)
	opts := func(fs FS) Options { return Options{FS: fs, CompactBytes: 300} }

	probe := NewFaultFS(DiskFS{NoSync: true}, Plan{CrashAtByte: NeverCrash})
	{
		dir := t.TempDir()
		s := mustOpen(t, dir, opts(probe))
		for _, r := range seq {
			s.Save(r.key, r.val)
		}
		if s.Stats().Compactions == 0 {
			t.Fatal("probe run never compacted; sweep would not cover compaction")
		}
		s.Close()
	}
	total := probe.Written()

	step := int64(7)
	if testing.Short() {
		step = 61
	}
	for crash := int64(0); crash <= total; crash += step {
		dir := t.TempDir()
		ffs := NewFaultFS(DiskFS{NoSync: true}, Plan{CrashAtByte: crash})
		s, err := Open(dir, opts(ffs))
		if err != nil {
			t.Fatalf("crash@%d: Open: %v", crash, err)
		}
		for _, r := range seq {
			s.Save(r.key, r.val)
		}
		s.Close()

		s2 := mustOpen(t, dir, testOpts())
		if _, ok := matchesSomePrefix(s2.Dump(), seq); !ok {
			t.Fatalf("crash@%d (compacting run): recovered state matches no save prefix: %v", crash, dumpKeys(s2.Dump()))
		}
		s2.Close()
	}
}

func dumpKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%q", k, v))
	}
	return out
}

// TestJournalShortWriteRepair runs a save sequence under probabilistic
// short writes and checks (a) the live store always serves the latest
// value, (b) after reopen every surviving value is one that was
// actually saved under its key — a torn append never invents data.
func TestJournalShortWriteRepair(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		dir := t.TempDir()
		ffs := NewFaultFS(DiskFS{NoSync: true}, Plan{Seed: seed, ShortWrite: 0.3, CrashAtByte: NeverCrash})
		s := mustOpen(t, dir, Options{FS: ffs})
		saved := map[string]map[string]bool{}
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("k%d", i%3)
			val := fmt.Sprintf("v-%d-%d", seed, i)
			s.Save(key, []byte(val))
			if saved[key] == nil {
				saved[key] = map[string]bool{}
			}
			saved[key][val] = true
			if got, ok := s.Load(key); !ok || string(got) != val {
				t.Fatalf("seed %d: live store stale after save %d: %q", seed, i, got)
			}
		}
		if ffs.Faults() == 0 {
			t.Fatalf("seed %d: plan injected no faults; test proves nothing", seed)
		}
		if s.Stats().SaveErrors == 0 {
			t.Fatalf("seed %d: short writes not surfaced in SaveErrors", seed)
		}
		if s.LastErr() == nil {
			t.Fatalf("seed %d: LastErr nil despite injected faults", seed)
		}
		s.Close()

		s2 := mustOpen(t, dir, testOpts())
		for key, val := range s2.Dump() {
			if !saved[key][string(val)] {
				t.Fatalf("seed %d: recovered %s=%q which was never saved", seed, key, val)
			}
		}
		s2.Close()
	}
}

// TestJournalBitFlipFaultNeverSurfaces writes through a bit-flipping
// filesystem and checks replay never returns a corrupted value: every
// recovered value must be one that was actually saved.
func TestJournalBitFlipFaultNeverSurfaces(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		dir := t.TempDir()
		ffs := NewFaultFS(DiskFS{NoSync: true}, Plan{Seed: seed, BitFlip: 0.25, CrashAtByte: NeverCrash})
		s := mustOpen(t, dir, Options{FS: ffs})
		saved := map[string]map[string]bool{}
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("k%d", i%3)
			val := fmt.Sprintf("v-%d-%d", seed, i)
			s.Save(key, []byte(val))
			if saved[key] == nil {
				saved[key] = map[string]bool{}
			}
			saved[key][val] = true
		}
		if ffs.Faults() == 0 {
			t.Fatalf("seed %d: plan injected no faults", seed)
		}
		s.Close()

		s2 := mustOpen(t, dir, testOpts())
		for key, val := range s2.Dump() {
			if !saved[key][string(val)] {
				t.Fatalf("seed %d: recovered corrupted value %s=%q", seed, key, val)
			}
		}
		s2.Close()
	}
}

// TestJournalSyncErrLeavesStateIntact injects fsync failures into the
// compaction path; failed compactions must leave the journal
// authoritative and recoverable.
func TestJournalSyncErrLeavesStateIntact(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(DiskFS{NoSync: true}, Plan{Seed: 3, SyncErr: 1.0, CrashAtByte: NeverCrash})
	opts := Options{FS: ffs, CompactBytes: 300}
	s := mustOpen(t, dir, opts)
	for i := 0; i < 60; i++ {
		s.Save(fmt.Sprintf("k%d", i%3), []byte(fmt.Sprintf("v%d", i)))
	}
	st := s.Stats()
	if st.CompactErrors == 0 {
		t.Fatal("SyncErr=1.0 but no compaction failed; threshold never reached?")
	}
	if st.Compactions != 0 {
		t.Fatalf("compaction succeeded despite failing Sync: %d", st.Compactions)
	}
	want := s.Dump()
	s.Close()

	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	got := s2.Dump()
	for k, v := range want {
		if g, ok := got[k]; !ok || !bytes.Equal(g, v) {
			t.Fatalf("key %s lost across failed compactions: %q vs %q", k, g, v)
		}
	}
}

// TestJournalConcurrentSaveLoad is the -race guard for the serving
// configuration: many session goroutines sharing one store.
func TestJournalConcurrentSaveLoad(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("s%d/ckpt", g%4)
			for i := 0; i < 300; i++ {
				s.Save(key, []byte(fmt.Sprintf("g%d-i%d", g, i)))
				if _, ok := s.Load(key); !ok {
					t.Errorf("goroutine %d: key vanished", g)
					return
				}
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if s.LastErr() != nil {
		t.Fatalf("LastErr after clean concurrent run: %v", s.LastErr())
	}
}

// TestJournalOversizeRecordRejected checks limits are enforced without
// poisoning the journal: the oversize value stays readable in memory
// and everything else survives a reopen.
func TestJournalOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOpts())
	s.Save("ok", []byte("fine"))
	huge := make([]byte, maxPayload)
	s.Save("huge", huge)
	if s.Stats().SaveErrors != 1 {
		t.Fatalf("SaveErrors = %d, want 1", s.Stats().SaveErrors)
	}
	if v, ok := s.Load("huge"); !ok || len(v) != len(huge) {
		t.Fatal("oversize value not served from memory")
	}
	s.Close()
	s2 := mustOpen(t, dir, testOpts())
	defer s2.Close()
	if _, ok := s2.Load("huge"); ok {
		t.Fatal("oversize value persisted despite rejection")
	}
	if v, ok := s2.Load("ok"); !ok || string(v) != "fine" {
		t.Fatalf("sibling key damaged: %q, %v", v, ok)
	}
}

// TestJournalObsMetrics checks the registry wiring end to end through
// both exporters.
func TestJournalObsMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	opts := testOpts()
	opts.Obs = reg
	s := mustOpen(t, dir, opts)
	defer s.Close()
	s.Save("a", []byte("one"))
	s.Save("b", []byte("two"))

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"rstp_journal_saves_total 2",
		"rstp_journal_keys 2",
		"rstp_journal_fsync_us_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Prometheus export missing %q:\n%s", want, text)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["rstp_journal_saves_total"] != 2 {
		t.Fatalf("JSON snapshot rstp_journal_saves_total = %d, want 2", snap.Counters["rstp_journal_saves_total"])
	}
	if snap.Gauges["rstp_journal_keys"] != 2 {
		t.Fatalf("JSON snapshot rstp_journal_keys = %d, want 2", snap.Gauges["rstp_journal_keys"])
	}
}

// TestScanRecordsRejectsMalformedFraming covers the CRC-valid but
// structurally bogus payload: a key length pointing past the payload.
func TestScanRecordsRejectsMalformedFraming(t *testing.T) {
	// Build a record whose payload is too short for its declared keyLen.
	payload := []byte{0xFF, 0xFF, 'x'} // keyLen=65535, 1 byte of key
	rec := make([]byte, recHeader+len(payload))
	putRecord(rec, payload)
	recs, off := scanRecords(rec)
	if len(recs) != 0 || off != 0 {
		t.Fatalf("malformed framing accepted: %d recs, off %d", len(recs), off)
	}
}

// putRecord frames payload with a correct length and CRC (test helper
// for hand-built corrupt journals).
func putRecord(dst, payload []byte) {
	r := encodeRecordRaw(payload)
	copy(dst, r)
}
