package journal

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the journal needs — deliberately minimal,
// so a fault-injecting wrapper (FaultFS) can sit between the store and
// the disk and break every promise one at a time. All paths are passed
// through verbatim; implementations do not resolve or sandbox them.
type FS interface {
	// OpenRead opens name for reading. A missing file returns an error
	// satisfying os.IsNotExist / errors.Is(err, fs.ErrNotExist).
	OpenRead(name string) (File, error)
	// OpenAppend opens name for appending, creating it if missing. The
	// returned handle has O_SYNC semantics unless the implementation says
	// otherwise: when Write returns, the bytes are on stable storage.
	OpenAppend(name string) (File, error)
	// Create opens name for writing from scratch, truncating any previous
	// contents — the compaction snapshot path. Durability comes from an
	// explicit Sync before Close, not from O_SYNC.
	Create(name string) (File, error)
	// Rename atomically replaces newname with oldname — the commit point
	// of a compaction.
	Rename(oldname, newname string) error
	// Remove deletes name (stale compaction temporaries).
	Remove(name string) error
	// Truncate cuts name to size bytes — the torn-tail repair.
	Truncate(name string, size int64) error
	// MkdirAll ensures the directory exists.
	MkdirAll(dir string) error
}

// File is one open journal file.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes buffered writes to stable storage.
	Sync() error
}

// DiskFS is the real filesystem. The zero value opens append handles
// with O_SYNC, which is what the durability story rests on: an append
// that returned has hit the platter (or the device's equivalent), so a
// process crash can only tear the record being written, never one that
// was acknowledged.
type DiskFS struct {
	// NoSync drops the O_SYNC flag from append handles. Only for tests
	// and benchmarks where the filesystem itself is the fault surface (a
	// FaultFS decides what persists) or where measured fsync cost would
	// drown the signal — never for serving.
	NoSync bool
}

// OpenRead implements FS.
func (d DiskFS) OpenRead(name string) (File, error) { return os.Open(name) }

// OpenAppend implements FS.
func (d DiskFS) OpenAppend(name string) (File, error) {
	flags := os.O_WRONLY | os.O_CREATE | os.O_APPEND
	if !d.NoSync {
		flags |= os.O_SYNC
	}
	return os.OpenFile(name, flags, 0o644)
}

// Create implements FS.
func (d DiskFS) Create(name string) (File, error) { return os.Create(name) }

// Rename implements FS.
func (d DiskFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (d DiskFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (d DiskFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll implements FS.
func (d DiskFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// join builds a path inside the store directory.
func join(dir, name string) string { return filepath.Join(dir, name) }
