package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/benchmatrix"
)

// benchSave drives the Save path over a fixed key set with ~64-byte
// checkpoints — the shape the stabilized layer produces.
func benchSave(b *testing.B, fs FS) {
	dir := b.TempDir()
	s, err := Open(dir, Options{FS: fs})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 64)
	keys := [8]string{}
	for i := range keys {
		keys[i] = fmt.Sprintf("s%d/ckpt", i)
	}
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Save(keys[i&7], val)
	}
}

// BenchmarkJournalSaveSync is the serving configuration: every append
// is an O_SYNC write, so this measures what durability actually costs
// per checkpoint on this machine's storage.
func BenchmarkJournalSaveSync(b *testing.B) { benchSave(b, DiskFS{}) }

// BenchmarkJournalSaveNoSync isolates the journal's own overhead
// (framing, CRC, compaction accounting) from the device flush.
func BenchmarkJournalSaveNoSync(b *testing.B) { benchSave(b, DiskFS{NoSync: true}) }

// BenchmarkJournalReplay measures recovery: opening a journal of 4096
// records (512 live keys).
func BenchmarkJournalReplay(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{FS: DiskFS{NoSync: true}, CompactBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 64)
	for i := 0; i < 4096; i++ {
		s.Save(fmt.Sprintf("s%d/ckpt", i&511), val)
	}
	s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := Open(dir, Options{FS: DiskFS{NoSync: true}})
		if err != nil {
			b.Fatal(err)
		}
		if st := s.Stats(); st.Replayed != 4096 {
			b.Fatalf("replayed %d records, want 4096", st.Replayed)
		}
		s.Close()
	}
}

// TestJournalBenchGuard runs the journal benchmarks programmatically
// and — when BENCH_JOURNAL_OUT names a file — writes the
// BENCH_journal.json artifact CI archives alongside BENCH_serve.json
// and BENCH_obs.json.
func TestJournalBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard runs in the full suite and the dedicated CI step")
	}
	out := os.Getenv("BENCH_JOURNAL_OUT")
	run := func(name string, fn func(*testing.B)) map[string]any {
		res := testing.Benchmark(fn)
		if res.N == 0 {
			t.Skipf("%s: benchmarks disabled in this run", name)
		}
		return map[string]any{
			"benchmark":     name,
			"iterations":    res.N,
			"ns_per_op":     res.NsPerOp(),
			"allocs_per_op": res.AllocsPerOp(),
			"bytes_per_op":  res.AllocedBytesPerOp(),
		}
	}
	results := []map[string]any{
		run("BenchmarkJournalSaveNoSync", BenchmarkJournalSaveNoSync),
		run("BenchmarkJournalReplay", BenchmarkJournalReplay),
	}
	if out == "" {
		return
	}
	// The O_SYNC number is the headline of the artifact but too slow for
	// every full-suite run; measure it only when exporting.
	results = append(results, run("BenchmarkJournalSaveSync", BenchmarkJournalSaveSync))
	payload := map[string]any{
		"schema":  "rstp-bench-journal/v1",
		"meta":    benchmatrix.NewMeta("rstp-bench-journal/v1", time.Now().UTC().Format(time.RFC3339)),
		"results": results,
	}
	raw, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	t.Logf("wrote %s", out)
}
