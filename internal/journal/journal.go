// Package journal is the durable half of the self-stabilization story: a
// file-backed rstp.StateStore whose contents survive a real process
// crash, the way MemStore survives only a simulated one.
//
// The paper (and the stabilized layer reproducing it) assumes stable
// storage with one property: it may LOSE recent state, and it may hold
// DAMAGED state, but whatever a reader gets back must be detectable as
// one or the other — the RESYNC/REWIND handshake then rebuilds the
// session from whatever survived. The journal makes that contract
// operational on a filesystem:
//
//   - Appends are length-prefixed, CRC-32-checksummed records on a file
//     opened with O_SYNC: a Save that returned is on stable storage, and
//     a crash can only tear the record being written, never an
//     acknowledged one.
//   - Replay-on-open walks the file and truncates at the FIRST record
//     that is short or fails its checksum. A torn or bit-flipped tail
//     reads as "missing", exactly the failure the stabilized layer's
//     checkpoint checksums were designed to absorb; it is never
//     "repaired" into a plausible lie.
//   - Compaction rewrites the live key set into a temporary snapshot and
//     commits it with one atomic rename, so a crash at any byte of a
//     compaction leaves either the old journal or the new one — never a
//     mix.
//
// Every failure mode in that write path — short writes, fsync errors,
// silent bit flips, a crash at an exact byte offset — is injectable
// through FaultFS (faultfs.go), seeded and deterministic in the style of
// internal/faults, which is how the crash-restart sweeps prove the
// replay logic truncates rather than trusts every damaged tail.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
)

// File names inside a store directory. The temporary is adjacent to the
// journal so Rename stays within one filesystem (atomicity).
const (
	journalName = "journal.log"
	tmpName     = "journal.tmp"
)

// Record layout: a 4-byte big-endian payload length, a 4-byte CRC-32
// (IEEE) of the payload, then the payload — a 2-byte key length, the
// key, and the value. The CRC covers only the payload; a damaged length
// prefix shows up as a short or absurd record, which replay treats the
// same way as a failed checksum.
const (
	recHeader  = 8         // length + CRC
	maxPayload = 1 << 26   // 64 MiB: larger lengths are corruption, not data
	maxKey     = 1<<16 - 1 // key length must fit its 2-byte prefix
)

// Options tune a Store. The zero value is the serving default: real
// filesystem, O_SYNC appends, 1 MiB compaction threshold, no metrics.
type Options struct {
	// FS is the filesystem; nil means DiskFS{} (O_SYNC appends).
	FS FS
	// CompactBytes is the journal size past which a compaction is
	// considered (default 1 MiB; it still waits for the live fraction to
	// drop below half, so a journal of mostly-live data is never churned).
	CompactBytes int64
	// Obs registers the journal's counters, size gauges and the
	// fsync-latency histogram into a registry. nil disables metrics.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = DiskFS{}
	}
	if o.CompactBytes <= 0 {
		o.CompactBytes = 1 << 20
	}
	return o
}

// Stats is a snapshot of a store's lifetime counters.
type Stats struct {
	// Saves counts Save calls; SaveErrors those whose append failed (the
	// value stays readable in memory but may not have reached the disk).
	Saves, SaveErrors int64
	// Replayed counts records recovered by the last Open; Truncations
	// counts torn/corrupt tails cut off (at open and after failed
	// appends), TruncatedBytes the bytes discarded by open-time cuts.
	Replayed, Truncations, TruncatedBytes int64
	// Compactions counts snapshot+rename cycles; CompactErrors failed
	// attempts (the old journal stays authoritative).
	Compactions, CompactErrors int64
	// Size is the journal file's current byte length; Live the bytes of
	// records holding each key's latest value. Size grows with every
	// Save; compaction collapses it back to Live.
	Size, Live int64
	// Keys is the number of distinct keys currently stored.
	Keys int64
}

// Store is a file-backed rstp.StateStore: an append-only, O_SYNC,
// CRC-checksummed journal with replay-on-open and rename-based
// compaction. It is safe for concurrent use by every session goroutine
// of a serving process.
//
// Save never reports an error (the StateStore contract has no channel
// for one, deliberately — the stabilized layer treats storage as lossy).
// A failed append is counted in Stats and the store keeps serving the
// value from memory; what reaches a LATER process is whatever prefix of
// the journal survived, which the recovery handshake absorbs.
type Store struct {
	mu   sync.Mutex
	fs   FS
	dir  string
	opts Options

	f         File              // append handle; nil after an unrepairable error
	size      int64             // bytes of journal known good (last record boundary)
	mem       map[string][]byte // latest value per key
	live      map[string]int64  // record bytes backing each key's latest value
	liveBytes int64

	lastErr error
	stats   Stats

	fsyncHist *obs.Histogram // nil without Options.Obs
}

// Open replays the journal in dir (creating the directory and an empty
// journal as needed) and returns a ready store. A torn or corrupt tail
// is truncated — recovery never fails on damaged contents, only on I/O
// errors from the filesystem itself.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	s := &Store{
		fs:   opts.FS,
		dir:  dir,
		opts: opts,
		mem:  make(map[string][]byte),
		live: make(map[string]int64),
	}
	if err := s.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("journal: mkdir %s: %w", dir, err)
	}
	// A stale compaction temporary is a crash artifact from a previous
	// incarnation that never reached its rename: the journal is still
	// authoritative, the temporary is garbage.
	_ = s.fs.Remove(join(dir, tmpName))
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := s.fs.OpenAppend(join(dir, journalName))
	if err != nil {
		return nil, fmt.Errorf("journal: open %s for append: %w", journalName, err)
	}
	s.f = f
	if opts.Obs != nil {
		s.register(opts.Obs)
	}
	return s, nil
}

// replay loads the journal's longest valid prefix into memory and cuts
// the file back to it.
func (s *Store) replay() error {
	path := join(s.dir, journalName)
	f, err := s.fs.OpenRead(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // fresh store
		}
		return fmt.Errorf("journal: open %s: %w", journalName, err)
	}
	data, err := io.ReadAll(f)
	cerr := f.Close()
	if err != nil {
		return fmt.Errorf("journal: read %s: %w", journalName, err)
	}
	if cerr != nil {
		return fmt.Errorf("journal: close %s: %w", journalName, cerr)
	}
	recs, validOff := scanRecords(data)
	for _, r := range recs {
		s.applyRecord(r.key, r.val, int64(recHeader+2+len(r.key)+len(r.val)))
		s.stats.Replayed++
	}
	s.size = int64(validOff)
	if validOff < len(data) {
		// Damaged tail: cut it off rather than trust it. The caller's
		// checkpoints above the cut read as "missing" — the stabilized
		// layer's handshake was built for exactly that.
		if err := s.fs.Truncate(path, int64(validOff)); err != nil {
			return fmt.Errorf("journal: truncate torn tail of %s at %d: %w", journalName, validOff, err)
		}
		s.stats.Truncations++
		s.stats.TruncatedBytes += int64(len(data) - validOff)
	}
	return nil
}

// applyRecord folds one decoded record into the in-memory state,
// maintaining the live-bytes accounting.
func (s *Store) applyRecord(key string, val []byte, recBytes int64) {
	if prev, ok := s.live[key]; ok {
		s.liveBytes -= prev
	}
	s.mem[key] = val
	s.live[key] = recBytes
	s.liveBytes += recBytes
}

// record is one decoded journal entry.
type record struct {
	key string
	val []byte
}

// scanRecords walks data and returns the records of the longest valid
// prefix plus that prefix's byte length. It never panics on arbitrary
// input — FuzzJournalReplay holds it to that — and it never returns a
// record whose checksum or framing fails.
func scanRecords(data []byte) ([]record, int) {
	var recs []record
	off := 0
	for {
		if off+recHeader > len(data) {
			return recs, off // short header: end (possibly torn)
		}
		plen := int(binary.BigEndian.Uint32(data[off:]))
		sum := binary.BigEndian.Uint32(data[off+4:])
		if plen < 2 || plen > maxPayload || off+recHeader+plen > len(data) {
			return recs, off // absurd length or torn payload
		}
		payload := data[off+recHeader : off+recHeader+plen]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off // bit rot or a torn rewrite
		}
		klen := int(binary.BigEndian.Uint16(payload))
		if 2+klen > plen {
			return recs, off // CRC-valid but malformed framing: distrust it
		}
		key := string(payload[2 : 2+klen])
		val := append([]byte(nil), payload[2+klen:]...)
		recs = append(recs, record{key: key, val: val})
		off += recHeader + plen
	}
}

// encodeRecord frames one Save as a journal record.
func encodeRecord(key string, val []byte) []byte {
	payload := make([]byte, 2+len(key)+len(val))
	binary.BigEndian.PutUint16(payload, uint16(len(key)))
	copy(payload[2:], key)
	copy(payload[2+len(key):], val)
	return encodeRecordRaw(payload)
}

// encodeRecordRaw frames an arbitrary payload with a correct length and
// CRC header — also the test hook for building journals whose payloads
// are checksummed correctly but structurally malformed.
func encodeRecordRaw(payload []byte) []byte {
	buf := make([]byte, recHeader+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recHeader:], payload)
	return buf
}

// Save implements rstp.StateStore: append one record, durably. Errors
// are absorbed into Stats (see the type comment); the in-memory view
// always reflects the latest Save so the CURRENT process never reads
// stale state — durability only matters to the next one.
func (s *Store) Save(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Saves++
	val := append([]byte(nil), data...)
	if len(key) > maxKey || 2+len(key)+len(val) > maxPayload {
		s.stats.SaveErrors++
		s.lastErr = fmt.Errorf("journal: record for key %.32q exceeds limits", key)
		s.mem[key] = val
		return
	}
	rec := encodeRecord(key, val)
	s.applyRecord(key, val, int64(len(rec)))
	if s.f == nil && !s.reopenLocked() {
		s.stats.SaveErrors++
		return
	}
	start := time.Now()
	n, err := s.f.Write(rec)
	if s.fsyncHist != nil {
		s.fsyncHist.Observe(time.Since(start).Microseconds())
	}
	if err != nil || n != len(rec) {
		s.stats.SaveErrors++
		if err != nil {
			s.lastErr = err
		} else {
			s.lastErr = fmt.Errorf("journal: short append: %d of %d bytes", n, len(rec))
		}
		// The tail may now be torn mid-record. Roll the file back to the
		// last record boundary so later successful appends are not
		// stranded behind a corrupt record at the next replay.
		s.repairTailLocked()
		return
	}
	s.size += int64(n)
	if s.size >= s.opts.CompactBytes && s.size > 2*s.liveBytes {
		s.compactLocked()
	}
}

// repairTailLocked truncates the journal back to s.size (the last known
// record boundary). If even that fails, the append handle is dropped;
// the next Save retries the reopen-and-truncate path.
func (s *Store) repairTailLocked() {
	if err := s.fs.Truncate(join(s.dir, journalName), s.size); err != nil {
		s.lastErr = err
		if s.f != nil {
			s.f.Close()
			s.f = nil
		}
		return
	}
	s.stats.Truncations++
}

// reopenLocked re-establishes the append handle after a dropped one,
// re-truncating to the last record boundary first.
func (s *Store) reopenLocked() bool {
	if err := s.fs.Truncate(join(s.dir, journalName), s.size); err != nil {
		s.lastErr = err
		return false
	}
	f, err := s.fs.OpenAppend(join(s.dir, journalName))
	if err != nil {
		s.lastErr = err
		return false
	}
	s.f = f
	s.stats.Truncations++
	return true
}

// Load implements rstp.StateStore.
func (s *Store) Load(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	val, ok := s.mem[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), val...), true
}

// compactLocked rewrites the live key set into a temporary snapshot and
// atomically renames it over the journal. On any error the old journal
// (and its append handle) stay authoritative.
func (s *Store) compactLocked() {
	tmp := join(s.dir, tmpName)
	f, err := s.fs.Create(tmp)
	if err != nil {
		s.compactFailed(err)
		return
	}
	var written int64
	for key, val := range s.mem {
		rec := encodeRecord(key, val)
		n, werr := f.Write(rec)
		if werr != nil || n != len(rec) {
			f.Close()
			_ = s.fs.Remove(tmp)
			s.compactFailed(werr)
			return
		}
		written += int64(n)
	}
	// One explicit barrier for the whole snapshot, then the atomic
	// commit point: rename. A crash before the rename leaves the old
	// journal; after it, the new one — never a mix.
	if err := f.Sync(); err != nil {
		f.Close()
		_ = s.fs.Remove(tmp)
		s.compactFailed(err)
		return
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		s.compactFailed(err)
		return
	}
	if err := s.fs.Rename(tmp, join(s.dir, journalName)); err != nil {
		_ = s.fs.Remove(tmp)
		s.compactFailed(err)
		return
	}
	// The old handle points at the unlinked inode; appends to it would
	// vanish silently. Swap it for a handle on the new file.
	if s.f != nil {
		s.f.Close()
	}
	nf, err := s.fs.OpenAppend(join(s.dir, journalName))
	if err != nil {
		// The snapshot committed but cannot be appended to: the store
		// keeps serving from memory and retries the reopen on next Save.
		s.f = nil
		s.lastErr = err
	} else {
		s.f = nf
	}
	s.size = written
	s.liveBytes = written
	for key := range s.live {
		if val, ok := s.mem[key]; ok {
			s.live[key] = int64(recHeader + 2 + len(key) + len(val))
		}
	}
	s.stats.Compactions++
}

func (s *Store) compactFailed(err error) {
	s.stats.CompactErrors++
	if err != nil {
		s.lastErr = err
	}
}

// Dump returns a copy of the store's current state — the comparison
// surface for the crash sweeps.
func (s *Store) Dump() map[string][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.mem))
	for k, v := range s.mem {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// Stats snapshots the lifetime counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Size = s.size
	st.Live = s.liveBytes
	st.Keys = int64(len(s.mem))
	return st
}

// LastErr returns the most recent write-path error, nil if none.
func (s *Store) LastErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the append handle. The store's in-memory view keeps
// serving Loads; further Saves reopen the journal.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// register wires the store's counters, gauges and the fsync-latency
// histogram into an obs registry, following the serving stack's naming
// conventions.
func (s *Store) register(reg *obs.Registry) {
	s.fsyncHist = reg.Histogram("rstp_journal_fsync_us",
		"O_SYNC journal append latency (write + flush), in microseconds", obs.TickBuckets(20))
	reg.CounterFunc("rstp_journal_saves_total", "checkpoint saves appended to the journal",
		func() int64 { return s.Stats().Saves })
	reg.CounterFunc("rstp_journal_save_errors_total", "journal appends that failed (value kept in memory only)",
		func() int64 { return s.Stats().SaveErrors })
	reg.CounterFunc("rstp_journal_replayed_records_total", "records recovered by replay at open",
		func() int64 { return s.Stats().Replayed })
	reg.CounterFunc("rstp_journal_truncations_total", "torn or corrupt journal tails cut off",
		func() int64 { return s.Stats().Truncations })
	reg.CounterFunc("rstp_journal_truncated_bytes_total", "bytes discarded by open-time tail truncation",
		func() int64 { return s.Stats().TruncatedBytes })
	reg.CounterFunc("rstp_journal_compactions_total", "snapshot-and-rename compaction cycles",
		func() int64 { return s.Stats().Compactions })
	reg.GaugeFunc("rstp_journal_size_bytes", "journal file size in bytes",
		func() int64 { return s.Stats().Size })
	reg.GaugeFunc("rstp_journal_live_bytes", "bytes of records holding each key's latest value",
		func() int64 { return s.Stats().Live })
	reg.GaugeFunc("rstp_journal_keys", "distinct keys in the store",
		func() int64 { return s.Stats().Keys })
}
