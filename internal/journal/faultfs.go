package journal

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrCrashed is returned by every FaultFS operation after a planned
// crash point fires: the simulated process is dead, the simulated disk
// holds whatever prefix of the write stream made it out.
var ErrCrashed = errors.New("journal: simulated crash")

// ErrSyncFailed is the injected fsync failure.
var ErrSyncFailed = errors.New("journal: simulated fsync failure")

// ErrShortWrite is the error accompanying an injected short write (the
// prefix that was "written" persists; the rest does not).
var ErrShortWrite = errors.New("journal: simulated short write")

// Plan is a seeded fault schedule for a FaultFS, in the style of
// internal/faults: probabilities draw from one deterministic stream, so
// the same Plan over the same operation sequence injects the same
// faults.
type Plan struct {
	// Seed feeds the fault stream. Two FaultFS with equal Seeds and equal
	// operation sequences make identical decisions.
	Seed int64
	// ShortWrite is the per-write probability that only a random strict
	// prefix of the buffer persists and the write returns ErrShortWrite.
	ShortWrite float64
	// SyncErr is the per-Sync probability of returning ErrSyncFailed
	// (the flush is also suppressed — buffered bytes may be lost on a
	// later crash, though this wrapper persists them; the error is the
	// observable fault).
	SyncErr float64
	// BitFlip is the per-write probability that one random bit of the
	// buffer is silently flipped before persisting — the write still
	// reports success. This is the "stable storage may hold damaged
	// state" failure the CRC exists to catch.
	BitFlip float64
	// CrashAtByte, when >= 0, crashes the filesystem once the cumulative
	// bytes written through it (journal appends and compaction snapshots
	// alike) reach this offset: the in-flight write persists only up to
	// the offset, returns ErrCrashed, and every later operation fails
	// with ErrCrashed. Sweeping CrashAtByte over every offset of a save
	// sequence visits every possible torn-write state. -1 (or the zero
	// value left untouched via NeverCrash) never crashes.
	CrashAtByte int64
}

// NeverCrash is the CrashAtByte value for plans that only inject
// probabilistic faults.
const NeverCrash int64 = -1

// FaultFS wraps an FS and injects the faults its Plan describes. It is
// safe for concurrent use; the fault stream is serialized under one
// lock, so determinism holds whenever the operation ORDER is
// deterministic (single-goroutine tests, or sweeps that tolerate any
// interleaving).
type FaultFS struct {
	mu      sync.Mutex
	inner   FS
	plan    Plan
	rng     *rand.Rand
	written int64 // cumulative bytes persisted through this FS
	crashed bool
	faults  int64 // injected faults of any kind
}

// NewFaultFS wraps inner with the given plan.
func NewFaultFS(inner FS, plan Plan) *FaultFS {
	return &FaultFS{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

// Crashed reports whether the crash point has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Written returns the cumulative bytes persisted through this FS —
// the coordinate system CrashAtByte lives in.
func (f *FaultFS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Faults returns how many faults (of any kind) have been injected.
func (f *FaultFS) Faults() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

func (f *FaultFS) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// OpenRead implements FS. Reads are not a fault surface (replay reads
// whatever the faulted writes left behind), but a crashed FS stays dead.
func (f *FaultFS) OpenRead(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	return f.inner.OpenRead(name)
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.check(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// faultFile intercepts writes and syncs; everything else passes through.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.inner.Read(p) }
func (ff *faultFile) Close() error               { return ff.inner.Close() }

// Write applies the plan: maybe crash mid-buffer, maybe persist a short
// prefix, maybe flip one bit. Exactly one fault fires per write, crash
// taking precedence, so sweeps stay interpretable.
func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	// Crash point: does this buffer cross CrashAtByte?
	if f.plan.CrashAtByte >= 0 && f.written+int64(len(p)) > f.plan.CrashAtByte {
		keep := f.plan.CrashAtByte - f.written
		if keep < 0 {
			keep = 0
		}
		f.crashed = true
		f.faults++
		f.written += keep
		f.mu.Unlock()
		if keep > 0 {
			ff.inner.Write(p[:keep])
		}
		ff.inner.Sync()
		return int(keep), ErrCrashed
	}
	// Short write: persist a random strict prefix, report the error.
	if f.plan.ShortWrite > 0 && len(p) > 0 && f.rng.Float64() < f.plan.ShortWrite {
		keep := f.rng.Intn(len(p)) // 0..len-1: always strictly short
		f.faults++
		f.written += int64(keep)
		f.mu.Unlock()
		if keep > 0 {
			ff.inner.Write(p[:keep])
		}
		return keep, ErrShortWrite
	}
	// Bit flip: silently corrupt one bit, report success.
	if f.plan.BitFlip > 0 && len(p) > 0 && f.rng.Float64() < f.plan.BitFlip {
		q := append([]byte(nil), p...)
		bit := f.rng.Intn(len(q) * 8)
		q[bit/8] ^= 1 << (bit % 8)
		f.faults++
		f.written += int64(len(q))
		f.mu.Unlock()
		return ff.inner.Write(q)
	}
	f.written += int64(len(p))
	f.mu.Unlock()
	return ff.inner.Write(p)
}

// Sync applies the SyncErr probability; a crashed FS always fails.
func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	if f.plan.SyncErr > 0 && f.rng.Float64() < f.plan.SyncErr {
		f.faults++
		f.mu.Unlock()
		return ErrSyncFailed
	}
	f.mu.Unlock()
	return ff.inner.Sync()
}
