package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes at the replay path as if
// they were a journal left behind by a crashed (or malicious) previous
// incarnation. The invariants are the stable-storage contract itself:
//
//  1. Open never panics and never fails on damaged CONTENTS (only real
//     I/O errors may surface, and a plain temp dir has none).
//  2. Every surfaced record passed its CRC and framing: re-scanning the
//     on-disk prefix reproduces the store's state exactly.
//  3. Replay only ever truncates: the file after Open is a prefix of
//     the input, never extended or rewritten.
//  4. Recovery is idempotent: a second Open sees the same state and
//     truncates nothing further.
//
// The checked-in corpus (testdata/fuzz/FuzzJournalReplay) pins the
// regressions named in the issue: truncated tails, bit-flipped records,
// and duplicate-key journals.
func FuzzJournalReplay(f *testing.F) {
	// Seed: a clean two-record journal and damaged variants of it.
	clean := append(encodeRecord("s1/t", []byte("checkpoint-one")),
		encodeRecord("s1/r", []byte("checkpoint-two"))...)
	f.Add([]byte{})
	f.Add(clean)
	f.Add(clean[:len(clean)-5]) // torn tail
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x40 // bit flip mid-record
	f.Add(flipped)
	f.Add(append(append([]byte(nil), clean...), clean...)) // duplicate records
	f.Add([]byte("not a journal at all"))
	huge := encodeRecordRaw([]byte{0x00, 0x02, 'h', 'i'})
	huge[0], huge[1] = 0xFF, 0xFF // absurd length prefix, stale CRC
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, journalName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{FS: DiskFS{NoSync: true}})
		if err != nil {
			t.Fatalf("Open on arbitrary contents: %v", err)
		}
		got := s.Dump()
		size1 := s.Stats().Size
		s.Close()

		onDisk, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// (3) pure truncation.
		if len(onDisk) > len(data) || !bytes.Equal(onDisk, data[:len(onDisk)]) {
			t.Fatalf("replay rewrote the journal instead of truncating it")
		}
		if int64(len(onDisk)) != size1 {
			t.Fatalf("Stats.Size %d != on-disk size %d", size1, len(onDisk))
		}
		// (2) state is exactly the valid-prefix records, last-write-wins.
		recs, off := scanRecords(data)
		if off != len(onDisk) {
			t.Fatalf("valid prefix %d but file cut to %d", off, len(onDisk))
		}
		want := map[string][]byte{}
		for _, r := range recs {
			want[r.key] = r.val
		}
		if len(got) != len(want) {
			t.Fatalf("recovered %d keys, want %d", len(got), len(want))
		}
		for k, v := range want {
			if g, ok := got[k]; !ok || !bytes.Equal(g, v) {
				t.Fatalf("key %q: recovered %q, want %q", k, g, v)
			}
		}
		// (4) idempotent: a second recovery truncates nothing more.
		s2, err := Open(dir, Options{FS: DiskFS{NoSync: true}})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer s2.Close()
		if st := s2.Stats(); st.Truncations != 0 {
			t.Fatalf("second Open truncated again (%d)", st.Truncations)
		}
		got2 := s2.Dump()
		if len(got2) != len(got) {
			t.Fatalf("second Open saw %d keys, first saw %d", len(got2), len(got))
		}
		for k, v := range got {
			if g, ok := got2[k]; !ok || !bytes.Equal(g, v) {
				t.Fatalf("second Open diverged on key %q", k)
			}
		}
	})
}
