package tmc

import (
	"strings"
	"testing"

	"repro/internal/rstp"
	"repro/internal/rstpx"
	"repro/internal/wire"
)

func alphaSystem(t *testing.T, p rstp.Params, xBits string) System {
	t.Helper()
	x, err := wire.ParseBits(xBits)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rstp.NewAlphaTransmitter(p, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rstp.NewAlphaReceiver(p)
	if err != nil {
		t.Fatal(err)
	}
	return System{
		X: x, T: tr, R: rc,
		ForkT:   func(n Node) (Node, error) { return n.(*rstp.AlphaTransmitter).Fork() },
		ForkR:   func(n Node) (Node, error) { return n.(*rstp.AlphaReceiver).Fork() },
		Written: func(n Node) []wire.Bit { return n.(*rstp.AlphaReceiver).WrittenBits() },
		C1:      p.C1, C2: p.C2, D1: 0, D2: p.D,
	}
}

func betaSystem(t *testing.T, p rstp.Params, k int, xBits string) System {
	t.Helper()
	x, err := wire.ParseBits(xBits)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rstp.NewBetaTransmitter(p, k, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rstp.NewBetaReceiver(p, k)
	if err != nil {
		t.Fatal(err)
	}
	return System{
		X: x, T: tr, R: rc,
		ForkT:   func(n Node) (Node, error) { return n.(*rstp.BetaTransmitter).Fork() },
		ForkR:   func(n Node) (Node, error) { return n.(*rstp.BetaReceiver).Fork() },
		Written: func(n Node) []wire.Bit { return n.(*rstp.BetaReceiver).WrittenBits() },
		C1:      p.C1, C2: p.C2, D1: 0, D2: p.D,
	}
}

// TestAlphaSafeForAllTimedBehaviors exhaustively verifies A^α over every
// legal schedule, every delivery time in [0, d], and every same-tick
// interleaving — including the boundary case c1 | d where consecutive
// packets' arrival windows touch and the send-order tie-break is what
// saves the protocol.
func TestAlphaSafeForAllTimedBehaviors(t *testing.T) {
	tests := []struct {
		name string
		p    rstp.Params
		x    string
	}{
		{name: "divisible boundary", p: rstp.Params{C1: 1, C2: 2, D: 3}, x: "10"},
		{name: "non-divisible", p: rstp.Params{C1: 2, C2: 3, D: 5}, x: "10"},
		{name: "three messages", p: rstp.Params{C1: 1, C2: 1, D: 2}, x: "101"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Check(alphaSystem(t, tt.p, tt.x))
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation: %v", res.Violation)
			}
			if !res.CompletionReachable {
				t.Fatal("Y = X never reached")
			}
			t.Logf("states=%d transitions=%d", res.States, res.Transitions)
		})
	}
}

// TestBetaSafeForAllTimedBehaviors: the burst protocol's safety over the
// full timed behaviour space, including in-burst reordering (flights of
// one burst genuinely overtake each other here).
func TestBetaSafeForAllTimedBehaviors(t *testing.T) {
	tests := []struct {
		name string
		p    rstp.Params
		k    int
		x    string
	}{
		// δ1 = 2, L = ⌊log2 μ_2(2)⌋ = 1, two blocks.
		{name: "delta1=2 two blocks", p: rstp.Params{C1: 1, C2: 1, D: 2}, k: 2, x: "10"},
		// δ1 = 3, k = 2: μ = 4, L = 2, two blocks.
		{name: "delta1=3 two blocks", p: rstp.Params{C1: 1, C2: 1, D: 3}, k: 2, x: "1001"},
		// timing uncertainty: c2 > c1 (δ1 = 3, 2 bits/block, one block).
		{name: "delta1=3 jittery clocks", p: rstp.Params{C1: 1, C2: 2, D: 3}, k: 2, x: "10"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Check(betaSystem(t, tt.p, tt.k, tt.x))
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation: %v", res.Violation)
			}
			if !res.CompletionReachable {
				t.Fatal("Y = X never reached")
			}
			t.Logf("states=%d transitions=%d", res.States, res.Transitions)
		})
	}
}

// zeroWaitSystem builds a burst protocol whose wait assumes a
// deterministic-delay channel (slack 0 -> no wait), explored against the
// true window [0, d].
func zeroWaitSystem(t *testing.T) System {
	t.Helper()
	// Built believing d1 = d2 = 2 (no reordering, no wait)...
	lie := rstpx.GenParams{TC1: 1, TC2: 1, RC1: 1, RC2: 1, D1: 2, D2: 2}
	k, burst := 2, 2
	bits := rstpx.GenBetaBlockBits(k, burst)
	// X = 01: blocks encode to multisets {1,1} then {0,1}, whose packets
	// CAN cross burst boundaries into distinguishable wrong groups (an
	// all-equal choice like 10 happens to be permutation-immune even
	// across bursts — the checker correctly finds no violation there).
	x := make([]wire.Bit, 2*bits)
	x[1] = wire.One
	tr, err := rstpx.NewGenBetaTransmitter(lie, k, burst, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rstpx.NewGenBetaReceiver(lie, k, burst)
	if err != nil {
		t.Fatal(err)
	}
	return System{
		X: x, T: tr, R: rc,
		ForkT:   func(n Node) (Node, error) { return n.(*rstpx.GenBetaTransmitter).Fork() },
		ForkR:   func(n Node) (Node, error) { return n.(*rstpx.GenBetaReceiver).Fork() },
		Written: func(n Node) []wire.Bit { return n.(*rstpx.GenBetaReceiver).WrittenBits() },
		// ...but explored against the real window [0, 2].
		C1: 1, C2: 1, D1: 0, D2: 2,
	}
}

// TestBetaWaitIsLoadBearing: the zero-wait protocol is caught by the
// checker — the exact failure the Section 7 slack analysis predicts.
func TestBetaWaitIsLoadBearing(t *testing.T) {
	res, err := Check(zeroWaitSystem(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected the zero-wait protocol to fail on a slack-2 window")
	}
	t.Logf("counterexample (%d steps): %s", len(res.Violation.Path), res.Violation.Error())
}

// TestGenBetaSafeOnItsOwnWindow: the same zero-wait protocol IS safe when
// the channel honours the window it was built for.
func TestGenBetaSafeOnItsOwnWindow(t *testing.T) {
	p := rstpx.GenParams{TC1: 1, TC2: 1, RC1: 1, RC2: 1, D1: 2, D2: 2}
	k, burst := 2, 2
	bits := rstpx.GenBetaBlockBits(k, burst)
	x := make([]wire.Bit, 2*bits)
	x[1] = wire.One
	tr, err := rstpx.NewGenBetaTransmitter(p, k, burst, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rstpx.NewGenBetaReceiver(p, k, burst)
	if err != nil {
		t.Fatal(err)
	}
	sys := System{
		X: x, T: tr, R: rc,
		ForkT:   func(n Node) (Node, error) { return n.(*rstpx.GenBetaTransmitter).Fork() },
		ForkR:   func(n Node) (Node, error) { return n.(*rstpx.GenBetaReceiver).Fork() },
		Written: func(n Node) []wire.Bit { return n.(*rstpx.GenBetaReceiver).WrittenBits() },
		C1:      1, C2: 1, D1: 2, D2: 2,
	}
	res, err := Check(sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation on the honest window: %v", res.Violation)
	}
	if !res.CompletionReachable {
		t.Fatal("Y = X never reached")
	}
}

// TestGenAlphaSafeOnWindow: the generalised simple protocol, exhaustively
// verified on a genuine window [d1, d2] with d1 > 0 — its spacing covers
// only the slack, and that is enough.
func TestGenAlphaSafeOnWindow(t *testing.T) {
	p := rstpx.GenParams{TC1: 1, TC2: 2, RC1: 1, RC2: 2, D1: 2, D2: 4}
	x, _ := wire.ParseBits("10")
	tr, err := rstpx.NewGenAlphaTransmitter(p, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rstp.NewAlphaReceiver(rstp.Params{C1: p.RC1, C2: p.RC2, D: p.D2})
	if err != nil {
		t.Fatal(err)
	}
	sys := System{
		X: x, T: tr, R: rc,
		ForkT:   func(n Node) (Node, error) { return n.(*rstpx.GenAlphaTransmitter).Fork() },
		ForkR:   func(n Node) (Node, error) { return n.(*rstp.AlphaReceiver).Fork() },
		Written: func(n Node) []wire.Bit { return n.(*rstp.AlphaReceiver).WrittenBits() },
		C1:      p.TC1, C2: p.TC2, D1: p.D1, D2: p.D2,
	}
	res, err := Check(sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
	if !res.CompletionReachable {
		t.Fatal("Y = X never reached")
	}
	// And the slack really is load-bearing: the same protocol on the full
	// window [0, d2] (more reordering than it was built for) fails.
	tr2, err := rstpx.NewGenAlphaTransmitter(p, x)
	if err != nil {
		t.Fatal(err)
	}
	rc2, err := rstp.NewAlphaReceiver(rstp.Params{C1: p.RC1, C2: p.RC2, D: p.D2})
	if err != nil {
		t.Fatal(err)
	}
	sys.T, sys.R = tr2, rc2
	sys.D1 = 0
	res, err = Check(sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected the slack-tuned protocol to fail on the full window")
	}
	t.Logf("full-window counterexample: %s", res.Violation.Error())
}

func TestCheckValidation(t *testing.T) {
	if _, err := Check(System{}); err == nil {
		t.Error("incomplete system should fail")
	}
	sys := alphaSystem(t, rstp.Params{C1: 1, C2: 1, D: 2}, "1")
	sys.C1 = 0
	if _, err := Check(sys); err == nil {
		t.Error("c1 = 0 should fail")
	}
	sys = alphaSystem(t, rstp.Params{C1: 1, C2: 1, D: 2}, "1")
	sys.D1 = 3
	sys.D2 = 2
	if _, err := Check(sys); err == nil {
		t.Error("d1 > d2 should fail")
	}
	sys = alphaSystem(t, rstp.Params{C1: 1, C2: 2, D: 3}, "10")
	sys.MaxStates = 3
	if _, err := Check(sys); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("tiny cap should trip: %v", err)
	}
}
