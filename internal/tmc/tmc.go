// Package tmc is an explicit-state model checker for the *timed*
// semantics: it exhaustively explores every behaviour permitted by the
// RSTP timing assumptions — every step schedule with gaps in [c1, c2],
// every per-packet delivery time within the window [d1, d2], and every
// same-tick event interleaving — and checks prefix safety in each
// reachable state.
//
// This is the strongest verification artifact in the repository for the
// time-clocked protocols A^α and A^β, whose correctness cannot be checked
// untimed (internal/mc demonstrates they fail there): for small instances
// it replaces schedule sampling with full coverage of good(A).
//
// # Semantics
//
// Time is integer ticks. Each process carries a timer (ticks until its
// next local step); when the timer hits 0 the process fires its enabled
// local action (if any) and nondeterministically re-arms with any gap in
// [c1, c2] — or parks forever if it is quiescent (sound for this
// repository's automata, whose quiescence is permanent). Each sent packet
// becomes a flight with a delivery window: it may arrive once its age
// reaches d1 and must arrive before its age exceeds d2.
//
// Deliveries are events; several may share a tick, and the checker
// explores all event orders consistent with the channel convention the
// paper's proofs (and internal/sim) use: two same-direction packets whose
// arrival times coincide are received in send order. Operationally: a
// flight may be delivered now only if every earlier-sent same-direction
// flight still in transit can arrive at a strictly later tick, and
// delivering it pushes those flights' earliest arrival past the current
// tick.
package tmc

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// Node is an explorable process automaton with a canonical state key.
type Node interface {
	ioa.Automaton
	// Snapshot returns a canonical key of the node's mutable state.
	Snapshot() string
}

// System describes the timed composition to explore.
type System struct {
	// X is the input; the property is "Written(R) is always a prefix of
	// X", plus reachability of Written(R) = X.
	X []wire.Bit
	// T and R are the processes in their initial states.
	T, R Node
	// ForkT and ForkR deep-copy a node.
	ForkT, ForkR func(Node) (Node, error)
	// Written extracts Y from the receiver.
	Written func(Node) []wire.Bit
	// C1, C2 bound both processes' step gaps.
	C1, C2 int64
	// D1, D2 bound every packet's delivery delay.
	D1, D2 int64
	// MaxStates caps the exploration (default 1 << 22).
	MaxStates int
}

// Validate checks the timing constants.
func (s *System) Validate() error {
	if s.T == nil || s.R == nil || s.ForkT == nil || s.ForkR == nil || s.Written == nil {
		return fmt.Errorf("tmc: incomplete system")
	}
	if s.C1 < 1 || s.C2 < s.C1 {
		return fmt.Errorf("tmc: need 0 < c1 <= c2, got %d, %d", s.C1, s.C2)
	}
	if s.D1 < 0 || s.D2 < s.D1 {
		return fmt.Errorf("tmc: need 0 <= d1 <= d2, got %d, %d", s.D1, s.D2)
	}
	return nil
}

// Result reports the exploration outcome.
type Result struct {
	// States and Transitions size the explored space.
	States, Transitions int
	// CompletionReachable reports whether some state has Y = X.
	CompletionReachable bool
	// Violation is the first safety violation, nil if none.
	Violation *Violation
}

// Violation is a safety failure with its witness.
type Violation struct {
	// Msg describes the failure.
	Msg string
	// Path is the event-label trace from the initial state.
	Path []string
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("tmc: %s (path: %s)", v.Msg, strings.Join(v.Path, " -> "))
}

// flight is one in-transit packet.
type flight struct {
	p         wire.Packet
	remaining int64 // must deliver while remaining >= 0
	earliest  int64 // may deliver only when earliest == 0
}

const parked = int64(-1)

// state is one timed configuration. Flights are kept per direction in
// send order, which is canonical.
type state struct {
	t, r           Node
	tTimer, rTimer int64
	tr, rt         []flight // in send order
}

func flightsKey(fs []flight) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = fmt.Sprintf("%d/%d/%d:%d", f.p.Kind, f.p.Symbol, f.remaining, f.earliest)
	}
	return strings.Join(parts, ",")
}

func (s *state) key() string {
	return fmt.Sprintf("%s || %s || tt=%d rt=%d || tr[%s] rt[%s]",
		s.t.Snapshot(), s.r.Snapshot(), s.tTimer, s.rTimer, flightsKey(s.tr), flightsKey(s.rt))
}

func (s *state) fork(sys *System) (*state, error) {
	t, err := sys.ForkT(s.t)
	if err != nil {
		return nil, err
	}
	r, err := sys.ForkR(s.r)
	if err != nil {
		return nil, err
	}
	return &state{
		t: t, r: r,
		tTimer: s.tTimer, rTimer: s.rTimer,
		tr: append([]flight(nil), s.tr...),
		rt: append([]flight(nil), s.rt...),
	}, nil
}

type successor struct {
	label string
	next  *state
}

// deliverable reports whether flights[i] may be delivered now: its lower
// window has passed and no earlier-sent flight would be overtaken within
// this tick (every earlier flight must be able to arrive strictly later).
func deliverable(fs []flight, i int) bool {
	if fs[i].earliest > 0 {
		return false
	}
	for j := 0; j < i; j++ {
		if fs[j].remaining < 1 {
			return false
		}
	}
	return true
}

// expand returns every timed move from s.
func (sys *System) expand(s *state) ([]successor, error) {
	var out []successor

	// Process steps fire exactly when their timer reaches 0.
	step := func(who string) error {
		n, err := s.fork(sys)
		if err != nil {
			return err
		}
		node := n.t
		if who == "r" {
			node = n.r
		}
		label := who + ":(quiescent)"
		if act, ok := node.NextLocal(); ok {
			if err := node.Apply(act); err != nil {
				return fmt.Errorf("tmc: %s step %v: %w", who, act, err)
			}
			label = who + ":" + act.String()
			if send, isSend := act.(wire.Send); isSend {
				fl := flight{p: send.P, remaining: sys.D2, earliest: sys.D1}
				if send.Dir == wire.TtoR {
					n.tr = append(n.tr, fl)
				} else {
					n.rt = append(n.rt, fl)
				}
			}
			// Re-arm with every legal gap.
			for g := sys.C1; g <= sys.C2; g++ {
				child, err := n.fork(sys)
				if err != nil {
					return err
				}
				if who == "t" {
					child.tTimer = g
				} else {
					child.rTimer = g
				}
				out = append(out, successor{label: fmt.Sprintf("%s (gap %d)", label, g), next: child})
			}
			return nil
		}
		// Quiescent: park the clock (sound: quiescence is permanent for
		// these automata).
		if who == "t" {
			n.tTimer = parked
		} else {
			n.rTimer = parked
		}
		out = append(out, successor{label: label, next: n})
		return nil
	}
	if s.tTimer == 0 {
		if err := step("t"); err != nil {
			return nil, err
		}
	}
	if s.rTimer == 0 {
		if err := step("r"); err != nil {
			return nil, err
		}
	}

	// Deliveries.
	deliver := func(dirName string, fs []flight, i int, apply func(n *state, p wire.Packet) error, strip func(n *state, i int)) error {
		n, err := s.fork(sys)
		if err != nil {
			return err
		}
		if err := apply(n, fs[i].p); err != nil {
			return fmt.Errorf("tmc: deliver %s %v: %w", dirName, fs[i].p, err)
		}
		strip(n, i)
		out = append(out, successor{label: "chan:" + dirName + " " + fs[i].p.String(), next: n})
		return nil
	}
	for i := range s.tr {
		if !deliverable(s.tr, i) {
			continue
		}
		if i > 0 && s.tr[i].p == s.tr[i-1].p && s.tr[i].remaining == s.tr[i-1].remaining && s.tr[i].earliest == s.tr[i-1].earliest && deliverable(s.tr, i-1) {
			continue // identical move
		}
		err := deliver("t->r", s.tr, i,
			func(n *state, p wire.Packet) error {
				return n.r.Apply(wire.Recv{Dir: wire.TtoR, P: p})
			},
			func(n *state, i int) {
				// Earlier-sent flights may no longer arrive this tick.
				for j := 0; j < i; j++ {
					if n.tr[j].earliest < 1 {
						n.tr[j].earliest = 1
					}
				}
				n.tr = append(append([]flight(nil), n.tr[:i]...), n.tr[i+1:]...)
			})
		if err != nil {
			return nil, err
		}
	}
	for i := range s.rt {
		if !deliverable(s.rt, i) {
			continue
		}
		if i > 0 && s.rt[i].p == s.rt[i-1].p && s.rt[i].remaining == s.rt[i-1].remaining && s.rt[i].earliest == s.rt[i-1].earliest && deliverable(s.rt, i-1) {
			continue
		}
		err := deliver("r->t", s.rt, i,
			func(n *state, p wire.Packet) error {
				return n.t.Apply(wire.Recv{Dir: wire.RtoT, P: p})
			},
			func(n *state, i int) {
				for j := 0; j < i; j++ {
					if n.rt[j].earliest < 1 {
						n.rt[j].earliest = 1
					}
				}
				n.rt = append(append([]flight(nil), n.rt[:i]...), n.rt[i+1:]...)
			})
		if err != nil {
			return nil, err
		}
	}

	// Advance time by one tick: only when nothing is forced now.
	mustAct := s.tTimer == 0 || s.rTimer == 0
	for _, f := range s.tr {
		if f.remaining == 0 {
			mustAct = true
		}
	}
	for _, f := range s.rt {
		if f.remaining == 0 {
			mustAct = true
		}
	}
	if !mustAct {
		n, err := s.fork(sys)
		if err != nil {
			return nil, err
		}
		tick := func(v int64) int64 {
			if v > 0 {
				return v - 1
			}
			return v // parked stays parked; 0 handled above
		}
		n.tTimer = tick(n.tTimer)
		n.rTimer = tick(n.rTimer)
		for i := range n.tr {
			n.tr[i].remaining--
			if n.tr[i].earliest > 0 {
				n.tr[i].earliest--
			}
		}
		for i := range n.rt {
			n.rt[i].remaining--
			if n.rt[i].earliest > 0 {
				n.rt[i].earliest--
			}
		}
		out = append(out, successor{label: "tick", next: n})
	}
	return out, nil
}

// Check explores the full timed state space breadth-first.
func Check(sys System) (*Result, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if sys.MaxStates == 0 {
		sys.MaxStates = 1 << 22
	}
	initial := &state{t: sys.T, r: sys.R} // both step at time 0
	res := &Result{States: 1}

	type meta struct {
		parent string
		label  string
	}
	seen := map[string]meta{initial.key(): {}}
	pathTo := func(k string) []string {
		var labels []string
		for k != "" {
			m := seen[k]
			if m.label == "" {
				break
			}
			labels = append(labels, m.label)
			k = m.parent
		}
		for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
			labels[i], labels[j] = labels[j], labels[i]
		}
		return labels
	}
	check := func(s *state, k string) *Violation {
		y := sys.Written(s.r)
		if len(y) > len(sys.X) {
			return &Violation{Msg: fmt.Sprintf("|Y| = %d exceeds |X| = %d", len(y), len(sys.X)), Path: pathTo(k)}
		}
		for i := range y {
			if y[i] != sys.X[i] {
				return &Violation{
					Msg:  fmt.Sprintf("Y[%d] = %v but X[%d] = %v (Y=%s)", i, y[i], i, sys.X[i], wire.BitsToString(y)),
					Path: pathTo(k),
				}
			}
		}
		if len(y) == len(sys.X) {
			res.CompletionReachable = true
		}
		return nil
	}
	if v := check(initial, initial.key()); v != nil {
		res.Violation = v
		return res, nil
	}

	queue := []*state{initial}
	keys := []string{initial.key()}
	for len(queue) > 0 {
		s, k := queue[0], keys[0]
		queue, keys = queue[1:], keys[1:]

		succs, err := sys.expand(s)
		if err != nil {
			// A reachable Apply failure (e.g. a burst decoding to a
			// non-codeword) is itself a violation with a witness path.
			res.Violation = &Violation{Msg: err.Error(), Path: pathTo(k)}
			return res, nil
		}
		for _, succ := range succs {
			res.Transitions++
			nk := succ.next.key()
			if nk == k {
				continue
			}
			if _, dup := seen[nk]; dup {
				continue
			}
			seen[nk] = meta{parent: k, label: succ.label}
			res.States++
			if res.States > sys.MaxStates {
				return res, fmt.Errorf("tmc: state space exceeds %d states", sys.MaxStates)
			}
			if v := check(succ.next, nk); v != nil {
				res.Violation = v
				return res, nil
			}
			queue = append(queue, succ.next)
			keys = append(keys, nk)
		}
	}
	return res, nil
}
