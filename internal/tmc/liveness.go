package tmc

import (
	"fmt"

	"repro/internal/wire"
)

// WorstCompletion computes, by exhaustive search over the timed state
// space, the latest tick at which the adversary can still be holding the
// run short of completion (Y = X) — the exact worst-case completion time
// for the instance. It simultaneously verifies liveness: every maximal
// adversary strategy reaches completion (a reachable pre-completion cycle
// would let the adversary stall forever, and is reported as an error).
//
// This is the other half of good(A): Check verifies safety in every
// reachable state; WorstCompletion verifies the "eventually Y = X"
// condition against every legal timing, and yields the number the effort
// bounds are about.
func WorstCompletion(sys System) (int64, error) {
	if err := sys.Validate(); err != nil {
		return 0, err
	}
	if sys.MaxStates == 0 {
		sys.MaxStates = 1 << 22
	}
	initial := &state{t: sys.T, r: sys.R}

	const (
		colorGray = 1
		colorDone = 2
	)
	var (
		color = make(map[string]int)
		memo  = make(map[string]int64)
	)

	completed := func(s *state) (bool, error) {
		y := sys.Written(s.r)
		if len(y) > len(sys.X) {
			return false, fmt.Errorf("tmc: |Y| exceeds |X| during completion search")
		}
		for i := range y {
			if y[i] != sys.X[i] {
				return false, fmt.Errorf("tmc: safety violation during completion search (Y=%s)", wire.BitsToString(y))
			}
		}
		return len(y) == len(sys.X), nil
	}

	// Iterative DFS computing the longest (in ticks) path to completion.
	var rec func(s *state, k string, depth int) (int64, error)
	rec = func(s *state, k string, depth int) (int64, error) {
		if v, ok := memo[k]; ok {
			return v, nil
		}
		if color[k] == colorGray {
			return 0, fmt.Errorf("tmc: liveness violation: the adversary can cycle without completing (state %s)", k)
		}
		if len(color) > sys.MaxStates {
			return 0, fmt.Errorf("tmc: state space exceeds %d states", sys.MaxStates)
		}
		done, err := completed(s)
		if err != nil {
			return 0, err
		}
		if done {
			memo[k] = 0
			color[k] = colorDone
			return 0, nil
		}
		color[k] = colorGray
		succs, err := sys.expand(s)
		if err != nil {
			return 0, err
		}
		var (
			worst    int64
			anyMove  bool
			selfOnly = true
		)
		for _, succ := range succs {
			nk := succ.next.key()
			if nk == k {
				continue // idle self-loop: no progress, no time
			}
			selfOnly = false
			cost := int64(0)
			if succ.label == "tick" {
				cost = 1
			}
			sub, err := rec(succ.next, nk, depth+1)
			if err != nil {
				return 0, err
			}
			if cost+sub > worst {
				worst = cost + sub
			}
			anyMove = true
		}
		if !anyMove {
			if selfOnly {
				return 0, fmt.Errorf("tmc: deadlock before completion (state %s)", k)
			}
			return 0, fmt.Errorf("tmc: stuck before completion (state %s)", k)
		}
		color[k] = colorDone
		memo[k] = worst
		return worst, nil
	}
	return rec(initial, initial.key(), 0)
}
