package tmc

import (
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestAlphaWorstCompletionExact: the exhaustive worst-case completion
// time matches the closed form (n-1)·S·c2 + d + c2 — the last message is
// sent at the slowest pace, delayed the full d, and written at the
// receiver's latest next step.
func TestAlphaWorstCompletionExact(t *testing.T) {
	tests := []struct {
		p rstp.Params
		x string
	}{
		{p: rstp.Params{C1: 1, C2: 2, D: 3}, x: "10"},
		{p: rstp.Params{C1: 1, C2: 1, D: 2}, x: "101"},
	}
	for _, tt := range tests {
		x, _ := wire.ParseBits(tt.x)
		sys := alphaSystem(t, tt.p, tt.x)
		worst, err := WorstCompletion(sys)
		if err != nil {
			t.Fatalf("%v: %v", tt.p, err)
		}
		n := int64(len(x))
		s := int64(tt.p.CeilSteps1())
		want := (n-1)*s*tt.p.C2 + tt.p.D + tt.p.C2
		if worst != want {
			t.Errorf("%v |X|=%d: worst completion %d, want %d", tt.p, n, worst, want)
		}
	}
}

// TestBetaWorstCompletionDominatesSimulation: the exhaustive worst case is
// at least what the worst deterministic schedule achieves in simulation,
// and the protocol is live (the search terminates without finding a
// stalling cycle).
func TestBetaWorstCompletionDominatesSimulation(t *testing.T) {
	p := rstp.Params{C1: 1, C2: 1, D: 3}
	k := 2
	xs := "1001"
	x, _ := wire.ParseBits(xs)

	worst, err := WorstCompletion(betaSystem(t, p, k, xs))
	if err != nil {
		t.Fatal(err)
	}

	tr, err := rstp.NewBetaTransmitter(p, k, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rstp.NewBetaReceiver(p, k)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Simulate(sim.Config{
		C1: p.C1, C2: p.C2, D: p.D,
		Transmitter: sim.Process{Auto: tr, Policy: sim.FixedGap{C: p.C2}},
		Receiver:    sim.Process{Auto: rc, Policy: sim.FixedGap{C: p.C2}},
		Delay:       chanmodel.MaxDelay{D: p.D},
		Stop:        sim.StopAfterWrites(len(x)),
	})
	if err != nil {
		t.Fatal(err)
	}
	simDone, ok := run.LastWriteTime()
	if !ok {
		t.Fatal("simulation wrote nothing")
	}
	if worst < simDone {
		t.Errorf("exhaustive worst %d below simulated worst schedule %d", worst, simDone)
	}
	t.Logf("exhaustive worst completion = %d ticks (simulated slow schedule: %d)", worst, simDone)
}

// TestGenBetaZeroWaitNotLive... actually the zero-wait protocol is unsafe
// rather than non-live; WorstCompletion reports the safety failure it
// trips over.
func TestWorstCompletionSurfacesSafetyFailures(t *testing.T) {
	// Reuse the lying zero-wait system from tmc_test.go.
	sys := zeroWaitSystem(t)
	if _, err := WorstCompletion(sys); err == nil {
		t.Fatal("expected the zero-wait protocol to fail during completion search")
	}
}

func TestWorstCompletionValidation(t *testing.T) {
	if _, err := WorstCompletion(System{}); err == nil {
		t.Error("incomplete system should fail")
	}
	sys := alphaSystem(t, rstp.Params{C1: 1, C2: 2, D: 3}, "10")
	sys.MaxStates = 3
	if _, err := WorstCompletion(sys); err == nil {
		t.Error("tiny cap should trip")
	}
}
