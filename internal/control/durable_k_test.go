package control

import (
	"context"
	"testing"

	"repro/internal/journal"
	"repro/internal/rstp"
	"repro/internal/session"
)

// TestDurableKSurvivesRestart is the regression test for the ROADMAP
// gap this PR closes: with a Store configured, the k a session is
// admitted under is persisted ("s<id>/k") and a restarted controller —
// even one whose current default k differs — resumes the session under
// the recorded k instead of collapsing to the configured one.
func TestDurableKSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	b4, b8 := fakeBuilder{"k4"}, fakeBuilder{"k8"}
	ctx := context.Background()

	// First incarnation: only k=8 on offer, so session 1 records k=8.
	s1, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c1 := newCtl(t, func(cfg *Config) {
		cfg.Builders = map[int]session.PairBuilder{8: b8}
		cfg.DefaultK = 8
		cfg.Store = s1
	})
	if err := c1.Admit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := c1.BuilderFor(1); got != session.PairBuilder(b8) {
		t.Fatalf("first run handed out %v, want the k=8 builder", got)
	}
	if raw, ok := s1.Load("s1/k"); !ok || string(raw) != "8" {
		t.Fatalf("store records %q (ok=%v) under s1/k, want \"8\"", raw, ok)
	}
	s1.Close()

	// "Kill-restart": reopen the directory under a controller that now
	// defaults to k=4. Without the persisted record session 1 would be
	// reconstructed under 4, orphaning its k=8 protocol state.
	s2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := newCtl(t, func(cfg *Config) {
		cfg.Builders = map[int]session.PairBuilder{4: b4, 8: b8}
		cfg.DefaultK = 4
		cfg.Store = s2
	})
	if err := c2.Admit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := c2.BuilderFor(1); got != session.PairBuilder(b8) {
		t.Fatalf("restart resumed session 1 with %v, want the recorded k=8 builder", got)
	}
	if st := c2.State(); st.KHistogram["8"] != 1 {
		t.Errorf("restart k histogram = %v, want one admission at k=8", st.KHistogram)
	}
	// A brand-new session still follows the current selection.
	if err := c2.Admit(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if got := c2.BuilderFor(2); got != session.PairBuilder(b4) {
		t.Errorf("fresh session got %v, want the default k=4 builder", got)
	}
	s2.Close()

	// If the recorded k's builder vanished from the candidate set (the
	// operator reconfigured between runs), admission falls back to the
	// current k rather than failing.
	s3, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	c3 := newCtl(t, func(cfg *Config) {
		cfg.Builders = map[int]session.PairBuilder{4: b4}
		cfg.DefaultK = 4
		cfg.Store = s3
	})
	if err := c3.Admit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := c3.BuilderFor(1); got != session.PairBuilder(b4) {
		t.Errorf("orphaned record resumed with %v, want the k=4 fallback", got)
	}
}

// TestStoredKIgnoresGarbage: an unparseable or absurd record reads as
// "no record" — admission proceeds under the current k.
func TestStoredKIgnoresGarbage(t *testing.T) {
	st := rstp.NewMemStore()
	for _, raw := range []string{"", "eight", "-3", "1"} {
		st.Save(kKey(9), []byte(raw))
		if k, ok := storedK(st, 9); ok {
			t.Errorf("storedK accepted %q as %d", raw, k)
		}
	}
	st.Save(kKey(9), []byte("16"))
	if k, ok := storedK(st, 9); !ok || k != 16 {
		t.Errorf("storedK(16) = %d, %v", k, ok)
	}
	if _, ok := storedK(st, 10); ok {
		t.Error("storedK invented a record for an unknown id")
	}
}
