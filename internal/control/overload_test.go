package control

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rstp"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/wire"
)

// bottleneck is a fixed-rate link model: it serves at most Cap frames
// per tick, FIFO, with a one-tick base latency; excess sends queue
// behind earlier ones, so delivery delay grows without bound while the
// offered load exceeds Cap and drains when it falls below — the
// congestion-collapse regime adaptive control exists for. (A real
// DelayPolicy would bound delay by d; overload is exactly the regime
// where that promise breaks.)
type bottleneck struct {
	mu   sync.Mutex
	cap  int64 // frames per tick
	next int64 // next free service slot, in 1/cap-tick units
}

func (b *bottleneck) Name() string { return fmt.Sprintf("bottleneck(cap=%d/tick)", b.cap) }

func (b *bottleneck) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if earliest := (sendTime + 1) * b.cap; b.next < earliest {
		b.next = earliest
	}
	at := b.next / b.cap
	b.next++
	return []int64{at}
}

// soakResult aggregates one overload run.
type soakResult struct {
	attempted   int64 // sessions the dialer opened
	completed   int64 // Y = X within the per-session deadline
	incomplete  int64 // opened but timed out / evicted / retired
	dialRefused int64 // ErrAdmissionRefused at Start
	violations  int64 // prefix-safety failures (must be zero, always)

	mu             sync.Mutex
	firstViolation string
}

// runOverloadSoak drives a 2×-capacity session flood through one
// transport stack — workers concurrent generators against a server
// capped at soakServerSlots receiver slots — for dur, with adaptive
// control on or off, and reports goodput plus the controller's final
// state. Everything seeded; the stack mirrors cmd/rstpserve -adaptive:
// resilient transport over mem, hardened beta sessions, shared registry.
func runOverloadSoak(t testing.TB, adaptive bool, workers int, dur, perSession time.Duration, seed int64) (*soakResult, State) {
	t.Helper()
	const soakServerSlots = 8
	p := ctlParams()
	clock := transport.NewClock(20 * time.Microsecond)
	// The link serves 1 frame/tick: the server's 8 receiver slots fit
	// comfortably (~0.4 frames/tick), the flood's extra transmitters do
	// not — uncontrolled, the queue grows roughly one tick per tick and
	// delivery delay leaves the per-session deadline behind entirely.
	link := &bottleneck{cap: 1}
	mem := transport.NewMem(clock, transport.MemOptions{D: p.D, Delay: link, Buffer: 1 << 12})
	res := transport.NewResilient(mem, clock, transport.ResilientOptions{D: p.D, C1: p.C1, Seed: seed})
	defer res.Close()
	reg := obs.NewRegistry()
	transport.Instrument(reg, res)

	// Candidate alphabets for k-selection. The input length must be a
	// block multiple for every candidate, or a mid-run retune would hand
	// a session an input its builder rejects.
	builders := make(map[int]session.PairBuilder)
	xBits := 1
	for _, k := range []int{4, 8} {
		s, err := rstp.Beta(p, k)
		if err != nil {
			t.Fatal(err)
		}
		builders[k] = rstp.Harden(s, rstp.HardenOptions{})
		xBits = lcm(xBits, s.BlockBits)
	}

	base := session.Config{
		Solution:   builders[4],
		Params:     p,
		Transport:  res,
		Clock:      clock,
		Obs:        reg,
		Buffer:     32,
		TraceLimit: -1,
	}
	srvCfg, dlrCfg := base, base
	srvCfg.MaxSessions = soakServerSlots
	dlrCfg.MaxSessions = 4 * workers

	var ctrl *Controller
	if adaptive {
		var err error
		ctrl, err = New(Config{
			Registry: reg, Clock: clock, Params: p, Proto: "beta",
			Builders: builders, DefaultK: 4,
			Interval: 2 * p.D, Dwell: 8 * p.D, PaceTicks: 16 * p.D,
			Seed:           seed,
			RefuseScale:    8,
			TargetSessions: soakServerSlots,
		})
		if err != nil {
			t.Fatal(err)
		}
		srvCfg.Admission = ctrl
		dlrCfg.Admission = ctrl
	}

	srv, err := session.NewServer(srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	dlr, err := session.NewDialer(dlrCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dlr.Close()

	if ctrl != nil {
		ctrl.Bind(Actuators{
			Active:        func() int64 { return int64(srv.ActiveCount()) },
			SetRTO:        res.SetRTO,
			EvictOldest:   srv.ShedOldest,
			RetireStalled: srv.RetireStalled,
		})
		ctrl.Start()
		defer ctrl.Stop()
	}

	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	r := &soakResult{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1009))
			for ctx.Err() == nil {
				x := wire.RandomBits(xBits, rng.Uint64)
				conn, err := dlr.Start(ctx, x)
				if err != nil {
					if errors.Is(err, session.ErrAdmissionRefused) {
						atomic.AddInt64(&r.dialRefused, 1)
						select {
						case <-time.After(time.Millisecond):
						case <-ctx.Done():
						}
						continue
					}
					return // soak over or dialer closed
				}
				atomic.AddInt64(&r.attempted, 1)
				wctx, wcancel := context.WithTimeout(ctx, perSession)
				rx, werr := srv.WaitWrites(wctx, conn.ID(), len(x))
				wcancel()
				conn.Close()
				if rep, ok := srv.Evict(conn.ID()); ok {
					rx = rep
				}
				if v := session.PrefixCheck(x, rx.Y); v != "" {
					if atomic.AddInt64(&r.violations, 1) == 1 {
						r.mu.Lock()
						r.firstViolation = v
						r.mu.Unlock()
					}
				}
				if werr == nil && rx.Writes == len(x) {
					atomic.AddInt64(&r.completed, 1)
				} else {
					atomic.AddInt64(&r.incomplete, 1)
				}
			}
		}(w)
	}
	wg.Wait()

	var st State
	if ctrl != nil {
		st = ctrl.State()
	}
	if os.Getenv("SOAK_DEBUG") == "1" {
		snap := reg.Snapshot()
		t.Logf("soak debug: ticks=%d sends=%d delivered=%d refused_frames=%d delivery p50/p99=%d/%d margin p50/p99=%d/%d",
			clock.Now(), snap.Counters["rstp_mem_sends_total"], snap.Counters["rstp_mem_delivered_total"],
			snap.Counters["rstp_server_frames_refused_total"],
			snap.Histograms["rstp_transport_delivery_ticks"].P50, snap.Histograms["rstp_transport_delivery_ticks"].P99,
			snap.Histograms["rstp_deadline_margin_ticks"].P50, snap.Histograms["rstp_deadline_margin_ticks"].P99)
	}
	return r, st
}

// fullSoakEnabled gates the long nightly variants behind RSTP_FULL_SOAK.
func fullSoakEnabled() bool { return os.Getenv("RSTP_FULL_SOAK") == "1" }

func lcm(a, b int) int {
	g, x := a, b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}

// TestOverloadRampAdaptiveVsBaseline is the PR-time overload proof: a
// 2×-capacity admission flood (32 generators offering roughly twice
// what the bottleneck link carries, against 8 receiver slots) run twice
// under identical seeds — once uncontrolled, once with the
// adaptive controller — asserting the safety and graceful-degradation
// contract: zero prefix violations anywhere, the controller visibly
// engaged, and adaptive goodput no worse than the uncontrolled baseline.
// The nightly full ramp (TestOverloadRampFull) tightens the comparison
// to strictly better.
func TestOverloadRampAdaptiveVsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak skipped in -short")
	}
	const workers = 32
	dur, per := 1500*time.Millisecond, 150*time.Millisecond

	baseline, _ := runOverloadSoak(t, false, workers, dur, per, 11)
	adaptive, st := runOverloadSoak(t, true, workers, dur, per, 11)

	for _, run := range []struct {
		name string
		r    *soakResult
	}{{"baseline", baseline}, {"adaptive", adaptive}} {
		if run.r.violations != 0 {
			t.Fatalf("%s: %d prefix violations (first: %s) — overload must never corrupt output",
				run.name, run.r.violations, run.r.firstViolation)
		}
	}
	t.Logf("baseline: %d completed / %d attempted (%d incomplete)",
		baseline.completed, baseline.attempted, baseline.incomplete)
	t.Logf("adaptive: %d completed / %d attempted (%d incomplete, %d dial-refused); controller: level=%s ticks=%d paced=%d gated=%d evict=%d retire=%d rto_changes=%d dwell=%v",
		adaptive.completed, adaptive.attempted, adaptive.incomplete,
		adaptive.dialRefused, st.Level, st.Ticks, st.Paced, st.Gated,
		st.Evictions, st.Retires, st.RTOChanges, st.LevelDwellTicks)

	if adaptive.completed == 0 {
		t.Fatal("adaptive run completed no sessions under 2× load")
	}
	if st.Ticks == 0 {
		t.Fatal("controller never ticked")
	}
	engaged := st.Paced+st.Gated+st.DialRefused+st.ServerRefused+st.RTOChanges+st.Evictions+st.Retires > 0 ||
		st.LevelDwellTicks["normal"] < st.Ticks*2*ctlParams().D
	if !engaged {
		t.Errorf("controller never engaged under 2× load: %+v", st)
	}
	if adaptive.completed < baseline.completed {
		t.Errorf("graceful degradation failed: adaptive completed %d < baseline %d",
			adaptive.completed, baseline.completed)
	}
}

// TestOverloadRampFull is the nightly 2× ramp: longer soak, strict
// goodput win and a bounded failure rate. Enable with RSTP_FULL_SOAK=1
// (the nightly CI job does); it is skipped otherwise to keep PR runs
// fast and flake-free.
func TestOverloadRampFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full ramp skipped in -short")
	}
	if !fullSoakEnabled() {
		t.Skip("full 2× ramp runs nightly (set RSTP_FULL_SOAK=1)")
	}
	const workers = 32
	dur, per := 6*time.Second, 200*time.Millisecond

	baseline, _ := runOverloadSoak(t, false, workers, dur, per, 23)
	adaptive, st := runOverloadSoak(t, true, workers, dur, per, 23)

	if baseline.violations != 0 || adaptive.violations != 0 {
		t.Fatalf("prefix violations: baseline=%d adaptive=%d (first: %s%s)",
			baseline.violations, adaptive.violations, baseline.firstViolation, adaptive.firstViolation)
	}
	t.Logf("baseline: %d completed, %d incomplete", baseline.completed, baseline.incomplete)
	t.Logf("adaptive: %d completed, %d incomplete, controller %+v", adaptive.completed, adaptive.incomplete, st)
	if adaptive.completed <= baseline.completed {
		t.Errorf("full ramp: adaptive goodput %d not strictly above baseline %d",
			adaptive.completed, baseline.completed)
	}
	// Bounded deadline-miss rate: the controlled run must not fail more
	// than half of what it admits — admission control exists precisely so
	// admitted work completes.
	if adaptive.incomplete > adaptive.completed {
		t.Errorf("adaptive run failed more sessions (%d) than it completed (%d)",
			adaptive.incomplete, adaptive.completed)
	}
}
