package control

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/rstp"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/wire"
)

func ctlParams() rstp.Params { return rstp.Params{C1: 2, C2: 3, D: 12} }

// fakeBuilder is a named PairBuilder stand-in: k-selection tests only
// need identity, never a working automaton pair.
type fakeBuilder struct{ name string }

func (f fakeBuilder) NewPair(x []wire.Bit) (ioa.Automaton, ioa.Automaton, error) {
	return nil, nil, nil
}
func (f fakeBuilder) String() string { return f.name }

func newCtl(t *testing.T, mut func(*Config)) *Controller {
	t.Helper()
	cfg := Config{
		Registry: obs.NewRegistry(),
		Clock:    transport.NewClock(time.Nanosecond),
		Params:   ctlParams(),
	}
	if mut != nil {
		mut(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func forceLevel(c *Controller, l Level) {
	c.mu.Lock()
	c.ladder.level = l
	c.mu.Unlock()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Clock: transport.NewClock(0), Params: ctlParams()}); err == nil {
		t.Error("nil Registry accepted")
	}
	if _, err := New(Config{Registry: obs.NewRegistry(), Params: ctlParams()}); err == nil {
		t.Error("nil Clock accepted")
	}
	if _, err := New(Config{Registry: obs.NewRegistry(), Clock: transport.NewClock(0)}); err == nil {
		t.Error("zero Params accepted")
	}
}

// TestAdmitRecordsAndForgets walks one ID through the controller's
// session-tracking life cycle: admitted → accepted server-side →
// forgotten → tombstoned (late frames must not respawn it).
func TestAdmitRecordsAndForgets(t *testing.T) {
	c := newCtl(t, nil)
	if err := c.Admit(context.Background(), 7); err != nil {
		t.Fatalf("Admit at normal level: %v", err)
	}
	if !c.AdmitServer(7) {
		t.Error("admitted ID refused server-side")
	}
	if b := c.BuilderFor(7); b != nil {
		t.Errorf("BuilderFor with no candidate builders = %v, want nil", b)
	}
	if !c.AdmitServer(9) {
		t.Error("unknown ID refused at LevelNormal")
	}
	c.Forget(7)
	c.Forget(7) // idempotent
	if c.AdmitServer(7) {
		t.Error("forgotten ID re-admitted: a late frame could respawn a receiver under the wrong k")
	}
	// Re-admission under the same ID (the restart path) clears the stone.
	if err := c.Admit(context.Background(), 7); err != nil {
		t.Fatalf("re-Admit: %v", err)
	}
	if !c.AdmitServer(7) {
		t.Error("re-admitted ID still tombstoned")
	}
}

func TestRefuseLevel(t *testing.T) {
	c := newCtl(t, nil)
	forceLevel(c, LevelRefuse)
	if err := c.Admit(context.Background(), 1); !errors.Is(err, session.ErrAdmissionRefused) {
		t.Fatalf("Admit at refuse level: %v, want ErrAdmissionRefused", err)
	}
	if c.AdmitServer(2) {
		t.Error("unknown server ID admitted at refuse level")
	}
	st := c.State()
	if st.DialRefused != 1 || st.ServerRefused != 1 {
		t.Errorf("refusal counters = %d/%d, want 1/1", st.DialRefused, st.ServerRefused)
	}
}

// TestPacingSeededDeterminism: two controllers with the same seed inject
// exactly the same jittered delays; the seed is the whole story.
func TestPacingSeededDeterminism(t *testing.T) {
	run := func(seed int64) int64 {
		c := newCtl(t, func(cfg *Config) {
			cfg.Seed = seed
			cfg.PaceTicks = 64
		})
		forceLevel(c, LevelPace)
		for id := uint32(1); id <= 100; id++ {
			if err := c.Admit(context.Background(), id); err != nil {
				t.Fatal(err)
			}
		}
		return c.State().PaceTicks
	}
	a, b := run(42), run(42)
	if a != b {
		t.Errorf("same seed, different total pace: %d vs %d ticks", a, b)
	}
	if a == 0 {
		t.Error("pace level injected no delay")
	}
	if c := run(43); c == a {
		t.Errorf("seeds 42 and 43 produced identical jitter (%d ticks over 100 admissions)", a)
	}
}

// margins builds a windowed margin snapshot whose median lands exactly
// on the given bucket bound.
func margins(med int64, n int64) obs.HistogramSnapshot {
	return obs.HistogramSnapshot{
		Count:   n,
		Buckets: []obs.HistogramBucket{{LE: med, Count: n}, {Inf: true, Count: n}},
	}
}

// TestKSelection exercises retuneK against a synthetic bound table:
// healthy windows pick the smallest k whose predicted effort fits the
// δ1·c2 deadline; a measured slowdown scales the prediction and forces
// a larger (cheaper-per-message) alphabet; recovery returns.
func TestKSelection(t *testing.T) {
	b2, b4, b8 := fakeBuilder{"k2"}, fakeBuilder{"k4"}, fakeBuilder{"k8"}
	c := newCtl(t, func(cfg *Config) {
		cfg.Builders = map[int]session.PairBuilder{2: b2, 4: b4, 8: b8}
		cfg.DefaultK = 4
	})
	// Deadline δ1·c2 = 6·3 = 18. Synthetic predictions: k=2 never fits,
	// k=4 fits at slowdown 1, only k=8 fits at slowdown 2.
	c.mu.Lock()
	c.table = []rstp.EffortRow{{K: 2, Upper: 30}, {K: 4, Upper: 16}, {K: 8, Upper: 9}}

	c.retuneK(obs.HistogramSnapshot{}) // empty window: predictions alone
	if c.curK != 4 {
		c.mu.Unlock()
		t.Fatalf("healthy k = %d, want 4 (smallest fitting the deadline)", c.curK)
	}
	// Median margin -14 → median gap 32 → slowdown 32/16 = 2: only
	// 2·Upper(8) = 18 still fits.
	c.retuneK(margins(-14, 10))
	if c.curK != 8 {
		c.mu.Unlock()
		t.Fatalf("overloaded k = %d, want 8", c.curK)
	}
	// Healthy again (median gap 2 < Upper(8)): back to the smallest k.
	c.retuneK(margins(16, 10))
	if c.curK != 4 {
		c.mu.Unlock()
		t.Fatalf("recovered k = %d, want 4", c.curK)
	}
	c.mu.Unlock()

	// Admissions hand out the selected builder and both sides see it.
	if err := c.Admit(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if got := c.BuilderFor(3); got != session.PairBuilder(b4) {
		t.Errorf("BuilderFor(3) = %v, want the k=4 builder", got)
	}
	if st := c.State(); st.KHistogram["4"] != 1 {
		t.Errorf("k histogram = %v, want one admission at k=4", st.KHistogram)
	}
}

func TestRTOForLevel(t *testing.T) {
	c := newCtl(t, nil)
	want := map[Level]int64{
		LevelNormal: 12, LevelPace: 12, LevelRefuse: 9, LevelEvict: 6, LevelRetire: 2,
	}
	for lvl, ticks := range want {
		if got := c.rtoForLevel(lvl); got != ticks {
			t.Errorf("rtoForLevel(%v) = %d, want %d", lvl, got, ticks)
		}
	}
}

// TestTickStallEscalation runs real ticks against an idle registry with
// one live session: consecutive zero-write windows compound the stall
// pressure and climb the ladder; resumed writes reset it and the ladder
// descends.
func TestTickStallEscalation(t *testing.T) {
	c := newCtl(t, func(cfg *Config) {
		cfg.Interval = 1
		cfg.Dwell = 1
	})
	var rtoSeen []int64
	c.Bind(Actuators{
		Active: func() int64 { return 1 },
		SetRTO: func(ticks int64) int64 { rtoSeen = append(rtoSeen, ticks); return ticks },
	})
	for i := 0; i < 6; i++ {
		time.Sleep(time.Microsecond) // the 1ns-tick clock advances past any dwell
		c.tick()
	}
	st := c.State()
	if st.Ticks != 6 {
		t.Fatalf("ticks = %d, want 6", st.Ticks)
	}
	if st.Level == LevelNormal.String() {
		t.Fatalf("six stalled windows left the ladder at normal (pressure %v)", st.Pressure)
	}
	if st.Pressure < 3 {
		t.Errorf("stall pressure %v after 6 silent windows, want compounding >= 3", st.Pressure)
	}
	if len(rtoSeen) != 6 {
		t.Fatalf("SetRTO called %d times, want once per tick", len(rtoSeen))
	}
	if st.RTOChanges == 0 {
		t.Error("escalation changed no RTO target")
	}

	// Output resumes: stall pressure resets and the ladder walks back.
	for i := 0; i < 8; i++ {
		c.writes.Inc()
		time.Sleep(time.Microsecond)
		c.tick()
	}
	if got := c.State(); got.Pressure != 0 || got.Level != LevelNormal.String() {
		t.Errorf("after recovery: level %s pressure %v, want normal/0", got.Level, got.Pressure)
	}
}

// TestStateAndMetricsExposed checks the introspection surface: the
// "control" live hook and the rstp_control_* series rendered through
// the registry's JSON snapshot.
func TestStateAndMetricsExposed(t *testing.T) {
	reg := obs.NewRegistry()
	c := newCtl(t, func(cfg *Config) { cfg.Registry = reg })
	_ = c.Admit(context.Background(), 1)
	snap := reg.Snapshot()
	found := map[string]bool{}
	for name := range snap.Counters {
		found[name] = true
	}
	for name := range snap.Gauges {
		found[name] = true
	}
	for name := range snap.Floats {
		found[name] = true
	}
	for _, name := range []string{
		"rstp_control_level", "rstp_control_pressure", "rstp_control_k",
		"rstp_control_rto_ticks", "rstp_control_ticks_total",
		"rstp_control_paced_total", "rstp_control_pace_ticks_total",
		"rstp_control_gated_total", "rstp_control_gate_ticks_total",
		"rstp_control_dial_refused_total", "rstp_control_server_refused_total",
		"rstp_control_rto_changes_total", "rstp_control_evictions_total",
		"rstp_control_retires_total", "rstp_control_dwell_normal_ticks_total",
		"rstp_control_dwell_retire_ticks_total",
	} {
		if !found[name] {
			t.Errorf("metric %s not registered", name)
		}
	}
	if _, ok := snap.Live["control"]; !ok {
		t.Error("live hook \"control\" not registered")
	}
}

// TestStartStopIdempotent: the lifecycle must survive double calls and
// release a paced admission on Stop.
func TestStartStopIdempotent(t *testing.T) {
	c := newCtl(t, func(cfg *Config) { cfg.PaceTicks = 1 << 40 }) // pace would sleep ~forever
	c.Start()
	c.Start()
	forceLevel(c, LevelPace)
	done := make(chan error, 1)
	go func() {
		done <- c.Admit(context.Background(), 1)
	}()
	time.Sleep(10 * time.Millisecond)
	c.Stop()
	c.Stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("paced admission after Stop: %v, want released nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop left a paced admission sleeping")
	}
}
