package control

import "testing"

func testLadder(dwell int64) Ladder {
	return Ladder{
		Enter: [4]float64{0.25, 1, 2, 4},
		Exit:  [4]float64{0.125, 0.5, 1, 2},
		Dwell: dwell,
	}
}

// TestLadderSingleStepPerDwell drives the ladder through a scripted
// pressure trace and checks the exact level at every step: climbs and
// descents happen one rung at a time, never sooner than Dwell ticks
// after the previous change — including the startup freeze.
func TestLadderSingleStepPerDwell(t *testing.T) {
	l := testLadder(10)
	steps := []struct {
		now      int64
		pressure float64
		want     Level
	}{
		{0, 10, LevelNormal},  // startup dwell: even extreme pressure waits
		{5, 10, LevelNormal},  // still inside the first window
		{10, 10, LevelPace},   // first climb — one rung despite pressure 10
		{15, 10, LevelPace},   // dwell freeze
		{20, 10, LevelRefuse}, // second rung
		{30, 10, LevelEvict},  // third
		{40, 10, LevelRetire}, // top
		{45, 0, LevelRetire},  // pressure gone, but inside the dwell
		{50, 0, LevelEvict},   // descend one rung per window
		{60, 0, LevelRefuse},
		{70, 0, LevelPace},
		{80, 0, LevelNormal},
		{90, 0, LevelNormal}, // floor
	}
	for i, s := range steps {
		if got := l.Update(s.now, s.pressure); got != s.want {
			t.Fatalf("step %d (now=%d p=%v): level %v, want %v", i, s.now, s.pressure, got, s.want)
		}
	}
}

// TestLadderHysteresisBand parks the pressure between a rung's Exit and
// Enter thresholds: the ladder must hold its level indefinitely — the
// band is exactly the flap protection — and only descend once pressure
// falls to the Exit threshold.
func TestLadderHysteresisBand(t *testing.T) {
	l := testLadder(1)
	now := int64(1)
	if got := l.Update(now, 0.3); got != LevelPace {
		t.Fatalf("enter: level %v, want pace", got)
	}
	// 0.2 is below Enter[0]=0.25 but above Exit[0]=0.125: hold forever.
	for i := 0; i < 50; i++ {
		now++
		if got := l.Update(now, 0.2); got != LevelPace {
			t.Fatalf("band step %d: level %v, want pace (no flap inside the band)", i, got)
		}
	}
	now++
	if got := l.Update(now, 0.1); got != LevelNormal {
		t.Fatalf("exit: level %v, want normal", got)
	}
}

// TestLadderNoFlapUnderOscillation feeds a worst-case oscillating
// signal — pressure slamming between 0 and 5 every tick — and verifies
// the two hard invariants the control loop depends on: at most one
// level change inside any Dwell-wide window, and never a move of more
// than one rung.
func TestLadderNoFlapUnderOscillation(t *testing.T) {
	const dwell = 8
	l := testLadder(dwell)
	prev := l.Current()
	changes := []int64{}
	for now := int64(0); now < 400; now++ {
		p := 0.0
		if now%2 == 0 {
			p = 5.0
		}
		got := l.Update(now, p)
		if d := got - prev; d < -1 || d > 1 {
			t.Fatalf("now=%d: level jumped %v -> %v", now, prev, got)
		}
		if got != prev {
			changes = append(changes, now)
		}
		prev = got
	}
	if len(changes) == 0 {
		t.Fatal("ladder never moved under oscillating pressure")
	}
	for i := 1; i < len(changes); i++ {
		if gap := changes[i] - changes[i-1]; gap < dwell {
			t.Fatalf("changes at %d and %d are %d ticks apart, want >= %d",
				changes[i-1], changes[i], gap, dwell)
		}
	}
}

// TestLadderLevelNames pins the metric/summary labels.
func TestLadderLevelNames(t *testing.T) {
	want := map[Level]string{
		LevelNormal: "normal", LevelPace: "pace", LevelRefuse: "refuse",
		LevelEvict: "evict", LevelRetire: "retire",
	}
	for lvl, name := range want {
		if lvl.String() != name {
			t.Errorf("Level(%d).String() = %q, want %q", lvl, lvl.String(), name)
		}
	}
	if numLevels != len(want) {
		t.Errorf("numLevels = %d, want %d", numLevels, len(want))
	}
}
