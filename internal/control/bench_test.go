package control

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/benchmatrix"
	"repro/internal/obs"
	"repro/internal/rstp"
	"repro/internal/session"
	"repro/internal/transport"
)

// BenchmarkControlTick measures one full control-loop iteration — sensor
// snapshots, windowed pressure, the ladder step, k retune and the RTO
// push — against a registry with live margin data. This is the
// controller's entire steady-state overhead: it runs once per Interval
// (default 8·d ticks), so per-tick cost here is the whole price of
// adaptive mode.
func BenchmarkControlTick(b *testing.B) {
	reg := obs.NewRegistry()
	p := ctlParams()
	s4, err := rstp.Beta(p, 4)
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(Config{
		Registry: reg, Clock: transport.NewClock(time.Nanosecond), Params: p,
		Builders: map[int]session.PairBuilder{4: s4}, DefaultK: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	c.Bind(Actuators{
		Active: func() int64 { return 4 },
		SetRTO: func(t int64) int64 { return t },
	})
	// Seed the sensors so every tick windows a realistic distribution.
	for i := int64(-20); i < 40; i++ {
		c.marginHist.Observe(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.writes.Inc() // keeps the stall sensor in its live branch
		c.marginHist.Observe(int64(i%40) - 8)
		c.tick()
	}
}

// TestControlBenchGuard runs the tick benchmark programmatically and —
// when BENCH_CONTROL_OUT names a file — measures controlled-vs-baseline
// goodput at 1×, 1.5× and 2× of the soak's nominal admission rate,
// writing the BENCH_control.json artifact CI archives alongside
// BENCH_serve.json and BENCH_obs.json.
func TestControlBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark guard runs in the full suite and the dedicated CI step")
	}
	res := testing.Benchmark(BenchmarkControlTick)
	if res.N == 0 {
		t.Skip("benchmarks disabled in this run")
	}
	// The loop fires every Interval (8·d = 96 ticks by default); a tick
	// that cost anywhere near a microsecond would still be invisible next
	// to a single session's work. Guard the order of magnitude.
	if perOp := res.NsPerOp(); perOp > 200_000 {
		t.Fatalf("control tick costs %d ns/op — an order of magnitude over budget", perOp)
	}
	out := os.Getenv("BENCH_CONTROL_OUT")
	if out == "" {
		return
	}

	// Goodput sweep: the 2× overload soak shape at three offered loads.
	// 16 workers ≈ the bottleneck link's capacity (1×).
	type point struct {
		Load               string `json:"load"`
		Workers            int    `json:"workers"`
		BaselineCompleted  int64  `json:"baseline_completed"`
		BaselineIncomplete int64  `json:"baseline_incomplete"`
		AdaptiveCompleted  int64  `json:"adaptive_completed"`
		AdaptiveIncomplete int64  `json:"adaptive_incomplete"`
		AdaptiveRefused    int64  `json:"adaptive_dial_refused"`
	}
	var sweep []point
	for _, lp := range []struct {
		load    string
		workers int
	}{{"1x", 16}, {"1.5x", 24}, {"2x", 32}} {
		dur, per := 800*time.Millisecond, 150*time.Millisecond
		base, _ := runOverloadSoak(t, false, lp.workers, dur, per, 7)
		adpt, _ := runOverloadSoak(t, true, lp.workers, dur, per, 7)
		if base.violations != 0 || adpt.violations != 0 {
			t.Fatalf("%s sweep: prefix violations baseline=%d adaptive=%d",
				lp.load, base.violations, adpt.violations)
		}
		sweep = append(sweep, point{
			Load: lp.load, Workers: lp.workers,
			BaselineCompleted: base.completed, BaselineIncomplete: base.incomplete,
			AdaptiveCompleted: adpt.completed, AdaptiveIncomplete: adpt.incomplete,
			AdaptiveRefused: adpt.dialRefused,
		})
	}

	payload := map[string]any{
		"schema":             "rstp-bench-control/v1",
		"meta":               benchmatrix.NewMeta("rstp-bench-control/v1", time.Now().UTC().Format(time.RFC3339)),
		"benchmark":          "BenchmarkControlTick",
		"iterations":         res.N,
		"tick_ns_per_op":     res.NsPerOp(),
		"tick_allocs_per_op": res.AllocsPerOp(),
		"tick_bytes_per_op":  res.AllocedBytesPerOp(),
		"goodput_sweep":      sweep,
	}
	raw, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
	t.Logf("wrote %s: %s", out, raw)
}
