package control

import "fmt"

// Level is one rung of the shed-escalation ladder, ordered by severity.
// The ladder never jumps: it climbs and descends one rung at a time, at
// most one change per dwell window, so the policy cannot flap between
// "business as usual" and "evict everything" on a noisy signal.
type Level int

const (
	// LevelNormal applies no control: admissions flow untouched.
	LevelNormal Level = iota
	// LevelPace delays new admissions by a jittered pacing interval, so
	// load is shaped before anything is turned away.
	LevelPace
	// LevelRefuse turns brand-new sessions away outright (dialer Admit
	// and server spawn both), while admitted sessions run to completion.
	LevelRefuse
	// LevelEvict additionally force-retires the longest-idle session each
	// control tick, reclaiming capacity from the least active work.
	LevelEvict
	// LevelRetire is the last rung: the session with the least recent
	// output progress is force-retired (a watchdog verdict on demand) —
	// the move of last resort when nothing is completing at all.
	LevelRetire
)

// numLevels counts the ladder's rungs, LevelNormal included.
const numLevels = int(LevelRetire) + 1

// String names the level for metrics, summaries and logs.
func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelPace:
		return "pace"
	case LevelRefuse:
		return "refuse"
	case LevelEvict:
		return "evict"
	case LevelRetire:
		return "retire"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Ladder is the escalation hysteresis state machine: a pure, lock-free
// value (the Controller serialises access) mapping a scalar pressure
// signal onto a Level with three flap defenses —
//
//   - split thresholds: rung i+1 is entered at pressure >= Enter[i] but
//     only left at pressure <= Exit[i], so a signal hovering at a
//     threshold cannot toggle the level;
//   - dwell time: after any change the level is frozen for Dwell ticks,
//     bounding the change rate to one per window by construction;
//   - single-step moves: however hard the pressure spikes, the ladder
//     climbs one rung per change, giving each milder remedy one dwell
//     window to work before the next escalation.
type Ladder struct {
	// Enter[i] is the pressure at or above which level i+1 becomes the
	// escalation target; Exit[i] the pressure at or below which level i+1
	// de-escalates. Enter must be ascending and Exit[i] < Enter[i].
	Enter [numLevels - 1]float64
	Exit  [numLevels - 1]float64
	// Dwell is the minimum tick gap between consecutive level changes.
	Dwell int64

	level      Level
	lastChange int64
}

// Current returns the rung without advancing the machine.
func (l *Ladder) Current() Level { return l.level }

// Update advances the ladder one observation: now is the current tick,
// pressure the scalar overload signal (0 = healthy). It returns the
// (possibly unchanged) level after the step.
func (l *Ladder) Update(now int64, pressure float64) Level {
	target := l.target(pressure)
	if target == l.level || now-l.lastChange < l.Dwell {
		return l.level
	}
	if target > l.level {
		l.level++
	} else {
		l.level--
	}
	l.lastChange = now
	return l.level
}

// target resolves the thresholds with hysteresis relative to the current
// level: escalate toward the highest rung whose Enter threshold the
// pressure meets; de-escalate one rung only once pressure falls to the
// current rung's Exit threshold; otherwise hold.
func (l *Ladder) target(pressure float64) Level {
	up := LevelNormal
	for i := range l.Enter {
		if pressure >= l.Enter[i] {
			up = Level(i + 1)
		}
	}
	if up > l.level {
		return up
	}
	if l.level > LevelNormal && pressure <= l.Exit[l.level-1] {
		return l.level - 1
	}
	return l.level
}
