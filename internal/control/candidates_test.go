package control

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/rstp"
	"repro/internal/session"
)

// candCtl builds a controller with one native beta row (k=4) plus
// cross-family candidates, over a synthetic bound table: deadline
// δ1·c2 = 18, native Upper(4) = 16, gamma Upper = 8, rateless Upper = 5.
func candCtl(t *testing.T, mut func(*Config)) (*Controller, session.PairBuilder, session.PairBuilder, session.PairBuilder) {
	t.Helper()
	bBeta := fakeBuilder{"beta4"}
	bGamma := fakeBuilder{"gamma4"}
	bRl := fakeBuilder{"rateless4"}
	c := newCtl(t, func(cfg *Config) {
		cfg.Builders = map[int]session.PairBuilder{4: bBeta}
		cfg.DefaultK = 4
		cfg.Candidates = []Candidate{
			{Proto: "rateless", K: 4, Builder: bRl, Lower: 1, Upper: 5},
			{Proto: "gamma", K: 4, Builder: bGamma, Lower: 1, Upper: 8},
		}
		if mut != nil {
			mut(cfg)
		}
	})
	c.mu.Lock()
	c.table = []rstp.EffortRow{{K: 4, Upper: 16}}
	c.mu.Unlock()
	return c, bBeta, bGamma, bRl
}

func TestCandidateValidation(t *testing.T) {
	base := func() Config {
		return Config{Registry: obs.NewRegistry(), Clock: newCtl(t, nil).cfg.Clock, Params: ctlParams()}
	}
	cfg := base()
	cfg.Candidates = []Candidate{{Proto: "gamma", K: 4, Upper: 8}}
	if _, err := New(cfg); err == nil {
		t.Error("accepted a candidate without a builder")
	}
	cfg = base()
	cfg.Candidates = []Candidate{{Proto: "beta", K: 4, Builder: fakeBuilder{"b"}, Upper: 8}}
	if _, err := New(cfg); err == nil {
		t.Error("accepted a same-family candidate (belongs in Builders)")
	}
	cfg = base()
	cfg.Candidates = []Candidate{{Proto: "gamma", K: 1, Builder: fakeBuilder{"b"}, Upper: 8}}
	if _, err := New(cfg); err == nil {
		t.Error("accepted k=1")
	}
	cfg = base()
	cfg.Candidates = []Candidate{{Proto: "gamma", K: 4, Builder: fakeBuilder{"b"}}}
	if _, err := New(cfg); err == nil {
		t.Error("accepted a candidate with no upper bound")
	}
}

// TestCrossFamilySelection: the controller leaves the native family
// only when no native k fits the scaled deadline, prefers the most
// expensive (smallest-alphabet-like) candidate that fits, moves freely
// inside the candidate set, and returns once native fits again.
func TestCrossFamilySelection(t *testing.T) {
	c, bBeta, bGamma, bRl := candCtl(t, func(cfg *Config) { cfg.Dwell = 1 })
	c.mu.Lock()

	c.retuneK(obs.HistogramSnapshot{})
	if c.sel != nil {
		c.mu.Unlock()
		t.Fatalf("healthy window left the native family: %v", c.sel.label())
	}
	// Median gap 32 → slowdown 2 vs Upper(4)=16: native 32 > 18 fails,
	// gamma 16 <= 18 fits (tried before rateless: larger Upper first).
	c.lastSwitch = -(1 << 40)
	c.retuneK(margins(-14, 10))
	if c.sel == nil || c.sel.Proto != "gamma" {
		c.mu.Unlock()
		t.Fatalf("overload did not select gamma: %+v", c.sel)
	}
	// Deeper slowdown (median gap 24 vs gamma's Upper 8 → slow 3):
	// gamma 24 > 18 fails, rateless 15 fits. Moves inside the candidate
	// set are immediate — no dwell needed.
	c.retuneK(margins(-6, 10))
	if c.sel == nil || c.sel.Proto != "rateless" {
		c.mu.Unlock()
		t.Fatalf("deeper overload did not move to rateless: %+v", c.sel)
	}
	// Recovery: median gap 2 < rateless's Upper → slow 1 → native fits.
	c.lastSwitch = -(1 << 40)
	c.retuneK(margins(16, 10))
	if c.sel != nil {
		c.mu.Unlock()
		t.Fatalf("recovery did not return to the native family: %v", c.sel.label())
	}
	if c.famSwaps != 2 {
		c.mu.Unlock()
		t.Fatalf("family switches = %d, want 2 (out and back; the in-set move is not a family switch)", c.famSwaps)
	}
	c.mu.Unlock()

	// Admissions hand out the selected builder; the histogram records
	// the family-qualified label.
	c.mu.Lock()
	c.sel = c.candidate("gamma", 4)
	c.mu.Unlock()
	if err := c.Admit(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if got := c.BuilderFor(3); got != bGamma {
		t.Errorf("BuilderFor(3) = %v, want the gamma candidate", got)
	}
	st := c.State()
	if st.KHistogram["gamma:4"] != 1 {
		t.Errorf("k histogram = %v, want one admission at gamma:4", st.KHistogram)
	}
	if st.Selected != "gamma:4" || st.K != 4 {
		t.Errorf("State selected=%q k=%d, want gamma:4 / 4", st.Selected, st.K)
	}
	if len(st.Candidates) != 2 || st.Candidates[0].Proto != "gamma" {
		t.Errorf("State candidates = %+v, want gamma (Upper 8) first", st.Candidates)
	}
	_, _ = bBeta, bRl
}

// TestCandidateNoFlap is the hysteresis proof the candidate table needs:
// with gamma's bound sitting next to the native row, alternating
// overloaded and healthy windows — the classic flap input — must
// produce exactly one family switch per dwell, not one per window.
func TestCandidateNoFlap(t *testing.T) {
	c, _, _, _ := candCtl(t, func(cfg *Config) { cfg.Dwell = 1 << 40 })
	c.mu.Lock()
	defer c.mu.Unlock()

	// First escalation is dwell-eligible (New backdates lastSwitch).
	c.retuneK(margins(-14, 10))
	if c.sel == nil || c.sel.Proto != "gamma" {
		t.Fatalf("overload did not select gamma: %+v", c.sel)
	}
	if c.famSwaps != 1 {
		t.Fatalf("famSwaps = %d after first switch, want 1", c.famSwaps)
	}
	// 20 alternating windows inside one dwell: the selection must hold.
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			c.retuneK(margins(16, 10)) // healthy: native would fit
		} else {
			c.retuneK(margins(-14, 10)) // overloaded again
		}
		if c.sel == nil || c.sel.Proto != "gamma" {
			t.Fatalf("window %d flapped the selection to %+v", i, c.sel)
		}
	}
	if c.famSwaps != 1 {
		t.Fatalf("famSwaps = %d after 20 alternating windows, want 1 (dwell-limited)", c.famSwaps)
	}
	// Once the dwell elapses, a healthy window does return natively.
	c.lastSwitch = -(1 << 41)
	c.retuneK(margins(16, 10))
	if c.sel != nil {
		t.Fatalf("post-dwell recovery did not return: %+v", c.sel)
	}
	if c.famSwaps != 2 {
		t.Fatalf("famSwaps = %d, want 2", c.famSwaps)
	}
}

// TestDurableCandidateSelection: a cross-family choice persists as
// "proto:k" and a restarted controller resumes the session under it,
// while legacy bare-k records keep resolving to the native family.
func TestDurableCandidateSelection(t *testing.T) {
	ctx := context.Background()
	st := rstp.NewMemStore()

	c1, _, bGamma, _ := candCtl(t, func(cfg *Config) { cfg.Store = st })
	c1.mu.Lock()
	c1.sel = c1.candidate("gamma", 4)
	c1.mu.Unlock()
	if err := c1.Admit(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if raw, ok := st.Load(kKey(5)); !ok || string(raw) != "gamma:4" {
		t.Fatalf("persisted selection = %q, want gamma:4", raw)
	}

	// Restart: native selection is current, but session 5 resumes gamma.
	c2, bBeta, bGamma2, _ := candCtl(t, func(cfg *Config) { cfg.Store = st })
	if err := c2.Admit(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if got := c2.BuilderFor(5); got != bGamma2 {
		t.Errorf("restart resumed %v, want the gamma candidate", got)
	}
	_ = bGamma

	// Legacy bare-k record resolves to the native builder.
	st.Save(kKey(6), []byte("4"))
	if err := c2.Admit(ctx, 6); err != nil {
		t.Fatal(err)
	}
	if got := c2.BuilderFor(6); got != bBeta {
		t.Errorf("legacy record resumed %v, want the native k=4 builder", got)
	}

	// Garbage forms read as "no record".
	for _, raw := range []string{"gamma:", ":4", "gamma:one", "gamma:1"} {
		st.Save(kKey(9), []byte(raw))
		if proto, k, ok := storedSel(st, 9); ok {
			t.Errorf("storedSel accepted %q as %s:%d", raw, proto, k)
		}
	}
}
