// Package control is the serving stack's adaptive overload control
// plane: a seeded, deterministic loop that closes the circle the obs
// layer opened. Each tick it windows the shared registry's sensors —
// the deadline-margin histogram's miss tail, output-write stalls, the
// server's refusal rate — folds them into one pressure scalar, runs it
// through a hysteresis escalation ladder (pace → refuse → evict →
// retire), and drives four actuators:
//
//   - admission pacing and refusal in the session mux, via the
//     session.AdmissionController hooks — including an occupancy gate
//     that parks new dials while the receiver side is at its session
//     target, so waiting work queues silently instead of flooding the
//     channel with frames that can only be refused;
//   - per-session alphabet-size (k) selection at admit time, from the
//     paper's effort bound tables (Thm 5.3/5.6 lower, Lemma 6.1/§6.2
//     upper): the smallest k whose predicted per-message effort —
//     scaled by the measured slowdown — still fits the δ1·c2 deadline;
//   - RTO adaptation in transport.Resilient, shrinking the retry budget
//     as the ladder climbs (retransmission amplifies overload), always
//     clamped to the paper's [c1, d] arithmetic by SetRTO itself;
//   - forced eviction/retirement of the least-productive sessions at
//     the ladder's top rungs.
//
// Every decision is observable (rstp_control_* metrics and the
// "control" live hook, served at /control) and every random choice
// (pacing jitter) comes from a seeded RNG, so a run is reproducible
// from its seed.
package control

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rstp"
	"repro/internal/session"
	"repro/internal/transport"
)

// Config assembles a Controller. Registry, Clock and Params are
// required; actuators are late-bound with Bind because the mux that
// provides them needs the controller at its own construction.
type Config struct {
	// Registry is the shared obs registry the controller both reads
	// (sensors) and writes (its own rstp_control_* metrics).
	Registry *obs.Registry
	// Clock is the tick source shared with the transports and sessions.
	Clock *transport.Clock
	// Params are the timing constants; the deadline δ1·c2 and the RTO
	// clamp [c1, d] derive from them.
	Params rstp.Params
	// Proto selects the bound formulas for the k table: "alpha", "beta"
	// or "gamma" (default "beta").
	Proto string
	// Builders maps candidate alphabet sizes k to the builder realising
	// them; k-selection picks among exactly these. Empty disables
	// k-selection (every admission uses the mux's Config.Solution).
	Builders map[int]session.PairBuilder
	// DefaultK is the k the mux's default Solution uses — the selection
	// starting point and the k reported before the first retune.
	DefaultK int
	// Candidates extends the selection table across protocol families:
	// each entry names a builder from another family (gamma, rateless)
	// together with its effort bounds, which the Builders map — bound by
	// Proto's own formulas — cannot express. The controller leaves the
	// native family only when no native k meets the deadline and a
	// candidate does, and family switches are dwell-limited (see
	// retuneK), so a candidate whose bound sits near a native row cannot
	// flap the selection.
	Candidates []Candidate
	// Store, when non-nil, persists each admitted session's chosen k
	// under "s<id>/k" — alongside the stabilized layer's own "s<id>/"
	// checkpoint keys — and consults it first on admission. A durable
	// restart (same store directory, same session IDs) then resumes every
	// session under the k its persisted protocol state was written with,
	// instead of collapsing to DefaultK. Cross-family selections persist
	// as "proto:k" under the same key.
	Store rstp.StateStore

	// Interval is the control tick period in ticks (default 8·d).
	Interval int64
	// Dwell is the ladder's minimum gap between level changes, in ticks
	// (default 4·Interval).
	Dwell int64
	// PaceTicks is the base admission delay at the pace level, in ticks
	// (default d). The actual delay adds jitter in [0, PaceTicks].
	PaceTicks int64
	// Seed seeds the pacing jitter RNG (default 1).
	Seed int64

	// TargetSessions, when positive, turns on occupancy-gated admission:
	// Admit holds new sessions (sleeping in jittered Interval-scale
	// slices) while the bound Active() count is at or above the target,
	// releasing them as slots free up. This is the cheapest form of
	// admission control — a dialer that would otherwise burn its whole
	// per-session budget waiting for a receiver slot instead queues
	// before transmitting a single frame, keeping the channel clear for
	// the sessions that do hold slots. Zero disables the gate.
	TargetSessions int

	// Enter/Exit override the ladder thresholds when any entry is
	// nonzero. Defaults: enter 0.25/1/2/4, exit at half of enter.
	Enter, Exit [numLevels - 1]float64
	// RefuseScale normalises the windowed server-refusal count into
	// pressure units: RefuseScale refused frames per window count as
	// 1.0 pressure (default 64).
	RefuseScale float64
}

// Candidate is one cross-family protocol choice the controller may
// select instead of a native-family k: a builder plus the effort bounds
// its own family's formulas predict for it (rstp.GammaUpperBound /
// rateless.UpperBound and the matching lower bounds).
type Candidate struct {
	// Proto names the family, e.g. "gamma" or "rateless". It must differ
	// from Config.Proto — same-family candidates belong in Builders.
	Proto string
	// K is the candidate's packet alphabet size.
	K int
	// Builder realises the candidate.
	Builder session.PairBuilder
	// Lower and Upper are the candidate's effort bounds in ticks per
	// message, the same units as the native rstp.EffortTable rows.
	Lower, Upper float64
}

// label is the candidate's histogram / persistence identity.
func (cd Candidate) label() string { return fmt.Sprintf("%s:%d", cd.Proto, cd.K) }

// CandidateRow is a Candidate without its builder — the serializable
// shape State exposes at /control.
type CandidateRow struct {
	Proto string  `json:"proto"`
	K     int     `json:"k"`
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
}

// Actuators are the mux- and transport-side hooks the controller
// drives. They are bound after construction (Bind) because the Server
// and Resilient that provide them are themselves built with the
// controller already in hand. Any nil hook disables that actuation.
type Actuators struct {
	// Active reports live receiver-session occupancy (Server.ActiveCount);
	// nil disables stall detection, which needs to know work is pending.
	Active func() int64
	// SetRTO retunes the resilience layer's per-Send retry budget and
	// returns the applied (clamped) value (transport.Resilient.SetRTO).
	SetRTO func(ticks int64) int64
	// EvictOldest force-retires the longest-idle receiver session
	// (Server.ShedOldest); called once per tick at LevelEvict and above.
	EvictOldest func() bool
	// RetireStalled force-retires the receiver session with the least
	// recent output progress (Server.RetireStalled); once per tick at
	// LevelRetire.
	RetireStalled func() bool
}

// maxTombstones bounds the forgotten-ID set that keeps late frames of a
// k-selected session from respawning a receiver under the wrong k.
const maxTombstones = 8192

// refusePressureCap bounds the refusal-rate pressure component at a
// value between the refuse and evict enter thresholds: a retransmission
// storm from sessions queued at the capacity cap can push the ladder to
// shedding *load* (pace, refuse) but never, on its own, to shedding
// *sessions* — eviction needs evidence of actual service degradation
// (deadline misses, stalls), not just a busy doorstep.
const refusePressureCap = 1.5

// missPressureWeight scales the windowed deadline-miss EXCESS — the
// miss fraction above its slowly-adapting baseline — into pressure,
// topping out (like the refusal component) between the refuse and
// evict enter thresholds. Both symptoms mean "too much load for the
// service to meet deadlines", and the remedy for load is shedding load
// (pace, refuse). Killing admitted sessions does not reduce a shared
// channel's load at all — the victims' transmitters keep
// retransmitting to a tombstone — so the evict and retire rungs are
// reserved for the one symptom load-shedding cannot fix: sessions
// occupying slots while nothing progresses (the stall sensor, which
// compounds without bound).
const missPressureWeight = 1.5

// missBaseAlpha is the EWMA weight for the miss-fraction baseline. The
// absolute miss rate is platform-colored — at microsecond tick lengths
// the δ1·c2 deadline sits below timer granularity and even a healthy
// stack "misses" most writes by wall-clock jitter — so the sensor
// scores degradation against what this deployment normally measures
// (delay-gradient style), not against an absolute that only holds for
// one tick scale. 1/8 per window: the baseline absorbs a regime change
// in ~10 windows, slow enough that congestion onset registers at full
// strength first.
const missBaseAlpha = 0.125

// missMinWindow is the minimum windowed write count for the miss
// sensor: below it one late write swings the fraction by whole rungs.
const missMinWindow = 4

// Controller implements session.AdmissionController and runs the
// control loop. Create with New, wire as Config.Admission on both mux
// sides, Bind the actuators, then Start.
type Controller struct {
	cfg      Config
	acts     Actuators
	deadline int64 // δ1·c2
	table    []rstp.EffortRow

	marginHist *obs.Histogram
	writes     *obs.Counter
	refused    *obs.Counter

	done    chan struct{}
	wg      sync.WaitGroup
	startMu sync.Mutex
	started bool
	stopped bool

	mu       sync.Mutex
	rng      *rand.Rand
	ladder   Ladder
	pressure float64
	curK     int
	rtoNow   int64

	// Cross-family selection: cands is the Config.Candidates list sorted
	// by Upper descending (most expensive first, mirroring "smallest
	// fitting k" in the native table); sel points into it while a
	// foreign family is selected, nil while the native family is.
	cands      []Candidate
	sel        *Candidate
	lastSwitch int64
	famSwaps   int64

	perSession  map[uint32]session.PairBuilder
	tombstones  map[uint32]struct{}
	tombstoneQ  []uint32
	kHist       map[string]int64
	prevMargin  obs.HistogramSnapshot
	prevWrites  int64
	prevRefused int64
	missBase    float64 // EWMA of the windowed miss fraction; -1 until seeded
	stallWins   int64
	lastEvict   int64
	lastRetire  int64

	ticks, paced, paceTicks     int64
	gated, gateTicks            int64
	dialRefused, serverRefused  int64
	rtoChanges, evicts, retires int64
	levelTicks                  [numLevels]int64
}

// New validates the config, builds the bound table and registers the
// controller's metrics. The controller is inert (and admits everything
// unpaced at LevelNormal) until Start.
func New(cfg Config) (*Controller, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("control: Config.Registry required")
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("control: Config.Clock required")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Proto == "" {
		cfg.Proto = "beta"
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 8 * cfg.Params.D
	}
	if cfg.Dwell <= 0 {
		cfg.Dwell = 4 * cfg.Interval
	}
	if cfg.PaceTicks <= 0 {
		cfg.PaceTicks = cfg.Params.D
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.RefuseScale <= 0 {
		cfg.RefuseScale = 64
	}
	enter := cfg.Enter
	exit := cfg.Exit
	if enter == ([numLevels - 1]float64{}) {
		enter = [numLevels - 1]float64{0.25, 1, 2, 4}
	}
	if exit == ([numLevels - 1]float64{}) {
		for i := range exit {
			exit[i] = enter[i] / 2
		}
	}

	ks := make([]int, 0, len(cfg.Builders))
	for k := range cfg.Builders {
		ks = append(ks, k)
	}
	table := rstp.EffortTable(cfg.Params, cfg.Proto, ks)
	// Keep only rows a builder can realise: a bound without a builder is
	// a prediction the controller cannot act on.
	kept := table[:0]
	for _, row := range table {
		if _, ok := cfg.Builders[row.K]; ok {
			kept = append(kept, row)
		}
	}
	table = kept

	cands := make([]Candidate, 0, len(cfg.Candidates))
	for i, cd := range cfg.Candidates {
		if cd.Builder == nil {
			return nil, fmt.Errorf("control: candidate %d (%s) has no builder", i, cd.label())
		}
		if cd.Proto == "" || cd.Proto == cfg.Proto {
			return nil, fmt.Errorf("control: candidate %d must name a family other than %q (same-family candidates go in Builders)", i, cfg.Proto)
		}
		if cd.K < 2 || cd.Upper <= 0 {
			return nil, fmt.Errorf("control: candidate %d (%s) needs k >= 2 and a positive upper bound", i, cd.label())
		}
		cands = append(cands, cd)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Upper != cands[j].Upper {
			return cands[i].Upper > cands[j].Upper
		}
		return cands[i].K < cands[j].K
	})

	c := &Controller{
		cfg:        cfg,
		deadline:   int64(cfg.Params.Delta1()) * cfg.Params.C2,
		table:      table,
		cands:      cands,
		lastSwitch: -cfg.Dwell, // the first needed family switch is never dwell-blocked
		done:       make(chan struct{}),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		curK:       cfg.DefaultK,
		rtoNow:     cfg.Params.D,
		missBase:   -1,
		perSession: make(map[uint32]session.PairBuilder),
		tombstones: make(map[uint32]struct{}),
		kHist:      make(map[string]int64),
	}
	c.ladder = Ladder{Enter: enter, Exit: exit, Dwell: cfg.Dwell}

	// Sensor handles, via get-or-create: the session layer registers the
	// same names with the same shapes, so both hold one instance.
	c.marginHist = cfg.Registry.Histogram("rstp_deadline_margin_ticks",
		"per-message deadline δ1·c2 minus the interwrite gap (negative = miss)", obs.MarginBuckets(0))
	c.writes = cfg.Registry.Counter("rstp_session_writes_total",
		"messages written to receiver output tapes")
	c.refused = cfg.Registry.Counter("rstp_server_frames_refused_total",
		"new-session frames dropped at the MaxSessions cap")

	c.instrument(cfg.Registry)
	return c, nil
}

// Bind installs the actuators. Call before Start; hooks left nil
// disable the corresponding actuation.
func (c *Controller) Bind(a Actuators) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acts = a
}

// Start launches the control loop. Idempotent.
func (c *Controller) Start() {
	c.startMu.Lock()
	defer c.startMu.Unlock()
	if c.started {
		return
	}
	c.started = true
	c.wg.Add(1)
	go c.loop()
}

// Stop halts the loop and releases any admission currently sleeping in
// the pacer (it proceeds unpaced rather than wedging its dialer).
// Idempotent; safe without a prior Start.
func (c *Controller) Stop() {
	c.startMu.Lock()
	defer c.startMu.Unlock()
	if c.stopped {
		return
	}
	c.stopped = true
	close(c.done)
	c.wg.Wait()
}

func (c *Controller) loop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Clock.Ticks(c.cfg.Interval))
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.tick()
		}
	}
}

// tick is one control-loop iteration: sense, score, step the ladder,
// actuate.
func (c *Controller) tick() {
	now := c.cfg.Clock.Now()
	margin := c.marginHist.Snapshot()
	writes := c.writes.Value()
	refused := c.refused.Value()

	c.mu.Lock()
	var active int64
	if c.acts.Active != nil {
		active = c.acts.Active()
	}
	win := obs.DeltaSnapshot(c.prevMargin, margin)
	dWrites := writes - c.prevWrites
	dRefused := refused - c.prevRefused
	c.prevMargin, c.prevWrites, c.prevRefused = margin, writes, refused

	// Pressure is the WORST single symptom, not the sum: each sensor is
	// scaled so the highest rung it can reach is the highest rung whose
	// remedy addresses it, and summing would let two mild symptoms buy a
	// remedy neither justifies (a busy doorstep plus a few late writes
	// must not evict anyone).
	//
	// Symptom 1: the deadline-miss fraction of this window's writes,
	// scored as the excess over its EWMA baseline. The margin
	// histogram's zero bucket splits the distribution exactly at the
	// deadline, so the cumulative count at LE=0 over the window count is
	// the fraction of writes that missed δ1·c2; the baseline calibrates
	// out the platform's steady-state miss rate (see missBaseAlpha) so
	// only a *worsening* — congestion onset — registers.
	pressure := 0.0
	if win.Count >= missMinWindow {
		var misses int64
		for _, b := range win.Buckets {
			if !b.Inf && b.LE == 0 {
				misses = b.Count
				break
			}
		}
		frac := float64(misses) / float64(win.Count)
		if c.missBase < 0 {
			c.missBase = frac // first sample seeds the baseline
		}
		if mp := missPressureWeight * (frac - c.missBase); mp > pressure {
			pressure = mp
		}
		c.missBase += missBaseAlpha * (frac - c.missBase)
	}
	// Symptom 2: refusal rate. Frames already being turned away at the
	// server cap are overload by definition — capped below the evict
	// threshold, because the remedy for a noisy doorstep is shedding
	// load, never shedding admitted sessions.
	if dRefused > 0 {
		rp := float64(dRefused) / c.cfg.RefuseScale
		if rp > refusePressureCap {
			rp = refusePressureCap
		}
		if rp > pressure {
			pressure = rp
		}
	}
	// Symptom 3: stall. Live sessions with zero output growth compound
	// each consecutive silent window without bound — total dead air is
	// the one symptom allowed to climb all the way to forced retirement.
	// Half a pressure unit per silent window: one quiet window under
	// bursty congestion is noise (it paces); four in a row reach evict,
	// eight force retirement.
	if active > 0 && dWrites == 0 {
		c.stallWins++
		if sp := 0.5 * float64(c.stallWins); sp > pressure {
			pressure = sp
		}
	} else {
		c.stallWins = 0
	}

	level := c.ladder.Update(now, pressure)
	c.pressure = pressure
	c.ticks++
	c.levelTicks[level] += c.cfg.Interval
	c.retuneK(win)

	// RTO descends with the ladder: a full d of cumulative retry at
	// LevelNormal, a bare c1 (one attempt, effectively) at LevelRetire.
	// SetRTO clamps to [c1, d] regardless, so the paper's delay bound
	// arithmetic survives any target.
	rtoTarget := c.rtoForLevel(level)
	setRTO := c.acts.SetRTO
	// The destructive actuators are rate-limited to one victim per dwell
	// window: eviction exists to relieve pressure, and the ladder cannot
	// even observe relief faster than its own dwell — killing a session
	// per tick would shred goodput for no faster convergence.
	var evict, retire func() bool
	if level >= LevelEvict && c.acts.EvictOldest != nil && now-c.lastEvict >= c.cfg.Dwell {
		c.lastEvict = now
		evict = c.acts.EvictOldest
	}
	if level >= LevelRetire && c.acts.RetireStalled != nil && now-c.lastRetire >= c.cfg.Dwell {
		c.lastRetire = now
		retire = c.acts.RetireStalled
	}
	c.mu.Unlock()

	var applied int64 = -1
	if setRTO != nil {
		applied = setRTO(rtoTarget)
	}
	evicted, retired := false, false
	if evict != nil {
		evicted = evict()
	}
	if retire != nil {
		retired = retire()
	}

	c.mu.Lock()
	if applied >= 0 && applied != c.rtoNow {
		c.rtoNow = applied
		c.rtoChanges++
	}
	if evicted {
		c.evicts++
	}
	if retired {
		c.retires++
	}
	c.mu.Unlock()
}

// rtoForLevel maps a ladder rung to a retry-budget target in ticks.
func (c *Controller) rtoForLevel(l Level) int64 {
	d := c.cfg.Params.D
	switch l {
	case LevelNormal, LevelPace:
		return d
	case LevelRefuse:
		return 3 * d / 4
	case LevelEvict:
		return d / 2
	default:
		return c.cfg.Params.C1
	}
}

// retuneK re-selects the admission-time alphabet size, holding c.mu.
// The paper's upper bound Upper(k) predicts per-message effort under a
// correct channel; the measured median gap over the current window,
// divided by the current selection's Upper, is the live slowdown
// factor. The controller picks the smallest k whose scaled prediction
// still fits the deadline — smallest because packet size grows with k
// (§6) and the cheapest alphabet that meets δ1·c2 is the efficient
// choice — falling back to the largest candidate (cheapest effort) when
// nothing fits.
//
// With Config.Candidates set, a second cross-family step runs on top:
// the controller leaves the native family only when no native k meets
// the scaled deadline and a foreign candidate does, and it returns only
// once the native family fits again. Family switches — in either
// direction — are limited to one per dwell window, so a candidate whose
// bound lands near a native row cannot flap the selection on a noisy
// slowdown estimate (the same hysteresis discipline as the ladder).
func (c *Controller) retuneK(win obs.HistogramSnapshot) {
	if len(c.table) == 0 && len(c.cands) == 0 {
		return
	}
	curUpper := 0.0
	if c.sel != nil {
		curUpper = c.sel.Upper
	} else {
		for _, row := range c.table {
			if row.K == c.curK {
				curUpper = row.Upper
				break
			}
		}
	}
	slow := 1.0
	if win.Count > 0 && curUpper > 0 {
		if med := float64(c.deadline - obs.BucketQuantile(win, 0.5)); med > curUpper {
			slow = med / curUpper
		}
	}
	deadline := float64(c.deadline)
	nativeFits := false
	if len(c.table) > 0 {
		pick := c.table[len(c.table)-1].K
		for _, row := range c.table {
			if slow*row.Upper <= deadline {
				pick = row.K
				nativeFits = true
				break
			}
		}
		c.curK = pick
	}
	if len(c.cands) == 0 {
		return
	}
	var want *Candidate
	if !nativeFits {
		for i := range c.cands {
			if slow*c.cands[i].Upper <= deadline {
				want = &c.cands[i]
				break
			}
		}
		if want == nil {
			want = c.sel // nothing fits anywhere: hold the current family
		}
	}
	now := c.cfg.Clock.Now()
	switch {
	case want == nil && c.sel != nil && now-c.lastSwitch >= c.cfg.Dwell:
		c.sel = nil
		c.lastSwitch = now
		c.famSwaps++
	case want != nil && c.sel == nil && now-c.lastSwitch >= c.cfg.Dwell:
		c.sel = want
		c.lastSwitch = now
		c.famSwaps++
	case want != nil && c.sel != nil && want != c.sel:
		// Both foreign: moves inside the candidate list stay immediate,
		// exactly like within-family k moves in the native table.
		c.sel = want
	}
}

// sleepTicks blocks for the given tick count. It reports stopped=true
// when the controller shut down mid-sleep (callers admit rather than
// wedge their dialer) and a non-nil err when the caller's context died.
func (c *Controller) sleepTicks(ctx context.Context, ticks int64) (stopped bool, err error) {
	t := time.NewTimer(c.cfg.Clock.Ticks(ticks))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false, ctx.Err()
	case <-c.done:
		return true, nil
	case <-t.C:
		return false, nil
	}
}

// Admit implements session.AdmissionController: refuse at LevelRefuse+,
// pace (with seeded jitter) at LevelPace, hold at the occupancy gate
// while the receiver side is full (Config.TargetSessions), and record
// the builder chosen for this ID so both mux sides construct the same
// pair.
func (c *Controller) Admit(ctx context.Context, id uint32) error {
	c.mu.Lock()
	level := c.ladder.Current()
	if level >= LevelRefuse {
		c.dialRefused++
		c.mu.Unlock()
		return session.ErrAdmissionRefused
	}
	var delay int64
	if level >= LevelPace {
		delay = c.cfg.PaceTicks + c.rng.Int63n(c.cfg.PaceTicks+1)
		c.paced++
		c.paceTicks += delay
	}
	c.mu.Unlock()

	if delay > 0 {
		if _, err := c.sleepTicks(ctx, delay); err != nil {
			return err
		}
	}

	// Occupancy gate: while the receiver side sits at its session target,
	// park here instead of transmitting frames that can only be refused.
	// Occupancy counts BOTH the live receiver sessions (Active) and this
	// controller's own in-flight admissions (perSession): a dial released
	// from the gate takes a whole channel round-trip to show up in
	// Active, and gating on Active alone would release every waiter into
	// that blind window at once. The ladder still applies while parked —
	// an escalation to refuse turns the wait into a refusal.
	if c.cfg.TargetSessions > 0 {
		first := true
		for {
			c.mu.Lock()
			act := c.acts.Active
			inflight := int64(len(c.perSession))
			if c.ladder.Current() >= LevelRefuse {
				c.dialRefused++
				c.mu.Unlock()
				return session.ErrAdmissionRefused
			}
			c.mu.Unlock()
			occ := inflight
			if act != nil {
				if a := act(); a > occ {
					occ = a
				}
			}
			if occ < int64(c.cfg.TargetSessions) {
				break
			}
			c.mu.Lock()
			if first {
				c.gated++
				first = false
			}
			wait := c.cfg.Interval/2 + c.rng.Int63n(c.cfg.Interval/2+1)
			if wait < 1 {
				wait = 1
			}
			c.gateTicks += wait
			c.mu.Unlock()
			stopped, err := c.sleepTicks(ctx, wait)
			if err != nil {
				return err
			}
			if stopped {
				break
			}
		}
	}

	c.mu.Lock()
	var b session.PairBuilder
	var label string
	if len(c.table) > 0 || len(c.cands) > 0 {
		// A session resuming from a durable store must reconstruct under
		// the selection its checkpoints were written with, not whatever
		// the ladder currently favors; the record wins whenever a builder
		// for it still exists. (If the operator changed the candidate set
		// between runs, fall through to the current selection — the
		// stabilized layer then re-transfers rather than resumes.)
		if c.cfg.Store != nil {
			if proto, rk, ok := storedSel(c.cfg.Store, id); ok {
				if proto == "" {
					if bk, has := c.cfg.Builders[rk]; has {
						b, label = bk, strconv.Itoa(rk)
					}
				} else if cd := c.candidate(proto, rk); cd != nil {
					b, label = cd.Builder, cd.label()
				}
			}
		}
		if b == nil {
			if c.sel != nil {
				b, label = c.sel.Builder, c.sel.label()
			} else if bk, ok := c.cfg.Builders[c.curK]; ok {
				b, label = bk, strconv.Itoa(c.curK)
			}
		}
		if b != nil {
			c.kHist[label]++
		}
	}
	c.perSession[id] = b // recorded even when nil: marks the ID as admitted
	delete(c.tombstones, id)
	c.mu.Unlock()
	// The save happens outside c.mu: a durable store fsyncs, and the
	// control tick must not wait on the disk. Native selections persist
	// as the bare k (the pre-candidate format), foreign ones as
	// "proto:k" — storedSel reads both.
	if label != "" && c.cfg.Store != nil {
		c.cfg.Store.Save(kKey(id), []byte(label))
	}
	return nil
}

// candidate returns the configured candidate for (proto, k), nil if
// none.
func (c *Controller) candidate(proto string, k int) *Candidate {
	for i := range c.cands {
		if c.cands[i].Proto == proto && c.cands[i].K == k {
			return &c.cands[i]
		}
	}
	return nil
}

// kKey is the checkpoint key recording the alphabet size session id was
// admitted under. It shares the stabilized layer's "s<id>/" prefix so a
// session's durable state — protocol checkpoints, output tape, chosen k
// — lives under one key family.
func kKey(id uint32) string { return fmt.Sprintf("s%d/k", id) }

// storedK reads a previously recorded per-session k back from the
// store. Anything unparseable (a torn write the journal could not
// checksum away, an empty value) reads as "no record".
func storedK(store rstp.StateStore, id uint32) (int, bool) {
	raw, ok := store.Load(kKey(id))
	if !ok || len(raw) == 0 {
		return 0, false
	}
	k, err := strconv.Atoi(string(raw))
	if err != nil || k < 2 {
		return 0, false
	}
	return k, true
}

// storedSel reads a persisted selection, which is either the legacy
// bare-k format (proto returned as "", meaning the native family) or
// the cross-family "proto:k" form. Garbage reads as "no record".
func storedSel(store rstp.StateStore, id uint32) (proto string, k int, ok bool) {
	raw, lok := store.Load(kKey(id))
	if !lok || len(raw) == 0 {
		return "", 0, false
	}
	s := string(raw)
	if i := strings.IndexByte(s, ':'); i > 0 {
		k, err := strconv.Atoi(s[i+1:])
		if err != nil || k < 2 {
			return "", 0, false
		}
		return s[:i], k, true
	}
	k, ok = storedK(store, id)
	return "", k, ok
}

// BuilderFor implements session.AdmissionController.
func (c *Controller) BuilderFor(id uint32) session.PairBuilder {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.perSession[id]
}

// AdmitServer implements session.AdmissionController. Admitted IDs are
// always accepted (their slot is spoken for), forgotten IDs always
// refused (late frames of a retired k-selected session must not respawn
// a receiver under the default k), and unknown IDs — a remote dialer
// this controller never saw — track the ladder.
func (c *Controller) AdmitServer(id uint32) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.perSession[id]; ok {
		return true
	}
	if _, ok := c.tombstones[id]; ok {
		return false
	}
	if c.ladder.Current() >= LevelRefuse {
		c.serverRefused++
		return false
	}
	return true
}

// Forget implements session.AdmissionController: the per-session record
// moves into a bounded tombstone set.
func (c *Controller) Forget(id uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.perSession[id]; !ok {
		return
	}
	delete(c.perSession, id)
	if _, ok := c.tombstones[id]; ok {
		return
	}
	c.tombstones[id] = struct{}{}
	c.tombstoneQ = append(c.tombstoneQ, id)
	if len(c.tombstoneQ) > maxTombstones {
		delete(c.tombstones, c.tombstoneQ[0])
		c.tombstoneQ = c.tombstoneQ[1:]
	}
}

// State is the controller's introspection snapshot: the "control" live
// hook renders it at /control and rstpserve folds it into the summary.
type State struct {
	Level           string           `json:"level"`
	Pressure        float64          `json:"pressure"`
	K               int              `json:"k"`
	RTOTicks        int64            `json:"rto_ticks"`
	Ticks           int64            `json:"ticks"`
	Paced           int64            `json:"paced"`
	PaceTicks       int64            `json:"pace_ticks"`
	Gated           int64            `json:"gated"`
	GateTicks       int64            `json:"gate_ticks"`
	DialRefused     int64            `json:"dial_refused"`
	ServerRefused   int64            `json:"server_refused"`
	RTOChanges      int64            `json:"rto_changes"`
	Evictions       int64            `json:"evictions"`
	Retires         int64            `json:"retires"`
	KHistogram      map[string]int64 `json:"k_histogram,omitempty"`
	LevelDwellTicks map[string]int64 `json:"level_dwell_ticks"`
	BoundTable      []rstp.EffortRow `json:"bound_table,omitempty"`
	// Selected names the cross-family candidate currently selected
	// ("gamma:4", "rateless:4"), empty while the native family is.
	Selected       string         `json:"selected,omitempty"`
	FamilySwitches int64          `json:"family_switches,omitempty"`
	Candidates     []CandidateRow `json:"candidates,omitempty"`
}

// State snapshots the controller.
func (c *Controller) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := State{
		Level:           c.ladder.Current().String(),
		Pressure:        c.pressure,
		K:               c.curK,
		RTOTicks:        c.rtoNow,
		Ticks:           c.ticks,
		Paced:           c.paced,
		PaceTicks:       c.paceTicks,
		Gated:           c.gated,
		GateTicks:       c.gateTicks,
		DialRefused:     c.dialRefused,
		ServerRefused:   c.serverRefused,
		RTOChanges:      c.rtoChanges,
		Evictions:       c.evicts,
		Retires:         c.retires,
		LevelDwellTicks: make(map[string]int64, numLevels),
		BoundTable:      c.table,
	}
	if len(c.kHist) > 0 {
		s.KHistogram = make(map[string]int64, len(c.kHist))
		for label, n := range c.kHist {
			s.KHistogram[label] = n
		}
	}
	if c.sel != nil {
		s.Selected = c.sel.label()
		s.K = c.sel.K
	}
	s.FamilySwitches = c.famSwaps
	for _, cd := range c.cands {
		s.Candidates = append(s.Candidates, CandidateRow{Proto: cd.Proto, K: cd.K, Lower: cd.Lower, Upper: cd.Upper})
	}
	for i, ticks := range c.levelTicks {
		s.LevelDwellTicks[Level(i).String()] = ticks
	}
	return s
}

// instrument registers the controller's own metrics: every decision the
// loop makes is visible as an rstp_control_* series plus the "control"
// live hook.
func (c *Controller) instrument(reg *obs.Registry) {
	locked := func(fn func() int64) func() int64 {
		return func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return fn()
		}
	}
	reg.GaugeFunc("rstp_control_level",
		"escalation ladder level (0 normal … 4 retire)",
		locked(func() int64 { return int64(c.ladder.Current()) }))
	reg.FloatFunc("rstp_control_pressure",
		"latest composite overload pressure (0 = healthy)", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.pressure
		})
	reg.GaugeFunc("rstp_control_k",
		"alphabet size the next admission will select",
		locked(func() int64 {
			if c.sel != nil {
				return int64(c.sel.K)
			}
			return int64(c.curK)
		}))
	reg.CounterFunc("rstp_control_family_switches_total",
		"cross-family selection switches (native <-> candidate)",
		locked(func() int64 { return c.famSwaps }))
	reg.GaugeFunc("rstp_control_rto_ticks",
		"retry-budget target most recently applied to the transport",
		locked(func() int64 { return c.rtoNow }))
	reg.CounterFunc("rstp_control_ticks_total",
		"control loop iterations", locked(func() int64 { return c.ticks }))
	reg.CounterFunc("rstp_control_paced_total",
		"admissions delayed by pacing", locked(func() int64 { return c.paced }))
	reg.CounterFunc("rstp_control_pace_ticks_total",
		"total admission delay injected, in ticks", locked(func() int64 { return c.paceTicks }))
	reg.CounterFunc("rstp_control_gated_total",
		"admissions held at the occupancy gate", locked(func() int64 { return c.gated }))
	reg.CounterFunc("rstp_control_gate_ticks_total",
		"total occupancy-gate wait injected, in ticks", locked(func() int64 { return c.gateTicks }))
	reg.CounterFunc("rstp_control_dial_refused_total",
		"dialer admissions refused by the ladder", locked(func() int64 { return c.dialRefused }))
	reg.CounterFunc("rstp_control_server_refused_total",
		"unknown server sessions refused by the ladder", locked(func() int64 { return c.serverRefused }))
	reg.CounterFunc("rstp_control_rto_changes_total",
		"control ticks whose RTO target differed from the applied value",
		locked(func() int64 { return c.rtoChanges }))
	reg.CounterFunc("rstp_control_evictions_total",
		"forced evictions of the longest-idle session", locked(func() int64 { return c.evicts }))
	reg.CounterFunc("rstp_control_retires_total",
		"forced retirements of the least-progressed session", locked(func() int64 { return c.retires }))
	for i := 0; i < numLevels; i++ {
		lvl := Level(i)
		reg.CounterFunc(fmt.Sprintf("rstp_control_dwell_%s_ticks_total", lvl),
			fmt.Sprintf("ticks spent at ladder level %q", lvl),
			locked(func() int64 { return c.levelTicks[lvl] }))
	}
	reg.Live("control", func() any { return c.State() })
}
