package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/chanmodel"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/stp"
	"repro/internal/wire"
)

// E9Baseline reproduces the introduction's framing: the Alternating Bit
// protocol solves STP over lossy/duplicating (FIFO) channels with no
// timing assumptions, but its per-message cost grows without bound as the
// loss rate climbs; A^β(k) on an RSTP channel pays a fixed price. The last
// rows flip the table: A^γ survives a channel that violates d (safety is
// ack-clocked) while A^β does not.
func E9Baseline(cfg Config) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "alternating-bit baseline vs RSTP protocols",
		Source: "Section 1 (BSW69 baseline; why real-time assumptions pay)",
		Header: []string{"protocol", "channel", "ticks/message", "correct?"},
	}
	n := 8 * cfg.blocks()
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	x := wire.RandomBits(n, rng.Uint64)

	// Alternating bit across loss rates (mean of 3 seeds each).
	for _, loss := range []float64{0, 0.25, 0.5, 0.75} {
		var total int64
		seeds := int64(3)
		for seed := int64(1); seed <= seeds; seed++ {
			tr, err := stp.NewABTransmitter(x)
			if err != nil {
				return Table{}, err
			}
			rc, err := stp.NewABReceiver()
			if err != nil {
				return Table{}, err
			}
			// Low jitter (D = 2) isolates the loss effect: with heavy
			// jitter the alternating-bit flood interacts with FIFO
			// clamping and masks the divergence.
			run, err := sim.Simulate(sim.Config{
				C1: 1, C2: 1, D: 2,
				Transmitter: sim.Process{Auto: tr, Policy: sim.FixedGap{C: 1}},
				Receiver:    sim.Process{Auto: rc, Policy: sim.FixedGap{C: 1}},
				Delay: &chanmodel.FIFOLossyDup{
					D: 2, LossProb: loss, DupProb: 0.2, Rand: rand.New(rand.NewSource(cfg.Seed + seed)),
				},
				Stop:     sim.StopAfterWrites(n),
				MaxTicks: 200_000_000,
			})
			if err != nil {
				return Table{}, fmt.Errorf("altbit loss=%.2f: %w", loss, err)
			}
			last, _ := run.LastWriteTime()
			total += last
		}
		t.Rows = append(t.Rows, []string{
			"alternating-bit",
			fmt.Sprintf("fifo-lossy-dup(loss=%.2f)", loss),
			f2(float64(total) / float64(seeds) / float64(n)),
			"yes",
		})
	}

	// Stenning's protocol [Ste76]: unbounded sequence numbers survive the
	// full loss + duplication + reordering triple that defeats the
	// alternating bit — at the price of unbounded headers.
	for _, loss := range []float64{0, 0.5} {
		var total int64
		seeds := int64(3)
		for seed := int64(1); seed <= seeds; seed++ {
			tr, err := stp.NewStenningTransmitter(x)
			if err != nil {
				return Table{}, err
			}
			rc, err := stp.NewStenningReceiver()
			if err != nil {
				return Table{}, err
			}
			run, err := sim.Simulate(sim.Config{
				C1: 1, C2: 1, D: 2,
				Transmitter: sim.Process{Auto: tr, Policy: sim.FixedGap{C: 1}},
				Receiver:    sim.Process{Auto: rc, Policy: sim.FixedGap{C: 1}},
				Delay: &chanmodel.LossyDup{
					D: 2, LossProb: loss, DupProb: 0.2, Rand: rand.New(rand.NewSource(cfg.Seed + seed)),
				},
				Stop:     sim.StopAfterWrites(n),
				MaxTicks: 200_000_000,
			})
			if err != nil {
				return Table{}, fmt.Errorf("stenning loss=%.2f: %w", loss, err)
			}
			last, _ := run.LastWriteTime()
			total += last
		}
		t.Rows = append(t.Rows, []string{
			"stenning",
			fmt.Sprintf("lossy-dup-REORDER(loss=%.2f)", loss),
			f2(float64(total) / float64(seeds) / float64(n)),
			"yes",
		})
	}

	// A^β(4) on the worst legal RSTP channel, for comparison.
	p := rstp.Params{C1: 1, C2: 1, D: 8}
	beta, err := rstp.Beta(p, 4)
	if err != nil {
		return Table{}, err
	}
	be, err := measure(beta, cfg.blocks(), cfg.Seed, rstp.RunOptions{})
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{"A^β(4)", "max-delay (legal RSTP)", f2(be.PerMessage), "yes"})

	// Fault injection: violate the delay bound.
	gamma, err := rstp.Gamma(p, 4)
	if err != nil {
		return Table{}, err
	}
	gx := wire.RandomBits(4*gamma.BlockBits, rng.Uint64)
	grun, err := gamma.Run(gx, rstp.RunOptions{Delay: chanmodel.ExceedBound{D: p.D, Excess: 3 * p.D}})
	if err != nil {
		return Table{}, err
	}
	gOK := wire.BitsToString(grun.Writes()) == wire.BitsToString(gx)
	t.Rows = append(t.Rows, []string{"A^γ(4)", "exceeds d by 3d (illegal)", "n/a", yesNo(gOK)})

	bx := wire.RandomBits(12*beta.BlockBits, rng.Uint64)
	interleaver := chanmodel.Func{
		Label: "interleaver",
		F: func(dirSeq int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
			if dirSeq%2 == 0 {
				return []int64{sendTime}
			}
			return []int64{sendTime + 10*p.D}
		},
	}
	brun, berr := beta.Run(bx, rstp.RunOptions{Delay: interleaver, MaxTicks: 5_000_000})
	bOK := berr == nil && wire.BitsToString(brun.Writes()) == wire.BitsToString(bx)
	t.Rows = append(t.Rows, []string{"A^β(4)", "interleaving past d (illegal)", "n/a", yesNo(bOK)})

	t.Notes = append(t.Notes,
		"alternating-bit cost diverges with loss; A^β's cost is a constant of the timing parameters",
		"under an illegal channel, ack-clocked A^γ still delivers X; time-clocked A^β does not",
	)
	return t, nil
}
