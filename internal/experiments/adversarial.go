package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/chanmodel"
	"repro/internal/ioa"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/wire"
)

// E6IntervalAdversary reproduces Figure 2: the interval-batch adversary
// (everything sent during t_i delivered at the start of t̂_{i+1}) is a
// legal Δ(C) channel; the protocols stay correct under it, and the
// transmitter's per-window profile has at least n/log2 ζ_k(δ1) rounds
// (the Section 5 counting floor).
func E6IntervalAdversary(cfg Config) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "Figure 2 interval-batch adversary: correctness and round counts",
		Source: "Figure 2, Lemmas 5.1/5.4",
		Header: []string{"protocol", "k", "good?", "Y=X?", "ℓ(X) observed", "ℓ(n) floor", "observed/floor"},
	}
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	for _, k := range []int{2, 4, 16} {
		for _, kind := range []rstp.Kind{rstp.KindAlpha, rstp.KindBeta} {
			var (
				s   rstp.Solution
				err error
			)
			switch kind {
			case rstp.KindAlpha:
				if k != 2 {
					continue // A^α's alphabet is M itself
				}
				s, err = rstp.Alpha(p)
			default:
				s, err = rstp.Beta(p, k)
			}
			if err != nil {
				return Table{}, err
			}
			blocks := cfg.blocks() / 4
			if blocks < 4 {
				blocks = 4
			}
			x := wire.RandomBits(blocks*s.BlockBits, rng.Uint64)
			run, err := s.Run(x, rstp.RunOptions{
				TPolicy: sim.FixedGap{C: p.C1},
				RPolicy: sim.FixedGap{C: p.C1},
				Delay:   chanmodel.IntervalBatch{D: p.D},
			})
			if err != nil {
				return Table{}, fmt.Errorf("%s: %w", s, err)
			}
			good := "yes"
			if v := s.Verify(run, x); len(v) > 0 {
				good = fmt.Sprintf("no (%d)", len(v))
			}
			match := "yes"
			if wire.BitsToString(run.Writes()) != wire.BitsToString(x) {
				match = "no"
			}
			// Profile of a fresh transmitter on the same input.
			tr, _, err := s.NewPair(x)
			if err != nil {
				return Table{}, err
			}
			prof, err := adversary.ExtractProfile(tr, s.K, p.Delta1(), 10_000_000)
			if err != nil {
				return Table{}, err
			}
			floor := rstp.MinRoundsPassive(p, s.K, len(x))
			t.Rows = append(t.Rows, []string{
				s.String(), d(s.K), good, match,
				d(prof.Rounds()), f2(floor), f2(float64(prof.Rounds()) / floor),
			})
		}
	}
	t.Notes = append(t.Notes,
		"the batch adversary groups each interval's packets at the next boundary — the worst legal grouping for profile information",
	)
	return t, nil
}

// E7ProfileCounting reproduces the Lemma 5.1/5.2 machinery: correct
// protocols give distinct inputs distinct profiles (2^n of them), while
// the naive streaming protocol collapses windows to one-counts; its
// collision is then executed into two indistinguishable runs, breaking it.
func E7ProfileCounting(Config) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "profile distinctness and the Lemma 5.1 adversary",
		Source: "Lemmas 5.1, 5.2",
		Header: []string{"protocol", "n", "2^n", "distinct profiles", "collision", "adversary outcome"},
	}
	p := rstp.Params{C1: 1, C2: 1, D: 4} // δ1 = 4
	window := p.Delta1()

	// Correct protocols first.
	alphaFactory := func(x []wire.Bit) (ioa.Automaton, error) { return rstp.NewAlphaTransmitter(p, x) }
	col, distinct, err := adversary.FindCollision(alphaFactory, 2, window, 8, 1_000_000)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{"A^α", "8", "256", d(distinct), yesNo(col != nil), "n/a (no collision)"})

	k := 2
	bits := rstp.BetaBlockBits(p, k)
	n := 3 * bits
	betaFactory := func(x []wire.Bit) (ioa.Automaton, error) { return rstp.NewBetaTransmitter(p, k, x) }
	col, distinct, err = adversary.FindCollision(betaFactory, k, window, n, 1_000_000)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("A^β(%d)", k), d(n), d(1 << uint(n)), d(distinct), yesNo(col != nil), "n/a (no collision)",
	})

	// The strawman: collisions exist, and the adversary turns one into two
	// indistinguishable executions.
	naiveFactory := func(x []wire.Bit) (ioa.Automaton, error) { return adversary.NewNaiveTransmitter(x) }
	col, distinct, err = adversary.FindCollision(naiveFactory, 2, window, window, 1_000_000)
	if err != nil {
		return Table{}, err
	}
	outcome := "no collision found"
	if col != nil {
		res, err := adversary.DemonstrateIndistinguishability(*col,
			func() (ioa.Automaton, error) { return adversary.NewNaiveReceiver() }, window)
		if err != nil {
			return Table{}, err
		}
		outcome = fmt.Sprintf("X1=%s X2=%s -> identical Y=%s; protocol broken=%v",
			wire.BitsToString(col.X1), wire.BitsToString(col.X2), wire.BitsToString(res.Y1), res.Broken)
	}
	t.Rows = append(t.Rows, []string{
		"naive-stream", d(window), d(1 << uint(window)), d(distinct), yesNo(col != nil), outcome,
	})
	t.Notes = append(t.Notes,
		"correct solutions realise all 2^n profiles (Lemma 5.1 contrapositive); the naive streamer collapses each window to its one-count",
	)
	return t, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
