package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/chanmodel"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/wire"
)

// measure runs a solution on `blocks` random blocks under the given
// schedules and returns effort per message.
func measure(s rstp.Solution, blocks int, seed int64, opt rstp.RunOptions) (rstp.Effort, error) {
	rng := rand.New(rand.NewSource(seed))
	x := wire.RandomBits(blocks*s.BlockBits, rng.Uint64)
	return s.MeasureEffort(x, opt)
}

// E1AlphaEffort reproduces the Figure 1 discussion: the measured effort of
// A^α equals ⌈d/c1⌉·c2 on the worst-case schedule and stays at or below it
// on every other schedule.
func E1AlphaEffort(cfg Config) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "effort of the simple r-passive solution A^α",
		Source: "Section 4, Figure 1 (eff(A^α) = d·c2/c1)",
		Header: []string{"c1", "c2", "d", "schedule", "delay", "measured", "analytic", "meas/analytic"},
	}
	params := []rstp.Params{
		{C1: 1, C2: 1, D: 8},
		{C1: 2, C2: 3, D: 12},
		{C1: 2, C2: 4, D: 24},
	}
	for _, p := range params {
		s, err := rstp.Alpha(p)
		if err != nil {
			return Table{}, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		runs := []rstp.RunOptions{
			{}, // worst case: fixed(c2) + max delay
			{TPolicy: sim.FixedGap{C: p.C1}, RPolicy: sim.FixedGap{C: p.C1}, Delay: chanmodel.Zero{}},
			{
				TPolicy: sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: rng.Int63n},
				RPolicy: sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: rng.Int63n},
				Delay:   &chanmodel.UniformRandom{D: p.D, Rand: rng},
			},
		}
		analytic := rstp.AlphaEffort(p)
		for _, opt := range runs {
			eff, err := measure(s, cfg.blocks(), cfg.Seed, opt)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				d64(p.C1), d64(p.C2), d64(p.D),
				eff.Schedule, eff.Delay,
				f3(eff.PerMessage), f3(analytic), f2(eff.PerMessage / analytic),
			})
		}
	}
	t.Notes = append(t.Notes, "worst-case schedule attains the analytic value (up to O(1/n) truncation)")
	return t, nil
}

// E4BetaEffort reproduces Figure 3 / Lemma 6.1: measured A^β(k) effort per
// k, against the Lemma 6.1 upper bound and the Theorem 5.3 lower bound,
// under both the worst-case schedule and the in-burst reversal adversary.
func E4BetaEffort(cfg Config) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "effort of the r-passive solution A^β(k) vs bounds",
		Source: "Figure 3 / Lemma 6.1 vs Theorem 5.3",
		Header: []string{"k", "δ1", "bits/block", "measured(worst)", "measured(reversal)", "upper", "lower", "meas/lower"},
	}
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	for _, k := range boundKs {
		s, err := rstp.Beta(p, k)
		if err != nil {
			return Table{}, err
		}
		worst, err := measure(s, cfg.blocks(), cfg.Seed, rstp.RunOptions{})
		if err != nil {
			return Table{}, fmt.Errorf("k=%d worst: %w", k, err)
		}
		rev, err := measure(s, cfg.blocks(), cfg.Seed, rstp.RunOptions{
			TPolicy: sim.FixedGap{C: p.C1},
			RPolicy: sim.FixedGap{C: p.C1},
			Delay:   chanmodel.ReverseBurst{D: p.D, Burst: p.Delta1(), StepGap: p.C1},
		})
		if err != nil {
			return Table{}, fmt.Errorf("k=%d reversal: %w", k, err)
		}
		ub := rstp.BetaUpperBound(p, k)
		lb := rstp.PassiveLowerBound(p, k)
		t.Rows = append(t.Rows, []string{
			d(k), d(p.Delta1()), d(s.BlockBits),
			f3(worst.PerMessage), f3(rev.PerMessage),
			f3(ub), f3(lb), f2(worst.PerMessage / lb),
		})
	}
	t.Notes = append(t.Notes,
		"params c1=2 c2=3 d=12 (δ1=6); measured stays within the Lemma 6.1 bound and within a small constant of the Theorem 5.3 floor",
		"the in-burst reversal adversary does not perturb correctness or effort: decoding is multiset-based")
	return t, nil
}

// E5GammaEffort reproduces Figure 4 / Section 6.2: measured A^γ(k) effort
// against the (3d+c2)/⌊log μ_k(δ2)⌋ upper bound and the active lower bound.
func E5GammaEffort(cfg Config) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "effort of the active solution A^γ(k) vs bounds",
		Source: "Figure 4 / Section 6.2 vs Theorem 5.6",
		Header: []string{"k", "δ2", "bits/block", "measured(worst)", "upper", "lower", "meas/lower"},
	}
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	for _, k := range boundKs {
		s, err := rstp.Gamma(p, k)
		if err != nil {
			return Table{}, err
		}
		worst, err := measure(s, cfg.blocks(), cfg.Seed, rstp.RunOptions{})
		if err != nil {
			return Table{}, fmt.Errorf("k=%d: %w", k, err)
		}
		ub := rstp.GammaUpperBound(p, k)
		lb := rstp.ActiveLowerBound(p, k)
		t.Rows = append(t.Rows, []string{
			d(k), d(p.Delta2()), d(s.BlockBits),
			f3(worst.PerMessage), f3(ub), f3(lb), f2(worst.PerMessage / lb),
		})
	}
	t.Notes = append(t.Notes,
		"the 3d+c2 bound is conservative: it charges a full data+ack round trip per burst")
	return t, nil
}

// E8Crossover reproduces the conclusion-section trade-off: as the timing
// uncertainty c2/c1 grows, the r-passive A^β pays δ1·c2 = d·(c2/c1) per
// round while the active A^γ pays O(d) — the active protocol wins once the
// ratio is large enough.
func E8Crossover(cfg Config) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "passive vs active crossover as timing uncertainty c2/c1 grows",
		Source: "Section 7 discussion",
		Header: []string{"c1", "c2", "d", "c2/c1", "A^β measured", "A^γ measured", "winner"},
	}
	const k = 4
	for _, c2 := range []int64{1, 2, 3, 4, 6, 8} {
		p := rstp.Params{C1: 1, C2: c2, D: 24}
		beta, err := rstp.Beta(p, k)
		if err != nil {
			return Table{}, err
		}
		gamma, err := rstp.Gamma(p, k)
		if err != nil {
			return Table{}, err
		}
		be, err := measure(beta, cfg.blocks(), cfg.Seed, rstp.RunOptions{})
		if err != nil {
			return Table{}, fmt.Errorf("beta c2=%d: %w", c2, err)
		}
		ge, err := measure(gamma, cfg.blocks(), cfg.Seed, rstp.RunOptions{})
		if err != nil {
			return Table{}, fmt.Errorf("gamma c2=%d: %w", c2, err)
		}
		winner := "beta"
		if ge.PerMessage < be.PerMessage {
			winner = "gamma"
		}
		t.Rows = append(t.Rows, []string{
			d64(p.C1), d64(p.C2), d64(p.D), f2(float64(c2)),
			f3(be.PerMessage), f3(ge.PerMessage), winner,
		})
	}
	t.Notes = append(t.Notes,
		"k=4, d=24, c1=1; beta's effort scales with c2/c1 while gamma's stays near 3d/log μ — gamma wins once the ratio is a few fold",
	)
	return t, nil
}
