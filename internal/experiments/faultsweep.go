package experiments

import (
	"errors"
	"fmt"

	"repro/internal/chanmodel"
	"repro/internal/faults"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

// E17FaultSweep runs A^β(4) — bare and hardened — across a grid of
// seeded fault plans (loss × duplication × corruption × blackout ×
// excess delay) and tabulates the guarantee split: the unhardened
// protocol stalls or silently corrupts its output the moment the channel
// leaves the model, while the hardened variant reports zero safety
// violations on every plan and, because every fault window closes,
// recovers to Y = X within a bounded time of the heal.
func E17FaultSweep(cfg Config) (Table, error) {
	t := Table{
		ID:     "E17",
		Title:  "fault sweep: bare vs hardened A^β(4) outside the channel model",
		Source: "degradation outside Δ(C(P)) (Section 4 model boundary)",
		Header: []string{"plan", "protocol", "sends", "delivered", "frac", "safety viol", "Y=X", "last write", "recovery", "outcome"},
	}
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	s, err := rstp.Beta(p, 4)
	if err != nil {
		return Table{}, err
	}
	hs := rstp.Harden(s, rstp.HardenOptions{})

	blocks := cfg.blocks() / 2
	if blocks < 6 {
		blocks = 6
	}
	x := make([]wire.Bit, blocks*s.BlockBits)
	for i := range x {
		if i%3 == 0 || i%5 == 1 {
			x[i] = wire.One
		}
	}

	type planSpec struct {
		name string
		fs   []faults.Fault
	}
	specs := []planSpec{
		{"none", nil},
		{"loss 30%", []faults.Fault{{From: 0, To: 600, Drop: 0.3}}},
		{"dup 40%", []faults.Fault{{From: 0, To: 600, Dup: 0.4}}},
		{"corrupt 30%", []faults.Fault{{From: 0, To: 600, Corrupt: 0.3}}},
		{"blackout [60,240)", []faults.Fault{{From: 60, To: 240, Blackout: true}}},
		{"delay +3d [0,400)", []faults.Fault{{From: 0, To: 400, ExtraDelay: 3 * p.D}}},
		{"combo", []faults.Fault{
			{From: 0, To: 300, Drop: 0.25, Dup: 0.25, Corrupt: 0.25},
			{From: 300, To: 450, Blackout: true},
		}},
	}

	run := func(hardened bool, spec planSpec, seed int64) ([]string, error) {
		plan := faults.NewPlan(seed, chanmodel.MaxDelay{D: p.D}, spec.fs...)
		opt := rstp.RunOptions{Delay: plan, MaxTicks: 100_000}
		var (
			r       *sim.Run
			runErr  error
			protoID string
		)
		if hardened {
			protoID = hs.String()
			r, runErr = hs.Run(x, opt)
		} else {
			protoID = s.String()
			r, runErr = s.Run(x, opt)
		}
		if r == nil {
			return nil, fmt.Errorf("plan %q (%s): no run: %w", spec.name, protoID, runErr)
		}
		safety := len(timed.PrefixInvariant(r.Trace, x, false))
		complete := runErr == nil && len(timed.PrefixInvariant(r.Trace, x, true)) == 0
		outcome := "ok"
		switch {
		case runErr != nil && errors.Is(runErr, sim.ErrNoProgress):
			outcome = "stalled"
		case runErr != nil:
			outcome = "crashed"
		case safety > 0:
			outcome = "corrupted output"
		}
		if hardened && safety > 0 {
			return nil, fmt.Errorf("plan %q: hardened run violated safety", spec.name)
		}
		lastWrite, wrote := r.LastWriteTime()
		lastCell, recovery := "-", "-"
		if wrote {
			lastCell = d64(lastWrite)
			if complete && plan.End() > 0 && lastWrite > plan.End() {
				recovery = d64(lastWrite - plan.End())
			}
		}
		return []string{
			spec.name, protoID, d(r.SendCount), d(r.WriteCount),
			f2(float64(r.WriteCount) / float64(len(x))),
			d(safety), yesNo(complete), lastCell, recovery, outcome,
		}, nil
	}

	for i, spec := range specs {
		seed := cfg.Seed + int64(100+i)
		bare, err := run(false, spec, seed)
		if err != nil {
			return Table{}, err
		}
		hard, err := run(true, spec, seed)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, bare, hard)
	}
	t.Notes = append(t.Notes,
		"c1=2, c2=3, d=12; fault windows are in send-time ticks and all close, so hardened rows must end Y=X",
		"safety viol counts prefix-invariant violations: the hardened protocol reports zero on every plan",
		"recovery = last write − end of last fault window; '-' when the run never completed or was fault-free at the end",
	)
	return t, nil
}
