package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/mc"
	"repro/internal/rstp"
	"repro/internal/tmc"
	"repro/internal/wire"
)

// E15DelaySweep sweeps the channel bound d at fixed clocks: A^α's effort
// grows linearly in d, while A^β's grows only like d/log d — the burst
// grows with d, and each burst packs log2 μ_k(δ1) ~ (k-1)·log2 δ1 bits,
// so the *relative* advantage of encoding widens with latency.
func E15DelaySweep(cfg Config) (Table, error) {
	t := Table{
		ID:     "E15",
		Title:  "effort vs channel bound d: linear A^α vs d/log d A^β",
		Source: "Theorem 5.3 / Lemma 6.1 scaling in d",
		Header: []string{"d", "δ1", "bits/burst", "A^α", "A^β measured", "A^β upper", "A^β lower", "α/β"},
	}
	const k = 4
	rng := rand.New(rand.NewSource(cfg.Seed + 15))
	for _, dd := range []int64{8, 16, 32, 64, 128} {
		p := rstp.Params{C1: 2, C2: 3, D: dd}
		s, err := rstp.Beta(p, k)
		if err != nil {
			return Table{}, err
		}
		blocks := cfg.blocks() / 4
		if blocks < 4 {
			blocks = 4
		}
		x := wire.RandomBits(blocks*s.BlockBits, rng.Uint64)
		eff, err := s.MeasureEffort(x, rstp.RunOptions{})
		if err != nil {
			return Table{}, fmt.Errorf("d=%d: %w", dd, err)
		}
		alpha := rstp.AlphaEffort(p)
		t.Rows = append(t.Rows, []string{
			d64(dd), d(p.Delta1()), d(s.BlockBits),
			f3(alpha), f3(eff.PerMessage),
			f3(rstp.BetaUpperBound(p, k)), f3(rstp.PassiveLowerBound(p, k)),
			f2(alpha / eff.PerMessage),
		})
	}
	t.Notes = append(t.Notes,
		"k=4, c1=2, c2=3; the α/β ratio grows with d: encoding converts latency into burst capacity",
	)
	return t, nil
}

// E16Verification tabulates the exhaustive model-checking results: the
// untimed checker for A^γ (every interleaving) and the timed checker for
// A^α/A^β (every schedule in [c1,c2] × every delivery time within d ×
// every same-tick ordering), with liveness via worst-case completion.
func E16Verification(Config) (Table, error) {
	t := Table{
		ID:     "E16",
		Title:  "exhaustive verification of small instances",
		Source: "good(A) (Section 4) checked over the whole behaviour space",
		Header: []string{"protocol", "params", "|X|", "method", "states", "safe?", "worst completion"},
	}

	// Untimed A^γ.
	for _, tc := range []struct {
		p rstp.Params
		k int
		x string
	}{
		{p: rstp.Params{C1: 1, C2: 2, D: 5}, k: 2, x: "101"},
		{p: rstp.Params{C1: 1, C2: 1, D: 4}, k: 2, x: "10011100"},
	} {
		x, err := wire.ParseBits(tc.x)
		if err != nil {
			return Table{}, err
		}
		tr, err := rstp.NewGammaTransmitter(tc.p, tc.k, x)
		if err != nil {
			return Table{}, err
		}
		rc, err := rstp.NewGammaReceiver(tc.p, tc.k)
		if err != nil {
			return Table{}, err
		}
		res, err := mc.Check(mc.System{
			X: x, T: tr, R: rc,
			ForkT:   func(n mc.Node) (mc.Node, error) { return n.(*rstp.GammaTransmitter).Fork() },
			ForkR:   func(n mc.Node) (mc.Node, error) { return n.(*rstp.GammaReceiver).Fork() },
			Written: func(n mc.Node) []wire.Bit { return n.(*rstp.GammaReceiver).WrittenBits() },
		})
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("A^γ(%d)", tc.k), tc.p.String(), d(len(x)),
			"untimed (all interleavings)", d(res.States), yesNo(res.Violation == nil), "n/a (untimed)",
		})
	}

	// Timed A^α and A^β, with exact worst-case completion.
	timedCase := func(label string, p rstp.Params, sys tmc.System) error {
		res, err := tmc.Check(sys)
		if err != nil {
			return err
		}
		worst := "liveness fails"
		if w, err := tmc.WorstCompletion(sys); err == nil {
			worst = fmt.Sprintf("%d ticks", w)
		}
		t.Rows = append(t.Rows, []string{
			label, p.String(), d(len(sys.X)),
			"timed (all schedules × delays)", d(res.States), yesNo(res.Violation == nil), worst,
		})
		return nil
	}

	pa := rstp.Params{C1: 1, C2: 2, D: 3}
	xa, _ := wire.ParseBits("10")
	at, err := rstp.NewAlphaTransmitter(pa, xa)
	if err != nil {
		return Table{}, err
	}
	ar, err := rstp.NewAlphaReceiver(pa)
	if err != nil {
		return Table{}, err
	}
	if err := timedCase("A^α", pa, tmc.System{
		X: xa, T: at, R: ar,
		ForkT:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.AlphaTransmitter).Fork() },
		ForkR:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.AlphaReceiver).Fork() },
		Written: func(n tmc.Node) []wire.Bit { return n.(*rstp.AlphaReceiver).WrittenBits() },
		C1:      pa.C1, C2: pa.C2, D1: 0, D2: pa.D,
	}); err != nil {
		return Table{}, err
	}

	pb := rstp.Params{C1: 1, C2: 1, D: 3}
	xb, _ := wire.ParseBits("1001")
	bt, err := rstp.NewBetaTransmitter(pb, 2, xb)
	if err != nil {
		return Table{}, err
	}
	br, err := rstp.NewBetaReceiver(pb, 2)
	if err != nil {
		return Table{}, err
	}
	if err := timedCase("A^β(2)", pb, tmc.System{
		X: xb, T: bt, R: br,
		ForkT:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.BetaTransmitter).Fork() },
		ForkR:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.BetaReceiver).Fork() },
		Written: func(n tmc.Node) []wire.Bit { return n.(*rstp.BetaReceiver).WrittenBits() },
		C1:      pb.C1, C2: pb.C2, D1: 0, D2: pb.D,
	}); err != nil {
		return Table{}, err
	}

	t.Notes = append(t.Notes,
		"safety checked in EVERY reachable state; 'worst completion' is the exact adversarial maximum (liveness proof)",
		"see cmd/rstpmc for counterexample generation on broken variants",
	)
	return t, nil
}
