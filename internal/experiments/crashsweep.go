package experiments

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

// E18CrashSweep runs A^β(4) — bare and wrapped in the stabilizing layer —
// across a grid of seeded process-fault plans (crash/restart of either
// endpoint, checkpoint corruption during a crash, live state corruption,
// step-rate violation) and tabulates the guarantee split: the bare
// protocol wedges or writes wrong bits the moment a process leaves the
// model, while the stabilized variant reports zero prefix violations on
// every plan and, because every fault heals, converges to Y = X within a
// bounded settle time of the heal.
func E18CrashSweep(cfg Config) (Table, error) {
	t := Table{
		ID:     "E18",
		Title:  "crash sweep: bare vs stabilized A^β(4) under process faults",
		Source: "self-stabilizing recovery outside the paper's immortal-process model",
		Header: []string{"plan", "protocol", "crashes", "down", "lost in crash", "safety viol", "Y=X", "settle", "sends after heal", "outcome"},
	}
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	s, err := rstp.Beta(p, 4)
	if err != nil {
		return Table{}, err
	}
	ss := rstp.Stabilize(s, rstp.StabilizeOptions{})

	blocks := cfg.blocks() / 2
	if blocks < 12 {
		blocks = 12
	}
	x := make([]wire.Bit, blocks*s.BlockBits)
	for i := range x {
		if i%3 == 0 || i%5 == 1 {
			x[i] = wire.One
		}
	}

	type planSpec struct {
		name string
		cs   []faults.ProcFault
	}
	specs := []planSpec{
		{"none", nil},
		{"crash t [60,240)", []faults.ProcFault{
			{Proc: sim.ProcTransmitter, From: 60, To: 240, Crash: true}}},
		{"crash r [60,240)", []faults.ProcFault{
			{Proc: sim.ProcReceiver, From: 60, To: 240, Crash: true}}},
		{"crash both", []faults.ProcFault{
			{Proc: sim.ProcTransmitter, From: 60, To: 200, Crash: true},
			{Proc: sim.ProcReceiver, From: 260, To: 420, Crash: true}}},
		{"crash t + ckpt corrupt", []faults.ProcFault{
			{Proc: sim.ProcTransmitter, From: 80, To: 240, Crash: true, Corrupt: true}}},
		{"crash r + ckpt corrupt", []faults.ProcFault{
			{Proc: sim.ProcReceiver, From: 80, To: 240, Crash: true, Corrupt: true}}},
		{"live corrupt t @150", []faults.ProcFault{
			{Proc: sim.ProcTransmitter, From: 150, Corrupt: true}}},
		{"live corrupt r @150", []faults.ProcFault{
			{Proc: sim.ProcReceiver, From: 150, Corrupt: true}}},
		{"rate ×4 t [60,300)", []faults.ProcFault{
			{Proc: sim.ProcTransmitter, From: 60, To: 300, RateFactor: 4}}},
	}

	run := func(stabilized bool, spec planSpec, seed int64) ([]string, error) {
		plan := faults.NewProcPlan(seed, spec.cs...)
		opt := rstp.RunOptions{ProcFaults: plan, MaxTicks: 200_000}
		var (
			r       *sim.Run
			runErr  error
			protoID string
		)
		if stabilized {
			protoID = ss.String()
			r, runErr = ss.Run(x, opt)
		} else {
			protoID = s.String()
			r, runErr = s.Run(x, opt)
		}
		if r == nil {
			return nil, fmt.Errorf("plan %q (%s): no run: %w", spec.name, protoID, runErr)
		}
		safety := len(timed.PrefixInvariant(r.Trace, x, false))
		complete := runErr == nil && len(timed.PrefixInvariant(r.Trace, x, true)) == 0
		outcome := "ok"
		switch {
		case runErr != nil && errors.Is(runErr, sim.ErrNoProgress):
			outcome = "stalled"
		case runErr != nil:
			outcome = "wedged"
		case safety > 0:
			outcome = "corrupted output"
		}
		if stabilized && safety > 0 {
			return nil, fmt.Errorf("plan %q: stabilized run violated safety", spec.name)
		}
		crashes, down, lost := "-", "-", "-"
		settle, sendsAfter := "-", "-"
		if st := r.Stabilization; st != nil {
			crashes = d(st.Crashes)
			down = d64(st.DownTicks[0] + st.DownTicks[1])
			lost = d(st.LostWhileDown)
			if st.Stabilized {
				settle = d64(st.SettleTicks)
				sendsAfter = d(st.ConvergenceSends)
			}
		}
		return []string{
			spec.name, protoID, crashes, down, lost,
			d(safety), yesNo(complete), settle, sendsAfter, outcome,
		}, nil
	}

	for i, spec := range specs {
		seed := cfg.Seed + int64(200+i)
		bare, err := run(false, spec, seed)
		if err != nil {
			return Table{}, err
		}
		stab, err := run(true, spec, seed)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, bare, stab)
	}
	t.Notes = append(t.Notes,
		"c1=2, c2=3, d=12 on the model channel; every plan heals, so stabilized rows must end Y=X",
		"bare automata implement no crash interfaces: a crash pauses them but deliveries into the window are lost, and corruption is a no-op",
		"settle = last write − heal of the last fault window; sends after heal = message cost of re-establishing the session and draining",
		"the stabilized wrapper checkpoints (epoch, cursor) with a checksum and falls back to the RESYNC/REPORT/REWIND/READY handshake when state is missing or corrupt",
	)
	return t, nil
}
