// Package experiments regenerates the paper's results — every theorem
// bound, protocol figure and discussion claim — as printable tables. Each
// experiment Exx corresponds to one row of the experiment index in
// DESIGN.md; EXPERIMENTS.md records the measured outcomes.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Table is one regenerated result: a titled grid of rows.
type Table struct {
	// ID is the experiment identifier, e.g. "E4".
	ID string
	// Title describes the experiment.
	Title string
	// Source names the paper artifact reproduced, e.g. "Figure 3 / Lemma 6.1".
	Source string
	// Header holds the column names.
	Header []string
	// Rows holds the data, one slice per row, len matching Header.
	Rows [][]string
	// Notes are free-form observations appended below the table.
	Notes []string
}

// Render writes the table as aligned text.
func (t Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n(source: %s)\n", t.ID, t.Title, t.Source); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as RFC 4180 CSV (one header row; notes and
// metadata omitted), for downstream plotting.
func (t Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Config tunes experiment workloads.
type Config struct {
	// Seed drives all randomness, for reproducible tables.
	Seed int64
	// Quick shrinks workloads (used by tests); full runs measure longer
	// inputs for tighter asymptotics.
	Quick bool
}

// blocks returns the number of blocks to transmit per measurement.
func (c Config) blocks() int {
	if c.Quick {
		return 20
	}
	return 200
}

// Generator produces one experiment table.
type Generator func(Config) (Table, error)

// Registry maps experiment IDs to their generators.
func Registry() map[string]Generator {
	return map[string]Generator{
		"e1":  E1AlphaEffort,
		"e2":  E2PassiveLowerBound,
		"e3":  E3ActiveLowerBound,
		"e4":  E4BetaEffort,
		"e5":  E5GammaEffort,
		"e6":  E6IntervalAdversary,
		"e7":  E7ProfileCounting,
		"e8":  E8Crossover,
		"e9":  E9Baseline,
		"e10": E10WindowSweep,
		"e11": E11AsymmetricClocks,
		"e12": E12BurstAblation,
		"e13": E13AckQueueing,
		"e14": E14OrderedDecoder,
		"e15": E15DelaySweep,
		"e16": E16Verification,
		"e17": E17FaultSweep,
		"e18": E18CrashSweep,
	}
}

// IDs returns the experiment identifiers in numeric order (e1, e2, ...).
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ni, _ := strconv.Atoi(strings.TrimPrefix(ids[i], "e"))
		nj, _ := strconv.Atoi(strings.TrimPrefix(ids[j], "e"))
		return ni < nj
	})
	return ids
}

// All runs every experiment in ID order.
func All(cfg Config) ([]Table, error) {
	var out []Table
	reg := Registry()
	for _, id := range IDs() {
		t, err := reg[id](cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// AllParallel runs every experiment concurrently (they are independent
// and seeded deterministically) and returns the tables in ID order.
// workers <= 0 uses one goroutine per experiment.
func AllParallel(cfg Config, workers int) ([]Table, error) {
	ids := IDs()
	reg := Registry()
	if workers <= 0 || workers > len(ids) {
		workers = len(ids)
	}
	var (
		out  = make([]Table, len(ids))
		errs = make([]error, len(ids))
		jobs = make(chan int)
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t, err := reg[ids[i]](cfg)
				if err != nil {
					errs[i] = fmt.Errorf("experiments: %s: %w", ids[i], err)
					continue
				}
				out[i] = t
			}
		}()
	}
	for i := range ids {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func d64(v int64) string  { return fmt.Sprintf("%d", v) }
