package experiments

import (
	"repro/internal/multiset"
	"repro/internal/rstp"
)

// boundParams is the (c1, c2, d) grid the bound tables sweep.
var boundParams = []rstp.Params{
	{C1: 1, C2: 1, D: 8},
	{C1: 1, C2: 2, D: 8},
	{C1: 2, C2: 3, D: 12},
	{C1: 2, C2: 4, D: 24},
	{C1: 4, C2: 8, D: 64},
}

// boundKs is the packet-alphabet sweep.
var boundKs = []int{2, 4, 8, 16, 32, 64}

// E2PassiveLowerBound tabulates Theorem 5.3: the effort floor
// δ1·c2 / log2 ζ_k(δ1) for every r-passive solution, across the
// (c1, c2, d) grid and alphabet sizes k. The A^α effort and the A^β(k)
// upper bound are shown alongside so the gap structure is visible.
func E2PassiveLowerBound(Config) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "r-passive effort lower bound δ1·c2/log2 ζ_k(δ1)",
		Source: "Theorem 5.3",
		Header: []string{"c1", "c2", "d", "δ1", "k", "log2ζ_k(δ1)", "lower", "A^α", "A^β(k) upper", "upper/lower"},
	}
	for _, p := range boundParams {
		for _, k := range boundKs {
			lb := rstp.PassiveLowerBound(p, k)
			ub := rstp.BetaUpperBound(p, k)
			t.Rows = append(t.Rows, []string{
				d64(p.C1), d64(p.C2), d64(p.D), d(p.Delta1()), d(k),
				f2(multiset.Log2Zeta(k, p.Delta1())),
				f3(lb), f3(rstp.AlphaEffort(p)), f3(ub), f2(ub / lb),
			})
		}
	}
	t.Notes = append(t.Notes,
		"the bound decreases like 1/log k; A^α pays the full δ1·c2 regardless of k",
		"upper/lower stays a small constant — the paper's tightness claim")
	return t, nil
}

// E3ActiveLowerBound tabulates Theorem 5.6: the effort floor
// d / log2 ζ_k(δ2) for every active solution, with the A^γ(k) upper bound
// alongside.
func E3ActiveLowerBound(Config) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "active effort lower bound d/log2 ζ_k(δ2)",
		Source: "Theorem 5.6",
		Header: []string{"c1", "c2", "d", "δ2", "k", "log2ζ_k(δ2)", "lower", "A^γ(k) upper", "upper/lower"},
	}
	for _, p := range boundParams {
		for _, k := range boundKs {
			lb := rstp.ActiveLowerBound(p, k)
			ub := rstp.GammaUpperBound(p, k)
			t.Rows = append(t.Rows, []string{
				d64(p.C1), d64(p.C2), d64(p.D), d(p.Delta2()), d(k),
				f2(multiset.Log2Zeta(k, p.Delta2())),
				f3(lb), f3(ub), f2(ub / lb),
			})
		}
	}
	t.Notes = append(t.Notes,
		"the active bound depends on d and δ2 = ⌊d/c2⌋ only — no c2/c1 penalty")
	return t, nil
}
