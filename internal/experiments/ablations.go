package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/chanmodel"
	"repro/internal/rstp"
	"repro/internal/rstpx"
	"repro/internal/sim"
	"repro/internal/wire"
)

// E13AckQueueing probes a fine point of the Section 6.2 analysis: the
// paper's (3d+c2)/L ceiling implicitly assumes acknowledgements flow
// without queueing at the receiver. Under constant-delay channels
// arrivals are spaced by the send gaps and acks never queue; the Figure 2
// interval-batch adversary instead bunches a whole burst's arrivals at
// one tick, forcing up to δ2 receiver steps of ack serialisation per
// burst. The conservative ceiling (δ2·c2 + 2d + δ2·rc2)/L from
// internal/rstpx covers it.
func E13AckQueueing(cfg Config) (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "A^γ(k) under arrival bunching: ack queueing vs the 3d+c2 bound",
		Source: "Section 6.2 analysis fine point (see EXPERIMENTS.md E5 note)",
		Header: []string{"k", "channel", "measured", "paper UB (3d+c2)/L", "conservative UB"},
	}
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	gp := rstpx.Base(p.C1, p.C2, p.D)
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	for _, k := range []int{2, 4, 16} {
		s, err := rstp.Gamma(p, k)
		if err != nil {
			return Table{}, err
		}
		x := wire.RandomBits(cfg.blocks()*s.BlockBits, rng.Uint64)
		for _, delay := range []chanmodel.DelayPolicy{
			chanmodel.MaxDelay{D: p.D},
			chanmodel.IntervalBatch{D: p.D},
		} {
			eff, err := s.MeasureEffort(x, rstp.RunOptions{
				TPolicy: sim.FixedGap{C: p.C2},
				RPolicy: sim.FixedGap{C: p.C2},
				Delay:   delay,
			})
			if err != nil {
				return Table{}, fmt.Errorf("k=%d %s: %w", k, delay.Name(), err)
			}
			t.Rows = append(t.Rows, []string{
				d(k), delay.Name(),
				f3(eff.PerMessage),
				f3(rstp.GammaUpperBound(p, k)),
				f3(rstpx.GenGammaUpperBound(gp, k)),
			})
		}
	}
	t.Notes = append(t.Notes,
		"c1=2 c2=3 d=12 (δ2=4); at these parameters the ack serialisation overlaps the batch's d of saved delivery time, so batching does not degrade measured effort and the paper bound still holds",
		"the conservative (δ2·c2 + 2d + δ2·rc2)/L ceiling covers the regimes where it would not (large δ2·c2 relative to d)",
	)
	return t, nil
}

// E14OrderedDecoder ablates the multiset design choice: a sequence
// (base-k) code carries strictly more bits per burst — log2(k^δ1) vs
// log2 μ_k(δ1) — but its correctness needs in-burst order, which no legal
// Δ(C) channel promises. The reverse-burst adversary corrupts it while
// the multiset protocol (same burst cadence, same channel) is untouched.
func E14OrderedDecoder(cfg Config) (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "ablation: multiset vs sequence decoding under reordering",
		Source: "Section 3/6.1 design choice (why tomulti, not base-k)",
		Header: []string{"decoder", "bits/burst", "channel", "Y=X?", "effort"},
	}
	p := rstpx.Base(2, 3, 12)
	k, burst := 4, p.GenDelta1()
	rng := rand.New(rand.NewSource(cfg.Seed + 14))
	blocks := cfg.blocks() / 2
	if blocks < 4 {
		blocks = 4
	}

	fifo := chanmodel.FixedDelay{Delay: p.D2}
	reverse := chanmodel.ReverseBurst{D: p.D2, Burst: burst, StepGap: p.TC1}

	// Multiset decoder (the paper's protocol), both channels.
	ms, err := rstpx.NewGenBetaBurst(p, k, burst)
	if err != nil {
		return Table{}, err
	}
	for _, delay := range []chanmodel.DelayPolicy{fifo, reverse} {
		x := wire.RandomBits(blocks*ms.BlockBits, rng.Uint64)
		run, err := ms.Run(x, rstpx.GenRunOptions{
			TPolicy: sim.FixedGap{C: p.TC1},
			RPolicy: sim.FixedGap{C: p.RC1},
			Delay:   delay,
		})
		if err != nil {
			return Table{}, err
		}
		last, _ := run.LastSendTime()
		t.Rows = append(t.Rows, []string{
			"multiset (A^β)", d(ms.BlockBits), delay.Name(),
			yesNo(wire.BitsToString(run.Writes()) == wire.BitsToString(x)),
			f3(float64(last) / float64(len(x))),
		})
	}

	// Ordered decoder, both channels.
	obits := rstpx.OrderedBlockBits(k, burst)
	for _, delay := range []chanmodel.DelayPolicy{fifo, reverse} {
		x := wire.RandomBits(blocks*obits, rng.Uint64)
		tr, err := rstpx.NewOrderedBetaTransmitter(p, k, burst, x)
		if err != nil {
			return Table{}, err
		}
		rc, err := rstpx.NewOrderedBetaReceiver(p, k, burst)
		if err != nil {
			return Table{}, err
		}
		run, simErr := sim.Simulate(sim.Config{
			C1: p.TC1, C2: p.TC2, D: p.D2,
			Transmitter: sim.Process{Auto: tr, Policy: sim.FixedGap{C: p.TC1}},
			Receiver:    sim.Process{Auto: rc, Policy: sim.FixedGap{C: p.RC1}},
			Delay:       delay,
			Stop:        sim.StopAfterWrites(len(x)),
			MaxTicks:    50_000_000,
		})
		correct := simErr == nil && wire.BitsToString(run.Writes()) == wire.BitsToString(x) && !rc.DetectedCorruption()
		effort := "n/a"
		if last, ok := run.LastSendTime(); ok && correct {
			effort = f3(float64(last) / float64(len(x)))
		}
		t.Rows = append(t.Rows, []string{
			"sequence (base-k)", d(obits), delay.Name(), yesNo(correct), effort,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("k=%d burst=%d: the sequence code carries %.2fx the bits — and loses them to the first legal reordering", k, burst, rstpx.OrderedGain(k, burst)),
		"the multiset code is exactly the order-invariant information; Lemma 5.1 says you cannot keep more",
	)
	return t, nil
}
