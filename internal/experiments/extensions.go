package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/chanmodel"
	"repro/internal/rstp"
	"repro/internal/rstpx"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

// E10WindowSweep exercises the Section 7 extension "replace d by two
// constants d1 <= d2": fixing d2 and raising d1 shrinks the reordering
// slack, which shrinks the generalised lower bound AND the protocol's
// wait, so measured effort falls all the way to the no-wait streaming
// regime at d1 = d2.
func E10WindowSweep(cfg Config) (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "delivery-window extension: effort vs slack d2-d1",
		Source: "Section 7 future work (d1 <= d2), generalised Theorem 5.3",
		Header: []string{"d1", "d2", "slack", "w*", "burst", "wait", "measured", "gen upper", "gen lower"},
	}
	const k = 4
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	for _, d1 := range []int64{0, 4, 8, 10, 12} {
		p := rstpx.GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: d1, D2: 12}
		s, err := rstpx.NewGenBeta(p, k)
		if err != nil {
			return Table{}, err
		}
		x := wire.RandomBits(cfg.blocks()*s.BlockBits, rng.Uint64)
		meas, err := s.MeasureEffort(x, rstpx.GenRunOptions{})
		if err != nil {
			return Table{}, fmt.Errorf("d1=%d: %w", d1, err)
		}
		t.Rows = append(t.Rows, []string{
			d64(d1), d64(p.D2), d64(p.Slack()), d(p.WindowSteps()),
			d(s.Burst), d(p.WaitSteps()),
			f3(meas), f3(rstpx.GenBetaUpperBound(p, k, s.Burst)), f3(rstpx.GenPassiveLowerBound(p, k)),
		})
	}
	t.Notes = append(t.Notes,
		"k=4, tc=rc=[2,3], d2=12; at d1=d2 the wait disappears and effort approaches tc2·burst/⌊log μ⌋",
		"the channel's power is the slack, not the latency: d1=10 halves the bound of d1=0",
	)
	return t, nil
}

// E11AsymmetricClocks exercises the Section 7 extension "each process has
// its own c1 and c2": slowing only the receiver leaves the r-passive
// A^β untouched (the receiver never gates transmission) but drags the
// active A^γ down with it, because every burst waits for receiver-paced
// acknowledgements.
func E11AsymmetricClocks(cfg Config) (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "per-process clocks: slow receiver hurts active, not passive",
		Source: "Section 7 future work (per-process c1, c2)",
		Header: []string{"rc1", "rc2", "A^β effort", "A^γ effort", "γ/β"},
	}
	const k = 4
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	beta, err := rstp.Beta(p, k)
	if err != nil {
		return Table{}, err
	}
	gamma, err := rstp.Gamma(p, k)
	if err != nil {
		return Table{}, err
	}
	for _, rc := range []int64{3, 6, 12, 24} {
		bx := wire.RandomBits(cfg.blocks()*beta.BlockBits, rng.Uint64)
		gx := wire.RandomBits(cfg.blocks()*gamma.BlockBits, rng.Uint64)
		be, err := runAsymmetric(beta, bx, p, rc)
		if err != nil {
			return Table{}, fmt.Errorf("beta rc=%d: %w", rc, err)
		}
		ge, err := runAsymmetric(gamma, gx, p, rc)
		if err != nil {
			return Table{}, fmt.Errorf("gamma rc=%d: %w", rc, err)
		}
		t.Rows = append(t.Rows, []string{
			d64(rc / 3 * 2), d64(rc), f3(be), f3(ge), f2(ge / be),
		})
	}
	t.Notes = append(t.Notes,
		"transmitter stays at [2,3], d=12, k=4; receiver slows from rc2=3 to rc2=24",
		"the r-passive effort is receiver-independent; the ack-clocked protocol degrades linearly",
	)
	return t, nil
}

// runAsymmetric measures a classic solution's effort with the receiver on
// its own (slower) clock; good(A) is checked with per-process bounds via
// the generalised validators.
func runAsymmetric(s rstp.Solution, x []wire.Bit, p rstp.Params, rc2 int64) (float64, error) {
	rc1 := rc2 / 3 * 2
	if rc1 < 1 {
		rc1 = 1
	}
	run, err := s.Run(x, rstp.RunOptions{
		TPolicy: sim.FixedGap{C: p.C2},
		RPolicy: sim.FixedGap{C: rc2},
		Delay:   chanmodel.MaxDelay{D: p.D},
		// A slow receiver stretches wall-clock completion far beyond the
		// symmetric defaults.
		MaxTicks: 500_000_000,
	})
	if err != nil {
		return 0, err
	}
	var v []timed.Violation
	v = append(v, timed.Timing(run.Trace)...)
	v = append(v, timed.StepBounds(run.Trace, rstp.TransmitterName, p.C1, p.C2)...)
	v = append(v, timed.StepBounds(run.Trace, rstp.ReceiverName, rc1, rc2)...)
	v = append(v, timed.DelayBound(run.Trace, p.D, true)...)
	v = append(v, timed.PrefixInvariant(run.Trace, x, true)...)
	if len(v) > 0 {
		return 0, fmt.Errorf("not good: %v", v[0])
	}
	last, ok := run.LastSendTime()
	if !ok {
		return 0, fmt.Errorf("nothing sent")
	}
	return float64(last) / float64(len(x)), nil
}

// E12BurstAblation ablates GenBeta's one free design choice — the burst
// size — holding the paper's parameters fixed. Tiny bursts waste the wait
// on few bits; huge bursts gain only log-many bits per extra packet. The
// paper's δ1 choice sits in the flat optimum.
func E12BurstAblation(cfg Config) (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "ablation: burst size vs effort (paper's choice is δ1)",
		Source: "Section 6.1 design choice",
		Header: []string{"burst", "bits/block", "wait", "measured", "gen upper", "vs δ1 burst"},
	}
	const k = 4
	p := rstpx.Base(2, 3, 12) // δ1 = 6
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	measureBurst := func(burst int) (float64, int, error) {
		s, err := rstpx.NewGenBetaBurst(p, k, burst)
		if err != nil {
			return 0, 0, err
		}
		blocks := cfg.blocks()
		if burst >= 24 {
			blocks /= 4 // keep runtimes bounded; long bursts mean long blocks
			if blocks < 4 {
				blocks = 4
			}
		}
		x := wire.RandomBits(blocks*s.BlockBits, rng.Uint64)
		meas, err := s.MeasureEffort(x, rstpx.GenRunOptions{})
		return meas, s.BlockBits, err
	}
	reference, _, err := measureBurst(6) // the paper's δ1
	if err != nil {
		return Table{}, err
	}
	for _, burst := range []int{1, 2, 3, 6, 12, 24, 48} {
		meas, bits, err := measureBurst(burst)
		if err != nil {
			return Table{}, fmt.Errorf("burst=%d: %w", burst, err)
		}
		t.Rows = append(t.Rows, []string{
			d(burst), d(bits), d(p.WaitSteps()),
			f3(meas), f3(rstpx.GenBetaUpperBound(p, k, burst)), f2(meas / reference),
		})
	}
	t.Notes = append(t.Notes,
		"k=4, base params c1=2 c2=3 d=12 (δ1=6); 'vs δ1 burst' is relative to the paper's burst choice",
		"bursts below δ1 pay the full wait for few bits; bursts beyond ~2δ1 gain little (log growth of bits)",
	)
	return t, nil
}
