package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Seed: 1, Quick: true} }

// TestAllExperimentsRun drives every generator end to end in quick mode
// and sanity-checks table shapes.
func TestAllExperimentsRun(t *testing.T) {
	tables, err := All(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(IDs()) {
		t.Fatalf("got %d tables, want %d", len(tables), len(IDs()))
	}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || tb.Source == "" {
			t.Errorf("table %q missing metadata", tb.ID)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("table %s has no rows", tb.ID)
		}
		for i, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("table %s row %d has %d cells, header has %d", tb.ID, i, len(row), len(tb.Header))
			}
		}
		var sb strings.Builder
		if err := tb.Render(&sb); err != nil {
			t.Errorf("render %s: %v", tb.ID, err)
		}
		if !strings.Contains(sb.String(), tb.ID) {
			t.Errorf("rendered table missing ID %s", tb.ID)
		}
	}
}

// TestAllParallelMatchesSequential: the concurrent runner produces the
// same tables (generators are deterministically seeded and independent).
func TestAllParallelMatchesSequential(t *testing.T) {
	seq, err := All(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	par, err := AllParallel(quickCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel %d tables, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i].ID != seq[i].ID {
			t.Fatalf("order mismatch at %d: %s vs %s", i, par[i].ID, seq[i].ID)
		}
		if len(par[i].Rows) != len(seq[i].Rows) {
			t.Fatalf("%s: row counts differ", par[i].ID)
		}
		for r := range seq[i].Rows {
			for c := range seq[i].Rows[r] {
				if par[i].Rows[r][c] != seq[i].Rows[r][c] {
					t.Fatalf("%s row %d col %d: %q vs %q",
						par[i].ID, r, c, par[i].Rows[r][c], seq[i].Rows[r][c])
				}
			}
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := Table{
		ID: "EX", Title: "x", Source: "y",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4,5"}},
	}
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,\"4,5\"\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func cell(t *testing.T, tb Table, row int, col string) string {
	t.Helper()
	for i, h := range tb.Header {
		if h == col {
			return tb.Rows[row][i]
		}
	}
	t.Fatalf("table %s has no column %q (header %v)", tb.ID, col, tb.Header)
	return ""
}

func cellF(t *testing.T, tb Table, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tb, row, col), 64)
	if err != nil {
		t.Fatalf("table %s row %d col %s: %v", tb.ID, row, col, err)
	}
	return v
}

// TestE1ShapeWorstCaseMatchesAnalytic: the first row of each param group is
// the worst case; its ratio must be ~1.
func TestE1ShapeWorstCaseMatchesAnalytic(t *testing.T) {
	tb, err := E1AlphaEffort(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tb.Rows); i += 3 {
		ratio := cellF(t, tb, i, "meas/analytic")
		if ratio < 0.9 || ratio > 1.0001 {
			t.Errorf("row %d worst-case ratio %.3f not ~1", i, ratio)
		}
	}
	// Non-worst schedules never exceed the analytic bound.
	for i := range tb.Rows {
		if r := cellF(t, tb, i, "meas/analytic"); r > 1.0001 {
			t.Errorf("row %d exceeds analytic worst case: %.3f", i, r)
		}
	}
}

// TestE2E3BoundsDecreaseInK: within each parameter group the lower bound
// decreases as k grows.
func TestE2E3BoundsDecreaseInK(t *testing.T) {
	for _, gen := range []Generator{E2PassiveLowerBound, E3ActiveLowerBound} {
		tb, err := gen(quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		group := len(boundKs)
		for g := 0; g+group <= len(tb.Rows); g += group {
			for i := 1; i < group; i++ {
				prev := cellF(t, tb, g+i-1, "lower")
				cur := cellF(t, tb, g+i, "lower")
				if cur > prev {
					t.Errorf("%s rows %d->%d: bound increased %.3f -> %.3f", tb.ID, g+i-1, g+i, prev, cur)
				}
			}
		}
	}
}

// TestE4E5MeasuredWithinBounds: measured effort between lower and upper.
func TestE4E5MeasuredWithinBounds(t *testing.T) {
	tb4, err := E4BetaEffort(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb4.Rows {
		m := cellF(t, tb4, i, "measured(worst)")
		if ub := cellF(t, tb4, i, "upper"); m > ub+0.001 {
			t.Errorf("E4 row %d: measured %.3f > upper %.3f", i, m, ub)
		}
		// Truncation (last send before the final wait) allows measured to
		// dip slightly below the asymptotic lower bound; 15% covers quick
		// mode's short inputs.
		if lb := cellF(t, tb4, i, "lower"); m < 0.85*lb {
			t.Errorf("E4 row %d: measured %.3f far below lower %.3f", i, m, lb)
		}
	}
	tb5, err := E5GammaEffort(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb5.Rows {
		m := cellF(t, tb5, i, "measured(worst)")
		if ub := cellF(t, tb5, i, "upper"); m > ub+0.001 {
			t.Errorf("E5 row %d: measured %.3f > upper %.3f", i, m, ub)
		}
	}
}

// TestE4SeedRobust: the bound relations hold for every seed, not just the
// default — the shapes are claims about the protocol, not about one
// random workload.
func TestE4SeedRobust(t *testing.T) {
	for _, seed := range []int64{2, 17, 9999} {
		tb, err := E4BetaEffort(Config{Seed: seed, Quick: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range tb.Rows {
			m := cellF(t, tb, i, "measured(worst)")
			if ub := cellF(t, tb, i, "upper"); m > ub+0.001 {
				t.Errorf("seed %d row %d: measured %.3f > upper %.3f", seed, i, m, ub)
			}
		}
	}
}

// TestE6AllGood: everything verifies under the Figure 2 adversary.
func TestE6AllGood(t *testing.T) {
	tb, err := E6IntervalAdversary(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		if cell(t, tb, i, "good?") != "yes" || cell(t, tb, i, "Y=X?") != "yes" {
			t.Errorf("row %d not good: %v", i, tb.Rows[i])
		}
		if r := cellF(t, tb, i, "observed/floor"); r < 1.0 {
			t.Errorf("row %d: observed rounds below the counting floor (ratio %.2f)", i, r)
		}
	}
}

// TestE7Outcomes: correct protocols collision-free, naive broken.
func TestE7Outcomes(t *testing.T) {
	tb, err := E7ProfileCounting(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[string]int{}
	for i := range tb.Rows {
		byProto[tb.Rows[i][0]] = i
	}
	for _, proto := range []string{"A^α", "A^β(2)"} {
		i, ok := byProto[proto]
		if !ok {
			t.Fatalf("missing row for %s", proto)
		}
		if cell(t, tb, i, "collision") != "no" {
			t.Errorf("%s should have no collision", proto)
		}
	}
	i, ok := byProto["naive-stream"]
	if !ok {
		t.Fatal("missing naive-stream row")
	}
	if cell(t, tb, i, "collision") != "yes" {
		t.Error("naive-stream should collide")
	}
	if !strings.Contains(cell(t, tb, i, "adversary outcome"), "broken=true") {
		t.Errorf("adversary outcome should report broken=true: %s", cell(t, tb, i, "adversary outcome"))
	}
}

// TestE8CrossoverShape: beta wins at c2/c1 = 1, gamma wins at the top end.
func TestE8CrossoverShape(t *testing.T) {
	tb, err := E8Crossover(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tb, 0, "winner")
	last := cell(t, tb, len(tb.Rows)-1, "winner")
	if first != "beta" {
		t.Errorf("at c2/c1=1 beta should win, got %s", first)
	}
	if last != "gamma" {
		t.Errorf("at the largest ratio gamma should win, got %s", last)
	}
}

// TestE9Shape: baseline cost grows with loss; fault-injection rows say
// gamma survives, beta does not.
func TestE9Shape(t *testing.T) {
	tb, err := E9Baseline(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 7 {
		t.Fatalf("unexpected row count %d", len(tb.Rows))
	}
	lossless := cellF(t, tb, 0, "ticks/message")
	heavy := cellF(t, tb, 3, "ticks/message")
	if heavy <= lossless {
		t.Errorf("cost at heavy loss (%.2f) should exceed lossless (%.2f)", heavy, lossless)
	}
	var gammaRow, betaRow []string
	for _, row := range tb.Rows {
		if strings.Contains(row[1], "illegal") {
			if strings.HasPrefix(row[0], "A^γ") {
				gammaRow = row
			} else {
				betaRow = row
			}
		}
	}
	if gammaRow == nil || betaRow == nil {
		t.Fatal("missing fault-injection rows")
	}
	if gammaRow[3] != "yes" {
		t.Error("gamma should survive the illegal channel")
	}
	if betaRow[3] != "no" {
		t.Error("beta should fail on the illegal channel")
	}
}

func TestRegistryConsistent(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("expected 18 experiments, got %d", len(ids))
	}
	// Numeric order: e1 .. e12.
	for i, id := range ids {
		if want := "e" + strconv.Itoa(i+1); id != want {
			t.Errorf("ids[%d] = %s, want %s", i, id, want)
		}
	}
	reg := Registry()
	for _, id := range ids {
		if reg[id] == nil {
			t.Errorf("nil generator for %s", id)
		}
	}
}

// TestE10WindowSweepShape: both measured effort and the generalised lower
// bound weakly decrease as the slack shrinks.
func TestE10WindowSweepShape(t *testing.T) {
	tb, err := E10WindowSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tb.Rows); i++ {
		if cur, prev := cellF(t, tb, i, "measured"), cellF(t, tb, i-1, "measured"); cur > prev+1e-9 {
			t.Errorf("row %d: measured rose %.3f -> %.3f", i, prev, cur)
		}
		if cur, prev := cellF(t, tb, i, "gen lower"), cellF(t, tb, i-1, "gen lower"); cur > prev+1e-9 {
			t.Errorf("row %d: lower bound rose %.3f -> %.3f", i, prev, cur)
		}
	}
	last := len(tb.Rows) - 1
	if w := cellF(t, tb, last, "wait"); w != 0 {
		t.Errorf("deterministic-delay row should have wait 0, got %v", w)
	}
}

// TestE11AsymmetricShape: beta stays flat, gamma grows.
func TestE11AsymmetricShape(t *testing.T) {
	tb, err := E11AsymmetricClocks(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	betaFirst := cellF(t, tb, 0, "A^β effort")
	betaLast := cellF(t, tb, len(tb.Rows)-1, "A^β effort")
	if betaLast > betaFirst*1.05 {
		t.Errorf("beta effort moved with receiver speed: %.3f -> %.3f", betaFirst, betaLast)
	}
	gammaFirst := cellF(t, tb, 0, "A^γ effort")
	gammaLast := cellF(t, tb, len(tb.Rows)-1, "A^γ effort")
	if gammaLast < 2*gammaFirst {
		t.Errorf("gamma effort should degrade with a slow receiver: %.3f -> %.3f", gammaFirst, gammaLast)
	}
}

// TestE13AckQueueingShape: every measurement below the conservative
// ceiling; batching never beats the paper bound by more than the queue
// allowance.
func TestE13AckQueueingShape(t *testing.T) {
	tb, err := E13AckQueueing(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tb.Rows {
		meas := cellF(t, tb, i, "measured")
		cons := cellF(t, tb, i, "conservative UB")
		if meas > cons+1e-9 {
			t.Errorf("row %d: measured %.3f exceeds conservative ceiling %.3f", i, meas, cons)
		}
		if strings.Contains(tb.Rows[i][1], "max-delay") {
			if paper := cellF(t, tb, i, "paper UB (3d+c2)/L"); meas > paper+1e-9 {
				t.Errorf("row %d: spaced arrivals should respect the paper bound (%.3f > %.3f)", i, meas, paper)
			}
		}
	}
}

// TestE14OrderedDecoderShape: multiset decoder correct on both channels;
// sequence decoder correct in order, broken under reversal.
func TestE14OrderedDecoderShape(t *testing.T) {
	tb, err := E14OrderedDecoder(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	wantCorrect := []string{"yes", "yes", "yes", "no"}
	for i, want := range wantCorrect {
		if got := cell(t, tb, i, "Y=X?"); got != want {
			t.Errorf("row %d (%s/%s): correct = %s, want %s", i, tb.Rows[i][0], tb.Rows[i][2], got, want)
		}
	}
}

// TestE15DelaySweepShape: alpha's effort grows linearly with d while
// beta's lags behind — the α/β ratio must strictly grow down the sweep.
func TestE15DelaySweepShape(t *testing.T) {
	tb, err := E15DelaySweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i := range tb.Rows {
		meas := cellF(t, tb, i, "A^β measured")
		if ub := cellF(t, tb, i, "A^β upper"); meas > ub+0.001 {
			t.Errorf("row %d: measured %.3f above bound %.3f", i, meas, ub)
		}
		ratio := cellF(t, tb, i, "α/β")
		if i > 0 && ratio <= prev {
			t.Errorf("row %d: α/β ratio did not grow (%.2f -> %.2f)", i, prev, ratio)
		}
		prev = ratio
	}
}

// TestE16VerificationAllSafe: every tabulated exhaustive check is safe and
// every timed row proves liveness (a tick count, not a failure note).
func TestE16VerificationAllSafe(t *testing.T) {
	tb, err := E16Verification(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tb.Rows))
	}
	for i := range tb.Rows {
		if cell(t, tb, i, "safe?") != "yes" {
			t.Errorf("row %d not safe: %v", i, tb.Rows[i])
		}
		wc := cell(t, tb, i, "worst completion")
		if strings.HasPrefix(cell(t, tb, i, "method"), "timed") && !strings.Contains(wc, "ticks") {
			t.Errorf("row %d: timed check without a completion bound: %q", i, wc)
		}
	}
}

// TestE12BurstAblationShape: burst 1 is clearly worse than the paper's δ1
// choice, and δ1's relative column is 1.00.
func TestE12BurstAblationShape(t *testing.T) {
	tb, err := E12BurstAblation(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byBurst := map[string]int{}
	for i := range tb.Rows {
		byBurst[tb.Rows[i][0]] = i
	}
	if r := cellF(t, tb, byBurst["6"], "vs δ1 burst"); r != 1.00 {
		t.Errorf("δ1 row relative = %.2f, want 1.00", r)
	}
	if r := cellF(t, tb, byBurst["1"], "vs δ1 burst"); r < 1.5 {
		t.Errorf("burst 1 should be markedly worse, got %.2f", r)
	}
}

// TestE18CrashSweepSplit pins the guarantee split of the crash sweep: the
// stabilized rows all end Y = X with zero safety violations, while at
// least one bare row wedges or corrupts its output under the same plan.
func TestE18CrashSweepSplit(t *testing.T) {
	tb, err := E18CrashSweep(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 || len(tb.Rows)%2 != 0 {
		t.Fatalf("want bare/stabilized row pairs, got %d rows", len(tb.Rows))
	}
	bareFailures := 0
	for i, row := range tb.Rows {
		proto, safety, complete, outcome := row[1], row[5], row[6], row[9]
		stabilized := strings.Contains(proto, "stabilized")
		if i%2 == 1 != stabilized {
			t.Fatalf("row %d: protocol %q out of bare/stabilized order", i, proto)
		}
		if stabilized {
			if safety != "0" || complete != "yes" || outcome != "ok" {
				t.Errorf("stabilized row %q: safety=%s Y=X=%s outcome=%s", row[0], safety, complete, outcome)
			}
			if row[7] == "" {
				t.Errorf("stabilized row %q missing settle cell", row[0])
			}
		} else if complete != "yes" || safety != "0" {
			bareFailures++
		}
	}
	if bareFailures < 3 {
		t.Errorf("only %d bare rows failed; the sweep should show the bare protocol breaking under crash plans", bareFailures)
	}
}
