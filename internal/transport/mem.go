package transport

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chanmodel"
	"repro/internal/obs"
	"repro/internal/wire"
)

// MemOptions configures an in-memory transport.
type MemOptions struct {
	// D is the delay bound in ticks; the default policy delivers every
	// frame within it.
	D int64
	// Delay computes each frame's arrival times (default: uniform random
	// in [0, D], seeded with Seed). Substituting a *faults.Plan injects
	// loss, duplication, corruption and excess delay — the same plans the
	// simulator uses.
	Delay chanmodel.DelayPolicy
	// Seed seeds the default delay policy (default 1).
	Seed int64
	// Buffer is the per-direction delivery channel capacity (default 1024).
	Buffer int
}

func (o MemOptions) withDefaults() MemOptions {
	if o.D <= 0 {
		o.D = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Delay == nil {
		o.Delay = &chanmodel.UniformRandom{D: o.D, Rand: rand.New(rand.NewSource(o.Seed))}
	}
	if o.Buffer <= 0 {
		o.Buffer = 1024
	}
	return o
}

// pending is one scheduled delivery.
type pending struct {
	at   int64 // arrival tick
	tie  int64 // insertion order, breaking same-tick ties FIFO
	sent int64 // send tick, for delivery-latency observation
	f    wire.Frame
}

type pendingHeap []pending

func (h pendingHeap) Len() int { return len(h) }
func (h pendingHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].tie < h[j].tie
}
func (h pendingHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)   { *h = append(*h, x.(pending)) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Mem is the in-memory transport: a real-time rendering of the simulator's
// channel. A single scheduler goroutine delivers frames in computed
// arrival-tick order, so even under scheduler jitter the *relative* order
// of deliveries is exactly what the delay policy (and any fault plan)
// decided — late wall-clock delivery can stretch time but never introduce
// reordering beyond the model's.
type Mem struct {
	clock *Clock
	opt   MemOptions

	mu      sync.Mutex
	heap    pendingHeap
	nextTie int64
	dirSeq  [2]int64 // per-direction policy sequence numbers
	closed  bool

	wake chan struct{}
	done chan struct{}
	dead chan struct{} // closed when the scheduler has exited

	del map[wire.Dir]chan wire.Frame

	sends     atomic.Int64
	delivered atomic.Int64
	// latency is wired by Instrument after construction; atomic because
	// the scheduler goroutine is already running by then.
	latency atomic.Pointer[obs.Histogram]

	closeOnce sync.Once
}

var _ Transport = (*Mem)(nil)

// NewMem starts an in-memory transport against the shared clock.
func NewMem(clock *Clock, opt MemOptions) *Mem {
	m := &Mem{
		clock: clock,
		opt:   opt.withDefaults(),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
		dead:  make(chan struct{}),
	}
	m.del = map[wire.Dir]chan wire.Frame{
		wire.TtoR: make(chan wire.Frame, m.opt.Buffer),
		wire.RtoT: make(chan wire.Frame, m.opt.Buffer),
	}
	go m.schedule()
	return m
}

// Name renders the transport and its delay policy.
func (m *Mem) Name() string { return fmt.Sprintf("mem(d=%d)/%s", m.opt.D, m.opt.Delay.Name()) }

// Send computes the frame's arrival schedule under the delay policy and
// queues the deliveries.
func (m *Mem) Send(f wire.Frame) error {
	sendTime := m.clock.Now()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	di := 0
	if f.Dir == wire.RtoT {
		di = 1
	}
	seq := m.dirSeq[di]
	m.dirSeq[di]++
	// Delay policies and fault plans keep internal rand/stats state; all
	// calls are serialised under m.mu.
	var arrivals []chanmodel.Arrival
	if mut, ok := m.opt.Delay.(chanmodel.Mutator); ok {
		arrivals = mut.ArrivalsMut(seq, sendTime, f.Dir, f.P)
	} else {
		for _, at := range m.opt.Delay.Arrivals(seq, sendTime, f.Dir, f.P) {
			arrivals = append(arrivals, chanmodel.Arrival{At: at, P: f.P})
		}
	}
	for _, a := range arrivals {
		df := f
		df.P = a.P
		heap.Push(&m.heap, pending{at: a.At, tie: m.nextTie, sent: sendTime, f: df})
		m.nextTie++
	}
	m.mu.Unlock()
	m.sends.Add(1)
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return nil
}

// Deliveries returns the delivery channel for frames traveling in dir.
func (m *Mem) Deliveries(dir wire.Dir) <-chan wire.Frame { return m.del[dir] }

// Close stops the scheduler and closes the delivery channels. Frames
// still in flight are discarded.
func (m *Mem) Close() error {
	m.closeOnce.Do(func() {
		m.mu.Lock()
		m.closed = true
		m.mu.Unlock()
		close(m.done)
		<-m.dead
	})
	return nil
}

// schedule is the single delivery goroutine: it pops pending frames in
// (arrival tick, insertion order) and pushes each to its direction's
// channel, sleeping until the next arrival is due.
func (m *Mem) schedule() {
	defer func() {
		close(m.del[wire.TtoR])
		close(m.del[wire.RtoT])
		close(m.dead)
	}()
	for {
		m.mu.Lock()
		var (
			next pending
			have bool
		)
		if len(m.heap) > 0 {
			next = m.heap[0]
			have = true
		}
		m.mu.Unlock()

		if !have {
			select {
			case <-m.done:
				return
			case <-m.wake:
			}
			continue
		}
		if wait := m.clock.Until(next.at); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-m.done:
				timer.Stop()
				return
			case <-m.wake:
				// An earlier arrival may have been queued; re-evaluate.
				timer.Stop()
				continue
			case <-timer.C:
			}
		}
		m.mu.Lock()
		e := heap.Pop(&m.heap).(pending)
		m.mu.Unlock()
		select {
		case m.del[e.f.Dir] <- e.f:
			m.delivered.Add(1)
			if h := m.latency.Load(); h != nil {
				h.Observe(m.clock.Now() - e.sent)
			}
		case <-m.done:
			return
		}
	}
}
