package transport

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// flaky is a scriptable inner transport: it fails the first failN Sends
// with errTransient (or errClosed when dieInstead is set), then delivers
// every accepted frame straight to its channels.
type flaky struct {
	mu         sync.Mutex
	failN      int
	dieInstead bool
	accepted   int
	attempts   int
	closed     bool

	del map[wire.Dir]chan wire.Frame
}

var errTransient = errors.New("transient socket error")

func newFlaky(failN int, dieInstead bool) *flaky {
	return &flaky{
		failN:      failN,
		dieInstead: dieInstead,
		del: map[wire.Dir]chan wire.Frame{
			wire.TtoR: make(chan wire.Frame, 1024),
			wire.RtoT: make(chan wire.Frame, 1024),
		},
	}
}

func (f *flaky) Name() string { return "flaky" }

func (f *flaky) Send(fr wire.Frame) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.attempts++
	if f.failN != 0 {
		if f.failN > 0 {
			f.failN--
		}
		if f.dieInstead {
			return ErrClosed
		}
		return errTransient
	}
	f.accepted++
	f.del[fr.Dir] <- fr
	return nil
}

func (f *flaky) Deliveries(dir wire.Dir) <-chan wire.Frame { return f.del[dir] }

func (f *flaky) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.closed {
		f.closed = true
		close(f.del[wire.TtoR])
		close(f.del[wire.RtoT])
	}
	return nil
}

func (f *flaky) heal() {
	f.mu.Lock()
	f.failN = 0
	f.mu.Unlock()
}

func (f *flaky) stats() (attempts, accepted int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts, f.accepted
}

func testFrame(seq int64) wire.Frame {
	return wire.Frame{Session: 1, Dir: wire.TtoR, Seq: seq, P: wire.DataPacket(1)}
}

func TestResilientPassThrough(t *testing.T) {
	r := NewResilient(NewMem(testClock(), MemOptions{D: 2}), testClock(), ResilientOptions{D: 12, C1: 2})
	defer r.Close()
	const n = 32
	for i := 0; i < n; i++ {
		if err := r.Send(testFrame(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, r.Deliveries(wire.TtoR), n, 5*time.Second)
	if len(got) != n {
		t.Fatalf("deliveries %d, want %d", len(got), n)
	}
	if r.Retransmits() != 0 || r.BreakerOpens() != 0 {
		t.Fatalf("healthy path counted retransmits=%d breakerOpens=%d", r.Retransmits(), r.BreakerOpens())
	}
}

// TestResilientRetriesTransientFailure pins the bounded retransmission:
// an inner transport that fails twice then heals costs retries, not a
// lost frame, and the retry count shows in the counter.
func TestResilientRetriesTransientFailure(t *testing.T) {
	inner := newFlaky(2, false)
	r := NewResilient(inner, testClock(), ResilientOptions{D: 12, C1: 2})
	defer r.Close()
	if err := r.Send(testFrame(1)); err != nil {
		t.Fatalf("send with 2 transient failures and budget 6: %v", err)
	}
	attempts, accepted := inner.stats()
	if attempts != 3 || accepted != 1 {
		t.Fatalf("attempts=%d accepted=%d, want 3 attempts with 1 accepted", attempts, accepted)
	}
	if r.Retransmits() != 2 {
		t.Fatalf("retransmits = %d, want 2", r.Retransmits())
	}
	got := collect(t, r.Deliveries(wire.TtoR), 1, 5*time.Second)
	if got[0].Seq != 1 {
		t.Fatalf("delivered %v", got[0])
	}
}

// TestResilientRetryBudgetIsDeadlineBounded pins the cap: against an
// inner transport that never heals, one Send gives up after at most
// δ1 retries and d ticks of cumulative backoff — it must not hang.
func TestResilientRetryBudgetIsDeadlineBounded(t *testing.T) {
	inner := newFlaky(-1, false) // fail forever
	r := NewResilient(inner, testClock(), ResilientOptions{D: 12, C1: 2, BreakerThreshold: 1000})
	defer r.Close()
	start := time.Now()
	err := r.Send(testFrame(1))
	if err == nil {
		t.Fatal("send against a dead path succeeded")
	}
	if errors.Is(err, ErrClosed) {
		t.Fatalf("transient failure escalated to ErrClosed: %v", err)
	}
	// Backoff 1+2+4 = 7 ticks ≤ d = 12; the next doubling would overflow
	// the deadline, so exactly 3 retries happen.
	if r.Retransmits() != 3 {
		t.Fatalf("retransmits = %d, want 3 (deadline-capped)", r.Retransmits())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-bounded retry took %v", elapsed)
	}
}

// TestResilientBreakerOpensAndRecovers drives the breaker's full cycle:
// consecutive failures open it, opens shed fast, the probe after
// ProbeTicks closes it once the inner transport heals.
func TestResilientBreakerOpensAndRecovers(t *testing.T) {
	inner := newFlaky(-1, false)
	clock := testClock()
	r := NewResilient(inner, clock, ResilientOptions{D: 4, C1: 4, BreakerThreshold: 3, ProbeTicks: 20})
	defer r.Close()
	for i := 0; i < 3; i++ {
		if err := r.Send(testFrame(int64(i + 1))); err == nil {
			t.Fatal("send on a dead path succeeded")
		}
	}
	if r.BreakerOpens() != 1 {
		t.Fatalf("breaker opens = %d, want 1 after threshold", r.BreakerOpens())
	}
	if err := r.Send(testFrame(4)); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("send with open breaker: %v, want ErrBreakerOpen", err)
	}
	if r.FastFails() == 0 {
		t.Fatal("open breaker shed nothing")
	}
	inner.heal()
	// Wait out the probe window, then the next Send is the probe.
	time.Sleep(clock.Ticks(25))
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := r.Send(testFrame(5))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %v", err)
		}
		time.Sleep(clock.Ticks(25))
	}
	// Closed again: subsequent sends flow without fast-fails.
	if err := r.Send(testFrame(6)); err != nil {
		t.Fatalf("send after recovery: %v", err)
	}
}

// TestResilientRedialsDeadTransport pins the reconnect path: when the
// inner transport dies (ErrClosed), the wrapper redials, swaps in the
// fresh transport, and both send and receive paths keep working.
func TestResilientRedialsDeadTransport(t *testing.T) {
	clock := testClock()
	first := newFlaky(1, true) // first Send reports the transport dead
	second := newFlaky(0, false)
	r := NewResilient(first, clock, ResilientOptions{
		D: 4, C1: 4,
		Redial: func() (Transport, error) { return second, nil },
	})
	defer r.Close()
	if err := r.Send(testFrame(1)); err != nil {
		t.Fatalf("send across a redial: %v", err)
	}
	if r.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", r.Reconnects())
	}
	got := collect(t, r.Deliveries(wire.TtoR), 1, 5*time.Second)
	if got[0].Seq != 1 {
		t.Fatalf("delivered %v", got[0])
	}
	if _, accepted := second.stats(); accepted != 1 {
		t.Fatalf("fresh transport accepted %d frames, want 1", accepted)
	}
}

// TestResilientRedialExhaustionIsTerminal pins the bounded reconnect: a
// Redial that never succeeds marks the transport dead after MaxRedials,
// and Send reports ErrClosed from then on.
func TestResilientRedialExhaustionIsTerminal(t *testing.T) {
	inner := newFlaky(-1, true)
	r := NewResilient(inner, testClock(), ResilientOptions{
		D: 2, C1: 2, MaxRedials: 2,
		Redial: func() (Transport, error) { return nil, errTransient },
	})
	defer r.Close()
	if err := r.Send(testFrame(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after redial exhaustion: %v, want ErrClosed", err)
	}
	if err := r.Send(testFrame(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("second send after exhaustion: %v, want ErrClosed", err)
	}
}

// TestResilientGoroutineBudget is the leak test the issue asks for:
// drive the wrapper through breaker opens and a close, then require the
// goroutine count back within a small budget of the baseline.
func TestResilientGoroutineBudget(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		inner := newFlaky(-1, false)
		r := NewResilient(inner, testClock(), ResilientOptions{D: 4, C1: 4, BreakerThreshold: 2})
		for s := 0; s < 3; s++ {
			_ = r.Send(testFrame(int64(s + 1)))
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		// Close must be terminal and idempotent.
		if err := r.Send(testFrame(99)); !errors.Is(err, ErrClosed) {
			t.Fatalf("send after close: %v", err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+3 {
		t.Fatalf("goroutines %d after close, baseline %d: leak", n, before)
	}
}
