package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/chanmodel"
	"repro/internal/faults"
	"repro/internal/wire"
)

func testClock() *Clock { return NewClock(50 * time.Microsecond) }

func TestClockMonotone(t *testing.T) {
	c := NewClock(time.Millisecond)
	a := c.Now()
	time.Sleep(3 * time.Millisecond)
	b := c.Now()
	if b < a {
		t.Fatalf("clock went backwards: %d then %d", a, b)
	}
	if b == a {
		t.Fatalf("clock did not advance over 3ms at 1ms ticks")
	}
	if c.Ticks(5) != 5*time.Millisecond {
		t.Fatalf("Ticks(5) = %v", c.Ticks(5))
	}
}

func collect(t *testing.T, ch <-chan wire.Frame, n int, timeout time.Duration) []wire.Frame {
	t.Helper()
	var out []wire.Frame
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case f, ok := <-ch:
			if !ok {
				t.Fatalf("deliveries closed after %d of %d frames", len(out), n)
			}
			out = append(out, f)
		case <-deadline:
			t.Fatalf("timed out with %d of %d frames", len(out), n)
		}
	}
	return out
}

func TestMemDeliversBothDirections(t *testing.T) {
	m := NewMem(testClock(), MemOptions{D: 4})
	defer m.Close()
	for i := 0; i < 10; i++ {
		if err := m.Send(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(wire.Symbol(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Send(wire.Frame{Session: 1, Dir: wire.RtoT, Seq: 99, P: wire.AckPacket()}); err != nil {
		t.Fatal(err)
	}
	tr := collect(t, m.Deliveries(wire.TtoR), 10, 2*time.Second)
	rt := collect(t, m.Deliveries(wire.RtoT), 1, 2*time.Second)
	seen := map[int64]bool{}
	for _, f := range tr {
		if f.Dir != wire.TtoR || f.Session != 1 {
			t.Fatalf("stray frame %v", f)
		}
		seen[f.Seq] = true
	}
	if len(seen) != 10 {
		t.Fatalf("want 10 distinct seqs, got %d", len(seen))
	}
	if rt[0].P.Kind != wire.Ack {
		t.Fatalf("r->t frame %v", rt[0])
	}
}

// TestMemDeliveryOrderMatchesPolicy pins the ordering guarantee the
// session protocols depend on: whatever arrival times the delay policy
// computes, frames come out in that order — never reordered further by
// scheduler jitter. With MaxDelay (FIFO schedule) the output order must
// equal the send order exactly.
func TestMemDeliveryOrderMatchesPolicy(t *testing.T) {
	m := NewMem(testClock(), MemOptions{D: 8, Delay: chanmodel.MaxDelay{D: 8}})
	defer m.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := m.Send(wire.Frame{Session: 2, Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(0)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, m.Deliveries(wire.TtoR), n, 5*time.Second)
	for i, f := range got {
		if f.Seq != int64(i+1) {
			t.Fatalf("delivery %d has seq %d: FIFO schedule was reordered", i, f.Seq)
		}
	}
}

func TestMemDelayWithinBound(t *testing.T) {
	clock := NewClock(200 * time.Microsecond)
	const d = 10
	m := NewMem(clock, MemOptions{D: d, Seed: 7})
	defer m.Close()
	const n = 50
	sendTick := clock.Now()
	for i := 0; i < n; i++ {
		if err := m.Send(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(0)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, m.Deliveries(wire.TtoR), n, 5*time.Second)
	// All sends happened at ~sendTick; the last arrival tick must be
	// within d of the last send plus generous scheduler slack.
	lastArrival := clock.Now()
	if lastArrival > sendTick+3*d+20 {
		t.Fatalf("deliveries stretched to tick %d for sends at %d (d=%d)", lastArrival, sendTick, d)
	}
	if len(got) != n {
		t.Fatalf("lost frames: %d of %d", len(got), n)
	}
}

// TestMemFaultPlanInjection reuses a faults.Plan as the delay policy and
// checks loss and duplication show up in the delivered stream.
func TestMemFaultPlanInjection(t *testing.T) {
	plan := faults.NewPlan(3, chanmodel.MaxDelay{D: 4},
		faults.Fault{From: 0, To: 1 << 50, Drop: 0.5, Dup: 0.3})
	m := NewMem(testClock(), MemOptions{D: 4, Delay: plan})
	defer m.Close()
	const n = 400
	for i := 0; i < n; i++ {
		if err := m.Send(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(1)}); err != nil {
			t.Fatal(err)
		}
	}
	affected, dropped, duplicated, _, _ := plan.Stats()
	if affected != n {
		t.Fatalf("plan saw %d of %d sends", affected, n)
	}
	if dropped == 0 || duplicated == 0 {
		t.Fatalf("expected drops and dups at these rates, got dropped=%d duplicated=%d", dropped, duplicated)
	}
	want := n - dropped + duplicated
	got := collect(t, m.Deliveries(wire.TtoR), want, 5*time.Second)
	if len(got) != want {
		t.Fatalf("deliveries %d, want %d", len(got), want)
	}
}

func TestMemConcurrentSendersRaceClean(t *testing.T) {
	m := NewMem(testClock(), MemOptions{D: 3, Buffer: 8192})
	defer m.Close()
	var wg sync.WaitGroup
	const senders, per = 16, 50
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = m.Send(wire.Frame{Session: uint32(s), Dir: wire.TtoR, Seq: int64(s*per + i + 1), P: wire.DataPacket(0)})
			}
		}(s)
	}
	done := make(chan struct{})
	go func() {
		collect(t, m.Deliveries(wire.TtoR), senders*per, 10*time.Second)
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out draining concurrent sends")
	}
}

func TestMemSendAfterCloseFails(t *testing.T) {
	m := NewMem(testClock(), MemOptions{D: 2})
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := m.Send(wire.Frame{Dir: wire.TtoR, P: wire.DataPacket(0)}); err != ErrClosed {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
	// Delivery channels must be closed.
	if _, ok := <-m.Deliveries(wire.TtoR); ok {
		t.Fatal("t->r deliveries still open after close")
	}
}

func TestUDPLoopbackRoundTrip(t *testing.T) {
	u, err := NewUDPLoopback(256)
	if err != nil {
		t.Skipf("udp loopback unavailable: %v", err)
	}
	defer u.Close()
	const n = 64
	for i := 0; i < n; i++ {
		if err := u.Send(wire.Frame{Session: 9, Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(wire.Symbol(i % 4))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Send(wire.Frame{Session: 9, Dir: wire.RtoT, Seq: 1, P: wire.AckPacket()}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, u.Deliveries(wire.TtoR), n, 5*time.Second)
	seen := map[int64]bool{}
	for _, f := range got {
		seen[f.Seq] = true
	}
	if len(seen) != n {
		t.Fatalf("want %d distinct frames, got %d", n, len(seen))
	}
	rt := collect(t, u.Deliveries(wire.RtoT), 1, 5*time.Second)
	if rt[0].P.Kind != wire.Ack {
		t.Fatalf("r->t frame %v", rt[0])
	}
}

// TestUDPMalformedDatagramIgnored sends raw junk (including an
// over-declared payload length) straight at the receiver socket: the
// reader must count and drop it without dying.
func TestUDPMalformedDatagramIgnored(t *testing.T) {
	u, err := NewUDPLoopback(16)
	if err != nil {
		t.Skipf("udp loopback unavailable: %v", err)
	}
	defer u.Close()
	raw, err := wire.EncodeFrame(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: 1, P: wire.DataPacket(1), Payload: []byte{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	raw[32], raw[33] = 0xff, 0xff // declare 65535 payload bytes
	junk, err := net.Dial("udp4", u.rAddr.String())
	if err != nil {
		t.Skipf("udp dial unavailable: %v", err)
	}
	defer junk.Close()
	if _, err := junk.Write(raw); err != nil {
		t.Fatal(err)
	}
	if _, err := junk.Write([]byte("definitely not a frame")); err != nil {
		t.Fatal(err)
	}
	// A good frame after the junk must still get through.
	if err := u.Send(wire.Frame{Session: 2, Dir: wire.TtoR, Seq: 5, P: wire.DataPacket(2)}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, u.Deliveries(wire.TtoR), 1, 5*time.Second)
	if got[0].Session != 2 || got[0].Seq != 5 {
		t.Fatalf("unexpected frame %v", got[0])
	}
	deadline := time.Now().Add(2 * time.Second)
	for u.Malformed() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if u.Malformed() < 2 {
		t.Fatalf("malformed datagrams not counted: %d", u.Malformed())
	}
}

// TestUDPSendRejectsOversizedPayload pins the datagram bound: a frame
// whose header+payload cannot fit one IPv4 UDP datagram (65,507 payload
// bytes) is rejected up front with a clear error instead of failing in
// the kernel with EMSGSIZE, while the exact bound still sends.
func TestUDPSendRejectsOversizedPayload(t *testing.T) {
	u, err := NewUDPLoopback(16)
	if err != nil {
		t.Skipf("udp loopback unavailable: %v", err)
	}
	defer u.Close()
	f := wire.Frame{Session: 1, Dir: wire.TtoR, Seq: 1, P: wire.DataPacket(1), Payload: make([]byte, MaxUDPPayload+1)}
	if err := u.Send(f); err == nil {
		t.Fatal("frame over the datagram bound accepted")
	}
	f.Payload = make([]byte, MaxUDPPayload)
	if err := u.Send(f); err != nil {
		t.Fatalf("max-size frame rejected: %v", err)
	}
	got := collect(t, u.Deliveries(wire.TtoR), 1, 5*time.Second)
	if len(got[0].Payload) != MaxUDPPayload {
		t.Fatalf("max-size payload truncated to %d bytes", len(got[0].Payload))
	}
}
