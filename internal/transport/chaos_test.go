package transport

import (
	"testing"
	"time"

	"repro/internal/chanmodel"
	"repro/internal/faults"
	"repro/internal/wire"
)

// chaosPlan builds a middleware-style plan: zero base delay (the inner
// transport supplies the latency), faults on top.
func chaosPlan(seed int64, fs ...faults.Fault) *faults.Plan {
	return faults.NewPlan(seed, chanmodel.Zero{}, fs...)
}

func TestChaosDropAndDupOverMem(t *testing.T) {
	plan := chaosPlan(5, faults.Fault{From: 0, To: 1 << 50, Drop: 0.4, Dup: 0.3})
	c := NewChaos(NewMem(testClock(), MemOptions{D: 4, Buffer: 4096}), testClock(), plan)
	defer c.Close()
	const n = 400
	for i := 0; i < n; i++ {
		if err := c.Send(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(1)}); err != nil {
			t.Fatal(err)
		}
	}
	affected, dropped, duplicated, _, _ := plan.Stats()
	if affected != n {
		t.Fatalf("plan saw %d of %d sends", affected, n)
	}
	if dropped == 0 || duplicated == 0 {
		t.Fatalf("expected drops and dups at these rates, got dropped=%d duplicated=%d", dropped, duplicated)
	}
	want := n - dropped + duplicated
	got := collect(t, c.Deliveries(wire.TtoR), want, 5*time.Second)
	if len(got) != want {
		t.Fatalf("deliveries %d, want %d", len(got), want)
	}
}

// TestChaosDeterministicAcrossRuns pins the middleware's reproducibility:
// two wrappers with the same seed and the same send schedule inject the
// same faults (the rand stream is consumed per-sequence-number under one
// lock, exactly like the simulator's use of the plan).
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	run := func() (dropped, duplicated, corrupted int) {
		plan := chaosPlan(11, faults.Fault{From: 0, To: 1 << 50, Drop: 0.3, Dup: 0.2, Corrupt: 0.1})
		c := NewChaos(NewMem(testClock(), MemOptions{D: 2, Buffer: 4096}), testClock(), plan)
		defer c.Close()
		for i := 0; i < 300; i++ {
			if err := c.Send(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(2)}); err != nil {
				t.Fatal(err)
			}
		}
		_, dropped, duplicated, corrupted, _ = plan.Stats()
		return
	}
	d1, u1, c1 := run()
	d2, u2, c2 := run()
	if d1 != d2 || u1 != u2 || c1 != c2 {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", d1, u1, c1, d2, u2, c2)
	}
}

// TestChaosCorruptionOverUDP is the chaos-over-a-real-socket case the
// middleware exists for: corrupted symbols must ride real datagrams to
// the far side without the codec or the reader ever failing.
func TestChaosCorruptionOverUDP(t *testing.T) {
	u, err := NewUDPLoopback(4096)
	if err != nil {
		t.Skipf("udp loopback unavailable: %v", err)
	}
	plan := chaosPlan(7, faults.Fault{From: 0, To: 1 << 50, Corrupt: 1.0})
	c := NewChaos(u, testClock(), plan)
	defer c.Close()
	const n = 64
	for i := 0; i < n; i++ {
		if err := c.Send(wire.Frame{Session: 3, Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(0)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, c.Deliveries(wire.TtoR), n, 5*time.Second)
	_, _, _, corrupted, _ := plan.Stats()
	if corrupted != n {
		t.Fatalf("corrupted %d of %d frames at rate 1.0", corrupted, n)
	}
	mutated := 0
	for _, f := range got {
		if f.P.Symbol != 0 {
			mutated++
		}
	}
	if mutated != n {
		t.Fatalf("%d of %d delivered frames carry the corrupted symbol", mutated, n)
	}
	if u.Malformed() != 0 {
		t.Fatalf("symbol corruption produced %d malformed datagrams (frames must stay parseable)", u.Malformed())
	}
}

// TestChaosBlackoutWindow pins the partition clause: every frame sent
// inside the window vanishes, frames after it flow again.
func TestChaosBlackoutWindow(t *testing.T) {
	clock := testClock()
	now := clock.Now()
	plan := chaosPlan(1, faults.Fault{From: now, To: now + 1<<40, Blackout: true})
	c := NewChaos(NewMem(clock, MemOptions{D: 2}), clock, plan)
	defer c.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := c.Send(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(1)}); err != nil {
			t.Fatal(err)
		}
	}
	_, dropped, _, _, _ := plan.Stats()
	if dropped != n {
		t.Fatalf("blackout dropped %d of %d frames", dropped, n)
	}
	select {
	case f := <-c.Deliveries(wire.TtoR):
		t.Fatalf("frame %v escaped the blackout", f)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestChaosExtraDelayDelivers pins the latency-spike clause: delayed
// frames are held by the wrapper's scheduler and still delivered.
func TestChaosExtraDelayDelivers(t *testing.T) {
	plan := chaosPlan(1, faults.Fault{From: 0, To: 1 << 50, ExtraDelay: 40})
	c := NewChaos(NewMem(testClock(), MemOptions{D: 2}), testClock(), plan)
	defer c.Close()
	const n = 20
	for i := 0; i < n; i++ {
		if err := c.Send(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(1)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, c.Deliveries(wire.TtoR), n, 5*time.Second)
	if len(got) != n {
		t.Fatalf("delayed deliveries %d, want %d", len(got), n)
	}
	_, _, _, _, delayed := plan.Stats()
	if delayed != n {
		t.Fatalf("delayed %d of %d frames", delayed, n)
	}
	if errs := c.SendErrors(); errs != 0 {
		t.Fatalf("scheduler hit %d inner send errors", errs)
	}
}

func TestChaosCloseIdempotentAndTerminal(t *testing.T) {
	plan := chaosPlan(1, faults.Fault{From: 0, To: 1 << 50, ExtraDelay: 1 << 20})
	c := NewChaos(NewMem(testClock(), MemOptions{D: 2}), testClock(), plan)
	// Park a frame in the delay scheduler, then close underneath it.
	if err := c.Send(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: 1, P: wire.DataPacket(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := c.Send(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: 2, P: wire.DataPacket(1)}); err != ErrClosed {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
	// The inner transport must be closed too (the wrapper owns it).
	if _, ok := <-c.Deliveries(wire.TtoR); ok {
		t.Fatal("inner deliveries still open after chaos close")
	}
}
