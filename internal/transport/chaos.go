package transport

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/wire"
)

// Chaos is fault-injection middleware over any Transport: it applies a
// seeded faults.Plan (blackout, drop, duplication, symbol corruption,
// excess delay — all time-windowed in send ticks) to every frame before
// the inner transport sees it. Wrapping is what finally lets the chaos
// matrix run over transports the simulator cannot reach: Mem already
// reuses fault plans as delay policies, but UDP inherits only whatever
// the kernel does — Chaos(UDP) injects the adversary in front of the
// real socket path.
//
// Placement in the axiom map (DESIGN.md): Chaos deliberately *breaks*
// axioms the inner transport keeps — no-loss (Drop/Blackout), no-dup
// (Dup), no-corruption (Corrupt), delay ≤ d (ExtraDelay) — which is why
// sessions over a Chaos transport should run hardened (and stabilized,
// if processes fault too).
//
// The plan should be built over chanmodel.Zero: the middleware adds the
// plan's *extra* delay on top of the inner transport's own latency, so a
// base policy that re-applies [0, d] delays would double-count. All plan
// access (its rand stream and injection stats) is serialised under one
// mutex, keeping a seeded plan exactly as deterministic as it is in the
// simulator for a fixed send schedule.
type Chaos struct {
	inner Transport
	clock *Clock
	plan  *faults.Plan

	mu      sync.Mutex
	heap    pendingHeap
	nextTie int64
	dirSeq  [2]int64
	closed  bool

	sendErrs atomic.Int64

	wake chan struct{}
	done chan struct{}
	dead chan struct{} // closed when the delay scheduler has exited

	closeOnce sync.Once
}

var _ Transport = (*Chaos)(nil)

// NewChaos wraps inner with the fault plan, measuring send ticks on the
// shared clock. The wrapper owns the inner transport: closing the Chaos
// closes it.
func NewChaos(inner Transport, clock *Clock, plan *faults.Plan) *Chaos {
	c := &Chaos{
		inner: inner,
		clock: clock,
		plan:  plan,
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
		dead:  make(chan struct{}),
	}
	go c.schedule()
	return c
}

// Name renders the plan over the inner transport.
func (c *Chaos) Name() string { return fmt.Sprintf("chaos(%s)/%s", c.plan.Name(), c.inner.Name()) }

// Send runs the frame through the fault plan: dropped frames never reach
// the inner transport, duplicated frames reach it twice, corrupted
// frames reach it with a damaged symbol, and delayed frames are held by
// the scheduler until their extra delay elapses.
func (c *Chaos) Send(f wire.Frame) error {
	now := c.clock.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	di := 0
	if f.Dir == wire.RtoT {
		di = 1
	}
	seq := c.dirSeq[di]
	c.dirSeq[di]++
	arrivals := c.plan.ArrivalsMut(seq, now, f.Dir, f.P)
	// Split the schedule: everything due now goes straight through (no
	// scheduler latency on the fault-free path), the rest is heaped.
	var immediate []wire.Frame
	deferred := false
	for _, a := range arrivals {
		df := f
		df.P = a.P
		if a.At <= now {
			immediate = append(immediate, df)
			continue
		}
		heap.Push(&c.heap, pending{at: a.At, tie: c.nextTie, f: df})
		c.nextTie++
		deferred = true
	}
	c.mu.Unlock()
	if deferred {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
	var err error
	for _, df := range immediate {
		if e := c.inner.Send(df); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Deliveries passes the inner transport's delivery channels through:
// chaos is injected entirely on the send side.
func (c *Chaos) Deliveries(dir wire.Dir) <-chan wire.Frame { return c.inner.Deliveries(dir) }

// Stats reports what the plan injected so far: frames affected by any
// clause, dropped, duplicated, corrupted and delayed.
func (c *Chaos) Stats() (affected, dropped, duplicated, corrupted, delayed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.plan.Stats()
}

// SendErrors counts inner Send failures on delayed frames, which have no
// caller left to return to — the chaos analogue of loss on the far side
// of a latency spike.
func (c *Chaos) SendErrors() int64 { return c.sendErrs.Load() }

// Close stops the delay scheduler (frames still held are discarded, like
// a partition that never heals) and closes the inner transport.
func (c *Chaos) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		close(c.done)
		<-c.dead
		err = c.inner.Close()
	})
	return err
}

// schedule releases delayed frames to the inner transport in (arrival
// tick, insertion order), the same discipline as Mem's scheduler.
func (c *Chaos) schedule() {
	defer close(c.dead)
	for {
		c.mu.Lock()
		var (
			next pending
			have bool
		)
		if len(c.heap) > 0 {
			next = c.heap[0]
			have = true
		}
		c.mu.Unlock()

		if !have {
			select {
			case <-c.done:
				return
			case <-c.wake:
			}
			continue
		}
		if wait := c.clock.Until(next.at); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-c.done:
				timer.Stop()
				return
			case <-c.wake:
				timer.Stop()
				continue
			case <-timer.C:
			}
		}
		c.mu.Lock()
		e := heap.Pop(&c.heap).(pending)
		c.mu.Unlock()
		if err := c.inner.Send(e.f); err != nil {
			c.sendErrs.Add(1)
		}
	}
}
