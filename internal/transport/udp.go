package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// UDP is a loopback socket-pair transport: one UDP socket per side, each
// frame one datagram. It exercises the session layer against a real
// kernel network path.
//
// Unlike Mem, UDP enforces none of the channel axioms: the kernel may
// reorder or drop datagrams and no delay bound is checked (on loopback,
// delivery is near-instant in practice, and drops surface in the
// Dropped counter when the reader cannot keep up). Use it for load
// tests of the serving machinery, not for axiom-dependent experiments.
type UDP struct {
	tConn, rConn *net.UDPConn
	tAddr, rAddr *net.UDPAddr

	del     map[wire.Dir]chan wire.Frame
	done    chan struct{}
	readers sync.WaitGroup

	dropped   atomic.Int64
	malformed atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

var _ Transport = (*UDP)(nil)

// maxDatagram is the largest IPv4 UDP payload: 65535 (IP total length)
// minus the 20-byte IP header and 8-byte UDP header. A frame must encode
// within it to be sendable as one datagram — wire.MaxFramePayload alone
// does not guarantee that (header + max payload is 65,569 bytes, 62 over
// the limit), so Send enforces MaxUDPPayload up front instead of letting
// the kernel fail the write with EMSGSIZE.
const maxDatagram = 65507

// MaxUDPPayload is the largest frame payload the UDP transport accepts:
// wire.FrameHeaderLen + MaxUDPPayload == maxDatagram.
const MaxUDPPayload = maxDatagram - wire.FrameHeaderLen

// NewUDPLoopback binds two UDP sockets on 127.0.0.1 — one per side — and
// starts their reader goroutines. buffer is the per-direction delivery
// channel capacity (default 1024).
func NewUDPLoopback(buffer int) (*UDP, error) {
	if buffer <= 0 {
		buffer = 1024
	}
	loop := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
	tConn, err := net.ListenUDP("udp4", loop)
	if err != nil {
		return nil, fmt.Errorf("transport: udp transmitter socket: %w", err)
	}
	rConn, err := net.ListenUDP("udp4", loop)
	if err != nil {
		tConn.Close()
		return nil, fmt.Errorf("transport: udp receiver socket: %w", err)
	}
	u := &UDP{
		tConn: tConn,
		rConn: rConn,
		tAddr: tConn.LocalAddr().(*net.UDPAddr),
		rAddr: rConn.LocalAddr().(*net.UDPAddr),
		del: map[wire.Dir]chan wire.Frame{
			wire.TtoR: make(chan wire.Frame, buffer),
			wire.RtoT: make(chan wire.Frame, buffer),
		},
		done: make(chan struct{}),
	}
	u.readers.Add(2)
	go u.read(rConn, wire.TtoR) // frames t->r arrive on the receiver socket
	go u.read(tConn, wire.RtoT) // frames r->t arrive on the transmitter socket
	return u, nil
}

// Name renders the transport and its two endpoints.
func (u *UDP) Name() string {
	return fmt.Sprintf("udp(t=%v r=%v)", u.tAddr, u.rAddr)
}

// Send encodes the frame and writes it as one datagram from its source
// side's socket to the destination side's socket. Frames whose payload
// exceeds MaxUDPPayload are rejected — they could never fit one IPv4
// datagram.
func (u *UDP) Send(f wire.Frame) error {
	select {
	case <-u.done:
		return ErrClosed
	default:
	}
	if len(f.Payload) > MaxUDPPayload {
		return fmt.Errorf("transport: udp payload %d bytes exceeds %d (frame must fit one datagram)", len(f.Payload), MaxUDPPayload)
	}
	buf, err := wire.EncodeFrame(f)
	if err != nil {
		return err
	}
	if f.Dir == wire.TtoR {
		_, err = u.tConn.WriteToUDP(buf, u.rAddr)
	} else {
		_, err = u.rConn.WriteToUDP(buf, u.tAddr)
	}
	if err != nil {
		select {
		case <-u.done:
			return ErrClosed
		default:
		}
		return fmt.Errorf("transport: udp send: %w", err)
	}
	return nil
}

// Deliveries returns the delivery channel for frames traveling in dir.
func (u *UDP) Deliveries(dir wire.Dir) <-chan wire.Frame { return u.del[dir] }

// Dropped counts frames discarded because a delivery buffer was full —
// the UDP analogue of a kernel socket-buffer drop.
func (u *UDP) Dropped() int64 { return u.dropped.Load() }

// Malformed counts datagrams that failed frame validation and were
// discarded.
func (u *UDP) Malformed() int64 { return u.malformed.Load() }

// Close shuts both sockets down, stops the readers and closes the
// delivery channels.
func (u *UDP) Close() error {
	u.closeOnce.Do(func() {
		close(u.done)
		e1 := u.tConn.Close()
		e2 := u.rConn.Close()
		u.readers.Wait()
		close(u.del[wire.TtoR])
		close(u.del[wire.RtoT])
		if e1 != nil {
			u.closeErr = e1
		} else {
			u.closeErr = e2
		}
	})
	return u.closeErr
}

// read pumps one socket into one delivery channel until the socket closes.
// Malformed datagrams (including frames whose declared payload length
// exceeds the datagram — see wire.ParseFrame) are counted and dropped,
// never fatal: untrusted bytes cannot take the transport down. Frames
// whose direction does not match the socket's are discarded likewise.
func (u *UDP) read(conn *net.UDPConn, dir wire.Dir) {
	defer u.readers.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed (or fatally broken): reader exits
		}
		f, err := wire.ParseFrame(buf[:n])
		if err != nil || f.Dir != dir {
			u.malformed.Add(1)
			continue
		}
		select {
		case u.del[dir] <- f:
		default:
			u.dropped.Add(1)
		}
	}
}
