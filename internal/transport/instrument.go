package transport

import "repro/internal/obs"

// Instrument registers t's metrics onto reg, unwrapping the resilience
// and chaos middleware so one call instruments the whole transport stack
// the serving commands assemble (resilient → chaos → mem/udp). Transports
// the walker does not recognise are skipped silently — a custom Transport
// can expose its own Instrument and call it directly.
//
// Every registration is a scrape-time CounterFunc/GaugeFunc closure over
// a counter the transport already keeps, so instrumenting adds zero cost
// to the send path. The one exception is Mem's delivery-latency
// histogram, whose Observe is a few atomic ops inside the scheduler
// goroutine, off the sender's path entirely.
func Instrument(reg *obs.Registry, t Transport) {
	for t != nil {
		switch x := t.(type) {
		case *Resilient:
			x.Instrument(reg)
			x.mu.Lock()
			t = x.inner
			x.mu.Unlock()
		case *Chaos:
			x.Instrument(reg)
			t = x.inner
		case *Mem:
			x.Instrument(reg)
			t = nil
		case *UDP:
			x.Instrument(reg)
			t = nil
		default:
			t = nil
		}
	}
}

// Instrument registers the resilience wrapper's counters and the live
// breaker state. Safe to call again after a reconnect: func metrics
// replace on re-registration.
func (r *Resilient) Instrument(reg *obs.Registry) {
	reg.CounterFunc("rstp_resilient_retransmits_total",
		"Send retries beyond each frame's first attempt", r.retransmits.Load)
	reg.CounterFunc("rstp_resilient_breaker_opens_total",
		"circuit breaker transitions into the open state", r.breakerOpens.Load)
	reg.CounterFunc("rstp_resilient_fast_fails_total",
		"frames shed fast by an open circuit breaker", r.fastFails.Load)
	reg.CounterFunc("rstp_resilient_reconnects_total",
		"successful redials of the inner transport", r.reconnects.Load)
	reg.GaugeFunc("rstp_resilient_breaker_state",
		"circuit breaker state (0 closed, 1 open, 2 half-open)",
		func() int64 { return int64(r.State()) })
	reg.GaugeFunc("rstp_resilient_rto_ticks",
		"live per-Send cumulative retry budget in ticks (clamped to [c1, d])",
		r.RTOTicks)
	reg.CounterFunc("rstp_resilient_rto_changes_total",
		"SetRTO calls that moved the retry budget", r.RTOChanges)
}

// Instrument registers the fault-injection middleware's stats.
func (c *Chaos) Instrument(reg *obs.Registry) {
	stat := func(pick func(a, dr, du, co, de int) int) func() int64 {
		return func() int64 {
			a, dr, du, co, de := c.Stats()
			return int64(pick(a, dr, du, co, de))
		}
	}
	reg.CounterFunc("rstp_chaos_affected_total",
		"frames touched by any fault clause", stat(func(a, _, _, _, _ int) int { return a }))
	reg.CounterFunc("rstp_chaos_dropped_total",
		"frames dropped by the fault plan", stat(func(_, dr, _, _, _ int) int { return dr }))
	reg.CounterFunc("rstp_chaos_duplicated_total",
		"frames duplicated by the fault plan", stat(func(_, _, du, _, _ int) int { return du }))
	reg.CounterFunc("rstp_chaos_corrupted_total",
		"frames corrupted by the fault plan", stat(func(_, _, _, co, _ int) int { return co }))
	reg.CounterFunc("rstp_chaos_delayed_total",
		"frames held past their natural arrival by the fault plan", stat(func(_, _, _, _, de int) int { return de }))
	reg.CounterFunc("rstp_chaos_send_errors_total",
		"inner Send failures on delayed frames (loss past a latency spike)", c.SendErrors)
}

// Instrument registers the in-memory transport's counters and wires its
// send→delivery latency histogram (in ticks, against the shared clock).
func (m *Mem) Instrument(reg *obs.Registry) {
	reg.CounterFunc("rstp_mem_sends_total",
		"frames accepted by the in-memory transport", m.sends.Load)
	reg.CounterFunc("rstp_mem_delivered_total",
		"frames delivered by the in-memory scheduler", m.delivered.Load)
	m.latency.Store(reg.Histogram("rstp_transport_delivery_ticks",
		"send-to-delivery latency in ticks", obs.TickBuckets(0)))
}

// Instrument registers the UDP transport's loss counters.
func (u *UDP) Instrument(reg *obs.Registry) {
	reg.CounterFunc("rstp_udp_dropped_total",
		"frames discarded because a delivery buffer was full", u.Dropped)
	reg.CounterFunc("rstp_udp_malformed_total",
		"datagrams that failed frame validation", u.Malformed)
}
