package transport

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/wire"
)

// TestBreakerTransitionsOrderedUnderConcurrency is the metrics-hook
// contract test: with many goroutines hammering Send through a full
// breaker cycle (open on failures, half-open probe, close on recovery),
// the OnBreaker hook must observe a serialised chain of transitions —
// every `from` equal to the previous `to`, never a no-op — because the
// hook fires under the wrapper's mutex in commit order. Run under -race
// in CI, this also proves the hook adds no unsynchronised state.
func TestBreakerTransitionsOrderedUnderConcurrency(t *testing.T) {
	inner := newFlaky(-1, false) // fail until healed
	clock := testClock()
	type transition struct{ from, to BreakerState }
	var (
		mu  sync.Mutex
		seq []transition
	)
	r := NewResilient(inner, clock, ResilientOptions{
		D: 2, C1: 2, BreakerThreshold: 3, ProbeTicks: 5,
		OnBreaker: func(from, to BreakerState) {
			mu.Lock()
			seq = append(seq, transition{from, to})
			mu.Unlock()
		},
	})
	defer r.Close()

	// Drain the wrapper's delivery channels for the test's lifetime:
	// once healed, the senders outpace the 1024-frame buffers, the pump
	// stalls, and flaky.Send would block holding its mutex — wedging
	// every sender on Send and wg.Wait forever. The drains exit when the
	// deferred Close closes r's channels.
	for _, dir := range []wire.Dir{wire.TtoR, wire.RtoT} {
		ch := r.Deliveries(dir)
		go func() {
			for range ch {
			}
		}()
	}

	const senders = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Send(testFrame(i))
			}
		}()
	}

	deadline := time.Now().Add(10 * time.Second)
	for r.BreakerOpens() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened under concurrent failing sends")
		}
		time.Sleep(time.Millisecond)
	}
	inner.heal()
	for r.State() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never closed after heal; state=%v", r.State())
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(seq) < 3 {
		t.Fatalf("observed %d transitions, want at least closed→open→half-open→closed", len(seq))
	}
	prev := BreakerClosed
	saw := map[transition]bool{}
	for i, e := range seq {
		if e.from == e.to {
			t.Fatalf("transition[%d] is a no-op: %v→%v", i, e.from, e.to)
		}
		if e.from != prev {
			t.Fatalf("transition[%d] %v→%v does not chain from previous state %v: hook order broken", i, e.from, e.to, prev)
		}
		prev = e.to
		saw[e] = true
	}
	if prev != BreakerClosed {
		t.Fatalf("final observed state %v, want closed (State() said closed)", prev)
	}
	for _, want := range []transition{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	} {
		if !saw[want] {
			t.Errorf("full cycle missing transition %v→%v in %v", want.from, want.to, seq)
		}
	}
}

// TestInstrumentWalksWrappedStack pins the walker: one Instrument call on
// the outermost wrapper registers metrics for every layer underneath
// (resilient → chaos → mem), and the mem latency histogram starts
// observing real deliveries.
func TestInstrumentWalksWrappedStack(t *testing.T) {
	clock := testClock()
	mem := NewMem(clock, MemOptions{D: 2, Buffer: 4096})
	chaos := NewChaos(mem, clock, chaosPlan(3, faults.Fault{From: 0, To: 1 << 50, Drop: 0.2}))
	r := NewResilient(chaos, clock, ResilientOptions{D: 8, C1: 2})
	defer r.Close()

	reg := obs.NewRegistry()
	Instrument(reg, r)

	const n = 50
	for i := 0; i < n; i++ {
		if err := r.Send(testFrame(int64(i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	// Drain what survived the drop clause so latencies get observed.
	_, dropped, _, _, _ := chaos.Stats()
	collect(t, r.Deliveries(wire.TtoR), n-dropped, 5*time.Second)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"rstp_resilient_breaker_state 0",
		"rstp_resilient_retransmits_total 0",
		"rstp_chaos_affected_total 50",
		"rstp_mem_sends_total",
		"rstp_transport_delivery_ticks_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["rstp_mem_sends_total"]; got != int64(n-dropped) {
		t.Errorf("mem sends = %d, want %d (chaos dropped %d of %d)", got, n-dropped, dropped, n)
	}
	h := snap.Histograms["rstp_transport_delivery_ticks"]
	if h.Count == 0 {
		t.Errorf("delivery latency histogram observed nothing: %+v", h)
	}
}

// TestInstrumentUDP covers the UDP leg of the walker.
func TestInstrumentUDP(t *testing.T) {
	u, err := NewUDPLoopback(16)
	if err != nil {
		t.Skipf("udp loopback unavailable: %v", err)
	}
	defer u.Close()
	reg := obs.NewRegistry()
	Instrument(reg, u)
	snap := reg.Snapshot()
	for _, name := range []string{"rstp_udp_dropped_total", "rstp_udp_malformed_total"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("missing %s in %+v", name, snap.Counters)
		}
	}
}
