package transport

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// ErrBreakerOpen is returned by Resilient.Send while the circuit breaker
// is open: the frame is shed instead of queued behind a failing inner
// transport. It is a transient error — endpoints treat it as channel
// loss, never as a closed transport.
var ErrBreakerOpen = errors.New("transport: circuit breaker open")

// ResilientOptions tune the resilience wrapper. The retry knobs are
// deadline-derived: the paper's channel promises delivery within d
// ticks, so there is no point retrying a frame for longer than d — the
// protocols above already retransmit on their own schedule. Zero values
// take defaults.
type ResilientOptions struct {
	// D is the channel delay bound d in ticks (default 1). The total
	// backoff a single Send spends retrying is capped at D ticks.
	D int64
	// C1 is the minimum step gap c1 (default 1). The retry budget per
	// Send is δ1 = ⌊D/C1⌋ — the most protocol steps that fit inside the
	// deadline, so retrying more often than that cannot help.
	C1 int64
	// BreakerThreshold consecutive Send failures open the circuit
	// breaker (default 8). While open, Send fails fast with
	// ErrBreakerOpen instead of hammering a dead path.
	BreakerThreshold int
	// ProbeTicks is how long the breaker stays open before half-opening:
	// after ProbeTicks ticks one probe Send is let through; success
	// closes the breaker, failure re-opens it. Default 2·D.
	ProbeTicks int64
	// Redial rebuilds the inner transport after it reports ErrClosed.
	// nil disables reconnection: a dead inner transport is terminal.
	Redial func() (Transport, error)
	// MaxRedials bounds consecutive reconnect attempts (default 4).
	// Exhausting them marks the transport dead: Send returns ErrClosed.
	MaxRedials int
	// Seed seeds the reconnect jitter (default 1).
	Seed int64
	// Buffer is the per-direction capacity of the wrapper's delivery
	// channels (default 1024).
	Buffer int
	// OnBreaker observes every circuit breaker state transition. It is
	// invoked under the wrapper's mutex, so even with many concurrent
	// senders the transitions arrive serialised in commit order;
	// implementations must be fast and must not call back into the
	// wrapper. nil disables the hook.
	OnBreaker func(from, to BreakerState)
}

func (o ResilientOptions) withDefaults() ResilientOptions {
	if o.D <= 0 {
		o.D = 1
	}
	if o.C1 <= 0 {
		o.C1 = 1
	}
	if o.C1 > o.D {
		o.C1 = o.D
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 8
	}
	if o.ProbeTicks <= 0 {
		o.ProbeTicks = 2 * o.D
	}
	if o.MaxRedials <= 0 {
		o.MaxRedials = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Buffer <= 0 {
		o.Buffer = 1024
	}
	return o
}

// BreakerState is the circuit breaker's state, exported so observability
// hooks (ResilientOptions.OnBreaker, State) can report it.
type BreakerState int32

const (
	// BreakerClosed is the healthy state: sends flow to the inner transport.
	BreakerClosed BreakerState = iota
	// BreakerOpen sheds sends fast with ErrBreakerOpen.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe send through.
	BreakerHalfOpen
)

// String names the state for metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Resilient composes three defenses onto any Transport:
//
//   - bounded retransmission: a failed Send is retried with exponential
//     backoff (1, 2, 4, ... ticks), at most δ1 = ⌊d/c1⌋ times and never
//     for more than d ticks total — past the channel bound the frame is
//     protocol-level loss anyway, and the layers above retransmit;
//   - a circuit breaker: after BreakerThreshold consecutive Send
//     failures the breaker opens and Send sheds frames fast
//     (ErrBreakerOpen) instead of stalling every session endpoint
//     behind a dead path; after ProbeTicks one probe is let through and
//     its outcome closes or re-opens the breaker;
//   - jittered reconnect: when the inner transport reports ErrClosed and
//     a Redial function is configured, the wrapper rebuilds the inner
//     transport (bounded attempts, jittered backoff) and re-pumps its
//     delivery channels, so sessions survive a transport that dies
//     under them.
//
// The wrapper owns its inner transport(s): Close closes the current one
// and stops every pump goroutine.
type Resilient struct {
	clock *Clock
	opt   ResilientOptions

	mu        sync.Mutex
	inner     Transport
	gen       int          // bumped on every successful redial
	fails     int          // consecutive Send failures
	state     BreakerState // breaker state
	probeAt   int64
	innerDead bool // redial exhausted or impossible
	closed    bool

	redialMu sync.Mutex // serialises reconnect attempts; guards rng
	rng      *rand.Rand

	retransmits  atomic.Int64
	breakerOpens atomic.Int64
	fastFails    atomic.Int64
	reconnects   atomic.Int64

	// rto is the live cumulative retry budget per Send, in ticks. It
	// starts at D (the paper's bound — the widest budget that can ever
	// help) and may be moved at runtime through SetRTO, always clamped
	// into [C1, D]: an adaptive controller can make the wrapper *less*
	// persistent under overload, never more persistent than the channel
	// deadline allows.
	rto        atomic.Int64
	rtoChanges atomic.Int64

	del  map[wire.Dir]chan wire.Frame
	done chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
}

var _ Transport = (*Resilient)(nil)

// NewResilient wraps inner with the resilience layer against the shared
// clock.
func NewResilient(inner Transport, clock *Clock, opt ResilientOptions) *Resilient {
	r := &Resilient{
		clock: clock,
		opt:   opt.withDefaults(),
		inner: inner,
		done:  make(chan struct{}),
	}
	r.rng = rand.New(rand.NewSource(r.opt.Seed))
	r.rto.Store(r.opt.D)
	r.del = map[wire.Dir]chan wire.Frame{
		wire.TtoR: make(chan wire.Frame, r.opt.Buffer),
		wire.RtoT: make(chan wire.Frame, r.opt.Buffer),
	}
	r.startPumps(inner, 0)
	return r
}

// Name renders the wrapper over the inner transport.
func (r *Resilient) Name() string {
	r.mu.Lock()
	inner := r.inner
	r.mu.Unlock()
	return fmt.Sprintf("resilient(d=%d,δ1=%d)/%s", r.opt.D, r.opt.D/r.opt.C1, inner.Name())
}

// Retransmits counts retry attempts beyond each Send's first try.
func (r *Resilient) Retransmits() int64 { return r.retransmits.Load() }

// BreakerOpens counts transitions of the breaker into the open state
// (including re-opens after a failed probe).
func (r *Resilient) BreakerOpens() int64 { return r.breakerOpens.Load() }

// FastFails counts frames shed by an open breaker.
func (r *Resilient) FastFails() int64 { return r.fastFails.Load() }

// Reconnects counts successful redials of the inner transport.
func (r *Resilient) Reconnects() int64 { return r.reconnects.Load() }

// SetRTO moves the per-Send cumulative retry budget to ticks, clamped
// into [c1, d]: the floor is one protocol step (below it no retry fits at
// all), the ceiling is the channel deadline d — past d the frame is
// protocol-level loss by the paper's own arithmetic, so no adaptation can
// ever extend retrying beyond the deadline bound. The retry count budget
// follows as ⌊rto/c1⌋ (at most δ1). Returns the value actually applied.
// Safe for concurrent use with in-flight Sends, which read the budget
// once at their start.
func (r *Resilient) SetRTO(ticks int64) int64 {
	if ticks < r.opt.C1 {
		ticks = r.opt.C1
	}
	if ticks > r.opt.D {
		ticks = r.opt.D
	}
	if r.rto.Swap(ticks) != ticks {
		r.rtoChanges.Add(1)
	}
	return ticks
}

// RTOTicks returns the live per-Send retry budget in ticks.
func (r *Resilient) RTOTicks() int64 { return r.rto.Load() }

// RTOChanges counts SetRTO calls that actually moved the budget.
func (r *Resilient) RTOChanges() int64 { return r.rtoChanges.Load() }

// Send sends the frame through the breaker and retry machinery. Errors
// other than ErrClosed (including ErrBreakerOpen) are transient: the
// frame is lost, the transport lives on.
func (r *Resilient) Send(f wire.Frame) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	switch r.state {
	case BreakerOpen:
		if r.clock.Now() < r.probeAt {
			r.mu.Unlock()
			r.fastFails.Add(1)
			return ErrBreakerOpen
		}
		// This call becomes the half-open probe.
		r.setStateLocked(BreakerHalfOpen)
	case BreakerHalfOpen:
		// One probe in flight at a time; shed everything else.
		r.mu.Unlock()
		r.fastFails.Add(1)
		return ErrBreakerOpen
	}
	inner, gen := r.inner, r.gen
	r.mu.Unlock()

	err := r.sendWithRetry(inner, gen, f)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if err == nil {
		r.fails = 0
		r.setStateLocked(BreakerClosed)
		return nil
	}
	if errors.Is(err, ErrClosed) {
		return err // terminal: no redial left
	}
	r.fails++
	if r.state == BreakerHalfOpen || r.fails >= r.opt.BreakerThreshold {
		r.setStateLocked(BreakerOpen)
		r.probeAt = r.clock.Now() + r.opt.ProbeTicks
	}
	return err
}

// setStateLocked commits one breaker transition, counting entries into
// the open state and notifying the OnBreaker hook. Callers hold r.mu, so
// concurrent senders observe transitions in commit order.
func (r *Resilient) setStateLocked(to BreakerState) {
	if r.state == to {
		return
	}
	from := r.state
	r.state = to
	if to == BreakerOpen {
		r.breakerOpens.Add(1)
	}
	if r.opt.OnBreaker != nil {
		r.opt.OnBreaker(from, to)
	}
}

// State returns the breaker's current state.
func (r *Resilient) State() BreakerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// sendWithRetry performs the bounded, deadline-aware retry loop: up to
// ⌊rto/c1⌋ retries with exponential backoff, cumulative backoff capped at
// the live RTO budget (≤ D ticks always — see SetRTO).
func (r *Resilient) sendWithRetry(inner Transport, gen int, f wire.Frame) error {
	err := r.trySend(&inner, &gen, f)
	rto := r.rto.Load()
	budget := int(rto / r.opt.C1)
	backoff := int64(1)
	var slept int64
	for i := 0; i < budget && err != nil && !errors.Is(err, ErrClosed); i++ {
		if slept+backoff > rto {
			break // past the channel bound: this frame is loss now
		}
		if !r.sleepTicks(backoff) {
			return ErrClosed
		}
		slept += backoff
		backoff *= 2
		r.retransmits.Add(1)
		err = r.trySend(&inner, &gen, f)
	}
	return err
}

// trySend attempts one send, reconnecting through Redial when the inner
// transport reports itself closed.
func (r *Resilient) trySend(inner *Transport, gen *int, f wire.Frame) error {
	err := (*inner).Send(f)
	if err == nil || !errors.Is(err, ErrClosed) {
		return err
	}
	ni, ngen, rerr := r.reconnect(*gen)
	if rerr != nil {
		return rerr
	}
	*inner, *gen = ni, ngen
	return (*inner).Send(f)
}

// reconnect rebuilds the inner transport, deduplicating concurrent
// observers by generation: whoever holds redialMu first redials, the
// rest adopt the fresh transport.
func (r *Resilient) reconnect(observedGen int) (Transport, int, error) {
	r.redialMu.Lock()
	defer r.redialMu.Unlock()
	r.mu.Lock()
	if r.closed || r.innerDead {
		r.mu.Unlock()
		return nil, 0, ErrClosed
	}
	if r.gen != observedGen {
		inner, gen := r.inner, r.gen
		r.mu.Unlock()
		return inner, gen, nil
	}
	if r.opt.Redial == nil {
		r.innerDead = true
		r.mu.Unlock()
		return nil, 0, ErrClosed
	}
	r.mu.Unlock()

	for attempt := 0; attempt < r.opt.MaxRedials; attempt++ {
		// Jittered backoff: uniform in [1, D·(attempt+1)] ticks, so a
		// fleet of reconnecting wrappers does not stampede the endpoint.
		wait := 1 + r.rng.Int63n(r.opt.D*int64(attempt+1))
		if !r.sleepTicks(wait) {
			return nil, 0, ErrClosed
		}
		ni, err := r.opt.Redial()
		if err != nil {
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			ni.Close()
			return nil, 0, ErrClosed
		}
		r.inner = ni
		r.gen++
		gen := r.gen
		// startPumps (wg.Add) must happen under r.mu: Close sets closed
		// before wg.Wait, so either we see closed above or Wait sees our
		// pumps — never an Add racing a drained Wait.
		r.startPumps(ni, gen)
		r.mu.Unlock()
		r.reconnects.Add(1)
		return ni, gen, nil
	}
	r.mu.Lock()
	r.innerDead = true
	r.mu.Unlock()
	return nil, 0, ErrClosed
}

// sleepTicks sleeps n ticks of the shared clock, returning false if the
// wrapper closed first.
func (r *Resilient) sleepTicks(n int64) bool {
	timer := time.NewTimer(r.clock.Ticks(n))
	defer timer.Stop()
	select {
	case <-r.done:
		return false
	case <-timer.C:
		return true
	}
}

// Deliveries returns the wrapper's own delivery channels, which survive
// inner-transport reconnects.
func (r *Resilient) Deliveries(dir wire.Dir) <-chan wire.Frame { return r.del[dir] }

// startPumps forwards one inner transport's deliveries into the
// wrapper's stable channels.
func (r *Resilient) startPumps(inner Transport, gen int) {
	r.wg.Add(2)
	go r.pump(inner, gen, wire.TtoR)
	go r.pump(inner, gen, wire.RtoT)
}

// pump copies one direction until the inner transport dies (triggering a
// reconnect, which starts fresh pumps) or the wrapper closes.
func (r *Resilient) pump(inner Transport, gen int, dir wire.Dir) {
	defer r.wg.Done()
	src := inner.Deliveries(dir)
	for {
		select {
		case <-r.done:
			return
		case f, ok := <-src:
			if !ok {
				// Inner transport gone. Try to resurrect it so the
				// receive path heals even if no Send notices first;
				// reconnect dedups by generation.
				if dir == wire.TtoR && r.opt.Redial != nil {
					r.reconnect(gen)
				}
				return
			}
			select {
			case r.del[dir] <- f:
			case <-r.done:
				return
			}
		}
	}
}

// Close closes the current inner transport, stops every pump, and closes
// the wrapper's delivery channels. Idempotent.
func (r *Resilient) Close() error {
	r.closeOnce.Do(func() {
		r.mu.Lock()
		r.closed = true
		inner := r.inner
		r.mu.Unlock()
		close(r.done)
		inner.Close()
		r.wg.Wait()
		close(r.del[wire.TtoR])
		close(r.del[wire.RtoT])
	})
	return nil
}
