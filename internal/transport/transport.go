// Package transport carries session-tagged RSTP packets between a
// transmitter-side process and a receiver-side process in real time.
//
// A Transport is the serving-layer realisation of the paper's channel
// C(P^tr ∪ P^rt): a bidirectional datagram link that may reorder packets
// arbitrarily but — inside the model — delivers each within d ticks,
// without loss or duplication. The tick is given physical meaning by a
// shared Clock that both the transports and the session layer read, so
// "within d ticks" becomes "within d·Tick of wall time".
//
// Two implementations are provided:
//
//   - Mem: an in-process transport whose delivery schedule is computed by
//     a chanmodel.DelayPolicy (and optionally perturbed by a faults.Plan),
//     delivered by a single scheduler goroutine in arrival-time order. It
//     *enforces* the channel axioms: delay ≤ d (up to scheduler jitter),
//     no loss, no duplication — unless a fault plan deliberately breaks
//     them.
//   - UDP: a loopback socket pair for load tests against a real kernel
//     network path. It *inherits* UDP's semantics: reordering and loss
//     are possible and no delay bound is enforced; on loopback it behaves
//     like a near-zero-delay channel in practice.
//
// See DESIGN.md ("Serving subsystem") for the full axiom-by-axiom map.
package transport

import (
	"errors"
	"time"

	"repro/internal/wire"
)

// Transport is a bidirectional, session-multiplexed datagram channel.
//
// Send enqueues a frame traveling in f.Dir; Deliveries(dir) yields the
// frames traveling in dir as they arrive at the destination side
// (TtoR frames arrive at the receiver side, RtoT at the transmitter
// side). The deliveries channel is closed when the transport is closed.
//
// Implementations must be safe for concurrent use: many sessions send
// and receive through one transport.
type Transport interface {
	// Name identifies the transport in reports.
	Name() string
	// Send enqueues one frame for delivery toward its direction's
	// destination. It fails once the transport is closed.
	Send(f wire.Frame) error
	// Deliveries returns the delivery channel for frames traveling in dir.
	Deliveries(dir wire.Dir) <-chan wire.Frame
	// Close shuts the transport down and closes both delivery channels.
	// Close is idempotent.
	Close() error
}

// ErrClosed is returned by Send on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Clock maps the model's integer ticks onto wall time: tick n is the
// half-open interval [start + n·Tick, start + (n+1)·Tick). One Clock is
// shared by a transport and every session driven over it, so step bounds
// (c1, c2) and the delay bound d are measured against the same time base.
type Clock struct {
	start time.Time
	tick  time.Duration
}

// DefaultTick is the default physical length of one model tick.
const DefaultTick = 100 * time.Microsecond

// NewClock starts a clock whose tick lasts the given duration
// (DefaultTick if non-positive).
func NewClock(tick time.Duration) *Clock {
	if tick <= 0 {
		tick = DefaultTick
	}
	return &Clock{start: time.Now(), tick: tick}
}

// Tick returns the physical length of one tick.
func (c *Clock) Tick() time.Duration { return c.tick }

// Now returns the current tick count since the clock started.
func (c *Clock) Now() int64 { return int64(time.Since(c.start) / c.tick) }

// Until returns the wall-time duration from now until the start of the
// given tick (non-positive if that tick has begun).
func (c *Clock) Until(tick int64) time.Duration {
	return time.Until(c.start.Add(time.Duration(tick) * c.tick))
}

// Ticks converts a tick count to a wall-time duration.
func (c *Clock) Ticks(n int64) time.Duration { return time.Duration(n) * c.tick }
