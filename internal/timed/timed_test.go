package timed

import (
	"strings"
	"testing"

	"repro/internal/wire"
)

func ev(t int64, actor string, act interface {
	Kind() string
	String() string
}, pseq int64) Event {
	return Event{Time: t, Actor: actor, Action: act, PacketSeq: pseq}
}

func TestTimingMonotone(t *testing.T) {
	ok := []Event{
		ev(0, "t", wire.Internal{Name: "wait_t"}, 0),
		ev(0, "r", wire.Internal{Name: "idle_r"}, 0),
		ev(3, "t", wire.Internal{Name: "wait_t"}, 0),
	}
	if v := Timing(ok); len(v) != 0 {
		t.Errorf("monotone trace flagged: %v", v)
	}
	bad := []Event{
		ev(5, "t", wire.Internal{Name: "wait_t"}, 0),
		ev(3, "t", wire.Internal{Name: "wait_t"}, 0),
	}
	if v := Timing(bad); len(v) != 1 || v[0].Rule != "timing" {
		t.Errorf("non-monotone trace not flagged: %v", v)
	}
	neg := []Event{ev(-1, "t", wire.Internal{Name: "wait_t"}, 0)}
	if v := Timing(neg); len(v) != 1 {
		t.Errorf("negative time not flagged: %v", v)
	}
}

func TestStepBounds(t *testing.T) {
	trace := []Event{
		ev(0, "t", wire.Internal{Name: "wait_t"}, 0),
		ev(2, "chan", wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(0)}, 1), // not a step
		ev(3, "t", wire.Internal{Name: "wait_t"}, 0),
		ev(5, "t", wire.Send{Dir: wire.TtoR, P: wire.DataPacket(0)}, 2),
		ev(9, "r", wire.Write{M: 0}, 0), // other actor, ignored for "t"
	}
	if v := StepBounds(trace, "t", 2, 3); len(v) != 0 {
		t.Errorf("legal gaps flagged: %v", v)
	}
	if v := StepBounds(trace, "t", 3, 3); len(v) != 1 || v[0].Rule != "step-upper" {
		// first gap 3 ok, second gap 2 < c1=3 — wait: rule should be lower.
		if len(v) != 1 || v[0].Rule != "step-lower" {
			t.Errorf("lower violation not flagged correctly: %v", v)
		}
	}
	if v := StepBounds(trace, "t", 1, 2); len(v) != 1 || v[0].Rule != "step-upper" {
		t.Errorf("upper violation not flagged: %v", v)
	}
	// recv events do not count as receiver steps either.
	rtrace := []Event{
		ev(0, "r", wire.Internal{Name: "idle_r"}, 0),
		ev(1, "chan", wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(1)}, 1),
		ev(4, "r", wire.Write{M: 1}, 0),
	}
	if v := StepBounds(rtrace, "r", 4, 4); len(v) != 0 {
		t.Errorf("recv treated as a step: %v", v)
	}
}

func TestDelayBound(t *testing.T) {
	send := func(tm, seq int64) Event {
		return ev(tm, "t", wire.Send{Dir: wire.TtoR, P: wire.DataPacket(0)}, seq)
	}
	recv := func(tm, seq int64) Event {
		return ev(tm, "chan", wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(0)}, seq)
	}
	okTrace := []Event{send(0, 1), send(2, 2), recv(4, 1), recv(2, 2)}
	if v := DelayBound(okTrace, 4, true); len(v) != 0 {
		t.Errorf("legal delays flagged: %v", v)
	}
	late := []Event{send(0, 1), recv(5, 1)}
	if v := DelayBound(late, 4, false); len(v) != 1 || v[0].Rule != "delay" {
		t.Errorf("late delivery not flagged: %v", v)
	}
	orphan := []Event{recv(1, 9)}
	if v := DelayBound(orphan, 4, false); len(v) != 1 {
		t.Errorf("orphan recv not flagged: %v", v)
	}
	dupSend := []Event{send(0, 1), send(1, 1)}
	if v := DelayBound(dupSend, 4, false); len(v) != 1 {
		t.Errorf("duplicate packet seq not flagged: %v", v)
	}
	noSeq := []Event{ev(0, "t", wire.Send{Dir: wire.TtoR, P: wire.DataPacket(0)}, 0)}
	if v := DelayBound(noSeq, 4, false); len(v) != 1 {
		t.Errorf("send without packet seq not flagged: %v", v)
	}
}

func TestDelayBoundTruncation(t *testing.T) {
	send := func(tm, seq int64) Event {
		return ev(tm, "t", wire.Send{Dir: wire.TtoR, P: wire.DataPacket(0)}, seq)
	}
	last := ev(10, "r", wire.Internal{Name: "idle_r"}, 0)
	// Sent at 8, bound 4: trace ends at 10 < 8+4, may still be in flight.
	fresh := []Event{send(8, 1), last}
	if v := DelayBound(fresh, 4, true); len(v) != 0 {
		t.Errorf("in-flight packet inside window flagged: %v", v)
	}
	// Sent at 2, bound 4: by time 10 it must have arrived.
	stale := []Event{send(2, 1), last}
	if v := DelayBound(stale, 4, true); len(v) != 1 {
		t.Errorf("overdue packet not flagged: %v", v)
	}
	// Without requireDelivered nothing is flagged.
	if v := DelayBound(stale, 4, false); len(v) != 0 {
		t.Errorf("non-required delivery flagged: %v", v)
	}
}

func TestPrefixInvariant(t *testing.T) {
	x, _ := wire.ParseBits("101")
	good := []Event{
		ev(1, "r", wire.Write{M: 1}, 0),
		ev(2, "r", wire.Write{M: 0}, 0),
		ev(3, "r", wire.Write{M: 1}, 0),
	}
	if v := PrefixInvariant(good, x, true); len(v) != 0 {
		t.Errorf("correct writes flagged: %v", v)
	}
	if v := PrefixInvariant(good[:2], x, true); len(v) != 1 {
		t.Errorf("incomplete output not flagged: %v", v)
	}
	if v := PrefixInvariant(good[:2], x, false); len(v) != 0 {
		t.Errorf("prefix-only check flagged a prefix: %v", v)
	}
	wrong := []Event{ev(1, "r", wire.Write{M: 0}, 0)}
	if v := PrefixInvariant(wrong, x, false); len(v) != 1 || !strings.Contains(v[0].Msg, "Y[0]") {
		t.Errorf("wrong write not flagged: %v", v)
	}
	over := []Event{
		ev(1, "r", wire.Write{M: 1}, 0),
		ev(2, "r", wire.Write{M: 0}, 0),
		ev(3, "r", wire.Write{M: 1}, 0),
		ev(4, "r", wire.Write{M: 1}, 0),
	}
	if v := PrefixInvariant(over, x, false); len(v) != 1 {
		t.Errorf("overflow write not flagged: %v", v)
	}
}

func TestGoodAggregates(t *testing.T) {
	x, _ := wire.ParseBits("1")
	trace := []Event{
		ev(0, "t", wire.Send{Dir: wire.TtoR, P: wire.DataPacket(1)}, 1),
		ev(2, "chan", wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(1)}, 1),
		ev(0, "r", wire.Internal{Name: "idle_r"}, 0),
		// Receiver gap 0 -> 3 exceeds c2 = 2 (one violation); write is fine.
	}
	trace = append(trace, ev(3, "r", wire.Write{M: 1}, 0))
	v := Good(trace, GoodConfig{
		C1: 1, C2: 2, D: 4,
		Transmitter: "t", Receiver: "r",
		X: x, RequireComplete: true,
	})
	count := 0
	for _, viol := range v {
		if viol.Rule == "step-upper" {
			count++
		}
		if viol.Error() == "" {
			t.Error("violations must render")
		}
	}
	// The receiver stepped at 0 then 3 with c2 = 2; also events are not
	// globally monotone (0,2,0,3) — Timing flags that too.
	if count != 1 {
		t.Errorf("expected exactly one step-upper violation, got %v", v)
	}
}

func TestWritesAndLastTimes(t *testing.T) {
	trace := []Event{
		ev(0, "t", wire.Send{Dir: wire.TtoR, P: wire.DataPacket(1)}, 1),
		ev(2, "r", wire.Write{M: 1}, 0),
		ev(4, "t", wire.Send{Dir: wire.TtoR, P: wire.DataPacket(0)}, 2),
		ev(6, "r", wire.Write{M: 0}, 0),
	}
	if got := wire.BitsToString(Writes(trace)); got != "10" {
		t.Errorf("Writes = %q", got)
	}
	if ts, ok := LastSendTime(trace); !ok || ts != 4 {
		t.Errorf("LastSendTime = %d,%v", ts, ok)
	}
	if tw, ok := LastWriteTime(trace); !ok || tw != 6 {
		t.Errorf("LastWriteTime = %d,%v", tw, ok)
	}
	if _, ok := LastSendTime(nil); ok {
		t.Error("LastSendTime on empty should be !ok")
	}
	if _, ok := LastWriteTime(nil); ok {
		t.Error("LastWriteTime on empty should be !ok")
	}
}

func TestEventString(t *testing.T) {
	e := ev(7, "t", wire.Send{Dir: wire.TtoR, P: wire.DataPacket(1)}, 1)
	if got := e.String(); !strings.Contains(got, "t=7") || !strings.Contains(got, "send") {
		t.Errorf("Event.String = %q", got)
	}
}
