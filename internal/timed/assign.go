package timed

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// Assignment is the formal object of Section 2.2: an (untimed) execution
// together with a timing t mapping its events to nonnegative reals
// (integer ticks here), written η^t in the paper.
type Assignment struct {
	exec  *ioa.Execution
	times []int64
}

// NewAssignment pairs an execution with event times, validating the
// Section 2.2 timing conditions:
//
//  1. the first event is mapped to 0;
//  2. the mapping is monotone in event order;
//  3. only finitely many events fall in any interval (trivial for the
//     finite executions this package handles).
func NewAssignment(exec *ioa.Execution, times []int64) (*Assignment, error) {
	if exec == nil {
		return nil, fmt.Errorf("timed: assignment needs an execution")
	}
	if len(times) != exec.Len() {
		return nil, fmt.Errorf("timed: %d times for %d events", len(times), exec.Len())
	}
	for i, tm := range times {
		if i == 0 && tm != 0 {
			return nil, fmt.Errorf("timed: first event must be at time 0, got %d", tm)
		}
		if tm < 0 {
			return nil, fmt.Errorf("timed: event %d at negative time %d", i, tm)
		}
		if i > 0 && tm < times[i-1] {
			return nil, fmt.Errorf("timed: event %d at %d precedes event %d at %d", i, tm, i-1, times[i-1])
		}
	}
	return &Assignment{exec: exec, times: append([]int64(nil), times...)}, nil
}

// Events converts the assignment into this package's timed-event form, so
// the good(A) validators apply to formally-constructed timed executions
// exactly as they do to simulator output. Packet sequence numbers are
// assigned by matching each recv to the earliest unmatched send of the
// same packet (the channel bijection).
func (a *Assignment) Events() []Event {
	type pending struct {
		seq int64
	}
	var (
		out     = make([]Event, 0, a.exec.Len())
		nextSeq int64
		inFlite = make(map[wire.Send][]pending)
	)
	for i, ev := range a.exec.Events {
		te := Event{
			Time:   a.times[i],
			Seq:    int64(i + 1),
			Actor:  ev.Actor,
			Action: ev.Action,
		}
		switch act := ev.Action.(type) {
		case wire.Send:
			nextSeq++
			te.PacketSeq = nextSeq
			inFlite[act] = append(inFlite[act], pending{seq: nextSeq})
		case wire.Recv:
			key := wire.Send{Dir: act.Dir, P: act.P}
			if q := inFlite[key]; len(q) > 0 {
				te.PacketSeq = q[0].seq
				inFlite[key] = q[1:]
			}
		}
		out = append(out, te)
	}
	return out
}

// Restrict returns the timed sequence of events whose actions satisfy
// keep — the paper's η^t|B operator.
func (a *Assignment) Restrict(keep func(ioa.Action) bool) ([]ioa.Action, []int64) {
	var (
		acts  []ioa.Action
		times []int64
	)
	for i, ev := range a.exec.Events {
		if keep(ev.Action) {
			acts = append(acts, ev.Action)
			times = append(times, a.times[i])
		}
	}
	return acts, times
}
