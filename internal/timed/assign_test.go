package timed

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/wire"
)

func buildExec(t *testing.T) *ioa.Execution {
	t.Helper()
	var e ioa.Execution
	e.Append("t", wire.Send{Dir: wire.TtoR, P: wire.DataPacket(1)})
	e.Append("t", wire.Internal{Name: "wait_t"})
	e.Append("chan", wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(1)})
	e.Append("r", wire.Write{M: 1})
	return &e
}

func TestNewAssignmentValidation(t *testing.T) {
	exec := buildExec(t)
	if _, err := NewAssignment(nil, nil); err == nil {
		t.Error("nil execution should fail")
	}
	if _, err := NewAssignment(exec, []int64{0, 1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewAssignment(exec, []int64{1, 2, 3, 4}); err == nil {
		t.Error("first event not at 0 should fail")
	}
	if _, err := NewAssignment(exec, []int64{0, 3, 2, 4}); err == nil {
		t.Error("non-monotone times should fail")
	}
	if _, err := NewAssignment(exec, []int64{0, 2, 3, 9}); err != nil {
		t.Errorf("legal assignment rejected: %v", err)
	}
}

// TestAssignmentEventsFeedValidators: a formal assignment converts into
// the validators' event form, with the send/recv bijection reconstructed.
func TestAssignmentEventsFeedValidators(t *testing.T) {
	exec := buildExec(t)
	a, err := NewAssignment(exec, []int64{0, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	events := a.Events()
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].PacketSeq != 1 || events[2].PacketSeq != 1 {
		t.Fatalf("send/recv not paired: %d vs %d", events[0].PacketSeq, events[2].PacketSeq)
	}
	if v := DelayBound(events, 3, true); len(v) != 0 {
		t.Errorf("legal assignment flagged: %v", v)
	}
	if v := PrefixInvariant(events, []wire.Bit{1}, true); len(v) != 0 {
		t.Errorf("prefix flagged: %v", v)
	}
	// A delay-violating assignment is flagged.
	late, err := NewAssignment(exec, []int64{0, 2, 9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if v := DelayBound(late.Events(), 3, true); len(v) != 1 {
		t.Errorf("late delivery not flagged: %v", v)
	}
}

func TestAssignmentRestrict(t *testing.T) {
	exec := buildExec(t)
	a, err := NewAssignment(exec, []int64{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	acts, times := a.Restrict(func(act ioa.Action) bool { return act.Kind() == wire.KindWrite })
	if len(acts) != 1 || times[0] != 3 {
		t.Errorf("restrict = %v at %v", acts, times)
	}
}
