// Package timed implements the timed I/O automata notions of Section 2.2
// and the two timing assumptions defining good(A) in Section 4:
//
//   - Σ(At, Ar): each process's consecutive local events are between c1 and
//     c2 time units apart;
//   - Δ(C(P)): every send event's matching recv event occurs within d time
//     units.
//
// Time is measured in integer ticks throughout the repository.
package timed

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// Event is one timed event of a timed execution: an action occurrence with
// its assigned time.
type Event struct {
	// Time is the event's time in ticks.
	Time int64
	// Seq is the event's global sequence number, breaking ties among
	// same-tick events (lower Seq happens first).
	Seq int64
	// Actor names the component that controlled the action; recv events at
	// a process are attributed to the channel ("chan").
	Actor string
	// Action is the action that occurred.
	Action ioa.Action
	// PacketSeq identifies the packet instance for send/recv events (> 0);
	// it pairs each recv with its send, realising the channel's bijection.
	PacketSeq int64
}

// String renders the timed event.
func (e Event) String() string {
	return fmt.Sprintf("t=%d %s: %s", e.Time, e.Actor, e.Action)
}

// Violation describes one failed timing or correctness condition.
type Violation struct {
	// Index is the trace position of the offending event (or -1 for
	// trace-global conditions).
	Index int
	// Rule names the violated condition.
	Rule string
	// Msg explains the violation.
	Msg string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("timed: %s at #%d: %s", v.Rule, v.Index, v.Msg)
}

// Timing validates the Section 2.2 conditions on a timed execution trace:
// times start at zero or later, and are monotone in sequence order.
// (Condition 3 — finitely many events per interval — holds trivially for
// finite traces.)
func Timing(trace []Event) []Violation {
	var out []Violation
	var prev int64
	for i, e := range trace {
		if e.Time < 0 {
			out = append(out, Violation{Index: i, Rule: "timing", Msg: fmt.Sprintf("negative time %d", e.Time)})
		}
		if i > 0 && e.Time < prev {
			out = append(out, Violation{Index: i, Rule: "timing", Msg: fmt.Sprintf("time %d precedes %d", e.Time, prev)})
		}
		prev = e.Time
	}
	return out
}

// StepBounds validates Σ(At, Ar) for one process: consecutive local events
// (everything the actor controls; recv inputs do not count as steps) are
// separated by at least c1 and at most c2 ticks.
//
// A process that has terminated — no local action enabled ever again — may
// trail off; the bound "at most c2" is therefore only checked between
// recorded local events, and the caller asserts separately that the
// process kept stepping for as long as it had work (the simulator
// guarantees this by construction).
func StepBounds(trace []Event, actor string, c1, c2 int64) []Violation {
	var out []Violation
	prevIdx := -1
	var prevTime int64
	for i, e := range trace {
		if e.Actor != actor || e.Action.Kind() == wire.KindRecv {
			continue
		}
		if prevIdx >= 0 {
			gap := e.Time - prevTime
			if gap < c1 {
				out = append(out, Violation{Index: i, Rule: "step-lower",
					Msg: fmt.Sprintf("%s stepped %d ticks after previous local event (< c1 = %d)", actor, gap, c1)})
			}
			if gap > c2 {
				out = append(out, Violation{Index: i, Rule: "step-upper",
					Msg: fmt.Sprintf("%s stepped %d ticks after previous local event (> c2 = %d)", actor, gap, c2)})
			}
		}
		prevIdx = i
		prevTime = e.Time
	}
	return out
}

// DelayBound validates Δ(C(P)): every recv pairs with a unique earlier
// send of the same packet (via PacketSeq) no more than d ticks before it.
//
// When requireDelivered is set, sends must also have their recv — the
// channel's fairness bijection. Traces are finite truncations of the
// execution, so a packet is only flagged as undelivered when the trace
// extends strictly more than d ticks past its send: by then a Δ-obeying
// channel must already have delivered it.
func DelayBound(trace []Event, d int64, requireDelivered bool) []Violation {
	return DelayWindow(trace, 0, d, requireDelivered)
}

// DelayWindow validates the Section 7 generalised delivery property:
// every packet's delay lies in [d1, d2]. DelayBound is the d1 = 0 case.
func DelayWindow(trace []Event, d1, d2 int64, requireDelivered bool) []Violation {
	type flight struct {
		idx  int
		time int64
		pkt  string
	}
	var out []Violation
	sent := make(map[int64]flight)
	for i, e := range trace {
		switch e.Action.Kind() {
		case wire.KindSend:
			if e.PacketSeq <= 0 {
				out = append(out, Violation{Index: i, Rule: "delay", Msg: "send event without packet sequence"})
				continue
			}
			if _, dup := sent[e.PacketSeq]; dup {
				out = append(out, Violation{Index: i, Rule: "delay", Msg: fmt.Sprintf("duplicate send of packet #%d", e.PacketSeq)})
				continue
			}
			sent[e.PacketSeq] = flight{idx: i, time: e.Time, pkt: e.Action.String()}
		case wire.KindRecv:
			f, ok := sent[e.PacketSeq]
			if !ok {
				out = append(out, Violation{Index: i, Rule: "delay", Msg: fmt.Sprintf("recv of packet #%d without matching send", e.PacketSeq)})
				continue
			}
			delete(sent, e.PacketSeq)
			if lag := e.Time - f.time; lag < d1 || lag > d2 {
				out = append(out, Violation{Index: i, Rule: "delay",
					Msg: fmt.Sprintf("packet #%d delivered %d ticks after send (window [%d, %d])", e.PacketSeq, lag, d1, d2)})
			}
		}
	}
	if requireDelivered && len(trace) > 0 {
		end := trace[len(trace)-1].Time
		for seq, f := range sent {
			if f.time+d2 < end {
				out = append(out, Violation{Index: f.idx, Rule: "delay",
					Msg: fmt.Sprintf("packet #%d (%s) sent at %d not delivered by %d (bound d2 = %d)", seq, f.pkt, f.time, end, d2)})
			}
		}
	}
	return out
}

// PrefixInvariant validates the STP safety condition: at every point of the
// trace, the written sequence Y is a prefix of X. When requireComplete is
// set it also checks the liveness outcome Y = X at the end of the trace.
func PrefixInvariant(trace []Event, x []wire.Bit, requireComplete bool) []Violation {
	var out []Violation
	written := 0
	for i, e := range trace {
		w, ok := e.Action.(wire.Write)
		if !ok {
			continue
		}
		if written >= len(x) {
			out = append(out, Violation{Index: i, Rule: "prefix",
				Msg: fmt.Sprintf("write #%d exceeds |X| = %d", written+1, len(x))})
			written++
			continue
		}
		if w.M != x[written] {
			out = append(out, Violation{Index: i, Rule: "prefix",
				Msg: fmt.Sprintf("Y[%d] = %v but X[%d] = %v", written, w.M, written, x[written])})
		}
		written++
	}
	if requireComplete && written != len(x) {
		out = append(out, Violation{Index: -1, Rule: "prefix",
			Msg: fmt.Sprintf("only %d of %d messages written", written, len(x))})
	}
	return out
}

// GoodConfig carries the parameters of a good(A) check.
type GoodConfig struct {
	// C1, C2 bound each process's inter-step time; D bounds packet delay.
	C1, C2, D int64
	// Transmitter and Receiver name the two process actors in the trace.
	Transmitter, Receiver string
	// X is the input sequence; Y must equal it by the end of the trace.
	X []wire.Bit
	// RequireComplete demands full delivery (Y = X and every packet
	// received); unset for truncated traces.
	RequireComplete bool
}

// Good validates all conditions of good(A) plus the RSTP correctness
// condition Y = X over a recorded trace.
func Good(trace []Event, cfg GoodConfig) []Violation {
	var out []Violation
	out = append(out, Timing(trace)...)
	out = append(out, StepBounds(trace, cfg.Transmitter, cfg.C1, cfg.C2)...)
	out = append(out, StepBounds(trace, cfg.Receiver, cfg.C1, cfg.C2)...)
	out = append(out, DelayBound(trace, cfg.D, cfg.RequireComplete)...)
	out = append(out, PrefixInvariant(trace, cfg.X, cfg.RequireComplete)...)
	return out
}

// Writes extracts the written sequence Y from a trace.
func Writes(trace []Event) []wire.Bit {
	var out []wire.Bit
	for _, e := range trace {
		if w, ok := e.Action.(wire.Write); ok {
			out = append(out, w.M)
		}
	}
	return out
}

// LastSendTime returns the time of the last send event in the trace (the
// numerator of the paper's effort), and ok == false if nothing was sent.
func LastSendTime(trace []Event) (int64, bool) {
	var (
		t     int64
		found bool
	)
	for _, e := range trace {
		if e.Action.Kind() == wire.KindSend {
			t = e.Time
			found = true
		}
	}
	return t, found
}

// LastWriteTime returns the time of the last write event, with ok == false
// if nothing was written.
func LastWriteTime(trace []Event) (int64, bool) {
	var (
		t     int64
		found bool
	)
	for _, e := range trace {
		if e.Action.Kind() == wire.KindWrite {
			t = e.Time
			found = true
		}
	}
	return t, found
}
