package adversary

import (
	"fmt"

	"repro/internal/chanmodel"
	"repro/internal/ioa"
	"repro/internal/multiset"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

// Section 5.2: the active case. Unlike the r-passive case, an active
// transmitter's actions depend on the receiver's packets, so the paper
// fixes, for every input X, ONE canonical timed execution η(X): both
// processes step every c2, and the channel batches each interval
// t_i = [i(d-ε), (i+1)(d-ε)) to the start of t̂_{i+1} (Figure 2 — our
// chanmodel.IntervalBatch with ε = 1 tick). The active profile P^t(X) is
// the per-interval multiset of data packets the transmitter sends in
// η(X); Lemma 5.4: distinct inputs must give distinct profiles, and
// counting them yields Theorem 5.6.

// ActiveProfile is P^t(X) for the canonical execution η(X).
type ActiveProfile struct {
	// K is the packet alphabet size.
	K int
	// Intervals hold the multiset of data symbols sent during each t_i,
	// trailing empty intervals trimmed.
	Intervals []multiset.Multiset
}

// Rounds returns ℓ(X): intervals up to the last send.
func (p ActiveProfile) Rounds() int { return len(p.Intervals) }

// Key returns a canonical comparable key.
func (p ActiveProfile) Key() string {
	out := ""
	for i, w := range p.Intervals {
		if i > 0 {
			out += "|"
		}
		out += w.Key()
	}
	return out
}

// PairFactory builds a fresh transmitter/receiver pair for an input — an
// active solution's composition.
type PairFactory func(x []wire.Bit) (t, r ioa.Automaton, err error)

// ExtractActiveProfile runs the canonical execution η(X) — both processes
// stepping every c2, deliveries batched per Figure 2 — and groups the
// transmitter's data sends by interval.
func ExtractActiveProfile(factory PairFactory, x []wire.Bit, k int, c2, d int64, writes int) (ActiveProfile, error) {
	if k < 1 {
		return ActiveProfile{}, fmt.Errorf("adversary: k must be >= 1, got %d", k)
	}
	if d < 2 {
		return ActiveProfile{}, fmt.Errorf("adversary: interval construction needs d >= 2, got %d", d)
	}
	tr, rc, err := factory(x)
	if err != nil {
		return ActiveProfile{}, err
	}
	batch := chanmodel.IntervalBatch{D: d}
	run, err := sim.Simulate(sim.Config{
		C1: c2, C2: c2, D: d,
		Transmitter: sim.Process{Auto: tr, Policy: sim.FixedGap{C: c2}},
		Receiver:    sim.Process{Auto: rc, Policy: sim.FixedGap{C: c2}},
		Delay:       batch,
		Stop:        sim.StopAfterWrites(writes),
		MaxTicks:    10_000_000,
	})
	if err != nil {
		return ActiveProfile{}, fmt.Errorf("adversary: canonical execution: %w", err)
	}
	period := batch.Period()
	var intervals []multiset.Multiset
	for _, e := range run.Trace {
		send, ok := e.Action.(wire.Send)
		if !ok || send.Dir != wire.TtoR || send.P.Kind != wire.Data {
			continue
		}
		idx := int(e.Time / period)
		for len(intervals) <= idx {
			intervals = append(intervals, multiset.New(k))
		}
		if err := intervals[idx].Add(send.P.Symbol); err != nil {
			return ActiveProfile{}, fmt.Errorf("adversary: interval %d: %w", idx, err)
		}
	}
	for len(intervals) > 0 && intervals[len(intervals)-1].Size() == 0 {
		intervals = intervals[:len(intervals)-1]
	}
	return ActiveProfile{K: k, Intervals: intervals}, nil
}

// ActiveCollision reports two distinct inputs with identical active
// profiles — impossible for a correct active solution (Lemma 5.4).
type ActiveCollision struct {
	X1, X2  []wire.Bit
	Profile ActiveProfile
}

// FindActiveCollision enumerates all 2^n inputs of length n and returns
// the first active-profile collision, plus the number of distinct
// profiles — the quantity Theorem 5.6's counting argument bounds by
// ζ_k(δ2)^ℓ.
func FindActiveCollision(factory PairFactory, k int, c2, d int64, n int) (col *ActiveCollision, distinct int, err error) {
	if n > 20 {
		return nil, 0, fmt.Errorf("adversary: enumeration of 2^%d inputs is unreasonable", n)
	}
	seen := make(map[string][]wire.Bit, 1<<uint(n))
	for v := 0; v < 1<<uint(n); v++ {
		x := make([]wire.Bit, n)
		for i := range x {
			x[i] = wire.Bit((v >> uint(n-1-i)) & 1)
		}
		prof, err := ExtractActiveProfile(factory, x, k, c2, d, n)
		if err != nil {
			return nil, 0, fmt.Errorf("adversary: profile of %s: %w", wire.BitsToString(x), err)
		}
		key := prof.Key()
		if other, dup := seen[key]; dup {
			if col == nil {
				col = &ActiveCollision{X1: other, X2: x, Profile: prof}
			}
			continue
		}
		seen[key] = x
	}
	return col, len(seen), nil
}

// VerifyCanonicalExecutionIsGood checks that the η(X) construction really
// is a good timed execution for the given parameters — the premise of
// Lemma 5.4 (the adversary must stay within the model).
func VerifyCanonicalExecutionIsGood(factory PairFactory, x []wire.Bit, c1, c2, d int64) []timed.Violation {
	tr, rc, err := factory(x)
	if err != nil {
		return []timed.Violation{{Index: -1, Rule: "setup", Msg: err.Error()}}
	}
	run, err := sim.Simulate(sim.Config{
		C1: c1, C2: c2, D: d,
		Transmitter: sim.Process{Auto: tr, Policy: sim.FixedGap{C: c2}},
		Receiver:    sim.Process{Auto: rc, Policy: sim.FixedGap{C: c2}},
		Delay:       chanmodel.IntervalBatch{D: d},
		Stop:        sim.StopAfterWrites(len(x)),
		MaxTicks:    10_000_000,
	})
	if err != nil {
		return []timed.Violation{{Index: -1, Rule: "run", Msg: err.Error()}}
	}
	return timed.Good(run.Trace, timed.GoodConfig{
		C1: c1, C2: c2, D: d,
		Transmitter: "t", Receiver: "r",
		X: x, RequireComplete: true,
	})
}
