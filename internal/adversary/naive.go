package adversary

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// NaiveTransmitter is the strawman protocol Lemma 5.1's adversary defeats:
// it streams the input bits directly, one per step, with no inter-send
// wait and no encoding. Within any δ1-step window it therefore reveals
// only *how many ones* it sent — e.g. inputs 0001... and 1000... have
// identical profiles — so no receiver can tell permutations of a window
// apart, and the protocol is provably not a solution to RSTP.
type NaiveTransmitter struct {
	m *ioa.Machine

	x []wire.Bit
	i int
}

var _ ioa.Deterministic = (*NaiveTransmitter)(nil)

// NewNaiveTransmitter builds the strawman transmitter for input x.
func NewNaiveTransmitter(x []wire.Bit) (*NaiveTransmitter, error) {
	for idx, b := range x {
		if !b.Valid() {
			return nil, fmt.Errorf("adversary: naive transmitter: invalid bit at %d", idx)
		}
	}
	t := &NaiveTransmitter{x: append([]wire.Bit(nil), x...)}
	m, err := ioa.NewMachine("t", t.classify, nil, []ioa.Command{
		{
			Name:  "send",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return t.i < len(t.x) },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.TtoR, P: wire.DataPacket(wire.Symbol(t.x[t.i]))}
			},
			Eff: func() { t.i++ },
		},
	})
	if err != nil {
		return nil, err
	}
	t.m = m
	return t, nil
}

func (t *NaiveTransmitter) classify(a ioa.Action) ioa.Class {
	if s, ok := a.(wire.Send); ok && s.Dir == wire.TtoR && s.P.Kind == wire.Data {
		return ioa.ClassOutput
	}
	return ioa.ClassNone
}

// Name returns "t".
func (t *NaiveTransmitter) Name() string { return t.m.Name() }

// Classify places an action in the signature.
func (t *NaiveTransmitter) Classify(a ioa.Action) ioa.Class { return t.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (t *NaiveTransmitter) NextLocal() (ioa.Action, bool) { return t.m.NextLocal() }

// Apply performs a transition.
func (t *NaiveTransmitter) Apply(a ioa.Action) error { return t.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (t *NaiveTransmitter) DeterministicIOA() bool { return true }

// NaiveReceiver writes arriving symbols directly, in arrival order — the
// best a receiver can do for the naive transmitter.
type NaiveReceiver struct {
	m *ioa.Machine

	y []wire.Bit
	k int
}

var _ ioa.Deterministic = (*NaiveReceiver)(nil)

// NewNaiveReceiver builds the strawman receiver.
func NewNaiveReceiver() (*NaiveReceiver, error) {
	r := &NaiveReceiver{}
	m, err := ioa.NewMachine("r", r.classify, r.onInput, []ioa.Command{
		{
			Name:  "write",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.k < len(r.y) },
			Act:   func() ioa.Action { return wire.Write{M: r.y[r.k]} },
			Eff:   func() { r.k++ },
		},
		{
			Name:  "idle_r",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return true },
			Act:   func() ioa.Action { return wire.Internal{Name: "idle_r"} },
			Eff:   func() {},
		},
	})
	if err != nil {
		return nil, err
	}
	r.m = m
	return r, nil
}

func (r *NaiveReceiver) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Recv:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassInput
		}
	case wire.Write:
		return ioa.ClassOutput
	case wire.Internal:
		if act.Name == "idle_r" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

func (r *NaiveReceiver) onInput(a ioa.Action) error {
	recv, ok := a.(wire.Recv)
	if !ok {
		return fmt.Errorf("adversary: naive receiver: unexpected input %v: %w", a, ioa.ErrNotInSignature)
	}
	r.y = append(r.y, wire.Bit(recv.P.Symbol))
	return nil
}

// Name returns "r".
func (r *NaiveReceiver) Name() string { return r.m.Name() }

// Classify places an action in the signature.
func (r *NaiveReceiver) Classify(a ioa.Action) ioa.Class { return r.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (r *NaiveReceiver) NextLocal() (ioa.Action, bool) { return r.m.NextLocal() }

// Apply performs a transition.
func (r *NaiveReceiver) Apply(a ioa.Action) error { return r.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (r *NaiveReceiver) DeterministicIOA() bool { return true }
