package adversary

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/rstp"
	"repro/internal/wire"
)

func gammaFactory(t *testing.T, p rstp.Params, k int) PairFactory {
	t.Helper()
	return func(x []wire.Bit) (ioa.Automaton, ioa.Automaton, error) {
		tr, err := rstp.NewGammaTransmitter(p, k, x)
		if err != nil {
			return nil, nil, err
		}
		rc, err := rstp.NewGammaReceiver(p, k)
		if err != nil {
			return nil, nil, err
		}
		return tr, rc, nil
	}
}

// TestActiveProfileShape: in η(X), A^γ's sends group into intervals whose
// union is exactly the encoded blocks.
func TestActiveProfileShape(t *testing.T) {
	p := rstp.Params{C1: 1, C2: 1, D: 3} // δ2 = 3, L = 2
	k := 2
	bits := rstp.GammaBlockBits(p, k)
	x := make([]wire.Bit, 2*bits) // two bursts of 3 packets
	x[0] = wire.One
	prof, err := ExtractActiveProfile(gammaFactory(t, p, k), x, k, p.C2, p.D, len(x))
	if err != nil {
		t.Fatal(err)
	}
	if prof.Rounds() == 0 {
		t.Fatal("no intervals")
	}
	total := 0
	for _, w := range prof.Intervals {
		total += w.Size()
	}
	if total != 2*p.Delta2() {
		t.Fatalf("profile carries %d packets, want %d", total, 2*p.Delta2())
	}
}

// TestGammaActiveProfilesDistinct is Lemma 5.4's contrapositive on the
// real protocol: distinct inputs yield distinct canonical profiles.
func TestGammaActiveProfilesDistinct(t *testing.T) {
	p := rstp.Params{C1: 1, C2: 1, D: 3}
	k := 2
	n := 2 * rstp.GammaBlockBits(p, k) // 4 bits -> 16 inputs
	col, distinct, err := FindActiveCollision(gammaFactory(t, p, k), k, p.C2, p.D, n)
	if err != nil {
		t.Fatal(err)
	}
	if col != nil {
		t.Fatalf("active profile collision: %s vs %s (profile %s)",
			wire.BitsToString(col.X1), wire.BitsToString(col.X2), col.Profile.Key())
	}
	if distinct != 1<<uint(n) {
		t.Errorf("distinct = %d, want %d", distinct, 1<<uint(n))
	}
}

// TestCanonicalExecutionIsGood: the Figure 2 construction is a legal
// timed execution of the composition — the premise of Lemma 5.4.
func TestCanonicalExecutionIsGood(t *testing.T) {
	p := rstp.Params{C1: 1, C2: 1, D: 3}
	k := 2
	bits := rstp.GammaBlockBits(p, k)
	x := make([]wire.Bit, 3*bits)
	for i := range x {
		x[i] = wire.Bit(i % 2)
	}
	if v := VerifyCanonicalExecutionIsGood(gammaFactory(t, p, k), x, p.C1, p.C2, p.D); len(v) != 0 {
		t.Fatalf("η(X) not good: %v", v[0])
	}
}

func TestActiveProfileValidation(t *testing.T) {
	p := rstp.Params{C1: 1, C2: 1, D: 3}
	f := gammaFactory(t, p, 2)
	if _, err := ExtractActiveProfile(f, nil, 0, 1, 3, 0); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := ExtractActiveProfile(f, nil, 2, 1, 1, 0); err == nil {
		t.Error("d < 2 should fail")
	}
	if _, _, err := FindActiveCollision(f, 2, 1, 3, 25); err == nil {
		t.Error("n = 25 should be rejected")
	}
}
