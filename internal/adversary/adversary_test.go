package adversary

import (
	"math"
	"testing"

	"repro/internal/ioa"
	"repro/internal/rstp"
	"repro/internal/wire"
)

func TestExtractProfileAlpha(t *testing.T) {
	p := rstp.Params{C1: 2, C2: 3, D: 8} // δ1 = 4, rounds of ⌈8/2⌉ = 4 steps
	x, err := wire.ParseBits("1011")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rstp.NewAlphaTransmitter(p, x)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ExtractProfile(tr, 2, p.Delta1(), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	// A^α sends one bit per 4-step round, so each window holds exactly one
	// symbol: the bit itself.
	if prof.Rounds() != len(x) {
		t.Fatalf("rounds = %d, want %d", prof.Rounds(), len(x))
	}
	for i, w := range prof.Windows {
		if w.Size() != 1 || w.Mult(wire.Symbol(x[i])) != 1 {
			t.Errorf("window %d = %v, want {%v}", i, w, x[i])
		}
	}
}

func TestExtractProfileArgs(t *testing.T) {
	tr, err := NewNaiveTransmitter([]wire.Bit{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractProfile(tr, 2, 0, 100); err == nil {
		t.Error("window 0 should fail")
	}
	if _, err := ExtractProfile(tr, 0, 2, 100); err == nil {
		t.Error("k 0 should fail")
	}
}

// TestProfileKeyEqualAgree: Key equality iff Equal.
func TestProfileKeyEqualAgree(t *testing.T) {
	mk := func(bits string) Profile {
		x, err := wire.ParseBits(bits)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewNaiveTransmitter(x)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := ExtractProfile(tr, 2, 3, 1000)
		if err != nil {
			t.Fatal(err)
		}
		return prof
	}
	a := mk("001011")
	b := mk("100110") // same per-3-window one-counts: {1,2}
	c := mk("111000")
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Errorf("profiles of 001|011 and 100|110 should collide: %q vs %q", a.Key(), b.Key())
	}
	if a.Equal(c) || a.Key() == c.Key() {
		t.Errorf("profiles of 001011 and 111000 should differ")
	}
}

// TestNaiveCollisionExists: the strawman protocol has profile collisions
// (Lemma 5.1 applies with teeth).
func TestNaiveCollisionExists(t *testing.T) {
	factory := func(x []wire.Bit) (ioa.Automaton, error) { return NewNaiveTransmitter(x) }
	col, distinct, err := FindCollision(factory, 2, 4, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if col == nil {
		t.Fatalf("no collision among 2^4 inputs (%d distinct profiles) — expected plenty", distinct)
	}
	// Only 5 possible one-counts for a 4-bit window: distinct <= 5.
	if distinct > 5 {
		t.Errorf("distinct = %d, want <= 5", distinct)
	}
	if wire.BitsToString(col.X1) == wire.BitsToString(col.X2) {
		t.Error("collision returned identical inputs")
	}
}

// TestAlphaProfilesDistinct: the correct A^α assigns distinct profiles to
// distinct inputs (contrapositive of Lemma 5.1).
func TestAlphaProfilesDistinct(t *testing.T) {
	p := rstp.Params{C1: 2, C2: 3, D: 8}
	factory := func(x []wire.Bit) (ioa.Automaton, error) { return rstp.NewAlphaTransmitter(p, x) }
	col, distinct, err := FindCollision(factory, 2, p.Delta1(), 8, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if col != nil {
		t.Fatalf("alpha profile collision: %s vs %s", wire.BitsToString(col.X1), wire.BitsToString(col.X2))
	}
	if distinct != 256 {
		t.Errorf("distinct = %d, want 256", distinct)
	}
}

// TestBetaProfilesDistinct: same for A^β(k), over whole blocks.
func TestBetaProfilesDistinct(t *testing.T) {
	p := rstp.Params{C1: 1, C2: 1, D: 5} // δ1 = 5, k = 2 -> L = ⌊log2 6⌋ = 2
	k := 2
	bits := rstp.BetaBlockBits(p, k)
	n := 3 * bits // three blocks
	factory := func(x []wire.Bit) (ioa.Automaton, error) { return rstp.NewBetaTransmitter(p, k, x) }
	col, distinct, err := FindCollision(factory, k, p.Delta1(), n, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if col != nil {
		t.Fatalf("beta profile collision: %s vs %s", wire.BitsToString(col.X1), wire.BitsToString(col.X2))
	}
	if distinct != 1<<uint(n) {
		t.Errorf("distinct = %d, want %d", distinct, 1<<uint(n))
	}
}

// TestIndistinguishabilityDefeatsNaive executes the Lemma 5.1 construction
// end to end: identical deliveries, identical outputs, protocol broken.
func TestIndistinguishabilityDefeatsNaive(t *testing.T) {
	window := 4
	factory := func(x []wire.Bit) (ioa.Automaton, error) { return NewNaiveTransmitter(x) }
	col, _, err := FindCollision(factory, 2, window, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if col == nil {
		t.Fatal("expected a collision")
	}
	out, err := DemonstrateIndistinguishability(*col, func() (ioa.Automaton, error) { return NewNaiveReceiver() }, window)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Identical {
		t.Fatalf("receiver outputs differ on identical deliveries: %s vs %s",
			wire.BitsToString(out.Y1), wire.BitsToString(out.Y2))
	}
	if !out.Broken {
		t.Fatal("expected at least one run to violate Y = X")
	}
}

// TestCanonicalDeliveryOrderIndependent: two different send orders with the
// same multisets produce identical canonical deliveries.
func TestCanonicalDeliveryOrderIndependent(t *testing.T) {
	mk := func(bits string) Profile {
		x, _ := wire.ParseBits(bits)
		tr, err := NewNaiveTransmitter(x)
		if err != nil {
			t.Fatal(err)
		}
		prof, err := ExtractProfile(tr, 2, 4, 1000)
		if err != nil {
			t.Fatal(err)
		}
		return prof
	}
	d1 := CanonicalDelivery(mk("0011"))
	d2 := CanonicalDelivery(mk("1100"))
	if len(d1) != 1 || len(d2) != 1 {
		t.Fatalf("windows: %d, %d", len(d1), len(d2))
	}
	if len(d1[0]) != 4 {
		t.Fatalf("delivery size %d", len(d1[0]))
	}
	for i := range d1[0] {
		if d1[0][i] != d2[0][i] {
			t.Fatalf("canonical deliveries differ at %d: %v vs %v", i, d1[0], d2[0])
		}
	}
}

// TestCountingBound verifies Lemma 5.2's inequality on our protocols: the
// observed round count ℓ(X) is at least n / log2 ζ_k(δ1).
func TestCountingBound(t *testing.T) {
	p := rstp.Params{C1: 1, C2: 1, D: 5}
	k := 2
	bits := rstp.BetaBlockBits(p, k)
	n := 4 * bits
	x := make([]wire.Bit, n)
	for i := range x {
		x[i] = wire.Bit(i % 2)
	}
	tr, err := rstp.NewBetaTransmitter(p, k, x)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ExtractProfile(tr, k, p.Delta1(), 100_000)
	if err != nil {
		t.Fatal(err)
	}
	bound := rstp.MinRoundsPassive(p, k, n)
	if float64(prof.Rounds()) < bound {
		t.Fatalf("ℓ(X) = %d below the counting bound %.2f", prof.Rounds(), bound)
	}
	// And it should be within a modest constant of the bound for A^β.
	if float64(prof.Rounds()) > 8*math.Max(bound, 1) {
		t.Errorf("ℓ(X) = %d far above the counting bound %.2f — profile extraction suspect", prof.Rounds(), bound)
	}
}

// TestFindCollisionGuards exercises the argument guards.
func TestFindCollisionGuards(t *testing.T) {
	factory := func(x []wire.Bit) (ioa.Automaton, error) { return NewNaiveTransmitter(x) }
	if _, _, err := FindCollision(factory, 2, 4, 30, 100); err == nil {
		t.Error("n = 30 should be rejected")
	}
}
