// Package adversary implements the lower-bound machinery of Section 5:
// transmitter action profiles P^t(X), the equivalence relation ≈, the
// indistinguishability construction of Lemma 5.1, and the counting
// argument behind Lemma 5.2 / Theorem 5.3.
//
// The idea: in the "fast" executions where both processes step every c1
// ticks, any packets the transmitter sends within one window of δ1
// consecutive steps can be delivered in an arbitrary order before the next
// window begins. The receiver therefore learns only the *multiset* of
// packets per window. If two inputs X1 ≠ X2 induce the same per-window
// multisets (X1 ≈ X2), the adversary delivers both identically and the
// (deterministic) receiver writes the same output for both — so one of the
// two runs is wrong. Correct protocols must hence give distinct profiles
// to distinct inputs, and counting profiles yields the effort bound.
package adversary

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
	"repro/internal/multiset"
	"repro/internal/wire"
)

// Profile is P^t(X): the per-window multisets of packets an r-passive
// transmitter sends when scheduled every c1 ticks, windows being δ1
// consecutive steps.
type Profile struct {
	// K is the packet alphabet size.
	K int
	// Windows hold the multiset of data symbols sent in each δ1-step
	// window, trailing empty windows trimmed.
	Windows []multiset.Multiset
	// Steps is the number of steps the transmitter took before going
	// quiescent.
	Steps int
}

// Rounds returns ℓ(X): the number of windows up to the last send.
func (p Profile) Rounds() int { return len(p.Windows) }

// Key returns a canonical comparable key.
func (p Profile) Key() string {
	parts := make([]string, len(p.Windows))
	for i, w := range p.Windows {
		parts[i] = w.Key()
	}
	return strings.Join(parts, "|")
}

// Equal reports X1 ≈ X2's defining condition on the profiles: equal round
// counts and equal window multisets.
func (p Profile) Equal(q Profile) bool {
	if p.K != q.K || len(p.Windows) != len(q.Windows) {
		return false
	}
	for i := range p.Windows {
		if !p.Windows[i].Equal(q.Windows[i]) {
			return false
		}
	}
	return true
}

// ExtractProfile runs an r-passive transmitter standalone (it has no
// inputs, so its action sequence f_t(X) is a function of the input alone)
// and groups its data sends into windows of `window` steps. It stops when
// the transmitter goes quiescent or after maxSteps steps.
func ExtractProfile(t ioa.Automaton, k, window, maxSteps int) (Profile, error) {
	if window < 1 {
		return Profile{}, fmt.Errorf("adversary: window must be >= 1, got %d", window)
	}
	if k < 1 {
		return Profile{}, fmt.Errorf("adversary: k must be >= 1, got %d", k)
	}
	var (
		windows []multiset.Multiset
		cur     = multiset.New(k)
		steps   int
	)
	flush := func() {
		windows = append(windows, cur.Clone())
		cur.Clear()
	}
	for steps = 0; steps < maxSteps; steps++ {
		act, ok := t.NextLocal()
		if !ok {
			break
		}
		if err := t.Apply(act); err != nil {
			return Profile{}, fmt.Errorf("adversary: profile step %d: %w", steps, err)
		}
		if s, isSend := act.(wire.Send); isSend {
			if s.Dir != wire.TtoR {
				return Profile{}, fmt.Errorf("adversary: transmitter of an r-passive solution sent %v", s)
			}
			if s.P.Kind == wire.Data {
				if err := cur.Add(s.P.Symbol); err != nil {
					return Profile{}, fmt.Errorf("adversary: profile step %d: %w", steps, err)
				}
			}
		}
		if (steps+1)%window == 0 {
			flush()
		}
	}
	if cur.Size() > 0 || steps%window != 0 {
		flush()
	}
	// Trim trailing empty windows: only windows up to the last send carry
	// information (the paper truncates at last-send).
	for len(windows) > 0 && windows[len(windows)-1].Size() == 0 {
		windows = windows[:len(windows)-1]
	}
	return Profile{K: k, Windows: windows, Steps: steps}, nil
}

// TransmitterFactory builds a fresh r-passive transmitter for an input.
type TransmitterFactory func(x []wire.Bit) (ioa.Automaton, error)

// Collision is a pair of distinct inputs with equal profiles — a witness
// that the protocol cannot be a correct RSTP solution (Lemma 5.1).
type Collision struct {
	// X1, X2 are the colliding inputs.
	X1, X2 []wire.Bit
	// Profile is their common profile.
	Profile Profile
}

// FindCollision enumerates all 2^n inputs of length n and returns the
// first profile collision if one exists. distinct reports the number of
// distinct profiles over the whole enumeration (the quantity the Lemma 5.2
// counting argument bounds by ζ_k(δ1)^ℓ).
func FindCollision(factory TransmitterFactory, k, window, n, maxSteps int) (col *Collision, distinct int, err error) {
	if n > 24 {
		return nil, 0, fmt.Errorf("adversary: enumeration of 2^%d inputs is unreasonable", n)
	}
	seen := make(map[string][]wire.Bit, 1<<uint(n))
	for v := 0; v < 1<<uint(n); v++ {
		x := make([]wire.Bit, n)
		for i := range x {
			x[i] = wire.Bit((v >> uint(n-1-i)) & 1)
		}
		t, err := factory(x)
		if err != nil {
			return nil, 0, fmt.Errorf("adversary: build transmitter for %s: %w", wire.BitsToString(x), err)
		}
		prof, err := ExtractProfile(t, k, window, maxSteps)
		if err != nil {
			return nil, 0, err
		}
		key := prof.Key()
		if other, dup := seen[key]; dup {
			if col == nil {
				col = &Collision{X1: other, X2: x, Profile: prof}
			}
			continue
		}
		seen[key] = x
	}
	return col, len(seen), nil
}

// CanonicalDelivery returns, per window, the sorted symbol sequence the
// Lemma 5.1 adversary delivers at the window boundary. Two inputs with
// equal profiles produce identical canonical deliveries — that is the
// whole construction.
func CanonicalDelivery(p Profile) [][]wire.Symbol {
	out := make([][]wire.Symbol, len(p.Windows))
	for i, w := range p.Windows {
		out[i] = w.ToSeq() // ascending linearisation: canonical
	}
	return out
}

// RunReceiverOnDelivery realises the receiver side of the fast execution:
// the receiver takes `window` local steps per window (both processes step
// every c1), then the adversary injects the window's packets in canonical
// order at the boundary. After the last window the receiver runs drain
// steps to flush pending writes. It returns the receiver's output Y.
func RunReceiverOnDelivery(r ioa.Automaton, delivery [][]wire.Symbol, window, drain int) ([]wire.Bit, error) {
	var writes []wire.Bit
	step := func() error {
		act, ok := r.NextLocal()
		if !ok {
			return nil // receivers normally idle; quiescence is fine too
		}
		if err := r.Apply(act); err != nil {
			return err
		}
		if w, isWrite := act.(wire.Write); isWrite {
			writes = append(writes, w.M)
		}
		return nil
	}
	for _, packets := range delivery {
		for i := 0; i < window; i++ {
			if err := step(); err != nil {
				return writes, fmt.Errorf("adversary: receiver step: %w", err)
			}
		}
		for _, s := range packets {
			in := wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(s)}
			if err := r.Apply(in); err != nil {
				return writes, fmt.Errorf("adversary: inject %v: %w", in, err)
			}
		}
	}
	for i := 0; i < drain; i++ {
		if err := step(); err != nil {
			return writes, fmt.Errorf("adversary: receiver drain: %w", err)
		}
	}
	return writes, nil
}

// ReceiverFactory builds a fresh receiver.
type ReceiverFactory func() (ioa.Automaton, error)

// IndistinguishableOutcome is the result of executing Lemma 5.1's
// construction on a profile collision.
type IndistinguishableOutcome struct {
	// Y1, Y2 are the receiver outputs in the two constructed executions.
	Y1, Y2 []wire.Bit
	// Identical reports Y1 == Y2 (they must be: the receiver saw the same
	// timed inputs).
	Identical bool
	// Broken reports that at least one run failed Y = X — the protocol is
	// not a solution.
	Broken bool
}

// DemonstrateIndistinguishability executes the Lemma 5.1 adversary against
// a profile collision: it builds the two fast executions with identical
// deliveries and compares the receiver's outputs against the two inputs.
func DemonstrateIndistinguishability(col Collision, newReceiver ReceiverFactory, window int) (IndistinguishableOutcome, error) {
	delivery := CanonicalDelivery(col.Profile)
	total := 0
	for _, d := range delivery {
		total += len(d)
	}
	drain := total + window + 8
	run := func() ([]wire.Bit, error) {
		r, err := newReceiver()
		if err != nil {
			return nil, err
		}
		return RunReceiverOnDelivery(r, delivery, window, drain)
	}
	y1, err := run()
	if err != nil {
		return IndistinguishableOutcome{}, err
	}
	y2, err := run()
	if err != nil {
		return IndistinguishableOutcome{}, err
	}
	out := IndistinguishableOutcome{
		Y1:        y1,
		Y2:        y2,
		Identical: wire.BitsToString(y1) == wire.BitsToString(y2),
	}
	// The receiver is deterministic and saw identical inputs, so Y1 = Y2;
	// since X1 != X2, at least one run violated Y = X.
	wrong1 := wire.BitsToString(y1) != wire.BitsToString(col.X1)
	wrong2 := wire.BitsToString(y2) != wire.BitsToString(col.X2)
	out.Broken = wrong1 || wrong2
	return out, nil
}
