package faults

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestProcPlanEvents(t *testing.T) {
	p := NewProcPlan(5,
		ProcFault{Proc: sim.ProcReceiver, From: 200, To: 300, Crash: true},
		ProcFault{Proc: sim.ProcTransmitter, From: 100, To: 250, Crash: true, Corrupt: true},
		ProcFault{Proc: sim.ProcReceiver, From: 150, Corrupt: true},
	)
	evs := p.Events()
	want := []struct {
		at   int64
		proc sim.ProcID
		kind sim.ProcFaultKind
	}{
		{100, sim.ProcTransmitter, sim.ProcCrash},
		{150, sim.ProcReceiver, sim.ProcCorrupt},
		{200, sim.ProcReceiver, sim.ProcCrash},
		{250, sim.ProcTransmitter, sim.ProcCorrupt}, // corrupt precedes restart at the same tick
		{250, sim.ProcTransmitter, sim.ProcRestart},
		{300, sim.ProcReceiver, sim.ProcRestart},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(evs), evs, len(want))
	}
	for i, w := range want {
		if evs[i].At != w.at || evs[i].Proc != w.proc || evs[i].Kind != w.kind {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], w)
		}
	}
	if evs[3].Seed == 0 {
		t.Fatal("corrupt event carries no seed")
	}
}

func TestProcPlanEventsDeterministic(t *testing.T) {
	mk := func() *ProcPlan {
		return NewProcPlan(9,
			ProcFault{Proc: sim.ProcTransmitter, From: 10, To: 20, Crash: true, Corrupt: true},
			ProcFault{Proc: sim.ProcReceiver, From: 30, Corrupt: true},
		)
	}
	a, b := mk().Events(), mk().Events()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := NewProcPlan(10, mk().Clauses()...).Events(); c[0].Seed == a[0].Seed {
		// Compare the first seeded event (the corrupt at the crash close).
		t.Log("note: seeds may coincide by index; check a seeded event instead")
	}
}

func TestProcPlanCrashForever(t *testing.T) {
	p := NewProcPlan(1, ProcFault{Proc: sim.ProcTransmitter, From: 50, Crash: true})
	evs := p.Events()
	if len(evs) != 1 || evs[0].Kind != sim.ProcCrash {
		t.Fatalf("crash-forever events: %v", evs)
	}
	if p.End() != 50 {
		t.Fatalf("End() = %d, want 50", p.End())
	}
	if !strings.Contains(p.Name(), "crash-forever") {
		t.Fatalf("Name() = %q", p.Name())
	}
}

func TestProcPlanGapScale(t *testing.T) {
	p := NewProcPlan(2,
		ProcFault{Proc: sim.ProcTransmitter, From: 100, To: 300, RateFactor: 3},
		ProcFault{Proc: sim.ProcTransmitter, From: 200, To: 400, RateFactor: 2},
		ProcFault{Proc: sim.ProcReceiver, From: 0, To: 1000, RateFactor: 5},
	)
	cases := []struct {
		proc sim.ProcID
		at   int64
		want int64
	}{
		{sim.ProcTransmitter, 99, 1},
		{sim.ProcTransmitter, 100, 3},
		{sim.ProcTransmitter, 250, 6}, // overlapping windows compound
		{sim.ProcTransmitter, 350, 2},
		{sim.ProcTransmitter, 400, 1},
		{sim.ProcReceiver, 250, 5},
	}
	for _, c := range cases {
		if got := p.GapScale(c.proc, c.at); got != c.want {
			t.Fatalf("GapScale(%v, %d) = %d, want %d", c.proc, c.at, got, c.want)
		}
	}
}

func TestProcPlanEnd(t *testing.T) {
	p := NewProcPlan(3,
		ProcFault{Proc: sim.ProcTransmitter, From: 10, To: 80, Crash: true},
		ProcFault{Proc: sim.ProcReceiver, From: 40, To: 120, RateFactor: 2},
		ProcFault{Proc: sim.ProcReceiver, From: 90, Corrupt: true},
	)
	if got := p.End(); got != 120 {
		t.Fatalf("End() = %d, want 120", got)
	}
}

func TestProcFaultString(t *testing.T) {
	cases := []struct {
		f    ProcFault
		want string
	}{
		{ProcFault{Proc: sim.ProcTransmitter, From: 100, To: 300, Crash: true, Corrupt: true}, "t[100,300) crash+corrupt"},
		{ProcFault{Proc: sim.ProcReceiver, From: 50, Crash: true}, "r[50,0) crash-forever"},
		{ProcFault{Proc: sim.ProcReceiver, From: 10, To: 20, RateFactor: 4}, "r[10,20) rate×4"},
		{ProcFault{Proc: sim.ProcTransmitter, From: 1, To: 2}, "t[1,2) noop"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Fatalf("String() = %q, want %q", got, c.want)
		}
	}
	if name := NewProcPlan(7, cases[0].f).Name(); !strings.Contains(name, "seed=7") || !strings.Contains(name, "crash+corrupt") {
		t.Fatalf("plan name %q", name)
	}
}

func TestProcPlanClausesCopy(t *testing.T) {
	orig := []ProcFault{{Proc: sim.ProcTransmitter, From: 1, To: 2, Crash: true}}
	p := NewProcPlan(1, orig...)
	got := p.Clauses()
	got[0].From = 99
	if p.Clauses()[0].From != 1 {
		t.Fatal("Clauses() exposed internal storage")
	}
}
