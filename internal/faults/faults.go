// Package faults is the chaos-testing middleware: deterministic, seeded,
// time-windowed fault injection layered over any chanmodel.DelayPolicy.
//
// The paper's guarantees hold only inside the model — every packet
// delivered within d, nothing lost, duplicated or damaged. A Plan wraps a
// well-behaved (or already adversarial) delay policy and, inside declared
// send-time windows, breaks those promises on purpose: blackouts, random
// drops, duplications, payload corruption, and deliveries pushed past the
// d bound. Because the plan is seeded and the simulator is deterministic,
// every chaos run is exactly reproducible: same seed, same faults, same
// trace.
//
// The package is one third of the hardening story: faults injects,
// sim's watchdog detects (Run.Degradation), and rstp.Harden survives —
// safety (Y a prefix of X) under any plan, liveness once the last fault
// window closes.
//
// The same seeded-plan idiom recurs one layer down the storage stack:
// journal.Plan drives a fault-injecting filesystem (short writes, fsync
// errors, bit flips, crash-at-write-offset) under the durable checkpoint
// journal, and ProcPlan (in this package) schedules the process-level
// crashes those filesystem faults are the on-disk shadow of.
package faults

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/chanmodel"
	"repro/internal/wire"
)

// Fault is one time-windowed fault clause. A packet is affected when its
// send time lies in [From, To) and its direction matches Dir (zero means
// both directions). Clauses compose: every matching clause of a plan is
// applied to the packet, in declaration order.
type Fault struct {
	// From and To bound the clause's active window in send-time ticks
	// (half-open: From <= sendTime < To).
	From, To int64
	// Dir restricts the clause to one direction; zero applies to both.
	Dir wire.Dir
	// Blackout drops every affected packet — a dead link for the window.
	Blackout bool
	// Drop is the probability an affected packet is lost outright.
	Drop float64
	// Dup is the probability an affected packet is delivered twice.
	Dup float64
	// Corrupt is the probability an affected packet's payload symbol is
	// damaged in flight. The damage is a symbol offset in [1, 15] — never
	// ≡ 0 (mod 16) — so the hardened layer's 16-bucket checksum detects it
	// deterministically, the way a real CRC catches damage w.h.p.
	Corrupt float64
	// ExtraDelay is added to every affected delivery, typically pushing it
	// past the model's bound d.
	ExtraDelay int64
}

// active reports whether the clause applies to a packet sent at sendTime
// in direction dir.
func (f Fault) active(sendTime int64, dir wire.Dir) bool {
	if sendTime < f.From || sendTime >= f.To {
		return false
	}
	return f.Dir == 0 || f.Dir == dir
}

// String renders the clause compactly, e.g. "[100,400) drop=0.20 dup=0.10".
func (f Fault) String() string {
	var parts []string
	if f.Blackout {
		parts = append(parts, "blackout")
	}
	if f.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.2f", f.Drop))
	}
	if f.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%.2f", f.Dup))
	}
	if f.Corrupt > 0 {
		parts = append(parts, fmt.Sprintf("corrupt=%.2f", f.Corrupt))
	}
	if f.ExtraDelay > 0 {
		parts = append(parts, fmt.Sprintf("delay+%d", f.ExtraDelay))
	}
	if len(parts) == 0 {
		parts = append(parts, "noop")
	}
	win := fmt.Sprintf("[%d,%d)", f.From, f.To)
	if f.Dir != 0 {
		win += fmt.Sprintf("@%v", f.Dir)
	}
	return win + " " + strings.Join(parts, " ")
}

// Plan is a seeded fault-injection schedule wrapped around an inner delay
// policy. It implements chanmodel.DelayPolicy and chanmodel.Mutator, so
// any existing run configuration can be chaos-tested by substituting
// NewPlan(seed, oldPolicy, faults...) for oldPolicy.
//
// Determinism: the plan draws from its own fixed-seed source, consumed
// only for packets inside a probabilistic clause's window, in send order —
// with a deterministic simulator the full fault pattern is a function of
// (seed, faults, workload).
type Plan struct {
	inner  chanmodel.DelayPolicy
	faults []Fault
	seed   int64
	rng    *rand.Rand

	injected injectionStats
}

// injectionStats counts what the plan actually did, for reports.
type injectionStats struct {
	Affected, Dropped, Duplicated, Corrupted, Delayed int
}

var _ chanmodel.Mutator = (*Plan)(nil)

// NewPlan wraps inner with the given fault clauses, drawing all
// randomness from seed.
func NewPlan(seed int64, inner chanmodel.DelayPolicy, faults ...Fault) *Plan {
	return &Plan{
		inner:  inner,
		faults: append([]Fault(nil), faults...),
		seed:   seed,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Name renders the plan and its inner policy.
func (p *Plan) Name() string {
	clauses := make([]string, len(p.faults))
	for i, f := range p.faults {
		clauses[i] = f.String()
	}
	return fmt.Sprintf("faults(seed=%d; %s)/%s", p.seed, strings.Join(clauses, "; "), p.inner.Name())
}

// End returns the close of the last fault window — the heal time after
// which the plan is a transparent pass-through. Zero for an empty plan.
func (p *Plan) End() int64 {
	var end int64
	for _, f := range p.faults {
		if f.To > end {
			end = f.To
		}
	}
	return end
}

// Stats reports how many packets the plan affected, dropped, duplicated,
// corrupted and delayed so far.
func (p *Plan) Stats() (affected, dropped, duplicated, corrupted, delayed int) {
	s := p.injected
	return s.Affected, s.Dropped, s.Duplicated, s.Corrupted, s.Delayed
}

// Arrivals implements chanmodel.DelayPolicy (times only; corruption is
// invisible through this method but consumes the same randomness, so a
// plan behaves identically whichever interface the engine uses).
func (p *Plan) Arrivals(dirSeq int64, sendTime int64, dir wire.Dir, pkt wire.Packet) []int64 {
	arr := p.ArrivalsMut(dirSeq, sendTime, dir, pkt)
	out := make([]int64, len(arr))
	for i, a := range arr {
		out[i] = a.At
	}
	return out
}

// ArrivalsMut implements chanmodel.Mutator: the inner policy's schedule
// with every active fault clause applied in declaration order.
func (p *Plan) ArrivalsMut(dirSeq int64, sendTime int64, dir wire.Dir, pkt wire.Packet) []chanmodel.Arrival {
	times := p.inner.Arrivals(dirSeq, sendTime, dir, pkt)
	out := make([]chanmodel.Arrival, 0, len(times)+1)
	for _, at := range times {
		out = append(out, chanmodel.Arrival{At: at, P: pkt})
	}
	for _, f := range p.faults {
		if !f.active(sendTime, dir) {
			continue
		}
		p.injected.Affected++
		if f.Blackout {
			p.injected.Dropped++
			return nil
		}
		if f.Drop > 0 && p.rng.Float64() < f.Drop {
			p.injected.Dropped++
			return nil
		}
		if f.Dup > 0 && p.rng.Float64() < f.Dup && len(out) > 0 {
			p.injected.Duplicated++
			out = append(out, out[0])
		}
		if f.Corrupt > 0 && p.rng.Float64() < f.Corrupt {
			p.injected.Corrupted++
			// Offset in [1, 15]: nonzero mod 16, so checksum-detectable.
			delta := wire.Symbol(1 + p.rng.Intn(15))
			for i := range out {
				out[i].P.Symbol += delta
			}
		}
		if f.ExtraDelay > 0 {
			p.injected.Delayed++
			for i := range out {
				out[i].At += f.ExtraDelay
			}
		}
	}
	return out
}
