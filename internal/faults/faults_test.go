package faults

import (
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/wire"
)

// replay feeds n packets through a plan and returns every arrival.
func replay(p *Plan, n int64) [][]chanmodel.Arrival {
	out := make([][]chanmodel.Arrival, n)
	for i := int64(0); i < n; i++ {
		out[i] = p.ArrivalsMut(i, i*2, wire.TtoR, wire.DataPacket(wire.Symbol(i%4)))
	}
	return out
}

func TestPlanDeterministic(t *testing.T) {
	mk := func() *Plan {
		return NewPlan(42, chanmodel.Zero{},
			Fault{From: 10, To: 60, Drop: 0.3, Dup: 0.3, Corrupt: 0.3})
	}
	a, b := replay(mk(), 100), replay(mk(), 100)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("packet %d: %d vs %d arrivals", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("packet %d arrival %d: %+v vs %+v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestPlanWindowGating(t *testing.T) {
	p := NewPlan(1, chanmodel.Zero{}, Fault{From: 10, To: 20, Blackout: true})
	pkt := wire.DataPacket(3)
	for _, tc := range []struct {
		sendTime int64
		want     int // arrivals
	}{
		{9, 1},  // before window
		{10, 0}, // window open (inclusive)
		{19, 0}, // last tick inside
		{20, 1}, // window closed (exclusive)
		{100, 1},
	} {
		got := p.ArrivalsMut(0, tc.sendTime, wire.TtoR, pkt)
		if len(got) != tc.want {
			t.Fatalf("sendTime %d: %d arrivals, want %d", tc.sendTime, len(got), tc.want)
		}
	}
	if p.End() != 20 {
		t.Fatalf("End() = %d, want 20", p.End())
	}
}

func TestPlanDirectionGating(t *testing.T) {
	p := NewPlan(1, chanmodel.Zero{}, Fault{From: 0, To: 100, Dir: wire.TtoR, Blackout: true})
	pkt := wire.DataPacket(0)
	if got := p.ArrivalsMut(0, 5, wire.TtoR, pkt); len(got) != 0 {
		t.Fatalf("TtoR packet survived a TtoR blackout: %v", got)
	}
	if got := p.ArrivalsMut(0, 5, wire.RtoT, pkt); len(got) != 1 {
		t.Fatalf("RtoT packet hit a TtoR-only blackout: %v", got)
	}
}

func TestPlanDropAndDup(t *testing.T) {
	p := NewPlan(7, chanmodel.Zero{}, Fault{From: 0, To: 1000, Drop: 0.5, Dup: 0.5})
	var dropped, dupped, clean int
	for i := int64(0); i < 500; i++ {
		switch got := p.ArrivalsMut(i, i, wire.TtoR, wire.DataPacket(0)); len(got) {
		case 0:
			dropped++
		case 1:
			clean++
		case 2:
			dupped++
			if got[0].P != got[1].P || got[0].At != got[1].At {
				t.Fatalf("duplicate differs from original: %+v", got)
			}
		default:
			t.Fatalf("packet %d: %d arrivals", i, len(got))
		}
	}
	// Rough sanity: with p=0.5 each over 500 packets, all three outcomes occur.
	if dropped == 0 || dupped == 0 || clean == 0 {
		t.Fatalf("dropped=%d dupped=%d clean=%d — fault draws not firing", dropped, dupped, clean)
	}
	affected, d, du, _, _ := p.Stats()
	if affected != 500 || d != dropped || du != dupped {
		t.Fatalf("stats affected=%d dropped=%d dupped=%d, counted %d/%d", affected, d, du, dropped, dupped)
	}
}

func TestPlanCorruptChangesSymbolDetectably(t *testing.T) {
	p := NewPlan(3, chanmodel.Zero{}, Fault{From: 0, To: 1000, Corrupt: 1})
	var corrupted int
	for i := int64(0); i < 64; i++ {
		orig := wire.DataPacket(wire.Symbol(i))
		for _, a := range p.ArrivalsMut(i, i, wire.TtoR, orig) {
			if a.P.Symbol == orig.Symbol {
				t.Fatalf("packet %d: corrupt=1 left symbol unchanged", i)
			}
			// Offset must be nonzero mod 16 so a 16-bucket checksum sees it.
			if (a.P.Symbol-orig.Symbol)%16 == 0 {
				t.Fatalf("packet %d: offset %d is 0 mod 16", i, a.P.Symbol-orig.Symbol)
			}
			if a.P.Kind != orig.Kind || a.P.Tag != orig.Tag {
				t.Fatalf("corruption touched non-payload fields: %+v", a.P)
			}
			corrupted++
		}
	}
	if corrupted != 64 {
		t.Fatalf("corrupted %d of 64", corrupted)
	}
}

func TestPlanExtraDelay(t *testing.T) {
	inner := chanmodel.MaxDelay{D: 4}
	p := NewPlan(1, inner, Fault{From: 0, To: 50, ExtraDelay: 100})
	base := inner.Arrivals(0, 10, wire.TtoR, wire.DataPacket(0))
	got := p.ArrivalsMut(0, 10, wire.TtoR, wire.DataPacket(0))
	if len(got) != len(base) {
		t.Fatalf("arrival count changed: %d vs %d", len(got), len(base))
	}
	for i := range got {
		if got[i].At != base[i]+100 {
			t.Fatalf("arrival %d at %d, want %d", i, got[i].At, base[i]+100)
		}
	}
}

func TestPlanComposesClauses(t *testing.T) {
	// Two clauses over overlapping windows: a delay on all traffic plus a
	// blackout on the later half. Both must apply where both are active.
	p := NewPlan(1, chanmodel.Zero{},
		Fault{From: 0, To: 100, ExtraDelay: 5},
		Fault{From: 50, To: 100, Blackout: true},
	)
	if got := p.ArrivalsMut(0, 10, wire.TtoR, wire.DataPacket(0)); len(got) != 1 || got[0].At != 15 {
		t.Fatalf("delay-only region: %+v", got)
	}
	if got := p.ArrivalsMut(1, 60, wire.TtoR, wire.DataPacket(0)); len(got) != 0 {
		t.Fatalf("blackout region delivered: %+v", got)
	}
	if p.End() != 100 {
		t.Fatalf("End() = %d", p.End())
	}
}

func TestPlanArrivalsMatchesMut(t *testing.T) {
	// The times-only DelayPolicy view must agree with the Mutator view for
	// identically-seeded plans.
	mk := func() *Plan {
		return NewPlan(9, chanmodel.Zero{}, Fault{From: 0, To: 500, Drop: 0.4, Dup: 0.4, ExtraDelay: 3})
	}
	a, b := mk(), mk()
	for i := int64(0); i < 200; i++ {
		times := a.Arrivals(i, i, wire.TtoR, wire.DataPacket(0))
		arr := b.ArrivalsMut(i, i, wire.TtoR, wire.DataPacket(0))
		if len(times) != len(arr) {
			t.Fatalf("packet %d: %d vs %d arrivals", i, len(times), len(arr))
		}
		for j := range times {
			if times[j] != arr[j].At {
				t.Fatalf("packet %d arrival %d: %d vs %d", i, j, times[j], arr[j].At)
			}
		}
	}
}

func TestPlanName(t *testing.T) {
	p := NewPlan(5, chanmodel.Zero{}, Fault{From: 1, To: 2, Drop: 0.25})
	name := p.Name()
	for _, want := range []string{"seed=5", "[1,2)", "drop=0.25", chanmodel.Zero{}.Name()} {
		if !contains(name, want) {
			t.Fatalf("Name() = %q missing %q", name, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
