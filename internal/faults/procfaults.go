// Process-targeted fault plans: the second half of the chaos middleware.
// Plan (faults.go) breaks the *channel's* promises; ProcPlan breaks the
// *processes'* — the paper's implicit assumption that the transmitter and
// receiver never stop stepping and their state is incorruptible. A
// ProcPlan schedules crashes (with or without a later restart), transient
// state corruption, and step-rate violation windows, all deterministic
// functions of the plan's seed and clauses, and hands them to the engine
// through sim.Config.ProcFaults.
package faults

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// ProcFault is one process-fault clause.
//
// A clause with Crash set takes the process down at From and restarts it
// at To; To <= From means the process never comes back (the plan then
// never heals and liveness is forfeit by construction). Corrupt combined
// with Crash mutates the process's persisted state just before the
// restart — the "checkpoint damaged while the process was down" scenario;
// Corrupt alone mutates live state at From — the paper-adjacent transient
// fault of the self-stabilization literature. RateFactor > 1 stretches
// every step gap chosen inside [From, To) by that factor, violating the
// c2 bound without stopping the process.
type ProcFault struct {
	// Proc targets the transmitter or the receiver.
	Proc sim.ProcID
	// From and To bound the clause window in ticks.
	From, To int64
	// Crash takes the process down for the window.
	Crash bool
	// Corrupt mutates process state: at restart when Crash is set, live at
	// From otherwise.
	Corrupt bool
	// RateFactor, when > 1, multiplies step gaps chosen inside the window.
	RateFactor int64
}

// String renders the clause compactly, e.g. "t[100,300) crash+corrupt".
func (f ProcFault) String() string {
	var parts []string
	if f.Crash {
		if f.To > f.From {
			parts = append(parts, "crash")
		} else {
			parts = append(parts, "crash-forever")
		}
	}
	if f.Corrupt {
		parts = append(parts, "corrupt")
	}
	if f.RateFactor > 1 {
		parts = append(parts, fmt.Sprintf("rate×%d", f.RateFactor))
	}
	if len(parts) == 0 {
		parts = append(parts, "noop")
	}
	return fmt.Sprintf("%v[%d,%d) %s", f.Proc, f.From, f.To, strings.Join(parts, "+"))
}

// ProcPlan is a seeded process-fault schedule. It implements
// sim.ProcSchedule; pass it as sim.Config.ProcFaults (or
// rstp.RunOptions.ProcFaults).
type ProcPlan struct {
	seed    int64
	clauses []ProcFault
}

var _ sim.ProcSchedule = (*ProcPlan)(nil)

// NewProcPlan builds a plan from the given clauses. seed drives the
// randomness handed to corruption faults, so a given (seed, clauses) pair
// reproduces the same damage byte for byte.
func NewProcPlan(seed int64, clauses ...ProcFault) *ProcPlan {
	return &ProcPlan{seed: seed, clauses: append([]ProcFault(nil), clauses...)}
}

// Name renders the plan.
func (p *ProcPlan) Name() string {
	cs := make([]string, len(p.clauses))
	for i, c := range p.clauses {
		cs[i] = c.String()
	}
	return fmt.Sprintf("procfaults(seed=%d; %s)", p.seed, strings.Join(cs, "; "))
}

// Events expands the clauses into the engine's timed fault events, sorted
// by time. For a crash-with-corruption clause the corrupt event precedes
// the restart at the same tick, so the process reloads the already
// damaged checkpoint — the scenario rstp.Stabilize's checksum exists for.
func (p *ProcPlan) Events() []sim.ProcEvent {
	var out []sim.ProcEvent
	for i, c := range p.clauses {
		seed := p.seed*1000003 + int64(i)*7919
		if c.Crash {
			out = append(out, sim.ProcEvent{At: c.From, Proc: c.Proc, Kind: sim.ProcCrash})
			if c.To > c.From {
				if c.Corrupt {
					out = append(out, sim.ProcEvent{At: c.To, Proc: c.Proc, Kind: sim.ProcCorrupt, Seed: seed})
				}
				out = append(out, sim.ProcEvent{At: c.To, Proc: c.Proc, Kind: sim.ProcRestart})
			}
		} else if c.Corrupt {
			out = append(out, sim.ProcEvent{At: c.From, Proc: c.Proc, Kind: sim.ProcCorrupt, Seed: seed})
		}
	}
	// Stable insertion sort by time keeps the intra-tick clause order
	// (corrupt before restart) that the engine's tie-break preserves.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].At < out[j-1].At; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// GapScale returns the product of the rate factors of every clause window
// covering time t for the process — compounding overlapping violations,
// mirroring how channel fault clauses compose.
func (p *ProcPlan) GapScale(who sim.ProcID, t int64) int64 {
	scale := int64(1)
	for _, c := range p.clauses {
		if c.Proc == who && c.RateFactor > 1 && t >= c.From && t < c.To {
			scale *= c.RateFactor
		}
	}
	return scale
}

// End returns the heal time: the close of the last clause window. A
// crash that never restarts contributes its crash time — the plan is
// inert afterwards, but the process stays down and liveness is forfeit.
func (p *ProcPlan) End() int64 {
	var end int64
	for _, c := range p.clauses {
		at := c.To
		if at <= c.From {
			at = c.From
		}
		if at > end {
			end = at
		}
	}
	return end
}

// Clauses returns a copy of the plan's clauses, for reports.
func (p *ProcPlan) Clauses() []ProcFault { return append([]ProcFault(nil), p.clauses...) }
