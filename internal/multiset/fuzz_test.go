package multiset

import (
	"math/big"
	"testing"

	"repro/internal/wire"
)

// FuzzDecodeNeverPanics feeds arbitrary multiplicity vectors to the
// decoder: it must return a clean error or a correct block, never panic,
// and accepted multisets must round-trip.
func FuzzDecodeNeverPanics(f *testing.F) {
	f.Add(3, 4, []byte{1, 1, 2})
	f.Add(2, 5, []byte{5, 0})
	f.Add(4, 6, []byte{0, 0, 0, 6})
	f.Add(2, 1, []byte{})
	f.Fuzz(func(t *testing.T, k, n int, raw []byte) {
		if k < 2 || k > 12 || n < 1 || n > 24 {
			t.Skip()
		}
		codec, err := NewCodec(k, n)
		if err != nil {
			t.Skip()
		}
		counts := make([]int, k)
		for i := 0; i < k && i < len(raw); i++ {
			counts[i] = int(raw[i] % 32)
		}
		m, err := FromCounts(counts)
		if err != nil {
			t.Skip()
		}
		block, err := codec.Decode(m)
		if err != nil {
			return // rejected: fine
		}
		if len(block) != codec.BlockBits() {
			t.Fatalf("accepted block has %d bits, want %d", len(block), codec.BlockBits())
		}
		back, err := codec.Encode(block)
		if err != nil {
			t.Fatalf("re-encode of accepted block failed: %v", err)
		}
		if !back.Equal(m) {
			t.Fatalf("decode/encode mismatch: %v vs %v", m, back)
		}
	})
}

// FuzzUnrankRank: any in-range rank round-trips; any out-of-range rank is
// rejected without panicking.
func FuzzUnrankRank(f *testing.F) {
	f.Add(3, 5, uint64(0))
	f.Add(3, 5, uint64(20))
	f.Add(8, 10, uint64(1<<40))
	f.Fuzz(func(t *testing.T, k, n int, r uint64) {
		if k < 2 || k > 10 || n < 1 || n > 20 {
			t.Skip()
		}
		codec, err := NewCodec(k, n)
		if err != nil {
			t.Skip()
		}
		rank := new(big.Int).SetUint64(r)
		m, err := codec.Unrank(rank)
		if err != nil {
			if rank.Cmp(codec.Mu()) < 0 {
				t.Fatalf("in-range rank %v rejected: %v", rank, err)
			}
			return
		}
		back, err := codec.Rank(m)
		if err != nil {
			t.Fatalf("rank of unranked multiset failed: %v", err)
		}
		if back.Cmp(rank) != 0 {
			t.Fatalf("rank round trip %v -> %v", rank, back)
		}
	})
}

// FuzzEncodeSeqShuffleDecode: any encodable block survives any
// permutation of its symbol sequence.
func FuzzEncodeSeqShuffleDecode(f *testing.F) {
	f.Add(uint64(0), uint(0))
	f.Add(uint64(12345), uint(7))
	f.Fuzz(func(t *testing.T, blockBits uint64, rot uint) {
		codec, err := NewCodec(5, 9) // L = 12
		if err != nil {
			t.Fatal(err)
		}
		block := make([]wire.Bit, codec.BlockBits())
		for i := range block {
			block[i] = wire.Bit((blockBits >> uint(i)) & 1)
		}
		seq, err := codec.EncodeSeq(block)
		if err != nil {
			t.Fatal(err)
		}
		// Rotate the sequence by rot positions — a permutation.
		r := int(rot) % len(seq)
		rotated := append(append([]wire.Symbol(nil), seq[r:]...), seq[:r]...)
		back, err := codec.DecodeSeq(rotated)
		if err != nil {
			t.Fatalf("decode of rotated codeword failed: %v", err)
		}
		if wire.BitsToString(back) != wire.BitsToString(block) {
			t.Fatalf("rotation changed decode: %s vs %s", wire.BitsToString(back), wire.BitsToString(block))
		}
	})
}
