package multiset

import (
	"fmt"
	"math"
	"math/big"
)

// Mu returns μ_k(n) = C(n+k-1, k-1), the number of multisets of size
// exactly n over a universe of k symbols. μ_k(0) = 1 (the empty multiset).
func Mu(k, n int) *big.Int {
	if k < 1 || n < 0 {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n+k-1), int64(k-1))
}

// Mu64 returns μ_k(n) as a uint64 when it fits, with ok reporting success.
// The value is computed exactly (a multiplicative scheme suffers spurious
// intermediate overflow), so ok is false only when μ_k(n) itself exceeds
// 64 bits.
func Mu64(k, n int) (v uint64, ok bool) {
	if k < 1 || n < 0 {
		return 0, false
	}
	mu := Mu(k, n)
	if !mu.IsUint64() {
		return 0, false
	}
	return mu.Uint64(), true
}

// Zeta returns ζ_k(n) = Σ_{j=1..n} μ_k(j), the number of non-empty
// multisets over k symbols with at most n elements (Section 3).
func Zeta(k, n int) *big.Int {
	total := new(big.Int)
	for j := 1; j <= n; j++ {
		total.Add(total, Mu(k, j))
	}
	return total
}

// Log2Big returns log2(x) for a positive big integer, accurate to roughly
// float64 precision.
func Log2Big(x *big.Int) float64 {
	if x.Sign() <= 0 {
		return math.Inf(-1)
	}
	bl := x.BitLen()
	if bl <= 53 {
		return math.Log2(float64(x.Uint64()))
	}
	shift := uint(bl - 53)
	top := new(big.Int).Rsh(x, shift)
	return math.Log2(float64(top.Uint64())) + float64(shift)
}

// Log2Mu returns log2(μ_k(n)).
func Log2Mu(k, n int) float64 { return Log2Big(Mu(k, n)) }

// Log2Zeta returns log2(ζ_k(n)).
func Log2Zeta(k, n int) float64 { return Log2Big(Zeta(k, n)) }

// BlockBits returns ⌊log2 μ_k(n)⌋ — the number of input bits that
// tomulti_k(n) packs into one multiset of n k-ary symbols, i.e. one
// transmission burst of the paper's A^β(k) and A^γ(k) protocols.
//
// It returns 0 when μ_k(n) < 2 (nothing can be encoded).
func BlockBits(k, n int) int {
	mu := Mu(k, n)
	if mu.Sign() <= 0 {
		return 0
	}
	return mu.BitLen() - 1
}

// ForEach enumerates every multiset of size n over k symbols, in the
// codec's rank order (ascending count of symbol 0, then recursively), and
// calls yield for each; enumeration stops early when yield returns false.
// The Multiset passed to yield is reused across calls — Clone it to keep
// it.
func ForEach(k, n int, yield func(Multiset) bool) error {
	if k < 1 {
		return fmt.Errorf("multiset: ForEach needs k >= 1, got %d", k)
	}
	if n < 0 {
		return fmt.Errorf("multiset: ForEach needs n >= 0, got %d", n)
	}
	counts := make([]int, k)
	var walk func(sym, rest int) bool
	walk = func(sym, rest int) bool {
		if sym == k-1 {
			counts[sym] = rest
			m, err := FromCounts(counts)
			if err != nil {
				return false
			}
			return yield(m)
		}
		for c := 0; c <= rest; c++ {
			counts[sym] = c
			if !walk(sym+1, rest-c) {
				return false
			}
		}
		counts[sym] = 0
		return true
	}
	walk(0, n)
	return nil
}

// Table precomputes μ_j(m) for all 1 <= j <= k and 0 <= m <= n, so that
// ranking and unranking run without repeated binomial evaluation. Tables
// are immutable after construction and safe for concurrent use.
type Table struct {
	k, n int
	mu   [][]*big.Int // mu[j][m] = μ_j(m), j in 1..k
	mu64 [][]uint64   // mu64[j][m] valid iff fits64[j][m]
	fits [][]bool
}

// NewTable builds the μ table for universes up to k and sizes up to n.
func NewTable(k, n int) (*Table, error) {
	if k < 1 {
		return nil, fmt.Errorf("multiset: table needs k >= 1, got %d", k)
	}
	if n < 0 {
		return nil, fmt.Errorf("multiset: table needs n >= 0, got %d", n)
	}
	t := &Table{
		k:    k,
		n:    n,
		mu:   make([][]*big.Int, k+1),
		mu64: make([][]uint64, k+1),
		fits: make([][]bool, k+1),
	}
	for j := 1; j <= k; j++ {
		t.mu[j] = make([]*big.Int, n+1)
		t.mu64[j] = make([]uint64, n+1)
		t.fits[j] = make([]bool, n+1)
		for m := 0; m <= n; m++ {
			if j == 1 {
				t.mu[j][m] = big.NewInt(1)
			} else if m == 0 {
				t.mu[j][m] = big.NewInt(1)
			} else {
				// Pascal-style recurrence: μ_j(m) = μ_{j-1}(m) + μ_j(m-1).
				t.mu[j][m] = new(big.Int).Add(t.mu[j-1][m], t.mu[j][m-1])
			}
			if t.mu[j][m].IsUint64() {
				t.mu64[j][m] = t.mu[j][m].Uint64()
				t.fits[j][m] = true
			}
		}
	}
	return t, nil
}

// K returns the largest universe size covered.
func (t *Table) K() int { return t.k }

// N returns the largest multiset size covered.
func (t *Table) N() int { return t.n }

// Mu returns μ_j(m) from the table. It panics if (j, m) is out of range;
// the table's bounds are fixed at construction and callers size them from
// protocol parameters.
func (t *Table) Mu(j, m int) *big.Int { return t.mu[j][m] }

// Mu64 returns μ_j(m) as a uint64 when it fits.
func (t *Table) Mu64(j, m int) (uint64, bool) { return t.mu64[j][m], t.fits[j][m] }

// AllFit64 reports whether every μ_j(m) with j <= kk and m <= nn fits in a
// uint64, enabling the codec's fast path.
func (t *Table) AllFit64(kk, nn int) bool {
	for j := 1; j <= kk; j++ {
		for m := 0; m <= nn; m++ {
			if !t.fits[j][m] {
				return false
			}
		}
	}
	return true
}
