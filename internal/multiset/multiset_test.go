package multiset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func TestNewIsEmpty(t *testing.T) {
	m := New(4)
	if m.Size() != 0 || m.K() != 4 {
		t.Fatalf("New(4): size=%d k=%d", m.Size(), m.K())
	}
	for s := 0; s < 4; s++ {
		if m.Mult(wire.Symbol(s)) != 0 {
			t.Errorf("Mult(%d) = %d on empty", s, m.Mult(wire.Symbol(s)))
		}
	}
}

func TestAddRemoveMult(t *testing.T) {
	m := New(3)
	for _, s := range []wire.Symbol{0, 2, 2, 1} {
		if err := m.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if m.Size() != 4 {
		t.Fatalf("size = %d, want 4", m.Size())
	}
	if m.Mult(2) != 2 || m.Mult(0) != 1 || m.Mult(1) != 1 {
		t.Fatalf("unexpected counts %v", m.Counts())
	}
	if err := m.Remove(2); err != nil {
		t.Fatal(err)
	}
	if m.Mult(2) != 1 || m.Size() != 3 {
		t.Fatalf("after remove: mult=%d size=%d", m.Mult(2), m.Size())
	}
	if err := m.Remove(2); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(2); err == nil {
		t.Error("removing absent symbol should fail")
	}
}

func TestAddOutOfRange(t *testing.T) {
	m := New(3)
	if err := m.Add(3); err == nil {
		t.Error("Add(3) over k=3 should fail")
	}
	if err := m.Add(-1); err == nil {
		t.Error("Add(-1) should fail")
	}
}

func TestFromSeqAndToSeq(t *testing.T) {
	seq := []wire.Symbol{2, 0, 2, 1, 0}
	m, err := FromSeq(3, seq)
	if err != nil {
		t.Fatal(err)
	}
	got := m.ToSeq()
	want := []wire.Symbol{0, 0, 1, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ToSeq = %v, want %v", got, want)
	}
}

func TestFromSeqError(t *testing.T) {
	if _, err := FromSeq(2, []wire.Symbol{0, 5}); err == nil {
		t.Error("FromSeq with out-of-range symbol should fail")
	}
}

func TestFromCounts(t *testing.T) {
	m, err := FromCounts([]int{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 4 || m.Mult(2) != 3 {
		t.Fatalf("FromCounts: size=%d mult2=%d", m.Size(), m.Mult(2))
	}
	if _, err := FromCounts([]int{1, -1}); err == nil {
		t.Error("negative count should fail")
	}
}

func TestEqualAndClone(t *testing.T) {
	a, _ := FromCounts([]int{1, 2, 0})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	if err := b.Add(2); err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("mutating clone changed original equality")
	}
	if a.Mult(2) != 0 {
		t.Fatal("clone aliases original storage")
	}
	c, _ := FromCounts([]int{1, 2}) // different universe
	if a.Equal(c) {
		t.Fatal("different universes must not compare equal")
	}
}

func TestSubmultisetOf(t *testing.T) {
	small, _ := FromCounts([]int{1, 1, 0})
	large, _ := FromCounts([]int{2, 1, 1})
	if !small.SubmultisetOf(large) {
		t.Error("small ⊑ large expected")
	}
	if large.SubmultisetOf(small) {
		t.Error("large ⊑ small unexpected")
	}
	empty := New(3)
	if !empty.SubmultisetOf(small) {
		t.Error("empty ⊑ anything expected")
	}
	otherK := New(2)
	if otherK.SubmultisetOf(small) {
		t.Error("different universes are incomparable")
	}
}

func TestClear(t *testing.T) {
	m, _ := FromCounts([]int{3, 1})
	m.Clear()
	if m.Size() != 0 || m.Mult(0) != 0 {
		t.Fatalf("Clear left size=%d", m.Size())
	}
}

func TestStringAndKey(t *testing.T) {
	m, _ := FromCounts([]int{2, 0, 1})
	if got := m.String(); got != "{0,0,2}" {
		t.Errorf("String = %q", got)
	}
	if got := m.Key(); got != "2,0,1" {
		t.Errorf("Key = %q", got)
	}
	if New(2).String() != "{}" {
		t.Errorf("empty String = %q", New(2).String())
	}
}

func TestCountsIsCopy(t *testing.T) {
	m, _ := FromCounts([]int{1, 1})
	c := m.Counts()
	c[0] = 99
	if m.Mult(0) != 1 {
		t.Fatal("Counts leaked internal storage")
	}
}

// Property: FromSeq(ToSeq(m)) = m.
func TestSeqRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		k := 1 + rng.Intn(8)
		n := rng.Intn(20)
		m := New(k)
		for i := 0; i < n; i++ {
			if err := m.Add(wire.Symbol(rng.Intn(k))); err != nil {
				return false
			}
		}
		back, err := FromSeq(k, m.ToSeq())
		if err != nil {
			return false
		}
		return back.Equal(m) && back.Key() == m.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Add then Remove restores the multiset.
func TestAddRemoveInverseQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		k := 2 + rng.Intn(6)
		m := New(k)
		for i := 0; i < 10; i++ {
			_ = m.Add(wire.Symbol(rng.Intn(k)))
		}
		before := m.Clone()
		s := wire.Symbol(rng.Intn(k))
		if err := m.Add(s); err != nil {
			return false
		}
		if err := m.Remove(s); err != nil {
			return false
		}
		return m.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortSymbols(t *testing.T) {
	seq := []wire.Symbol{3, 1, 2, 1}
	SortSymbols(seq)
	if !reflect.DeepEqual(seq, []wire.Symbol{1, 1, 2, 3}) {
		t.Errorf("SortSymbols = %v", seq)
	}
}
