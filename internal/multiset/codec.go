package multiset

import (
	"fmt"
	"math/big"

	"repro/internal/wire"
)

// Codec realises the paper's maps for fixed k and n:
//
//	tomulti_k(n): {0,1}^⌊log2 μ_k(n)⌋ → multisets of size n over k symbols
//	toseq_k(n):   multisets of size n → sequences (the multiset's ToSeq)
//
// via an explicit combinatorial ranking of multisets of size exactly n.
// Rank order: multisets are blocked by the multiplicity of symbol 0
// (ascending), then recursively by the remaining symbols; the rank of a
// multiset is its index in that order, in [0, μ_k(n)).
//
// Encode maps a block of ⌊log2 μ_k(n)⌋ bits (MSB first) to the multiset
// with that rank; Decode inverts it. Since 2^⌊log2 μ⌋ <= μ_k(n), every
// block has a multiset, and Decode rejects multisets whose rank falls
// outside the encodable range (which only happens on corrupted input).
//
// Codecs are immutable after construction and safe for concurrent use.
type Codec struct {
	k, n  int
	bits  int
	table *Table
	fast  bool     // all needed μ values fit uint64
	limit *big.Int // 2^bits
}

// NewCodec builds a codec for multisets of size n over k symbols. It
// requires k >= 2 and n >= 1 so that at least one bit can be encoded.
func NewCodec(k, n int) (*Codec, error) {
	if k < 2 {
		return nil, fmt.Errorf("multiset: codec needs k >= 2, got %d", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("multiset: codec needs n >= 1, got %d", n)
	}
	table, err := NewTable(k, n)
	if err != nil {
		return nil, err
	}
	bits := table.Mu(k, n).BitLen() - 1
	if bits < 1 {
		return nil, fmt.Errorf("multiset: μ_%d(%d) = %v encodes no bits", k, n, table.Mu(k, n))
	}
	return &Codec{
		k:     k,
		n:     n,
		bits:  bits,
		table: table,
		fast:  table.AllFit64(k, n),
		limit: new(big.Int).Lsh(big.NewInt(1), uint(bits)),
	}, nil
}

// K returns the universe size.
func (c *Codec) K() int { return c.k }

// N returns the multiset (burst) size.
func (c *Codec) N() int { return c.n }

// BlockBits returns ⌊log2 μ_k(n)⌋, the number of bits per block.
func (c *Codec) BlockBits() int { return c.bits }

// Mu returns μ_k(n) for this codec's parameters.
func (c *Codec) Mu() *big.Int { return new(big.Int).Set(c.table.Mu(c.k, c.n)) }

// Rank returns the index of m in the codec's multiset order. m must have
// universe k and size n.
func (c *Codec) Rank(m Multiset) (*big.Int, error) {
	if m.K() != c.k || m.Size() != c.n {
		return nil, fmt.Errorf("multiset: rank wants a multiset of size %d over %d symbols, got size %d over %d", c.n, c.k, m.Size(), m.K())
	}
	if c.fast {
		r, err := c.rank64(m)
		if err != nil {
			return nil, err
		}
		return new(big.Int).SetUint64(r), nil
	}
	rank := new(big.Int)
	rest := c.n
	for j := 0; j < c.k-1; j++ {
		left := c.k - j // universe size still in play
		cnt := m.Mult(wire.Symbol(j))
		for cc := 0; cc < cnt; cc++ {
			rank.Add(rank, c.table.Mu(left-1, rest-cc))
		}
		rest -= cnt
	}
	return rank, nil
}

// Unrank returns the multiset with the given rank in [0, μ_k(n)).
func (c *Codec) Unrank(rank *big.Int) (Multiset, error) {
	if rank.Sign() < 0 || rank.Cmp(c.table.Mu(c.k, c.n)) >= 0 {
		return Multiset{}, fmt.Errorf("multiset: rank %v outside [0, μ_%d(%d) = %v)", rank, c.k, c.n, c.table.Mu(c.k, c.n))
	}
	if c.fast {
		return c.unrank64(rank.Uint64())
	}
	r := new(big.Int).Set(rank)
	counts := make([]int, c.k)
	rest := c.n
	for j := 0; j < c.k-1; j++ {
		left := c.k - j
		cnt := 0
		for {
			w := c.table.Mu(left-1, rest-cnt)
			if r.Cmp(w) < 0 {
				break
			}
			r.Sub(r, w)
			cnt++
		}
		counts[j] = cnt
		rest -= cnt
	}
	counts[c.k-1] = rest
	return FromCounts(counts)
}

func (c *Codec) rank64(m Multiset) (uint64, error) {
	var rank uint64
	rest := c.n
	for j := 0; j < c.k-1; j++ {
		left := c.k - j
		cnt := m.Mult(wire.Symbol(j))
		for cc := 0; cc < cnt; cc++ {
			w, ok := c.table.Mu64(left-1, rest-cc)
			if !ok {
				return 0, fmt.Errorf("multiset: internal: fast path without 64-bit μ")
			}
			rank += w
		}
		rest -= cnt
	}
	return rank, nil
}

func (c *Codec) unrank64(rank uint64) (Multiset, error) {
	counts := make([]int, c.k)
	rest := c.n
	r := rank
	for j := 0; j < c.k-1; j++ {
		left := c.k - j
		cnt := 0
		for {
			w, ok := c.table.Mu64(left-1, rest-cnt)
			if !ok {
				return Multiset{}, fmt.Errorf("multiset: internal: fast path without 64-bit μ")
			}
			if r < w {
				break
			}
			r -= w
			cnt++
		}
		counts[j] = cnt
		rest -= cnt
	}
	counts[c.k-1] = rest
	return FromCounts(counts)
}

// Encode maps a block of exactly BlockBits bits (MSB first) to a multiset
// of size n — the paper's tomulti_k(n).
func (c *Codec) Encode(block []wire.Bit) (Multiset, error) {
	if len(block) != c.bits {
		return Multiset{}, fmt.Errorf("multiset: encode wants %d bits, got %d", c.bits, len(block))
	}
	rank := new(big.Int)
	for _, b := range block {
		if !b.Valid() {
			return Multiset{}, fmt.Errorf("multiset: encode: invalid bit %d", b)
		}
		rank.Lsh(rank, 1)
		if b == wire.One {
			rank.SetBit(rank, 0, 1)
		}
	}
	return c.Unrank(rank)
}

// EncodeSeq is Encode followed by the ascending linearisation toseq_k(n):
// it returns the n symbols the transmitter actually sends for the block.
func (c *Codec) EncodeSeq(block []wire.Bit) ([]wire.Symbol, error) {
	m, err := c.Encode(block)
	if err != nil {
		return nil, err
	}
	return m.ToSeq(), nil
}

// Decode inverts Encode: it returns the BlockBits-bit block whose rank is
// the multiset's rank. It rejects multisets of the wrong shape and
// multisets whose rank is >= 2^BlockBits (unencodable, so necessarily
// corrupted).
func (c *Codec) Decode(m Multiset) ([]wire.Bit, error) {
	rank, err := c.Rank(m)
	if err != nil {
		return nil, err
	}
	if rank.Cmp(c.limit) >= 0 {
		return nil, fmt.Errorf("multiset: decode: multiset %v has rank %v >= 2^%d (not a codeword)", m, rank, c.bits)
	}
	block := make([]wire.Bit, c.bits)
	for i := 0; i < c.bits; i++ {
		if rank.Bit(c.bits-1-i) == 1 {
			block[i] = wire.One
		}
	}
	return block, nil
}

// DecodeSeq builds the multiset of seq and decodes it; seq's order is
// irrelevant, which is the whole point of the construction.
func (c *Codec) DecodeSeq(seq []wire.Symbol) ([]wire.Bit, error) {
	m, err := FromSeq(c.k, seq)
	if err != nil {
		return nil, err
	}
	return c.Decode(m)
}
