package multiset

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestMuSmallValues(t *testing.T) {
	tests := []struct {
		k, n int
		want int64
	}{
		{k: 1, n: 0, want: 1},
		{k: 1, n: 5, want: 1},
		{k: 2, n: 0, want: 1},
		{k: 2, n: 1, want: 2},
		{k: 2, n: 5, want: 6},     // δ1 + 1 for k = 2
		{k: 3, n: 2, want: 6},     // {00,01,02,11,12,22}
		{k: 3, n: 3, want: 10},    // C(5,2)
		{k: 4, n: 4, want: 35},    // C(7,3)
		{k: 5, n: 10, want: 1001}, // C(14,4)
		{k: 10, n: 1, want: 10},
		{k: 64, n: 1, want: 64},
	}
	for _, tt := range tests {
		if got := Mu(tt.k, tt.n); got.Int64() != tt.want {
			t.Errorf("Mu(%d,%d) = %v, want %d", tt.k, tt.n, got, tt.want)
		}
		got64, ok := Mu64(tt.k, tt.n)
		if !ok || got64 != uint64(tt.want) {
			t.Errorf("Mu64(%d,%d) = %d,%v, want %d", tt.k, tt.n, got64, ok, tt.want)
		}
	}
}

func TestMuInvalidArgs(t *testing.T) {
	if got := Mu(0, 3); got.Sign() != 0 {
		t.Errorf("Mu(0,3) = %v, want 0", got)
	}
	if got := Mu(2, -1); got.Sign() != 0 {
		t.Errorf("Mu(2,-1) = %v, want 0", got)
	}
	if _, ok := Mu64(0, 3); ok {
		t.Error("Mu64(0,3) should fail")
	}
}

// TestMuMatchesEnumeration cross-checks μ against brute-force enumeration
// of multisets for small k, n.
func TestMuMatchesEnumeration(t *testing.T) {
	for k := 1; k <= 5; k++ {
		for n := 0; n <= 7; n++ {
			count := int64(len(enumerate(k, n)))
			if got := Mu(k, n).Int64(); got != count {
				t.Errorf("Mu(%d,%d) = %d, enumeration says %d", k, n, got, count)
			}
		}
	}
}

// enumerate returns every multiplicity vector of size n over k symbols.
func enumerate(k, n int) [][]int {
	if k == 1 {
		return [][]int{{n}}
	}
	var out [][]int
	for c := 0; c <= n; c++ {
		for _, rest := range enumerate(k-1, n-c) {
			row := append([]int{c}, rest...)
			out = append(out, row)
		}
	}
	return out
}

func TestZeta(t *testing.T) {
	tests := []struct {
		k, n int
		want int64
	}{
		{k: 2, n: 1, want: 2},
		{k: 2, n: 3, want: 2 + 3 + 4},
		{k: 3, n: 2, want: 3 + 6},
		{k: 2, n: 0, want: 0}, // empty sum
	}
	for _, tt := range tests {
		if got := Zeta(tt.k, tt.n); got.Int64() != tt.want {
			t.Errorf("Zeta(%d,%d) = %v, want %d", tt.k, tt.n, got, tt.want)
		}
	}
}

// TestZetaBoundedByNMu checks the paper's remark ζ_k(n) <= n·μ_k(n).
func TestZetaBoundedByNMu(t *testing.T) {
	for k := 2; k <= 8; k++ {
		for n := 1; n <= 12; n++ {
			zeta := Zeta(k, n)
			bound := new(big.Int).Mul(big.NewInt(int64(n)), Mu(k, n))
			if zeta.Cmp(bound) > 0 {
				t.Errorf("ζ_%d(%d) = %v > n·μ = %v", k, n, zeta, bound)
			}
			if zeta.Cmp(Mu(k, n)) < 0 {
				t.Errorf("ζ_%d(%d) = %v < μ_%d(%d) = %v", k, n, zeta, k, n, Mu(k, n))
			}
		}
	}
}

func TestLog2Big(t *testing.T) {
	tests := []struct {
		x    int64
		want float64
	}{
		{x: 1, want: 0},
		{x: 2, want: 1},
		{x: 1024, want: 10},
		{x: 3, want: math.Log2(3)},
	}
	for _, tt := range tests {
		if got := Log2Big(big.NewInt(tt.x)); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Log2Big(%d) = %g, want %g", tt.x, got, tt.want)
		}
	}
	// Large value: log2(2^100) = 100 exactly.
	big100 := new(big.Int).Lsh(big.NewInt(1), 100)
	if got := Log2Big(big100); math.Abs(got-100) > 1e-9 {
		t.Errorf("Log2Big(2^100) = %g, want 100", got)
	}
	if got := Log2Big(big.NewInt(0)); !math.IsInf(got, -1) {
		t.Errorf("Log2Big(0) = %g, want -Inf", got)
	}
}

// TestLog2BigLargeAccuracy compares against big.Float-based computation on
// random widths.
func TestLog2BigLargeAccuracy(t *testing.T) {
	f := func(shift uint8, add uint32) bool {
		x := new(big.Int).Lsh(big.NewInt(int64(add)+1), uint(shift))
		got := Log2Big(x)
		// Reference via big.Float.
		ref, _ := new(big.Float).SetInt(x).Float64()
		want := math.Log2(ref)
		if math.IsInf(ref, 1) {
			return true // outside float64 range; skip
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockBits(t *testing.T) {
	tests := []struct {
		k, n, want int
	}{
		{k: 2, n: 1, want: 1},    // μ = 2
		{k: 2, n: 5, want: 2},    // μ = 6
		{k: 3, n: 3, want: 3},    // μ = 10
		{k: 4, n: 4, want: 5},    // μ = 35
		{k: 5, n: 10, want: 9},   // μ = 1001
		{k: 1, n: 5, want: 0},    // μ = 1: nothing encodable
		{k: 16, n: 10, want: 21}, // μ_16(10) = C(25,15) = 3268760, log2 ≈ 21.6
	}
	for _, tt := range tests {
		if got := BlockBits(tt.k, tt.n); got != tt.want {
			t.Errorf("BlockBits(%d,%d) = %d, want %d (μ = %v)", tt.k, tt.n, got, tt.want, Mu(tt.k, tt.n))
		}
	}
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable(0, 3); err == nil {
		t.Error("NewTable(0,3) should fail")
	}
	if _, err := NewTable(2, -1); err == nil {
		t.Error("NewTable(2,-1) should fail")
	}
}

func TestTableMatchesMu(t *testing.T) {
	tab, err := NewTable(8, 20)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 8; j++ {
		for m := 0; m <= 20; m++ {
			if tab.Mu(j, m).Cmp(Mu(j, m)) != 0 {
				t.Errorf("table Mu(%d,%d) = %v, direct = %v", j, m, tab.Mu(j, m), Mu(j, m))
			}
			v64, ok := tab.Mu64(j, m)
			if !ok {
				t.Errorf("Mu64(%d,%d) should fit", j, m)
				continue
			}
			if v64 != Mu(j, m).Uint64() {
				t.Errorf("table Mu64(%d,%d) = %d, want %v", j, m, v64, Mu(j, m))
			}
		}
	}
	if !tab.AllFit64(8, 20) {
		t.Error("AllFit64(8,20) should hold")
	}
}

// TestTableHugeValues checks big.Int handling beyond uint64.
func TestTableHugeValues(t *testing.T) {
	tab, err := NewTable(64, 80)
	if err != nil {
		t.Fatal(err)
	}
	// μ_64(80) = C(143, 63) overflows uint64 by a wide margin.
	if tab.AllFit64(64, 80) {
		t.Error("μ_64(80) should not fit in uint64")
	}
	if tab.Mu(64, 80).Cmp(Mu(64, 80)) != 0 {
		t.Error("table disagrees with direct binomial for μ_64(80)")
	}
	if _, ok := Mu64(64, 80); ok {
		t.Error("Mu64(64,80) should report overflow")
	}
}

// TestMu64AgreesWithBig property: whenever Mu64 succeeds it equals Mu.
func TestMu64AgreesWithBig(t *testing.T) {
	f := func(k8, n8 uint8) bool {
		k := int(k8%32) + 1
		n := int(n8 % 64)
		v, ok := Mu64(k, n)
		mu := Mu(k, n)
		if !ok {
			return !mu.IsUint64()
		}
		return mu.IsUint64() && mu.Uint64() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestForEachMatchesRankOrder: the enumeration visits exactly μ_k(n)
// multisets, in codec rank order.
func TestForEachMatchesRankOrder(t *testing.T) {
	for k := 2; k <= 4; k++ {
		for n := 1; n <= 5; n++ {
			codec, err := NewCodec(k, n)
			if err != nil {
				t.Fatal(err)
			}
			var visited int64
			if err := ForEach(k, n, func(m Multiset) bool {
				r, err := codec.Rank(m)
				if err != nil {
					t.Fatalf("rank during enumeration: %v", err)
				}
				if r.Int64() != visited {
					t.Fatalf("k=%d n=%d: visit %d has rank %v", k, n, visited, r)
				}
				visited++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if visited != Mu(k, n).Int64() {
				t.Fatalf("k=%d n=%d: visited %d, want μ = %v", k, n, visited, Mu(k, n))
			}
		}
	}
}

func TestForEachEarlyStopAndErrors(t *testing.T) {
	count := 0
	if err := ForEach(3, 3, func(Multiset) bool {
		count++
		return count < 4
	}); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Errorf("early stop after %d visits, want 4", count)
	}
	if err := ForEach(0, 3, func(Multiset) bool { return true }); err == nil {
		t.Error("k = 0 should fail")
	}
	if err := ForEach(2, -1, func(Multiset) bool { return true }); err == nil {
		t.Error("n < 0 should fail")
	}
}

func BenchmarkMuBig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Mu(16, 64)
	}
}

func BenchmarkMu64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, ok := Mu64(8, 20); !ok {
			b.Fatal("overflow")
		}
	}
}
