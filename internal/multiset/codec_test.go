package multiset

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func mustCodec(t *testing.T, k, n int) *Codec {
	t.Helper()
	c, err := NewCodec(k, n)
	if err != nil {
		t.Fatalf("NewCodec(%d,%d): %v", k, n, err)
	}
	return c
}

func TestNewCodecErrors(t *testing.T) {
	tests := []struct {
		name string
		k, n int
	}{
		{name: "k too small", k: 1, n: 5},
		{name: "n zero", k: 4, n: 0},
		{name: "n negative", k: 4, n: -2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewCodec(tt.k, tt.n); err == nil {
				t.Errorf("NewCodec(%d,%d) should fail", tt.k, tt.n)
			}
		})
	}
}

// TestRankIsBijection enumerates every multiset for small (k, n) and checks
// that Rank is a bijection onto [0, μ_k(n)) with Unrank as its inverse.
func TestRankIsBijection(t *testing.T) {
	for k := 2; k <= 5; k++ {
		for n := 1; n <= 6; n++ {
			c := mustCodec(t, k, n)
			mu := int(Mu(k, n).Int64())
			seen := make(map[int64]bool, mu)
			for _, counts := range enumerate(k, n) {
				m, err := FromCounts(counts)
				if err != nil {
					t.Fatal(err)
				}
				r, err := c.Rank(m)
				if err != nil {
					t.Fatalf("Rank(%v): %v", m, err)
				}
				ri := r.Int64()
				if ri < 0 || ri >= int64(mu) {
					t.Fatalf("Rank(%v) = %d outside [0,%d)", m, ri, mu)
				}
				if seen[ri] {
					t.Fatalf("Rank collision at %d (k=%d n=%d)", ri, k, n)
				}
				seen[ri] = true
				back, err := c.Unrank(r)
				if err != nil {
					t.Fatalf("Unrank(%d): %v", ri, err)
				}
				if !back.Equal(m) {
					t.Fatalf("Unrank(Rank(%v)) = %v", m, back)
				}
			}
			if len(seen) != mu {
				t.Fatalf("k=%d n=%d: %d distinct ranks, want %d", k, n, len(seen), mu)
			}
		}
	}
}

// TestRankUnrankQuick property-checks rank∘unrank = id at a size where the
// uint64 fast path is active, and at one where only big.Int works.
func TestRankUnrankQuick(t *testing.T) {
	cases := []struct {
		name string
		k, n int
	}{
		{name: "fast-path", k: 6, n: 12},
		{name: "big-path", k: 48, n: 96}, // μ_48(96) ≫ 2^64
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mustCodec(t, tc.k, tc.n)
			if tc.name == "big-path" && c.fast {
				t.Fatalf("expected big path for k=%d n=%d", tc.k, tc.n)
			}
			mu := c.Mu()
			rng := rand.New(rand.NewSource(7))
			f := func() bool {
				r := new(big.Int).Rand(rng, mu)
				m, err := c.Unrank(r)
				if err != nil {
					return false
				}
				if m.Size() != tc.n || m.K() != tc.k {
					return false
				}
				back, err := c.Rank(m)
				if err != nil {
					return false
				}
				return back.Cmp(r) == 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestUnrankRange(t *testing.T) {
	c := mustCodec(t, 3, 4)
	if _, err := c.Unrank(big.NewInt(-1)); err == nil {
		t.Error("Unrank(-1) should fail")
	}
	if _, err := c.Unrank(c.Mu()); err == nil {
		t.Error("Unrank(μ) should fail")
	}
	last := new(big.Int).Sub(c.Mu(), big.NewInt(1))
	if _, err := c.Unrank(last); err != nil {
		t.Errorf("Unrank(μ-1): %v", err)
	}
}

func TestRankShapeErrors(t *testing.T) {
	c := mustCodec(t, 3, 4)
	wrongSize, _ := FromCounts([]int{1, 1, 1}) // size 3, want 4
	if _, err := c.Rank(wrongSize); err == nil {
		t.Error("Rank on wrong-size multiset should fail")
	}
	wrongK, _ := FromCounts([]int{2, 2}) // k = 2, want 3
	if _, err := c.Rank(wrongK); err == nil {
		t.Error("Rank on wrong-universe multiset should fail")
	}
}

// TestEncodeDecodeRoundTrip checks decode(encode(b)) = b for every block at
// small sizes and randomly at large sizes.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := mustCodec(t, 3, 4) // μ = 15, L = 3
	if c.BlockBits() != 3 {
		t.Fatalf("BlockBits = %d, want 3", c.BlockBits())
	}
	for v := 0; v < 1<<3; v++ {
		block := make([]wire.Bit, 3)
		for i := range block {
			block[i] = wire.Bit((v >> (2 - i)) & 1)
		}
		m, err := c.Encode(block)
		if err != nil {
			t.Fatalf("Encode(%v): %v", block, err)
		}
		if m.Size() != 4 {
			t.Fatalf("Encode produced size %d", m.Size())
		}
		back, err := c.Decode(m)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if wire.BitsToString(back) != wire.BitsToString(block) {
			t.Fatalf("round trip %v -> %v -> %v", block, m, back)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	c := mustCodec(t, 8, 16)
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		block := wire.RandomBits(c.BlockBits(), rng.Uint64)
		seq, err := c.EncodeSeq(block)
		if err != nil {
			return false
		}
		if len(seq) != 16 {
			return false
		}
		// Shuffle the sequence: decoding must be order-independent.
		rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
		back, err := c.DecodeSeq(seq)
		if err != nil {
			return false
		}
		return wire.BitsToString(back) == wire.BitsToString(block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEncodeErrors(t *testing.T) {
	c := mustCodec(t, 3, 4)
	if _, err := c.Encode(make([]wire.Bit, 2)); err == nil {
		t.Error("Encode with short block should fail")
	}
	if _, err := c.Encode([]wire.Bit{0, 1, 9}); err == nil {
		t.Error("Encode with invalid bit should fail")
	}
}

func TestDecodeRejectsNonCodewords(t *testing.T) {
	// k = 3, n = 4: μ = 15, L = 3, so ranks 8..14 are not codewords.
	c := mustCodec(t, 3, 4)
	nonCode, err := c.Unrank(big.NewInt(14))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(nonCode); err == nil {
		t.Error("Decode of rank-14 multiset should fail (not a codeword)")
	}
	// Wrong size is rejected too.
	small, _ := FromCounts([]int{1, 1, 1})
	if _, err := c.Decode(small); err == nil {
		t.Error("Decode of wrong-size multiset should fail")
	}
}

func TestDecodeSeqRejectsForeignSymbols(t *testing.T) {
	c := mustCodec(t, 3, 4)
	if _, err := c.DecodeSeq([]wire.Symbol{0, 1, 2, 5}); err == nil {
		t.Error("DecodeSeq with symbol 5 over k=3 should fail")
	}
}

// TestFastAndBigPathsAgree drives both rank implementations over the same
// multisets and compares.
func TestFastAndBigPathsAgree(t *testing.T) {
	k, n := 5, 9
	fast := mustCodec(t, k, n)
	if !fast.fast {
		t.Fatal("expected fast path")
	}
	slow := mustCodec(t, k, n)
	slow.fast = false // force big.Int path
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		r := new(big.Int).Rand(rng, fast.Mu())
		m1, err := fast.Unrank(r)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := slow.Unrank(r)
		if err != nil {
			t.Fatal(err)
		}
		if !m1.Equal(m2) {
			t.Fatalf("rank %v: fast %v != big %v", r, m1, m2)
		}
		r1, _ := fast.Rank(m1)
		r2, _ := slow.Rank(m2)
		if r1.Cmp(r2) != 0 || r1.Cmp(r) != 0 {
			t.Fatalf("rank mismatch: %v vs %v vs %v", r1, r2, r)
		}
	}
}

// TestRankOrderIsByFirstCount documents the codec's order: ascending count
// of symbol 0 first.
func TestRankOrderIsByFirstCount(t *testing.T) {
	c := mustCodec(t, 2, 3)
	// Order over k=2, n=3 (count0 ascending): {1,1,1},{0,1,1},{0,0,1},{0,0,0}.
	wantOrder := [][]int{{0, 3}, {1, 2}, {2, 1}, {3, 0}}
	for i, counts := range wantOrder {
		m, _ := FromCounts(counts)
		r, err := c.Rank(m)
		if err != nil {
			t.Fatal(err)
		}
		if r.Int64() != int64(i) {
			t.Errorf("Rank(%v) = %v, want %d", m, r, i)
		}
	}
}

func BenchmarkEncodeFast(b *testing.B) {
	c, err := NewCodec(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	block := wire.RandomBits(c.BlockBits(), rng.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(block); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFast(b *testing.B) {
	c, err := NewCodec(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	block := wire.RandomBits(c.BlockBits(), rng.Uint64)
	m, err := c.Encode(block)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeBig(b *testing.B) {
	c, err := NewCodec(48, 96)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	block := wire.RandomBits(c.BlockBits(), rng.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(block); err != nil {
			b.Fatal(err)
		}
	}
}
