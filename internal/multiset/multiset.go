// Package multiset implements Section 3 of the paper: multisets over the
// universe {0, ..., k-1}, the counting functions μ_k(n) (multisets of size
// exactly n) and ζ_k(n) (multisets of size 1..n), linearisations
// toseq_k(n), and an explicit bijection tomulti_k(n) between binary blocks
// of ⌊log2 μ_k(n)⌋ bits and multisets of size n.
//
// The bijection is what makes the paper's protocols immune to in-burst
// packet reordering: a burst of n k-ary packets is decoded from the
// *multiset* of received symbols, so arrival order is irrelevant.
package multiset

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/wire"
)

// Multiset is a multiset over the universe {0, ..., k-1}, represented by
// its multiplicity vector.
type Multiset struct {
	counts []int
	size   int
}

// New returns the empty multiset over a universe of k symbols.
func New(k int) Multiset {
	return Multiset{counts: make([]int, k)}
}

// FromSeq returns the multiset of the symbols in seq over a universe of k
// symbols. It returns an error if any symbol is outside {0, ..., k-1}.
func FromSeq(k int, seq []wire.Symbol) (Multiset, error) {
	m := New(k)
	for _, s := range seq {
		if err := m.Add(s); err != nil {
			return Multiset{}, err
		}
	}
	return m, nil
}

// FromCounts returns the multiset with the given multiplicity vector
// (copied). The universe size is len(counts).
func FromCounts(counts []int) (Multiset, error) {
	m := Multiset{counts: make([]int, len(counts))}
	for i, c := range counts {
		if c < 0 {
			return Multiset{}, fmt.Errorf("multiset: negative multiplicity %d for symbol %d", c, i)
		}
		m.counts[i] = c
		m.size += c
	}
	return m, nil
}

// K returns the universe size.
func (m Multiset) K() int { return len(m.counts) }

// Size returns the number of elements, counted with multiplicity.
func (m Multiset) Size() int { return m.size }

// Mult returns the multiplicity of symbol s — the paper's mult(u, Q).
func (m Multiset) Mult(s wire.Symbol) int {
	if int(s) < 0 || int(s) >= len(m.counts) {
		return 0
	}
	return m.counts[s]
}

// Add inserts one occurrence of s — the paper's Q ∪ {u}.
func (m *Multiset) Add(s wire.Symbol) error {
	if int(s) < 0 || int(s) >= len(m.counts) {
		return fmt.Errorf("multiset: symbol %d outside universe of size %d", int(s), len(m.counts))
	}
	m.counts[s]++
	m.size++
	return nil
}

// Remove deletes one occurrence of s; it is an error if s is absent.
func (m *Multiset) Remove(s wire.Symbol) error {
	if m.Mult(s) == 0 {
		return fmt.Errorf("multiset: symbol %d not present", int(s))
	}
	m.counts[s]--
	m.size--
	return nil
}

// Clear empties the multiset in place.
func (m *Multiset) Clear() {
	for i := range m.counts {
		m.counts[i] = 0
	}
	m.size = 0
}

// Clone returns an independent copy.
func (m Multiset) Clone() Multiset {
	c := Multiset{counts: make([]int, len(m.counts)), size: m.size}
	copy(c.counts, m.counts)
	return c
}

// Counts returns a copy of the multiplicity vector.
func (m Multiset) Counts() []int {
	out := make([]int, len(m.counts))
	copy(out, m.counts)
	return out
}

// Equal reports whether m and other have the same universe and the same
// multiplicities.
func (m Multiset) Equal(other Multiset) bool {
	if len(m.counts) != len(other.counts) || m.size != other.size {
		return false
	}
	for i := range m.counts {
		if m.counts[i] != other.counts[i] {
			return false
		}
	}
	return true
}

// SubmultisetOf reports whether m ⊑ other: every multiplicity of m is at
// most the corresponding multiplicity of other. Universes must match.
func (m Multiset) SubmultisetOf(other Multiset) bool {
	if len(m.counts) != len(other.counts) {
		return false
	}
	for i := range m.counts {
		if m.counts[i] > other.counts[i] {
			return false
		}
	}
	return true
}

// ToSeq returns the ascending linearisation of m — one realisation of the
// paper's toseq_k(n) map: a sequence containing mult(j, m) occurrences of
// each symbol j.
func (m Multiset) ToSeq() []wire.Symbol {
	out := make([]wire.Symbol, 0, m.size)
	for s, c := range m.counts {
		for i := 0; i < c; i++ {
			out = append(out, wire.Symbol(s))
		}
	}
	return out
}

// String renders the multiset as a sorted bag, e.g. "{0,0,3}".
func (m Multiset) String() string {
	seq := m.ToSeq()
	parts := make([]string, len(seq))
	for i, s := range seq {
		parts[i] = fmt.Sprintf("%d", int(s))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Key returns a canonical comparable key for use as a map key, so that
// profile machinery (Section 5) can compare multiset sequences cheaply.
func (m Multiset) Key() string {
	var b strings.Builder
	for i, c := range m.counts {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// SortSymbols sorts a symbol slice ascending in place; convenience for
// tests comparing linearisations.
func SortSymbols(seq []wire.Symbol) {
	sort.Slice(seq, func(i, j int) bool { return seq[i] < seq[j] })
}
