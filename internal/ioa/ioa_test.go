package ioa

import (
	"errors"
	"fmt"
	"testing"
)

// Toy actions for framework tests.
type emit struct{ N int }

func (emit) Kind() string     { return "emit" }
func (e emit) String() string { return fmt.Sprintf("emit(%d)", e.N) }

type tock struct{}

func (tock) Kind() string   { return "tock" }
func (tock) String() string { return "tock" }

// foreign is an action outside every test automaton's signature.
type foreign struct{}

func (foreign) Kind() string   { return "foreign" }
func (foreign) String() string { return "foreign" }

// newCounter returns a machine that outputs emit(0), emit(1), ..., then a
// final internal tock, then goes quiescent.
func newCounter(t *testing.T, name string, limit int) *Machine {
	t.Helper()
	n := 0
	done := false
	m, err := NewMachine(name,
		func(a Action) Class {
			switch a.(type) {
			case emit:
				return ClassOutput
			case tock:
				return ClassInternal
			default:
				return ClassNone
			}
		},
		nil,
		[]Command{
			{
				Name:  "emit",
				Class: ClassOutput,
				Pre:   func() bool { return n < limit },
				Act:   func() Action { return emit{N: n} },
				Eff:   func() { n++ },
			},
			{
				Name:  "tock",
				Class: ClassInternal,
				Pre:   func() bool { return n == limit && !done },
				Act:   func() Action { return tock{} },
				Eff:   func() { done = true },
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newSink returns a machine that consumes emit inputs and counts them.
func newSink(t *testing.T, name string, got *[]int) *Machine {
	t.Helper()
	m, err := NewMachine(name,
		func(a Action) Class {
			if _, ok := a.(emit); ok {
				return ClassInput
			}
			return ClassNone
		},
		func(a Action) error {
			e, ok := a.(emit)
			if !ok {
				return ErrNotInSignature
			}
			*got = append(*got, e.N)
			return nil
		},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineDeterministicSequence(t *testing.T) {
	m := newCounter(t, "c", 3)
	var fired []string
	for {
		act, ok := m.NextLocal()
		if !ok {
			break
		}
		if err := m.Apply(act); err != nil {
			t.Fatal(err)
		}
		fired = append(fired, act.String())
	}
	want := []string{"emit(0)", "emit(1)", "emit(2)", "tock"}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if _, ok := m.NextLocal(); ok {
		t.Error("machine should be quiescent")
	}
}

func TestMachineApplyErrors(t *testing.T) {
	m := newCounter(t, "c", 1)
	// A local action that is not the enabled one.
	if err := m.Apply(emit{N: 7}); !errors.Is(err, ErrNotEnabled) {
		t.Errorf("Apply(emit(7)) = %v, want ErrNotEnabled", err)
	}
	// An action outside the signature.
	if err := m.Apply(foreign{}); !errors.Is(err, ErrNotInSignature) {
		t.Errorf("Apply(foreign) = %v, want ErrNotInSignature", err)
	}
	// Internal action before its precondition holds.
	if err := m.Apply(tock{}); !errors.Is(err, ErrNotEnabled) {
		t.Errorf("Apply(tock) early = %v, want ErrNotEnabled", err)
	}
}

func TestMachineInputWithoutHandler(t *testing.T) {
	n := 0
	m, err := NewMachine("m",
		func(a Action) Class {
			if _, ok := a.(emit); ok {
				return ClassInput
			}
			return ClassNone
		},
		nil,
		[]Command{{
			Name:  "noop",
			Class: ClassInternal,
			Pre:   func() bool { return n == 0 },
			Act:   func() Action { return tock{} },
			Eff:   func() { n++ },
		}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(emit{N: 1}); err == nil {
		t.Error("input without handler should fail loudly")
	}
}

func TestNewMachineValidation(t *testing.T) {
	classify := func(Action) Class { return ClassNone }
	if _, err := NewMachine("", classify, nil, nil); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewMachine("m", nil, nil, nil); err == nil {
		t.Error("nil classifier should fail")
	}
	bad := []Command{{Name: "x", Class: ClassInput, Pre: func() bool { return true }, Act: func() Action { return tock{} }, Eff: func() {}}}
	if _, err := NewMachine("m", classify, nil, bad); err == nil {
		t.Error("input-class command should fail")
	}
	missing := []Command{{Name: "x", Class: ClassInternal}}
	if _, err := NewMachine("m", classify, nil, missing); err == nil {
		t.Error("command without Pre/Act/Eff should fail")
	}
}

func TestClassHelpers(t *testing.T) {
	if !ClassOutput.Local() || !ClassInternal.Local() {
		t.Error("output/internal are local")
	}
	if ClassInput.Local() || ClassNone.Local() {
		t.Error("input/none are not local")
	}
	for c, want := range map[Class]string{
		ClassNone: "none", ClassInput: "input", ClassOutput: "output", ClassInternal: "internal", Class(9): "class(9)",
	} {
		if c.String() != want {
			t.Errorf("Class %d = %q, want %q", int(c), c.String(), want)
		}
	}
}

func TestComposeRoutesOutputsToInputs(t *testing.T) {
	var got []int
	counter := newCounter(t, "c", 3)
	sink := newSink(t, "s", &got)
	comp, err := Compose("sys", counter, sink)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(comp, &RoundRobin{})
	quiescent, err := ex.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if !quiescent {
		t.Error("system should go quiescent")
	}
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("sink got %v", got)
	}
	// Trace: behaviors relative to the counter exclude the internal tock.
	beh := ex.Trace().Behavior(counter)
	if len(beh) != 3 {
		t.Errorf("behavior length %d, want 3 (internal excluded)", len(beh))
	}
	if ex.Trace().KindCount("emit") != 3 || ex.Trace().KindCount("tock") != 1 {
		t.Errorf("kind counts wrong: %v", ex.Trace().Events)
	}
}

func TestComposeDuplicateNames(t *testing.T) {
	a := newCounter(t, "x", 1)
	b := newCounter(t, "x", 1)
	if _, err := Compose("sys", a, b); err == nil {
		t.Error("duplicate component names should fail")
	}
	if _, err := Compose("sys"); err == nil {
		t.Error("empty composition should fail")
	}
}

func TestComposeDetectsSharedOutputs(t *testing.T) {
	a := newCounter(t, "a", 1)
	b := newCounter(t, "b", 1)
	comp, err := Compose("sys", a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Both claim emit(0) as output: not composable, detected at Apply.
	if err := comp.Apply(emit{N: 0}); err == nil {
		t.Error("shared output should be rejected")
	}
}

func TestCompositionClassifyAndOwner(t *testing.T) {
	var got []int
	counter := newCounter(t, "c", 1)
	sink := newSink(t, "s", &got)
	comp, err := Compose("sys", counter, sink)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Classify(emit{N: 0}) != ClassOutput {
		t.Error("emit should be an output of the composition")
	}
	if comp.Classify(tock{}) != ClassInternal {
		t.Error("tock should be internal")
	}
	if comp.Classify(foreign{}) != ClassNone {
		t.Error("unknown action should be none")
	}
	if i, name := comp.Owner(emit{N: 0}); i != 0 || name != "c" {
		t.Errorf("owner = %d %q", i, name)
	}
	if i, _ := comp.Owner(foreign{}); i != -1 {
		t.Error("unknown action should have no owner")
	}
	if _, ok := comp.Component("s"); !ok {
		t.Error("component s should exist")
	}
	if _, ok := comp.Component("nope"); ok {
		t.Error("component nope should not exist")
	}
	if len(comp.Components()) != 2 {
		t.Error("two components expected")
	}
}

func TestExecutorInject(t *testing.T) {
	var got []int
	sink := newSink(t, "s", &got)
	comp, err := Compose("sys", sink)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(comp, &RoundRobin{})
	if err := ex.Inject(emit{N: 42}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("sink got %v", got)
	}
	// Injecting a non-input is rejected.
	if err := ex.Inject(tock{}); err == nil {
		t.Error("injecting a non-input should fail")
	}
	// Trace attributes injected events to the environment.
	if ex.Trace().Events[0].Actor != "env" {
		t.Errorf("actor = %q, want env", ex.Trace().Events[0].Actor)
	}
}

func TestRoundRobinIsFair(t *testing.T) {
	// Two infinite counters; round-robin must interleave them.
	mk := func(name string) *Machine {
		n := 0
		m, err := NewMachine(name,
			func(a Action) Class {
				if _, ok := a.(emit); ok {
					return ClassInternal // private: both can fire emit-like acts
				}
				return ClassNone
			},
			nil,
			[]Command{{
				Name:  "spin",
				Class: ClassInternal,
				Pre:   func() bool { return true },
				Act:   func() Action { return emit{N: n} },
				Eff:   func() { n++ },
			}})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := mk("a"), mk("b")
	// Internal actions shared across signatures are non-composable; use
	// candidates directly instead of Compose to test the scheduler alone.
	rr := &RoundRobin{}
	counts := map[int]int{}
	cands := []Candidate{{Comp: 0, Actor: "a"}, {Comp: 1, Actor: "b"}}
	for i := 0; i < 100; i++ {
		counts[cands[rr.Pick(cands)].Comp]++
	}
	if counts[0] != 50 || counts[1] != 50 {
		t.Errorf("round robin counts %v, want 50/50", counts)
	}
	_ = a
	_ = b
}

func TestFirstEnabledAndRandomized(t *testing.T) {
	cands := []Candidate{{Comp: 0}, {Comp: 1}, {Comp: 2}}
	if (FirstEnabled{}).Pick(cands) != 0 {
		t.Error("FirstEnabled should pick 0")
	}
	r := Randomized{Intn: func(n int) int { return n - 1 }}
	if r.Pick(cands) != 2 {
		t.Error("Randomized should delegate to Intn")
	}
	if (FirstEnabled{}).Name() == "" || r.Name() == "" || (&RoundRobin{}).Name() == "" {
		t.Error("schedulers need names")
	}
}

func TestExecutionRestrict(t *testing.T) {
	var e Execution
	e.Append("a", emit{N: 1})
	e.Append("a", tock{})
	e.Append("a", emit{N: 2})
	only := e.Restrict(func(a Action) bool { return a.Kind() == "emit" })
	if len(only) != 2 {
		t.Errorf("restrict: %v", only)
	}
	if e.Len() != 3 {
		t.Errorf("len = %d", e.Len())
	}
	if e.Events[1].String() == "" {
		t.Error("event String should render")
	}
}
