package ioa

import (
	"fmt"
)

// Command is one guarded command of a Machine: a named precondition /
// effect pair producing a single local action. The paper presents every
// automaton in exactly this precondition/effect style (Figures 1, 3, 4).
type Command struct {
	// Name labels the command for diagnostics.
	Name string
	// Class is the action's class; it must be ClassOutput or ClassInternal.
	Class Class
	// Pre reports whether the command is enabled in the current state.
	Pre func() bool
	// Act builds the action from the current state. Called only when Pre
	// holds. The returned Action must be comparable (a plain struct).
	Act func() Action
	// Eff applies the command's effect to the state. Called only when Pre
	// holds, after Act.
	Eff func()
}

// Machine is a reusable guarded-command implementation of a deterministic
// I/O automaton: the first enabled command (in declaration order) is the
// unique local action, mirroring the paper's convention that preconditions
// are evaluated with a fixed priority when they are not mutually exclusive
// (the A^γ(k) receiver needs this).
//
// Protocol automata hold a Machine and delegate the Automaton methods to
// it.
type Machine struct {
	name     string
	commands []Command
	classify func(Action) Class
	onInput  func(Action) error
}

var _ Deterministic = (*Machine)(nil)

// NewMachine builds a guarded-command machine.
//
// classify must place every action of the automaton's signature; it is
// consulted before onInput and before matching local actions. onInput
// handles input actions and must accept every input in every state
// (input-enabledness); it may be nil for automata with no inputs.
func NewMachine(name string, classify func(Action) Class, onInput func(Action) error, commands []Command) (*Machine, error) {
	if name == "" {
		return nil, fmt.Errorf("ioa: machine needs a name")
	}
	if classify == nil {
		return nil, fmt.Errorf("ioa: machine %q needs a classifier", name)
	}
	for i, c := range commands {
		if !c.Class.Local() {
			return nil, fmt.Errorf("ioa: machine %q command %d (%s) must be output or internal, got %v", name, i, c.Name, c.Class)
		}
		if c.Pre == nil || c.Act == nil || c.Eff == nil {
			return nil, fmt.Errorf("ioa: machine %q command %d (%s) needs Pre, Act and Eff", name, i, c.Name)
		}
	}
	return &Machine{name: name, classify: classify, onInput: onInput, commands: commands}, nil
}

// Name returns the machine's name.
func (m *Machine) Name() string { return m.name }

// Classify places an action in the machine's signature.
func (m *Machine) Classify(a Action) Class { return m.classify(a) }

// DeterministicIOA marks the machine as deterministic.
func (m *Machine) DeterministicIOA() bool { return true }

// NextLocal returns the first enabled command's action.
func (m *Machine) NextLocal() (Action, bool) {
	for _, c := range m.commands {
		if c.Pre() {
			return c.Act(), true
		}
	}
	return nil, false
}

// Apply performs one transition. Input actions are dispatched to onInput;
// local actions must equal the currently enabled command's action.
func (m *Machine) Apply(a Action) error {
	switch m.classify(a) {
	case ClassInput:
		if m.onInput == nil {
			return fmt.Errorf("ioa: machine %q has no input handler for %v: %w", m.name, a, ErrNotInSignature)
		}
		return m.onInput(a)
	case ClassOutput, ClassInternal:
		for _, c := range m.commands {
			if !c.Pre() {
				continue
			}
			act := c.Act()
			if act != a {
				// Deterministic machines have exactly one enabled local
				// action; a different action is simply not enabled here.
				return fmt.Errorf("ioa: machine %q: %v (enabled: %v): %w", m.name, a, act, ErrNotEnabled)
			}
			c.Eff()
			return nil
		}
		return fmt.Errorf("ioa: machine %q: %v: %w", m.name, a, ErrNotEnabled)
	default:
		return fmt.Errorf("ioa: machine %q: %v: %w", m.name, a, ErrNotInSignature)
	}
}
