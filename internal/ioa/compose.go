package ioa

import (
	"fmt"
)

// Composition is the parallel composition A1 ∘ A2 ∘ ... of Section 2.1.
//
// The composition's outputs (internals) are the unions of the components'
// outputs (internals); its inputs are the components' inputs that are not
// some component's outputs. An action fires jointly in every component
// whose signature contains it.
//
// Composability — mutual actions are input/output of distinct components,
// or inputs of both; internal actions are private — cannot be checked up
// front because signatures are predicates, so it is enforced dynamically:
// Apply reports an error when two components both claim an action as
// output, or when one component's internal action appears in another's
// signature.
type Composition struct {
	name  string
	comps []Automaton
}

var _ Automaton = (*Composition)(nil)

// Compose builds the composition of the given automata. Component names
// must be distinct.
func Compose(name string, comps ...Automaton) (*Composition, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("ioa: composition %q needs at least one component", name)
	}
	seen := make(map[string]bool, len(comps))
	for _, c := range comps {
		if seen[c.Name()] {
			return nil, fmt.Errorf("ioa: composition %q has duplicate component %q", name, c.Name())
		}
		seen[c.Name()] = true
	}
	return &Composition{name: name, comps: comps}, nil
}

// Name returns the composition's name.
func (c *Composition) Name() string { return c.name }

// Components returns the component automata in composition order.
func (c *Composition) Components() []Automaton {
	out := make([]Automaton, len(c.comps))
	copy(out, c.comps)
	return out
}

// Component returns the component with the given name, if present.
func (c *Composition) Component(name string) (Automaton, bool) {
	for _, a := range c.comps {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// Classify places an action in the composition's signature.
func (c *Composition) Classify(a Action) Class {
	cls := ClassNone
	for _, comp := range c.comps {
		switch comp.Classify(a) {
		case ClassOutput:
			return ClassOutput
		case ClassInternal:
			cls = ClassInternal
		case ClassInput:
			if cls == ClassNone {
				cls = ClassInput
			}
		}
	}
	return cls
}

// Candidate is one enabled local action of one component.
type Candidate struct {
	// Comp is the index of the controlling component.
	Comp int
	// Actor is the controlling component's name.
	Actor string
	// Action is the enabled local action.
	Action Action
}

// Candidates returns the enabled local actions of all components, in
// component order. The composition of deterministic automata is generally
// nondeterministic; a Scheduler resolves the choice.
func (c *Composition) Candidates() []Candidate {
	var cands []Candidate
	for i, comp := range c.comps {
		if act, ok := comp.NextLocal(); ok {
			cands = append(cands, Candidate{Comp: i, Actor: comp.Name(), Action: act})
		}
	}
	return cands
}

// NextLocal returns the first component's enabled local action. Schedulers
// that need fairness should use Candidates instead.
func (c *Composition) NextLocal() (Action, bool) {
	cands := c.Candidates()
	if len(cands) == 0 {
		return nil, false
	}
	return cands[0].Action, true
}

// Quiescent reports whether no component has an enabled local action; a
// finite execution ending in a quiescent state is fair (Section 2.1,
// condition 1).
func (c *Composition) Quiescent() bool { return len(c.Candidates()) == 0 }

// Apply fires the action jointly in every component whose signature
// contains it, enforcing composability dynamically.
func (c *Composition) Apply(a Action) error {
	owner := -1
	internalOwner := -1
	touches := 0
	for i, comp := range c.comps {
		switch comp.Classify(a) {
		case ClassOutput:
			if owner >= 0 {
				return fmt.Errorf("ioa: composition %q: action %v is an output of both %q and %q (not composable)",
					c.name, a, c.comps[owner].Name(), comp.Name())
			}
			owner = i
			touches++
		case ClassInternal:
			if internalOwner >= 0 {
				return fmt.Errorf("ioa: composition %q: action %v is internal to both %q and %q (not composable)",
					c.name, a, c.comps[internalOwner].Name(), comp.Name())
			}
			internalOwner = i
			touches++
		case ClassInput:
			touches++
		}
	}
	if touches == 0 {
		return fmt.Errorf("ioa: composition %q: %v: %w", c.name, a, ErrNotInSignature)
	}
	if internalOwner >= 0 {
		if touches > 1 {
			return fmt.Errorf("ioa: composition %q: internal action %v of %q appears in another component's signature (not composable)",
				c.name, a, c.comps[internalOwner].Name())
		}
		return c.comps[internalOwner].Apply(a)
	}
	// Fire in the owner first (checks enabledness), then in every
	// component that takes the action as input.
	if owner >= 0 {
		if err := c.comps[owner].Apply(a); err != nil {
			return err
		}
	}
	for i, comp := range c.comps {
		if i == owner {
			continue
		}
		if comp.Classify(a) == ClassInput {
			if err := comp.Apply(a); err != nil {
				return fmt.Errorf("ioa: composition %q: input %v rejected by %q (not input-enabled): %w",
					c.name, a, comp.Name(), err)
			}
		}
	}
	return nil
}

// Owner returns the index and name of the component controlling action a
// (its output or internal owner), or -1 and "" when a is an input of the
// whole composition.
func (c *Composition) Owner(a Action) (int, string) {
	for i, comp := range c.comps {
		cls := comp.Classify(a)
		if cls == ClassOutput || cls == ClassInternal {
			return i, comp.Name()
		}
	}
	return -1, ""
}
