package ioa

import (
	"fmt"
)

// Fairness (Section 2.1): an execution is fair when it is finite and ends
// quiescent, or when every class of locally controlled actions either
// fires infinitely often or is disabled infinitely often. All of the
// paper's automata put their local actions in a single class, so fairness
// degenerates to per-component non-starvation.
//
// Finite traces cannot witness "infinitely often", so the executable
// check is windowed: a component whose local action stays enabled for
// more than `window` consecutive scheduler picks without firing is
// starved, and the execution cannot be extended fairly by a scheduler
// that keeps behaving this way.

// StarvationError reports a fairness violation observed by a
// FairExecutor.
type StarvationError struct {
	// Actor is the starved component.
	Actor string
	// Window is the number of consecutive picks it was enabled but idle.
	Window int
}

// Error renders the violation.
func (e *StarvationError) Error() string {
	return fmt.Sprintf("ioa: component %q starved for %d consecutive picks while enabled", e.Actor, e.Window)
}

// FairExecutor wraps an Executor with windowed starvation detection.
type FairExecutor struct {
	ex     *Executor
	window int
	idle   map[string]int
}

// NewFairExecutor builds an executor that fails any step leaving a
// component enabled-but-unfired for more than window consecutive picks.
func NewFairExecutor(comp *Composition, sched Scheduler, window int) *FairExecutor {
	return &FairExecutor{
		ex:     NewExecutor(comp, sched),
		window: window,
		idle:   make(map[string]int),
	}
}

// Trace returns the recorded execution.
func (f *FairExecutor) Trace() *Execution { return f.ex.Trace() }

// Step fires one action and updates the starvation accounting.
func (f *FairExecutor) Step() (Event, bool, error) {
	cands := f.ex.comp.Candidates()
	ev, ok, err := f.ex.Step()
	if err != nil || !ok {
		return ev, ok, err
	}
	for _, c := range cands {
		if c.Actor == ev.Actor {
			f.idle[c.Actor] = 0
			continue
		}
		f.idle[c.Actor]++
		if f.idle[c.Actor] > f.window {
			return ev, ok, &StarvationError{Actor: c.Actor, Window: f.idle[c.Actor]}
		}
	}
	return ev, ok, nil
}

// Run drives steps until quiescence, maxSteps, or a starvation error.
func (f *FairExecutor) Run(maxSteps int) (quiescent bool, err error) {
	for i := 0; i < maxSteps; i++ {
		_, ok, err := f.Step()
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
	}
	return f.ex.comp.Quiescent(), nil
}

// QuiescentlyFair reports the Section 2.1 condition for finite fair
// executions: the composition has no enabled local action.
func QuiescentlyFair(comp *Composition) bool { return comp.Quiescent() }
