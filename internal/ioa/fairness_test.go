package ioa

import (
	"errors"
	"testing"
)

func TestFairExecutorRoundRobinIsFair(t *testing.T) {
	// Two always-enabled components: round robin never starves either.
	// They share the emit output vocabulary, which would be non-composable;
	// give each a sink-free composition by distinct N ranges instead.
	a := newCounter(t, "a", 1000)
	var got []int
	s := newSink(t, "s", &got)
	comp, err := Compose("sys", a, s)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFairExecutor(comp, &RoundRobin{}, 4)
	if _, err := f.Run(200); err != nil {
		t.Fatalf("round robin starved: %v", err)
	}
	if f.Trace().Len() == 0 {
		t.Fatal("nothing ran")
	}
}

func TestFairExecutorDetectsStarvation(t *testing.T) {
	// Two always-enabled components with disjoint action vocabularies;
	// FirstEnabled always picks the first, starving the second.
	left := newCounter(t, "left", 1000) // emits emit(N)
	type tick2 struct{ foreign }
	right, err := NewMachine("right",
		func(a Action) Class {
			if _, ok := a.(tick2); ok {
				return ClassInternal
			}
			return ClassNone
		},
		nil,
		[]Command{{
			Name:  "tock2",
			Class: ClassInternal,
			Pre:   func() bool { return true },
			Act:   func() Action { return tick2{} },
			Eff:   func() {},
		}})
	if err != nil {
		t.Fatal(err)
	}
	comp2, err := Compose("sys2", left, right)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFairExecutor(comp2, FirstEnabled{}, 5)
	_, err = f.Run(100)
	var starve *StarvationError
	if !errors.As(err, &starve) {
		t.Fatalf("expected starvation, got %v", err)
	}
	if starve.Actor != "right" {
		t.Errorf("starved actor = %q, want right", starve.Actor)
	}
	if starve.Error() == "" {
		t.Error("error must render")
	}
}

func TestQuiescentlyFair(t *testing.T) {
	c := newCounter(t, "c", 1)
	comp, err := Compose("sys", c)
	if err != nil {
		t.Fatal(err)
	}
	if QuiescentlyFair(comp) {
		t.Error("fresh counter is not quiescent")
	}
	ex := NewExecutor(comp, &RoundRobin{})
	if _, err := ex.Run(10); err != nil {
		t.Fatal(err)
	}
	if !QuiescentlyFair(comp) {
		t.Error("drained counter should be quiescent")
	}
}
