// Package ioa implements the (untimed) Input/Output automata model of
// Lynch and Tuttle as summarised in Section 2.1 of the paper.
//
// An I/O automaton is described by three mutually disjoint action sets
// (inputs, outputs, internals), a state set with start states, an
// input-enabled transition relation, and a fairness partition over the
// local (output + internal) actions.
//
// This package models *executable* automata: an Automaton value is a
// mutable state machine. Deterministic automata — the ones the paper's
// lower bounds quantify over — expose exactly one enabled local action per
// state via NextLocal. Composition (Compose) implements the product
// construction of Section 2.1: an output of one component that is an input
// of others fires jointly in all of them.
package ioa

import (
	"errors"
	"fmt"
)

// Action labels a transition. Occurrences of actions in executions are
// events.
type Action interface {
	// Kind names the action family, e.g. "send", "recv", "write", "wait_t".
	Kind() string
	// String renders the action with its parameters.
	String() string
}

// Class classifies an action relative to a particular automaton.
type Class int

const (
	// ClassNone marks actions outside the automaton's signature.
	ClassNone Class = iota
	// ClassInput marks input actions (imposed by the environment).
	ClassInput
	// ClassOutput marks output actions (controlled by the automaton,
	// visible to the environment).
	ClassOutput
	// ClassInternal marks internal actions (controlled, invisible).
	ClassInternal
)

// String renders the class.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassInput:
		return "input"
	case ClassOutput:
		return "output"
	case ClassInternal:
		return "internal"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Local reports whether the class is locally controlled (output or
// internal) — the actions the paper writes loc(A).
func (c Class) Local() bool { return c == ClassOutput || c == ClassInternal }

// Automaton is an executable I/O automaton.
//
// Automaton values are mutable: Apply advances the state. The zero point of
// an automaton's life is its start state; construct a fresh value to rerun
// it. Implementations must be input-enabled: Apply must accept any action
// the automaton classifies as ClassInput, in every state.
type Automaton interface {
	// Name identifies the automaton inside compositions and traces.
	Name() string

	// Classify places an action in the automaton's signature.
	Classify(Action) Class

	// NextLocal returns an enabled local action, or ok == false when no
	// local action is enabled. Deterministic automata (see Deterministic)
	// have at most one enabled local action per state; implementations with
	// several enabled local actions must pick a fixed priority order so
	// that NextLocal is a function of the state.
	NextLocal() (act Action, ok bool)

	// Apply performs one transition on the action, which must be either an
	// enabled local action or any input action. It returns an error if the
	// action is not in the signature or is a non-enabled local action.
	Apply(Action) error
}

// Deterministic is implemented by automata that guarantee the paper's
// determinism condition (Section 2.1): at most one state per (state,
// action) pair and at most one enabled local action per state. It is a
// marker used by the lower-bound machinery, which is stated for
// deterministic processes.
type Deterministic interface {
	Automaton
	// DeterministicIOA is a marker; implementations return true.
	DeterministicIOA() bool
}

// ErrNotEnabled is returned by Apply for a local action whose precondition
// does not hold in the current state.
var ErrNotEnabled = errors.New("ioa: action not enabled")

// ErrNotInSignature is returned by Apply and composition routing for an
// action that no component classifies.
var ErrNotInSignature = errors.New("ioa: action not in signature")

// Event is one occurrence of an action inside an execution, attributed to
// the component that controlled it (for input actions arriving from outside
// a composition, Actor names the composition itself).
type Event struct {
	// Index is the position of the event in its execution, starting at 0.
	Index int
	// Actor names the controlling component.
	Actor string
	// Action is the action that occurred.
	Action Action
}

// String renders the event.
func (e Event) String() string {
	return fmt.Sprintf("#%d %s: %s", e.Index, e.Actor, e.Action)
}

// Execution is a finite execution fragment: the sequence of events fired so
// far. (States are implicit in the mutable automata.)
type Execution struct {
	Events []Event
}

// Append records the next event.
func (e *Execution) Append(actor string, act Action) {
	e.Events = append(e.Events, Event{Index: len(e.Events), Actor: actor, Action: act})
}

// Len returns the number of events recorded.
func (e *Execution) Len() int { return len(e.Events) }

// Restrict returns the subsequence of actions satisfying keep — the paper's
// α|B' restriction operator specialised to actions.
func (e *Execution) Restrict(keep func(Action) bool) []Action {
	var out []Action
	for _, ev := range e.Events {
		if keep(ev.Action) {
			out = append(out, ev.Action)
		}
	}
	return out
}

// Behavior returns the external actions of the execution relative to the
// given automaton: the restriction to in(A) ∪ out(A).
func (e *Execution) Behavior(a Automaton) []Action {
	return e.Restrict(func(act Action) bool {
		c := a.Classify(act)
		return c == ClassInput || c == ClassOutput
	})
}

// KindCount counts events whose action kind matches kind.
func (e *Execution) KindCount(kind string) int {
	n := 0
	for _, ev := range e.Events {
		if ev.Action.Kind() == kind {
			n++
		}
	}
	return n
}
