package ioa

import (
	"fmt"
)

// Scheduler resolves the nondeterministic choice among enabled local
// actions of a composition's components.
type Scheduler interface {
	// Name identifies the scheduler in experiment reports.
	Name() string
	// Pick returns the index into cands of the action to fire. cands is
	// never empty.
	Pick(cands []Candidate) int
}

// RoundRobin cycles through components, skipping components with nothing
// enabled. With each automaton's local actions in a single fairness class —
// as in all of the paper's protocols — round-robin scheduling yields fair
// executions: every continuously-enabled class fires infinitely often.
type RoundRobin struct {
	next int
}

var _ Scheduler = (*RoundRobin)(nil)

// Name returns "round-robin".
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick chooses the candidate whose component index follows the last pick.
func (r *RoundRobin) Pick(cands []Candidate) int {
	best := 0
	bestKey := -1
	for i, c := range cands {
		key := c.Comp - r.next
		if key < 0 {
			key += 1 << 20 // wrap far past any real component count
		}
		if bestKey == -1 || key < bestKey {
			bestKey = key
			best = i
		}
	}
	r.next = cands[best].Comp + 1
	return best
}

// FirstEnabled always fires the lowest-indexed component's action. It is
// unfair in general and exists to demonstrate fairness violations in tests.
type FirstEnabled struct{}

var _ Scheduler = FirstEnabled{}

// Name returns "first-enabled".
func (FirstEnabled) Name() string { return "first-enabled" }

// Pick returns 0.
func (FirstEnabled) Pick(cands []Candidate) int { return 0 }

// Randomized picks uniformly using the supplied source.
type Randomized struct {
	// Intn returns a uniform integer in [0, n); typically rand.Intn.
	Intn func(n int) int
}

var _ Scheduler = Randomized{}

// Name returns "randomized".
func (Randomized) Name() string { return "randomized" }

// Pick chooses a uniformly random candidate.
func (r Randomized) Pick(cands []Candidate) int { return r.Intn(len(cands)) }

// Executor drives untimed executions of a composition under a scheduler,
// recording the execution. It is the engine behind the untimed fairness
// semantics of Section 2.1; the timed semantics of Section 2.2 live in
// internal/sim.
type Executor struct {
	comp  *Composition
	sched Scheduler
	trace Execution
}

// NewExecutor builds an executor over the composition.
func NewExecutor(comp *Composition, sched Scheduler) *Executor {
	return &Executor{comp: comp, sched: sched}
}

// Trace returns the execution recorded so far.
func (e *Executor) Trace() *Execution { return &e.trace }

// Step fires one locally controlled action chosen by the scheduler. It
// reports ok == false when the composition is quiescent.
func (e *Executor) Step() (Event, bool, error) {
	cands := e.comp.Candidates()
	if len(cands) == 0 {
		return Event{}, false, nil
	}
	pick := e.sched.Pick(cands)
	if pick < 0 || pick >= len(cands) {
		return Event{}, false, fmt.Errorf("ioa: scheduler %q picked %d of %d candidates", e.sched.Name(), pick, len(cands))
	}
	chosen := cands[pick]
	if err := e.comp.Apply(chosen.Action); err != nil {
		return Event{}, false, fmt.Errorf("ioa: executor: apply %v: %w", chosen.Action, err)
	}
	e.trace.Append(chosen.Actor, chosen.Action)
	return e.trace.Events[len(e.trace.Events)-1], true, nil
}

// Inject imposes an environment input action on the composition and
// records it, attributed to the environment.
func (e *Executor) Inject(a Action) error {
	if cls := e.comp.Classify(a); cls != ClassInput {
		return fmt.Errorf("ioa: executor: %v is %v of the composition, not an input", a, cls)
	}
	if err := e.comp.Apply(a); err != nil {
		return err
	}
	e.trace.Append("env", a)
	return nil
}

// Run fires local actions until the composition is quiescent or until
// maxSteps actions have fired; it reports whether the run ended quiescent.
func (e *Executor) Run(maxSteps int) (quiescent bool, err error) {
	for i := 0; i < maxSteps; i++ {
		_, ok, err := e.Step()
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
	}
	return e.comp.Quiescent(), nil
}
