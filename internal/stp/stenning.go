package stp

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// Stenning's data transfer protocol [Ste76], the other classical STP
// solution the introduction cites: unbounded sequence numbers instead of
// the alternating bit. The transmitter retransmits the current message
// tagged with its index; the receiver accepts exactly the next expected
// index and acknowledges with the index it accepted. Unlike the
// alternating bit, unbounded sequence numbers survive reordering AND
// duplication (at the price of unbounded packet headers — which is the
// whole point of the finite-alphabet impossibility line [WZ89, MS89]
// the paper continues).
//
// Tags ride in wire.Packet.Tag; the simulator's packets carry ints, which
// models the unbounded header the literature charges this protocol for.

// StenningTransmitter retransmits message i tagged i until ack(i) arrives.
type StenningTransmitter struct {
	m *ioa.Machine

	x []wire.Bit
	i int
}

var _ ioa.Deterministic = (*StenningTransmitter)(nil)

// NewStenningTransmitter builds the transmitter for input x.
func NewStenningTransmitter(x []wire.Bit) (*StenningTransmitter, error) {
	for idx, b := range x {
		if !b.Valid() {
			return nil, fmt.Errorf("stp: stenning transmitter: invalid bit at %d", idx)
		}
	}
	t := &StenningTransmitter{x: append([]wire.Bit(nil), x...)}
	m, err := ioa.NewMachine("t", t.classify, t.onInput, []ioa.Command{
		{
			Name:  "send",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return t.i < len(t.x) },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.TtoR, P: wire.Packet{
					Kind:   wire.Data,
					Symbol: wire.Symbol(t.x[t.i]),
					Tag:    t.i + 1, // 1-based so the zero Tag never aliases
				}}
			},
			Eff: func() {},
		},
	})
	if err != nil {
		return nil, err
	}
	t.m = m
	return t, nil
}

func (t *StenningTransmitter) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Send:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassOutput
		}
	case wire.Recv:
		if act.Dir == wire.RtoT && act.P.Kind == wire.Ack {
			return ioa.ClassInput
		}
	}
	return ioa.ClassNone
}

func (t *StenningTransmitter) onInput(a ioa.Action) error {
	recv, ok := a.(wire.Recv)
	if !ok {
		return fmt.Errorf("stp: stenning transmitter: unexpected input %v: %w", a, ioa.ErrNotInSignature)
	}
	// Advance past every index the receiver has confirmed; stale and
	// duplicate acks (<= current) are no-ops, future ones impossible.
	if recv.P.Tag == t.i+1 && t.i < len(t.x) {
		t.i++
	}
	return nil
}

// Name returns "t".
func (t *StenningTransmitter) Name() string { return t.m.Name() }

// Classify places an action in the signature.
func (t *StenningTransmitter) Classify(a ioa.Action) ioa.Class { return t.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (t *StenningTransmitter) NextLocal() (ioa.Action, bool) { return t.m.NextLocal() }

// Apply performs a transition.
func (t *StenningTransmitter) Apply(a ioa.Action) error { return t.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (t *StenningTransmitter) DeterministicIOA() bool { return true }

// Done reports whether every message has been acknowledged.
func (t *StenningTransmitter) Done() bool { return t.i >= len(t.x) }

// StenningReceiver accepts exactly the next expected index; every
// received packet is (re-)acknowledged with the highest accepted index.
type StenningReceiver struct {
	m *ioa.Machine

	expected int // next index to accept (1-based)
	ackDue   int
	queue    []wire.Bit
	next     int
}

var _ ioa.Deterministic = (*StenningReceiver)(nil)

// NewStenningReceiver builds the receiver.
func NewStenningReceiver() (*StenningReceiver, error) {
	r := &StenningReceiver{expected: 1}
	m, err := ioa.NewMachine("r", r.classify, r.onInput, []ioa.Command{
		{
			Name:  "send_ack",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.ackDue > 0 },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.RtoT, P: wire.Packet{Kind: wire.Ack, Tag: r.expected - 1}}
			},
			Eff: func() { r.ackDue-- },
		},
		{
			Name:  "write",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.next < len(r.queue) },
			Act:   func() ioa.Action { return wire.Write{M: r.queue[r.next]} },
			Eff:   func() { r.next++ },
		},
		{
			Name:  "idle_r",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return true },
			Act:   func() ioa.Action { return wire.Internal{Name: "idle_r"} },
			Eff:   func() {},
		},
	})
	if err != nil {
		return nil, err
	}
	r.m = m
	return r, nil
}

func (r *StenningReceiver) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Recv:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassInput
		}
	case wire.Send:
		if act.Dir == wire.RtoT && act.P.Kind == wire.Ack {
			return ioa.ClassOutput
		}
	case wire.Write:
		return ioa.ClassOutput
	case wire.Internal:
		if act.Name == "idle_r" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

func (r *StenningReceiver) onInput(a ioa.Action) error {
	recv, ok := a.(wire.Recv)
	if !ok {
		return fmt.Errorf("stp: stenning receiver: unexpected input %v: %w", a, ioa.ErrNotInSignature)
	}
	if recv.P.Tag == r.expected {
		r.queue = append(r.queue, wire.Bit(recv.P.Symbol))
		r.expected++
	}
	// Every packet (duplicate, stale or accepted) triggers an ack carrying
	// the highest accepted index, so lost acks are repaired by
	// retransmissions.
	r.ackDue++
	return nil
}

// Name returns "r".
func (r *StenningReceiver) Name() string { return r.m.Name() }

// Classify places an action in the signature.
func (r *StenningReceiver) Classify(a ioa.Action) ioa.Class { return r.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (r *StenningReceiver) NextLocal() (ioa.Action, bool) { return r.m.NextLocal() }

// Apply performs a transition.
func (r *StenningReceiver) Apply(a ioa.Action) error { return r.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (r *StenningReceiver) DeterministicIOA() bool { return true }

// Written returns the number of messages written.
func (r *StenningReceiver) Written() int { return r.next }
