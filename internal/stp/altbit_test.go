package stp

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/sim"
	"repro/internal/wire"
)

func runAB(t *testing.T, x []wire.Bit, delay chanmodel.DelayPolicy, maxTicks int64) (*sim.Run, *ABTransmitter, error) {
	t.Helper()
	tr, err := NewABTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewABReceiver()
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Simulate(sim.Config{
		C1: 1, C2: 1, D: 8,
		Transmitter: sim.Process{Auto: tr, Policy: sim.FixedGap{C: 1}},
		Receiver:    sim.Process{Auto: rc, Policy: sim.FixedGap{C: 1}},
		Delay:       delay,
		Stop:        sim.StopAfterWrites(len(x)),
		MaxTicks:    maxTicks,
	})
	return run, tr, err
}

// TestABPerfectChannel: on a perfect channel the protocol trivially works.
func TestABPerfectChannel(t *testing.T) {
	x, _ := wire.ParseBits("1011001110001011")
	run, tr, err := runAB(t, x, chanmodel.Zero{}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := wire.BitsToString(run.Writes()); got != wire.BitsToString(x) {
		t.Fatalf("Y = %s, want %s", got, wire.BitsToString(x))
	}
	if !tr.Done() {
		t.Error("transmitter not done")
	}
}

// TestABLossyDupFIFO: the protocol's home turf — loss and duplication
// without reordering. It must deliver X across seeds and loss rates.
func TestABLossyDupFIFO(t *testing.T) {
	x, _ := wire.ParseBits("110100101100111000010111")
	for _, loss := range []float64{0.0, 0.2, 0.5} {
		for seed := int64(1); seed <= 5; seed++ {
			delay := &chanmodel.FIFOLossyDup{
				D:        8,
				LossProb: loss,
				DupProb:  0.3,
				Rand:     rand.New(rand.NewSource(seed)),
			}
			run, _, err := runAB(t, x, delay, 5_000_000)
			if err != nil {
				t.Fatalf("loss=%.1f seed=%d: %v", loss, seed, err)
			}
			if got := wire.BitsToString(run.Writes()); got != wire.BitsToString(x) {
				t.Fatalf("loss=%.1f seed=%d: Y = %s, want %s", loss, seed, got, wire.BitsToString(x))
			}
		}
	}
}

// TestABCostGrowsWithLoss: the baseline's cost is unbounded in
// expectation — more loss, longer delivery time. This is the E9 shape.
func TestABCostGrowsWithLoss(t *testing.T) {
	x := wire.RandomBits(64, rand.New(rand.NewSource(9)).Uint64)
	finish := make(map[float64]int64)
	for _, loss := range []float64{0.0, 0.9} {
		var total int64
		for seed := int64(1); seed <= 5; seed++ {
			delay := &chanmodel.FIFOLossyDup{
				D:        8,
				LossProb: loss,
				DupProb:  0.0,
				Rand:     rand.New(rand.NewSource(seed)),
			}
			run, _, err := runAB(t, x, delay, 10_000_000)
			if err != nil {
				t.Fatalf("loss=%.1f seed=%d: %v", loss, seed, err)
			}
			last, ok := run.LastWriteTime()
			if !ok {
				t.Fatalf("loss=%.1f seed=%d: nothing written", loss, seed)
			}
			total += last
		}
		finish[loss] = total / 5
	}
	if finish[0.9] <= 2*finish[0.0] {
		t.Errorf("mean completion at 90%% loss (%d) should far exceed 0%% loss (%d)", finish[0.9], finish[0.0])
	}
}

// TestABFailsUnderDupReorder reproduces the [WZ89] impossibility scenario
// cited in the introduction: a channel that duplicates AND reorders defeats
// the alternating bit. A stale duplicate of the first ack (tag 0) is held
// back and delivered after the transmitter has moved to the third message
// (tag 0 again); the transmitter takes it as that message's ack and
// terminates, while every copy of the third message was (legally, finitely)
// lost. The run stalls at 2 of 3 writes with the transmitter done.
func TestABFailsUnderDupReorder(t *testing.T) {
	x, _ := wire.ParseBits("101")
	delay := chanmodel.Func{
		Label: "dup-reorder",
		F: func(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []int64 {
			if dir == wire.TtoR {
				// Lose the finitely many copies of the third message
				// (tag 0, first sent at t = 2 — the instant-feedback
				// schedule advances one message per tick); deliver
				// everything else instantly.
				if p.Tag == 0 && sendTime >= 2 {
					return nil
				}
				return []int64{sendTime}
			}
			// First ack (tag 0): deliver now and replay a stale duplicate
			// much later — after the transmitter reaches message 3.
			if dirSeq == 0 {
				return []int64{sendTime, sendTime + 151}
			}
			return []int64{sendTime}
		},
	}
	run, tr, err := runAB(t, x, delay, 2_000)
	if err == nil {
		t.Fatalf("expected a stalled run, got writes=%d", run.WriteCount)
	}
	if !errors.Is(err, sim.ErrNoProgress) {
		t.Fatalf("expected ErrNoProgress, got %v", err)
	}
	if run.WriteCount != 2 {
		t.Fatalf("writes = %d, want 2 (stalled before the third)", run.WriteCount)
	}
	if !tr.Done() {
		t.Fatal("transmitter should have (wrongly) concluded it was done")
	}
}

// TestABDuplicateDataIgnored: stale data duplicates do not corrupt Y.
func TestABDuplicateDataIgnored(t *testing.T) {
	x, _ := wire.ParseBits("10")
	delay := chanmodel.Func{
		Label: "dup-data",
		F: func(dirSeq int64, sendTime int64, dir wire.Dir, _ wire.Packet) []int64 {
			if dir == wire.TtoR {
				return []int64{sendTime, sendTime + 3} // duplicate everything
			}
			return []int64{sendTime}
		},
	}
	run, _, err := runAB(t, x, delay, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := wire.BitsToString(run.Writes()); got != "10" {
		t.Fatalf("Y = %s, want 10", got)
	}
}

func TestNewABTransmitterValidates(t *testing.T) {
	if _, err := NewABTransmitter([]wire.Bit{0, 7}); err == nil {
		t.Error("invalid bit should fail")
	}
}
