package stp

import (
	"math/rand"
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/sim"
	"repro/internal/wire"
)

func runStenning(t *testing.T, x []wire.Bit, delay chanmodel.DelayPolicy, maxTicks int64) (*sim.Run, *StenningTransmitter, error) {
	t.Helper()
	tr, err := NewStenningTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewStenningReceiver()
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Simulate(sim.Config{
		C1: 1, C2: 1, D: 8,
		Transmitter: sim.Process{Auto: tr, Policy: sim.FixedGap{C: 1}},
		Receiver:    sim.Process{Auto: rc, Policy: sim.FixedGap{C: 1}},
		Delay:       delay,
		Stop:        sim.StopAfterWrites(len(x)),
		MaxTicks:    maxTicks,
	})
	return run, tr, err
}

func TestStenningPerfectChannel(t *testing.T) {
	x, _ := wire.ParseBits("100110101111000010")
	run, tr, err := runStenning(t, x, chanmodel.Zero{}, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := wire.BitsToString(run.Writes()); got != wire.BitsToString(x) {
		t.Fatalf("Y = %s, want %s", got, wire.BitsToString(x))
	}
	if !tr.Done() {
		t.Error("transmitter should be done")
	}
}

// TestStenningSurvivesLossDupAndReorder: the unbounded-sequence-number
// protocol handles the full faulty-channel triple that defeats the
// alternating bit — loss, duplication AND reordering (random delays).
func TestStenningSurvivesLossDupAndReorder(t *testing.T) {
	x := wire.RandomBits(48, rand.New(rand.NewSource(2)).Uint64)
	for seed := int64(1); seed <= 6; seed++ {
		delay := &chanmodel.LossyDup{
			D:        12,
			LossProb: 0.35,
			DupProb:  0.35,
			Rand:     rand.New(rand.NewSource(seed)),
		}
		run, _, err := runStenning(t, x, delay, 20_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := wire.BitsToString(run.Writes()); got != wire.BitsToString(x) {
			t.Fatalf("seed %d: Y = %s, want %s", seed, got, wire.BitsToString(x))
		}
	}
}

// TestStenningVsAlternatingBitUnderReorder contrasts the two baselines on
// the exact adversary that defeats the alternating bit: Stenning's
// sequence numbers see through the stale duplicate.
func TestStenningVsAlternatingBitUnderReorder(t *testing.T) {
	x, _ := wire.ParseBits("101")
	// The same scripted dup-reorder channel as TestABFailsUnderDupReorder,
	// except data must flow: only the stale ack duplicate is adversarial.
	delay := chanmodel.Func{
		Label: "stale-ack-dup",
		F: func(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []int64 {
			if dir == wire.TtoR {
				return []int64{sendTime}
			}
			if dirSeq == 0 {
				return []int64{sendTime, sendTime + 151} // stale duplicate
			}
			return []int64{sendTime}
		},
	}
	run, tr, err := runStenning(t, x, delay, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := wire.BitsToString(run.Writes()); got != "101" {
		t.Fatalf("Y = %s, want 101", got)
	}
	if !tr.Done() {
		t.Error("transmitter should be done")
	}
}

// TestStenningIgnoresStaleAcks at the automaton level.
func TestStenningIgnoresStaleAcks(t *testing.T) {
	x, _ := wire.ParseBits("11")
	tr, err := NewStenningTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	// ack(0) and ack(2) are stale/future; only ack(1) advances.
	for _, tag := range []int{0, 2, 5} {
		if err := tr.Apply(wire.Recv{Dir: wire.RtoT, P: wire.Packet{Kind: wire.Ack, Tag: tag}}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Done() {
		t.Fatal("stale acks advanced the transmitter")
	}
	if err := tr.Apply(wire.Recv{Dir: wire.RtoT, P: wire.Packet{Kind: wire.Ack, Tag: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Apply(wire.Recv{Dir: wire.RtoT, P: wire.Packet{Kind: wire.Ack, Tag: 2}}); err != nil {
		t.Fatal(err)
	}
	if !tr.Done() {
		t.Fatal("in-order acks should finish the transmitter")
	}
}

// TestStenningReceiverDedupes: duplicates of an accepted packet are
// re-acked but not re-written.
func TestStenningReceiverDedupes(t *testing.T) {
	rc, err := NewStenningReceiver()
	if err != nil {
		t.Fatal(err)
	}
	pkt := wire.Recv{Dir: wire.TtoR, P: wire.Packet{Kind: wire.Data, Symbol: 1, Tag: 1}}
	for i := 0; i < 3; i++ {
		if err := rc.Apply(pkt); err != nil {
			t.Fatal(err)
		}
	}
	writes := 0
	for i := 0; i < 20; i++ {
		act, ok := rc.NextLocal()
		if !ok {
			break
		}
		if err := rc.Apply(act); err != nil {
			t.Fatal(err)
		}
		if act.Kind() == wire.KindWrite {
			writes++
		}
		if act.Kind() == "idle_r" {
			break
		}
	}
	if writes != 1 {
		t.Fatalf("writes = %d, want 1 (duplicates deduped)", writes)
	}
}

func TestStenningValidation(t *testing.T) {
	if _, err := NewStenningTransmitter([]wire.Bit{3}); err == nil {
		t.Error("invalid bit should fail")
	}
}
