// Package stp implements the classical (untimed) sequence transmission
// context the paper's introduction builds on: the Alternating Bit protocol
// of Bartlett, Scantlebury and Wilkinson [BSW69], which solves STP over
// channels that lose and duplicate packets.
//
// It serves as the baseline of experiment E9: correct without any
// real-time assumption, but with unbounded worst-case effort — each
// message costs a geometric number of retransmissions — whereas the RSTP
// protocols exploit Σ/Δ timing to achieve constant effort per message.
package stp

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// ABTransmitter is the alternating-bit transmitter: it retransmits the
// current message, tagged with the one-bit sequence number i mod 2, on
// every step until the matching acknowledgement arrives.
type ABTransmitter struct {
	m *ioa.Machine

	x []wire.Bit
	i int
}

var _ ioa.Deterministic = (*ABTransmitter)(nil)

// NewABTransmitter builds the transmitter for input x.
func NewABTransmitter(x []wire.Bit) (*ABTransmitter, error) {
	for idx, b := range x {
		if !b.Valid() {
			return nil, fmt.Errorf("stp: ab transmitter: invalid bit at %d", idx)
		}
	}
	t := &ABTransmitter{x: append([]wire.Bit(nil), x...)}
	if err := t.initMachine(); err != nil {
		return nil, err
	}
	return t, nil
}

// initMachine (re)binds the guarded commands to this instance; Fork calls
// it on copies.
func (t *ABTransmitter) initMachine() error {
	m, err := ioa.NewMachine("t", t.classify, t.onInput, []ioa.Command{
		{
			Name:  "send",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return t.i < len(t.x) },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.TtoR, P: wire.Packet{
					Kind:   wire.Data,
					Symbol: wire.Symbol(t.x[t.i]),
					Tag:    t.i % 2,
				}}
			},
			Eff: func() {}, // keep retransmitting until acked
		},
	})
	if err != nil {
		return err
	}
	t.m = m
	return nil
}

// Fork returns an independent deep copy in the same state, for
// state-space exploration.
func (t *ABTransmitter) Fork() (*ABTransmitter, error) {
	c := &ABTransmitter{x: t.x, i: t.i}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state.
func (t *ABTransmitter) Snapshot() string { return fmt.Sprintf("i=%d", t.i) }

func (t *ABTransmitter) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Send:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassOutput
		}
	case wire.Recv:
		if act.Dir == wire.RtoT && act.P.Kind == wire.Ack {
			return ioa.ClassInput
		}
	}
	return ioa.ClassNone
}

func (t *ABTransmitter) onInput(a ioa.Action) error {
	recv, ok := a.(wire.Recv)
	if !ok {
		return fmt.Errorf("stp: ab transmitter: unexpected input %v: %w", a, ioa.ErrNotInSignature)
	}
	// Advance on a matching ack; stale acks (the other tag) are ignored.
	if t.i < len(t.x) && recv.P.Tag == t.i%2 {
		t.i++
	}
	return nil
}

// Name returns "t".
func (t *ABTransmitter) Name() string { return t.m.Name() }

// Classify places an action in the signature.
func (t *ABTransmitter) Classify(a ioa.Action) ioa.Class { return t.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (t *ABTransmitter) NextLocal() (ioa.Action, bool) { return t.m.NextLocal() }

// Apply performs a transition.
func (t *ABTransmitter) Apply(a ioa.Action) error { return t.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (t *ABTransmitter) DeterministicIOA() bool { return true }

// Done reports whether every message has been acknowledged.
func (t *ABTransmitter) Done() bool { return t.i >= len(t.x) }

// Sent reports how many messages have been acknowledged so far.
func (t *ABTransmitter) Sent() int { return t.i }

// ABReceiver is the alternating-bit receiver: it accepts a packet whose
// tag matches the expected sequence bit (writing its payload), discards
// duplicates, and acknowledges every received packet with the packet's
// own tag.
type ABReceiver struct {
	m *ioa.Machine

	expected int // tag the next new message will carry
	ackTag   int // tag of the most recently received packet
	ackDue   int // outstanding acknowledgements
	queue    []wire.Bit
	next     int
}

var _ ioa.Deterministic = (*ABReceiver)(nil)

// NewABReceiver builds the receiver.
func NewABReceiver() (*ABReceiver, error) {
	r := &ABReceiver{}
	if err := r.initMachine(); err != nil {
		return nil, err
	}
	return r, nil
}

// initMachine (re)binds the guarded commands to this instance; Fork calls
// it on copies.
func (r *ABReceiver) initMachine() error {
	m, err := ioa.NewMachine("r", r.classify, r.onInput, []ioa.Command{
		{
			Name:  "send_ack",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.ackDue > 0 },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.RtoT, P: wire.Packet{Kind: wire.Ack, Tag: r.ackTag}}
			},
			Eff: func() { r.ackDue-- },
		},
		{
			Name:  "write",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.next < len(r.queue) },
			Act:   func() ioa.Action { return wire.Write{M: r.queue[r.next]} },
			Eff:   func() { r.next++ },
		},
		{
			Name:  "idle_r",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return true },
			Act:   func() ioa.Action { return wire.Internal{Name: "idle_r"} },
			Eff:   func() {},
		},
	})
	if err != nil {
		return err
	}
	r.m = m
	return nil
}

// Fork returns an independent deep copy in the same state, for
// state-space exploration.
func (r *ABReceiver) Fork() (*ABReceiver, error) {
	c := &ABReceiver{
		expected: r.expected,
		ackTag:   r.ackTag,
		ackDue:   r.ackDue,
		queue:    append([]wire.Bit(nil), r.queue...),
		next:     r.next,
	}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state.
func (r *ABReceiver) Snapshot() string {
	return fmt.Sprintf("exp=%d ackTag=%d due=%d q=%s next=%d",
		r.expected, r.ackTag, r.ackDue, wire.BitsToString(r.queue), r.next)
}

// WrittenBits returns Y: the messages written so far, in order.
func (r *ABReceiver) WrittenBits() []wire.Bit {
	return append([]wire.Bit(nil), r.queue[:r.next]...)
}

func (r *ABReceiver) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Recv:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassInput
		}
	case wire.Send:
		if act.Dir == wire.RtoT && act.P.Kind == wire.Ack {
			return ioa.ClassOutput
		}
	case wire.Write:
		return ioa.ClassOutput
	case wire.Internal:
		if act.Name == "idle_r" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

func (r *ABReceiver) onInput(a ioa.Action) error {
	recv, ok := a.(wire.Recv)
	if !ok {
		return fmt.Errorf("stp: ab receiver: unexpected input %v: %w", a, ioa.ErrNotInSignature)
	}
	if recv.P.Tag == r.expected {
		r.queue = append(r.queue, wire.Bit(recv.P.Symbol))
		r.expected ^= 1
	}
	// Acknowledge everything — duplicates included — with the packet's tag
	// (a duplicate means the previous ack was lost).
	r.ackTag = recv.P.Tag
	r.ackDue++
	return nil
}

// Name returns "r".
func (r *ABReceiver) Name() string { return r.m.Name() }

// Classify places an action in the signature.
func (r *ABReceiver) Classify(a ioa.Action) ioa.Class { return r.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (r *ABReceiver) NextLocal() (ioa.Action, bool) { return r.m.NextLocal() }

// Apply performs a transition.
func (r *ABReceiver) Apply(a ioa.Action) error { return r.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (r *ABReceiver) DeterministicIOA() bool { return true }

// Written returns the number of messages written.
func (r *ABReceiver) Written() int { return r.next }
