// Package advsearch empirically searches the space of legal adversaries —
// step schedules within [c1, c2] and per-packet delays within [0, d] —
// for the one maximising a solution's measured effort. It complements the
// analytic worst case two ways: it validates that no sampled legal
// behaviour beats the closed-form bound, and it shows the deterministic
// slowest-schedule/max-delay adversary actually attains the maximum.
package advsearch

import (
	"fmt"
	"math/rand"

	"repro/internal/chanmodel"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Result is the outcome of an adversary search.
type Result struct {
	// Best is the worst (largest) effort found.
	Best rstp.Effort
	// Trials is the number of adversaries evaluated (including the
	// deterministic worst-case candidate).
	Trials int
	// DeterministicWorst is the effort of the slowest-schedule/max-delay
	// adversary, for comparison.
	DeterministicWorst float64
}

// WorstEffort evaluates the deterministic worst-case adversary plus
// `trials` random legal adversaries against the solution on input x, and
// returns the maximum effort observed.
func WorstEffort(s rstp.Solution, x []wire.Bit, trials int, seed int64) (Result, error) {
	if len(x) == 0 {
		return Result{}, fmt.Errorf("advsearch: empty input")
	}
	var res Result

	det, err := s.MeasureEffort(x, rstp.RunOptions{}) // slow + max delay
	if err != nil {
		return Result{}, fmt.Errorf("advsearch: deterministic worst case: %w", err)
	}
	res.Best = det
	res.DeterministicWorst = det.PerMessage
	res.Trials = 1

	p := s.Params
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		// Each trial draws independent schedules for the two processes
		// and an independent delay per packet.
		tRng := rand.New(rand.NewSource(rng.Int63()))
		rRng := rand.New(rand.NewSource(rng.Int63()))
		dRng := rand.New(rand.NewSource(rng.Int63()))
		eff, err := s.MeasureEffort(x, rstp.RunOptions{
			TPolicy: sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: tRng.Int63n},
			RPolicy: sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: rRng.Int63n},
			Delay:   &chanmodel.UniformRandom{D: p.D, Rand: dRng},
		})
		if err != nil {
			return res, fmt.Errorf("advsearch: trial %d: %w", i, err)
		}
		res.Trials++
		if eff.PerMessage > res.Best.PerMessage {
			res.Best = eff
		}
	}
	return res, nil
}
