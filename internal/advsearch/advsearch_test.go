package advsearch

import (
	"math/rand"
	"testing"

	"repro/internal/rstp"
	"repro/internal/wire"
)

func input(t *testing.T, s rstp.Solution, blocks int) []wire.Bit {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	return wire.RandomBits(blocks*s.BlockBits, rng.Uint64)
}

// TestAlphaDeterministicWorstIsWorst: over many random legal adversaries,
// nothing beats the slowest-schedule/max-delay candidate, whose effort is
// the analytic ⌈d/c1⌉·c2 (up to truncation).
func TestAlphaDeterministicWorstIsWorst(t *testing.T) {
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	s, err := rstp.Alpha(p)
	if err != nil {
		t.Fatal(err)
	}
	x := input(t, s, 60)
	res, err := WorstEffort(s, x, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 41 {
		t.Errorf("trials = %d, want 41", res.Trials)
	}
	if res.Best.PerMessage > res.DeterministicWorst+1e-9 {
		t.Errorf("a random adversary (%.3f) beat the deterministic worst case (%.3f)",
			res.Best.PerMessage, res.DeterministicWorst)
	}
	analytic := rstp.AlphaEffort(p)
	if res.Best.PerMessage > analytic+1e-9 {
		t.Errorf("search found %.3f above the analytic worst case %.3f", res.Best.PerMessage, analytic)
	}
	if res.DeterministicWorst < analytic*0.95 {
		t.Errorf("deterministic worst %.3f far below analytic %.3f", res.DeterministicWorst, analytic)
	}
}

// TestBetaSearchRespectsUpperBound across alphabets.
func TestBetaSearchRespectsUpperBound(t *testing.T) {
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	for _, k := range []int{2, 8} {
		s, err := rstp.Beta(p, k)
		if err != nil {
			t.Fatal(err)
		}
		x := input(t, s, 30)
		res, err := WorstEffort(s, x, 25, 11)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if ub := rstp.BetaUpperBound(p, k); res.Best.PerMessage > ub+1e-9 {
			t.Errorf("k=%d: search found %.3f above the Lemma 6.1 bound %.3f", k, res.Best.PerMessage, ub)
		}
		if res.Best.PerMessage > res.DeterministicWorst+1e-9 {
			t.Errorf("k=%d: random adversary beat the deterministic worst case", k)
		}
	}
}

// TestGammaSearchRespectsUpperBound: same for the active protocol.
func TestGammaSearchRespectsUpperBound(t *testing.T) {
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	s, err := rstp.Gamma(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := input(t, s, 30)
	res, err := WorstEffort(s, x, 25, 13)
	if err != nil {
		t.Fatal(err)
	}
	if ub := rstp.GammaUpperBound(p, 4); res.Best.PerMessage > ub+1e-9 {
		t.Errorf("search found %.3f above the Section 6.2 bound %.3f", res.Best.PerMessage, ub)
	}
}

func TestWorstEffortValidation(t *testing.T) {
	p := rstp.Params{C1: 1, C2: 1, D: 2}
	s, err := rstp.Alpha(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WorstEffort(s, nil, 1, 1); err == nil {
		t.Error("empty input should fail")
	}
}
