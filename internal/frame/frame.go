// Package frame is the application layer above RSTP: it turns byte
// payloads into a self-delimiting bit stream and back, so applications
// never worry about the protocols' block alignment (the paper assumes
// |X| ≡ 0 mod the block size; framing plus zero padding realises that
// assumption for arbitrary payloads).
//
// Wire format, bit-level: each message is a 16-bit big-endian length
// header L >= 1 (bytes), followed by 8L payload bits. A zero length
// header terminates the stream, so trailing zero padding — whatever
// PadToBlock appended — parses as end-of-stream. Empty messages are
// therefore not representable; the encoder rejects them.
package frame

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// MaxMessageBytes is the largest payload one frame can carry.
const MaxMessageBytes = 1<<16 - 1

// ErrEmptyMessage is returned when encoding a zero-length payload.
var ErrEmptyMessage = errors.New("frame: empty messages are not representable (length 0 terminates the stream)")

// ErrTooLong is returned when a payload exceeds MaxMessageBytes.
var ErrTooLong = errors.New("frame: payload exceeds 65535 bytes")

// AppendMessage appends one framed payload to dst and returns it.
func AppendMessage(dst []wire.Bit, payload []byte) ([]wire.Bit, error) {
	if len(payload) == 0 {
		return dst, ErrEmptyMessage
	}
	if len(payload) > MaxMessageBytes {
		return dst, ErrTooLong
	}
	l := uint16(len(payload))
	for i := 15; i >= 0; i-- {
		dst = append(dst, wire.Bit((l>>uint(i))&1))
	}
	for _, b := range payload {
		for i := 7; i >= 0; i-- {
			dst = append(dst, wire.Bit((b>>uint(i))&1))
		}
	}
	return dst, nil
}

// EncodeStream frames a sequence of payloads into one bit stream.
func EncodeStream(payloads [][]byte) ([]wire.Bit, error) {
	var out []wire.Bit
	for i, p := range payloads {
		var err error
		out, err = AppendMessage(out, p)
		if err != nil {
			return nil, fmt.Errorf("frame: message %d: %w", i, err)
		}
	}
	return out, nil
}

// Decoder incrementally parses a framed bit stream, tolerating trailing
// zero padding. It accepts bits in any increments — e.g. as the receiver
// writes them — and yields messages as they complete.
type Decoder struct {
	buf  []wire.Bit
	done bool
}

// Push appends received bits to the decoder.
func (d *Decoder) Push(bits ...wire.Bit) {
	d.buf = append(d.buf, bits...)
}

// Next returns the next complete message, or ok == false when no complete
// message is buffered (yet, or ever again once the stream terminator was
// seen).
func (d *Decoder) Next() (payload []byte, ok bool, err error) {
	if d.done || len(d.buf) < 16 {
		return nil, false, nil
	}
	var l int
	for i := 0; i < 16; i++ {
		if !d.buf[i].Valid() {
			return nil, false, fmt.Errorf("frame: invalid bit %d in length header", d.buf[i])
		}
		l = l<<1 | int(d.buf[i])
	}
	if l == 0 {
		// Stream terminator (or padding): nothing more will arrive.
		d.done = true
		return nil, false, nil
	}
	need := 16 + 8*l
	if len(d.buf) < need {
		return nil, false, nil
	}
	payload = make([]byte, l)
	for i := 0; i < l; i++ {
		var b byte
		for j := 0; j < 8; j++ {
			bit := d.buf[16+i*8+j]
			if !bit.Valid() {
				return nil, false, fmt.Errorf("frame: invalid bit %d in payload", bit)
			}
			b = b<<1 | byte(bit)
		}
		payload[i] = b
	}
	d.buf = d.buf[need:]
	return payload, true, nil
}

// Drain returns every complete message currently buffered.
func (d *Decoder) Drain() ([][]byte, error) {
	var out [][]byte
	for {
		msg, ok, err := d.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, msg)
	}
}

// Terminated reports whether the decoder has seen the end-of-stream
// marker (a zero length header, e.g. block padding).
func (d *Decoder) Terminated() bool { return d.done }

// DecodeStream parses a complete framed stream, ignoring trailing
// padding.
func DecodeStream(bits []wire.Bit) ([][]byte, error) {
	var d Decoder
	d.Push(bits...)
	return d.Drain()
}
