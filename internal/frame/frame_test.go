package frame

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rstp"
	"repro/internal/wire"
)

func TestEncodeDecodeStream(t *testing.T) {
	payloads := [][]byte{
		[]byte("hello"),
		{0x00},
		{0xFF, 0x00, 0xAA},
		bytes.Repeat([]byte{0x42}, 300),
	}
	bits, err := EncodeStream(payloads)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeStream(bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(payloads) {
		t.Fatalf("decoded %d messages, want %d", len(back), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(back[i], payloads[i]) {
			t.Errorf("message %d = %x, want %x", i, back[i], payloads[i])
		}
	}
}

func TestPaddingTolerance(t *testing.T) {
	bits, err := EncodeStream([][]byte{[]byte("ok")})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate RSTP block padding of various widths.
	for _, blockBits := range []int{1, 5, 6, 26, 64} {
		padded, _ := rstp.PadToBlock(bits, blockBits)
		back, err := DecodeStream(padded)
		if err != nil {
			t.Fatalf("block %d: %v", blockBits, err)
		}
		if len(back) != 1 || string(back[0]) != "ok" {
			t.Fatalf("block %d: decoded %q", blockBits, back)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := AppendMessage(nil, nil); !errors.Is(err, ErrEmptyMessage) {
		t.Errorf("empty payload: %v", err)
	}
	if _, err := AppendMessage(nil, make([]byte, MaxMessageBytes+1)); !errors.Is(err, ErrTooLong) {
		t.Errorf("oversize payload: %v", err)
	}
	if _, err := EncodeStream([][]byte{[]byte("x"), nil}); err == nil {
		t.Error("stream with empty message should fail")
	}
}

func TestDecoderIncremental(t *testing.T) {
	bits, err := EncodeStream([][]byte{[]byte("ab"), []byte("c")})
	if err != nil {
		t.Fatal(err)
	}
	var d Decoder
	var got [][]byte
	for _, b := range bits { // one bit at a time
		d.Push(b)
		for {
			msg, ok, err := d.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			got = append(got, msg)
		}
	}
	if len(got) != 2 || string(got[0]) != "ab" || string(got[1]) != "c" {
		t.Fatalf("incremental decode = %q", got)
	}
	if d.Terminated() {
		t.Error("no terminator seen yet")
	}
	d.Push(make([]wire.Bit, 16)...) // zero header = padding/terminator
	if _, ok, _ := d.Next(); ok {
		t.Error("terminator should not produce a message")
	}
	if !d.Terminated() {
		t.Error("terminator should mark the stream done")
	}
}

func TestDecoderRejectsInvalidBits(t *testing.T) {
	var d Decoder
	d.Push(make([]wire.Bit, 15)...)
	d.Push(wire.Bit(7)) // invalid bit inside the header
	if _, _, err := d.Next(); err == nil {
		t.Error("invalid header bit should fail")
	}
	var d2 Decoder
	bits, _ := EncodeStream([][]byte{{0xFF}})
	bits[20] = wire.Bit(9) // corrupt a payload bit
	d2.Push(bits...)
	if _, _, err := d2.Next(); err == nil {
		t.Error("invalid payload bit should fail")
	}
}

// Property: random payload sequences round-trip, with and without padding.
func TestRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 1 + rng.Intn(5)
		payloads := make([][]byte, n)
		for i := range payloads {
			p := make([]byte, 1+rng.Intn(40))
			rng.Read(p)
			payloads[i] = p
		}
		bits, err := EncodeStream(payloads)
		if err != nil {
			return false
		}
		padded, _ := rstp.PadToBlock(bits, 1+rng.Intn(30))
		back, err := DecodeStream(padded)
		if err != nil || len(back) != n {
			return false
		}
		for i := range payloads {
			if !bytes.Equal(back[i], payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFramingOverRSTP is the full-stack integration: bytes -> frames ->
// A^β transmission under the worst-case channel -> frames -> bytes.
func TestFramingOverRSTP(t *testing.T) {
	p := rstp.Params{C1: 2, C2: 3, D: 12}
	s, err := rstp.Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("real-time"), []byte("sequence"), []byte("transmission")}
	bits, err := EncodeStream(payloads)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := rstp.PadToBlock(bits, s.BlockBits)
	run, err := s.Run(x, rstp.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeStream(run.Writes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(payloads) {
		t.Fatalf("got %d messages, want %d", len(back), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(back[i], payloads[i]) {
			t.Errorf("message %d = %q, want %q", i, back[i], payloads[i])
		}
	}
}
