package session

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestPipeMetricsEndToEnd pins the session-layer instrumentation: one
// instrumented transfer must populate the endpoint counters, the
// interwrite/deadline-margin/effort-gap histograms, the trace rings, and
// leave the active-session gauges at zero after teardown.
func TestPipeMetricsEndToEnd(t *testing.T) {
	sol := mustBeta(t, 2)
	cfg, _ := memConfig(t, sol, nil)
	reg := obs.NewRegistry()
	reg.Tracer().Enable(256, 64)
	cfg.Obs = reg
	cfg.EffortLowerBound = 2.5
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	x := inputFor(t, sol, 6, 21)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := pipe.Transfer(ctx, x)
	if err != nil || !res.Completed {
		t.Fatalf("transfer: err=%v completed=%v", err, res.Completed)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["rstp_session_writes_total"]; got != int64(len(x)) {
		t.Errorf("writes counter = %d, want %d", got, len(x))
	}
	if snap.Counters["rstp_session_sends_total"] == 0 {
		t.Error("sends counter never moved")
	}
	if snap.Counters["rstp_session_deliveries_total"] == 0 {
		t.Error("deliveries counter never moved")
	}
	for _, name := range []string{"rstp_interwrite_ticks", "rstp_deadline_margin_ticks", "rstp_effort_gap_ticks"} {
		if h := snap.Histograms[name]; h.Count != int64(len(x)) {
			t.Errorf("%s observed %d writes, want %d", name, h.Count, len(x))
		}
	}
	// δ1·c2 = ⌊12/2⌋·3 with the test params.
	if got := snap.Gauges["rstp_deadline_ticks"]; got != 18 {
		t.Errorf("deadline gauge = %d, want 18", got)
	}
	if got := snap.Floats["rstp_effort_bound_ticks"]; got != 2.5 {
		t.Errorf("effort bound = %v, want 2.5", got)
	}
	if got := snap.Gauges["rstp_server_sessions_active"]; got != 0 {
		t.Errorf("active sessions after teardown = %d, want 0", got)
	}

	// The trace ring for the session holds the protocol transitions.
	kinds := map[string]bool{}
	for _, ev := range reg.Tracer().Events(res.ID) {
		kinds[ev.KindName] = true
	}
	for _, want := range []string{"send", "recv", "write"} {
		if !kinds[want] {
			t.Errorf("trace for session %d missing %q events: have %v", res.ID, want, kinds)
		}
	}

	// The Prometheus exposition renders the whole set.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"rstp_session_writes_total",
		"rstp_interwrite_ticks_bucket",
		"rstp_effort_gap_ticks_bucket",
		"rstp_server_sessions_active 0",
		"rstp_dialer_sessions_active 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestLiveSessionsTable pins the JSON-only introspection hook: while a
// session is active, the live table reports it with an effort estimate
// and the effort gap against the configured bound.
func TestLiveSessionsTable(t *testing.T) {
	sol := mustBeta(t, 2)
	cfg, _ := memConfig(t, sol, nil)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	cfg.EffortLowerBound = 1.0
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	x := inputFor(t, sol, 40, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	conn, err := pipe.Dialer.Start(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Wait for the receiver session to exist and write something, then
	// read the live table mid-transfer.
	if _, err := pipe.Server.WaitWrites(ctx, conn.ID(), 2); err != nil {
		t.Fatal(err)
	}
	live := pipe.Server.LiveSessions()
	if len(live) != 1 {
		t.Fatalf("live table has %d sessions, want 1: %+v", len(live), live)
	}
	ls := live[0]
	if ls.ID != conn.ID() || ls.Role != "receiver" || ls.Writes < 2 {
		t.Errorf("live row = %+v", ls)
	}
	snap := reg.Snapshot()
	if snap.Live["server_sessions"] == nil {
		t.Error("live hook missing from snapshot")
	}
	if got := snap.Gauges["rstp_server_sessions_active"]; got != 1 {
		t.Errorf("active gauge = %d, want 1 mid-transfer", got)
	}
}
