package session

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// Dialer is the transmitter side of the mux: Start opens a session —
// blocking on the MaxSessions semaphore for backpressure — and drives a
// fresh transmitter automaton over the shared transport. r->t frames
// (acks, control traffic) are demultiplexed back to their session.
type Dialer struct {
	cfg    Config
	sem    chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
	seq    atomic.Int64
	nextID atomic.Uint32

	mu        sync.Mutex
	active    map[uint32]*endpoint
	finished  map[uint32]Report
	stray     int // r->t frames with no active session
	closeOnce sync.Once
}

// NewDialer validates the config and starts the r->t demux loop.
func NewDialer(cfg Config) (*Dialer, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &Dialer{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxSessions),
		done:     make(chan struct{}),
		active:   make(map[uint32]*endpoint),
		finished: make(map[uint32]Report),
	}
	d.instrument(cfg.metrics)
	d.wg.Add(1)
	go d.demux()
	return d, nil
}

func (d *Dialer) demux() {
	defer d.wg.Done()
	del := d.cfg.Transport.Deliveries(wire.RtoT)
	for {
		select {
		case <-d.done:
			return
		case f, ok := <-del:
			if !ok {
				return
			}
			d.mu.Lock()
			ep := d.active[f.Session]
			if ep == nil {
				d.stray++
			}
			d.mu.Unlock()
			if ep != nil {
				ep.deliver(f)
			}
		}
	}
}

// Conn is one open transmitter-side session.
type Conn struct {
	d  *Dialer
	ep *endpoint
	x  []wire.Bit
}

// ID returns the session ID carried in every frame.
func (c *Conn) ID() uint32 { return c.ep.id }

// X returns the session's input sequence.
func (c *Conn) X() []wire.Bit { return append([]wire.Bit(nil), c.x...) }

// Report snapshots the transmitter endpoint.
func (c *Conn) Report() Report { return c.ep.snapshot(true) }

// Close stops the session's loop, waits for it to exit and releases its
// backpressure slot. Idempotent.
func (c *Conn) Close() {
	c.ep.halt()
	select {
	case <-c.ep.stopped:
	case <-c.d.done:
	}
}

// Start opens a new session for input x. It blocks while MaxSessions
// sessions are already open — the backpressure contract — until a slot
// frees, the context is done, or the dialer closes.
func (d *Dialer) Start(ctx context.Context, x []wire.Bit) (*Conn, error) {
	return d.start(ctx, 0, x)
}

// StartID opens a session under a caller-chosen ID — the restart path:
// a recovering process must reuse the IDs of the sessions it was
// serving so their frames route to the same durable keys in
// Config.Store. id must be nonzero and not currently open; the
// automatic allocator is advanced past it so later Start calls never
// collide with resumed sessions.
func (d *Dialer) StartID(ctx context.Context, id uint32, x []wire.Bit) (*Conn, error) {
	if id == 0 {
		return nil, fmt.Errorf("session: StartID requires a nonzero session id")
	}
	return d.start(ctx, id, x)
}

func (d *Dialer) start(ctx context.Context, id uint32, x []wire.Bit) (*Conn, error) {
	select {
	case d.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-d.done:
		return nil, fmt.Errorf("session: dialer closed")
	}
	if id == 0 {
		id = d.nextID.Add(1)
	} else {
		for {
			cur := d.nextID.Load()
			if cur >= id || d.nextID.CompareAndSwap(cur, id) {
				break
			}
		}
		d.mu.Lock()
		_, open := d.active[id]
		d.mu.Unlock()
		if open {
			<-d.sem
			return nil, fmt.Errorf("session: session %d already open", id)
		}
	}
	// The control plane sees every admission after its slot and ID are
	// settled: Admit may sleep (pacing) or refuse, and it records the
	// per-session builder BuilderFor serves to both sides below. Pacing
	// while holding the slot is deliberate — a paced session is admitted
	// work in flight, not a queue jump waiting to happen.
	if d.cfg.Admission != nil {
		if err := d.cfg.Admission.Admit(ctx, id); err != nil {
			<-d.sem
			return nil, err
		}
	}
	t, _, err := buildPair(d.cfg, id, x)
	if err != nil {
		<-d.sem
		return nil, err
	}
	ep := newEndpoint(d.cfg, id, "transmitter", t, &d.seq)
	d.mu.Lock()
	d.active[id] = ep
	d.mu.Unlock()
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		ep.loop(d.done, false)
		ep.markFinished()
		rep := ep.snapshot(true)
		d.mu.Lock()
		delete(d.active, id)
		d.finished[id] = rep
		d.mu.Unlock()
		if d.cfg.Admission != nil {
			d.cfg.Admission.Forget(id)
		}
		<-d.sem
	}()
	return &Conn{d: d, ep: ep, x: append([]wire.Bit(nil), x...)}, nil
}

// InFlight returns the number of currently open sessions.
func (d *Dialer) InFlight() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.active)
}

// Stray counts r->t frames that arrived for no active session.
func (d *Dialer) Stray() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stray
}

// Reports returns a report per session the dialer has ever opened.
func (d *Dialer) Reports() []Report {
	d.mu.Lock()
	eps := make([]*endpoint, 0, len(d.active))
	out := make([]Report, 0, len(d.finished)+len(d.active))
	for _, rep := range d.finished {
		out = append(out, rep)
	}
	for _, ep := range d.active {
		eps = append(eps, ep)
	}
	d.mu.Unlock()
	for _, ep := range eps {
		out = append(out, ep.snapshot(true))
	}
	return out
}

// Aggregate sums counters across every session opened so far.
func (d *Dialer) Aggregate() Aggregate {
	return aggregate(d.cfg, d.Reports(), 0, 0, 0)
}

// Close stops the demux loop and every open session, then waits for
// them. It does not close the transport (the caller owns it).
func (d *Dialer) Close() error {
	d.closeOnce.Do(func() {
		close(d.done)
		d.wg.Wait()
	})
	return nil
}
