package session

import (
	"sync"
	"testing"
	"time"

	"repro/internal/rstp"
	"repro/internal/wire"
)

// watchdogWindow is the wedge window testConfig's parameters derive for
// a given k: k·δ1·c2 ticks (δ1 = ⌊12/2⌋ = 6, c2 = 3).
func watchdogWindow(k int) int64 {
	p := testParams()
	return int64(k) * int64(p.Delta1()) * p.C2
}

// TestWatchdogRetiresWedgedSession pins the tentpole guarantee: a
// session with no output growth for k·δ1·c2 ticks is force-retired
// through the tombstone path, reported Wedged, and its MaxSessions slot
// freed — even with idle eviction off (the rstpserve setting, where a
// wedged session would otherwise pin its slot forever).
func TestWatchdogRetiresWedgedSession(t *testing.T) {
	sol := mustBeta(t, 4)
	cfg, mem := memConfig(t, sol, nil)
	cfg.IdleTicks = -1 // only the watchdog can reclaim the slot
	cfg.WatchdogK = 4
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer mem.Close()
	t0 := cfg.Clock.Now()
	// One stray frame spawns a receiver that will never see a full block:
	// a permanently wedged session.
	if err := mem.Send(wire.Frame{Session: 7, Dir: wire.TtoR, Seq: 1, P: wire.DataPacket(1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var rep Report
	for {
		var ok bool
		rep, ok = srv.Snapshot(7)
		if ok && rep.Finished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wedged session never retired; snapshot ok=%v rep=%+v", ok, rep)
		}
		time.Sleep(time.Millisecond)
	}
	wedgeTick := cfg.Clock.Now()
	if !rep.Wedged {
		t.Fatalf("retired session not marked wedged: %+v", rep)
	}
	if rep.Evicted {
		t.Fatalf("wedged session double-labeled as idle-evicted: %+v", rep)
	}
	// The force-retire must land within the derived window plus generous
	// slack for spawn latency and polling (the window itself is 72 ticks).
	if window := watchdogWindow(4); wedgeTick-t0 > 10*window {
		t.Fatalf("wedge took %d ticks, window is %d", wedgeTick-t0, window)
	}
	if ep := srv.lookup(7); ep != nil {
		t.Fatal("wedged session still pinning its slot")
	}
	if agg := srv.Aggregate(); agg.Wedged != 1 {
		t.Fatalf("aggregate wedged %d, want 1", agg.Wedged)
	}
}

// TestWatchdogResyncBeforeRetire pins the stabilized-stack integration:
// with WatchdogResync set and a session built by the stabilizing layer,
// the first wedge window triggers one ForceResync (the protocol's own
// recovery handshake) and re-arms; only the second window force-retires.
func TestWatchdogResyncBeforeRetire(t *testing.T) {
	sol := rstp.Stabilize(mustBeta(t, 4), rstp.StabilizeOptions{})
	cfg, mem := memConfig(t, sol, nil)
	cfg.IdleTicks = -1
	cfg.WatchdogK = 4
	cfg.WatchdogResync = true
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer mem.Close()
	if err := mem.Send(wire.Frame{Session: 9, Dir: wire.TtoR, Seq: 1, P: wire.DataPacket(1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var rep Report
	for {
		var ok bool
		rep, ok = srv.Snapshot(9)
		if ok && rep.Finished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("wedged stabilized session never retired; rep=%+v", rep)
		}
		time.Sleep(time.Millisecond)
	}
	if rep.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want exactly 1 before the force-retire", rep.Resyncs)
	}
	if !rep.Wedged {
		t.Fatalf("session not marked wedged after the resync chance: %+v", rep)
	}
	if agg := srv.Aggregate(); agg.Resyncs != 1 || agg.Wedged != 1 {
		t.Fatalf("aggregate resyncs=%d wedged=%d, want 1/1", agg.Resyncs, agg.Wedged)
	}
}

// TestShedEvictOldestIdle pins the overload policy: at the MaxSessions
// cap a newcomer evicts the longest-quiet session instead of being
// refused, the victim's report is marked Shed, and its late frames drop
// at the retiring tombstone instead of respawning a ghost.
func TestShedEvictOldestIdle(t *testing.T) {
	sol := mustBeta(t, 4)
	cfg, mem := memConfig(t, sol, nil)
	cfg.MaxSessions = 2
	cfg.IdleTicks = -1
	cfg.Shed = ShedEvictOldestIdle
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer mem.Close()
	spawn := func(id uint32) {
		t.Helper()
		if err := mem.Send(wire.Frame{Session: id, Dir: wire.TtoR, Seq: int64(id), P: wire.DataPacket(1)}); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for srv.lookup(id) == nil {
			if time.Now().After(deadline) {
				t.Fatalf("session %d never spawned", id)
			}
			time.Sleep(time.Millisecond)
		}
	}
	spawn(1)
	time.Sleep(5 * time.Millisecond) // make session 1 clearly the quietest
	spawn(2)
	time.Sleep(5 * time.Millisecond)
	spawn(3) // at the cap: must evict session 1, not refuse
	if srv.Refused() != 0 {
		t.Fatalf("newcomer refused under evict-oldest-idle (refused=%d)", srv.Refused())
	}
	if srv.Shed() != 1 {
		t.Fatalf("shed counter %d, want 1", srv.Shed())
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep, ok := srv.Snapshot(1)
		if ok && rep.Finished {
			if !rep.Shed {
				t.Fatalf("victim not marked shed: %+v", rep)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shed victim never retired")
		}
		time.Sleep(time.Millisecond)
	}
	// A straggler of the victim must hit the tombstone, not respawn.
	srv.route(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: 99, P: wire.DataPacket(1)})
	if ep := srv.lookup(1); ep != nil {
		t.Fatal("shed victim respawned by a late frame")
	}
	if srv.Late() == 0 {
		t.Fatal("victim's late frame not counted at the tombstone")
	}
	if agg := srv.Aggregate(); agg.SessionsShed != 1 || agg.Shed != 1 {
		t.Fatalf("aggregate sessionsShed=%d shed=%d, want 1/1", agg.SessionsShed, agg.Shed)
	}
}

// TestShedVictimFrameDroppedWhileRetiring closes the ghost window the
// retiring set exists for: between the victim's slot release (under
// s.mu, synchronous with the shed) and its goroutine finishing the
// retire, a frame for the victim must drop as late — this is exercised
// deterministically by routing the frame immediately after the shed,
// when the victim's retirement is very likely still in flight.
func TestShedVictimFrameDroppedWhileRetiring(t *testing.T) {
	sol := mustBeta(t, 4)
	cfg, mem := memConfig(t, sol, nil)
	cfg.MaxSessions = 1
	cfg.IdleTicks = -1
	cfg.Shed = ShedEvictOldestIdle
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer mem.Close()
	srv.route(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: 1, P: wire.DataPacket(1)})
	if srv.lookup(1) == nil {
		t.Fatal("session 1 not spawned by direct route")
	}
	// Session 2 sheds session 1; session 1's straggler races retirement.
	srv.route(wire.Frame{Session: 2, Dir: wire.TtoR, Seq: 2, P: wire.DataPacket(1)})
	srv.route(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: 3, P: wire.DataPacket(1)})
	if ep := srv.lookup(1); ep != nil {
		t.Fatal("victim respawned while retiring")
	}
	if srv.lookup(2) == nil {
		t.Fatal("newcomer not admitted after shed")
	}
	if srv.Late() != 1 {
		t.Fatalf("late = %d, want 1 (the straggler)", srv.Late())
	}
}

// TestCloseDuringWatchdogRetire is the race-targeted satellite: closing
// the server while watchdogs are force-retiring many sessions must not
// double-retire, deadlock, or corrupt the report set. Run under -race.
func TestCloseDuringWatchdogRetire(t *testing.T) {
	sol := mustBeta(t, 4)
	cfg, mem := memConfig(t, sol, nil)
	cfg.IdleTicks = -1
	cfg.WatchdogTicks = 1 // every stray session wedges almost immediately
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	const sessions = 32
	for i := 0; i < sessions; i++ {
		if err := mem.Send(wire.Frame{Session: uint32(i + 1), Dir: wire.TtoR, Seq: int64(i + 1), P: wire.DataPacket(1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Let some sessions spawn and some watchdogs fire, then slam the door
	// while retirements are mid-flight.
	time.Sleep(2 * time.Millisecond)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		srv.Close()
	}()
	go func() {
		defer wg.Done()
		// Concurrent readers must stay safe during the shutdown.
		_ = srv.Aggregate()
		_ = srv.Reports()
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked against watchdog retirement")
	}
	// Every session seen has exactly one authoritative report, and no
	// goroutine is still mutating: a second Close must be a cheap no-op.
	reports := srv.Reports()
	seen := map[uint32]bool{}
	for _, r := range reports {
		if seen[r.ID] {
			t.Fatalf("session %d reported twice", r.ID)
		}
		seen[r.ID] = true
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
