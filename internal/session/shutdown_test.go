package session

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// TestConcurrentShutdownNoLeaksPrefixHolds is the mux teardown contract:
// start 64+ sessions, cancel the context mid-transfer, and require that
// (1) every goroutine the subsystem spawned exits — checked against a
// manual runtime.NumGoroutine budget, since the repo deliberately has no
// external deps — and (2) every session's output tape Y is still a
// prefix of its input X: cancellation may truncate a transfer but must
// never corrupt one.
func TestConcurrentShutdownNoLeaksPrefixHolds(t *testing.T) {
	before := runtime.NumGoroutine()

	sol := mustBeta(t, 4)
	cfg, _ := memConfig(t, sol, nil)
	cfg.MaxSessions = 128
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const sessions = 64
	// Long inputs so every session is still mid-transfer at cancel time.
	const blocks = 40
	ctx, cancel := context.WithCancel(context.Background())
	inputs := make(map[uint32][]wire.Bit)
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		started sync.WaitGroup
	)
	results := make([]TransferResult, 0, sessions)
	started.Add(sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := inputFor(t, sol, blocks, int64(i+1))
			conn, err := pipe.Dialer.Start(ctx, x)
			started.Done()
			if err != nil {
				return
			}
			mu.Lock()
			inputs[conn.ID()] = x
			mu.Unlock()
			rx, _ := pipe.Server.WaitWrites(ctx, conn.ID(), len(x))
			conn.Close()
			res := TransferResult{ID: conn.ID(), X: x, TX: conn.Report(), RX: rx}
			mu.Lock()
			results = append(results, res)
			mu.Unlock()
		}(i)
	}

	// Let every session open and make some progress, then pull the plug.
	started.Wait()
	time.Sleep(20 * time.Millisecond)
	if n := pipe.Dialer.InFlight(); n != sessions {
		t.Fatalf("expected %d in-flight sessions before cancel, have %d", sessions, n)
	}
	cancel()
	wg.Wait()

	// Safety survives cancellation: every receiver-side tape is a prefix
	// of its session's input.
	reports := pipe.Server.Reports()
	checked := 0
	for _, rep := range reports {
		x, ok := inputs[rep.ID]
		if !ok {
			continue
		}
		if v := PrefixCheck(x, rep.Y); v != "" {
			t.Errorf("session %d prefix violation after cancel: %s", rep.ID, v)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no server-side sessions to check — transfers never reached the server")
	}
	mu.Lock()
	sawProgress := false
	for _, res := range results {
		if res.RX.Writes > 0 {
			sawProgress = true
		}
	}
	mu.Unlock()
	if !sawProgress {
		t.Error("no session made progress before cancel; test did not exercise mid-transfer shutdown")
	}

	if err := pipe.Close(); err != nil {
		t.Fatalf("pipe close: %v", err)
	}

	// Goroutine budget: everything the subsystem spawned must be gone.
	// Allow a small slack for runtime/test goroutines and poll, since
	// exits are asynchronous.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after shutdown\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPipeCloseIsIdempotentAndStopsEverything closes a pipe with live
// sessions (no context cancel at all) and checks teardown alone reclaims
// every goroutine.
func TestPipeCloseIsIdempotentAndStopsEverything(t *testing.T) {
	before := runtime.NumGoroutine()
	sol := mustBeta(t, 4)
	clock := transport.NewClock(50 * time.Microsecond)
	mem := transport.NewMem(clock, transport.MemOptions{D: testParams().D, Buffer: 1 << 14})
	cfg := testConfig(t, sol, mem, clock)
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := pipe.Dialer.Start(ctx, inputFor(t, sol, 20, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines not reclaimed: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
