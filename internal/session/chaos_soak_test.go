package session

import (
	"context"
	"testing"
	"time"

	"repro/internal/chanmodel"
	"repro/internal/faults"
	"repro/internal/rstp"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestSoakChaosOverUDP is the resilience-layer soak: hardened sessions
// over Chaos(UDP) with ≥10% injected loss plus duplication and
// corruption must all complete with zero prefix violations — the chaos
// matrix running over a real kernel socket path for the first time.
// Short mode (PR CI) runs a smaller fleet; the nightly race job runs the
// full 256 sessions.
func TestSoakChaosOverUDP(t *testing.T) {
	sessions := 256
	if testing.Short() {
		sessions = 48
	}
	udp, err := transport.NewUDPLoopback(1 << 15)
	if err != nil {
		t.Skipf("udp loopback unavailable: %v", err)
	}
	clock := transport.NewClock(50 * time.Microsecond)
	// ≥10% loss plus duplication and corruption over the first 4000 send
	// ticks (200ms of wall time at the test tick): the whole opening
	// burst of every session runs through the adversary, and the
	// hardened layer retransmits its way out after the window closes.
	plan := faults.NewPlan(17, chanmodel.Zero{},
		faults.Fault{From: 0, To: 4000, Drop: 0.12, Dup: 0.05, Corrupt: 0.05})
	chaos := transport.NewChaos(udp, clock, plan)
	hs := rstp.Harden(mustBeta(t, 4), rstp.HardenOptions{})
	cfg := testConfig(t, hs, chaos, clock)
	cfg.Buffer = 256
	// The pipe evicts each session explicitly (the rstpserve setting).
	// Idle eviction must stay off: the hardened layer's capped backoff
	// can legally go quiet for 16·RTO ≈ 816 ticks, longer than the
	// default 64·D idle window, and an idle eviction mid-backoff would
	// look like a lost session.
	cfg.IdleTicks = -1
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	blockBits := mustBeta(t, 4).BlockBits
	type outcome struct {
		res TransferResult
		x   []wire.Bit
		err error
	}
	results := make(chan outcome, sessions)
	for i := 0; i < sessions; i++ {
		go func(i int) {
			x := randomBits(blockBits, int64(1000+i))
			res, err := pipe.Transfer(ctx, x)
			results <- outcome{res: res, x: x, err: err}
		}(i)
	}
	violations, incomplete := 0, 0
	for i := 0; i < sessions; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("transfer: %v", o.err)
		}
		if o.res.Violation != "" {
			violations++
			t.Errorf("session %d prefix violation: %s", o.res.ID, o.res.Violation)
		}
		if !o.res.Completed {
			incomplete++
		}
	}
	if violations != 0 {
		t.Fatalf("%d prefix violations under chaos", violations)
	}
	if incomplete != 0 {
		t.Fatalf("%d of %d hardened sessions did not complete", incomplete, sessions)
	}
	affected, dropped, duplicated, corrupted, _ := plan.Stats()
	if affected == 0 || dropped == 0 {
		t.Fatalf("chaos plan injected nothing: affected=%d dropped=%d", affected, dropped)
	}
	t.Logf("chaos over %s: %d sessions complete; injected dropped=%d duplicated=%d corrupted=%d of %d affected; udp malformed=%d dropped=%d",
		udp.Name(), sessions, dropped, duplicated, corrupted, affected, udp.Malformed(), udp.Dropped())
}
