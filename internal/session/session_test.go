package session

import (
	"context"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chanmodel"
	"repro/internal/faults"
	"repro/internal/rstp"
	"repro/internal/transport"
	"repro/internal/wire"
)

func testParams() rstp.Params { return rstp.Params{C1: 2, C2: 3, D: 12} }

func testConfig(t *testing.T, sol PairBuilder, tr transport.Transport, clock *transport.Clock) Config {
	t.Helper()
	return Config{
		Solution:  sol,
		Params:    testParams(),
		Transport: tr,
		Clock:     clock,
	}
}

func memConfig(t *testing.T, sol PairBuilder, delay chanmodel.DelayPolicy) (Config, *transport.Mem) {
	t.Helper()
	clock := transport.NewClock(50 * time.Microsecond)
	mem := transport.NewMem(clock, transport.MemOptions{D: testParams().D, Delay: delay, Buffer: 1 << 14})
	return testConfig(t, sol, mem, clock), mem
}

func randomBits(n int, seed int64) []wire.Bit {
	rng := rand.New(rand.NewSource(seed))
	return wire.RandomBits(n, rng.Uint64)
}

func inputFor(t *testing.T, sol PairBuilder, blocks int, seed int64) []wire.Bit {
	t.Helper()
	blockBits := 1
	if s, ok := sol.(rstp.Solution); ok {
		blockBits = s.BlockBits
	}
	return randomBits(blocks*blockBits, seed)
}

func mustBeta(t *testing.T, k int) rstp.Solution {
	t.Helper()
	s, err := rstp.Beta(testParams(), k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runTransfer(t *testing.T, sol PairBuilder, blocks int) TransferResult {
	t.Helper()
	cfg, _ := memConfig(t, sol, nil)
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	x := inputFor(t, sol, blocks, 11)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := pipe.Transfer(ctx, x)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if !res.Completed {
		t.Fatalf("session %d incomplete: writes=%d of %d, violation=%q",
			res.ID, res.RX.Writes, len(x), res.Violation)
	}
	if got := wire.BitsToString(res.RX.Y); got != wire.BitsToString(x) {
		t.Fatalf("Y != X:\nY %s\nX %s", got, wire.BitsToString(x))
	}
	return res
}

func TestTransferAlpha(t *testing.T) {
	sol, err := rstp.Alpha(testParams())
	if err != nil {
		t.Fatal(err)
	}
	res := runTransfer(t, sol, 8)
	if res.TX.Sends < 8 {
		t.Errorf("alpha sent %d packets for 8 bits", res.TX.Sends)
	}
}

func TestTransferBeta(t *testing.T) {
	res := runTransfer(t, mustBeta(t, 4), 3)
	if res.Effort() <= 0 {
		t.Errorf("effort estimate %v", res.Effort())
	}
}

func TestTransferGammaActive(t *testing.T) {
	sol, err := rstp.Gamma(testParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	res := runTransfer(t, sol, 3)
	// The active protocol's receiver must have sent acknowledgements.
	if res.RX.Sends == 0 {
		t.Error("gamma receiver sent no acks through the transport")
	}
	if res.TX.Deliveries == 0 {
		t.Error("gamma transmitter saw no ack deliveries")
	}
}

// TestTransferHardenedUnderFaults reuses a faults.Plan as the mem
// transport's delay policy: the hardened wrapper must complete Y = X
// through a lossy window, exactly as it does in the simulator.
func TestTransferHardenedUnderFaults(t *testing.T) {
	p := testParams()
	plan := faults.NewPlan(5, chanmodel.MaxDelay{D: p.D},
		faults.Fault{From: 0, To: 400, Drop: 0.25, Corrupt: 0.15})
	hs := rstp.Harden(mustBeta(t, 4), rstp.HardenOptions{})
	cfg, _ := memConfig(t, hs, plan)
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	x := randomBits(3*mustBeta(t, 4).BlockBits, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := pipe.Transfer(ctx, x)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if !res.Completed {
		t.Fatalf("hardened transfer incomplete under faults: writes=%d of %d, violation=%q",
			res.RX.Writes, len(x), res.Violation)
	}
}

func TestConcurrentSessionsAllComplete(t *testing.T) {
	sol := mustBeta(t, 4)
	cfg, _ := memConfig(t, sol, nil)
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	const sessions = 32
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	type outcome struct {
		res TransferResult
		x   []wire.Bit
		err error
	}
	results := make(chan outcome, sessions)
	for i := 0; i < sessions; i++ {
		go func(i int) {
			x := inputFor(t, sol, 1+i%3, int64(100+i))
			res, err := pipe.Transfer(ctx, x)
			results <- outcome{res: res, x: x, err: err}
		}(i)
	}
	ids := map[uint32]bool{}
	for i := 0; i < sessions; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("transfer: %v", o.err)
		}
		if !o.res.Completed {
			t.Fatalf("session %d incomplete: %q", o.res.ID, o.res.Violation)
		}
		if wire.BitsToString(o.res.RX.Y) != wire.BitsToString(o.x) {
			t.Fatalf("session %d: Y != X", o.res.ID)
		}
		if ids[o.res.ID] {
			t.Fatalf("duplicate session id %d", o.res.ID)
		}
		ids[o.res.ID] = true
	}
	agg := pipe.Server.Aggregate()
	if agg.Sessions != sessions || agg.Writes == 0 {
		t.Fatalf("aggregate: %v", agg)
	}
}

// TestStatsReuse pins the sim/stats reuse: a served session's merged
// trace must feed sim.Collect and produce consistent counters.
func TestStatsReuse(t *testing.T) {
	sol := mustBeta(t, 4)
	cfg, _ := memConfig(t, sol, nil)
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	x := inputFor(t, sol, 2, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := pipe.Transfer(ctx, x)
	if err != nil || !res.Completed {
		t.Fatalf("transfer: %v (completed=%v)", err, res.Completed)
	}
	st := pipe.SessionStats(res)
	if st.Writes != len(x) {
		t.Errorf("stats writes %d, want %d", st.Writes, len(x))
	}
	if st.SendsTR != res.TX.Sends {
		t.Errorf("stats t->r sends %d, endpoint counted %d", st.SendsTR, res.TX.Sends)
	}
	if st.Recvs == 0 || st.MinDelay < 0 {
		t.Errorf("delay stats missing: %+v", st)
	}
	if st.EffortPerMessage <= 0 {
		t.Errorf("effort per message %v", st.EffortPerMessage)
	}
}

func TestDialerBackpressure(t *testing.T) {
	sol := mustBeta(t, 4)
	cfg, _ := memConfig(t, sol, nil)
	cfg.MaxSessions = 2
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	x := inputFor(t, sol, 1, 1)
	ctx := context.Background()
	c1, err := pipe.Dialer.Start(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pipe.Dialer.Start(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	// Third session must block until a slot frees.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := pipe.Dialer.Start(short, x); err == nil {
		t.Fatal("third session admitted past MaxSessions = 2")
	} else if short.Err() == nil {
		t.Fatalf("start failed for the wrong reason: %v", err)
	}
	c1.Close()
	long, cancel2 := context.WithTimeout(ctx, 10*time.Second)
	defer cancel2()
	c3, err := pipe.Dialer.Start(long, x)
	if err != nil {
		t.Fatalf("slot freed but start failed: %v", err)
	}
	c3.Close()
	c2.Close()
}

func TestServerIdleEviction(t *testing.T) {
	sol := mustBeta(t, 4)
	cfg, mem := memConfig(t, sol, nil)
	cfg.IdleTicks = 40 // 2ms at the 50µs test tick
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer mem.Close()
	// One stray frame opens a session that will never progress.
	if err := mem.Send(wire.Frame{Session: 42, Dir: wire.TtoR, Seq: 1, P: wire.DataPacket(1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rep, ok := srv.Snapshot(42)
		if ok && rep.Evicted && rep.Finished {
			if rep.Deliveries != 1 {
				t.Fatalf("evicted session saw %d deliveries", rep.Deliveries)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session 42 not evicted; snapshot ok=%v rep=%+v", ok, rep)
		}
		time.Sleep(time.Millisecond)
	}
	agg := srv.Aggregate()
	if agg.Evicted != 1 {
		t.Fatalf("aggregate evicted %d, want 1", agg.Evicted)
	}
}

func TestServerMaxSessionsRefusesNew(t *testing.T) {
	sol := mustBeta(t, 4)
	cfg, mem := memConfig(t, sol, nil)
	cfg.MaxSessions = 1
	cfg.IdleTicks = -1
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer mem.Close()
	if err := mem.Send(wire.Frame{Session: 1, Dir: wire.TtoR, Seq: 1, P: wire.DataPacket(1)}); err != nil {
		t.Fatal(err)
	}
	// Wait for session 1 to exist, then overflow with session 2.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := srv.Snapshot(1); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session 1 never spawned")
		}
		time.Sleep(time.Millisecond)
	}
	if err := mem.Send(wire.Frame{Session: 2, Dir: wire.TtoR, Seq: 2, P: wire.DataPacket(1)}); err != nil {
		t.Fatal(err)
	}
	for {
		if srv.Refused() >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("over-limit session not refused (refused=%d)", srv.Refused())
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := srv.Snapshot(2); ok {
		t.Fatal("session 2 spawned past MaxSessions = 1")
	}
}

func TestTransferOverUDP(t *testing.T) {
	udp, err := transport.NewUDPLoopback(1 << 12)
	if err != nil {
		t.Skipf("udp loopback unavailable: %v", err)
	}
	clock := transport.NewClock(50 * time.Microsecond)
	sol := mustBeta(t, 4)
	cfg := testConfig(t, sol, udp, clock)
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const sessions = 8
	done := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func(i int) {
			x := inputFor(t, sol, 2, int64(i+1))
			res, err := pipe.Transfer(ctx, x)
			if err == nil && !res.Completed {
				err = context.DeadlineExceeded
			}
			done <- err
		}(i)
	}
	for i := 0; i < sessions; i++ {
		if err := <-done; err != nil {
			t.Fatalf("udp transfer: %v", err)
		}
	}
}

// TestLateFrameDoesNotRespawnFinishedSession pins the tombstone: after a
// session retires, in-flight stragglers under its ID (retransmissions up
// to D ticks behind the eviction) must be dropped, not spawn a ghost
// receiver that would pin a MaxSessions slot (forever, with idle
// eviction disabled) and shadow the real session's finished report.
func TestLateFrameDoesNotRespawnFinishedSession(t *testing.T) {
	sol := mustBeta(t, 4)
	cfg, _ := memConfig(t, sol, nil)
	cfg.IdleTicks = -1 // the rstpserve/loadtest setting: a ghost would never be torn down
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	x := inputFor(t, sol, 1, 9)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := pipe.Transfer(ctx, x)
	if err != nil || !res.Completed {
		t.Fatalf("transfer: %v (completed=%v)", err, res.Completed)
	}
	// A straggler frame for the finished session arrives after eviction.
	pipe.Server.route(wire.Frame{Session: res.ID, Dir: wire.TtoR, Seq: 9999, P: wire.DataPacket(1)})
	if ep := pipe.Server.lookup(res.ID); ep != nil {
		t.Fatal("late frame respawned a ghost receiver for a finished session")
	}
	if got := pipe.Server.Late(); got != 1 {
		t.Fatalf("late counter %d, want 1", got)
	}
	rep, ok := pipe.Server.Snapshot(res.ID)
	if !ok || rep.Writes != len(x) {
		t.Fatalf("finished report corrupted: ok=%v writes=%d, want %d", ok, rep.Writes, len(x))
	}
}

// flakySend wraps a Transport, failing the first `remaining` sends with a
// transient (non-ErrClosed) error — the shape of a kernel ENOBUFS on the
// UDP transport.
type flakySend struct {
	transport.Transport
	remaining atomic.Int64
}

func (f *flakySend) Send(fr wire.Frame) error {
	if f.remaining.Add(-1) >= 0 {
		return fmt.Errorf("transient kernel send failure")
	}
	return f.Transport.Send(fr)
}

// TestTransientSendErrorsAreNotFatal pins the send-error contract: a
// transient Transport.Send failure is channel loss (counted, recorded),
// not a reason to kill the endpoint loop — only transport.ErrClosed is
// terminal. The hardened wrapper retransmits through the lost frames.
func TestTransientSendErrorsAreNotFatal(t *testing.T) {
	hs := rstp.Harden(mustBeta(t, 4), rstp.HardenOptions{})
	cfg, _ := memConfig(t, hs, nil)
	fl := &flakySend{Transport: cfg.Transport}
	fl.remaining.Store(5)
	cfg.Transport = fl
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	x := randomBits(2*mustBeta(t, 4).BlockBits, 13)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := pipe.Transfer(ctx, x)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if !res.Completed {
		t.Fatalf("transfer killed by transient send errors: writes=%d of %d, violation=%q",
			res.RX.Writes, len(x), res.Violation)
	}
	if res.TX.SendErrors+res.RX.SendErrors == 0 {
		t.Fatal("transient send failures not counted in SendErrors")
	}
	if res.TX.Err == "" && res.RX.Err == "" {
		t.Error("last send error not recorded in either report")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	sol := mustBeta(t, 4)
	cfg, mem := memConfig(t, sol, nil)
	defer mem.Close()
	cfg.StepGap = 99 // must clamp into [c1, c2]
	got, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if got.StepGap != testParams().C2 {
		t.Errorf("StepGap clamped to %d, want %d", got.StepGap, testParams().C2)
	}
}
