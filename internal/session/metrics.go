package session

import (
	"repro/internal/obs"
	"repro/internal/rstp"
)

// sessionMetrics is the mux's bridge into the obs registry. It is built
// once per Server/Dialer in withDefaults (nil when Config.Obs is nil) and
// shared by every endpoint of that side; both sides of a Pipe share the
// underlying metrics through the registry's get-or-create semantics.
//
// Every hook is safe on a nil receiver — the uninstrumented hot path pays
// one nil check and nothing else — and every argument is a scalar, so an
// instrumented endpoint allocates nothing per event either.
type sessionMetrics struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	sends      *obs.Counter
	deliveries *obs.Counter
	writes     *obs.Counter
	rejected   *obs.Counter
	overflow   *obs.Counter
	sendErrs   *obs.Counter
	evicted    *obs.Counter
	wedged     *obs.Counter
	shed       *obs.Counter
	resyncs    *obs.Counter
	refused    *obs.Counter
	late       *obs.Counter
	resumed    *obs.Counter

	// interwrite is the gap in ticks between consecutive output writes of
	// one session — the live per-message effort. margin is the paper's
	// per-message deadline δ1·c2 minus that gap (negative = deadline
	// miss). effortGap is the gap minus the configured effort lower bound
	// (Thm 5.3/5.6), the live distance between what the serving stack
	// spends and what the paper proves any correct protocol must spend.
	interwrite *obs.Histogram
	margin     *obs.Histogram
	effortGap  *obs.Histogram

	deadline int64   // δ1·c2 in ticks
	bound    float64 // effort lower bound in ticks; 0 disables effortGap
}

func newSessionMetrics(reg *obs.Registry, p rstp.Params, bound float64) *sessionMetrics {
	if reg == nil {
		return nil
	}
	m := &sessionMetrics{
		reg:    reg,
		tracer: reg.Tracer(),

		sends:      reg.Counter("rstp_session_sends_total", "protocol packets sent by session endpoints"),
		deliveries: reg.Counter("rstp_session_deliveries_total", "delivered frames accepted by session automata"),
		writes:     reg.Counter("rstp_session_writes_total", "messages written to receiver output tapes"),
		rejected:   reg.Counter("rstp_session_rejected_total", "delivered frames refused by an automaton's signature"),
		overflow:   reg.Counter("rstp_session_overflow_total", "frames dropped on a full per-session inbox"),
		sendErrs:   reg.Counter("rstp_session_send_errors_total", "transport send failures (counted as channel loss)"),
		evicted:    reg.Counter("rstp_sessions_evicted_total", "sessions torn down by the idle monitor"),
		wedged:     reg.Counter("rstp_sessions_wedged_total", "sessions force-retired by the progress watchdog"),
		shed:       reg.Counter("rstp_sessions_shed_total", "sessions force-retired by the overload policy"),
		resyncs:    reg.Counter("rstp_session_resyncs_total", "watchdog-forced protocol resynchronizations"),
		refused:    reg.Counter("rstp_server_frames_refused_total", "new-session frames dropped at the MaxSessions cap"),
		late:       reg.Counter("rstp_server_frames_late_total", "in-flight frames of retired sessions dropped at the tombstone"),
		resumed:    reg.Counter("rstp_sessions_resumed_total", "receiver sessions respawned with a persisted output tape"),

		interwrite: reg.Histogram("rstp_interwrite_ticks", "gap between consecutive output writes, in ticks", obs.TickBuckets(0)),
		margin:     reg.Histogram("rstp_deadline_margin_ticks", "per-message deadline δ1·c2 minus the interwrite gap (negative = miss)", obs.MarginBuckets(0)),
		// The gap runs to hundreds of ticks under load (it measures slack
		// above the bound, not proximity to a deadline), so it needs the
		// wide ±2048 layout or its p99 drowns in the +Inf bucket.
		effortGap: reg.Histogram("rstp_effort_gap_ticks", "interwrite gap minus the paper's effort lower bound", obs.MarginBuckets(12)),

		deadline: int64(p.Delta1()) * p.C2,
		bound:    bound,
	}
	reg.Gauge("rstp_deadline_ticks", "per-message deadline δ1·c2 in ticks").Set(m.deadline)
	reg.Float("rstp_effort_bound_ticks", "configured per-message effort lower bound in ticks").Set(bound)
	return m
}

func (m *sessionMetrics) onSend(tick int64, id uint32, pktSeq int64) {
	if m == nil {
		return
	}
	m.sends.Inc()
	m.tracer.Record(tick, id, obs.EvSend, pktSeq)
}

func (m *sessionMetrics) onSendErr() {
	if m == nil {
		return
	}
	m.sendErrs.Inc()
}

func (m *sessionMetrics) onRecv(tick int64, id uint32, pktSeq int64) {
	if m == nil {
		return
	}
	m.deliveries.Inc()
	m.tracer.Record(tick, id, obs.EvRecv, pktSeq)
}

func (m *sessionMetrics) onReject() {
	if m == nil {
		return
	}
	m.rejected.Inc()
}

func (m *sessionMetrics) onOverflow() {
	if m == nil {
		return
	}
	m.overflow.Inc()
}

// onWrite observes one output write. prev is the tick of the previous
// write (0 if none), start the endpoint's creation tick: the first
// message's effort is measured from session start.
func (m *sessionMetrics) onWrite(tick int64, id uint32, prev, start int64) {
	if m == nil {
		return
	}
	m.writes.Inc()
	base := prev
	if base == 0 {
		base = start
	}
	gap := tick - base
	m.interwrite.Observe(gap)
	m.margin.Observe(m.deadline - gap)
	if m.bound > 0 {
		m.effortGap.Observe(gap - int64(m.bound+0.5))
	}
	m.tracer.Record(tick, id, obs.EvWrite, gap)
}

func (m *sessionMetrics) onEvict(tick int64, id uint32) {
	if m == nil {
		return
	}
	m.evicted.Inc()
	m.tracer.Record(tick, id, obs.EvEvict, 0)
}

func (m *sessionMetrics) onWedge(tick int64, id uint32, silentTicks int64) {
	if m == nil {
		return
	}
	m.wedged.Inc()
	m.tracer.Record(tick, id, obs.EvWedge, silentTicks)
}

func (m *sessionMetrics) onShed(tick int64, id uint32) {
	if m == nil {
		return
	}
	m.shed.Inc()
	m.tracer.Record(tick, id, obs.EvShed, 0)
}

func (m *sessionMetrics) onResync(tick int64, id uint32) {
	if m == nil {
		return
	}
	m.resyncs.Inc()
	m.tracer.Record(tick, id, obs.EvResync, 0)
}

func (m *sessionMetrics) onResume() {
	if m == nil {
		return
	}
	m.resumed.Inc()
}

func (m *sessionMetrics) onRefuse(tick int64, id uint32) {
	if m == nil {
		return
	}
	m.refused.Inc()
	m.tracer.Record(tick, id, obs.EvRefuse, 0)
}

func (m *sessionMetrics) onLate(tick int64, id uint32) {
	if m == nil {
		return
	}
	m.late.Inc()
	m.tracer.Record(tick, id, obs.EvLate, 0)
}

// LiveSession is one row of the Server's live introspection table,
// exported through the JSON snapshot's "live" section (never through the
// Prometheus exposition — its cardinality is per-session).
type LiveSession struct {
	ID     uint32 `json:"id"`
	Role   string `json:"role"`
	Sends  int    `json:"sends"`
	Writes int    `json:"writes"`
	// EffortTicks is (LastSend−Start)/Writes, the endpoint-local effort
	// estimate in ticks per message; EffortGapTicks subtracts the
	// configured lower bound (omitted when no bound is configured).
	EffortTicks    float64 `json:"effort_ticks"`
	EffortGapTicks float64 `json:"effort_gap_ticks,omitempty"`
	IdleTicks      int64   `json:"idle_ticks"`
	Resyncs        int     `json:"resyncs,omitempty"`
}

// instrument registers the Server's scrape-time views: the active-session
// gauge, the refused/late/shed counters it already keeps, the live
// per-session effort table, and the live effort mean/max floats.
func (s *Server) instrument(m *sessionMetrics) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc("rstp_server_sessions_active",
		"receiver sessions currently live in the mux", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.active))
		})
	m.reg.GaugeFunc("rstp_server_sessions_finished",
		"receiver sessions retired so far", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.finished))
		})
	m.reg.FloatFunc("rstp_live_effort_mean_ticks",
		"mean effort in ticks per message across live receiver sessions", func() float64 {
			mean, _ := s.liveEffort()
			return mean
		})
	m.reg.FloatFunc("rstp_live_effort_max_ticks",
		"worst effort in ticks per message across live receiver sessions", func() float64 {
			_, max := s.liveEffort()
			return max
		})
	m.reg.Live("server_sessions", func() any { return s.LiveSessions() })
}

// liveEffort folds the live sessions' effort estimates into (mean, max),
// skipping sessions that have not written yet.
func (s *Server) liveEffort() (mean, max float64) {
	var sum float64
	var n int
	for _, ls := range s.LiveSessions() {
		if ls.EffortTicks <= 0 {
			continue
		}
		sum += ls.EffortTicks
		n++
		if ls.EffortTicks > max {
			max = ls.EffortTicks
		}
	}
	if n > 0 {
		mean = sum / float64(n)
	}
	return mean, max
}

// LiveSessions snapshots every active receiver session into the live
// introspection table. Light snapshots only — no traces, no tape copies
// beyond what Report already takes.
func (s *Server) LiveSessions() []LiveSession {
	s.mu.Lock()
	eps := make([]*endpoint, 0, len(s.active))
	for _, ep := range s.active {
		eps = append(eps, ep)
	}
	s.mu.Unlock()
	now := s.cfg.Clock.Now()
	out := make([]LiveSession, 0, len(eps))
	for _, ep := range eps {
		rep := ep.snapshot(false)
		ls := LiveSession{
			ID: rep.ID, Role: rep.Role,
			Sends: rep.Sends, Writes: rep.Writes,
			EffortTicks: rep.Effort(),
			Resyncs:     rep.Resyncs,
		}
		ep.mu.Lock()
		ls.IdleTicks = now - ep.lastActivity
		ep.mu.Unlock()
		if b := s.cfg.EffortLowerBound; b > 0 && ls.EffortTicks > 0 {
			ls.EffortGapTicks = ls.EffortTicks - b
		}
		out = append(out, ls)
	}
	return out
}

// instrument registers the Dialer's scrape-time views.
func (d *Dialer) instrument(m *sessionMetrics) {
	if m == nil {
		return
	}
	m.reg.GaugeFunc("rstp_dialer_sessions_active",
		"transmitter sessions currently open", func() int64 {
			return int64(d.InFlight())
		})
	m.reg.CounterFunc("rstp_dialer_frames_stray_total",
		"r->t frames that arrived for no open session", func() int64 {
			return int64(d.Stray())
		})
}
