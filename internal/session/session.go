// Package session runs many RSTP transfers concurrently over one
// transport: the serving layer the simulator does not have.
//
// Each transfer is a *session*: a fresh protocol pair (bare, hardened or
// stabilized — anything exposing NewPair) whose transmitter automaton
// lives in a Dialer and whose receiver automaton lives in a Server,
// connected by a shared transport.Transport that frames every packet
// with the session ID (wire.Frame). Both ends are driven off one shared
// real-time Clock: every endpoint takes one local protocol step each
// StepGap ticks, with C1 <= StepGap <= C2, so the paper's step-bound
// assumption Σ(At, Ar) is honored by construction (up to OS scheduler
// jitter, which can only stretch gaps — see DESIGN.md).
//
// Concurrency layout, kept deliberately simple so it is race-clean under
// `go test -race`:
//
//   - one demux goroutine per Server/Dialer, routing delivered frames to
//     per-session inboxes;
//   - one goroutine per session endpoint, owning its automaton: all
//     Apply/NextLocal calls happen there, serialised with incoming frames
//     through a select loop;
//   - counters and traces guarded by a per-endpoint mutex, snapshotted
//     into immutable Reports for readers.
//
// Backpressure is a Dialer-side semaphore of MaxSessions slots (Start
// blocks until a slot frees or the context is done); the Server
// additionally refuses to spawn receiver state beyond its own
// MaxSessions, dropping frames of over-limit sessions. Idle receiver
// sessions are evicted after IdleTicks without traffic.
package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ioa"
	"repro/internal/obs"
	"repro/internal/rstp"
	"repro/internal/timed"
	"repro/internal/transport"
	"repro/internal/wire"
)

// PairBuilder constructs fresh protocol pairs: rstp.Solution,
// rstp.HardenedSolution and rstp.StabilizedSolution all satisfy it.
type PairBuilder interface {
	// NewPair builds a transmitter/receiver pair for input x.
	NewPair(x []wire.Bit) (t, r ioa.Automaton, err error)
	// String names the protocol stack, e.g. "hardened(beta(k=4))".
	String() string
}

// KeyedPairBuilder is the durable flavor of PairBuilder: pairs whose
// endpoints checkpoint themselves into a StateStore under a caller-
// chosen key prefix. rstp.StabilizedSolution satisfies it; the mux uses
// it (when Config.Store is set) to give every session its own key
// namespace, "s<ID>/", so a restarted process can rebuild exactly the
// sessions it was serving.
type KeyedPairBuilder interface {
	PairBuilder
	// NewPairKeyed is NewPair with the endpoints' checkpoint keys
	// namespaced under prefix.
	NewPairKeyed(prefix string, x []wire.Bit) (t, r ioa.Automaton, err error)
}

// TapeResumer is the optional hook a receiver automaton may expose (the
// stabilized layer's endpoints do) to learn, at spawn, how many
// messages a previous incarnation already wrote durably: the REPORT it
// sends during the recovery handshake must count those, or the
// transmitter would resend messages the tape already holds. n only ever
// raises the automaton's count — a checkpoint ahead of the tape wins.
type TapeResumer interface {
	ResumeTape(n int64)
}

// Resyncer is the optional resynchronization hook a session automaton
// may expose (the stabilized layer's endpoints do): the watchdog pulls
// it once before force-retiring a wedged session, giving the protocol a
// chance to heal in place. The call happens on the endpoint's loop
// goroutine, which owns the automaton, so implementations need no
// locking of their own.
type Resyncer interface {
	ForceResync()
}

// ErrAdmissionRefused is returned by Dialer.Start when the configured
// AdmissionController refuses the new session outright (the escalation
// ladder's refuse level and above). It is load shaping, not failure: the
// caller should back off and retry, exactly as it would on a full
// semaphore.
var ErrAdmissionRefused = errors.New("session: admission refused by control plane")

// AdmissionController is the control plane's hook into the mux: it paces
// or refuses new sessions and selects per-session protocol parameters.
// internal/control.Controller implements it; nil disables every hook.
//
// Both sides of a Pipe share one controller, which is what makes
// per-session k-selection sound: the dialer records the builder it chose
// for an ID at Admit time and the server's spawn asks BuilderFor the same
// ID, so transmitter and receiver always construct matching automata. A
// server fed by a remote dialer has no such record and BuilderFor returns
// nil — the default Config.Solution — because the wire format does not
// carry k (see DESIGN.md, control-plane section).
type AdmissionController interface {
	// Admit is consulted once per new transmitter-side session, after the
	// backpressure slot is taken and the ID allocated, before any protocol
	// state is built. It may sleep (admission pacing) and may return
	// ErrAdmissionRefused; any error aborts the Start and releases the
	// slot.
	Admit(ctx context.Context, id uint32) error
	// BuilderFor returns the protocol pair builder chosen for session id
	// at Admit time, or nil for Config.Solution. Called by both the
	// dialer's and the server's pair construction.
	BuilderFor(id uint32) PairBuilder
	// AdmitServer reports whether the server should spawn receiver state
	// for a brand-new session id right now. Sessions the controller
	// admitted dialer-side are always accepted (their slot is spoken
	// for); unknown IDs are refused while the escalation ladder is at its
	// refuse level or above.
	AdmitServer(id uint32) bool
	// Forget drops the controller's per-session record once the session
	// has retired on either side. Idempotent.
	Forget(id uint32)
}

// ShedPolicy selects what the Server does with a brand-new session when
// the active set already holds MaxSessions.
type ShedPolicy int

const (
	// ShedRefuse drops the new session's frames (the pre-watchdog
	// behavior): existing sessions keep their slots, newcomers wait for
	// their own retransmissions to land after a slot frees.
	ShedRefuse ShedPolicy = iota
	// ShedEvictOldestIdle force-retires the active session that has gone
	// longest without traffic and admits the newcomer into its slot. The
	// victim's report is marked Shed; its in-flight frames are dropped as
	// late at the tombstone.
	ShedEvictOldestIdle
)

// String names the policy for flag values and summaries.
func (p ShedPolicy) String() string {
	switch p {
	case ShedRefuse:
		return "refuse"
	case ShedEvictOldestIdle:
		return "evict-oldest-idle"
	default:
		return fmt.Sprintf("shed(%d)", int(p))
	}
}

// Config configures a Server, a Dialer, or a Pipe (which shares one
// Config across both). Transport, Clock, Solution and Params are
// required; everything else has serving defaults.
type Config struct {
	// Solution builds each session's protocol pair.
	Solution PairBuilder
	// Params are the timing constants; StepGap and delay bounds are
	// interpreted against them.
	Params rstp.Params
	// Transport carries the frames.
	Transport transport.Transport
	// Clock is the shared tick source.
	Clock *transport.Clock
	// StepGap is the tick gap between consecutive local protocol steps,
	// clamped into [C1, C2]. Default C2 (the slowest legal schedule, the
	// one the effort bounds quantify over).
	StepGap int64
	// MaxSessions bounds concurrently live sessions per side (default
	// 1024). Dial blocks on it; the Server refuses receiver state past it.
	MaxSessions int
	// IdleTicks evicts a receiver session after this many ticks without
	// traffic (default 64·D; <0 disables eviction).
	IdleTicks int64
	// Buffer is the per-session inbox capacity (default 64). A full inbox
	// drops frames — the mux never blocks its demux loop on one session.
	Buffer int
	// TraceLimit caps the per-session recorded event trace used for
	// per-session statistics (default 8192 events; <0 disables tracing).
	// Events past the cap are counted, not recorded.
	TraceLimit int
	// Shed selects the Server's overload policy at the MaxSessions
	// high-water mark (default ShedRefuse).
	Shed ShedPolicy
	// WatchdogK enables the Server's per-session progress watchdog: a
	// receiver session whose output tape grows by nothing for
	// WatchdogK·δ1·c2 ticks is declared wedged and force-retired through
	// the tombstone path. δ1·c2 is the paper's per-message effort bound —
	// the longest a healthy session can legally take between consecutive
	// writes — so k is "how many worst-case message times of silence
	// before giving up". 0 disables the watchdog.
	WatchdogK int
	// WatchdogTicks overrides the derived k·δ1·c2 wedge window directly
	// (takes precedence over WatchdogK when > 0).
	WatchdogTicks int64
	// WatchdogResync makes the watchdog pull the automaton's Resyncer
	// hook (if implemented — the stabilized layer's endpoints do) once
	// per session before force-retiring, giving the protocol one
	// wedge-window-long chance to heal in place.
	WatchdogResync bool
	// Obs wires the mux into an observability registry: endpoint counters,
	// the interwrite/deadline-margin/effort-gap histograms, protocol trace
	// events, and the Server's live per-session introspection table. nil
	// disables instrumentation entirely (the hot path pays one nil check).
	Obs *obs.Registry
	// Store persists per-session recovery state: the pair's checkpoints
	// (via KeyedPairBuilder, under "s<ID>/") and the receiver's output
	// tape (under "s<ID>/y", one byte per message, saved on every write
	// BEFORE the write is announced — the paper's irrevocable-write
	// semantics). nil disables persistence. Implementations must be safe
	// for concurrent use; internal/journal.Store is the durable one.
	Store rstp.StateStore
	// Admission is the optional control-plane hook: pacing/refusal of new
	// sessions and per-session protocol parameter choice, driven by live
	// metrics (see internal/control). nil disables it — admissions flow
	// exactly as before.
	Admission AdmissionController
	// EffortLowerBound is the paper's per-message effort lower bound in
	// ticks for the configured protocol (δ1·c2/log2 ζ_k(δ1) r-passive,
	// d/log2 ζ_k(δ2) active — Thms 5.3 and 5.6), supplied by the caller
	// because it depends on the protocol's k. When > 0 it anchors the
	// rstp_effort_gap_ticks histogram and the live effort-gap table;
	// 0 leaves only the absolute effort visible.
	EffortLowerBound float64

	// metrics is built from Obs in withDefaults; nil disables every hook.
	metrics *sessionMetrics
}

func (c Config) withDefaults() (Config, error) {
	if c.Solution == nil {
		return c, fmt.Errorf("session: Config.Solution required")
	}
	if c.Transport == nil {
		return c, fmt.Errorf("session: Config.Transport required")
	}
	if c.Clock == nil {
		return c, fmt.Errorf("session: Config.Clock required")
	}
	if err := c.Params.Validate(); err != nil {
		return c, err
	}
	if c.StepGap == 0 {
		c.StepGap = c.Params.C2
	}
	if c.StepGap < c.Params.C1 {
		c.StepGap = c.Params.C1
	}
	if c.StepGap > c.Params.C2 {
		c.StepGap = c.Params.C2
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.IdleTicks == 0 {
		c.IdleTicks = 64 * c.Params.D
	}
	if c.Buffer <= 0 {
		c.Buffer = 64
	}
	if c.TraceLimit == 0 {
		c.TraceLimit = 8192
	}
	if c.WatchdogTicks <= 0 && c.WatchdogK > 0 {
		c.WatchdogTicks = int64(c.WatchdogK) * int64(c.Params.Delta1()) * c.Params.C2
	}
	c.metrics = newSessionMetrics(c.Obs, c.Params, c.EffortLowerBound)
	return c, nil
}

// sessionKeyPrefix is the per-session namespace inside Config.Store;
// tapeKey is the receiver's durable output tape within it.
func sessionKeyPrefix(id uint32) string { return fmt.Sprintf("s%d/", id) }
func tapeKey(id uint32) string          { return sessionKeyPrefix(id) + "y" }

// buildPair constructs one session's protocol pair, routing through the
// keyed path when a store is configured and the solution supports it. An
// AdmissionController may substitute a per-session builder (k-selection);
// both sides consult it under the same ID, so the pair always matches.
func buildPair(cfg Config, id uint32, x []wire.Bit) (t, r ioa.Automaton, err error) {
	sol := cfg.Solution
	if cfg.Admission != nil {
		if b := cfg.Admission.BuilderFor(id); b != nil {
			sol = b
		}
	}
	if cfg.Store != nil {
		if kb, ok := sol.(KeyedPairBuilder); ok {
			return kb.NewPairKeyed(sessionKeyPrefix(id), x)
		}
	}
	return sol.NewPair(x)
}

// encodeTape and decodeTape serialize an output tape one byte per
// message. A truncated tape (a crash between tape save and checkpoint
// save) is still a prefix of X, so recovery from it is safe — the
// handshake retransmits the lost suffix.
func encodeTape(y []wire.Bit) []byte {
	b := make([]byte, len(y))
	for i, m := range y {
		b[i] = byte(m)
	}
	return b
}

func decodeTape(data []byte) []wire.Bit {
	y := make([]wire.Bit, len(data))
	for i, c := range data {
		y[i] = wire.Bit(c & 1)
	}
	return y
}

// eventSeq orders recorded trace events across all endpoints, so merged
// per-session traces sort causally (a recv is always recorded after its
// send).
var eventSeq atomic.Int64

// Report is an immutable snapshot of one session endpoint.
type Report struct {
	// ID is the session ID.
	ID uint32
	// Role is "transmitter" or "receiver".
	Role string
	// Start is the tick the endpoint was created.
	Start int64
	// Sends, Deliveries and Writes count protocol events so far; Rejected
	// counts delivered frames the automaton's signature refused and
	// Overflow frames dropped on a full inbox.
	Sends, Deliveries, Writes int
	Rejected, Overflow        int
	// SendErrors counts Transport.Send failures. They are non-fatal — a
	// failed send is channel loss, which the protocols retransmit around —
	// except transport.ErrClosed, which stops the endpoint.
	SendErrors int
	// Err is the most recent send error, "" if none.
	Err string
	// LastSend and LastWrite are absolute ticks (0 if none).
	LastSend, LastWrite int64
	// Y is the written output tape (receiver endpoints). Resumed counts
	// the messages of Y preloaded from a persisted tape at spawn — the
	// durable work of a previous incarnation — rather than written by
	// this endpoint; Writes includes them.
	Y       []wire.Bit
	Resumed int
	// Evicted reports the endpoint was torn down by the idle monitor.
	Evicted bool
	// Wedged reports the endpoint was force-retired by the progress
	// watchdog: no output growth within the wedge window.
	Wedged bool
	// Shed reports the endpoint was force-retired by the overload
	// policy to make room for a new session.
	Shed bool
	// Resyncs counts watchdog-triggered ForceResync calls into the
	// automaton (at most one per session).
	Resyncs int
	// Finished reports the endpoint's goroutine has exited.
	Finished bool
	// Trace is the recorded event trace (nil for light snapshots or when
	// tracing is disabled); TraceDropped counts events past TraceLimit.
	Trace        []timed.Event
	TraceDropped int
}

// Effort is the endpoint-local effort estimate (LastSend-Start)/Writes —
// meaningful on merged transmitter+receiver views; see Pipe.
func (r Report) Effort() float64 {
	if r.Writes == 0 || r.LastSend == 0 {
		return 0
	}
	return float64(r.LastSend-r.Start) / float64(r.Writes)
}

// PrefixCheck compares an output tape y against the input x: it returns
// "" when y is a prefix of x, else a description of the first violation.
func PrefixCheck(x, y []wire.Bit) string {
	if len(y) > len(x) {
		return fmt.Sprintf("output has %d messages, input only %d", len(y), len(x))
	}
	for i := range y {
		if y[i] != x[i] {
			return fmt.Sprintf("output[%d] = %v, want %v", i, y[i], x[i])
		}
	}
	return ""
}

// endpoint is one side of one session: an automaton, its inbox, and its
// counters. The loop goroutine owns the automaton; the mutex guards only
// the counters and trace.
type endpoint struct {
	id      uint32
	role    string
	auto    ioa.Automaton
	cfg     Config
	seq     *atomic.Int64 // shared per-side packet sequence source
	side    int64         // seq parity: 1 = transmitter side (odd seqs), 0 = receiver (even)
	tapeKey string        // durable output-tape key; "" disables tape persistence

	in      chan wire.Frame
	stop    chan struct{}
	stopped chan struct{} // closed when the loop has exited
	notify  chan struct{} // pulsed on every write
	stopOne sync.Once

	mu           sync.Mutex
	start        int64
	sends        int
	deliveries   int
	writes       int
	rejected     int
	overflow     int
	sendErrs     int
	lastErr      error
	lastSend     int64
	lastWrite    int64
	lastActivity int64
	lastProgress int64 // tick of the last output write (watchdog clock)
	y            []wire.Bit
	resumed      int // messages preloaded from a persisted tape at spawn
	trace        []timed.Event
	traceDropped int
	evicted      bool
	wedged       bool
	shed         bool
	resyncs      int
	finished     bool
}

func newEndpoint(cfg Config, id uint32, role string, auto ioa.Automaton, seq *atomic.Int64) *endpoint {
	// The seq parity is derived from the role rather than passed in, so
	// the disjointness invariant (transmitter frames odd, receiver frames
	// even) cannot be miswired by a caller.
	var side int64
	if role == "transmitter" {
		side = 1
	}
	now := cfg.Clock.Now()
	return &endpoint{
		id:      id,
		role:    role,
		auto:    auto,
		cfg:     cfg,
		seq:     seq,
		side:    side,
		in:      make(chan wire.Frame, cfg.Buffer),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
		notify:  make(chan struct{}, 1),
		mu:      sync.Mutex{},
		start:   now, lastActivity: now, lastProgress: now,
	}
}

// resumeTape seeds a freshly spawned receiver endpoint with the output
// tape a previous incarnation persisted, and tells the automaton (via
// TapeResumer) how many messages are already durable so its recovery
// REPORT counts them. Called before the loop goroutine starts.
func (e *endpoint) resumeTape(y []wire.Bit) {
	e.mu.Lock()
	e.y = append([]wire.Bit(nil), y...)
	e.writes = len(y)
	e.resumed = len(y)
	e.mu.Unlock()
	if tr, ok := e.auto.(TapeResumer); ok {
		tr.ResumeTape(int64(len(y)))
	}
}

// markShed flags the endpoint as an overload-policy victim before its
// loop is halted, so retirement records the right cause.
func (e *endpoint) markShed() {
	e.mu.Lock()
	e.shed = true
	e.mu.Unlock()
	e.cfg.metrics.onShed(e.cfg.Clock.Now(), e.id)
}

// markWedged flags the endpoint as force-retired for lack of output
// progress before its loop is halted — the watchdog's verdict, also
// reachable on demand through the control plane's last escalation rung.
func (e *endpoint) markWedged() {
	now := e.cfg.Clock.Now()
	e.mu.Lock()
	e.wedged = true
	silent := now - e.lastProgress
	e.mu.Unlock()
	e.cfg.metrics.onWedge(now, e.id, silent)
}

// halt asks the loop to exit; idempotent.
func (e *endpoint) halt() { e.stopOne.Do(func() { close(e.stop) }) }

// deliver routes a frame into the inbox without ever blocking the caller.
func (e *endpoint) deliver(f wire.Frame) {
	select {
	case e.in <- f:
	default:
		e.mu.Lock()
		e.overflow++
		e.mu.Unlock()
		e.cfg.metrics.onOverflow()
	}
}

// record appends a trace event under the configured cap. Callers hold e.mu.
func (e *endpoint) record(t int64, actor string, act ioa.Action, pktSeq int64) {
	if e.cfg.TraceLimit < 0 {
		return
	}
	if len(e.trace) >= e.cfg.TraceLimit {
		e.traceDropped++
		return
	}
	e.trace = append(e.trace, timed.Event{
		Time: t, Seq: eventSeq.Add(1), Actor: actor, Action: act, PacketSeq: pktSeq,
	})
}

// loop drives the endpoint: one local protocol step per StepGap ticks,
// frames applied as they arrive, idle eviction for receivers. ownerDone
// is the owning Server/Dialer's shutdown signal.
func (e *endpoint) loop(ownerDone <-chan struct{}, evictIdle bool) {
	defer close(e.stopped)
	ticker := time.NewTicker(e.cfg.Clock.Ticks(e.cfg.StepGap))
	defer ticker.Stop()
	for {
		select {
		case <-ownerDone:
			return
		case <-e.stop:
			return
		case f := <-e.in:
			e.onFrame(f)
		case <-ticker.C:
			if !e.step() {
				return
			}
			if evictIdle && e.cfg.IdleTicks > 0 {
				now := e.cfg.Clock.Now()
				e.mu.Lock()
				idle := now-e.lastActivity > e.cfg.IdleTicks
				if idle {
					e.evicted = true
				}
				e.mu.Unlock()
				if idle {
					e.cfg.metrics.onEvict(now, e.id)
					return
				}
			}
			if evictIdle && e.cfg.WatchdogTicks > 0 && !e.watchdog() {
				return
			}
		}
	}
}

// watchdog is the per-session progress check, run on the loop goroutine
// each step for server-side endpoints: a session whose output tape grew
// by nothing for WatchdogTicks is wedged. With WatchdogResync set and an
// automaton that implements Resyncer, the first trip instead forces a
// protocol resynchronization and re-arms the window, so a session the
// stabilized layer can still heal gets exactly one wedge-window-long
// chance before the force-retire. Returns false when the endpoint must
// retire.
func (e *endpoint) watchdog() bool {
	now := e.cfg.Clock.Now()
	e.mu.Lock()
	if now-e.lastProgress <= e.cfg.WatchdogTicks {
		e.mu.Unlock()
		return true
	}
	if e.cfg.WatchdogResync && e.resyncs == 0 {
		if rs, ok := e.auto.(Resyncer); ok {
			e.resyncs++
			e.lastProgress = now // re-arm: one full window to heal
			e.mu.Unlock()
			e.cfg.metrics.onResync(now, e.id)
			// The loop goroutine owns the automaton; calling in outside
			// e.mu keeps the lock ordering trivial.
			rs.ForceResync()
			return true
		}
	}
	e.wedged = true
	silent := now - e.lastProgress
	e.mu.Unlock()
	e.cfg.metrics.onWedge(now, e.id, silent)
	return false
}

// onFrame applies one delivered frame as a recv input, if the automaton's
// signature accepts it.
func (e *endpoint) onFrame(f wire.Frame) {
	now := e.cfg.Clock.Now()
	act := wire.Recv{Dir: f.Dir, P: f.P, Payload: string(f.Payload)}
	e.mu.Lock()
	e.lastActivity = now
	if e.auto.Classify(act) != ioa.ClassInput {
		e.rejected++
		e.mu.Unlock()
		e.cfg.metrics.onReject()
		return
	}
	e.mu.Unlock()
	if err := e.auto.Apply(act); err != nil {
		e.mu.Lock()
		e.rejected++
		e.mu.Unlock()
		e.cfg.metrics.onReject()
		return
	}
	e.mu.Lock()
	e.deliveries++
	e.record(now, "chan", act, f.Seq)
	e.mu.Unlock()
	e.cfg.metrics.onRecv(now, e.id, f.Seq)
}

// step applies one local protocol action and performs its side effects
// (transport sends, output-tape writes). It returns false when the
// endpoint cannot make progress anymore (transport closed).
func (e *endpoint) step() bool {
	act, ok := e.auto.NextLocal()
	if !ok {
		return true // terminated protocol: keep serving recvs until stopped
	}
	if err := e.auto.Apply(act); err != nil {
		// A race between precondition and Apply cannot happen — the loop
		// goroutine owns the automaton — so treat this as a protocol bug
		// surfaced in counters rather than a crash.
		e.mu.Lock()
		e.rejected++
		e.mu.Unlock()
		return true
	}
	now := e.cfg.Clock.Now()
	switch a := act.(type) {
	case wire.Send:
		pktSeq := e.seq.Add(1)*2 + e.side // disjoint seq ranges per side
		err := e.cfg.Transport.Send(wire.Frame{Session: e.id, Dir: a.Dir, Seq: pktSeq, P: a.P, Payload: []byte(a.Payload)})
		e.mu.Lock()
		e.sends++
		e.lastSend = now
		if err != nil {
			e.sendErrs++
			e.lastErr = err
		}
		e.record(now, e.auto.Name(), act, pktSeq)
		e.mu.Unlock()
		e.cfg.metrics.onSend(now, e.id, pktSeq)
		if err != nil {
			e.cfg.metrics.onSendErr()
		}
		// Only a closed transport is terminal. Anything else (e.g. a
		// transient ENOBUFS/EMSGSIZE from the UDP socket) drops this frame
		// exactly like channel loss — the protocols already retransmit —
		// so the endpoint counts it and keeps stepping.
		if err != nil && errors.Is(err, transport.ErrClosed) {
			return false
		}
	case wire.Write:
		e.mu.Lock()
		prevWrite := e.lastWrite
		e.y = append(e.y, a.M)
		e.writes++
		e.lastWrite = now
		e.lastProgress = now
		e.record(now, e.auto.Name(), act, 0)
		var tape []byte
		if e.tapeKey != "" {
			tape = encodeTape(e.y)
		}
		e.mu.Unlock()
		if tape != nil {
			// Durable before observable: the tape reaches stable storage
			// before the write is announced through notify/metrics, so a
			// crash can lose an unannounced write but never expose one it
			// might roll back — write(m) stays irrevocable.
			e.cfg.Store.Save(e.tapeKey, tape)
		}
		e.cfg.metrics.onWrite(now, e.id, prevWrite, e.start)
		select {
		case e.notify <- struct{}{}:
		default:
		}
	default:
		e.mu.Lock()
		e.record(now, e.auto.Name(), act, 0)
		e.mu.Unlock()
	}
	return true
}

// snapshot captures the endpoint's counters; withTrace also copies the
// recorded trace and output tape.
func (e *endpoint) snapshot(withTrace bool) Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := Report{
		ID: e.id, Role: e.role, Start: e.start,
		Sends: e.sends, Deliveries: e.deliveries, Writes: e.writes,
		Rejected: e.rejected, Overflow: e.overflow,
		SendErrors: e.sendErrs,
		LastSend:   e.lastSend, LastWrite: e.lastWrite,
		Resumed: e.resumed,
		Evicted: e.evicted, Wedged: e.wedged, Shed: e.shed, Resyncs: e.resyncs,
		Finished:     e.finished,
		TraceDropped: e.traceDropped,
	}
	if e.lastErr != nil {
		r.Err = e.lastErr.Error()
	}
	r.Y = append([]wire.Bit(nil), e.y...)
	if withTrace {
		r.Trace = append([]timed.Event(nil), e.trace...)
	}
	return r
}

// markFinished flags the endpoint's loop as exited (set by the owner
// right after the goroutine returns).
func (e *endpoint) markFinished() {
	e.mu.Lock()
	e.finished = true
	e.mu.Unlock()
}
