package session

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Server is the receiver side of the mux: it demultiplexes t->r frames by
// session ID, spawns a fresh receiver automaton per new session, drives
// each off the shared clock, and evicts sessions that go idle.
type Server struct {
	cfg  Config
	done chan struct{}
	wg   sync.WaitGroup
	seq  atomic.Int64

	mu        sync.Mutex
	active    map[uint32]*endpoint
	finished  map[uint32]Report
	retiring  map[uint32]bool // shed victims between slot release and retirement
	refused   int             // frames of new sessions dropped at the MaxSessions cap
	late      int             // frames of already-finished sessions dropped at the tombstone
	shed      int             // sessions force-retired by the overload policy
	closeOnce sync.Once
}

// NewServer validates the config and starts the demux loop.
func NewServer(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		done:     make(chan struct{}),
		active:   make(map[uint32]*endpoint),
		finished: make(map[uint32]Report),
		retiring: make(map[uint32]bool),
	}
	s.instrument(cfg.metrics)
	s.wg.Add(1)
	go s.demux()
	return s, nil
}

// demux routes every delivered t->r frame to its session's inbox,
// spawning receiver sessions on first contact.
func (s *Server) demux() {
	defer s.wg.Done()
	del := s.cfg.Transport.Deliveries(wire.TtoR)
	for {
		select {
		case <-s.done:
			return
		case f, ok := <-del:
			if !ok {
				return
			}
			s.route(f)
		}
	}
}

func (s *Server) route(f wire.Frame) {
	s.mu.Lock()
	ep := s.active[f.Session]
	if ep == nil {
		// The finished map doubles as a tombstone set: frames of a
		// retired session can still be in flight (retransmissions up to D
		// ticks behind the eviction) and must not re-spawn a ghost
		// receiver under the same ID — a ghost would pin a MaxSessions
		// slot until idle eviction (forever with IdleTicks disabled) and
		// shadow the real session's report.
		if _, done := s.finished[f.Session]; done {
			s.late++
			s.mu.Unlock()
			s.cfg.metrics.onLate(s.cfg.Clock.Now(), f.Session)
			return
		}
		// A shed victim's slot is already free but its report is not in
		// finished yet (its goroutine is still winding down): without this
		// check an in-flight frame would respawn a ghost under the same ID
		// and shadow the real report.
		if s.retiring[f.Session] {
			s.late++
			s.mu.Unlock()
			s.cfg.metrics.onLate(s.cfg.Clock.Now(), f.Session)
			return
		}
		// The control plane's refuse gate runs before the capacity check:
		// at the escalation ladder's refuse level and above, brand-new
		// sessions are turned away even while slots remain, so the server
		// sheds *load* before it ever has to shed *sessions*.
		if s.cfg.Admission != nil && !s.cfg.Admission.AdmitServer(f.Session) {
			s.refused++
			s.mu.Unlock()
			s.cfg.metrics.onRefuse(s.cfg.Clock.Now(), f.Session)
			return
		}
		if len(s.active) >= s.cfg.MaxSessions {
			if s.cfg.Shed != ShedEvictOldestIdle || !s.shedOldestLocked() {
				s.refused++
				s.mu.Unlock()
				s.cfg.metrics.onRefuse(s.cfg.Clock.Now(), f.Session)
				return
			}
		}
		var err error
		ep, err = s.spawnLocked(f.Session)
		if err != nil {
			s.refused++
			s.mu.Unlock()
			s.cfg.metrics.onRefuse(s.cfg.Clock.Now(), f.Session)
			return
		}
	}
	s.mu.Unlock()
	ep.deliver(f)
}

// spawnLocked builds a receiver endpoint for a new session and starts its
// loop. Callers hold s.mu.
func (s *Server) spawnLocked(id uint32) (*endpoint, error) {
	// The pair builder needs an input only for the transmitter half,
	// which the server discards; the receiver starts empty.
	_, r, err := buildPair(s.cfg, id, nil)
	if err != nil {
		return nil, fmt.Errorf("session: server pair for session %d: %w", id, err)
	}
	ep := newEndpoint(s.cfg, id, "receiver", r, &s.seq)
	if s.cfg.Store != nil {
		ep.tapeKey = tapeKey(id)
		// A persisted tape means a previous incarnation of this process
		// already wrote a durable prefix of the session's output: resume
		// it, so the recovery handshake reports the right count and the
		// transmitter rewinds instead of resending delivered messages.
		if data, ok := s.cfg.Store.Load(ep.tapeKey); ok && len(data) > 0 {
			ep.resumeTape(decodeTape(data))
			s.cfg.metrics.onResume()
		}
	}
	s.active[id] = ep
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ep.loop(s.done, true)
		ep.markFinished()
		s.retire(ep)
	}()
	return ep, nil
}

// retire moves an exited session from the active map to the finished
// reports. An already-recorded report for the ID is never overwritten —
// the first retirement under an ID is the authoritative one.
func (s *Server) retire(ep *endpoint) {
	rep := ep.snapshot(true)
	s.mu.Lock()
	delete(s.active, ep.id)
	delete(s.retiring, ep.id)
	if _, ok := s.finished[ep.id]; !ok {
		s.finished[ep.id] = rep
	}
	s.mu.Unlock()
	if s.cfg.Admission != nil {
		s.cfg.Admission.Forget(ep.id)
	}
}

// shedOldestLocked force-retires the active session that has gone
// longest without traffic, freeing its slot for a newcomer. Callers hold
// s.mu; returns false when there is nothing safe to shed. The victim's
// slot is released immediately — its goroutine retires it in the
// background, with the retiring set holding the tombstone until the
// report lands in finished.
func (s *Server) shedOldestLocked() bool {
	var (
		victim *endpoint
		oldest int64
	)
	for _, ep := range s.active {
		ep.mu.Lock()
		la := ep.lastActivity
		ep.mu.Unlock()
		if victim == nil || la < oldest {
			victim, oldest = ep, la
		}
	}
	if victim == nil {
		return false
	}
	victim.markShed()
	victim.halt()
	delete(s.active, victim.id)
	s.retiring[victim.id] = true
	s.shed++
	return true
}

// ShedOldest force-retires the longest-idle active session on demand —
// the control plane's evict-oldest-idle escalation rung, the same move
// ShedEvictOldestIdle makes at the MaxSessions high-water mark but
// triggered by measured pressure instead of a full table. Returns false
// when there is nothing to shed.
func (s *Server) ShedOldest() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shedOldestLocked()
}

// RetireStalled force-retires the active session whose output tape has
// gone longest without growth — the control plane's last escalation rung,
// a watchdog force-retire on demand. The victim is marked Wedged and its
// slot released immediately; in-flight frames die at the retiring
// tombstone. Returns false when no session is active.
func (s *Server) RetireStalled() bool {
	s.mu.Lock()
	var (
		victim *endpoint
		oldest int64
	)
	for _, ep := range s.active {
		ep.mu.Lock()
		lp := ep.lastProgress
		ep.mu.Unlock()
		if victim == nil || lp < oldest {
			victim, oldest = ep, lp
		}
	}
	if victim == nil {
		s.mu.Unlock()
		return false
	}
	delete(s.active, victim.id)
	s.retiring[victim.id] = true
	s.mu.Unlock()
	victim.markWedged()
	victim.halt()
	return true
}

// lookup returns the active endpoint for a session, if any.
func (s *Server) lookup(id uint32) *endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active[id]
}

// ActiveCount returns the number of currently live receiver sessions —
// the control plane's occupancy sensor.
func (s *Server) ActiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// Snapshot returns the current report for a session — active or finished.
func (s *Server) Snapshot(id uint32) (Report, bool) {
	if ep := s.lookup(id); ep != nil {
		return ep.snapshot(true), true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, ok := s.finished[id]
	return rep, ok
}

// Reports returns a report per session the server has ever run, finished
// sessions first.
func (s *Server) Reports() []Report {
	s.mu.Lock()
	eps := make([]*endpoint, 0, len(s.active))
	out := make([]Report, 0, len(s.finished)+len(s.active))
	for _, rep := range s.finished {
		out = append(out, rep)
	}
	for _, ep := range s.active {
		eps = append(eps, ep)
	}
	s.mu.Unlock()
	for _, ep := range eps {
		out = append(out, ep.snapshot(true))
	}
	return out
}

// Refused counts frames dropped because a new session would have
// exceeded MaxSessions (or its pair could not be built).
func (s *Server) Refused() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refused
}

// Late counts frames dropped because their session had already finished
// — in-flight stragglers of retired sessions, never respawned.
func (s *Server) Late() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.late
}

// Shed counts sessions force-retired by the overload policy to admit
// newcomers.
func (s *Server) Shed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shed
}

// WaitWrites blocks until session id has written at least n messages,
// returning its light report. It tolerates the session not existing yet
// (frames may still be in flight).
func (s *Server) WaitWrites(ctx context.Context, id uint32, n int) (Report, error) {
	poll := time.NewTicker(2 * time.Millisecond)
	defer poll.Stop()
	for {
		var (
			rep    Report
			known  bool
			notify chan struct{}
		)
		if ep := s.lookup(id); ep != nil {
			rep = ep.snapshot(false)
			known = true
			notify = ep.notify
		} else if r, ok := func() (Report, bool) {
			s.mu.Lock()
			defer s.mu.Unlock()
			r, ok := s.finished[id]
			return r, ok
		}(); ok {
			rep = r
			known = true
		}
		if known && rep.Writes >= n {
			return rep, nil
		}
		if known && rep.Finished {
			return rep, fmt.Errorf("session: session %d ended with %d of %d writes", id, rep.Writes, n)
		}
		if notify == nil {
			notify = make(chan struct{}) // unknown session: pure polling
		}
		select {
		case <-ctx.Done():
			return rep, ctx.Err()
		case <-s.done:
			return rep, fmt.Errorf("session: server closed waiting on session %d", id)
		case <-notify:
		case <-poll.C:
		}
	}
}

// Evict stops a session's endpoint (if active) and waits for it to
// retire, returning its final report.
func (s *Server) Evict(id uint32) (Report, bool) {
	ep := s.lookup(id)
	if ep == nil {
		s.mu.Lock()
		rep, ok := s.finished[id]
		s.mu.Unlock()
		return rep, ok
	}
	ep.halt()
	select {
	case <-ep.stopped:
	case <-s.done:
	}
	s.mu.Lock()
	rep, ok := s.finished[id]
	s.mu.Unlock()
	if !ok {
		// Retirement may still be in flight; fall back to a live snapshot.
		return ep.snapshot(true), true
	}
	return rep, ok
}

// Aggregate sums counters across every session seen so far.
func (s *Server) Aggregate() Aggregate {
	return aggregate(s.cfg, s.Reports(), s.Refused(), s.Late(), s.Shed())
}

// Close stops the demux loop and every session goroutine, then waits for
// them. It does not close the transport (the caller owns it).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.done)
		s.wg.Wait()
	})
	return nil
}

// Aggregate sums per-session counters into one serving-side view.
type Aggregate struct {
	// Proto and Transport label the stack.
	Proto, Transport string
	// Sessions counts sessions ever seen; Active those still live;
	// Evicted those torn down idle; Wedged those force-retired by the
	// progress watchdog; SessionsShed those force-retired by the
	// overload policy; Resyncs sums watchdog-forced resynchronizations.
	Sessions, Active, Evicted, Wedged, SessionsShed, Resyncs int
	// Refused counts new-session frames dropped at the MaxSessions cap;
	// Late counts in-flight frames of already-finished sessions dropped
	// at the tombstone; Shed counts overload evictions performed (server
	// side only).
	Refused, Late, Shed int
	// Sends, Deliveries, Writes, Rejected, Overflow and SendErrors sum
	// the endpoint counters.
	Sends, Deliveries, Writes, Rejected, Overflow, SendErrors int
}

func aggregate(cfg Config, reports []Report, refused, late, shed int) Aggregate {
	agg := Aggregate{Proto: cfg.Solution.String(), Transport: cfg.Transport.Name(), Refused: refused, Late: late, Shed: shed}
	for _, r := range reports {
		agg.Sessions++
		if !r.Finished {
			agg.Active++
		}
		if r.Evicted {
			agg.Evicted++
		}
		if r.Wedged {
			agg.Wedged++
		}
		if r.Shed {
			agg.SessionsShed++
		}
		agg.Resyncs += r.Resyncs
		agg.Sends += r.Sends
		agg.Deliveries += r.Deliveries
		agg.Writes += r.Writes
		agg.Rejected += r.Rejected
		agg.Overflow += r.Overflow
		agg.SendErrors += r.SendErrors
	}
	return agg
}

// String renders the aggregate as one report line.
func (a Aggregate) String() string {
	return fmt.Sprintf("%s over %s: %d sessions (%d active, %d evicted, %d wedged, %d shed, %d refused, %d late), %d sends (%d errored), %d deliveries, %d writes, %d rejected, %d overflow",
		a.Proto, a.Transport, a.Sessions, a.Active, a.Evicted, a.Wedged, a.Shed, a.Refused, a.Late,
		a.Sends, a.SendErrors, a.Deliveries, a.Writes, a.Rejected, a.Overflow)
}
