package session

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

// Pipe bundles a Server and a Dialer over one transport: the in-process
// serving harness used by cmd/rstpserve and the load-test examples. Each
// Transfer runs one full session — open, transmit, wait for the
// receiver's output tape to reach |X|, verify, evict — and reports both
// endpoints.
type Pipe struct {
	// Server is the receiver side.
	Server *Server
	// Dialer is the transmitter side.
	Dialer *Dialer
	cfg    Config
}

// NewPipe starts a Server and a Dialer sharing cfg and its transport.
func NewPipe(cfg Config) (*Pipe, error) {
	srv, err := NewServer(cfg)
	if err != nil {
		return nil, err
	}
	dlr, err := NewDialer(cfg)
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &Pipe{Server: srv, Dialer: dlr, cfg: cfg}, nil
}

// TransferResult reports one end-to-end session.
type TransferResult struct {
	// ID is the session ID.
	ID uint32
	// X is the input sequence.
	X []wire.Bit
	// TX and RX are the final endpoint reports (TX always present; RX
	// zero-valued if the server never saw the session).
	TX, RX Report
	// Completed reports Y = X: every message written, none wrong.
	Completed bool
	// Violation is "" when RX's output tape is a prefix of X, else the
	// first prefix violation — the safety condition that must hold even
	// for cancelled or faulted sessions.
	Violation string
}

// Effort is the session's effort estimate in ticks per message:
// t(last-send)/|Y| measured from the session's start tick.
func (r TransferResult) Effort() float64 {
	if r.RX.Writes == 0 || r.TX.LastSend == 0 {
		return 0
	}
	return float64(r.TX.LastSend-r.TX.Start) / float64(r.RX.Writes)
}

// Transfer runs one session end to end: it opens a transmitter-side
// session for x (blocking on backpressure), waits until the server's
// session has written |x| messages or the context is done, verifies the
// prefix invariant and completion, and tears both endpoints down. The
// result is returned even on error (with whatever state was reached), so
// callers can still check safety after a cancellation.
func (p *Pipe) Transfer(ctx context.Context, x []wire.Bit) (TransferResult, error) {
	return p.transfer(ctx, 0, x)
}

// TransferID is Transfer under a caller-chosen session ID — the restart
// path: re-running a transfer under the ID a previous process used
// makes both sides resume that session's durable state from
// Config.Store instead of starting over.
func (p *Pipe) TransferID(ctx context.Context, id uint32, x []wire.Bit) (TransferResult, error) {
	if id == 0 {
		return TransferResult{X: append([]wire.Bit(nil), x...)}, fmt.Errorf("session: TransferID requires a nonzero session id")
	}
	return p.transfer(ctx, id, x)
}

func (p *Pipe) transfer(ctx context.Context, id uint32, x []wire.Bit) (TransferResult, error) {
	res := TransferResult{X: append([]wire.Bit(nil), x...)}
	var (
		conn *Conn
		err  error
	)
	if id == 0 {
		conn, err = p.Dialer.Start(ctx, x)
	} else {
		conn, err = p.Dialer.StartID(ctx, id, x)
	}
	if err != nil {
		return res, err
	}
	res.ID = conn.ID()
	rx, waitErr := p.Server.WaitWrites(ctx, conn.ID(), len(x))
	conn.Close()
	res.TX = conn.Report()
	// Evict the receiver session and take its final report, which
	// includes the trace (WaitWrites returns a light snapshot).
	if final, ok := p.Server.Evict(conn.ID()); ok {
		rx = final
	}
	res.RX = rx
	res.Violation = PrefixCheck(x, rx.Y)
	res.Completed = res.Violation == "" && rx.Writes == len(x)
	return res, waitErr
}

// SessionRun merges a result's transmitter and receiver traces into one
// sim.Run-compatible timed execution, times shifted to the session's
// start, so the simulator's statistics machinery (sim.Collect) applies
// unchanged to served sessions.
func (p *Pipe) SessionRun(res TransferResult) *sim.Run {
	events := make([]timed.Event, 0, len(res.TX.Trace)+len(res.RX.Trace))
	events = append(events, res.TX.Trace...)
	events = append(events, res.RX.Trace...)
	sort.Slice(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		return events[i].Seq < events[j].Seq
	})
	t0 := res.TX.Start
	if res.RX.Start != 0 && res.RX.Start < t0 {
		t0 = res.RX.Start
	}
	run := &sim.Run{Reason: sim.StopCondition}
	for i := range events {
		e := events[i]
		e.Time -= t0
		e.Seq = int64(i)
		switch e.Action.(type) {
		case wire.Send:
			run.SendCount++
		case wire.Write:
			run.WriteCount++
		}
		if e.Time > run.Now {
			run.Now = e.Time
		}
		run.Trace = append(run.Trace, e)
	}
	return run
}

// SessionStats computes the simulator's per-run statistics over a served
// session's merged trace.
func (p *Pipe) SessionStats(res TransferResult) sim.Stats {
	return sim.Collect(p.SessionRun(res), res.TX.Role2Actor(), res.RX.Role2Actor())
}

// Role2Actor maps the endpoint's role to the trace actor name used by
// the protocol automata ("t" for transmitters, "r" for receivers).
func (r Report) Role2Actor() string {
	if r.Role == "transmitter" {
		return "t"
	}
	return "r"
}

// Close tears down the dialer, the server, and then the transport.
func (p *Pipe) Close() error {
	p.Dialer.Close()
	p.Server.Close()
	return p.cfg.Transport.Close()
}
