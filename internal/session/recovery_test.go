package session

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/rstp"
	"repro/internal/transport"
	"repro/internal/wire"
)

// stabilizedOver builds the serving recovery stack: a stabilized beta
// checkpointing into store, in Recover mode (the -store-dir
// configuration: endpoints always restart from whatever the store
// holds; an empty store reads as "know nothing" and costs one handshake
// round).
func stabilizedOver(t *testing.T, store rstp.StateStore) rstp.StabilizedSolution {
	t.Helper()
	return rstp.Stabilize(mustBeta(t, 4), rstp.StabilizeOptions{Store: store, Recover: true})
}

// openJournal opens a journal store in dir over the given filesystem,
// without O_SYNC (the tests' durability faults are injected, not real).
func openJournal(t *testing.T, dir string, fs journal.FS) *journal.Store {
	t.Helper()
	st, err := journal.Open(dir, journal.Options{FS: fs})
	if err != nil {
		t.Fatalf("journal.Open(%s): %v", dir, err)
	}
	return st
}

// recoveryPipe assembles a Pipe whose sessions persist into store.
func recoveryPipe(t *testing.T, store rstp.StateStore, reg *obs.Registry) *Pipe {
	t.Helper()
	sol := stabilizedOver(t, store)
	clock := transport.NewClock(50 * time.Microsecond)
	mem := transport.NewMem(clock, transport.MemOptions{D: testParams().D, Buffer: 1 << 14})
	cfg := testConfig(t, sol, mem, clock)
	cfg.Store = store
	cfg.Obs = reg
	pipe, err := NewPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pipe
}

// TestSessionStoreKeysNamespaced runs one persistent transfer end to end
// and checks the durable layout: per-session checkpoints under "s<ID>/"
// and the output tape under "s<ID>/y" holding exactly X.
func TestSessionStoreKeysNamespaced(t *testing.T) {
	store := openJournal(t, t.TempDir(), journal.DiskFS{NoSync: true})
	defer store.Close()
	pipe := recoveryPipe(t, store, nil)
	defer pipe.Close()

	x := inputFor(t, mustBeta(t, 4), 4, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := pipe.TransferID(ctx, 1, x)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if !res.Completed {
		t.Fatalf("incomplete: writes=%d of %d, violation=%q", res.RX.Writes, len(x), res.Violation)
	}
	for _, key := range []string{"s1/t", "s1/r", "s1/y"} {
		if _, ok := store.Load(key); !ok {
			t.Errorf("store missing key %q after a persistent transfer", key)
		}
	}
	tape, _ := store.Load("s1/y")
	if len(tape) != len(x) {
		t.Fatalf("durable tape holds %d messages, want %d", len(tape), len(x))
	}
	for i, c := range tape {
		if wire.Bit(c) != x[i] {
			t.Fatalf("durable tape[%d] = %d, want %v", i, c, x[i])
		}
	}
}

// crashRestartOnce is one cell of the sweep: serve session id=1 against
// a journal in dir over fs, stop the whole stack once the receiver has
// written at least minWrites messages (an abrupt stop: no eviction, no
// drain — the in-process analogue of SIGKILL, with fs deciding what
// survived), then restart against the same directory on a clean
// filesystem and finish the transfer. Returns the restarted result.
func crashRestartOnce(t *testing.T, dir string, fs journal.FS, x []wire.Bit, minWrites int) TransferResult {
	t.Helper()

	// Incarnation one: killed mid-transfer.
	store1 := openJournal(t, dir, fs)
	pipe1 := recoveryPipe(t, store1, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	conn, err := pipe1.Dialer.StartID(ctx, 1, x)
	if err != nil {
		t.Fatalf("first incarnation start: %v", err)
	}
	if _, err := pipe1.Server.WaitWrites(ctx, 1, minWrites); err != nil {
		t.Fatalf("first incarnation never reached %d writes: %v", minWrites, err)
	}
	_ = conn
	pipe1.Close()
	store1.Close()

	// Incarnation two: same directory, clean filesystem, same session ID.
	store2 := openJournal(t, dir, journal.DiskFS{NoSync: true})
	defer store2.Close()
	pipe2 := recoveryPipe(t, store2, nil)
	defer pipe2.Close()
	res, err := pipe2.TransferID(ctx, 1, x)
	if err != nil {
		t.Fatalf("restarted transfer: %v", err)
	}
	return res
}

// TestCrashRestartSweep is the issue's acceptance sweep, in-process: a
// serving stack is killed mid-transfer and restarted against the same
// store directory across 32 seeds. A quarter of the seeds additionally
// crash the journal's own write stream mid-record (FaultFS CrashAtByte),
// so recovery must also replay past a torn checkpoint tail. Every
// restart must finish with zero prefix violations and Y = X.
func TestCrashRestartSweep(t *testing.T) {
	seeds := int64(32)
	if testing.Short() {
		seeds = 8
	}
	beta := mustBeta(t, 4)
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			x := inputFor(t, beta, 4, seed)
			var fs journal.FS = journal.DiskFS{NoSync: true}
			if seed%4 == 0 {
				// Tear the journal itself mid-write at a seed-dependent
				// offset: the checkpoint being saved when the "process
				// died" is torn on disk, and everything after it is lost.
				fs = journal.NewFaultFS(journal.DiskFS{NoSync: true},
					journal.Plan{Seed: seed, CrashAtByte: 64 + seed*53})
			}
			res := crashRestartOnce(t, t.TempDir(), fs, x, len(x)/2)
			if res.Violation != "" {
				t.Fatalf("prefix violation after restart: %s", res.Violation)
			}
			if !res.Completed {
				t.Fatalf("restarted session incomplete: writes=%d of %d", res.RX.Writes, len(x))
			}
			if got := wire.BitsToString(res.RX.Y); got != wire.BitsToString(x) {
				t.Fatalf("restarted Y != X:\nY %s\nX %s", got, wire.BitsToString(x))
			}
		})
	}
}

// TestCrashRestartResumesTape pins the mechanism, not just the outcome:
// after a clean-journal kill with at least half the tape written, the
// restarted receiver must RESUME (Report.Resumed > 0) rather than start
// over, and the resumed prefix must never be rewritten.
func TestCrashRestartResumesTape(t *testing.T) {
	beta := mustBeta(t, 4)
	x := inputFor(t, beta, 4, 3)
	res := crashRestartOnce(t, t.TempDir(), journal.DiskFS{NoSync: true}, x, len(x)/2)
	if res.Violation != "" || !res.Completed {
		t.Fatalf("restart failed: completed=%v violation=%q", res.Completed, res.Violation)
	}
	if res.RX.Resumed < len(x)/2 {
		t.Fatalf("restarted receiver resumed %d messages, want >= %d (did recovery start over?)",
			res.RX.Resumed, len(x)/2)
	}
	if res.RX.Writes != len(x) {
		t.Fatalf("restarted writes = %d, want %d", res.RX.Writes, len(x))
	}
}

// TestCrashRestartCompletedSession restarts a session whose transfer had
// already fully completed before the kill: the recovery handshake must
// converge on "nothing to do" without rewriting or extending the tape.
func TestCrashRestartCompletedSession(t *testing.T) {
	beta := mustBeta(t, 4)
	x := inputFor(t, beta, 2, 9)
	res := crashRestartOnce(t, t.TempDir(), journal.DiskFS{NoSync: true}, x, len(x))
	if res.Violation != "" || !res.Completed {
		t.Fatalf("restart of completed session failed: completed=%v violation=%q writes=%d",
			res.Completed, res.Violation, res.RX.Writes)
	}
	if res.RX.Resumed != len(x) {
		t.Fatalf("resumed %d, want the full tape %d", res.RX.Resumed, len(x))
	}
}

// TestConcurrentSessionsSharedJournal hammers one journal store from
// many concurrent persistent sessions — the -race guard for the serving
// configuration (satellite: shared-store concurrency).
func TestConcurrentSessionsSharedJournal(t *testing.T) {
	store := openJournal(t, t.TempDir(), journal.DiskFS{NoSync: true})
	defer store.Close()
	reg := obs.NewRegistry()
	pipe := recoveryPipe(t, store, reg)
	defer pipe.Close()

	beta := mustBeta(t, 4)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := inputFor(t, beta, 2, int64(100+i))
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			res, err := pipe.Transfer(ctx, x)
			if err != nil {
				errs <- fmt.Errorf("session %d: %w", i, err)
				return
			}
			if !res.Completed {
				errs <- fmt.Errorf("session %d incomplete: %q", i, res.Violation)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := store.Stats(); st.Keys < 3*n {
		t.Errorf("store holds %d keys, want >= %d (t, r, y per session)", st.Keys, 3*n)
	}
	if store.LastErr() != nil {
		t.Errorf("journal error under concurrent sessions: %v", store.LastErr())
	}
}

// TestStartIDCollisionAndAllocator covers the explicit-ID path: reusing
// an open ID fails, and the automatic allocator never collides with
// explicitly started sessions.
func TestStartIDCollisionAndAllocator(t *testing.T) {
	store := openJournal(t, t.TempDir(), journal.DiskFS{NoSync: true})
	defer store.Close()
	pipe := recoveryPipe(t, store, nil)
	defer pipe.Close()

	beta := mustBeta(t, 4)
	x := inputFor(t, beta, 2, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	conn, err := pipe.Dialer.StartID(ctx, 7, x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Dialer.StartID(ctx, 7, x); err == nil {
		t.Fatal("second StartID under an open ID must fail")
	}
	if _, err := pipe.Dialer.StartID(ctx, 0, x); err == nil {
		t.Fatal("StartID(0) must fail")
	}
	auto, err := pipe.Dialer.Start(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if auto.ID() <= 7 {
		t.Fatalf("allocator issued %d after explicit 7 — collision risk", auto.ID())
	}
	auto.Close()
	conn.Close()
}

// TestResumedMetric checks the observability wiring: a restarted
// session increments rstp_sessions_resumed_total.
func TestResumedMetric(t *testing.T) {
	dir := t.TempDir()
	beta := mustBeta(t, 4)
	x := inputFor(t, beta, 4, 13)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	store1 := openJournal(t, dir, journal.DiskFS{NoSync: true})
	pipe1 := recoveryPipe(t, store1, nil)
	conn, err := pipe1.Dialer.StartID(ctx, 1, x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe1.Server.WaitWrites(ctx, 1, len(x)/2); err != nil {
		t.Fatal(err)
	}
	_ = conn
	pipe1.Close()
	store1.Close()

	store2 := openJournal(t, dir, journal.DiskFS{NoSync: true})
	defer store2.Close()
	reg := obs.NewRegistry()
	pipe2 := recoveryPipe(t, store2, reg)
	defer pipe2.Close()
	if _, err := pipe2.TransferID(ctx, 1, x); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["rstp_sessions_resumed_total"]; got != 1 {
		t.Fatalf("rstp_sessions_resumed_total = %d, want 1", got)
	}
}
