package rateless

import (
	"bytes"
	"testing"

	"repro/internal/wire"
)

// FuzzRatelessDecode: the coded-symbol and decode-ack codecs must never
// panic on arbitrary bytes, every accepted record must re-encode to
// exactly the input buffer (the codec is canonical), and any record
// that parses — however hostile its field values — must pass through a
// live peeling decoder without panicking. The checked-in corpus under
// testdata/fuzz mirrors FuzzParseFrame's: valid records, checksum and
// header mutations, truncations.
func FuzzRatelessDecode(f *testing.F) {
	// Valid records across the field ranges the automata use.
	for _, cs := range []wire.CodedSymbol{
		{Block: 0, Index: 0, Value: 0},
		{Block: 3, Index: 5, Value: 3},
		{Block: 1 << 20, Index: 1 << 30, Value: 2},
		{Block: ^uint32(0), Index: ^uint32(0), Value: -1 << 40}, // parses; the decoder must reject, not panic
	} {
		f.Add(wire.AppendCodedSymbol(nil, cs))
	}
	f.Add(wire.AppendDecodeAck(nil, wire.DecodeAckMsg{Next: 0}))
	f.Add(wire.AppendDecodeAck(nil, wire.DecodeAckMsg{Next: 7}))
	// Truncations and junk.
	f.Add([]byte{})
	f.Add([]byte{'C', 1})
	f.Add([]byte("not a coded record, just bytes"))
	// Every one-byte flip of a well-formed symbol record: flips in magic,
	// version or checksum land in the malformed bucket; flips in block,
	// index or value must either fail the checksum or round-trip.
	base := wire.AppendCodedSymbol(nil, wire.CodedSymbol{Block: 9, Index: 11, Value: 1})
	for i := range base {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0x41
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		if cs, err := wire.ParseCodedSymbol(buf); err == nil {
			if out := wire.AppendCodedSymbol(nil, cs); !bytes.Equal(out, buf) {
				t.Fatalf("coded symbol round trip mismatch:\n in %x\nout %x", buf, out)
			}
			// Whatever parsed must be safe to decode: a hostile value or a
			// wild index is an error or a no-op, never a panic.
			code, err := NewCode(4, 6, BlockSeed(1, cs.Block))
			if err != nil {
				t.Fatal(err)
			}
			dec := NewDecoder(code)
			if _, err := dec.Add(cs.Index, cs.Value); err == nil {
				// Accepted symbols keep the decoder consistent: feed the
				// systematic prefix and the block must still complete.
				for i := 0; i < code.N(); i++ {
					if _, err := dec.Add(uint32(i), 0); err != nil {
						t.Fatalf("systematic symbol %d rejected after fuzz symbol: %v", i, err)
					}
				}
				if !dec.Done() {
					t.Fatalf("block not decoded after full systematic prefix (fuzz symbol %+v)", cs)
				}
			}
		}
		if a, err := wire.ParseDecodeAck(buf); err == nil {
			if out := wire.AppendDecodeAck(nil, a); !bytes.Equal(out, buf) {
				t.Fatalf("decode ack round trip mismatch:\n in %x\nout %x", buf, out)
			}
		}
	})
}
