package rateless

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/rstp"
	"repro/internal/wire"
)

// testParams gives δ1 = 6: six source symbols per block, and with k = 4
// a block carries ⌊log₂ μ_4(6)⌋ = 6 bits.
var testParams = rstp.Params{C1: 1, C2: 1, D: 6}

func testOptions(seed int64) Options {
	return Options{Params: testParams, K: 4, Seed: seed}
}

func testInput(t *testing.T, o Options, blocks int) []wire.Bit {
	t.Helper()
	b, err := NewBuilder(o)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	rng := prng{state: mix(uint64(o.Seed) ^ 0x1234)}
	return wire.RandomBits(blocks*b.BlockBits(), rng.next)
}

// chanOpts models the lossy, reordering, corrupting channel between a
// transmitter and receiver stepped in lockstep.
type chanOpts struct {
	dropSym func(n int) bool     // drop the nth coded symbol (0-based)
	dropAck func(n int) bool     // drop the nth ack
	mutate  func(n int, recv *wire.Recv) // corrupt the nth symbol in flight
	reorder int                  // >0: hold up to this many symbols, deliver in seeded random order
	seed    uint64               // reorder randomness
}

// runPair drives one transmitter/receiver pair through the channel until
// the transmitter quiesces fully acked (or maxSteps elapse) and returns
// the bits the receiver wrote.
func runPair(t *testing.T, tx *Transmitter, rx *Receiver, o chanOpts, maxSteps int) []wire.Bit {
	t.Helper()
	var (
		written  []wire.Bit
		inflight []wire.Recv
		symN     int
		ackN     int
		rng      = prng{state: mix(o.seed ^ 0x5151)}
	)
	deliverSym := func(recv wire.Recv) {
		if rx.Classify(recv) != ioa.ClassInput {
			t.Fatalf("receiver rejects %v from its signature", recv)
		}
		if err := rx.Apply(recv); err != nil {
			t.Fatalf("receiver Apply(%v): %v", recv, err)
		}
	}
	flush := func(force bool) {
		for len(inflight) > 0 && (o.reorder == 0 || len(inflight) >= o.reorder || force) {
			i := 0
			if o.reorder > 0 {
				i = int(rng.next() % uint64(len(inflight)))
			}
			deliverSym(inflight[i])
			inflight = append(inflight[:i], inflight[i+1:]...)
		}
	}
	for step := 0; step < maxSteps; step++ {
		if act, ok := tx.NextLocal(); ok {
			if err := tx.Apply(act); err != nil {
				t.Fatalf("transmitter Apply(%v): %v", act, err)
			}
			if send, isSend := act.(wire.Send); isSend {
				n := symN
				symN++
				if o.dropSym == nil || !o.dropSym(n) {
					recv := wire.Recv{Dir: send.Dir, P: send.P, Payload: send.Payload}
					if o.mutate != nil {
						o.mutate(n, &recv)
					}
					inflight = append(inflight, recv)
				}
			}
		}
		flush(tx.Done())
		if act, ok := rx.NextLocal(); ok {
			if err := rx.Apply(act); err != nil {
				t.Fatalf("receiver Apply(%v): %v", act, err)
			}
			switch a := act.(type) {
			case wire.Write:
				written = append(written, a.M)
			case wire.Send:
				n := ackN
				ackN++
				if o.dropAck == nil || !o.dropAck(n) {
					recv := wire.Recv{Dir: a.Dir, P: a.P, Payload: a.Payload}
					if tx.Classify(recv) != ioa.ClassInput {
						t.Fatalf("transmitter rejects %v from its signature", recv)
					}
					if err := tx.Apply(recv); err != nil {
						t.Fatalf("transmitter Apply(%v): %v", recv, err)
					}
				}
			}
		}
		if tx.Done() && len(inflight) == 0 {
			break
		}
	}
	// Drain any queued writes and the final ack after the loop exits.
	for i := 0; i < maxSteps; i++ {
		act, ok := rx.NextLocal()
		if !ok {
			break
		}
		w, isWrite := act.(wire.Write)
		_, isSend := act.(wire.Send)
		if !isWrite && !isSend {
			break
		}
		if err := rx.Apply(act); err != nil {
			t.Fatalf("receiver Apply(%v): %v", act, err)
		}
		if isWrite {
			written = append(written, w.M)
		}
	}
	return written
}

func bitsEqual(a, b []wire.Bit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func newPair(t *testing.T, o Options, x []wire.Bit) (*Transmitter, *Receiver) {
	t.Helper()
	b, err := NewBuilder(o)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	tx, rx, err := b.NewPair(x)
	if err != nil {
		t.Fatalf("NewPair: %v", err)
	}
	return tx.(*Transmitter), rx.(*Receiver)
}

func TestCleanTransfer(t *testing.T) {
	o := testOptions(7)
	x := testInput(t, o, 10)
	tx, rx := newPair(t, o, x)
	got := runPair(t, tx, rx, chanOpts{}, 10_000)
	if !tx.Done() {
		t.Fatalf("transmitter not done: acked %d", tx.Acked())
	}
	if !bitsEqual(got, x) {
		t.Fatalf("wrote %s, want %s", wire.BitsToString(got), wire.BitsToString(x))
	}
	// A clean channel decodes every block from its systematic prefix:
	// the only overhead is the repair symbols streamed while acks are in
	// flight, bounded here by a few blocks' worth.
	sent := 0
	for _, idx := range tx.nextIdx {
		sent += int(idx) // next fresh index counts systematic + repairs per block
	}
	budget := 10*6 + 4*6
	if sent > budget {
		t.Fatalf("clean channel spent %d symbols, budget %d", sent, budget)
	}
}

func TestLossyTransfer(t *testing.T) {
	o := testOptions(11)
	x := testInput(t, o, 12)
	tx, rx := newPair(t, o, x)
	drop := prng{state: mix(41)}
	got := runPair(t, tx, rx, chanOpts{
		dropSym: func(int) bool { return drop.next()%100 < 20 },
		dropAck: func(int) bool { return drop.next()%100 < 20 },
	}, 100_000)
	if !tx.Done() {
		t.Fatalf("transmitter not done under 20%% loss: acked %d", tx.Acked())
	}
	if !bitsEqual(got, x) {
		t.Fatalf("wrote %s, want %s", wire.BitsToString(got), wire.BitsToString(x))
	}
}

func TestReorderedTransfer(t *testing.T) {
	o := testOptions(13)
	x := testInput(t, o, 8)
	tx, rx := newPair(t, o, x)
	got := runPair(t, rx2tx(tx), rx, chanOpts{reorder: 8, seed: 99}, 100_000)
	if !tx.Done() {
		t.Fatal("transmitter not done under reordering")
	}
	if !bitsEqual(got, x) {
		t.Fatalf("wrote %s, want %s", wire.BitsToString(got), wire.BitsToString(x))
	}
}

// rx2tx exists to keep runPair call sites uniform.
func rx2tx(tx *Transmitter) *Transmitter { return tx }

func TestCorruptedSymbolsDropped(t *testing.T) {
	o := testOptions(17)
	x := testInput(t, o, 8)
	tx, rx := newPair(t, o, x)
	got := runPair(t, tx, rx, chanOpts{
		mutate: func(n int, recv *wire.Recv) {
			switch n % 5 {
			case 1:
				// Flip a payload byte: the record checksum must catch it.
				b := []byte(recv.Payload)
				b[n%len(b)] ^= 0x41
				recv.Payload = string(b)
			case 3:
				// Corrupt the header symbol only: the cross-check against
				// the intact checksummed payload must catch it.
				recv.P.Symbol ^= 1
			}
		},
	}, 100_000)
	if !tx.Done() {
		t.Fatal("transmitter not done with 40% of symbols corrupted")
	}
	if !bitsEqual(got, x) {
		t.Fatalf("wrote %s, want %s", wire.BitsToString(got), wire.BitsToString(x))
	}
}

// TestLostAcksHealViaStaleSymbols drops most acks; the receiver's
// re-ack-on-stale-symbol path must still cut the stream.
func TestLostAcksHealViaStaleSymbols(t *testing.T) {
	o := testOptions(19)
	x := testInput(t, o, 6)
	tx, rx := newPair(t, o, x)
	got := runPair(t, tx, rx, chanOpts{
		dropAck: func(n int) bool { return n%4 != 3 }, // 75% ack loss
	}, 200_000)
	if !tx.Done() {
		t.Fatalf("transmitter not done under 75%% ack loss: acked %d", tx.Acked())
	}
	if !bitsEqual(got, x) {
		t.Fatalf("wrote %s, want %s", wire.BitsToString(got), wire.BitsToString(x))
	}
}

// TestDeterministicStream pins the per-block seeding: two pairs built
// from the same options and input emit identical coded streams.
func TestDeterministicStream(t *testing.T) {
	o := testOptions(23)
	x := testInput(t, o, 4)
	record := func() []wire.CodedSymbol {
		tx, _ := newPair(t, o, x)
		var out []wire.CodedSymbol
		for i := 0; i < 50; i++ {
			act, ok := tx.NextLocal()
			if !ok {
				break
			}
			if err := tx.Apply(act); err != nil {
				t.Fatalf("Apply: %v", err)
			}
			send := act.(wire.Send)
			cs, err := wire.ParseCodedSymbol([]byte(send.Payload))
			if err != nil {
				t.Fatalf("ParseCodedSymbol: %v", err)
			}
			out = append(out, cs)
		}
		return out
	}
	a, b := record(), record()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestTapeResume restarts the receiver mid-transfer at a bit count that
// is not a multiple of the block size: the resumed receiver must write
// exactly the remaining suffix, never re-writing durable bits.
func TestTapeResume(t *testing.T) {
	o := testOptions(29)
	b, err := NewBuilder(o)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	x := testInput(t, o, 8)
	blockBits := b.BlockBits()
	for _, durable := range []int{0, blockBits, blockBits*2 + 1, blockBits*5 - 2, len(x)} {
		tx, rx := newPair(t, o, x)
		rx.ResumeTape(int64(durable))
		got := runPair(t, tx, rx, chanOpts{}, 100_000)
		want := x[durable:]
		if !bitsEqual(got, want) {
			t.Fatalf("resume at %d: wrote %s, want %s", durable, wire.BitsToString(got), wire.BitsToString(want))
		}
		if !tx.Done() {
			t.Fatalf("resume at %d: transmitter not done", durable)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	o := testOptions(31)
	tx, rx := newPair(t, o, nil)
	if _, ok := tx.NextLocal(); ok {
		t.Fatal("empty transmitter has an enabled local action")
	}
	if !tx.Done() {
		t.Fatal("empty transmitter not done")
	}
	if rx.Written() != 0 {
		t.Fatal("empty receiver wrote bits")
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(Options{Params: testParams, K: 1}); err == nil {
		t.Fatal("accepted k=1")
	}
	if _, err := NewBuilder(Options{Params: rstp.Params{C1: 2, C2: 1, D: 6}, K: 4}); err == nil {
		t.Fatal("accepted c2 < c1")
	}
	b, err := NewBuilder(testOptions(1))
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	if _, _, err := b.NewPair(make([]wire.Bit, b.BlockBits()+1)); err == nil {
		t.Fatal("accepted |X| not a multiple of the block size")
	}
	if got := b.String(); got != "rateless(k=4)" {
		t.Fatalf("String() = %q", got)
	}
}

// TestBounds: the rateless loss-free effort must beat A^β(k)'s bound
// (no inter-burst wait) while staying above the active lower bound.
func TestBounds(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		up := UpperBound(testParams, k)
		if beta := rstp.BetaUpperBound(testParams, k); up >= beta {
			t.Fatalf("k=%d: rateless upper %.3f !< beta upper %.3f", k, up, beta)
		}
		if lo := LowerBound(testParams, k); up < lo {
			t.Fatalf("k=%d: rateless upper %.3f below active lower bound %.3f", k, up, lo)
		}
	}
}
