package rateless

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/chanmodel"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/rstp"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestSoakRatelessUnderLoss is the subsystem's serving soak: bare
// rateless sessions — no hardened wrapper anywhere — through sustained
// 15% loss on the axiom-enforcing in-memory transport. Every session
// must complete with zero prefix violations, and the registry must show
// every block of every session decoded: under loss the code pays in
// extra symbols per block, never in correctness. Short mode (PR CI)
// runs a smaller fleet; the nightly race job runs the full 128.
func TestSoakRatelessUnderLoss(t *testing.T) {
	sessions := 128
	if testing.Short() {
		sessions = 32
	}
	const blocksPerSession = 3

	p := rstp.Params{C1: 2, C2: 3, D: 12}
	reg := obs.NewRegistry()
	b, err := NewBuilder(Options{Params: p, K: 4, Seed: 23, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}

	clock := transport.NewClock(50 * time.Microsecond)
	// Sustained 15% loss for the entire run, both directions: coded
	// symbols and decode acks drop alike. The transmitter's repair stream
	// and the stale-symbol re-ack must heal everything without timers.
	const forever = int64(1) << 40
	delay := faults.NewPlan(23,
		&chanmodel.UniformRandom{D: p.D, Rand: rand.New(rand.NewSource(23))},
		faults.Fault{From: 0, To: forever, Drop: 0.15})
	trans := transport.NewMem(clock, transport.MemOptions{D: p.D, Delay: delay, Buffer: 1 << 15})

	pipe, err := session.NewPipe(session.Config{
		Solution:         b,
		Params:           p,
		Transport:        trans,
		Clock:            clock,
		MaxSessions:      sessions,
		IdleTicks:        -1,
		Obs:              reg,
		EffortLowerBound: LowerBound(p, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	bits := blocksPerSession * b.BlockBits()
	type outcome struct {
		res session.TransferResult
		err error
	}
	results := make(chan outcome, sessions)
	rng := rand.New(rand.NewSource(99))
	inputs := make([][]wire.Bit, sessions)
	for i := range inputs {
		inputs[i] = wire.RandomBits(bits, rng.Uint64)
	}
	for i := 0; i < sessions; i++ {
		go func(i int) {
			res, err := pipe.Transfer(ctx, inputs[i])
			results <- outcome{res: res, err: err}
		}(i)
	}
	violations, incomplete := 0, 0
	for i := 0; i < sessions; i++ {
		o := <-results
		if o.err != nil {
			t.Fatalf("transfer: %v", o.err)
		}
		if o.res.Violation != "" {
			violations++
			t.Errorf("session %d prefix violation: %s", o.res.ID, o.res.Violation)
		}
		if !o.res.Completed {
			incomplete++
		}
	}
	if violations != 0 {
		t.Fatalf("%d prefix violations under loss", violations)
	}
	if incomplete != 0 {
		t.Fatalf("%d of %d rateless sessions did not complete", incomplete, sessions)
	}

	affected, dropped, _, _, _ := delay.Stats()
	if affected == 0 || dropped == 0 {
		t.Fatalf("fault plan injected nothing: affected=%d dropped=%d", affected, dropped)
	}
	snap := reg.Snapshot()
	decoded := snap.Counters["rstp_rateless_blocks_decoded_total"]
	if want := int64(sessions * blocksPerSession); decoded != want {
		t.Fatalf("decoded %d blocks, want every one of %d", decoded, want)
	}
	received := snap.Counters["rstp_rateless_symbols_received_total"]
	source := int64(sessions*blocksPerSession) * int64(p.Delta1())
	if received < source {
		t.Fatalf("decoded %d blocks from %d distinct symbols, fewer than the %d source symbols", decoded, received, source)
	}
	t.Logf("%d sessions complete under 15%% loss: dropped=%d of %d affected; %d blocks decoded from %d distinct symbols (overhead %.2fx), stale=%d acks=%d",
		sessions, dropped, affected, decoded, received,
		float64(received)/float64(source),
		snap.Counters["rstp_rateless_symbols_stale_total"],
		snap.Counters["rstp_rateless_acks_sent_total"])
}
