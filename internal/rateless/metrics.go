package rateless

import "repro/internal/obs"

// metrics is the subsystem's bridge into the shared obs registry, built
// once per Builder and shared by every pair it spawns. Every hook is
// safe on a nil receiver — an uninstrumented stack pays one nil check.
type metrics struct {
	symbolsSent     *obs.Counter
	symbolsReceived *obs.Counter
	symbolsStale    *obs.Counter
	symbolsCorrupt  *obs.Counter
	blocksDecoded   *obs.Counter
	acksSent        *obs.Counter

	// symbolsPerBlock is the number of distinct coded symbols the
	// receiver absorbed before a block decoded — n exactly on a clean
	// channel (the systematic prefix), n plus the coding overhead under
	// loss. Its distance from n is the rateless analogue of the
	// retransmission round trips it replaces.
	symbolsPerBlock *obs.Histogram
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		symbolsSent:     reg.Counter("rstp_rateless_symbols_sent_total", "coded symbols sent by rateless transmitters"),
		symbolsReceived: reg.Counter("rstp_rateless_symbols_received_total", "distinct coded symbols absorbed by rateless decoders"),
		symbolsStale:    reg.Counter("rstp_rateless_symbols_stale_total", "coded symbols for already-decoded blocks (triggers a re-ack)"),
		symbolsCorrupt:  reg.Counter("rstp_rateless_symbols_corrupt_total", "coded symbols whose header contradicted the checksummed payload"),
		blocksDecoded:   reg.Counter("rstp_rateless_blocks_decoded_total", "blocks fully decoded by rateless receivers"),
		acksSent:        reg.Counter("rstp_rateless_acks_sent_total", "decode acknowledgements sent by rateless receivers"),
		symbolsPerBlock: reg.Histogram("rstp_rateless_symbols_per_block", "distinct coded symbols absorbed per decoded block", obs.TickBuckets(0)),
	}
}

func (m *metrics) onSymbolSent() {
	if m == nil {
		return
	}
	m.symbolsSent.Inc()
}

func (m *metrics) onSymbolReceived() {
	if m == nil {
		return
	}
	m.symbolsReceived.Inc()
}

func (m *metrics) onStale() {
	if m == nil {
		return
	}
	m.symbolsStale.Inc()
}

func (m *metrics) onCorrupt() {
	if m == nil {
		return
	}
	m.symbolsCorrupt.Inc()
}

func (m *metrics) onBlockDecoded(symbols int) {
	if m == nil {
		return
	}
	m.blocksDecoded.Inc()
	m.symbolsPerBlock.Observe(int64(symbols))
}

func (m *metrics) onAckSent() {
	if m == nil {
		return
	}
	m.acksSent.Inc()
}
