package rateless

import (
	"testing"

	"repro/internal/wire"
)

func testBlock(t *testing.T, k, n int, seed uint64) (*Code, []wire.Symbol) {
	t.Helper()
	code, err := NewCode(k, n, seed)
	if err != nil {
		t.Fatalf("NewCode(%d,%d): %v", k, n, err)
	}
	rng := prng{state: mix(seed ^ 0xabcdef)}
	src := make([]wire.Symbol, n)
	for i := range src {
		src[i] = wire.Symbol(rng.next() % uint64(k))
	}
	return code, src
}

func TestNewCodeValidation(t *testing.T) {
	if _, err := NewCode(1, 6, 1); err == nil {
		t.Fatal("accepted k=1")
	}
	if _, err := NewCode(4, 0, 1); err == nil {
		t.Fatal("accepted n=0")
	}
}

func TestCodeDeterministic(t *testing.T) {
	a, _ := NewCode(4, 6, 99)
	b, _ := NewCode(4, 6, 99)
	for idx := uint32(0); idx < 200; idx++ {
		na, nb := a.Neighbors(idx), b.Neighbors(idx)
		if len(na) != len(nb) {
			t.Fatalf("index %d: neighbor count %d vs %d", idx, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("index %d: neighbors diverge: %v vs %v", idx, na, nb)
			}
		}
	}
	// Different seeds must give different streams somewhere.
	c, _ := NewCode(4, 6, 100)
	same := true
	for idx := uint32(6); idx < 60 && same; idx++ {
		na, nc := a.Neighbors(idx), c.Neighbors(idx)
		if len(na) != len(nc) {
			same = false
			break
		}
		for i := range na {
			if na[i] != nc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical neighbor streams")
	}
}

func TestSystematicPrefix(t *testing.T) {
	code, src := testBlock(t, 4, 6, 7)
	for i := 0; i < 6; i++ {
		n := code.Neighbors(uint32(i))
		if len(n) != 1 || n[0] != i {
			t.Fatalf("systematic index %d: neighbors %v", i, n)
		}
		v, err := code.Encode(src, uint32(i))
		if err != nil {
			t.Fatalf("Encode(%d): %v", i, err)
		}
		if v != src[i] {
			t.Fatalf("systematic symbol %d = %v, want %v", i, v, src[i])
		}
	}
}

func TestNeighborsWellFormed(t *testing.T) {
	code, _ := testBlock(t, 4, 6, 13)
	for idx := uint32(0); idx < 500; idx++ {
		n := code.Neighbors(idx)
		if len(n) < 1 || len(n) > 6 {
			t.Fatalf("index %d: degree %d out of [1,6]", idx, len(n))
		}
		seen := map[int]bool{}
		for _, pos := range n {
			if pos < 0 || pos >= 6 {
				t.Fatalf("index %d: neighbor %d out of range", idx, pos)
			}
			if seen[pos] {
				t.Fatalf("index %d: duplicate neighbor %d", idx, pos)
			}
			seen[pos] = true
		}
	}
}

func TestDecodeSystematicOnly(t *testing.T) {
	code, src := testBlock(t, 4, 6, 21)
	dec := NewDecoder(code)
	for i := 0; i < 6; i++ {
		v, _ := code.Encode(src, uint32(i))
		done, err := dec.Add(uint32(i), v)
		if err != nil {
			t.Fatalf("Add(%d): %v", i, err)
		}
		if done != (i == 5) {
			t.Fatalf("Add(%d): done = %v", i, done)
		}
	}
	got := dec.Source()
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("decoded %v, want %v", got, src)
		}
	}
}

// TestDecodeUnderLoss drops a deterministic pattern of symbols and
// checks the decoder still recovers every block from the survivors.
func TestDecodeUnderLoss(t *testing.T) {
	for trial := uint64(0); trial < 50; trial++ {
		code, src := testBlock(t, 4, 6, 1000+trial)
		dec := NewDecoder(code)
		drop := prng{state: mix(trial * 77)}
		var fed int
		for idx := uint32(0); !dec.Done(); idx++ {
			if idx > 10_000 {
				t.Fatalf("trial %d: no decode after 10k symbols", trial)
			}
			if drop.next()%100 < 30 { // 30% loss
				continue
			}
			v, err := code.Encode(src, idx)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if _, err := dec.Add(idx, v); err != nil {
				t.Fatalf("Add: %v", err)
			}
			fed++
		}
		got := dec.Source()
		for i := range src {
			if got[i] != src[i] {
				t.Fatalf("trial %d: decoded %v, want %v", trial, got, src)
			}
		}
		if fed < 6 {
			t.Fatalf("trial %d: decoded from %d < n symbols", trial, fed)
		}
	}
}

// TestDecodeOutOfOrder feeds the survivors in reverse to confirm
// ordering is irrelevant (the non-FIFO channel premise).
func TestDecodeOutOfOrder(t *testing.T) {
	code, src := testBlock(t, 4, 6, 31)
	var symbols []wire.CodedSymbol
	for idx := uint32(0); idx < 24; idx++ {
		v, _ := code.Encode(src, idx)
		symbols = append(symbols, wire.CodedSymbol{Index: idx, Value: v})
	}
	dec := NewDecoder(code)
	for i := len(symbols) - 1; i >= 0; i-- {
		if _, err := dec.Add(symbols[i].Index, symbols[i].Value); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if !dec.Done() {
		t.Fatal("24 reversed symbols did not decode a 6-symbol block")
	}
	got := dec.Source()
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("decoded %v, want %v", got, src)
		}
	}
}

func TestDecoderRejectsBadValue(t *testing.T) {
	code, _ := testBlock(t, 4, 6, 41)
	dec := NewDecoder(code)
	if _, err := dec.Add(0, wire.Symbol(4)); err == nil {
		t.Fatal("accepted value = k")
	}
	if _, err := dec.Add(0, wire.Symbol(-1)); err == nil {
		t.Fatal("accepted negative value")
	}
}

func TestDecoderIgnoresDuplicates(t *testing.T) {
	code, src := testBlock(t, 4, 6, 51)
	dec := NewDecoder(code)
	v, _ := code.Encode(src, 0)
	for i := 0; i < 5; i++ {
		if _, err := dec.Add(0, v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if dec.Received() != 1 {
		t.Fatalf("Received() = %d after duplicates, want 1", dec.Received())
	}
}

func TestBlockSeedVaries(t *testing.T) {
	seen := map[uint64]uint32{}
	for b := uint32(0); b < 1000; b++ {
		s := BlockSeed(42, b)
		if prev, dup := seen[s]; dup {
			t.Fatalf("blocks %d and %d share seed %x", prev, b, s)
		}
		seen[s] = b
	}
	if BlockSeed(42, 0) == BlockSeed(43, 0) {
		t.Fatal("base seeds 42 and 43 collide at block 0")
	}
}
