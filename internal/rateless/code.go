// Package rateless implements the fountain-coded burst subsystem: an
// LT-style rateless code over a block's packet multiset, replacing
// exact-packet retransmission with an endless stream of coded symbols
// that the receiver cuts with a decode acknowledgement.
//
// A block is the same object the paper's burst protocols transmit: the
// multiset codec's ascending linearisation of δ1 k-ary symbols encoding
// ⌊log₂ μ_k(δ1)⌋ bits (internal/multiset). Where A^β retransmits the
// exact block for ⌈d/c1⌉ extra steps and A^γ waits a full round trip
// per burst, the rateless transmitter streams coded symbols — each a
// sum modulo k of a pseudo-random subset of the block's source symbols
// — until the receiver has decoded *any* sufficiently large subset and
// acks. Loss costs a few extra symbols instead of a round trip.
//
// Everything is deterministic: the neighbor set of coded symbol
// (block, index) is a pure function of a per-block seed derived from
// the session's base seed and the block number, so transmitter and
// receiver agree without carrying neighbor lists on the wire, and
// replays reproduce byte-identical symbol streams.
package rateless

import (
	"fmt"
	"math"

	"repro/internal/wire"
)

// prng is a splitmix64 stream: deterministic, allocation-free, and
// decoupled from math/rand so seeding is stable across Go releases.
type prng struct{ state uint64 }

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix finalizes one splitmix64 step of x — used to fold identifiers
// into seeds.
func mix(x uint64) uint64 {
	p := prng{state: x}
	return p.next()
}

// BlockSeed derives the per-block seed from the session's base seed:
// every block gets an independent, reproducible symbol stream.
func BlockSeed(base int64, block uint32) uint64 {
	return mix(mix(uint64(base)) ^ uint64(block))
}

// Code is the deterministic LT code for one block: n source symbols
// over the k-ary alphabet, seeded so both ends derive identical
// neighbor sets from a coded symbol's index alone.
//
// The code is systematic: coded symbols with Index < n carry the
// source symbol at that position verbatim (degree 1), so a loss-free
// prefix of n symbols decodes immediately with zero overhead. Indexes
// ≥ n draw their degree from the ideal soliton distribution and their
// neighbors from the seeded stream.
type Code struct {
	k    int
	n    int
	seed uint64
}

// NewCode returns the code for one block. k is the packet alphabet
// size (≥ 2), n the number of source symbols per block (≥ 1).
func NewCode(k, n int, seed uint64) (*Code, error) {
	if k < 2 {
		return nil, fmt.Errorf("rateless: alphabet size k = %d, need k >= 2", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("rateless: block length n = %d, need n >= 1", n)
	}
	return &Code{k: k, n: n, seed: seed}, nil
}

// K returns the packet alphabet size.
func (c *Code) K() int { return c.k }

// N returns the number of source symbols per block.
func (c *Code) N() int { return c.n }

// Neighbors returns the source-symbol positions coded symbol index is
// the sum of. It is a pure function of (seed, index).
func (c *Code) Neighbors(index uint32) []int {
	if index < uint32(c.n) {
		return []int{int(index)}
	}
	rng := prng{state: mix(c.seed ^ uint64(index))}
	deg := c.solitonDegree(&rng)
	// n is δ1-sized (single digits at the paper's defaults), so a
	// rejection loop beats shuffling machinery.
	neigh := make([]int, 0, deg)
	for len(neigh) < deg {
		cand := int(rng.next() % uint64(c.n))
		dup := false
		for _, have := range neigh {
			if have == cand {
				dup = true
				break
			}
		}
		if !dup {
			neigh = append(neigh, cand)
		}
	}
	return neigh
}

// solitonDegree samples the ideal soliton distribution
// ρ(1) = 1/n, ρ(d) = 1/(d(d-1)) for 2 ≤ d ≤ n via the inverse CDF.
func (c *Code) solitonDegree(rng *prng) int {
	u := float64(rng.next()>>11) / (1 << 53) // uniform in [0, 1)
	if u < 1/float64(c.n) {
		return 1
	}
	d := int(math.Ceil(1 / u))
	if d < 1 {
		d = 1
	}
	if d > c.n {
		d = c.n
	}
	return d
}

// Encode returns the coded symbol at index for the given source block:
// the sum of the neighbor source symbols modulo k. The source slice
// must hold exactly n symbols in [0, k).
func (c *Code) Encode(src []wire.Symbol, index uint32) (wire.Symbol, error) {
	if len(src) != c.n {
		return 0, fmt.Errorf("rateless: block has %d source symbols, want %d", len(src), c.n)
	}
	for pos, s := range src {
		if int(s) < 0 || int(s) >= c.k {
			return 0, fmt.Errorf("rateless: source symbol %d at position %d outside alphabet [0,%d)", int(s), pos, c.k)
		}
	}
	return c.encode(src, index), nil
}

// encode is Encode without the per-call validation; the automata
// validate each block once at construction.
func (c *Code) encode(src []wire.Symbol, index uint32) wire.Symbol {
	sum := 0
	for _, pos := range c.Neighbors(index) {
		sum += int(src[pos])
	}
	return wire.Symbol(sum % c.k)
}

// equation is one unresolved coded symbol: value = Σ src[neighbors] mod k,
// already reduced by every source symbol known at insertion time.
type equation struct {
	neighbors []int
	value     int
}

// Decoder peels one block's coded-symbol stream back into its source
// symbols. Add symbols in any order, with duplicates and reordering
// tolerated; Done reports completion and Source yields the block.
type Decoder struct {
	code     *Code
	src      []wire.Symbol
	have     []bool
	missing  int
	pending  []equation
	seen     map[uint32]bool
	received int
}

// NewDecoder returns a fresh decoder for one block of the given code.
func NewDecoder(code *Code) *Decoder {
	return &Decoder{
		code:    code,
		src:     make([]wire.Symbol, code.n),
		have:    make([]bool, code.n),
		missing: code.n,
		seen:    make(map[uint32]bool),
	}
}

// Received returns how many distinct coded symbols have been absorbed.
func (d *Decoder) Received() int { return d.received }

// Done reports whether every source symbol has been recovered.
func (d *Decoder) Done() bool { return d.missing == 0 }

// Source returns the recovered source block once Done; nil before.
func (d *Decoder) Source() []wire.Symbol {
	if !d.Done() {
		return nil
	}
	out := make([]wire.Symbol, len(d.src))
	copy(out, d.src)
	return out
}

// Add absorbs coded symbol (index, value). Duplicate indexes are
// ignored; a value outside [0, k) is rejected as corruption. It
// returns whether the block became fully decoded by this symbol.
func (d *Decoder) Add(index uint32, value wire.Symbol) (bool, error) {
	if int(value) < 0 || int(value) >= d.code.k {
		return false, fmt.Errorf("rateless: coded value %d outside alphabet [0,%d)", int(value), d.code.k)
	}
	if d.Done() || d.seen[index] {
		return false, nil
	}
	d.seen[index] = true
	d.received++

	eq := equation{value: int(value)}
	for _, pos := range d.code.Neighbors(index) {
		if d.have[pos] {
			eq.value = ((eq.value-int(d.src[pos]))%d.code.k + d.code.k) % d.code.k
		} else {
			eq.neighbors = append(eq.neighbors, pos)
		}
	}
	switch len(eq.neighbors) {
	case 0:
		// Fully redundant with what we already know; a mismatch would
		// mean a corrupt-but-checksummed symbol, which the wire layer
		// already screens out, so it is simply dropped.
		return false, nil
	case 1:
		d.resolve(eq.neighbors[0], wire.Symbol(eq.value))
		return d.Done(), nil
	default:
		d.pending = append(d.pending, eq)
		return false, nil
	}
}

// resolve records a recovered source symbol and peels it out of every
// pending equation, cascading through any equations that drop to
// degree one.
func (d *Decoder) resolve(pos int, value wire.Symbol) {
	// Iterative worklist: δ1-sized blocks keep it tiny, but no recursion.
	type found struct {
		pos   int
		value wire.Symbol
	}
	work := []found{{pos, value}}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if d.have[f.pos] {
			continue
		}
		d.src[f.pos] = f.value
		d.have[f.pos] = true
		d.missing--

		kept := d.pending[:0]
		for _, eq := range d.pending {
			reduced := eq.neighbors[:0]
			for _, n := range eq.neighbors {
				if n == f.pos {
					eq.value = ((eq.value-int(f.value))%d.code.k + d.code.k) % d.code.k
				} else {
					reduced = append(reduced, n)
				}
			}
			eq.neighbors = reduced
			switch len(eq.neighbors) {
			case 0:
				// Redundant now; drop.
			case 1:
				if !d.have[eq.neighbors[0]] {
					work = append(work, found{eq.neighbors[0], wire.Symbol(eq.value)})
				}
			default:
				kept = append(kept, eq)
			}
		}
		d.pending = kept
	}
}
