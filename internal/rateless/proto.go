package rateless

import (
	"fmt"
	"math"

	"repro/internal/ioa"
	"repro/internal/multiset"
	"repro/internal/obs"
	"repro/internal/rstp"
	"repro/internal/wire"
)

// decodeWindow bounds how far ahead of the first undecoded block the
// receiver will open decoders. The transmitter's systematic pass streams
// blocks in order and its repair cursor never runs ahead of the highest
// unacked block, so legitimate traffic stays far inside this; a block
// number past the window is a corrupted record that slipped the
// checksum, and is dropped like any other corruption.
const decodeWindow = 1 << 16

// Options configures a rateless protocol pair or Builder.
type Options struct {
	// Params are the RSTP timing constants (c1 <= c2 < d).
	Params rstp.Params
	// K is the packet alphabet size, >= 2; the multiset block geometry
	// is the same ⌊log₂ μ_k(δ1)⌋ bits per δ1 symbols as A^β(k).
	K int
	// Seed is the session's base seed; block b's symbol stream is a pure
	// function of BlockSeed(Seed, b) on both ends, so replays under the
	// same seed reproduce byte-identical coded streams.
	Seed int64
	// Obs, when non-nil, receives the rstp_rateless_* counters and the
	// symbols-per-block histogram.
	Obs *obs.Registry
}

// Builder constructs rateless transmitter/receiver pairs and satisfies
// session.PairBuilder, making the subsystem selectable wherever the
// hardened β/γ builders are.
type Builder struct {
	p    rstp.Params
	k    int
	seed int64

	codec *multiset.Codec
	met   *metrics
}

// NewBuilder validates the options and returns a pair builder. All pairs
// it spawns share one metrics bridge, so per-session counters aggregate
// on the registry exactly like the serving layer's own.
func NewBuilder(o Options) (*Builder, error) {
	if err := o.Params.Validate(); err != nil {
		return nil, err
	}
	if o.K < 2 {
		return nil, fmt.Errorf("rateless: need a packet alphabet of size k >= 2, got %d", o.K)
	}
	codec, err := multiset.NewCodec(o.K, o.Params.Delta1())
	if err != nil {
		return nil, fmt.Errorf("rateless: %w", err)
	}
	if codec.BlockBits() < 1 {
		return nil, fmt.Errorf("rateless: k=%d δ1=%d encodes zero bits per block", o.K, o.Params.Delta1())
	}
	return &Builder{
		p:     o.Params,
		k:     o.K,
		seed:  o.Seed,
		codec: codec,
		met:   newMetrics(o.Obs),
	}, nil
}

// String names the protocol stack, e.g. "rateless(k=4)".
func (b *Builder) String() string { return fmt.Sprintf("rateless(k=%d)", b.k) }

// BlockBits returns ⌊log₂ μ_k(δ1)⌋, the input bits per coded block.
func (b *Builder) BlockBits() int { return b.codec.BlockBits() }

// NewPair builds a transmitter/receiver pair for input x, which must be
// a multiple of BlockBits bits long (PadToBlock and frame above, as with
// A^β(k)).
func (b *Builder) NewPair(x []wire.Bit) (t, r ioa.Automaton, err error) {
	tx, err := newTransmitter(b, x)
	if err != nil {
		return nil, nil, err
	}
	rx, err := newReceiver(b)
	if err != nil {
		return nil, nil, err
	}
	return tx, rx, nil
}

// NewTransmitter builds a standalone rateless transmitter for input x.
func NewTransmitter(o Options, x []wire.Bit) (*Transmitter, error) {
	b, err := NewBuilder(o)
	if err != nil {
		return nil, err
	}
	return newTransmitter(b, x)
}

// NewReceiver builds a standalone rateless receiver.
func NewReceiver(o Options) (*Receiver, error) {
	b, err := NewBuilder(o)
	if err != nil {
		return nil, err
	}
	return newReceiver(b)
}

// UpperBound returns the subsystem's loss-free effort: δ1·c2 ticks of
// sending per ⌊log₂ μ_k(δ1)⌋-bit block. The systematic prefix decodes a
// clean channel's block from exactly its n = δ1 source symbols and the
// transmitter never waits between bursts (block identity rides in each
// record), so — unlike A^β(k)'s (δ1 + ⌈d/c1⌉)·c2 round — there is no
// inter-burst idle term. Under loss the realized effort exceeds this by
// the coding overhead (a few symbols per block, not a round trip), which
// is the trade the subsystem makes and E25 measures.
func UpperBound(p rstp.Params, k int) float64 {
	bits := multiset.BlockBits(k, p.Delta1())
	if bits <= 0 {
		return math.Inf(1)
	}
	return float64(int64(p.Delta1())*p.C2) / float64(bits)
}

// LowerBound returns the matching lower bound. The receiver talks back
// (decode acks), so the protocol is active in the paper's taxonomy and
// Theorem 5.6 applies.
func LowerBound(p rstp.Params, k int) float64 {
	return rstp.ActiveLowerBound(p, k)
}

// Transmitter streams fountain-coded symbols: one systematic pass over
// every block in order (indexes 0..n-1 verbatim, so a loss-free channel
// decodes with zero overhead), then a round-robin repair phase cycling
// fresh coded indexes over the unacked suffix until the receiver's
// cumulative decode ack cuts the stream. It never waits between blocks —
// the (block, index) identity in each record replaces A^β's
// burst-delimiting idle steps.
type Transmitter struct {
	m   *ioa.Machine
	met *metrics

	k, n   int
	blocks [][]wire.Symbol // per-block source symbol sequences, each length n
	codes  []*Code         // per-block seeded codes

	acked    uint32   // blocks [0, acked) are decode-acknowledged; only advances
	sysBlock uint32   // systematic pass: current block (== nb when the pass is over)
	sysIdx   uint32   // systematic pass: next index within sysBlock
	cursor   uint32   // repair phase: round-robin position in [acked, nb)
	nextIdx  []uint32 // repair phase: next fresh coded index per block
}

var _ ioa.Deterministic = (*Transmitter)(nil)

func newTransmitter(b *Builder, x []wire.Bit) (*Transmitter, error) {
	bits := b.codec.BlockBits()
	if len(x)%bits != 0 {
		return nil, fmt.Errorf("rateless: |X| = %d is not a multiple of the block size %d", len(x), bits)
	}
	n := b.p.Delta1()
	nb := len(x) / bits
	blocks := make([][]wire.Symbol, 0, nb)
	codes := make([]*Code, 0, nb)
	nextIdx := make([]uint32, nb)
	for bi := 0; bi < nb; bi++ {
		seq, err := b.codec.EncodeSeq(x[bi*bits : (bi+1)*bits])
		if err != nil {
			return nil, fmt.Errorf("rateless: block %d: %w", bi, err)
		}
		code, err := NewCode(b.k, n, BlockSeed(b.seed, uint32(bi)))
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, seq)
		codes = append(codes, code)
		nextIdx[bi] = uint32(n) // repair indexes start past the systematic prefix
	}
	t := &Transmitter{
		met:     b.met,
		k:       b.k,
		n:       n,
		blocks:  blocks,
		codes:   codes,
		nextIdx: nextIdx,
	}
	if err := t.initMachine(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Transmitter) nb() uint32 { return uint32(len(t.blocks)) }

// pick returns the coded symbol the send command emits in the current
// state — a pure function of the state, as Act requires.
func (t *Transmitter) pick() wire.CodedSymbol {
	b, idx := t.cursor, t.nextIdx[t.cursor]
	if t.sysBlock < t.nb() {
		b, idx = t.sysBlock, t.sysIdx
	}
	return wire.CodedSymbol{Block: b, Index: idx, Value: t.codes[b].encode(t.blocks[b], idx)}
}

// advance moves past the just-sent symbol.
func (t *Transmitter) advance() {
	if t.sysBlock < t.nb() {
		t.sysIdx++
		if t.sysIdx == uint32(t.n) {
			t.sysBlock++
			t.sysIdx = 0
		}
		t.normalize()
		return
	}
	t.nextIdx[t.cursor]++
	t.cursor++
	t.normalize()
}

// normalize restores the cursor invariants after an ack or an advance:
// the systematic pass never revisits an acked block, and the repair
// cursor stays inside the unacked suffix [acked, nb).
func (t *Transmitter) normalize() {
	if t.sysBlock < t.nb() && t.sysBlock < t.acked {
		t.sysBlock = t.acked
		t.sysIdx = 0
	}
	if t.sysBlock >= t.nb() && (t.cursor < t.acked || t.cursor >= t.nb()) {
		t.cursor = t.acked
	}
}

func (t *Transmitter) initMachine() error {
	m, err := ioa.NewMachine(rstp.TransmitterName, t.classify, t.onInput, []ioa.Command{
		{
			Name:  "send_coded",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return t.acked < t.nb() },
			Act: func() ioa.Action {
				cs := t.pick()
				return wire.Send{
					Dir:     wire.TtoR,
					P:       wire.CodedPacket(cs),
					Payload: string(wire.AppendCodedSymbol(nil, cs)),
				}
			},
			Eff: func() {
				t.advance()
				t.met.onSymbolSent()
			},
		},
	})
	if err != nil {
		return err
	}
	t.m = m
	return nil
}

func (t *Transmitter) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Send:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Coded {
			return ioa.ClassOutput
		}
	case wire.Recv:
		if act.Dir == wire.RtoT && act.P.Kind == wire.DecodeAck {
			return ioa.ClassInput
		}
	}
	return ioa.ClassNone
}

func (t *Transmitter) onInput(act ioa.Action) error {
	recv, ok := act.(wire.Recv)
	if !ok {
		return fmt.Errorf("rateless: transmitter: unexpected input %v: %w", act, ioa.ErrNotInSignature)
	}
	ack, err := wire.ParseDecodeAck([]byte(recv.Payload))
	if err != nil || wire.Symbol(ack.Next) != recv.P.Symbol {
		// A corrupted record that still parsed as a frame: dropping it is
		// safe — acks are cumulative and the stale-symbol re-ack resends.
		t.met.onCorrupt()
		return nil
	}
	next := ack.Next
	if next > t.nb() {
		next = t.nb()
	}
	if next > t.acked {
		t.acked = next
		t.normalize()
	}
	return nil
}

// Name returns "t".
func (t *Transmitter) Name() string { return t.m.Name() }

// Classify places an action in the signature.
func (t *Transmitter) Classify(a ioa.Action) ioa.Class { return t.m.Classify(a) }

// NextLocal returns the unique enabled local action; none once every
// block is acked (the quiesced transmitter keeps serving inputs).
func (t *Transmitter) NextLocal() (ioa.Action, bool) { return t.m.NextLocal() }

// Apply performs a transition.
func (t *Transmitter) Apply(a ioa.Action) error { return t.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (t *Transmitter) DeterministicIOA() bool { return true }

// Done reports whether every block has been decode-acknowledged.
func (t *Transmitter) Done() bool { return t.acked >= t.nb() }

// Acked returns the number of decode-acknowledged blocks.
func (t *Transmitter) Acked() uint32 { return t.acked }

// Receiver peels the coded stream back into blocks, writes each decoded
// block's bits in order, and cuts the transmitter's stream with a
// cumulative decode ack. Symbols for already-decoded blocks trigger a
// re-ack, which heals lost acks without timers.
type Receiver struct {
	m     *ioa.Machine
	met   *metrics
	codec *multiset.Codec

	k, n int
	seed int64

	next       uint32              // first undecoded block
	decs       map[uint32]*Decoder // open decoders for blocks >= next
	queue      []wire.Bit          // decoded bits awaiting write
	wnext      int                 // next bit to write
	skip       int64               // resume: bits of block `next` already on the durable tape
	pendingAck bool
}

var _ ioa.Deterministic = (*Receiver)(nil)

func newReceiver(b *Builder) (*Receiver, error) {
	r := &Receiver{
		met:   b.met,
		codec: b.codec,
		k:     b.k,
		n:     b.p.Delta1(),
		seed:  b.seed,
		decs:  make(map[uint32]*Decoder),
	}
	if err := r.initMachine(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Receiver) initMachine() error {
	// Priority: pending writes beat the ack (the real-time obligation is
	// delivery; an ack delayed a few steps only costs the transmitter a
	// handful of stale repair symbols), and both beat the idle step.
	m, err := ioa.NewMachine(rstp.ReceiverName, r.classify, r.onInput, []ioa.Command{
		{
			Name:  "write",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.wnext < len(r.queue) },
			Act:   func() ioa.Action { return wire.Write{M: r.queue[r.wnext]} },
			Eff:   func() { r.wnext++ },
		},
		{
			Name:  "send_ack",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.pendingAck },
			Act: func() ioa.Action {
				ack := wire.DecodeAckMsg{Next: r.next}
				return wire.Send{
					Dir:     wire.RtoT,
					P:       wire.DecodeAckPacket(ack),
					Payload: string(wire.AppendDecodeAck(nil, ack)),
				}
			},
			Eff: func() {
				r.pendingAck = false
				r.met.onAckSent()
			},
		},
		{
			Name:  "idle_r",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return true },
			Act:   func() ioa.Action { return wire.Internal{Name: "idle_r"} },
			Eff:   func() {},
		},
	})
	if err != nil {
		return err
	}
	r.m = m
	return nil
}

func (r *Receiver) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Recv:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Coded {
			return ioa.ClassInput
		}
	case wire.Write:
		return ioa.ClassOutput
	case wire.Send:
		if act.Dir == wire.RtoT && act.P.Kind == wire.DecodeAck {
			return ioa.ClassOutput
		}
	case wire.Internal:
		if act.Name == "idle_r" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

func (r *Receiver) onInput(act ioa.Action) error {
	recv, ok := act.(wire.Recv)
	if !ok {
		return fmt.Errorf("rateless: receiver: unexpected input %v: %w", act, ioa.ErrNotInSignature)
	}
	cs, err := wire.ParseCodedSymbol([]byte(recv.Payload))
	if err != nil {
		r.met.onCorrupt()
		return nil
	}
	// The frame header duplicates the record's value and block; a
	// mismatch means the header was corrupted after encoding (the chaos
	// middleware flips header symbols) even though the checksummed
	// payload survived. Either copy being untrustworthy, drop the symbol
	// — the code is rateless, another one is always coming.
	if cs.Value != recv.P.Symbol || int(cs.Block) != recv.P.Tag {
		r.met.onCorrupt()
		return nil
	}
	if cs.Block < r.next {
		// The transmitter is still repairing a block we finished: its ack
		// was lost or is in flight. Re-ack instead of decoding.
		r.met.onStale()
		r.pendingAck = true
		return nil
	}
	if cs.Block >= r.next+decodeWindow {
		r.met.onCorrupt()
		return nil
	}
	dec := r.decs[cs.Block]
	if dec == nil {
		code, err := NewCode(r.k, r.n, BlockSeed(r.seed, cs.Block))
		if err != nil {
			return fmt.Errorf("rateless: receiver: block %d: %w", cs.Block, err)
		}
		dec = NewDecoder(code)
		r.decs[cs.Block] = dec
	}
	before := dec.Received()
	done, err := dec.Add(cs.Index, cs.Value)
	if err != nil {
		r.met.onCorrupt()
		return nil
	}
	if dec.Received() > before {
		r.met.onSymbolReceived()
	}
	if done {
		r.met.onBlockDecoded(dec.Received())
	}
	return r.drain()
}

// drain consumes consecutively decoded blocks starting at next, queueing
// their bits for the write command, and schedules a cumulative ack when
// the frontier moved.
func (r *Receiver) drain() error {
	advanced := false
	for {
		dec := r.decs[r.next]
		if dec == nil || !dec.Done() {
			break
		}
		bits, err := r.codec.DecodeSeq(dec.Source())
		if err != nil {
			// Unreachable with checksummed symbols: the decoder's output
			// is the transmitter's EncodeSeq, always a codeword.
			return fmt.Errorf("rateless: receiver: block %d: %w", r.next, err)
		}
		if r.skip > 0 {
			// Resume: the head of this block is already on the durable
			// tape from a previous incarnation; only the tail is new.
			drop := r.skip
			if drop > int64(len(bits)) {
				drop = int64(len(bits))
			}
			bits = bits[drop:]
			r.skip = 0
		}
		r.queue = append(r.queue, bits...)
		delete(r.decs, r.next)
		r.next++
		advanced = true
	}
	if advanced {
		r.pendingAck = true
	}
	return nil
}

// ResumeTape implements session.TapeResumer: a restarted receiver whose
// previous incarnation durably wrote n bits starts at the block holding
// bit n, skips the bits of it already on the tape, and immediately acks
// so the restarted transmitter fast-forwards past the decoded prefix.
func (r *Receiver) ResumeTape(n int64) {
	bits := int64(r.codec.BlockBits())
	r.next = uint32(n / bits)
	r.skip = n % bits
	if n > 0 {
		r.pendingAck = true
	}
}

// Name returns "r".
func (r *Receiver) Name() string { return r.m.Name() }

// Classify places an action in the signature.
func (r *Receiver) Classify(a ioa.Action) ioa.Class { return r.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (r *Receiver) NextLocal() (ioa.Action, bool) { return r.m.NextLocal() }

// Apply performs a transition.
func (r *Receiver) Apply(a ioa.Action) error { return r.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (r *Receiver) DeterministicIOA() bool { return true }

// Written returns the number of bits written.
func (r *Receiver) Written() int { return r.wnext }

// NextBlock returns the first undecoded block — the value the next ack
// carries.
func (r *Receiver) NextBlock() uint32 { return r.next }

// WrittenBits returns Y: the bits written so far, in order.
func (r *Receiver) WrittenBits() []wire.Bit {
	return append([]wire.Bit(nil), r.queue[:r.wnext]...)
}
