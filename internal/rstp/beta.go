package rstp

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/multiset"
	"repro/internal/wire"
)

// A^β(k) — the r-passive solution of Section 6.1, Figure 3.
//
// Execution proceeds in rounds. Each round the transmitter sends a burst
// of δ1 packets encoding ⌊log2 μ_k(δ1)⌋ input bits as a *multiset* of
// k-ary symbols (tomulti/toseq of Section 3), then waits ⌈d/c1⌉ idle steps
// so the burst is fully delivered before the next burst's first packet can
// arrive. The receiver accumulates δ1 packets into a multiset, decodes,
// and writes the block's bits.
//
// Effort ≤ (δ1 + ⌈d/c1⌉)·c2 / ⌊log2 μ_k(δ1)⌋ = 2δ1c2/⌊log2 μ_k(δ1)⌋ when
// c1 | d — a constant factor above the Theorem 5.3 lower bound.

// BetaTransmitter is A^β(k)'s transmitter At^β(k).
type BetaTransmitter struct {
	m *ioa.Machine

	blocks [][]wire.Symbol // per-round symbol sequences, each of length burst
	bi     int             // current block index
	c      int             // position within the round (paper's c)
	burst  int             // δ1
	wait   int             // ⌈d/c1⌉ idle steps per round
	bits   int             // input bits per block
}

var _ ioa.Deterministic = (*BetaTransmitter)(nil)

// NewBetaTransmitter builds At^β(k) for input x, which must be a multiple
// of BetaBlockBits(p, k) bits long (use PadToBlock and frame above —
// the paper assumes |X| ≡ 0 mod ⌊log μ_k(δ1)⌋).
func NewBetaTransmitter(p Params, k int, x []wire.Bit) (*BetaTransmitter, error) {
	codec, err := betaCodec(p, k)
	if err != nil {
		return nil, err
	}
	bits := codec.BlockBits()
	if len(x)%bits != 0 {
		return nil, fmt.Errorf("rstp: beta transmitter: |X| = %d is not a multiple of the block size %d", len(x), bits)
	}
	blocks := make([][]wire.Symbol, 0, len(x)/bits)
	for off := 0; off < len(x); off += bits {
		seq, err := codec.EncodeSeq(x[off : off+bits])
		if err != nil {
			return nil, fmt.Errorf("rstp: beta transmitter: block at bit %d: %w", off, err)
		}
		blocks = append(blocks, seq)
	}
	t := &BetaTransmitter{
		blocks: blocks,
		burst:  p.Delta1(),
		wait:   p.CeilSteps1(),
		bits:   bits,
	}
	if err := t.initMachine(); err != nil {
		return nil, err
	}
	return t, nil
}

// initMachine (re)binds the guarded commands to this instance; Fork calls
// it on copies.
func (t *BetaTransmitter) initMachine() error {
	m, err := ioa.NewMachine(TransmitterName, t.classify, nil, []ioa.Command{
		{
			Name:  "send",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return t.bi < len(t.blocks) && t.c < t.burst },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.TtoR, P: wire.DataPacket(t.blocks[t.bi][t.c])}
			},
			Eff: func() { t.c++ },
		},
		{
			Name:  "wait_t",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return t.bi < len(t.blocks) && t.c >= t.burst },
			Act:   func() ioa.Action { return wire.Internal{Name: "wait_t"} },
			Eff: func() {
				t.c++
				if t.c == t.burst+t.wait {
					t.c = 0
					t.bi++
				}
			},
		},
	})
	if err != nil {
		return err
	}
	t.m = m
	return nil
}

// Fork returns an independent deep copy in the same state, for
// state-space exploration. The immutable encoded blocks are shared.
func (t *BetaTransmitter) Fork() (*BetaTransmitter, error) {
	c := &BetaTransmitter{
		blocks: t.blocks,
		bi:     t.bi,
		c:      t.c,
		burst:  t.burst,
		wait:   t.wait,
		bits:   t.bits,
	}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state.
func (t *BetaTransmitter) Snapshot() string { return fmt.Sprintf("bi=%d c=%d", t.bi, t.c) }

func betaCodec(p Params, k int) (*multiset.Codec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("rstp: beta needs a packet alphabet of size k >= 2, got %d", k)
	}
	return multiset.NewCodec(k, p.Delta1())
}

// BetaBlockBits returns ⌊log2 μ_k(δ1)⌋, the number of input bits A^β(k)
// transmits per round.
func BetaBlockBits(p Params, k int) int {
	return multiset.BlockBits(k, p.Delta1())
}

func (t *BetaTransmitter) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Send:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassOutput
		}
	case wire.Internal:
		if act.Name == "wait_t" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

// Name returns "t".
func (t *BetaTransmitter) Name() string { return t.m.Name() }

// Classify places an action in the signature.
func (t *BetaTransmitter) Classify(a ioa.Action) ioa.Class { return t.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (t *BetaTransmitter) NextLocal() (ioa.Action, bool) { return t.m.NextLocal() }

// Apply performs a transition.
func (t *BetaTransmitter) Apply(a ioa.Action) error { return t.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (t *BetaTransmitter) DeterministicIOA() bool { return true }

// Done reports whether every block has been sent and waited out.
func (t *BetaTransmitter) Done() bool { return t.bi >= len(t.blocks) }

// Burst returns the burst size δ1.
func (t *BetaTransmitter) Burst() int { return t.burst }

// BetaReceiver is A^β(k)'s receiver Ar^β(k): it accumulates each burst
// into the multiset A, decodes when |A| = δ1, and writes the bits.
type BetaReceiver struct {
	m *ioa.Machine

	codec *multiset.Codec
	burst int
	a     multiset.Multiset // current burst's multiset (paper's A)
	queue []wire.Bit        // decoded bits awaiting write (paper's y array)
	next  int               // next bit to write (paper's k)
	k     int               // alphabet size
}

var _ ioa.Deterministic = (*BetaReceiver)(nil)

// NewBetaReceiver builds Ar^β(k).
func NewBetaReceiver(p Params, k int) (*BetaReceiver, error) {
	codec, err := betaCodec(p, k)
	if err != nil {
		return nil, err
	}
	r := &BetaReceiver{
		codec: codec,
		burst: p.Delta1(),
		a:     multiset.New(k),
		k:     k,
	}
	if err := r.initMachine(); err != nil {
		return nil, err
	}
	return r, nil
}

// initMachine (re)binds the guarded commands to this instance; Fork calls
// it on copies.
func (r *BetaReceiver) initMachine() error {
	m, err := ioa.NewMachine(ReceiverName, r.classify, r.onInput, []ioa.Command{
		{
			Name:  "write",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.next < len(r.queue) },
			Act:   func() ioa.Action { return wire.Write{M: r.queue[r.next]} },
			Eff:   func() { r.next++ },
		},
		{
			Name:  "idle_r",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return true },
			Act:   func() ioa.Action { return wire.Internal{Name: "idle_r"} },
			Eff:   func() {},
		},
	})
	if err != nil {
		return err
	}
	r.m = m
	return nil
}

// Fork returns an independent deep copy in the same state, for
// state-space exploration.
func (r *BetaReceiver) Fork() (*BetaReceiver, error) {
	c := &BetaReceiver{
		codec: r.codec,
		burst: r.burst,
		a:     r.a.Clone(),
		queue: append([]wire.Bit(nil), r.queue...),
		next:  r.next,
		k:     r.k,
	}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state.
func (r *BetaReceiver) Snapshot() string {
	return fmt.Sprintf("A=%s q=%s next=%d", r.a.Key(), wire.BitsToString(r.queue), r.next)
}

// WrittenBits returns Y: the bits written so far, in order.
func (r *BetaReceiver) WrittenBits() []wire.Bit {
	return append([]wire.Bit(nil), r.queue[:r.next]...)
}

func (r *BetaReceiver) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Recv:
		// The input alphabet is exactly P^tr = {0, ..., k-1}: packets
		// outside it are not in this automaton's signature.
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data &&
			act.P.Symbol >= 0 && int(act.P.Symbol) < r.k {
			return ioa.ClassInput
		}
	case wire.Write:
		return ioa.ClassOutput
	case wire.Internal:
		if act.Name == "idle_r" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

func (r *BetaReceiver) onInput(act ioa.Action) error {
	recv, ok := act.(wire.Recv)
	if !ok {
		return fmt.Errorf("rstp: beta receiver: unexpected input %v: %w", act, ioa.ErrNotInSignature)
	}
	if err := r.a.Add(recv.P.Symbol); err != nil {
		return fmt.Errorf("rstp: beta receiver: %w", err)
	}
	if r.a.Size() == r.burst {
		bits, err := r.codec.Decode(r.a)
		if err != nil {
			return fmt.Errorf("rstp: beta receiver: decode burst: %w", err)
		}
		r.queue = append(r.queue, bits...)
		r.a.Clear()
	}
	return nil
}

// Name returns "r".
func (r *BetaReceiver) Name() string { return r.m.Name() }

// Classify places an action in the signature.
func (r *BetaReceiver) Classify(a ioa.Action) ioa.Class { return r.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (r *BetaReceiver) NextLocal() (ioa.Action, bool) { return r.m.NextLocal() }

// Apply performs a transition.
func (r *BetaReceiver) Apply(a ioa.Action) error { return r.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (r *BetaReceiver) DeterministicIOA() bool { return true }

// Written returns the number of bits written.
func (r *BetaReceiver) Written() int { return r.next }

// PendingBurst returns the number of packets accumulated toward the
// current burst — useful in tests of burst separation.
func (r *BetaReceiver) PendingBurst() int { return r.a.Size() }
