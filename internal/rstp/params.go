// Package rstp implements the paper's primary contribution: the Real-Time
// Sequence Transmission Problem (Section 4), the three solutions —
// A^α (Figure 1), the r-passive A^β(k) (Figure 3) and the active A^γ(k)
// (Figure 4) — and the effort bounds of Sections 5 and 6.
package rstp

import (
	"fmt"

	"repro/internal/wire"
)

// TransmitterName and ReceiverName are the actor names the protocol
// automata use in traces — the paper's t and r.
const (
	TransmitterName = "t"
	ReceiverName    = "r"
)

// Params carries the three timing constants of RSTP, in ticks:
// every process takes a local step at least every C1 and at most every C2
// ticks, and every packet is delivered within D ticks of being sent.
type Params struct {
	// C1 is the minimum inter-step time (c1).
	C1 int64
	// C2 is the maximum inter-step time (c2).
	C2 int64
	// D is the channel delay bound (d).
	D int64
}

// Validate checks the paper's constraint 0 < c1 <= c2 < d.
func (p Params) Validate() error {
	if p.C1 < 1 {
		return fmt.Errorf("rstp: need c1 >= 1, got %d", p.C1)
	}
	if p.C2 < p.C1 {
		return fmt.Errorf("rstp: need c1 <= c2, got c1=%d c2=%d", p.C1, p.C2)
	}
	if p.D <= p.C2 {
		return fmt.Errorf("rstp: need c2 < d, got c2=%d d=%d", p.C2, p.D)
	}
	return nil
}

// Delta1 returns δ1 = ⌊d/c1⌋ — the maximum number of steps a process can
// take in a window of d ticks. It is the burst size of A^β(k) and the
// grouping width of the r-passive lower bound.
func (p Params) Delta1() int { return int(p.D / p.C1) }

// Delta2 returns δ2 = ⌊d/c2⌋ — the minimum number of steps a process
// takes in a window of d ticks. It is the burst size of A^γ(k) and the
// grouping width of the active lower bound.
func (p Params) Delta2() int { return int(p.D / p.C2) }

// CeilSteps1 returns ⌈d/c1⌉, the number of inter-send steps that
// guarantees at least d ticks between consecutive sends even at the
// fastest legal schedule. When c1 divides d this equals δ1, the paper's
// wait count; otherwise it is δ1 + 1 (the paper implicitly assumes
// divisibility — see DESIGN.md).
func (p Params) CeilSteps1() int {
	return int((p.D + p.C1 - 1) / p.C1)
}

// Divisible reports whether c1 and c2 both divide d — the regime in which
// our step counts coincide exactly with the paper's δ1 and δ2.
func (p Params) Divisible() bool {
	return p.D%p.C1 == 0 && p.D%p.C2 == 0
}

// String renders the parameters.
func (p Params) String() string {
	return fmt.Sprintf("c1=%d c2=%d d=%d (δ1=%d δ2=%d)", p.C1, p.C2, p.D, p.Delta1(), p.Delta2())
}

// PadToBlock pads x with trailing zeros to a multiple of blockBits and
// returns the padded sequence together with the number of padding bits
// appended. The paper assumes |X| ≡ 0 (mod ⌊log μ⌋); applications that
// cannot guarantee this pad and frame at a layer above (see examples/).
func PadToBlock(x []wire.Bit, blockBits int) ([]wire.Bit, int) {
	if blockBits <= 0 {
		return x, 0
	}
	rem := len(x) % blockBits
	if rem == 0 {
		return x, 0
	}
	pad := blockBits - rem
	out := make([]wire.Bit, len(x), len(x)+pad)
	copy(out, x)
	for i := 0; i < pad; i++ {
		out = append(out, wire.Zero)
	}
	return out, pad
}
