package rstp

import (
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/multiset"
	"repro/internal/wire"
)

func TestBetaBlockBitsMatchesCodec(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12} // δ1 = 6
	for _, k := range []int{2, 4, 16, 64} {
		want := multiset.BlockBits(k, 6)
		if got := BetaBlockBits(p, k); got != want {
			t.Errorf("BetaBlockBits(k=%d) = %d, want %d", k, got, want)
		}
	}
}

func TestBetaTransmitterValidation(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	if _, err := NewBetaTransmitter(p, 1, nil); err == nil {
		t.Error("k = 1 should fail")
	}
	if _, err := NewBetaTransmitter(Params{C1: 0, C2: 1, D: 2}, 2, nil); err == nil {
		t.Error("bad params should fail")
	}
	// |X| not a multiple of the block size.
	bits := BetaBlockBits(p, 4)
	if _, err := NewBetaTransmitter(p, 4, make([]wire.Bit, bits+1)); err == nil ||
		!strings.Contains(err.Error(), "multiple") {
		t.Error("misaligned input should fail with a block-size error")
	}
}

func TestBetaTransmitterRoundStructure(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12} // δ1 = 6, wait = 6: rounds of 12 steps
	k := 4
	bits := BetaBlockBits(p, k)
	x := make([]wire.Bit, 2*bits) // two blocks
	for i := range x {
		x[i] = wire.Bit(i % 2)
	}
	tr, err := NewBetaTransmitter(p, k, x)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Burst() != 6 {
		t.Fatalf("burst = %d", tr.Burst())
	}
	var pattern []string
	for {
		act, ok := stepLocal(t, tr)
		if !ok {
			break
		}
		pattern = append(pattern, act.Kind())
		if len(pattern) > 100 {
			t.Fatal("runaway")
		}
	}
	if len(pattern) != 24 {
		t.Fatalf("took %d steps, want 24 (two 12-step rounds)", len(pattern))
	}
	for i, kind := range pattern {
		inBurst := i%12 < 6
		if inBurst && kind != wire.KindSend {
			t.Fatalf("step %d = %s, want send", i, kind)
		}
		if !inBurst && kind != "wait_t" {
			t.Fatalf("step %d = %s, want wait_t", i, kind)
		}
	}
	if !tr.Done() {
		t.Error("transmitter should be done")
	}
}

// TestBetaBurstIsCodeword: each burst's symbols form the codec's encoding
// of the corresponding block.
func TestBetaBurstIsCodeword(t *testing.T) {
	p := Params{C1: 1, C2: 1, D: 5} // δ1 = 5
	k := 3
	codec, err := multiset.NewCodec(k, 5)
	if err != nil {
		t.Fatal(err)
	}
	bits := codec.BlockBits()
	x := make([]wire.Bit, 3*bits)
	for i := range x {
		x[i] = wire.Bit((i / 2) % 2)
	}
	tr, err := NewBetaTransmitter(p, k, x)
	if err != nil {
		t.Fatal(err)
	}
	var symbols []wire.Symbol
	for {
		act, ok := stepLocal(t, tr)
		if !ok {
			break
		}
		if s, isSend := act.(wire.Send); isSend {
			symbols = append(symbols, s.P.Symbol)
		}
	}
	if len(symbols) != 15 {
		t.Fatalf("sent %d symbols, want 15", len(symbols))
	}
	for b := 0; b < 3; b++ {
		got, err := codec.DecodeSeq(symbols[b*5 : (b+1)*5])
		if err != nil {
			t.Fatalf("block %d: %v", b, err)
		}
		want := x[b*bits : (b+1)*bits]
		if wire.BitsToString(got) != wire.BitsToString(want) {
			t.Fatalf("block %d decodes to %s, want %s", b, wire.BitsToString(got), wire.BitsToString(want))
		}
	}
}

func TestBetaReceiverDecodesOutOfOrderBurst(t *testing.T) {
	p := Params{C1: 1, C2: 1, D: 5}
	k := 3
	rc, err := NewBetaReceiver(p, k)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := multiset.NewCodec(k, 5)
	if err != nil {
		t.Fatal(err)
	}
	block := make([]wire.Bit, codec.BlockBits())
	block[0] = wire.One
	seq, err := codec.EncodeSeq(block)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver in reverse order.
	for i := len(seq) - 1; i >= 0; i-- {
		if err := rc.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(seq[i])}); err != nil {
			t.Fatal(err)
		}
		if i > 0 && rc.PendingBurst() != len(seq)-i {
			t.Fatalf("pending = %d after %d packets", rc.PendingBurst(), len(seq)-i)
		}
	}
	if rc.PendingBurst() != 0 {
		t.Fatalf("burst not flushed, pending = %d", rc.PendingBurst())
	}
	var y []wire.Bit
	for {
		act, ok := rc.NextLocal()
		if !ok || act.Kind() != wire.KindWrite {
			break
		}
		if err := rc.Apply(act); err != nil {
			t.Fatal(err)
		}
		y = append(y, act.(wire.Write).M)
	}
	if wire.BitsToString(y) != wire.BitsToString(block) {
		t.Fatalf("decoded %s, want %s", wire.BitsToString(y), wire.BitsToString(block))
	}
	if rc.Written() != len(block) {
		t.Fatalf("written = %d", rc.Written())
	}
}

func TestBetaReceiverRejectsForeignSymbol(t *testing.T) {
	p := Params{C1: 1, C2: 1, D: 5}
	rc, err := NewBetaReceiver(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Symbol 7 over k = 3 is outside the alphabet; classify says none, so
	// the action is not an input of this automaton at all.
	in := wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(7)}
	if rc.Classify(in) == ioa.ClassInput {
		t.Error("out-of-alphabet packet classified as input")
	}
}

// TestBetaReceiverCorruptBurstErrors: a burst that is not a codeword (rank
// out of encodable range) surfaces as a decode error rather than silent
// garbage.
func TestBetaReceiverCorruptBurstErrors(t *testing.T) {
	p := Params{C1: 1, C2: 1, D: 4} // δ1 = 4; k = 3: μ = 15, L = 3, ranks 8..14 unused
	rc, err := NewBetaReceiver(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	codec, err := multiset.NewCodec(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The codec orders multisets by ascending count of symbol 0, so the
	// all-zeros burst has the highest rank μ-1 = 14 >= 2^3: not a codeword.
	allZero, err := multiset.FromCounts([]int{4, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if r, err := codec.Rank(allZero); err != nil || r.Int64() != 14 {
		t.Fatalf("rank({0,0,0,0}) = %v, %v; want 14", r, err)
	}
	var lastErr error
	for i := 0; i < 4; i++ {
		lastErr = rc.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(0)})
	}
	if lastErr == nil {
		t.Fatal("corrupt burst should error on completion")
	}
}

func TestBetaClassification(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	tr, err := NewBetaTransmitter(p, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Classify(wire.Send{Dir: wire.TtoR, P: wire.DataPacket(1)}) != ioa.ClassOutput {
		t.Error("data send should be output")
	}
	if tr.Classify(wire.Send{Dir: wire.RtoT, P: wire.AckPacket()}) != ioa.ClassNone {
		t.Error("acks are outside the r-passive signature")
	}
	if tr.Classify(wire.Internal{Name: "wait_t"}) != ioa.ClassInternal {
		t.Error("wait_t should be internal")
	}
	rc, err := NewBetaReceiver(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Classify(wire.Write{M: 0}) != ioa.ClassOutput {
		t.Error("write should be output")
	}
	if rc.Classify(wire.Internal{Name: "idle_r"}) != ioa.ClassInternal {
		t.Error("idle_r should be internal")
	}
	if !tr.DeterministicIOA() || !rc.DeterministicIOA() {
		t.Error("beta automata must be deterministic")
	}
}

// TestBetaEmptyInputQuiescent: a transmitter with nothing to send is
// immediately quiescent.
func TestBetaEmptyInputQuiescent(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	tr, err := NewBetaTransmitter(p, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.NextLocal(); ok {
		t.Error("empty transmitter should be quiescent")
	}
	if !tr.Done() {
		t.Error("empty transmitter is done")
	}
}
