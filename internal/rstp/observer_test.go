package rstp

import (
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestObserverCountsHardenedEvents pins the hardened layer's hooks: under
// a dropping+corrupting plan the observer must see retransmits and
// checksum rejects at exactly the layer's own diagnostic rates.
func TestObserverCountsHardenedEvents(t *testing.T) {
	p := chaosParams()
	s, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	hs := Harden(s, HardenOptions{Observer: ObsObserver(reg)})
	x := chaosInput(s, 6)
	plan := faults.NewPlan(11, chanmodel.MaxDelay{D: p.D},
		faults.Fault{From: 0, To: 600, Drop: 0.3, Corrupt: 0.2})
	run, err := hs.Run(x, RunOptions{Delay: plan, MaxTicks: 500_000})
	if err != nil {
		t.Fatalf("hardened run: %v", err)
	}
	if v := hs.VerifyComplete(run, x); len(v) > 0 {
		t.Fatalf("run did not complete cleanly: %v", v[0])
	}
	snap := reg.Snapshot()
	if snap.Counters["rstp_layer_retransmits_total"] == 0 {
		t.Error("no retransmits observed under a 30% drop plan")
	}
	if snap.Counters["rstp_layer_checksum_rejects_total"] == 0 {
		t.Error("no checksum rejects observed under a 20% corruption plan")
	}
}

// TestObserverCountsStabilizedEvents pins the stabilizing layer's hooks:
// a transmitter crash forces the resync handshake, so the observer must
// see at least one epoch rewind and one REWIND adoption.
func TestObserverCountsStabilizedEvents(t *testing.T) {
	p := chaosParams()
	s, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ss := Stabilize(s, StabilizeOptions{Observer: ObsObserver(reg)})
	x := chaosInput(s, 12)
	plan := faults.NewProcPlan(31,
		faults.ProcFault{Proc: sim.ProcTransmitter, From: 100, To: 260, Crash: true})
	run, err := ss.Run(x, RunOptions{ProcFaults: plan, MaxTicks: 500_000})
	if err != nil {
		t.Fatalf("stabilized run: %v", err)
	}
	if v := ss.VerifyComplete(run, x); len(v) > 0 {
		t.Fatalf("run did not converge: %v", v[0])
	}
	snap := reg.Snapshot()
	if snap.Counters["rstp_layer_resyncs_total"] == 0 {
		t.Error("no epoch rewinds observed across a transmitter crash")
	}
	if snap.Counters["rstp_layer_rewind_adopts_total"] == 0 {
		t.Error("no REWIND adoptions observed across a transmitter crash")
	}
}
