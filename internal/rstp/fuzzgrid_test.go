package rstp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chanmodel"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestRandomParameterGridQuick is the broad-spectrum property test: for
// random legal (c1, c2, d, k), random inputs, random schedules and random
// delivery delays, every protocol delivers Y = X with good(A) holding.
func TestRandomParameterGridQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	f := func(a, b, c, kk, seed uint8) bool {
		p := Params{C1: int64(a%4) + 1}
		p.C2 = p.C1 + int64(b%4)
		p.D = p.C2 + int64(c%20) + 1
		k := 2 + int(kk%7)
		runRng := rand.New(rand.NewSource(int64(seed)))

		solutions := make([]Solution, 0, 3)
		alpha, err := Alpha(p)
		if err != nil {
			return false
		}
		solutions = append(solutions, alpha)
		beta, err := Beta(p, k)
		if err != nil {
			return false
		}
		solutions = append(solutions, beta)
		gamma, err := Gamma(p, k)
		if err != nil {
			return false
		}
		solutions = append(solutions, gamma)

		for _, s := range solutions {
			x := wire.RandomBits(3*s.BlockBits, rng.Uint64)
			run, err := s.Run(x, RunOptions{
				TPolicy: sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: runRng.Int63n},
				RPolicy: sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: runRng.Int63n},
				Delay:   &chanmodel.UniformRandom{D: p.D, Rand: runRng},
			})
			if err != nil {
				t.Logf("%s %v: %v", s, p, err)
				return false
			}
			if wire.BitsToString(run.Writes()) != wire.BitsToString(x) {
				t.Logf("%s %v: Y != X", s, p)
				return false
			}
			if v := s.Verify(run, x); len(v) != 0 {
				t.Logf("%s %v: %v", s, p, v[0])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSimulationIsDeterministic: identical configurations (including
// seeds) produce identical traces — the property every "re-run this
// experiment" claim rests on.
func TestSimulationIsDeterministic(t *testing.T) {
	p := Params{C1: 2, C2: 4, D: 12}
	s, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := wire.RandomBits(10*s.BlockBits, rand.New(rand.NewSource(5)).Uint64)
	trace := func() string {
		rng := rand.New(rand.NewSource(77))
		run, err := s.Run(x, RunOptions{
			TPolicy: sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: rng.Int63n},
			RPolicy: sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: rng.Int63n},
			Delay:   &chanmodel.UniformRandom{D: p.D, Rand: rng},
		})
		if err != nil {
			t.Fatal(err)
		}
		var out string
		for _, e := range run.Trace {
			out += e.String() + "\n"
		}
		return out
	}
	if trace() != trace() {
		t.Fatal("identical configurations produced different traces")
	}
}
