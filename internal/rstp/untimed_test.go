package rstp

import (
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/ioa"
	"repro/internal/wire"
)

// TestAlphaNeedsTimingUntimedReorderBreaksIt demonstrates why RSTP's
// real-time assumptions are load-bearing: composed as plain (untimed) I/O
// automata with the specification channel C(P) — which may reorder freely —
// the very same A^α automata violate Y = X. The timed property Δ(C)
// together with A^α's d-spaced sends is exactly what rules this out.
func TestAlphaNeedsTimingUntimedReorderBreaksIt(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 8} // ⌈d/c1⌉ = 4 steps per round
	x, err := wire.ParseBits("10")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewAlphaTransmitter(p, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewAlphaReceiver(p)
	if err != nil {
		t.Fatal(err)
	}
	ch := chanmodel.NewChannel("chan")
	comp, err := ioa.Compose("alpha-untimed", tr, ch, rc)
	if err != nil {
		t.Fatal(err)
	}

	// Drive the transmitter until both packets are in flight: 4 steps to
	// send bit 0 and complete the wait, one more to send bit 1. Without
	// timing, nothing forces the channel to deliver in between.
	for i := 0; i < 5; i++ {
		act, ok := tr.NextLocal()
		if !ok {
			t.Fatalf("transmitter quiescent after %d steps", i)
		}
		if err := comp.Apply(act); err != nil {
			t.Fatal(err)
		}
	}
	if ch.InFlight() != 2 {
		t.Fatalf("in flight = %d, want 2", ch.InFlight())
	}

	// Adversarial channel scheduling: deliver the second packet first.
	// Both recv actions are enabled channel outputs — the untimed model
	// permits either order.
	if err := comp.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(0)}); err != nil {
		t.Fatal(err)
	}
	if err := comp.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(1)}); err != nil {
		t.Fatal(err)
	}

	// Let the receiver write everything it has.
	for i := 0; i < 4; i++ {
		act, ok := rc.NextLocal()
		if !ok {
			break
		}
		if err := comp.Apply(act); err != nil {
			t.Fatal(err)
		}
	}
	if rc.Written() != 2 {
		t.Fatalf("written = %d, want 2", rc.Written())
	}

	// The receiver wrote "01" for input "10": safety violated.
	var y []wire.Bit
	for _, e := range collectWrites(t, comp) {
		y = append(y, e)
	}
	if wire.BitsToString(y) == wire.BitsToString(x) {
		t.Fatal("untimed reordering unexpectedly preserved Y = X; the demonstration is broken")
	}
}

// TestGammaUntimedFairExecutor runs the full formal composition
// At ∘ C(P) ∘ Ar of Section 4 under the Section 2.1 fair-execution
// semantics (round-robin over locally controlled actions, the channel
// delivering FIFO): the ack-clocked A^γ delivers X with no timing at all.
// This is the ioa-level counterpart of the model checker's exhaustive
// result — one fair execution, executed through the formal composition
// operator itself.
func TestGammaUntimedFairExecutor(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	k := 4
	x := make([]wire.Bit, 2*GammaBlockBits(p, k))
	for i := range x {
		x[i] = wire.Bit(i % 2)
	}
	tr, err := NewGammaTransmitter(p, k, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewGammaReceiver(p, k)
	if err != nil {
		t.Fatal(err)
	}
	ch := chanmodel.NewChannel("chan")
	comp, err := ioa.Compose("gamma-untimed", tr, ch, rc)
	if err != nil {
		t.Fatal(err)
	}
	ex := ioa.NewExecutor(comp, &ioa.RoundRobin{})
	// The receiver idles forever, so the system never goes quiescent; run
	// until all writes appear.
	for steps := 0; steps < 100_000; steps++ {
		if _, ok, err := ex.Step(); err != nil {
			t.Fatal(err)
		} else if !ok {
			break
		}
		if ex.Trace().KindCount(wire.KindWrite) == len(x) {
			break
		}
	}
	var y []wire.Bit
	for _, act := range ex.Trace().Restrict(func(a ioa.Action) bool { return a.Kind() == wire.KindWrite }) {
		y = append(y, act.(wire.Write).M)
	}
	if wire.BitsToString(y) != wire.BitsToString(x) {
		t.Fatalf("untimed fair execution: Y = %s, want %s", wire.BitsToString(y), wire.BitsToString(x))
	}
	if !tr.Done() {
		t.Error("transmitter should be done")
	}
	// The behavior restricted to the transmitter contains exactly the
	// sends and ack recvs (no internals) — the beh(α)|A projection.
	beh := ex.Trace().Behavior(tr)
	for _, a := range beh {
		if a.Kind() != wire.KindSend && a.Kind() != wire.KindRecv {
			t.Fatalf("transmitter behavior contains %v", a)
		}
	}
}

// collectWrites replays the composition's receiver state; since the
// executor wasn't used, writes are reconstructed from the receiver.
func collectWrites(t *testing.T, comp *ioa.Composition) []wire.Bit {
	t.Helper()
	auto, ok := comp.Component(ReceiverName)
	if !ok {
		t.Fatal("no receiver component")
	}
	rc, ok := auto.(*AlphaReceiver)
	if !ok {
		t.Fatalf("receiver has type %T", auto)
	}
	return rc.y[:rc.k]
}
