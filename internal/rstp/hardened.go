package rstp

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

// The hardened layer: a reliability shim that lets any of the paper's
// three solutions survive a channel that has left the Δ(C(P)) model.
//
// The paper's protocols are correct because the model promises in-order,
// exactly-once, within-d delivery. Under faults (drops, duplicates,
// delay beyond d, corruption) those promises break — but all three inner
// protocols remain correct under the weaker promise "each process's
// incoming packets arrive in send order, exactly once, eventually":
// A^α writes arrivals in order, A^β(k) delimits bursts by packet count
// (δ1 per burst, see BetaReceiver.onInput), and A^γ(k) is clocked by its
// own acknowledgements. The shim restores exactly that promise with the
// classic machinery the paper deliberately excludes from its model:
// per-packet sequence numbers, a 4-bit checksum, cumulative
// acknowledgements, and retransmission with bounded exponential backoff.
//
// Both endpoints get the same hardEnd wrapper, each playing a sender
// role for its inner automaton's outgoing packets and a receiver role
// for incoming ones. The wrapper keeps the inner automaton's name
// ("t"/"r"), so traces, validators and StopAfterWrites see the usual
// actors.
//
// Guarantee split (and its limits): safety — Y is a prefix of X at every
// point — holds under ANY fault plan, because the inner automata only
// ever see a checksum-clean, deduplicated, in-order stream. Liveness —
// Y = X eventually — additionally needs the faults to stop (every
// faults.Fault window closes) so that retransmission can win; a channel
// that drops everything forever defeats any protocol.

// Tag layout of packets on a hardened channel: bit 0 distinguishes layer
// control (cumulative ack) from wrapped inner payload, bits 1-4 carry a
// 4-bit checksum, bits 5+ carry the sequence number (payload) or the
// cumulative ack value (control).
const (
	hardCtrlBit  = 1
	hardCkShift  = 1
	hardCkMask   = 0xF
	hardSeqShift = 5
)

// hardChecksum hashes the header fields plus the (unwrapped) packet into
// 4 bits. The symbol multiplier 31 ≡ -1 (mod 16) makes every symbol
// offset that is nonzero mod 16 flip the checksum — the fault injector's
// corruption (faults.Fault.Corrupt) is exactly that class, so detection
// is deterministic rather than w.h.p.
func hardChecksum(val int64, p wire.Packet, dir wire.Dir, ctrl bool) int {
	h := val*1000003 + int64(p.Symbol)*31 + int64(p.Kind)*17 + int64(dir)*7
	if ctrl {
		h += 13
	}
	return int(((h % 16) + 16) % 16)
}

// hardWrap seals an inner packet with a sequence number and checksum.
func hardWrap(seq int64, inner wire.Packet, dir wire.Dir) wire.Packet {
	ck := hardChecksum(seq, inner, dir, false)
	return wire.Packet{
		Kind:   inner.Kind,
		Symbol: inner.Symbol,
		Tag:    int(seq<<hardSeqShift) | ck<<hardCkShift,
	}
}

// hardAckPacket builds the layer's cumulative-ack control packet: "I have
// delivered every payload below cum to my inner automaton".
func hardAckPacket(cum int64, dir wire.Dir) wire.Packet {
	p := wire.Packet{Kind: wire.Ack}
	ck := hardChecksum(cum, p, dir, true)
	p.Tag = int(cum<<hardSeqShift) | ck<<hardCkShift | hardCtrlBit
	return p
}

// hardDecode splits a received packet into its header and verifies the
// checksum; ok == false means the packet is damaged and must be dropped.
func hardDecode(p wire.Packet, dir wire.Dir) (val int64, ctrl bool, ok bool) {
	ctrl = p.Tag&hardCtrlBit != 0
	ck := (p.Tag >> hardCkShift) & hardCkMask
	val = int64(p.Tag) >> hardSeqShift
	base := p
	base.Tag = 0
	return val, ctrl, val >= 0 && hardChecksum(val, base, dir, ctrl) == ck
}

// HardenOptions tune the reliability layer. Zero values get defaults
// derived from the solution's Params.
type HardenOptions struct {
	// Window caps outstanding unacknowledged payload packets per
	// direction; the wrapper stalls its inner automaton's sends (with
	// internal idle steps, keeping the step clock legal) while full.
	// Default 4·δ1 + 4 — four bursts of headroom.
	Window int
	// RTOSteps is the base retransmission timeout in local steps of the
	// sending endpoint. Default ⌈(δ1·c2 + d)/c1⌉ + 2: a full burst at the
	// slowest legal schedule plus one maximum channel delay, converted to
	// steps at the fastest schedule, so a healthy channel never triggers a
	// spurious retransmit.
	RTOSteps int64
	// BackoffCap bounds the exponential backoff: the timeout for attempt
	// n is RTOSteps·2^min(n, BackoffCap). Default 4 (≤ 16× base), so the
	// layer probes a healed channel within a bounded delay instead of
	// backing off forever.
	BackoffCap int
	// Observer receives the layer's protocol events (retransmits,
	// checksum rejects, stale drops). Shared across every endpoint built
	// from these options, so implementations must be concurrency-safe.
	// nil disables the hooks.
	Observer LayerObserver
}

func (o HardenOptions) withDefaults(p Params) HardenOptions {
	d1 := int64(p.Delta1())
	if o.Window <= 0 {
		o.Window = int(4*d1 + 4)
	}
	if o.RTOSteps <= 0 {
		rtt := d1*p.C2 + p.D
		o.RTOSteps = (rtt+p.C1-1)/p.C1 + 2
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 4
	}
	return o
}

// hardOut is one unacknowledged payload send awaiting its cumulative ack.
type hardOut struct {
	seq      int64
	pkt      wire.Packet
	lastSent int64 // in local steps
	attempt  int
}

// hardEnd wraps one endpoint's inner automaton with the reliability
// layer. outDir is the direction the inner automaton sends on; inDir is
// the direction it receives on.
type hardEnd struct {
	inner         ioa.Automaton
	outDir, inDir wire.Dir
	window        int
	rtoBase       int64
	backoffCap    int

	// Sender role: sequence numbers and the retransmission queue for the
	// inner automaton's outgoing packets.
	nextSeq     int64
	outstanding []hardOut
	steps       int64 // local step counter — the layer's proxy clock

	// Receiver role: in-order exactly-once reassembly of incoming
	// payloads, plus the coalesced cumulative ack.
	expected   int64
	buffer     map[int64]wire.Packet
	ackPending bool
	lastWasAck bool // fairness gate: never two acks back to back

	// Diagnostics.
	rejected int // checksum failures dropped
	stale    int // duplicate/old payloads discarded

	obs LayerObserver // nil disables the event hooks
}

var _ ioa.Automaton = (*hardEnd)(nil)

func newHardEnd(inner ioa.Automaton, outDir, inDir wire.Dir, o HardenOptions) *hardEnd {
	return &hardEnd{
		inner:      inner,
		outDir:     outDir,
		inDir:      inDir,
		window:     o.Window,
		rtoBase:    o.RTOSteps,
		backoffCap: o.BackoffCap,
		buffer:     make(map[int64]wire.Packet),
		obs:        o.Observer,
	}
}

// rto returns the timeout for the given attempt with capped exponential
// backoff.
func (h *hardEnd) rto(attempt int) int64 {
	if attempt > h.backoffCap {
		attempt = h.backoffCap
	}
	return h.rtoBase << attempt
}

// Name keeps the inner automaton's actor name so traces and validators
// are oblivious to the layer.
func (h *hardEnd) Name() string { return h.inner.Name() }

// Classify places layer traffic first, then defers to the inner
// signature. Crucially every Recv on inDir is an input regardless of
// content — the layer, not the signature, rejects damaged packets, which
// is what keeps a corrupted symbol from crashing the run the way it does
// an unhardened A^β/A^γ receiver.
func (h *hardEnd) Classify(act ioa.Action) ioa.Class {
	switch a := act.(type) {
	case wire.Recv:
		if a.Dir == h.inDir {
			return ioa.ClassInput
		}
	case wire.Send:
		if a.Dir == h.outDir {
			return ioa.ClassOutput
		}
	case wire.Internal:
		if a.Name == "idle_h" {
			return ioa.ClassInternal
		}
	}
	return h.inner.Classify(act)
}

// NextLocal picks the layer's next action. Priority: (1) the coalesced
// ack, fairness-gated so it cannot starve payload; (2) a due
// retransmission of the oldest outstanding packet; (3) the inner
// automaton's own action — sends wrapped and window-gated, everything
// else forwarded verbatim; (4) the ack when there is nothing else;
// (5) an internal idle step to keep the retransmission clock ticking.
func (h *hardEnd) NextLocal() (ioa.Action, bool) {
	if h.ackPending && !h.lastWasAck {
		return wire.Send{Dir: h.outDir, P: hardAckPacket(h.expected, h.outDir)}, true
	}
	if len(h.outstanding) > 0 {
		o := h.outstanding[0]
		if h.steps-o.lastSent >= h.rto(o.attempt) {
			return wire.Send{Dir: h.outDir, P: o.pkt}, true
		}
	}
	if act, ok := h.inner.NextLocal(); ok {
		if s, isSend := act.(wire.Send); isSend && s.Dir == h.outDir {
			if len(h.outstanding) < h.window {
				return wire.Send{Dir: h.outDir, P: hardWrap(h.nextSeq, s.P, h.outDir)}, true
			}
			return wire.Internal{Name: "idle_h"}, true
		}
		return act, true
	}
	if h.ackPending {
		return wire.Send{Dir: h.outDir, P: hardAckPacket(h.expected, h.outDir)}, true
	}
	if len(h.outstanding) > 0 {
		return wire.Internal{Name: "idle_h"}, true
	}
	return nil, false
}

// Apply performs one transition: inputs go through the layer's receive
// path, layer sends through the send path, and the inner automaton's own
// actions are forwarded verbatim.
func (h *hardEnd) Apply(act ioa.Action) error {
	if recv, ok := act.(wire.Recv); ok && recv.Dir == h.inDir {
		return h.onRecv(recv.P)
	}
	switch a := act.(type) {
	case wire.Internal:
		if a.Name == "idle_h" {
			h.steps++
			h.lastWasAck = false
			return nil
		}
	case wire.Send:
		if a.Dir == h.outDir {
			return h.onLocalSend(a)
		}
	}
	h.steps++
	h.lastWasAck = false
	return h.inner.Apply(act)
}

// onLocalSend commits one of the layer's own send actions.
func (h *hardEnd) onLocalSend(s wire.Send) error {
	h.steps++
	val, ctrl, ok := hardDecode(s.P, h.outDir)
	if !ok {
		return fmt.Errorf("rstp: hardened %s: malformed local send %v: %w", h.inner.Name(), s, ioa.ErrNotEnabled)
	}
	if ctrl {
		h.lastWasAck = true
		h.ackPending = false
		return nil
	}
	h.lastWasAck = false
	if val < h.nextSeq {
		// Retransmission: rearm the timer with one more backoff doubling.
		for i := range h.outstanding {
			if h.outstanding[i].seq == val {
				h.outstanding[i].lastSent = h.steps
				h.outstanding[i].attempt++
				emit(h.obs, LayerRetransmit)
				return nil
			}
		}
		return nil
	}
	// Fresh payload: the inner automaton's pending send becomes real now.
	// NextLocal is pure, so re-asking yields the same action we wrapped.
	inner, ok := h.inner.NextLocal()
	if !ok {
		return fmt.Errorf("rstp: hardened %s: inner send vanished: %w", h.inner.Name(), ioa.ErrNotEnabled)
	}
	if err := h.inner.Apply(inner); err != nil {
		return err
	}
	h.outstanding = append(h.outstanding, hardOut{seq: val, pkt: s.P, lastSent: h.steps})
	h.nextSeq = val + 1
	return nil
}

// onRecv is the layer's receive path: checksum gate, then either the ack
// ledger (control) or in-order exactly-once reassembly (payload).
func (h *hardEnd) onRecv(p wire.Packet) error {
	val, ctrl, ok := hardDecode(p, h.inDir)
	if !ok {
		h.rejected++
		emit(h.obs, LayerChecksumReject)
		return nil
	}
	if ctrl {
		for len(h.outstanding) > 0 && h.outstanding[0].seq < val {
			h.outstanding = h.outstanding[1:]
		}
		return nil
	}
	// Every payload arrival re-arms the ack — a duplicate usually means
	// the previous ack was lost.
	h.ackPending = true
	if val < h.expected {
		h.stale++
		emit(h.obs, LayerStaleDrop)
		return nil
	}
	unwrapped := p
	unwrapped.Tag = 0
	if val != h.expected {
		h.buffer[val] = unwrapped
		return nil
	}
	// In-order head: deliver it and any buffered successors.
	for {
		if err := h.inner.Apply(wire.Recv{Dir: h.inDir, P: unwrapped}); err != nil {
			return fmt.Errorf("rstp: hardened %s: inner rejected payload #%d: %w", h.inner.Name(), h.expected, err)
		}
		h.expected++
		next, buffered := h.buffer[h.expected]
		if !buffered {
			return nil
		}
		delete(h.buffer, h.expected)
		unwrapped = next
	}
}

// HardenedSolution is a Solution wrapped in the reliability layer at both
// endpoints.
type HardenedSolution struct {
	// Inner is the protocol being protected.
	Inner Solution
	// Opts are the layer's tuning knobs (zero values take defaults).
	Opts HardenOptions
}

// Harden wraps a solution in the reliability layer.
func Harden(s Solution, opts HardenOptions) HardenedSolution {
	return HardenedSolution{Inner: s, Opts: opts.withDefaults(s.Params)}
}

// String renders e.g. "hardened(beta(k=4))".
func (hs HardenedSolution) String() string { return "hardened(" + hs.Inner.String() + ")" }

// NewPair constructs the wrapped transmitter and receiver for input x.
func (hs HardenedSolution) NewPair(x []wire.Bit) (t, r ioa.Automaton, err error) {
	it, ir, err := hs.Inner.NewPair(x)
	if err != nil {
		return nil, nil, err
	}
	o := hs.Opts.withDefaults(hs.Inner.Params)
	return newHardEnd(it, wire.TtoR, wire.RtoT, o), newHardEnd(ir, wire.RtoT, wire.TtoR, o), nil
}

// Run executes the hardened solution on input x until all |x| messages
// are written (or the run's caps fire — under a fault plan that never
// heals, liveness is forfeit and the caller inspects the partial run).
func (hs HardenedSolution) Run(x []wire.Bit, opt RunOptions) (*sim.Run, error) {
	opt = opt.withDefaults(hs.Inner.Params)
	t, r, err := hs.NewPair(x)
	if err != nil {
		return nil, err
	}
	run, err := sim.Simulate(sim.Config{
		C1:          hs.Inner.Params.C1,
		C2:          hs.Inner.Params.C2,
		D:           hs.Inner.Params.D,
		Transmitter: sim.Process{Auto: t, Policy: opt.TPolicy},
		Receiver:    sim.Process{Auto: r, Policy: opt.RPolicy},
		Delay:       opt.Delay,
		ProcFaults:  opt.ProcFaults,
		Stop:        sim.StopAfterWrites(len(x)),
		MaxTicks:    opt.MaxTicks,
		MaxEvents:   opt.MaxEvents,
	})
	if run != nil {
		run.MeasureStabilization(x)
	}
	if err != nil {
		return run, fmt.Errorf("rstp: %s run: %w", hs, err)
	}
	return run, nil
}

// VerifySafety checks the fault-tolerant guarantee: Y is a prefix of X at
// every point of the trace. It does not require completion — under an
// unhealed fault plan a safe run may be cut short.
func (hs HardenedSolution) VerifySafety(run *sim.Run, x []wire.Bit) []timed.Violation {
	return timed.PrefixInvariant(run.Trace, x, false)
}

// VerifyComplete checks safety plus the liveness outcome Y = X — the
// guarantee once every fault window has closed.
func (hs HardenedSolution) VerifyComplete(run *sim.Run, x []wire.Bit) []timed.Violation {
	return timed.PrefixInvariant(run.Trace, x, true)
}

// Verify checks the full good(A) conditions plus Y = X. Only fault-free
// runs can pass: the layer changes nothing the validators see when the
// channel honours the model, so a hardened run on a healthy channel is
// held to the same standard as an unhardened one.
func (hs HardenedSolution) Verify(run *sim.Run, x []wire.Bit) []timed.Violation {
	return timed.Good(run.Trace, timed.GoodConfig{
		C1:              hs.Inner.Params.C1,
		C2:              hs.Inner.Params.C2,
		D:               hs.Inner.Params.D,
		Transmitter:     TransmitterName,
		Receiver:        ReceiverName,
		X:               x,
		RequireComplete: true,
	})
}
