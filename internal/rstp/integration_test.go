package rstp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/sim"
	"repro/internal/wire"
)

// solutions under test, over a parameter grid.
func testGrid(t *testing.T) []Solution {
	t.Helper()
	var out []Solution
	paramGrid := []Params{
		{C1: 1, C2: 1, D: 4},
		{C1: 1, C2: 2, D: 6},
		{C1: 2, C2: 3, D: 12},
		{C1: 2, C2: 5, D: 11}, // non-divisible d/c1, d/c2
		{C1: 3, C2: 4, D: 25},
	}
	for _, p := range paramGrid {
		a, err := Alpha(p)
		if err != nil {
			t.Fatalf("Alpha(%v): %v", p, err)
		}
		out = append(out, a)
		for _, k := range []int{2, 4, 16} {
			b, err := Beta(p, k)
			if err != nil {
				t.Fatalf("Beta(%v,%d): %v", p, k, err)
			}
			out = append(out, b)
			g, err := Gamma(p, k)
			if err != nil {
				t.Fatalf("Gamma(%v,%d): %v", p, k, err)
			}
			out = append(out, g)
		}
	}
	return out
}

func randomInput(t *testing.T, s Solution, blocks int, seed int64) []wire.Bit {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return wire.RandomBits(blocks*s.BlockBits, rng.Uint64)
}

// TestSolutionsSolveRSTP is the headline integration test: every protocol ×
// every schedule × every legal channel adversary yields a good execution
// with Y = X.
func TestSolutionsSolveRSTP(t *testing.T) {
	for _, s := range testGrid(t) {
		s := s
		t.Run(s.String()+"/"+s.Params.String(), func(t *testing.T) {
			x := randomInput(t, s, 6, 42)
			rng := rand.New(rand.NewSource(99))
			schedules := []sim.StepPolicy{
				sim.FixedGap{C: s.Params.C1},
				sim.FixedGap{C: s.Params.C2},
				sim.AlternatingGap{C1: s.Params.C1, C2: s.Params.C2},
				sim.RandomGap{C1: s.Params.C1, C2: s.Params.C2, Int63n: rng.Int63n},
			}
			delays := []chanmodel.DelayPolicy{
				chanmodel.Zero{},
				chanmodel.MaxDelay{D: s.Params.D},
				chanmodel.FixedDelay{Delay: s.Params.D / 2},
				&chanmodel.UniformRandom{D: s.Params.D, Rand: rng},
				chanmodel.IntervalBatch{D: s.Params.D},
				&chanmodel.Jitter{D: s.Params.D, Base: s.Params.D / 2, Amp: s.Params.D / 3, Rand: rng},
				chanmodel.Bursty{D: s.Params.D, Lo: 0, Hi: s.Params.D, Period: 3 * s.Params.C2},
			}
			for _, sched := range schedules {
				for _, delay := range delays {
					run, err := s.Run(x, RunOptions{TPolicy: sched, RPolicy: sched, Delay: delay})
					if err != nil {
						t.Fatalf("sched=%s delay=%s: %v", sched.Name(), delay.Name(), err)
					}
					if got := wire.BitsToString(run.Writes()); got != wire.BitsToString(x) {
						t.Fatalf("sched=%s delay=%s: Y != X\nY=%s\nX=%s", sched.Name(), delay.Name(), got, wire.BitsToString(x))
					}
					if v := s.Verify(run, x); len(v) != 0 {
						t.Fatalf("sched=%s delay=%s: not good: %v", sched.Name(), delay.Name(), v[0])
					}
				}
			}
		})
	}
}

// TestBurstProtocolsSurviveReversal drives A^β and A^γ through the
// reverse-burst adversary: in-burst arrival order is reversed, and the
// multiset decoding must not care.
func TestBurstProtocolsSurviveReversal(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	for _, build := range []func() (Solution, error){
		func() (Solution, error) { return Beta(p, 4) },
		func() (Solution, error) { return Gamma(p, 4) },
	} {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		burst := p.Delta1()
		if s.Kind == KindGamma {
			burst = p.Delta2()
		}
		x := randomInput(t, s, 8, 7)
		delay := chanmodel.ReverseBurst{D: p.D, Burst: burst, StepGap: p.C1}
		run, err := s.Run(x, RunOptions{
			TPolicy: sim.FixedGap{C: p.C1},
			RPolicy: sim.FixedGap{C: p.C1},
			Delay:   delay,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if got := wire.BitsToString(run.Writes()); got != wire.BitsToString(x) {
			t.Fatalf("%s under reversal: Y != X", s)
		}
		if v := s.Verify(run, x); len(v) != 0 {
			t.Fatalf("%s under reversal: %v", s, v[0])
		}
	}
}

// TestAlphaEffortMatchesAnalytic checks eff(A^α) = ⌈d/c1⌉·c2 on the
// worst-case schedule, within the O(1/n) truncation slack.
func TestAlphaEffortMatchesAnalytic(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	s, err := Alpha(p)
	if err != nil {
		t.Fatal(err)
	}
	x := randomInput(t, s, 200, 3)
	eff, err := s.MeasureEffort(x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := AlphaEffort(p) // 6 * 3 = 18
	// Last send happens at (n-1) rounds, so measured = want*(n-1)/n.
	slack := want / float64(eff.N)
	if math.Abs(eff.PerMessage-want) > slack+1e-9 {
		t.Fatalf("alpha effort %.3f, want %.3f ± %.3f", eff.PerMessage, want, slack)
	}
}

// TestBetaEffortWithinUpperBound checks measured effort <= Lemma 6.1's
// bound on the worst-case schedule, and above the Theorem 5.3 lower bound.
func TestBetaEffortWithinUpperBound(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	for _, k := range []int{2, 4, 16} {
		s, err := Beta(p, k)
		if err != nil {
			t.Fatal(err)
		}
		x := randomInput(t, s, 100, 4)
		eff, err := s.MeasureEffort(x, RunOptions{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		ub := BetaUpperBound(p, k)
		lb := PassiveLowerBound(p, k)
		if eff.PerMessage > ub+1e-9 {
			t.Errorf("k=%d: measured %.3f exceeds upper bound %.3f", k, eff.PerMessage, ub)
		}
		if eff.PerMessage < lb-ub/float64(eff.N)-1e-9 {
			t.Errorf("k=%d: measured %.3f below lower bound %.3f", k, eff.PerMessage, lb)
		}
	}
}

// TestGammaEffortWithinUpperBound checks measured effort <= Section 6.2's
// (3d+c2)/⌊log μ_k(δ2)⌋ bound on the worst-case schedule.
func TestGammaEffortWithinUpperBound(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	for _, k := range []int{2, 4, 16} {
		s, err := Gamma(p, k)
		if err != nil {
			t.Fatal(err)
		}
		x := randomInput(t, s, 100, 5)
		eff, err := s.MeasureEffort(x, RunOptions{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		ub := GammaUpperBound(p, k)
		if eff.PerMessage > ub+1e-9 {
			t.Errorf("k=%d: measured %.3f exceeds upper bound %.3f", k, eff.PerMessage, ub)
		}
		if lb := ActiveLowerBound(p, k); eff.PerMessage < lb-ub/float64(eff.N)-1e-9 {
			t.Errorf("k=%d: measured %.3f below active lower bound %.3f", k, eff.PerMessage, lb)
		}
	}
}

// TestEffortDecreasesWithK reproduces the headline shape: larger packet
// alphabets mean proportionally less effort (~1/log k).
func TestEffortDecreasesWithK(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 24}
	var prev float64 = math.Inf(1)
	for _, k := range []int{2, 4, 16, 64} {
		s, err := Beta(p, k)
		if err != nil {
			t.Fatal(err)
		}
		x := randomInput(t, s, 50, 6)
		eff, err := s.MeasureEffort(x, RunOptions{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if eff.PerMessage >= prev {
			t.Errorf("effort did not decrease at k=%d: %.3f >= %.3f", k, eff.PerMessage, prev)
		}
		prev = eff.PerMessage
	}
}

// TestGammaSurvivesDelayViolation: A^γ's safety is ack-clocked, so it still
// delivers X correctly when the channel breaks the d bound (the run is no
// longer "good" — the delay validator must say so — but Y must equal X).
// A^β's grouping, by contrast, is time-clocked and corrupts.
func TestGammaSurvivesDelayViolation(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	delay := chanmodel.ExceedBound{D: p.D, Excess: 3 * p.D}

	g, err := Gamma(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := randomInput(t, g, 4, 8)
	run, err := g.Run(x, RunOptions{Delay: delay, MaxTicks: 5_000_000})
	if err != nil {
		t.Fatalf("gamma under late channel: %v", err)
	}
	if got := wire.BitsToString(run.Writes()); got != wire.BitsToString(x) {
		t.Fatalf("gamma under late channel corrupted: Y=%s X=%s", got, wire.BitsToString(x))
	}
	if v := g.Verify(run, x); len(v) == 0 {
		t.Fatal("validator failed to flag the delay violation")
	}
}

// TestBetaBreaksUnderDelayViolation documents that A^β's correctness
// genuinely depends on the real-time assumption: with deliveries past d,
// bursts interleave and the receiver decodes garbage (or the run deadlocks
// short of full delivery). This is the "why real time matters" experiment.
func TestBetaBreaksUnderDelayViolation(t *testing.T) {
	p := Params{C1: 2, C2: 2, D: 8}
	b, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := randomInput(t, b, 12, 9)
	// Deliver even-indexed packets immediately and odd-indexed packets far
	// too late: bursts interleave at the receiver.
	delay := chanmodel.Func{
		Label: "interleaver",
		F: func(dirSeq int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
			if dirSeq%2 == 0 {
				return []int64{sendTime}
			}
			return []int64{sendTime + 10*p.D}
		},
	}
	run, runErr := b.Run(x, RunOptions{Delay: delay, MaxTicks: 2_000_000})
	// Either the receiver decodes a wrong block (Y != X) or decoding
	// rejects a non-codeword burst (run error). Both demonstrate the
	// dependence on Δ(C).
	if runErr == nil {
		if got := wire.BitsToString(run.Writes()); got == wire.BitsToString(x) {
			t.Fatal("beta unexpectedly survived a gross delay violation")
		}
	}
}

// TestTightnessConstants: the measured upper/lower ratio stays below the
// small constants the paper advertises ("only a constant factor worse").
func TestTightnessConstants(t *testing.T) {
	for _, p := range []Params{
		{C1: 1, C2: 1, D: 8},
		{C1: 2, C2: 3, D: 12},
		{C1: 2, C2: 4, D: 24},
	} {
		for _, k := range []int{2, 4, 16, 64} {
			if pt := PassiveTightness(p, k); !(pt >= 1) || pt > 6 {
				t.Errorf("passive tightness %v k=%d: %.2f out of (1,6]", p, k, pt)
			}
			if at := ActiveTightness(p, k); !(at >= 1) || at > 8 {
				t.Errorf("active tightness %v k=%d: %.2f out of (1,8]", p, k, at)
			}
		}
	}
}
