package rstp

import (
	"math"

	"repro/internal/multiset"
)

// Bound formulas from Sections 5 and 6, in ticks per message. All bounds
// are reported as float64; the underlying counting is exact (math/big).

// AlphaEffort returns the effort of A^α: ⌈d/c1⌉ · c2 ticks per message
// (= δ1·c2 = d·c2/c1 when c1 | d, the value stated after Figure 1).
func AlphaEffort(p Params) float64 {
	return float64(int64(p.CeilSteps1()) * p.C2)
}

// PassiveLowerBound returns Theorem 5.3's bound on every r-passive
// solution with |P^tr| = k:
//
//	eff >= δ1·c2 / log2 ζ_k(δ1).
func PassiveLowerBound(p Params, k int) float64 {
	d1 := p.Delta1()
	denom := multiset.Log2Zeta(k, d1)
	if denom <= 0 {
		return math.Inf(1)
	}
	return float64(int64(d1)*p.C2) / denom
}

// ActiveLowerBound returns Theorem 5.6's bound on every active solution
// with |P^tr| = k:
//
//	eff >= d / log2 ζ_k(δ2).
func ActiveLowerBound(p Params, k int) float64 {
	d2 := p.Delta2()
	denom := multiset.Log2Zeta(k, d2)
	if denom <= 0 {
		return math.Inf(1)
	}
	return float64(p.D) / denom
}

// BetaUpperBound returns Lemma 6.1's effort bound for A^β(k):
//
//	eff <= (δ1 + ⌈d/c1⌉)·c2 / ⌊log2 μ_k(δ1)⌋,
//
// which is the paper's 2δ1c2/⌊log2 μ_k(δ1)⌋ when c1 | d.
func BetaUpperBound(p Params, k int) float64 {
	bits := BetaBlockBits(p, k)
	if bits <= 0 {
		return math.Inf(1)
	}
	round := int64(p.Delta1()+p.CeilSteps1()) * p.C2
	return float64(round) / float64(bits)
}

// GammaUpperBound returns Section 6.2's effort bound for A^γ(k):
//
//	eff <= (3d + c2) / ⌊log2 μ_k(δ2)⌋.
func GammaUpperBound(p Params, k int) float64 {
	bits := GammaBlockBits(p, k)
	if bits <= 0 {
		return math.Inf(1)
	}
	return float64(3*p.D+p.C2) / float64(bits)
}

// PassiveTightness returns BetaUpperBound / PassiveLowerBound — the
// constant factor separating the r-passive solution from the r-passive
// lower bound (the paper's "only a constant factor worse"). It is NaN
// when either bound is degenerate (k < 2 encodes nothing).
func PassiveTightness(p Params, k int) float64 {
	lb := PassiveLowerBound(p, k)
	ub := BetaUpperBound(p, k)
	if lb == 0 || math.IsInf(lb, 1) || math.IsInf(ub, 1) {
		return math.NaN()
	}
	return ub / lb
}

// ActiveTightness returns GammaUpperBound / ActiveLowerBound, NaN when
// degenerate.
func ActiveTightness(p Params, k int) float64 {
	lb := ActiveLowerBound(p, k)
	ub := GammaUpperBound(p, k)
	if lb == 0 || math.IsInf(lb, 1) || math.IsInf(ub, 1) {
		return math.NaN()
	}
	return ub / lb
}

// MinRoundsPassive returns the Section 5.1 counting bound on the number of
// δ1-step intervals any r-passive solution needs for inputs of length n:
//
//	ℓ(n) >= n / log2 ζ_k(δ1).
func MinRoundsPassive(p Params, k, n int) float64 {
	denom := multiset.Log2Zeta(k, p.Delta1())
	if denom <= 0 {
		return math.Inf(1)
	}
	return float64(n) / denom
}
