package rstp

import (
	"math"
	"sort"

	"repro/internal/multiset"
)

// Bound formulas from Sections 5 and 6, in ticks per message. All bounds
// are reported as float64; the underlying counting is exact (math/big).

// AlphaEffort returns the effort of A^α: ⌈d/c1⌉ · c2 ticks per message
// (= δ1·c2 = d·c2/c1 when c1 | d, the value stated after Figure 1).
func AlphaEffort(p Params) float64 {
	return float64(int64(p.CeilSteps1()) * p.C2)
}

// PassiveLowerBound returns Theorem 5.3's bound on every r-passive
// solution with |P^tr| = k:
//
//	eff >= δ1·c2 / log2 ζ_k(δ1).
func PassiveLowerBound(p Params, k int) float64 {
	d1 := p.Delta1()
	denom := multiset.Log2Zeta(k, d1)
	if denom <= 0 {
		return math.Inf(1)
	}
	return float64(int64(d1)*p.C2) / denom
}

// ActiveLowerBound returns Theorem 5.6's bound on every active solution
// with |P^tr| = k:
//
//	eff >= d / log2 ζ_k(δ2).
func ActiveLowerBound(p Params, k int) float64 {
	d2 := p.Delta2()
	denom := multiset.Log2Zeta(k, d2)
	if denom <= 0 {
		return math.Inf(1)
	}
	return float64(p.D) / denom
}

// BetaUpperBound returns Lemma 6.1's effort bound for A^β(k):
//
//	eff <= (δ1 + ⌈d/c1⌉)·c2 / ⌊log2 μ_k(δ1)⌋,
//
// which is the paper's 2δ1c2/⌊log2 μ_k(δ1)⌋ when c1 | d.
func BetaUpperBound(p Params, k int) float64 {
	bits := BetaBlockBits(p, k)
	if bits <= 0 {
		return math.Inf(1)
	}
	round := int64(p.Delta1()+p.CeilSteps1()) * p.C2
	return float64(round) / float64(bits)
}

// GammaUpperBound returns Section 6.2's effort bound for A^γ(k):
//
//	eff <= (3d + c2) / ⌊log2 μ_k(δ2)⌋.
func GammaUpperBound(p Params, k int) float64 {
	bits := GammaBlockBits(p, k)
	if bits <= 0 {
		return math.Inf(1)
	}
	return float64(3*p.D+p.C2) / float64(bits)
}

// PassiveTightness returns BetaUpperBound / PassiveLowerBound — the
// constant factor separating the r-passive solution from the r-passive
// lower bound (the paper's "only a constant factor worse"). It is NaN
// when either bound is degenerate (k < 2 encodes nothing).
func PassiveTightness(p Params, k int) float64 {
	lb := PassiveLowerBound(p, k)
	ub := BetaUpperBound(p, k)
	if lb == 0 || math.IsInf(lb, 1) || math.IsInf(ub, 1) {
		return math.NaN()
	}
	return ub / lb
}

// ActiveTightness returns GammaUpperBound / ActiveLowerBound, NaN when
// degenerate.
func ActiveTightness(p Params, k int) float64 {
	lb := ActiveLowerBound(p, k)
	ub := GammaUpperBound(p, k)
	if lb == 0 || math.IsInf(lb, 1) || math.IsInf(ub, 1) {
		return math.NaN()
	}
	return ub / lb
}

// EffortRow pairs one transmitter alphabet size k with the paper's effort
// bounds for it: the protocol-family upper bound (what A^β(k)/A^γ(k) is
// guaranteed to achieve) and the matching lower bound (what Theorems 5.3
// and 5.6 prove any solution of that family must spend). Rows are the
// unit the adaptive control plane selects k from: effort falls like
// 1/log k while the packet alphabet — and hence packet size — grows
// with k, so "the right k" depends on how much effort the live system
// can currently afford.
type EffortRow struct {
	// K is the transmitter packet alphabet size |P^tr|.
	K int
	// Lower is the per-message effort lower bound in ticks: Theorem 5.3
	// (δ1·c2/log2 ζ_k(δ1)) for r-passive families, Theorem 5.6
	// (d/log2 ζ_k(δ2)) for active ones.
	Lower float64
	// Upper is the per-message effort upper bound in ticks: Lemma 6.1 for
	// A^β(k), the Section 6.2 analysis for A^γ(k), d·c2/c1 for A^α.
	Upper float64
}

// EffortTable evaluates the Sections 5 and 6 bound formulas over a set of
// candidate alphabet sizes for one protocol family ("alpha", "beta" or
// "gamma"), in ascending k. Degenerate rows (k < 2, or a bound that is
// infinite because the alphabet encodes nothing) are dropped rather than
// returned as ±Inf, so callers can iterate the table without guarding.
// Alpha ignores ks: its alphabet is binary and its single row is k = 2.
func EffortTable(p Params, proto string, ks []int) []EffortRow {
	if proto == "alpha" {
		return []EffortRow{{K: 2, Lower: PassiveLowerBound(p, 2), Upper: AlphaEffort(p)}}
	}
	out := make([]EffortRow, 0, len(ks))
	for _, k := range ks {
		if k < 2 {
			continue
		}
		var row EffortRow
		switch proto {
		case "beta":
			row = EffortRow{K: k, Lower: PassiveLowerBound(p, k), Upper: BetaUpperBound(p, k)}
		case "gamma":
			row = EffortRow{K: k, Lower: ActiveLowerBound(p, k), Upper: GammaUpperBound(p, k)}
		default:
			return nil
		}
		if math.IsInf(row.Lower, 1) || math.IsInf(row.Upper, 1) || math.IsNaN(row.Lower) || math.IsNaN(row.Upper) {
			continue
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

// MinRoundsPassive returns the Section 5.1 counting bound on the number of
// δ1-step intervals any r-passive solution needs for inputs of length n:
//
//	ℓ(n) >= n / log2 ζ_k(δ1).
func MinRoundsPassive(p Params, k, n int) float64 {
	denom := multiset.Log2Zeta(k, p.Delta1())
	if denom <= 0 {
		return math.Inf(1)
	}
	return float64(n) / denom
}
