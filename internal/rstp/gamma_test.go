package rstp

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/multiset"
	"repro/internal/wire"
)

func TestGammaBlockBitsMatchesCodec(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12} // δ2 = 4
	for _, k := range []int{2, 4, 16} {
		want := multiset.BlockBits(k, 4)
		if got := GammaBlockBits(p, k); got != want {
			t.Errorf("GammaBlockBits(k=%d) = %d, want %d", k, got, want)
		}
	}
}

func TestGammaTransmitterAckClocking(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12} // δ2 = 4
	k := 4
	bits := GammaBlockBits(p, k)
	x := make([]wire.Bit, 2*bits)
	tr, err := NewGammaTransmitter(p, k, x)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Burst() != 4 {
		t.Fatalf("burst = %d", tr.Burst())
	}

	// Burst 1: exactly 4 sends, then idle_t until acked.
	for i := 0; i < 4; i++ {
		act, ok := stepLocal(t, tr)
		if !ok || act.Kind() != wire.KindSend {
			t.Fatalf("step %d = %v, want send", i, act)
		}
	}
	for i := 0; i < 3; i++ {
		act, ok := stepLocal(t, tr)
		if !ok || act.Kind() != "idle_t" {
			t.Fatalf("waiting step = %v, want idle_t", act)
		}
	}

	// Three acks: still waiting. Fourth ack: next burst unlocked.
	ack := wire.Recv{Dir: wire.RtoT, P: wire.AckPacket()}
	for i := 0; i < 3; i++ {
		if err := tr.Apply(ack); err != nil {
			t.Fatal(err)
		}
		if act, _ := tr.NextLocal(); act.Kind() != "idle_t" {
			t.Fatalf("after %d acks: %v, want idle_t", i+1, act)
		}
	}
	if err := tr.Apply(ack); err != nil {
		t.Fatal(err)
	}
	act, ok := tr.NextLocal()
	if !ok || act.Kind() != wire.KindSend {
		t.Fatalf("after full ack: %v, want send", act)
	}

	// Drain burst 2 and ack it; the transmitter finishes.
	for i := 0; i < 4; i++ {
		if _, ok := stepLocal(t, tr); !ok {
			t.Fatal("quiescent mid-burst")
		}
	}
	for i := 0; i < 4; i++ {
		if err := tr.Apply(ack); err != nil {
			t.Fatal(err)
		}
	}
	if !tr.Done() {
		t.Error("transmitter should be done")
	}
	if _, ok := tr.NextLocal(); ok {
		t.Error("done transmitter should be quiescent")
	}
}

func TestGammaTransmitterValidation(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	if _, err := NewGammaTransmitter(p, 1, nil); err == nil {
		t.Error("k = 1 should fail")
	}
	bits := GammaBlockBits(p, 4)
	if _, err := NewGammaTransmitter(p, 4, make([]wire.Bit, bits+1)); err == nil {
		t.Error("misaligned input should fail")
	}
	if _, err := NewGammaTransmitter(Params{C1: 1, C2: 2, D: 2}, 4, nil); err == nil {
		t.Error("d <= c2 should fail")
	}
}

func TestGammaReceiverPriorities(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12} // δ2 = 4
	k := 4
	rc, err := NewGammaReceiver(p, k)
	if err != nil {
		t.Fatal(err)
	}
	// Idle when empty.
	if act, _ := rc.NextLocal(); act.Kind() != "idle_r" {
		t.Fatalf("empty receiver: %v", act)
	}
	// One packet: ack owed; ack outranks everything.
	codec, err := multiset.NewCodec(k, 4)
	if err != nil {
		t.Fatal(err)
	}
	block := make([]wire.Bit, codec.BlockBits())
	seq, err := codec.EncodeSeq(block)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seq {
		if err := rc.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(s)}); err != nil {
			t.Fatal(err)
		}
		if rc.Unacked() != i+1 {
			t.Fatalf("unacked = %d after %d packets", rc.Unacked(), i+1)
		}
	}
	// Whole burst decoded, 4 acks owed: acks first, then writes, then idle.
	for i := 0; i < 4; i++ {
		act, ok := stepLocal(t, rc)
		if !ok || act.Kind() != wire.KindSend {
			t.Fatalf("ack phase step %d: %v", i, act)
		}
		if s := act.(wire.Send); s.Dir != wire.RtoT || s.P.Kind != wire.Ack {
			t.Fatalf("ack phase sent %v", s)
		}
	}
	for i := 0; i < codec.BlockBits(); i++ {
		act, ok := stepLocal(t, rc)
		if !ok || act.Kind() != wire.KindWrite {
			t.Fatalf("write phase step %d: %v", i, act)
		}
	}
	if act, _ := rc.NextLocal(); act.Kind() != "idle_r" {
		t.Fatalf("drained receiver: %v", act)
	}
	if rc.Written() != codec.BlockBits() {
		t.Fatalf("written = %d", rc.Written())
	}
}

func TestGammaClassification(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	tr, err := NewGammaTransmitter(p, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Classify(wire.Recv{Dir: wire.RtoT, P: wire.AckPacket()}) != ioa.ClassInput {
		t.Error("ack recv should be transmitter input")
	}
	if tr.Classify(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(0)}) != ioa.ClassNone {
		t.Error("data recv is not a transmitter action")
	}
	rc, err := NewGammaReceiver(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Classify(wire.Send{Dir: wire.RtoT, P: wire.AckPacket()}) != ioa.ClassOutput {
		t.Error("ack send should be receiver output")
	}
	if !tr.DeterministicIOA() || !rc.DeterministicIOA() {
		t.Error("gamma automata must be deterministic")
	}
	if tr.Name() != TransmitterName || rc.Name() != ReceiverName {
		t.Error("names")
	}
}

// TestGammaBurstsNeverInterleave: because the transmitter waits for δ2
// acks and the receiver only acks received packets, a new burst can only
// start after the previous burst was fully received — regardless of the
// channel's delays. This is the causal-safety invariant.
func TestGammaBurstsNeverInterleave(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	k := 4
	bits := GammaBlockBits(p, k)
	x := make([]wire.Bit, 3*bits)
	tr, err := NewGammaTransmitter(p, k, x)
	if err != nil {
		t.Fatal(err)
	}
	// Take local steps forever without delivering acks: the transmitter
	// must stop at exactly δ2 sends.
	sends := 0
	for i := 0; i < 50; i++ {
		act, ok := stepLocal(t, tr)
		if !ok {
			break
		}
		if act.Kind() == wire.KindSend {
			sends++
		}
	}
	if sends != p.Delta2() {
		t.Fatalf("unacked transmitter sent %d packets, want exactly δ2 = %d", sends, p.Delta2())
	}
}
