package rstp

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       Params
		wantErr string
	}{
		{name: "ok", p: Params{C1: 1, C2: 2, D: 3}},
		{name: "ok equal c", p: Params{C1: 2, C2: 2, D: 5}},
		{name: "zero c1", p: Params{C1: 0, C2: 2, D: 3}, wantErr: "c1 >= 1"},
		{name: "negative c1", p: Params{C1: -1, C2: 2, D: 3}, wantErr: "c1 >= 1"},
		{name: "c2 below c1", p: Params{C1: 3, C2: 2, D: 5}, wantErr: "c1 <= c2"},
		{name: "d equals c2", p: Params{C1: 1, C2: 3, D: 3}, wantErr: "c2 < d"},
		{name: "d below c2", p: Params{C1: 1, C2: 3, D: 2}, wantErr: "c2 < d"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestDerivedQuantities(t *testing.T) {
	tests := []struct {
		p             Params
		d1, d2, ceil1 int
		divisible     bool
	}{
		{p: Params{C1: 1, C2: 1, D: 4}, d1: 4, d2: 4, ceil1: 4, divisible: true},
		{p: Params{C1: 2, C2: 3, D: 12}, d1: 6, d2: 4, ceil1: 6, divisible: true},
		{p: Params{C1: 2, C2: 5, D: 11}, d1: 5, d2: 2, ceil1: 6, divisible: false},
		{p: Params{C1: 3, C2: 4, D: 25}, d1: 8, d2: 6, ceil1: 9, divisible: false},
		{p: Params{C1: 4, C2: 8, D: 64}, d1: 16, d2: 8, ceil1: 16, divisible: true},
	}
	for _, tt := range tests {
		if got := tt.p.Delta1(); got != tt.d1 {
			t.Errorf("%v Delta1 = %d, want %d", tt.p, got, tt.d1)
		}
		if got := tt.p.Delta2(); got != tt.d2 {
			t.Errorf("%v Delta2 = %d, want %d", tt.p, got, tt.d2)
		}
		if got := tt.p.CeilSteps1(); got != tt.ceil1 {
			t.Errorf("%v CeilSteps1 = %d, want %d", tt.p, got, tt.ceil1)
		}
		if got := tt.p.Divisible(); got != tt.divisible {
			t.Errorf("%v Divisible = %v, want %v", tt.p, got, tt.divisible)
		}
	}
}

// Property: δ2 <= δ1 <= ⌈d/c1⌉ <= δ1 + 1, and ⌈d/c1⌉·c1 >= d (the safety
// separation the protocols rely on).
func TestDerivedQuantitiesQuick(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p := Params{
			C1: int64(a%8) + 1,
			C2: 0,
			D:  0,
		}
		p.C2 = p.C1 + int64(b%8)
		p.D = p.C2 + int64(c%32) + 1
		if p.Validate() != nil {
			return false
		}
		d1, d2, ceil1 := p.Delta1(), p.Delta2(), p.CeilSteps1()
		if d2 > d1 || d1 > ceil1 || ceil1 > d1+1 {
			return false
		}
		return int64(ceil1)*p.C1 >= p.D
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParamsString(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	s := p.String()
	for _, want := range []string{"c1=2", "c2=3", "d=12", "δ1=6", "δ2=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestPadToBlock(t *testing.T) {
	tests := []struct {
		name      string
		in        string
		blockBits int
		wantLen   int
		wantPad   int
	}{
		{name: "already aligned", in: "1010", blockBits: 4, wantLen: 4, wantPad: 0},
		{name: "pad needed", in: "101", blockBits: 4, wantLen: 4, wantPad: 1},
		{name: "empty", in: "", blockBits: 4, wantLen: 0, wantPad: 0},
		{name: "one over", in: "10101", blockBits: 4, wantLen: 8, wantPad: 3},
		{name: "zero block", in: "101", blockBits: 0, wantLen: 3, wantPad: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x, err := wire.ParseBits(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			out, pad := PadToBlock(x, tt.blockBits)
			if len(out) != tt.wantLen || pad != tt.wantPad {
				t.Fatalf("PadToBlock = len %d pad %d, want %d/%d", len(out), pad, tt.wantLen, tt.wantPad)
			}
			// Original bits preserved as a prefix; padding is zeros.
			if wire.BitsToString(out[:len(x)]) != tt.in {
				t.Fatal("prefix not preserved")
			}
			for i := len(x); i < len(out); i++ {
				if out[i] != wire.Zero {
					t.Fatal("padding not zero")
				}
			}
		})
	}
}

// TestPadToBlockDoesNotAliasInput: mutating the padded slice must not
// change the caller's input.
func TestPadToBlockDoesNotAliasInput(t *testing.T) {
	x, _ := wire.ParseBits("101")
	out, _ := PadToBlock(x, 4)
	out[0] = wire.Zero
	if x[0] != wire.One {
		t.Fatal("PadToBlock aliased its input")
	}
}
